// Majority election: the classical 4-state cancellation protocol
// decides whether candidate A has strictly more initial supporters than
// candidate B, plus a compiled boolean-combination predicate showing
// the spec package's product construction.
package main

import (
	"fmt"
	"log"

	"repro/internal/conf"
	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/verify"
)

func main() {
	protocol, err := spec.Majority("A", "B")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(protocol)
	fmt.Println(protocol.Net())

	// Exhaustive verification against the predicate evaluator.
	pred := spec.MajorityPred("A", "B")
	res, err := verify.Range(protocol, func(input conf.Config) bool {
		return pred.Eval(map[string]int64{
			"A": input.GetName("A"),
			"B": input.GetName("B"),
		})
	}, 0, 7, petri.Budget{MaxConfigs: 1 << 18})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK() {
		log.Fatalf("verification failed: %+v", res.FirstFailure())
	}
	fmt.Printf("verified: decides A > B for all populations ≤ 7 (%d inputs)\n\n", len(res.Reports))

	// Election night: simulate a few tallies.
	for _, tally := range []struct{ a, b int64 }{{5, 3}, {3, 5}, {4, 4}} {
		input, err := protocol.Input(map[string]int64{"A": tally.a, "B": tally.b})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run(protocol, input, sim.Options{Seed: 99, MaxSteps: 100_000, StablePatience: 2_000})
		if err != nil {
			log.Fatal(err)
		}
		v, _ := r.ConsensusBool()
		fmt.Printf("A=%d B=%d: majority-for-A = %v (steps to consensus %d)\n",
			tally.a, tally.b, v, r.LastChange)
	}

	// Boolean combination via the product construction: "at least 3
	// voters AND an odd number of voters".
	combined := spec.And{
		L: spec.Threshold{Weights: map[string]int64{"v": 1}, C: 3},
		R: spec.Remainder{Weights: map[string]int64{"v": 1}, M: 2, R: 1},
	}
	cp, err := spec.Compile(combined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled %v into %d states, %d transitions\n",
		combined, cp.States(), cp.Net().Len())
	for _, v := range []int64{2, 3, 4, 5} {
		input, err := cp.Input(map[string]int64{cp.InitialStates()[0]: v})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run(cp, input, sim.Options{Seed: 5, MaxSteps: 200_000, StablePatience: 3_000})
		if err != nil {
			log.Fatal(err)
		}
		got, _ := r.ConsensusBool()
		fmt.Printf("  v=%d: protocol says %v, predicate says %v\n",
			v, got, combined.Eval(map[string]int64{"v": v}))
	}
}
