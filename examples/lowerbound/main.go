// Lower bound walk-through: runs the Theorem 4.3 proof machinery on a
// concrete protocol (Example 4.2 with n = 2) — bottom-configuration
// certificate (Theorem 6.1), stabilized-configuration characterization
// (Lemma 5.4), and the Section 8 bound cascade — then inverts the
// headline bound into the state-complexity lower bound of
// Corollary 4.4.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/bounds"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/petri"
)

func main() {
	const n = 2
	protocol, err := counting.Example42(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(protocol)
	budget := petri.Budget{MaxConfigs: 1 << 16}

	// 1. Theorem 6.1: from the leader configuration, a short execution
	// reaches a bottom configuration with a small component.
	rho := protocol.InitialConfig(conf.MustFromMap(protocol.Space(), map[string]int64{"i": 3}))
	cert, err := core.ReachBottom(protocol.Net(), rho, core.ReachBottomOptions{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	d := protocol.States()
	b := bounds.Theorem61B(d, protocol.Net().NormInf(), rho.NormInf())
	fmt.Printf("\nTheorem 6.1 certificate from %v:\n", rho)
	fmt.Printf("  σ = %v (length %d)\n", protocol.Net().WordNames(cert.Sigma), len(cert.Sigma))
	fmt.Printf("  α = %v, β = %v, Q = %v\n", cert.Alpha, cert.Beta, cert.Q)
	fmt.Printf("  T|Q-component size %d; paper bound b has %.3g decimal digits\n",
		cert.ComponentSize, b.Log10())

	// 2. Lemma 5.4: a stabilized configuration is characterized by its
	// small values; measure the minimal working threshold.
	keep, err := protocol.KeepMask(protocol.OutputStates(core.Out0))
	if err != nil {
		log.Fatal(err)
	}
	stab := conf.MustFromMap(protocol.Space(), map[string]int64{"ib": 4, "pb": 1, "qb": 1})
	h, err := core.MinimalCharacterizationH(protocol.Net(), keep, stab, 8, 3, budget)
	if err != nil {
		log.Fatal(err)
	}
	formula := bounds.StabilizationH(d, protocol.Net().NormInf())
	fmt.Printf("\nLemma 5.4 at ρ = %v:\n", stab)
	fmt.Printf("  measured minimal h = %d; formula h has %.3g decimal digits\n", h, formula.Log10())

	// 3. The Section 8 cascade and the headline bound.
	s8, err := bounds.NewSection8(d, protocol.Net().NormInf(), protocol.Leaders().NormInf())
	if err != nil {
		log.Fatal(err)
	}
	headline := bounds.Theorem43MaxN(d, protocol.Width(), protocol.NumLeaders())
	fmt.Printf("\nSection 8 cascade (d=%d): log10 b=%.3g h=%.3g k=%.3g a=%.3g ℓ=%.3g n≤%.3g\n",
		d, s8.B.Log10(), s8.H.Log10(), s8.K.Log10(), s8.A.Log10(), s8.L.Log10(), s8.N.Log10())
	fmt.Printf("Theorem 4.3 headline: with %d states, width %d, %d leaders, any decided (i ≥ n) has\n"+
		"  log10(n) ≤ %.4g   — and indeed this protocol decides n = %d ≪ bound\n",
		d, protocol.Width(), protocol.NumLeaders(), headline.Log10(), n)

	// 4. Corollary 4.4: inverting the bound for huge n.
	fmt.Printf("\nCorollary 4.4: states needed to count to n = 2^(2^k) with width, leaders ≤ 2:\n")
	for _, k := range []int{4, 8, 16} {
		log2n := math.Pow(2, float64(k))
		lb := bounds.Corollary44LowerBound(log2n, 0.49, 2)
		exact := bounds.MinStatesTheorem43(log2n*math.Log10(2), 2)
		fmt.Printf("  k=%-3d asymptotic LB ≈ %.2f, exact Theorem 4.3 inversion ≥ %d states\n",
			k, lb, exact)
	}
}
