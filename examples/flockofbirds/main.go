// Flock of birds: the paper's motivating scenario — decide whether at
// least n birds in a flock carry an elevated-temperature sensor bit —
// run across every counting construction, comparing their resource
// trade-offs (states vs width vs leaders) and convergence behaviour on
// the same inputs.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/sim"
)

func main() {
	const (
		k = int64(3) // threshold n = 2^k = 8
		n = int64(8)
	)
	type entry struct {
		name string
		p    *core.Protocol
	}
	var protocols []entry
	add := func(name string, p *core.Protocol, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		protocols = append(protocols, entry{name, p})
	}
	{
		p, err := counting.Example41(n)
		add("example41", p, err)
	}
	{
		p, err := counting.Example42(n)
		add("example42", p, err)
	}
	{
		p, err := counting.FlockOfBirds(n)
		add("flock", p, err)
	}
	{
		p, err := counting.PowerOfTwo(k)
		add("power2", p, err)
	}
	{
		p, err := counting.LeaderDoubling(k)
		add("leaderdoubling", p, err)
	}

	fmt.Printf("counting (i ≥ %d): construction trade-offs\n", n)
	fmt.Printf("%-16s %8s %8s %8s %12s\n", "construction", "states", "width", "leaders", "transitions")
	for _, e := range protocols {
		fmt.Printf("%-16s %8d %8d %8d %12d\n",
			e.name, e.p.States(), e.p.Width(), e.p.NumLeaders(), e.p.Net().Len())
	}

	fmt.Printf("\nconvergence on flocks of x birds (20 seeds each):\n")
	fmt.Printf("%-16s %6s %10s %10s %12s\n", "construction", "x", "expected", "correct", "mean steps")
	for _, e := range protocols {
		for _, x := range []int64{n + 4, n - 1} {
			input, err := e.p.Input(map[string]int64{"i": x})
			if err != nil {
				log.Fatal(err)
			}
			stats, err := sim.RunMany(context.Background(), e.p, input, x >= n, 20,
				sim.Options{Seed: 321, MaxSteps: 500_000, StablePatience: 2_000})
			if err != nil {
				log.Fatal(err)
			}
			if stats.Converged == 0 {
				fmt.Printf("%-16s %6d %10v %11s %12s\n", e.name, x, x >= n, "n/c *", "-")
				continue
			}
			fmt.Printf("%-16s %6d %10v %8d/%-2d %12.0f\n",
				e.name, x, x >= n, stats.Correct, stats.Converged, stats.MeanLastChange())
		}
	}
	fmt.Println("\n* n/c: no consensus within the step budget. Example 4.2's reject side")
	fmt.Println("  converges exponentially slowly under uniform scheduling (its p̄/q̄")
	fmt.Println("  conversions are driven by a lone ī against many flip-back partners);")
	fmt.Println("  stable computation concerns reachability, not speed, and the exhaustive")
	fmt.Println("  verifier (ppverify) confirms correctness for these inputs.")
}
