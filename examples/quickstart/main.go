// Quickstart: build the paper's Example 4.2 protocol (6 states, width
// 2, n leaders), check it stably computes (i ≥ n) for small inputs, and
// watch a random execution converge.
package main

import (
	"fmt"
	"log"

	"repro/internal/counting"
	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/verify"
)

func main() {
	const n = 3

	// 1. Build the protocol of Example 4.2: leaders are n agents in ī;
	// the predicate is "at least n agents started in i".
	protocol, err := counting.Example42(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(protocol)
	fmt.Println(protocol.Net())

	// 2. Exhaustively verify stable computation for x = 0..n+3.
	res, err := verify.Counting(protocol, "i", n, n+3, petri.Budget{MaxConfigs: 1 << 18})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK() {
		log.Fatalf("verification failed: %+v", res.FirstFailure())
	}
	fmt.Printf("verified: stably computes (i ≥ %d) for all x ≤ %d (max closure %d configs)\n\n",
		n, n+3, res.MaxConfigs)

	// 3. Simulate one run above and one below the threshold.
	for _, x := range []int64{n + 2, n - 1} {
		input, err := protocol.Input(map[string]int64{"i": x})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run(protocol, input, sim.Options{Seed: 7, MaxSteps: 100_000, StablePatience: 2_000})
		if err != nil {
			log.Fatal(err)
		}
		v, _ := r.ConsensusBool()
		fmt.Printf("x = %d: consensus %v after %d interactions (final %v)\n",
			x, v, r.LastChange, r.Final)
	}
}
