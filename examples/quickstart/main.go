// Quickstart: build the paper's Example 4.2 protocol (6 states, width
// 2, n leaders), check it stably computes (i ≥ n) for small inputs,
// watch a random execution converge, and push the same family to 10⁸
// agents on the count-batched scheduler. The README in this directory
// walks the CLI equivalents (ppsim -scheduler countbatch -eps, and
// the 3-command sharded sweep).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/counting"
	"repro/internal/petri"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/verify"
)

func main() {
	const n = 3

	// 1. Build the protocol of Example 4.2: leaders are n agents in ī;
	// the predicate is "at least n agents started in i".
	protocol, err := counting.Example42(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(protocol)
	fmt.Println(protocol.Net())

	// 2. Exhaustively verify stable computation for x = 0..n+3.
	res, err := verify.Counting(protocol, "i", n, n+3, petri.Budget{MaxConfigs: 1 << 18})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK() {
		log.Fatalf("verification failed: %+v", res.FirstFailure())
	}
	fmt.Printf("verified: stably computes (i ≥ %d) for all x ≤ %d (max closure %d configs)\n\n",
		n, n+3, res.MaxConfigs)

	// 3. Simulate one run above and one below the threshold.
	for _, x := range []int64{n + 2, n - 1} {
		input, err := protocol.Input(map[string]int64{"i": x})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run(protocol, input, sim.Options{Seed: 7, MaxSteps: 100_000, StablePatience: 2_000})
		if err != nil {
			log.Fatal(err)
		}
		v, _ := r.ConsensusBool()
		fmt.Printf("x = %d: consensus %v after %d interactions (final %v)\n",
			x, v, r.LastChange, r.Final)
	}

	// 4. The same idea at paper scale: power2(26) decides (i ≥ 2²⁶) and
	// the count-batched scheduler (tau-leaping over transition counts)
	// carries 10⁸ agents to the absorbing consensus in milliseconds —
	// the CLI twin is
	//   ppsim -protocol power2 -param 26 -x 100000000 \
	//         -scheduler countbatch -eps 0.05 -steps 1000000000 -patience 0
	big, _, err := registry.Make("power2", 26)
	if err != nil {
		log.Fatal(err)
	}
	input, err := big.Input(map[string]int64{"i": 100_000_000})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	r, err := sim.Run(big, input, sim.Options{
		Seed:      7,
		MaxSteps:  1_000_000_000, // whole-run mode: run to the absorbing deadlock
		Scheduler: sim.CountBatched{Epsilon: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	v, _ := r.ConsensusBool()
	fmt.Printf("\npower2(26) at x = 10^8: consensus %v after %d interactions in %v (countbatch, eps 0.05)\n",
		v, r.Steps, time.Since(start).Round(time.Millisecond))
}
