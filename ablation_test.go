package repro

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/counting"
	"repro/internal/petri"
)

// Ablation: three ways to decide coverability on the same instance —
// the backward algorithm (what the library uses for yes/no queries),
// the Karp–Miller tree (computes the whole coverability set first) and
// the forward shortest-witness search (also returns a minimal witness).
// The benchmarks quantify the design choice documented in DESIGN.md:
// backward for decisions, forward search only when the witness length
// itself is the measurement (E5).

func coverInstance(b *testing.B) (*petri.Net, conf.Config, conf.Config) {
	b.Helper()
	p, err := counting.FlockOfBirds(5)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 7}))
	target := conf.MustFromMap(p.Space(), map[string]int64{"T": 3})
	return p.Net(), from, target
}

func BenchmarkAblationCoverBackward(b *testing.B) {
	net, from, target := coverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := net.Coverable(from, target, 1<<16)
		if err != nil || !ok {
			b.Fatalf("coverable = %v, %v", ok, err)
		}
	}
}

func BenchmarkAblationCoverKarpMiller(b *testing.B) {
	net, from, target := coverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := net.KarpMiller(from, 1<<18)
		if err != nil {
			b.Fatal(err)
		}
		if !tree.Covers(target) {
			b.Fatal("KM misses coverable target")
		}
	}
}

func BenchmarkAblationCoverForwardWitness(b *testing.B) {
	net, from, target := coverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := net.ShortestCoveringWord(from, target, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil || w == nil {
			b.Fatalf("witness = %v, %v", w, err)
		}
	}
}

// Ablation: reachability-closure cost with and without an agent cap —
// quantifies why Budget.MaxAgents exists for non-conservative nets
// (conservative nets pay only the pruning-check overhead).
func BenchmarkAblationClosureUncapped(b *testing.B) {
	p, err := counting.Example42(3)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Net().Reach(from, petri.Budget{MaxConfigs: 1 << 18}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClosureAgentCapped(b *testing.B) {
	p, err := counting.Example42(3)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))
	cap := from.Agents() // conservative: cap is never exceeded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Net().Reach(from, petri.Budget{MaxConfigs: 1 << 18, MaxAgents: cap}); err != nil {
			b.Fatal(err)
		}
	}
}

// The three coverability deciders must agree — tested, not just timed.
func TestCoverabilityDecidersAgree(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatal(err)
	}
	net := p.Net()
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))
	targets := []map[string]int64{
		{"T": 1},
		{"T": 5},
		{"T": 6},  // more than the population: not coverable
		{"v3": 1}, // value 3 reachable
		{"i": 6},  // more i than provided: not coverable
	}
	for _, tm := range targets {
		target := conf.MustFromMap(p.Space(), tm)
		back, err := net.Coverable(from, target, 1<<16)
		if err != nil {
			t.Fatalf("backward %v: %v", target, err)
		}
		tree, err := net.KarpMiller(from, 1<<18)
		if err != nil {
			t.Fatalf("KM: %v", err)
		}
		km := tree.Covers(target)
		w, err := net.ShortestCoveringWord(from, target, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil {
			t.Fatalf("forward %v: %v", target, err)
		}
		fwd := w != nil
		if back != km || km != fwd {
			t.Errorf("target %v: backward=%v karp-miller=%v forward=%v", target, back, km, fwd)
		}
	}
}
