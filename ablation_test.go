package repro

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/counting"
	"repro/internal/petri"
)

// Ablation: three ways to decide coverability on the same instance —
// the backward algorithm (what the library uses for yes/no queries),
// the Karp–Miller tree (computes the whole coverability set first) and
// the forward shortest-witness search (also returns a minimal witness).
// The benchmarks quantify the design choice documented in DESIGN.md:
// backward for decisions, forward search only when the witness length
// itself is the measurement (E5).

func coverInstance(b *testing.B) (*petri.Net, conf.Config, conf.Config) {
	b.Helper()
	p, err := counting.FlockOfBirds(5)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 7}))
	target := conf.MustFromMap(p.Space(), map[string]int64{"T": 3})
	return p.Net(), from, target
}

func BenchmarkAblationCoverBackward(b *testing.B) {
	net, from, target := coverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := net.Coverable(from, target, 1<<16)
		if err != nil || !ok {
			b.Fatalf("coverable = %v, %v", ok, err)
		}
	}
}

func BenchmarkAblationCoverKarpMiller(b *testing.B) {
	net, from, target := coverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := net.KarpMiller(from, 1<<18)
		if err != nil {
			b.Fatal(err)
		}
		if !tree.Covers(target) {
			b.Fatal("KM misses coverable target")
		}
	}
}

func BenchmarkAblationCoverForwardWitness(b *testing.B) {
	net, from, target := coverInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := net.ShortestCoveringWord(from, target, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil || w == nil {
			b.Fatalf("witness = %v, %v", w, err)
		}
	}
}

// Ablation: reachability-closure cost with and without an agent cap —
// quantifies why Budget.MaxAgents exists for non-conservative nets
// (conservative nets pay only the pruning-check overhead).
func BenchmarkAblationClosureUncapped(b *testing.B) {
	p, err := counting.Example42(3)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Net().Reach(from, petri.Budget{MaxConfigs: 1 << 18}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClosureAgentCapped(b *testing.B) {
	p, err := counting.Example42(3)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))
	cap := from.Agents() // conservative: cap is never exceeded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Net().Reach(from, petri.Budget{MaxConfigs: 1 << 18, MaxAgents: cap}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: closure-substrate dedup — the seed-era string-keyed map
// (conf.Config.Key materialized per lookup, one Config allocation per
// attempted fire, per-node Clone semantics) against the arena-backed
// CountSet (flat int64 arena, open-addressing table over integer
// hashes, fire-into-scratch). Quantifies the dedup choice of the
// closure engine the same way the backward-vs-forward ablation above
// quantifies the coverability choice. Both run the identical BFS on
// the same instance. (The node/edge-level equivalence of the two
// substrates is pinned separately by the property tests in
// internal/petri/reach_ref_test.go, against their own copy of the
// seed-era loop; this file's copy only times it and checks sizes.)

// stringMapClosure is the seed-era closure loop, kept verbatim-shaped.
func stringMapClosure(net *petri.Net, from conf.Config, maxConfigs int) (int, error) {
	configs := []conf.Config{from}
	index := map[string]int{from.Key(): 0}
	for head := 0; head < len(configs); head++ {
		cur := configs[head]
		for ti := 0; ti < net.Len(); ti++ {
			next, ok := net.At(ti).Fire(cur)
			if !ok {
				continue
			}
			if _, seen := index[next.Key()]; !seen {
				if len(configs) >= maxConfigs {
					return len(configs), petri.ErrBudget
				}
				index[next.Key()] = len(configs)
				configs = append(configs, next)
			}
		}
	}
	return len(configs), nil
}

func closureSubstrateInstance(b *testing.B) (*petri.Net, conf.Config) {
	b.Helper()
	p, err := counting.FlockOfBirds(6)
	if err != nil {
		b.Fatal(err)
	}
	return p.Net(), p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 9}))
}

func BenchmarkAblationClosureStringMap(b *testing.B) {
	net, from := closureSubstrateInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := stringMapClosure(net, from, 1<<18)
		if err != nil || n == 0 {
			b.Fatalf("closure %d, %v", n, err)
		}
	}
}

func BenchmarkAblationClosureArenaHash(b *testing.B) {
	net, from := closureSubstrateInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := net.Reach(from, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil || rs.Len() == 0 {
			b.Fatalf("closure %d, %v", rs.Len(), err)
		}
	}
}

// The two substrates must agree on closure size — tested, not just
// timed (the full node/edge equivalence is property-tested in
// internal/petri).
func TestClosureSubstratesAgree(t *testing.T) {
	p, err := counting.FlockOfBirds(5)
	if err != nil {
		t.Fatal(err)
	}
	net := p.Net()
	for _, x := range []int64{3, 5, 7, 9} {
		from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": x}))
		want, err := stringMapClosure(net, from, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := net.Reach(from, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() != want {
			t.Errorf("x=%d: arena closure %d nodes, string-map %d", x, rs.Len(), want)
		}
	}
}

// The three coverability deciders must agree — tested, not just timed.
func TestCoverabilityDecidersAgree(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatal(err)
	}
	net := p.Net()
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))
	targets := []map[string]int64{
		{"T": 1},
		{"T": 5},
		{"T": 6},  // more than the population: not coverable
		{"v3": 1}, // value 3 reachable
		{"i": 6},  // more i than provided: not coverable
	}
	for _, tm := range targets {
		target := conf.MustFromMap(p.Space(), tm)
		back, err := net.Coverable(from, target, 1<<16)
		if err != nil {
			t.Fatalf("backward %v: %v", target, err)
		}
		tree, err := net.KarpMiller(from, 1<<18)
		if err != nil {
			t.Fatalf("KM: %v", err)
		}
		km := tree.Covers(target)
		w, err := net.ShortestCoveringWord(from, target, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil {
			t.Fatalf("forward %v: %v", target, err)
		}
		fwd := w != nil
		if back != km || km != fwd {
			t.Errorf("target %v: backward=%v karp-miller=%v forward=%v", target, back, km, fwd)
		}
	}
}
