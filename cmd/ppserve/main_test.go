package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// testDaemon runs a daemon over a temp store on an httptest listener.
func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{StoreDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func writeQueries(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Two replay passes over a mixed file: the cold pass misses, the warm
// pass hits 100%, and the -min-hit-rate floor passes.
func TestReplayWarmPassHits(t *testing.T) {
	ts := testDaemon(t)
	file := writeQueries(t,
		`# comment and the blank line below are skipped`,
		``,
		`{"path": "/v1/bounds", "body": {"op": "rackoff"}}`,
		`{"path": "/v1/bounds", "body": {"op": "minstates"}}`,
		`{"path": "/v1/simulate", "body": {"spec": {"protocol": "flock", "param": 3}, "x": 5, "trials": 2, "max_steps": 30000}}`,
	)
	var sb strings.Builder
	err := run(context.Background(), []string{
		"replay", "-addr", ts.URL, "-file", file, "-passes", "2", "-min-hit-rate", "0.9",
	}, &sb)
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "pass 1: 0/3 hits") {
		t.Errorf("cold pass not all misses:\n%s", out)
	}
	if !strings.Contains(out, "pass 2: 3/3 hits") {
		t.Errorf("warm pass not all hits:\n%s", out)
	}
	if !strings.Contains(out, "hit_rate=0.500") {
		t.Errorf("daemon metrics line missing or wrong:\n%s", out)
	}
}

// The floor actually fails a cold-only replay.
func TestReplayMinHitRateFails(t *testing.T) {
	ts := testDaemon(t)
	file := writeQueries(t, `{"path": "/v1/bounds", "body": {"op": "rackoff"}}`)
	err := run(context.Background(), []string{
		"replay", "-addr", ts.URL, "-file", file, "-passes", "1", "-min-hit-rate", "0.9",
	}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "below") {
		t.Fatalf("cold pass passed the 0.9 floor: %v", err)
	}
}

// A failing query names its line; a malformed file line is rejected
// before any traffic.
func TestReplayRejects(t *testing.T) {
	ts := testDaemon(t)
	bad := writeQueries(t, `{"path": "/v1/bounds", "body": {"op": "nosuch"}}`)
	err := run(context.Background(), []string{"replay", "-addr", ts.URL, "-file", bad}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "query 1") {
		t.Fatalf("bad query not reported: %v", err)
	}
	malformed := writeQueries(t, `{"path": "/v1/bounds"}`)
	err = run(context.Background(), []string{"replay", "-addr", ts.URL, "-file", malformed}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "need a /v1/") {
		t.Fatalf("malformed line not rejected: %v", err)
	}
}

// The serve subcommand end to end: boot on a free port, publish the
// address via -addr-file, answer queries (cache surviving within the
// daemon), shut down cleanly on context cancellation.
func TestServeSubcommand(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr.txt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var sb strings.Builder
	go func() {
		done <- run(ctx, []string{
			"serve", "-addr", "127.0.0.1:0", "-store", filepath.Join(dir, "store"),
			"-workers", "2", "-addr-file", addrFile,
		}, &sb)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never published its address; output so far:\n%s", sb.String())
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	base := "http://" + addr

	file := writeQueries(t, `{"path": "/v1/bounds", "body": {"op": "section8"}}`)
	var rb strings.Builder
	if err := run(context.Background(), []string{
		"replay", "-addr", base, "-file", file, "-passes", "2", "-min-hit-rate", "0.9",
	}, &rb); err != nil {
		t.Fatalf("replay against live daemon: %v\n%s", err, rb.String())
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exit: %v\n%s", err, sb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(sb.String(), "shutting down") {
		t.Errorf("no graceful shutdown message:\n%s", sb.String())
	}
}

// The checked-in example replay file is well-formed and covers all
// three query endpoints — the CI smoke drill depends on it.
func TestExampleQueriesFile(t *testing.T) {
	queries, err := readQueries(filepath.Join("..", "..", "examples", "serve", "queries.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, q := range queries {
		seen[q.Path] = true
	}
	for _, path := range []string{"/v1/simulate", "/v1/verify", "/v1/bounds"} {
		if !seen[path] {
			t.Errorf("example file exercises no %s query", path)
		}
	}
}
