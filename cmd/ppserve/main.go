// Command ppserve runs the protocol-query daemon, its replay client,
// and the store garbage collector.
//
// Usage:
//
//	ppserve serve -addr 127.0.0.1:8372 -store ppserve-store \
//	        [-deadline 30s] [-store-max-mb 512] [-chaos-seed N -chaos-faults M]
//	ppserve replay -addr http://127.0.0.1:8372 -file queries.jsonl \
//	        -passes 2 -min-hit-rate 0.9
//	ppserve gc -store ppserve-store [-quarantine-ttl 168h]
//
// serve starts the long-lived daemon: POST /v1/simulate, /v1/verify
// and /v1/bounds evaluate queries with a persistent content-addressed
// result cache under -store (a repeated query — in any equivalent
// spelling — is a file read, across restarts). POST /v1/sweep runs an
// anytime size sweep and streams NDJSON: one checksummed cell delta
// per finished (size, trial-block) cell while the compute runs, then
// a terminal merged document byte-identical to the cached artifact —
// a warm replay gets just the terminal line. Sweep bodies take the
// ppsweep vocabulary (sizes, trials, block, ci_target, min_trials);
// with ci_target each size stops once its 95% CI half-width reaches
// that fraction of its mean. GET /v1/jobs/{id}
// inspects a request's lifecycle record, GET /v1/keys pages the store
// inventory, GET /metrics reports the cache hit rate, per-phase
// latencies, admission balance and store footprint, and GET /healthz
// and /readyz are the liveness and readiness probes (/readyz goes 503
// while the store is degraded to compute-only mode). Every request
// runs under a compute deadline — -deadline, or a per-query default
// priced from its admission cost — and times out as 503 with a
// Retry-After hint. -store-max-mb bounds the store with LRU eviction.
// -addr may end in :0 to pick a free port; -addr-file writes the
// actual listening address for scripts to read. SIGINT shuts the
// daemon down gracefully. -chaos-seed/-chaos-faults inject a seeded
// fault schedule under the store for chaos drills: the daemon must
// keep answering correctly (recomputing or degrading as needed).
//
// replay streams a JSONL query file (one {"path": ..., "body": {...}}
// object per line; blank and #-comment lines skipped) at a running
// daemon, -passes times over, and reports each pass's cache hit rate
// from the X-Cache response headers. With -min-hit-rate it exits
// non-zero when the final pass's rate falls below the floor — the CI
// serve-smoke drill replays a mixed query file twice and requires
// ≥0.9 on the warm pass.
//
// gc runs an offline collection pass over a store directory: every
// artifact is checksum-verified (corrupt ones quarantined), stray
// publish temp files are swept, quarantine entries older than
// -quarantine-ttl are dropped, and the access journal is compacted.
// Run it offline — never against a live daemon's store.
//
// Exit codes: 0 = success, including a gc pass that found and
// repaired recoverable damage (corruption quarantined, strays swept);
// 1 = hard error — bad flags, bind failure, replay below the hit-rate
// floor, unreadable store.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/faultfs"
	"repro/internal/serve"
	"repro/internal/serve/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("subcommand required: serve | replay")
	}
	switch args[0] {
	case "serve":
		return runServe(ctx, args[1:], out)
	case "replay":
		return runReplay(ctx, args[1:], out)
	case "gc":
		return runGC(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runServe(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppserve serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address (port 0 picks a free port)")
	storeDir := fs.String("store", "ppserve-store", "result store directory")
	workers := fs.Int("workers", 0, "per-query worker budget (0 = all cores)")
	admit := fs.Int64("admit", 0, "admission bucket capacity in cost units (0 = default)")
	jobWindow := fs.Int("job-window", 0, "jobs kept for /v1/jobs (0 = default)")
	addrFile := fs.String("addr-file", "", "write the actual listening address to this file")
	deadline := fs.Duration("deadline", 0, "per-request compute deadline (0 = priced per query from its admission cost)")
	storeMaxMB := fs.Int64("store-max-mb", 0, "store footprint bound in MiB, enforced by LRU eviction (0 = unbounded)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the injected fault schedule (with -chaos-faults)")
	chaosFaults := fs.Int("chaos-faults", 0, "inject this many seeded faults under the store (0 = none; chaos drills only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var storeFS faultfs.FS
	var faulty *faultfs.Faulty
	if *chaosFaults > 0 {
		schedule := faultfs.RandomSchedule(*chaosSeed, *chaosFaults)
		faulty = faultfs.NewFaulty(faultfs.OS(), schedule)
		storeFS = faulty
		fmt.Fprintf(out, "ppserve: CHAOS MODE: %d faults from seed %d under the store\n", len(schedule), *chaosSeed)
	}
	s, err := serve.New(serve.Config{
		StoreDir:      *storeDir,
		Workers:       *workers,
		AdmitCapacity: *admit,
		JobWindow:     *jobWindow,
		Deadline:      *deadline,
		StoreMaxBytes: *storeMaxMB << 20,
		FS:            storeFS,
	})
	if err != nil {
		return err
	}
	defer func() {
		if faulty != nil {
			for _, f := range faulty.Fired() {
				fmt.Fprintf(out, "ppserve: chaos fired: %s\n", f)
			}
		}
	}()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	actual := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(actual+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(out, "ppserve: listening on http://%s (store %s)\n", actual, *storeDir)

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "ppserve: shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runGC runs one offline store collection pass and prints the report.
// Recoverable damage it repaired is still exit 0: the store is
// healthy afterwards, which is what a cron invocation cares about.
func runGC(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppserve gc", flag.ContinueOnError)
	storeDir := fs.String("store", "ppserve-store", "result store directory")
	ttl := fs.Duration("quarantine-ttl", 7*24*time.Hour, "drop quarantined files older than this (0 = keep forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := store.GC(*storeDir, store.GCOptions{QuarantineTTL: *ttl})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "gc %s: %d objects (%d bytes) verified=%d quarantined=%d dropped_tmp=%d dropped_quarantine=%d journal_lines=%d\n",
		*storeDir, rep.Objects, rep.Bytes, rep.Verified, rep.Quarantined, rep.DroppedTmp, rep.DroppedQuarantine, rep.JournalLines)
	return nil
}

// replayQuery is one line of a replay file.
type replayQuery struct {
	Path string          `json:"path"`
	Body json.RawMessage `json:"body"`
}

func readQueries(path string) ([]replayQuery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var queries []replayQuery
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var q replayQuery
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if !strings.HasPrefix(q.Path, "/v1/") || len(q.Body) == 0 {
			return nil, fmt.Errorf("%s:%d: need a /v1/... path and a body", path, line)
		}
		queries = append(queries, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return queries, nil
}

func runReplay(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppserve replay", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8372", "daemon base URL")
	file := fs.String("file", "", "JSONL query file (required)")
	passes := fs.Int("passes", 2, "number of replay passes")
	minHitRate := fs.Float64("min-hit-rate", 0, "fail unless the final pass's hit rate reaches this floor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("-file is required")
	}
	if *passes < 1 {
		return fmt.Errorf("-passes must be positive (got %d)", *passes)
	}
	queries, err := readQueries(*file)
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{}
	var lastRate float64
	for pass := 1; pass <= *passes; pass++ {
		hits := 0
		for i, q := range queries {
			req, err := http.NewRequestWithContext(ctx, "POST", base+q.Path, bytes.NewReader(q.Body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("pass %d query %d (%s): %s: %s", pass, i+1, q.Path, resp.Status, bytes.TrimSpace(body))
			}
			if resp.Header.Get("X-Cache") == "hit" {
				hits++
			}
		}
		lastRate = float64(hits) / float64(len(queries))
		fmt.Fprintf(out, "pass %d: %d/%d hits (%.1f%%)\n", pass, hits, len(queries), 100*lastRate)
	}
	if err := printMetrics(ctx, client, base, out); err != nil {
		return err
	}
	if *minHitRate > 0 && lastRate < *minHitRate {
		return fmt.Errorf("final pass hit rate %.3f below the %.3f floor", lastRate, *minHitRate)
	}
	return nil
}

// printMetrics summarizes the daemon's own view after a replay, so a
// drill's log shows the server-side hit rate next to the client-side
// one.
func printMetrics(ctx context.Context, client *http.Client, base string, out io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var m serve.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	fmt.Fprintf(out, "daemon: requests=%d failures=%d cache hit_rate=%.3f (hits=%d dedups=%d misses=%d) store objects=%d bytes=%d\n",
		m.Requests, m.Failures, m.Cache.HitRate, m.Cache.Hits, m.Cache.Dedups, m.Cache.Misses,
		m.Store.Objects, m.Store.Bytes)
	return nil
}
