package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestHelperProcessServe is not a test: it is the child body for the
// crash-recovery drill, re-executed from this test binary with the
// guard variable set. It runs the real serve subcommand until killed.
func TestHelperProcessServe(t *testing.T) {
	if os.Getenv("PPSERVE_HELPER") != "1" {
		return
	}
	err := run(context.Background(), []string{
		"serve", "-addr", "127.0.0.1:0",
		"-store", os.Getenv("PPSERVE_HELPER_STORE"),
		"-workers", "2",
		"-addr-file", os.Getenv("PPSERVE_HELPER_ADDRFILE"),
	}, io.Discard)
	if err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// postQuery posts one query at a live daemon and returns the response
// status, X-Cache header and envelope.
func postQuery(t *testing.T, base, path, body string) (int, string, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("POST %s: non-JSON response: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), doc
}

// The crash-recovery drill: a real daemon process is SIGKILLed with a
// compute in flight — no shutdown path runs, publish temps and a torn
// journal tail may be left behind — and a fresh daemon over the same
// store must come up ready and serve the pre-crash results warm,
// byte-identical.
func TestCrashRecoveryWarmReplay(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	addrFile := filepath.Join(dir, "addr.txt")

	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperProcessServe$")
	cmd.Env = append(os.Environ(),
		"PPSERVE_HELPER=1",
		"PPSERVE_HELPER_STORE="+storeDir,
		"PPSERVE_HELPER_ADDRFILE="+addrFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never published its address")
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	base := "http://" + addr

	// Seed the store and record the sealed answers.
	queries := []struct{ path, body string }{
		{"/v1/bounds", `{"op":"rackoff"}`},
		{"/v1/simulate", `{"spec":{"protocol":"flock","param":3},"x":5,"trials":2,"max_steps":30000,"seed":7}`},
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		code, _, doc := postQuery(t, base, q.path, q.body)
		if code != http.StatusOK {
			t.Fatalf("seeding %s: %d", q.path, code)
		}
		want[i] = doc["result"]
	}

	// Put a compute in flight, then SIGKILL mid-stride: the helper gets
	// no chance to flush, close, or clean anything up.
	go func() {
		resp, err := http.Post(base+"/v1/verify", "application/json",
			strings.NewReader(`{"spec":{"protocol":"flock","param":2},"max_x":6,"budget":1000000}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // "signal: killed" is the point

	// A fresh daemon over the same battered store directory.
	s, err := serve.New(serve.Config{StoreDir: storeDir, Workers: 2})
	if err != nil {
		t.Fatalf("restart over the crashed store: %v", err)
	}
	h := s.Handler()
	rec := newGetRecorder(h, "/readyz")
	if rec.code != http.StatusOK {
		t.Fatalf("/readyz after crash recovery: %d %s", rec.code, rec.body.String())
	}
	for i, q := range queries {
		req, _ := http.NewRequest("POST", q.path, strings.NewReader(q.body))
		rw := &recorder{header: http.Header{}}
		h.ServeHTTP(rw, req)
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(rw.body.Bytes(), &doc); err != nil {
			t.Fatalf("replay %s: non-JSON: %s", q.path, rw.body.String())
		}
		if rw.code != http.StatusOK {
			t.Fatalf("replay %s: %d %s", q.path, rw.code, rw.body.String())
		}
		if rw.header.Get("X-Cache") != "hit" {
			t.Errorf("replay %s recomputed instead of hitting the surviving store", q.path)
		}
		if !bytes.Equal(doc["result"], want[i]) {
			t.Errorf("replay %s differs from the pre-crash answer:\n got %s\nwant %s", q.path, doc["result"], want[i])
		}
	}
}

// recorder is a minimal ResponseWriter for driving a Handler without
// importing httptest's server machinery twice over.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}
func (r *recorder) WriteHeader(code int) { r.code = code }

func newGetRecorder(h http.Handler, path string) *recorder {
	rw := &recorder{header: http.Header{}}
	req, _ := http.NewRequest("GET", path, nil)
	h.ServeHTTP(rw, req)
	return rw
}

// The gc subcommand exits zero on recoverable damage — a cron
// invocation cares that the store is healthy afterwards, not that it
// was pristine before — and its report names what it repaired.
func TestGCSubcommandRecoverableDamageExitsZero(t *testing.T) {
	dir := t.TempDir()
	sha := strings.Repeat("ab", 32)
	fan := filepath.Join(dir, "objects", sha[:2])
	if err := os.MkdirAll(fan, 0o755); err != nil {
		t.Fatal(err)
	}
	// A corrupt artifact and a stray publish temp: both recoverable.
	if err := os.WriteFile(filepath.Join(fan, sha+".json"), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(fan, sha+".json.tmp.999.1"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"gc", "-store", dir}, &sb); err != nil {
		t.Fatalf("recoverable damage made gc exit non-zero: %v", err)
	}
	out := sb.String()
	for _, wantPart := range []string{"quarantined=1", "dropped_tmp=1", "0 objects"} {
		if !strings.Contains(out, wantPart) {
			t.Errorf("gc report missing %q:\n%s", wantPart, out)
		}
	}
	// An unusable store path — a plain file where the directory should
	// be — is a hard error, not a silent zero.
	bogus := filepath.Join(dir, "flatfile")
	if err := os.WriteFile(bogus, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"gc", "-store", bogus}, &strings.Builder{}); err == nil {
		t.Error("gc over an unusable store path exited zero")
	}
}

// The chaos flags arm a seeded fault schedule under a real daemon and
// announce it — the CI chaos leg greps for this banner.
func TestServeChaosFlagsAnnounce(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr.txt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sb strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"serve", "-addr", "127.0.0.1:0", "-store", filepath.Join(dir, "store"),
			"-workers", "2", "-addr-file", addrFile,
			"-chaos-seed", "7", "-chaos-faults", "4",
		}, &sb)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(addrFile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos daemon never came up:\n%s", sb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("chaos daemon exit: %v\n%s", err, sb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("chaos daemon did not shut down")
	}
	if !strings.Contains(sb.String(), "CHAOS MODE: 4 faults from seed 7") {
		t.Errorf("no chaos banner:\n%s", sb.String())
	}
}
