// Command ppbench runs the reproduction experiments E1–E10 (see
// DESIGN.md) and prints each as a paper-shaped table with the claim it
// reproduces and the measured verdict.
//
// Usage:
//
//	ppbench            # run every experiment
//	ppbench E3 E8      # run selected experiments by id
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	tables, err := experiments.All()
	if err != nil {
		return err
	}
	want := make(map[string]bool, len(args))
	for _, a := range args {
		want[strings.ToUpper(a)] = true
	}
	printed := 0
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] {
			continue
		}
		fmt.Println(t.Render())
		printed++
	}
	if len(want) > 0 && printed == 0 {
		return fmt.Errorf("no experiment matches %v", args)
	}
	return nil
}
