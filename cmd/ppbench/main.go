// Command ppbench runs the reproduction experiments E1–E11 (see
// DESIGN.md) and prints each as a paper-shaped table with the claim it
// reproduces and the measured verdict.
//
// Usage:
//
//	ppbench                      # run every experiment
//	ppbench E3 E8                # run selected experiments by id
//	ppbench -json bench.json     # also record per-experiment timings
//
// With -json, per-experiment timing results (name, wall time in ns,
// heap allocation count) are written to the given path together with
// host metadata (hostname, OS/arch, CPU count, GOMAXPROCS, Go version,
// VCS commit), so BENCH_*.json artifacts collected from different
// machines — per-PR CI uploads, sharded sweep hosts — stay comparable.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppbench:", err)
		os.Exit(1)
	}
}

// timing is one experiment's measured cost, in the spirit of go test
// -bench output: one "op" is one full regeneration of the experiment
// table.
type timing struct {
	Name     string `json:"name"`
	NsPerOp  int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
}

// artifact is the -json document: the timings plus the host/commit
// metadata that makes artifacts from different machines comparable.
type artifact struct {
	Schema     int      `json:"schema"` // artifact format version
	Hostname   string   `json:"hostname,omitempty"`
	OS         string   `json:"os"`
	Arch       string   `json:"arch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	GoVersion  string   `json:"go_version"`
	Commit     string   `json:"commit,omitempty"`
	Timings    []timing `json:"timings"`
}

// hostArtifact fills in everything but the timings.
func hostArtifact() artifact {
	a := artifact{
		Schema:     1,
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if h, err := os.Hostname(); err == nil {
		a.Hostname = h
	}
	a.Commit = commit()
	return a
}

// commit best-efforts the VCS revision: the build info stamp when the
// binary was built with VCS stamping, otherwise a direct git query
// (the `go run` path); empty when neither is available.
func commit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	rev := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		rev += "-dirty"
	}
	return rev
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppbench", flag.ContinueOnError)
	jsonPath := fs.String("json", "", "write per-experiment timings (name, ns_op, allocs_op) to this path")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	want := make(map[string]bool, fs.NArg())
	for _, a := range fs.Args() {
		want[strings.ToUpper(a)] = true
	}
	var timings []timing
	printed := 0
	for _, e := range experiments.Index() {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl, err := e.Run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return err
		}
		fmt.Println(tbl.Render())
		printed++
		timings = append(timings, timing{
			Name:     e.ID,
			NsPerOp:  elapsed.Nanoseconds(),
			AllocsOp: after.Mallocs - before.Mallocs,
		})
	}
	if len(want) > 0 && printed == 0 {
		return fmt.Errorf("no experiment matches %v", fs.Args())
	}
	if *jsonPath != "" {
		art := hostArtifact()
		art.Timings = timings
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing timings: %w", err)
		}
	}
	return nil
}
