// Command ppbench runs the reproduction experiments E1–E10 (see
// DESIGN.md) and prints each as a paper-shaped table with the claim it
// reproduces and the measured verdict.
//
// Usage:
//
//	ppbench                      # run every experiment
//	ppbench E3 E8                # run selected experiments by id
//	ppbench -json bench.json     # also record per-experiment timings
//
// With -json, per-experiment timing results (name, wall time in ns,
// heap allocation count) are written to the given path so successive
// PRs can track the perf trajectory in BENCH_*.json files.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppbench:", err)
		os.Exit(1)
	}
}

// timing is one experiment's measured cost, in the spirit of go test
// -bench output: one "op" is one full regeneration of the experiment
// table.
type timing struct {
	Name     string `json:"name"`
	NsPerOp  int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppbench", flag.ContinueOnError)
	jsonPath := fs.String("json", "", "write per-experiment timings (name, ns_op, allocs_op) to this path")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	want := make(map[string]bool, fs.NArg())
	for _, a := range fs.Args() {
		want[strings.ToUpper(a)] = true
	}
	var timings []timing
	printed := 0
	for _, e := range experiments.Index() {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl, err := e.Run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return err
		}
		fmt.Println(tbl.Render())
		printed++
		timings = append(timings, timing{
			Name:     e.ID,
			NsPerOp:  elapsed.Nanoseconds(),
			AllocsOp: after.Mallocs - before.Mallocs,
		})
	}
	if len(want) > 0 && printed == 0 {
		return fmt.Errorf("no experiment matches %v", fs.Args())
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(timings, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing timings: %w", err)
		}
	}
	return nil
}
