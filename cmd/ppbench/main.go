// Command ppbench runs the reproduction experiments E1–E12w (see
// DESIGN.md) and prints each as a paper-shaped table with the claim it
// reproduces and the measured verdict.
//
// Usage:
//
//	ppbench                      # run every experiment
//	ppbench E3 E8                # run selected experiments by id
//	ppbench -run 'E1[01]'        # run experiments whose id matches a regexp
//	ppbench -json bench.json     # also record per-experiment timings
//
// Positional ids and -run compose as a union: an experiment runs when
// either selects it. Shard hosts in a distributed sweep use -run to
// time only the experiments they executed.
//
// With -json, per-experiment timing results (name, wall time in ns,
// heap allocation count) are written to the given path together with
// host metadata (hostname, OS/arch, CPU count, GOMAXPROCS, Go version,
// VCS commit; see internal/hostmeta), so BENCH_*.json artifacts
// collected from different machines — per-PR CI uploads, sharded sweep
// hosts — stay comparable.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/hostmeta"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppbench:", err)
		os.Exit(1)
	}
}

// timing and artifact are the shared bench-artifact schema
// (experiments.BenchTiming / BenchArtifact): ppbench writes it,
// ppsweep merge-bench folds files of it from many hosts into one
// trajectory table.
type (
	timing   = experiments.BenchTiming
	artifact = experiments.BenchArtifact
)

func run(args []string) error {
	fs := flag.NewFlagSet("ppbench", flag.ContinueOnError)
	jsonPath := fs.String("json", "", "write per-experiment timings (name, ns_op, allocs_op) to this path")
	runFilter := fs.String("run", "", "run only experiments whose id matches this regexp")
	workers := fs.Int("workers", 0, "cap GOMAXPROCS for the whole run (0 = all cores); results are identical, only timings change")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative (got %d)", *workers)
	}
	if *workers > 0 {
		// Experiments auto-detect GOMAXPROCS at every layer, so capping
		// it here bounds the whole run; hostmeta.Collect below records
		// the capped value into the artifact.
		runtime.GOMAXPROCS(*workers)
	}
	var re *regexp.Regexp
	if *runFilter != "" {
		var err error
		if re, err = regexp.Compile("(?i)" + *runFilter); err != nil {
			return fmt.Errorf("bad -run regexp: %w", err)
		}
	}
	want := make(map[string]bool, fs.NArg())
	for _, a := range fs.Args() {
		want[strings.ToUpper(a)] = true
	}
	selected := func(id string) bool {
		if len(want) == 0 && re == nil {
			return true
		}
		return want[strings.ToUpper(id)] || (re != nil && re.MatchString(id))
	}
	var timings []timing
	printed := 0
	for _, e := range experiments.Index() {
		if !selected(e.ID) {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl, err := e.Run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return err
		}
		fmt.Println(tbl.Render())
		printed++
		timings = append(timings, timing{
			Name:     e.ID,
			NsPerOp:  elapsed.Nanoseconds(),
			AllocsOp: after.Mallocs - before.Mallocs,
		})
	}
	if (len(want) > 0 || re != nil) && printed == 0 {
		return fmt.Errorf("no experiment matches %v", append(fs.Args(), *runFilter))
	}
	if *jsonPath != "" {
		art := artifact{Schema: experiments.BenchArtifactSchema, Meta: hostmeta.Collect()}
		art.Timings = timings
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing timings: %w", err)
		}
	}
	return nil
}
