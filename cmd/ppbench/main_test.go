package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunAll(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSelected(t *testing.T) {
	if err := run([]string{"e2", "E6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"E99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunRegexpFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	// ^E[26]$ selects exactly E2 and E6; case-insensitive like the
	// positional ids.
	if err := run([]string{"-run", "^e[26]$", "-json", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read timings: %v", err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(art.Timings) != 2 || art.Timings[0].Name != "E2" || art.Timings[1].Name != "E6" {
		t.Fatalf("timings = %+v, want exactly E2 and E6", art.Timings)
	}
}

func TestRunRegexpUnionWithIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-run", "^E2$", "-json", path, "E6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read timings: %v", err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(art.Timings) != 2 {
		t.Fatalf("timings = %+v, want the union E2 ∪ E6", art.Timings)
	}
}

func TestRunRegexpNoMatch(t *testing.T) {
	if err := run([]string{"-run", "^ZZZ$"}); err == nil {
		t.Fatal("no-match regexp accepted")
	}
}

func TestRunBadRegexp(t *testing.T) {
	if err := run([]string{"-run", "("}); err == nil {
		t.Fatal("invalid regexp accepted")
	}
}

func TestRunJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-json", path, "E2", "E6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read timings: %v", err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(art.Timings) != 2 {
		t.Fatalf("timings = %d entries, want 2", len(art.Timings))
	}
	for _, tm := range art.Timings {
		if tm.Name != "E2" && tm.Name != "E6" {
			t.Errorf("unexpected timing %+v", tm)
		}
		if tm.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns_op %d", tm.Name, tm.NsPerOp)
		}
	}
	// The cross-machine comparability metadata must be present.
	if art.Schema != 1 || art.OS == "" || art.Arch == "" || art.NumCPU <= 0 ||
		art.GOMAXPROCS <= 0 || art.GoVersion == "" {
		t.Errorf("incomplete host metadata: %+v", art)
	}
}
