package main

import "testing"

func TestRunAll(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSelected(t *testing.T) {
	if err := run([]string{"e2", "E6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"E99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
