package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunAll(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSelected(t *testing.T) {
	if err := run([]string{"e2", "E6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"E99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-json", path, "E2", "E6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read timings: %v", err)
	}
	var timings []timing
	if err := json.Unmarshal(data, &timings); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(timings) != 2 {
		t.Fatalf("timings = %d entries, want 2", len(timings))
	}
	for _, tm := range timings {
		if tm.Name != "E2" && tm.Name != "E6" {
			t.Errorf("unexpected timing %+v", tm)
		}
		if tm.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns_op %d", tm.Name, tm.NsPerOp)
		}
	}
}
