// Command ppsim simulates a built-in protocol under the uniform random
// scheduler and reports convergence.
//
// Usage:
//
//	ppsim -protocol example42 -param 4 -x 10 -trials 5 -seed 1
//
// For the majority protocol, -x sets the A count and -y the B count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/registry"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ppsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protocol = flag.String("protocol", "example42", fmt.Sprintf("construction: %v", registry.Names()))
		param    = flag.Int64("param", 2, "construction parameter (n or k)")
		x        = flag.Int64("x", 3, "agents in the first input state")
		y        = flag.Int64("y", 0, "agents in the second input state (majority only)")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		steps    = flag.Int("steps", 1_000_000, "max interactions per run")
		patience = flag.Int("patience", 5_000, "consensus patience (steps without output change)")
		trials   = flag.Int("trials", 1, "number of runs")
	)
	flag.Parse()

	p, n, err := registry.Make(*protocol, *param)
	if err != nil {
		return err
	}
	fmt.Println(p)

	counts := map[string]int64{}
	initial := p.InitialStates()
	counts[initial[0]] = *x
	if len(initial) > 1 {
		counts[initial[1]] = *y
	}
	input, err := p.Input(counts)
	if err != nil {
		return err
	}
	if n > 0 {
		fmt.Printf("predicate: %s ≥ %d; input x = %d; expected %v\n",
			initial[0], n, *x, *x >= n)
	}

	for tr := 0; tr < *trials; tr++ {
		res, err := sim.Run(p, input, sim.Options{
			Seed:           *seed + int64(tr),
			MaxSteps:       *steps,
			StablePatience: *patience,
		})
		if err != nil {
			return err
		}
		verdict := "no consensus"
		if v, ok := res.ConsensusBool(); ok {
			verdict = fmt.Sprintf("consensus %v", v)
		}
		fmt.Printf("run %d: steps=%d lastChange=%d converged=%v deadlocked=%v output=%v (%s)\n  final: %v\n",
			tr, res.Steps, res.LastChange, res.Converged, res.Deadlocked, res.Output, verdict, res.Final)
	}
	return nil
}
