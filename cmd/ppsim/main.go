// Command ppsim simulates a built-in protocol under a selectable
// randomized scheduler and reports convergence.
//
// Usage:
//
//	ppsim -protocol example42 -param 4 -x 10 -trials 5 -seed 1
//	ppsim -protocol flock -param 8 -x 40 -scheduler uniform
//	ppsim -protocol majority -x 12 -y 8 -scheduler batched -batch 128
//	ppsim -protocol power2 -param 30 -x 1073741824 -scheduler countbatch -steps 100000000000 -patience 0
//
// For the majority protocol, -x sets the A count and -y the B count.
// Schedulers: weighted (exact, default), uniform (classical random
// pairs; conservative 2→2 protocols only), batched (k weighted steps
// per convergence check), countbatch (count-based tau-leaping batches;
// reaches populations of 10⁹ agents in seconds). Large-n runs should
// use -patience 0 (run to the absorbing deadlock): a fixed patience is
// satisfied by a single large batch — and, under any scheduler, by the
// long unchanged-output prefix of a big population — long before the
// run is actually stable.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/registry"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppsim", flag.ContinueOnError)
	var (
		protocol  = fs.String("protocol", "example42", fmt.Sprintf("construction: %v", registry.Names()))
		param     = fs.Int64("param", 2, "construction parameter (n or k)")
		x         = fs.Int64("x", 3, "agents in the first input state")
		y         = fs.Int64("y", 0, "agents in the second input state (majority only)")
		seed      = fs.Int64("seed", 1, "PRNG seed")
		steps     = fs.Int("steps", 1_000_000, "max interactions per run")
		patience  = fs.Int("patience", 5_000, "consensus patience (steps without output change)")
		trials    = fs.Int("trials", 1, "number of runs")
		scheduler = fs.String("scheduler", "weighted", "scheduler: weighted, uniform, batched, countbatch or auto")
		batch     = fs.Int("batch", 0, fmt.Sprintf("batched batch size / countbatch and auto aggregation threshold (0 = %d / %d)", sim.DefaultBatch, sim.DefaultMinBatch))
		eps       = fs.Float64("eps", 0, fmt.Sprintf("countbatch/auto drift tolerance in (0,1) (0 = %g)", sim.DefaultEpsilon))
		workers   = fs.Int("workers", 0, "worker bound for the scheduler's parallel draw (0 = all cores); results are identical for any value")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	if *batch < 0 {
		return fmt.Errorf("-batch must be non-negative (got %d)", *batch)
	}
	batchable := *scheduler == "batched" || *scheduler == "countbatch" || *scheduler == "auto"
	if *batch != 0 && !batchable {
		return fmt.Errorf("-batch only applies to -scheduler batched, countbatch or auto (got %q)", *scheduler)
	}
	if *eps != 0 && *scheduler != "countbatch" && *scheduler != "auto" {
		return fmt.Errorf("-eps only applies to -scheduler countbatch or auto (got %q)", *scheduler)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative (got %d)", *workers)
	}
	sched, err := sim.SchedulerByName(*scheduler, *batch, *eps, *workers)
	if err != nil {
		return err
	}
	p, n, err := registry.Make(*protocol, *param)
	if err != nil {
		return err
	}
	fmt.Println(p)
	fmt.Printf("scheduler: %s\n", sched.Name())

	counts := map[string]int64{}
	initial := p.InitialStates()
	counts[initial[0]] = *x
	if len(initial) > 1 {
		counts[initial[1]] = *y
	}
	input, err := p.Input(counts)
	if err != nil {
		return err
	}
	if n > 0 {
		fmt.Printf("predicate: %s ≥ %d; input x = %d; expected %v\n",
			initial[0], n, *x, *x >= n)
	}

	for tr := 0; tr < *trials; tr++ {
		start := time.Now()
		res, err := sim.Run(p, input, sim.Options{
			Seed:           sim.DeriveSeed(*seed, tr),
			MaxSteps:       *steps,
			StablePatience: *patience,
			Scheduler:      sched,
		})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		verdict := "no consensus"
		if v, ok := res.ConsensusBool(); ok {
			verdict = fmt.Sprintf("consensus %v", v)
		}
		fmt.Printf("run %d: steps=%d lastChange=%d converged=%v deadlocked=%v output=%v (%s) in %v\n  final: %v\n",
			tr, res.Steps, res.LastChange, res.Converged, res.Deadlocked, res.Output, verdict, elapsed.Round(time.Microsecond), res.Final)
	}
	return nil
}
