package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSchedulers(t *testing.T) {
	for _, sched := range []string{"weighted", "uniform", "batched", "countbatch"} {
		args := []string{
			"-protocol", "flock", "-param", "4", "-x", "8",
			"-trials", "2", "-steps", "200000", "-scheduler", sched,
		}
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunCountBatchOptions(t *testing.T) {
	args := []string{
		"-protocol", "power2", "-param", "10", "-x", "1024", "-patience", "0",
		"-steps", "10000000", "-scheduler", "countbatch", "-batch", "32", "-eps", "0.02",
	}
	if err := run(args); err != nil {
		t.Errorf("run(%v): %v", args, err)
	}
}

func TestRunMajority(t *testing.T) {
	args := []string{"-protocol", "majority", "-x", "7", "-y", "3", "-steps", "200000"}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "nope"},
		{"-scheduler", "nope"},
		// Example 4.1 has width-n transitions: the uniform scheduler
		// must reject it.
		{"-protocol", "example41", "-param", "3", "-scheduler", "uniform"},
		// -batch without the batched scheduler would be silently ignored.
		{"-scheduler", "uniform", "-batch", "128"},
		// A negative batch size would be silently coerced to the default.
		{"-scheduler", "batched", "-batch", "-5"},
		// -eps outside (0,1) or off the countbatch scheduler.
		{"-scheduler", "countbatch", "-eps", "1.5"},
		{"-scheduler", "weighted", "-eps", "0.1"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): error expected", args)
		}
	}
}
