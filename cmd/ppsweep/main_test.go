package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/shard"
)

// planArgs builds the shared flag tail of a small flock sweep.
func planArgs(dir string, shards int, planName string) []string {
	return []string{
		"plan", "-protocol", "flock", "-param", "4", "-sizes", "3,4,9",
		"-trials", "4", "-seed", "7", "-steps", "200000", "-patience", "1000",
		"-shards", strconv.Itoa(shards), "-o", filepath.Join(dir, planName),
	}
}

func mustRun(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatalf("ppsweep %v: %v", args, err)
	}
	return sb.String()
}

// The CLI round trip of the acceptance criteria: plan into 2 shards,
// run both, merge — and the merged document is byte-identical to the
// one produced by the unsharded (1-shard) pipeline of the same spec.
func TestPlanRunMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan2.json")...)
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan2.json"), "-shard", "s000",
		"-o", filepath.Join(dir, "part-s000.json"))
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan2.json"), "-shard", "s001",
		"-o", filepath.Join(dir, "part-s001.json"))
	out := mustRun(t, "merge", "-o", filepath.Join(dir, "merged2.json"),
		filepath.Join(dir, "part-s000.json"), filepath.Join(dir, "part-s001.json"))
	if !strings.Contains(out, "mean steps") {
		t.Errorf("merge table missing from output:\n%s", out)
	}

	mustRun(t, planArgs(dir, 1, "plan1.json")...)
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan1.json"), "-shard", "s000",
		"-o", filepath.Join(dir, "part-single.json"))
	mustRun(t, "merge", "-o", filepath.Join(dir, "merged1.json"),
		filepath.Join(dir, "part-single.json"))

	sharded, err := os.ReadFile(filepath.Join(dir, "merged2.json"))
	if err != nil {
		t.Fatal(err)
	}
	single, err := os.ReadFile(filepath.Join(dir, "merged1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(sharded) != string(single) {
		t.Errorf("2-shard merge differs from unsharded merge:\n%s\nvs\n%s", sharded, single)
	}

	var merged shard.Merged
	if err := json.Unmarshal(sharded, &merged); err != nil {
		t.Fatalf("merged document: %v", err)
	}
	if len(merged.Points) != 3 {
		t.Fatalf("merged points = %d, want 3", len(merged.Points))
	}
	for _, pt := range merged.Points {
		if pt.Stats.Trials != 4 || pt.Stats.Correct != 4 {
			t.Errorf("x=%d: %d/%d correct of %d trials",
				pt.X, pt.Stats.Correct, pt.Stats.Trials, pt.Stats.Trials)
		}
	}
}

func TestPlanDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "a.json")...)
	mustRun(t, planArgs(dir, 2, "b.json")...)
	a, err := os.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same plan flags produced different manifests")
	}
}

func TestMergeRejectsDuplicateArtifact(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	part := filepath.Join(dir, "part-s000.json")
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan.json"), "-shard", "s000", "-o", part)
	if err := run(context.Background(),
		[]string{"merge", "-o", filepath.Join(dir, "m.json"), part, part}, &strings.Builder{}); err == nil {
		t.Error("merge accepted the same shard twice")
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"plan", "-protocol", "flock", "-param", "4", "-trials", "2", "-shards", "1"}, // no sizes
		{"plan", "-protocol", "nope", "-sizes", "4", "-o", filepath.Join(dir, "p.json")},
		{"plan", "-protocol", "majority", "-sizes", "4", "-o", filepath.Join(dir, "p.json")}, // non-counting
		{"plan", "-protocol", "flock", "-param", "4", "-sizes", "4,x", "-o", filepath.Join(dir, "p.json")},
		{"run", "-plan", filepath.Join(dir, "absent.json"), "-shard", "s000"},
		{"run", "-plan", filepath.Join(dir, "absent.json")}, // no shard id
		{"merge", "-o", filepath.Join(dir, "m.json")},       // no artifacts
		{"merge", "-o", filepath.Join(dir, "m.json"), filepath.Join(dir, "absent.json")},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &strings.Builder{}); err == nil {
			t.Errorf("ppsweep %v: expected error", args)
		}
	}
}

func TestRunUnknownShardID(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	if err := run(context.Background(),
		[]string{"run", "-plan", filepath.Join(dir, "plan.json"), "-shard", "s999"}, &strings.Builder{}); err == nil {
		t.Error("unknown shard id accepted")
	}
}
