package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/shard"
)

// planArgs builds the shared flag tail of a small flock sweep.
func planArgs(dir string, shards int, planName string) []string {
	return []string{
		"plan", "-protocol", "flock", "-param", "4", "-sizes", "3,4,9",
		"-trials", "4", "-seed", "7", "-steps", "200000", "-patience", "1000",
		"-shards", strconv.Itoa(shards), "-o", filepath.Join(dir, planName),
	}
}

func mustRun(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatalf("ppsweep %v: %v", args, err)
	}
	return sb.String()
}

// The CLI round trip of the acceptance criteria: plan into 2 shards,
// run both, merge — and the merged document is byte-identical to the
// one produced by the unsharded (1-shard) pipeline of the same spec.
func TestPlanRunMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan2.json")...)
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan2.json"), "-shard", "s000",
		"-o", filepath.Join(dir, "part-s000.json"))
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan2.json"), "-shard", "s001",
		"-o", filepath.Join(dir, "part-s001.json"))
	out := mustRun(t, "merge", "-o", filepath.Join(dir, "merged2.json"),
		filepath.Join(dir, "part-s000.json"), filepath.Join(dir, "part-s001.json"))
	if !strings.Contains(out, "mean steps") {
		t.Errorf("merge table missing from output:\n%s", out)
	}

	mustRun(t, planArgs(dir, 1, "plan1.json")...)
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan1.json"), "-shard", "s000",
		"-o", filepath.Join(dir, "part-single.json"))
	mustRun(t, "merge", "-o", filepath.Join(dir, "merged1.json"),
		filepath.Join(dir, "part-single.json"))

	sharded, err := os.ReadFile(filepath.Join(dir, "merged2.json"))
	if err != nil {
		t.Fatal(err)
	}
	single, err := os.ReadFile(filepath.Join(dir, "merged1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(sharded) != string(single) {
		t.Errorf("2-shard merge differs from unsharded merge:\n%s\nvs\n%s", sharded, single)
	}

	var merged shard.Merged
	if err := json.Unmarshal(sharded, &merged); err != nil {
		t.Fatalf("merged document: %v", err)
	}
	if len(merged.Points) != 3 {
		t.Fatalf("merged points = %d, want 3", len(merged.Points))
	}
	for _, pt := range merged.Points {
		if pt.Stats.Trials != 4 || pt.Stats.Correct != 4 {
			t.Errorf("x=%d: %d/%d correct of %d trials",
				pt.X, pt.Stats.Correct, pt.Stats.Trials, pt.Stats.Trials)
		}
	}
}

func TestPlanDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "a.json")...)
	mustRun(t, planArgs(dir, 2, "b.json")...)
	a, err := os.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same plan flags produced different manifests")
	}
}

func TestMergeRejectsDuplicateArtifact(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	part := filepath.Join(dir, "part-s000.json")
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan.json"), "-shard", "s000", "-o", part)
	if err := run(context.Background(),
		[]string{"merge", "-o", filepath.Join(dir, "m.json"), part, part}, &strings.Builder{}); err == nil {
		t.Error("merge accepted the same shard twice")
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"plan", "-protocol", "flock", "-param", "4", "-trials", "2", "-shards", "1"}, // no sizes
		{"plan", "-protocol", "nope", "-sizes", "4", "-o", filepath.Join(dir, "p.json")},
		{"plan", "-protocol", "majority", "-sizes", "4", "-o", filepath.Join(dir, "p.json")}, // non-counting
		{"plan", "-protocol", "flock", "-param", "4", "-sizes", "4,x", "-o", filepath.Join(dir, "p.json")},
		{"run", "-plan", filepath.Join(dir, "absent.json"), "-shard", "s000"},
		{"run", "-plan", filepath.Join(dir, "absent.json")}, // no shard id
		{"merge", "-o", filepath.Join(dir, "m.json")},       // no artifacts
		{"merge", "-o", filepath.Join(dir, "m.json"), filepath.Join(dir, "absent.json")},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &strings.Builder{}); err == nil {
			t.Errorf("ppsweep %v: expected error", args)
		}
	}
}

// The merge error paths, driven from the CLI: a missing shard (gap),
// a shard delivered twice (overlap — see also
// TestMergeRejectsDuplicateArtifact), a mixed schema version, and an
// artifact from a different sweep must all fail with a diagnostic,
// not a silently wrong table.
func TestMergeErrorPathsCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	s0 := filepath.Join(dir, "part-s000.json")
	s1 := filepath.Join(dir, "part-s001.json")
	mustRun(t, "run", "-plan", plan, "-shard", "s000", "-o", s0)
	mustRun(t, "run", "-plan", plan, "-shard", "s001", "-o", s1)

	rewrite := func(t *testing.T, path string, mutate func(*shard.Artifact)) string {
		t.Helper()
		var a shard.Artifact
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &a); err != nil {
			t.Fatal(err)
		}
		mutate(&a)
		// Strip the checksum: a content edit under the old sum would be
		// flagged as corruption before the error path under test fires.
		a.Checksum = ""
		out := filepath.Join(t.TempDir(), "mutated.json")
		data, err = json.MarshalIndent(&a, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"gap", []string{s0}, "no partial results"},
		{"overlap", []string{s0, s1, s1}, "overlap"},
		{"mixed schema", []string{s0, rewrite(t, s1, func(a *shard.Artifact) { a.Schema++ })}, "schema"},
		{"foreign sweep", []string{s0, rewrite(t, s1, func(a *shard.Artifact) { a.Sweep.Seed++ })}, "different sweep"},
	}
	for _, tc := range cases {
		args := append([]string{"merge", "-o", filepath.Join(t.TempDir(), "m.json")}, tc.args...)
		err := run(context.Background(), args, &strings.Builder{})
		if err == nil {
			t.Errorf("%s: merge accepted bad artifact set", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// Kill-mid-shard and resume through the CLI: a worker run with
// -partials that loses its artifact (and one cell) re-runs and
// produces a byte-identical artifact from the surviving cells.
func TestRunPartialsResumeCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 1, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	cells := filepath.Join(dir, "cells")
	art := filepath.Join(dir, "part-s000.json")
	mustRun(t, "run", "-plan", plan, "-shard", "s000", "-partials", cells, "-o", art)
	full, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no cell partials persisted")
	}
	// Simulate a worker killed before finishing: the artifact and one
	// cell are lost, the other cells survive.
	if err := os.Remove(art); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(cells, entries[0].Name())); err != nil {
		t.Fatal(err)
	}
	mustRun(t, "run", "-plan", plan, "-shard", "s000", "-partials", cells, "-o", art)
	resumed, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumed) != string(full) {
		t.Errorf("resumed artifact differs from uninterrupted run:\n%s\nvs\n%s", resumed, full)
	}
}

// The dispatcher drill, CLI end to end: worker 1 dies mid-shard
// (fault injection), worker 2 steals the expired lease, resumes from
// the cell partials, drains the queue and merges — byte-identically
// to the plain 2-shard plan/run/merge pipeline.
func TestDispatchKillRedispatchCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	queue := filepath.Join(dir, "queue")
	if err := run(context.Background(),
		[]string{"dispatch", "-plan", plan, "-dir", queue, "-fail-after-cells", "1"},
		&strings.Builder{}); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("fault-injected dispatch: want injected failure, got %v", err)
	}
	merged := filepath.Join(dir, "merged-dispatch.json")
	mustRun(t, "dispatch", "-plan", plan, "-dir", queue, "-lease-ttl", "1ns", "-o", merged)

	// Reference: the ordinary worker pipeline of the same plan.
	mustRun(t, "run", "-plan", plan, "-shard", "s000", "-o", filepath.Join(dir, "ref-s000.json"))
	mustRun(t, "run", "-plan", plan, "-shard", "s001", "-o", filepath.Join(dir, "ref-s001.json"))
	ref := filepath.Join(dir, "merged-ref.json")
	mustRun(t, "merge", "-o", ref,
		filepath.Join(dir, "ref-s000.json"), filepath.Join(dir, "ref-s001.json"))
	a, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("dispatched merge differs from plan/run/merge pipeline:\n%s\nvs\n%s", a, b)
	}
}

// merge-bench folds the repo's committed timing artifacts into one
// trajectory table.
func TestMergeBenchCLI(t *testing.T) {
	dir := t.TempDir()
	outJSON := filepath.Join(dir, "traj.json")
	out := mustRun(t, "merge-bench", "-o", outJSON,
		"../../BENCH_PR1.json", "../../BENCH_PR2.json", "../../BENCH_PR4.json")
	for _, want := range []string{"experiment", "E2", "BENCH_PR1", "BENCH_PR4"} {
		if !strings.Contains(out, want) {
			t.Errorf("merge-bench table missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(outJSON); err != nil {
		t.Errorf("merged trajectory JSON not written: %v", err)
	}
	if err := run(context.Background(), []string{"merge-bench"}, &strings.Builder{}); err == nil {
		t.Error("merge-bench with no files accepted")
	}
}

func TestRunUnknownShardID(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	if err := run(context.Background(),
		[]string{"run", "-plan", filepath.Join(dir, "plan.json"), "-shard", "s999"}, &strings.Builder{}); err == nil {
		t.Error("unknown shard id accepted")
	}
}

// anytimePlanArgs plans a blocked sweep sized for the stop rule to
// fire well before the trial budget: flock(4), 48 trials in blocks of
// 4.
func anytimePlanArgs(dir, planName string) []string {
	return []string{
		"plan", "-protocol", "flock", "-param", "4", "-sizes", "2,4",
		"-trials", "48", "-seed", "1", "-steps", "200000", "-patience", "1000",
		"-block", "4", "-shards", "1", "-o", filepath.Join(dir, planName),
	}
}

// merge -partial folds a strict subset of a sweep into a valid partial
// document, and the strict merge of the same subset fails with a hint
// pointing at -partial.
func TestMergePartialSubsetCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	s0 := filepath.Join(dir, "part-s000.json")
	mustRun(t, "run", "-plan", plan, "-shard", "s000", "-o", s0)

	err := run(context.Background(),
		[]string{"merge", "-o", filepath.Join(dir, "strict.json"), s0}, &strings.Builder{})
	if err == nil {
		t.Fatal("strict merge accepted an incomplete artifact set")
	}
	if !strings.Contains(err.Error(), "-partial") {
		t.Errorf("strict-merge error %q does not hint at -partial", err)
	}

	partial := filepath.Join(dir, "partial.json")
	out := mustRun(t, "merge", "-partial", "-o", partial, s0)
	for _, want := range []string{"anytime", "done", "planned"} {
		if !strings.Contains(out, want) {
			t.Errorf("merge -partial output missing %q:\n%s", want, out)
		}
	}
	var doc shard.AnytimeMerged
	data, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Partial {
		t.Error("subset merge not marked partial")
	}
	incomplete := 0
	for _, pt := range doc.Points {
		if pt.TrialsPlanned > 0 && pt.Stats.Trials < pt.TrialsPlanned {
			incomplete++
		}
	}
	if incomplete == 0 {
		t.Error("no point reports missing trials in a half-sweep merge")
	}
}

// merge -partial accepts a full queue directory (artifacts plus cell
// partials) and, with every shard present, reproduces the strict merge
// byte for byte modulo the anytime schema.
func TestMergePartialFullSetCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	s0 := filepath.Join(dir, "part-s000.json")
	s1 := filepath.Join(dir, "part-s001.json")
	mustRun(t, "run", "-plan", plan, "-shard", "s000", "-o", s0)
	mustRun(t, "run", "-plan", plan, "-shard", "s001", "-o", s1)
	strictPath := filepath.Join(dir, "strict.json")
	anytimePath := filepath.Join(dir, "anytime.json")
	mustRun(t, "merge", "-o", strictPath, s0, s1)
	mustRun(t, "merge", "-partial", "-o", anytimePath, s0, s1)
	strict, err := os.ReadFile(strictPath)
	if err != nil {
		t.Fatal(err)
	}
	anytime, err := os.ReadFile(anytimePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(strict) != string(anytime) {
		t.Errorf("complete anytime merge differs from strict merge:\n%s\nvs\n%s", anytime, strict)
	}
}

// status renders the live view of a queue a fault-injected dispatcher
// abandoned halfway: completeness under 100%, a table, nothing
// written.
func TestStatusCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 2, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	queue := filepath.Join(dir, "queue")
	if err := run(context.Background(),
		[]string{"dispatch", "-plan", plan, "-dir", queue, "-fail-after-cells", "1"},
		&strings.Builder{}); err == nil {
		t.Fatal("fault-injected dispatch should fail")
	}
	before, err := os.ReadDir(queue)
	if err != nil {
		t.Fatal(err)
	}
	out := mustRun(t, "status", "-plan", plan, "-dir", queue)
	for _, want := range []string{"trials folded", "done", "planned", "mean steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(100%)") {
		t.Errorf("half-run queue reports full completeness:\n%s", out)
	}
	after, err := os.ReadDir(queue)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Errorf("status wrote into the queue directory: %d entries -> %d", len(before), len(after))
	}

	// An empty-but-existing directory is reported, not an error.
	empty := filepath.Join(dir, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if out := mustRun(t, "status", "-plan", plan, "-dir", empty); !strings.Contains(out, "nothing computed yet") {
		t.Errorf("empty queue status:\n%s", out)
	}
}

// -ci-target through the CLI: run stops early, the anytime merge of
// its partials reports stopped points with saved trials, and dispatch
// with the same rule produces the identical document.
func TestCITargetRunDispatchCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, anytimePlanArgs(dir, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	cells := filepath.Join(dir, "cells")
	art := filepath.Join(dir, "part-s000.json")
	out := mustRun(t, "run", "-plan", plan, "-shard", "s000",
		"-partials", cells, "-ci-target", "0.05", "-o", art)
	if !strings.Contains(out, "stopped early") {
		t.Errorf("run counters do not mention early stopping:\n%s", out)
	}
	merged := filepath.Join(dir, "merged.json")
	mustRun(t, "merge", "-partial", "-ci-target", "0.05", "-o", merged, art)
	var doc shard.AnytimeMerged
	data, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Partial {
		t.Error("stopped sweep reported partial: cancelled trials are not missing trials")
	}
	for _, pt := range doc.Points {
		if !pt.Stopped {
			t.Errorf("x=%d not stopped", pt.X)
		}
		if pt.TrialsDone >= pt.TrialsPlanned {
			t.Errorf("x=%d: stopping saved nothing (%d of %d)", pt.X, pt.TrialsDone, pt.TrialsPlanned)
		}
	}

	queue := filepath.Join(dir, "queue")
	dispatched := filepath.Join(dir, "dispatched.json")
	dout := mustRun(t, "dispatch", "-plan", plan, "-dir", queue,
		"-ci-target", "0.05", "-o", dispatched)
	if !strings.Contains(dout, "stop rule applied") {
		t.Errorf("dispatch merge does not mention the stop rule:\n%s", dout)
	}
	a, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dispatched)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("dispatched stop-rule merge differs from run+merge pipeline:\n%s\nvs\n%s", b, a)
	}
}

// The anytime flag error matrix: rules without their prerequisites,
// out-of-range targets, and cell inputs fed to the strict merge.
func TestAnytimeFlagErrorsCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, anytimePlanArgs(dir, "plan.json")...)
	plan := filepath.Join(dir, "plan.json")
	cells := filepath.Join(dir, "cells")
	mustRun(t, "run", "-plan", plan, "-shard", "s000", "-partials", cells,
		"-o", filepath.Join(dir, "part-s000.json"))
	entries, err := os.ReadDir(cells)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cell partials to test with: %v", err)
	}
	cell := filepath.Join(cells, entries[0].Name())

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"run rule sans partials", []string{"run", "-plan", plan, "-shard", "s000", "-ci-target", "0.05"}, "-partials"},
		{"run bad target", []string{"run", "-plan", plan, "-shard", "s000", "-partials", cells, "-ci-target", "2"}, "target"},
		{"run floor sans target", []string{"run", "-plan", plan, "-shard", "s000", "-partials", cells, "-min-trials", "4"}, "floor"},
		{"merge rule sans partial", []string{"merge", "-ci-target", "0.05", cell}, "-partial"},
		{"merge cells sans partial", []string{"merge", cell}, "-partial"},
		{"status no dir", []string{"status", "-plan", plan}, "-dir"},
		{"status bad target", []string{"status", "-plan", plan, "-dir", cells, "-ci-target", "-1"}, "target"},
	}
	for _, tc := range cases {
		err := run(context.Background(), append([]string{}, tc.args...), &strings.Builder{})
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// status rejects a directory whose artifacts belong to a different
// sweep than the given plan.
func TestStatusForeignPlanCLI(t *testing.T) {
	dir := t.TempDir()
	mustRun(t, planArgs(dir, 1, "plan.json")...)
	mustRun(t, anytimePlanArgs(dir, "other.json")...)
	cells := filepath.Join(dir, "cells")
	mustRun(t, "run", "-plan", filepath.Join(dir, "plan.json"), "-shard", "s000",
		"-partials", cells, "-o", filepath.Join(dir, "part.json"))
	err := run(context.Background(),
		[]string{"status", "-plan", filepath.Join(dir, "other.json"), "-dir", cells},
		&strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("foreign-plan status: got %v", err)
	}
}
