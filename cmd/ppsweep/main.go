// Command ppsweep orchestrates sharded population-protocol sweeps: it
// plans a sweep into self-contained shards (cost-weighted so large-x
// shards don't straggle), runs one shard (the worker role, one
// invocation per shard, on any host), drives a whole fleet through a
// shared-directory dispatch queue with lease-based retry and
// crash resume, and merges the partial artifacts back into exactly
// the single-process sweep result.
//
// Usage:
//
//	ppsweep plan -protocol flock -param 8 -sizes 16,64,256 -trials 20 \
//	        -seed 1 -shards 4 -cost auto -block 5 -o plan.json
//	ppsweep run -plan plan.json -shard s002 -o part-s002.json
//	ppsweep run -plan plan.json -shard s002 -partials cells/   # resumable
//	ppsweep run -plan plan.json -shard s002 -partials cells/ -ci-target 0.05
//	ppsweep dispatch -plan plan.json -dir queue/ -ci-target 0.05 -o merged.json
//	ppsweep merge -o merged.json part-*.json
//	ppsweep merge -partial -o partial.json queue/
//	ppsweep status -plan plan.json -dir queue/
//	ppsweep merge-bench BENCH_PR1.json BENCH_PR2.json BENCH_PR4.json
//
// plan partitions the (size × trial) grid deterministically: the same
// flags always produce the identical manifest, so independent hosts
// can re-derive the plan instead of shipping it. -cost weighs cells
// by expected work (auto picks ~x for the exact schedulers, ~log x
// for countbatch and auto; uniform reproduces equal trial counts) and cuts
// shards at equal cost. run executes one shard's trials with
// positionally derived seeds and writes a partial artifact stamped
// with host metadata; SIGINT cancels promptly, leaving no artifact;
// with -partials each completed cell is persisted by atomic rename
// and a rerun resumes from the surviving cells. dispatch runs one
// queue worker per invocation: start it on every host against a
// shared directory and the fleet leases shards, heartbeats, steals
// expired leases from dead workers (per-shard attempt cap), resumes
// from their cell partials, and — when every shard has an artifact —
// merges. Every persisted artifact carries a content checksum,
// verified on read; corrupt files are quarantined into corrupt/ and
// recomputed, transient I/O errors are retried with jittered backoff,
// and the counters printed on exit say how often each happened.
// dispatch exits 0 on a drained queue, 3 when shards failed
// terminally, 4 when interrupted, 5 when queue I/O gave up after
// retries, 1 otherwise. merge verifies the artifacts belong to one
// sweep, detects
// overlapping or missing shards and mixed schema versions, folds the
// mergeable accumulators, and writes a merged document that is
// bit-identical to what an unsharded run of the same spec would have
// produced. merge-bench folds ppbench -json timing artifacts from
// many hosts or PRs into one per-experiment trajectory table.
//
// Sweeps are anytime computations. plan -block dices the trial axis
// into fixed blocks so cell boundaries — the granularity of resumable
// persistence, streamed deltas, and stopping decisions — are
// independent of the shard count. -ci-target enables sequential
// stopping on run and dispatch: a size stops once its 95% CI
// half-width falls to the target fraction of its mean steps (after
// the -min-trials floor), and remaining cells are cancelled; the
// reported document is truncated at the same canonical boundary by
// the merge, so stopping never changes results, only how much work
// they cost. merge -partial folds any subset of artifacts and cell
// partials (pass queue directories or files) into a valid document
// with per-point trials_done/trials_planned completeness; with every
// cell present it is byte-identical to a strict merge. status renders
// that view for a live queue directory without writing anything.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faultfs"
	"repro/internal/registry"
	"repro/internal/shard"
	"repro/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppsweep:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps failure classes to distinct exit codes so wrapper
// scripts and CI can branch without parsing stderr: 3 = one or more
// shards failed terminally (the work keeps dying — inspect
// failed-*.json), 4 = interrupted/cancelled (rerun resumes), 5 = queue
// storage gave up after transient retries (fix the filesystem, rerun),
// 1 = everything else (bad flags, corrupt plan, …).
func exitCode(err error) int {
	switch {
	case errors.Is(err, shard.ErrShardsFailed):
		return 3
	case errors.Is(err, context.Canceled):
		return 4
	case errors.Is(err, shard.ErrQueueIO):
		return 5
	default:
		return 1
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: ppsweep <plan|run|dispatch|merge|status|merge-bench> [flags] (see -h of each subcommand)")
	}
	switch args[0] {
	case "plan":
		return runPlan(args[1:], out)
	case "run":
		return runShard(ctx, args[1:], out)
	case "dispatch":
		return runDispatch(ctx, args[1:], out)
	case "merge":
		return runMerge(args[1:], out)
	case "status":
		return runStatus(args[1:], out)
	case "merge-bench":
		return runMergeBench(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (have plan, run, dispatch, merge, status, merge-bench)", args[0])
	}
}

// stopRuleFlags registers the sequential-stopping flags shared by run,
// dispatch, merge and status; the returned closure builds and
// validates the rule after parsing.
func stopRuleFlags(fs *flag.FlagSet) func() (sim.StopRule, error) {
	ci := fs.Float64("ci-target", 0, "sequential stopping: stop a size once its 95% CI half-width is ≤ this fraction of its mean steps (0 = run every trial)")
	mt := fs.Int("min-trials", 0, "never stop a size before this many trials (0 = default 8; requires -ci-target)")
	return func() (sim.StopRule, error) {
		rule := sim.StopRule{TargetRelCI: *ci, MinTrials: *mt}
		if err := rule.Validate(); err != nil {
			return sim.StopRule{}, err
		}
		return rule, nil
	}
}

func runPlan(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep plan", flag.ContinueOnError)
	var (
		protocol  = fs.String("protocol", "", fmt.Sprintf("construction: %v", registry.Names()))
		param     = fs.Int64("param", 2, "construction parameter (n or k)")
		inState   = fs.String("input", "i", "input state holding the swept agent count")
		sizes     = fs.String("sizes", "", "comma-separated population sizes, e.g. 8,64,512")
		trials    = fs.Int("trials", 10, "trials per size")
		seed      = fs.Int64("seed", 1, "sweep base seed")
		steps     = fs.Int("steps", 0, "max interactions per run (0 = sim default)")
		patience  = fs.Int("patience", 0, "consensus patience (0 = whole-run mode)")
		scheduler = fs.String("scheduler", "", "scheduler: weighted (default), uniform, batched, countbatch, auto")
		batch     = fs.Int("batch", 0, "batched batch size / countbatch aggregation threshold")
		eps       = fs.Float64("eps", 0, "countbatch drift tolerance")
		shards    = fs.Int("shards", 1, "number of shards to plan")
		cost      = fs.String("cost", "auto", "cell cost model: auto (scheduler-aware), uniform (equal trial counts), linear, log")
		block     = fs.Int("block", 0, "dice each size's trial axis into blocks of this many trials, so cell boundaries are shard-count independent (0 = one cell per size per shard)")
		outPath   = fs.String("o", "plan.json", "manifest output path")
	)
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	xs, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	sw := shard.SweepSpec{
		Protocol:   *protocol,
		Param:      *param,
		InputState: *inState,
		Sizes:      xs,
		Trials:     *trials,
		Seed:       *seed,
		MaxSteps:   *steps,
		Patience:   *patience,
		Scheduler:  *scheduler,
		Batch:      *batch,
		Epsilon:    *eps,
	}
	// Fail at plan time, not on the worker: the protocol must exist and
	// decide a counting predicate.
	if _, _, err := sw.Build(); err != nil {
		return err
	}
	model, err := shard.CostByName(*cost, sw.Scheduler)
	if err != nil {
		return err
	}
	m, err := shard.PlanCostBlock(sw, *shards, model, *block)
	if err != nil {
		return err
	}
	if err := writeJSON(*outPath, m); err != nil {
		return err
	}
	fmt.Fprintf(out, "planned %d shards over %d sizes × %d trials (cost model %s, imbalance %.2f) -> %s\n",
		len(m.Shards), len(sw.Sizes), sw.Trials, model.Name(), m.Imbalance(model), *outPath)
	for _, s := range m.Shards {
		fmt.Fprintf(out, "  %s: %d trials in %d cells, cost %d\n", s.ID, s.Trials(), len(s.Cells), s.Cost(model))
	}
	return nil
}

func runShard(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep run", flag.ContinueOnError)
	var (
		planPath = fs.String("plan", "plan.json", "manifest path (from ppsweep plan)")
		shardID  = fs.String("shard", "", "shard id to execute, e.g. s002")
		workers  = fs.Int("workers", 0, "worker budget for the trial pool and scheduler draws (0 = all cores); results are identical for any value")
		partials = fs.String("partials", "", "resume directory: persist each cell on completion (atomic rename) and skip cells already present")
		outPath  = fs.String("o", "", "artifact output path (default part-<shard>.json)")
	)
	ruleOf := stopRuleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	if *shardID == "" {
		return errors.New("run: -shard is required")
	}
	rule, err := ruleOf()
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if rule.Enabled() && *partials == "" {
		return errors.New("run: -ci-target needs -partials; stopping decisions fold the cells persisted there")
	}
	var m shard.Manifest
	if err := readJSON(*planPath, &m); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	var art *shard.Artifact
	var counters shard.Counters
	if *partials != "" {
		art, counters, err = shard.RunResumableStop(ctx, &m, *shardID, *workers, *partials, rule, nil)
	} else {
		art, err = shard.Run(ctx, &m, *shardID, *workers)
	}
	if err != nil {
		return err
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("part-%s.json", *shardID)
	}
	if err := shard.WriteArtifact(path, art); err != nil {
		return err
	}
	trials := 0
	for _, pt := range art.Points {
		trials += pt.Stats.Trials
	}
	fmt.Fprintf(out, "shard %s: %d trials over %d cells -> %s\n", *shardID, trials, len(art.Points), path)
	if *partials != "" {
		fmt.Fprintf(out, "  %s\n", counters)
	}
	return nil
}

// runDispatch is one worker of a shared-directory shard queue: it
// leases open shards, executes them resumably (cell partials under
// <dir>/partials), steals expired leases from dead or wedged peers,
// and — once every shard of the plan has an artifact — optionally
// merges. Start one per host against a shared directory.
func runDispatch(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep dispatch", flag.ContinueOnError)
	var (
		planPath    = fs.String("plan", "plan.json", "manifest path (from ppsweep plan)")
		dir         = fs.String("dir", "", "shared queue directory (leases, artifacts, cell partials)")
		workers     = fs.Int("workers", 0, "worker budget for the trial pool and scheduler draws (0 = all cores); results are identical for any value")
		leaseTTL    = fs.Duration("lease-ttl", time.Minute, "steal a shard whose lease heartbeat sequence number has not advanced for this long of local time")
		heartbeat   = fs.Duration("heartbeat", 0, "lease refresh period (0 = lease-ttl/4)")
		maxAttempts = fs.Int("max-attempts", 3, "per-shard acquisition cap before the shard is marked failed")
		poll        = fs.Duration("poll", 500*time.Millisecond, "initial queue rescan delay while peers hold every open shard (backs off with jitter)")
		pollMax     = fs.Duration("poll-max", 0, "idle rescan backoff cap (0 = 8×poll)")
		retries     = fs.Int("retry-attempts", 0, "tries per queue operation before giving up on transient I/O errors (0 = 5)")
		retryBase   = fs.Duration("retry-base", 0, "first transient-retry backoff, doubling with full jitter (0 = 20ms)")
		failAfter   = fs.Int("fail-after-cells", 0, "TESTING: die after persisting N cells, leaving lease and partials (simulates SIGKILL)")
		chaosSeed   = fs.Int64("chaos-seed", 0, "TESTING: inject a deterministic fault schedule derived from this seed into queue I/O")
		chaosFaults = fs.Int("chaos-faults", 0, "TESTING: number of faults in the -chaos-seed schedule (0 with a seed = 16)")
		outPath     = fs.String("o", "", "also merge the drained queue to this path")
	)
	ruleOf := stopRuleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	if *dir == "" {
		return errors.New("dispatch: -dir is required")
	}
	rule, err := ruleOf()
	if err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	var m shard.Manifest
	if err := readJSON(*planPath, &m); err != nil {
		return err
	}
	var fsys faultfs.FS
	if *chaosSeed != 0 || *chaosFaults > 0 {
		n := *chaosFaults
		if n <= 0 {
			n = 16
		}
		faulty := faultfs.NewFaulty(faultfs.OS(), faultfs.RandomSchedule(*chaosSeed, n))
		defer func() {
			for _, f := range faulty.Fired() {
				fmt.Fprintf(out, "chaos: injected %s\n", f)
			}
		}()
		fsys = faulty
	}
	res, err := shard.Dispatch(ctx, &m, shard.DispatchOptions{
		Dir:            *dir,
		Workers:        *workers,
		LeaseTTL:       *leaseTTL,
		Heartbeat:      *heartbeat,
		MaxAttempts:    *maxAttempts,
		Poll:           *poll,
		PollMax:        *pollMax,
		RetryAttempts:  *retries,
		RetryBase:      *retryBase,
		FS:             fsys,
		FailAfterCells: *failAfter,
		Stop:           rule,
	})
	// Counters surface on every exit path — a failed dispatch is
	// exactly when operators need the degradation story.
	fmt.Fprintf(out, "dispatch counters: %s\n", res.Counters)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dispatch drained: this worker completed %d of %d shards %v\n",
		len(res.Completed), len(m.Shards), res.Completed)
	if *outPath == "" {
		return nil
	}
	arts, err := shard.CollectArtifacts(*dir, &m)
	if err != nil {
		return err
	}
	if rule.Enabled() {
		// Stopped shards carry truncated trial ranges, so the strict
		// tiling merge does not apply: fold through the anytime path,
		// which re-derives the canonical stopping boundary.
		sw, pts, err := shard.CollectPartial(arts, nil)
		if err != nil {
			return err
		}
		merged, err := shard.MergePartial(sw, pts, rule)
		if err != nil {
			return err
		}
		if err := writeJSON(*outPath, merged); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged %d artifacts (stop rule applied) -> %s\n", len(arts), *outPath)
		printAnytimeTable(out, merged)
		return nil
	}
	merged, err := shard.Merge(arts)
	if err != nil {
		return err
	}
	if err := writeJSON(*outPath, merged); err != nil {
		return err
	}
	fmt.Fprintf(out, "merged %d artifacts -> %s\n", len(arts), *outPath)
	printMergedTable(out, merged)
	return nil
}

func runMerge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep merge", flag.ContinueOnError)
	outPath := fs.String("o", "merged.json", "merged output path")
	partial := fs.Bool("partial", false, "anytime merge: fold any subset of artifacts, cell partials and queue directories into a prefix-valid document with per-point completeness")
	ruleOf := stopRuleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	rule, err := ruleOf()
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	if rule.Enabled() && !*partial {
		return errors.New("merge: -ci-target implies an anytime merge; add -partial")
	}
	if fs.NArg() == 0 {
		return errors.New("merge: no artifact files given")
	}
	arts, cells, err := loadMergeInputs(fs.Args())
	if err != nil {
		return err
	}
	if *partial {
		sw, pts, err := shard.CollectPartial(arts, cells)
		if err != nil {
			return err
		}
		merged, err := shard.MergePartial(sw, pts, rule)
		if err != nil {
			return err
		}
		if err := writeJSON(*outPath, merged); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged %d artifacts + %d cells (anytime) -> %s\n", len(arts), len(cells), *outPath)
		printAnytimeTable(out, merged)
		return nil
	}
	if len(cells) > 0 {
		return fmt.Errorf("merge: %d cell partials among the inputs; cell-granularity inputs need -partial", len(cells))
	}
	merged, err := shard.Merge(arts)
	if err != nil {
		// The strict merge demands a complete tiling; incomplete or
		// stopped inputs are the anytime merge's job.
		return fmt.Errorf("%w (for a subset of a sweep, retry with -partial)", err)
	}
	if err := writeJSON(*outPath, merged); err != nil {
		return err
	}
	fmt.Fprintf(out, "merged %d artifacts -> %s\n", len(arts), *outPath)
	printMergedTable(out, merged)
	return nil
}

// loadMergeInputs reads merge arguments of any shape: a directory is
// scanned for part-*.json artifacts and partials/cell-*.json (a queue
// directory works directly), a cell-*.json file is a sealed cell
// partial, anything else must be a shard artifact.
func loadMergeInputs(paths []string) ([]*shard.Artifact, []*shard.CellArtifact, error) {
	var arts []*shard.Artifact
	var cells []*shard.CellArtifact
	for _, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			return nil, nil, err
		}
		if info.IsDir() {
			a, c, err := shard.ScanPartialDir(path)
			if err != nil {
				return nil, nil, err
			}
			arts = append(arts, a...)
			cells = append(cells, c...)
			continue
		}
		if strings.HasPrefix(filepath.Base(path), "cell-") {
			ca, err := shard.ReadCellFile(path)
			if err != nil {
				return nil, nil, err
			}
			cells = append(cells, ca)
			continue
		}
		a, err := shard.ReadArtifact(path)
		if err != nil {
			return nil, nil, err
		}
		arts = append(arts, a)
	}
	return arts, cells, nil
}

// runStatus renders the anytime view of a queue directory: how much of
// each sweep point is in, which sizes have stopped, and the stats so
// far. It reads what run and dispatch left behind and writes nothing,
// so it is safe to point at a live queue.
func runStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep status", flag.ContinueOnError)
	var (
		planPath = fs.String("plan", "plan.json", "manifest path (from ppsweep plan)")
		dir      = fs.String("dir", "", "queue or partials directory to inspect")
	)
	ruleOf := stopRuleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	if *dir == "" {
		return errors.New("status: -dir is required")
	}
	rule, err := ruleOf()
	if err != nil {
		return fmt.Errorf("status: %w", err)
	}
	var m shard.Manifest
	if err := readJSON(*planPath, &m); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	arts, cells, err := loadMergeInputs([]string{*dir})
	if err != nil {
		return err
	}
	if len(arts) == 0 && len(cells) == 0 {
		fmt.Fprintf(out, "status: nothing computed yet in %s (0 of %d planned trials)\n", *dir, m.Sweep.Trials*len(m.Sweep.Sizes))
		return nil
	}
	sw, pts, err := shard.CollectPartial(arts, cells)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(sw, m.Sweep) {
		return fmt.Errorf("status: artifacts in %s belong to a different sweep than %s", *dir, *planPath)
	}
	merged, err := shard.MergePartial(sw, pts, rule)
	if err != nil {
		return err
	}
	done, planned := 0, 0
	for _, pt := range merged.Points {
		done += pt.Stats.Trials
		planned += sw.Trials
	}
	fmt.Fprintf(out, "status: %d artifacts + %d cells, %d of %d trials folded (%.0f%%)\n",
		len(arts), len(cells), done, planned, 100*float64(done)/float64(planned))
	printAnytimeTable(out, merged)
	return nil
}

// printAnytimeTable is printMergedTable plus completeness: trials done
// against planned and whether the stop rule fired for each size.
func printAnytimeTable(out io.Writer, merged *shard.AnytimeMerged) {
	fmt.Fprintf(out, "%10s %8s %8s %8s %10s %8s %14s %14s\n",
		"x", "done", "planned", "stopped", "converged", "correct", "mean steps", "±95% CI")
	for _, pt := range merged.Points {
		st := &pt.Stats
		done, planned := st.Trials, pt.TrialsPlanned
		if planned == 0 {
			planned = st.Trials
		}
		stoppedMark := ""
		if pt.Stopped {
			stoppedMark = "yes"
		}
		fmt.Fprintf(out, "%10d %8d %8d %8s %10d %8d %14.1f %14.1f\n",
			pt.X, done, planned, stoppedMark, st.Converged, st.Correct, st.MeanSteps(), st.HalfCI95Steps())
	}
}

func printMergedTable(out io.Writer, merged *shard.Merged) {
	fmt.Fprintf(out, "%10s %8s %10s %8s %14s %14s\n",
		"x", "trials", "converged", "correct", "mean steps", "±95% CI")
	for _, pt := range merged.Points {
		st := &pt.Stats
		fmt.Fprintf(out, "%10d %8d %10d %8d %14.1f %14.1f\n",
			pt.X, st.Trials, st.Converged, st.Correct, st.MeanSteps(), st.HalfCI95Steps())
	}
}

// runMergeBench folds ppbench -json timing artifacts from many hosts
// or PRs into one per-experiment trajectory table (columns in
// argument order — pass oldest first).
func runMergeBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep merge-bench", flag.ContinueOnError)
	outPath := fs.String("o", "", "also write the merged trajectory as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	if fs.NArg() == 0 {
		return errors.New("merge-bench: no timing artifact files given")
	}
	labels := make([]string, 0, fs.NArg())
	arts := make([]*experiments.BenchArtifact, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		a, err := experiments.ParseBenchArtifact(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		labels = append(labels, strings.TrimSuffix(filepath.Base(path), ".json"))
		arts = append(arts, a)
	}
	tr, err := experiments.MergeBench(labels, arts)
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := writeJSON(*outPath, tr); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged %d timing artifacts -> %s\n", len(arts), *outPath)
	}
	fmt.Fprint(out, tr.Render())
	return nil
}

func parseSizes(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("plan: -sizes is required, e.g. -sizes 8,64,512")
	}
	parts := strings.Split(s, ",")
	xs := make([]int64, 0, len(parts))
	for _, p := range parts {
		x, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("plan: bad size %q: %w", p, err)
		}
		xs = append(xs, x)
	}
	return xs, nil
}

func flagErr(err error) error {
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	return err
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
