// Command ppsweep orchestrates sharded population-protocol sweeps: it
// plans a sweep into self-contained shards, runs one shard (the worker
// role, one invocation per shard, on any host), and merges the partial
// artifacts back into exactly the single-process sweep result.
//
// Usage:
//
//	ppsweep plan -protocol flock -param 8 -sizes 16,64,256 -trials 20 \
//	        -seed 1 -shards 4 -o plan.json
//	ppsweep run -plan plan.json -shard s002 -o part-s002.json
//	ppsweep merge -o merged.json part-*.json
//
// plan partitions the (size × trial) grid deterministically: the same
// flags always produce the identical manifest, so independent hosts
// can re-derive the plan instead of shipping it. run executes one
// shard's trials with positionally derived seeds and writes a partial
// artifact stamped with host metadata; SIGINT cancels promptly,
// leaving no artifact. merge verifies the artifacts belong to one
// sweep, detects overlapping or missing shards and mixed schema
// versions, folds the mergeable accumulators, and writes a merged
// document that is bit-identical to what an unsharded run of the same
// spec would have produced.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/registry"
	"repro/internal/shard"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: ppsweep <plan|run|merge> [flags] (see -h of each subcommand)")
	}
	switch args[0] {
	case "plan":
		return runPlan(args[1:], out)
	case "run":
		return runShard(ctx, args[1:], out)
	case "merge":
		return runMerge(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (have plan, run, merge)", args[0])
	}
}

func runPlan(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep plan", flag.ContinueOnError)
	var (
		protocol  = fs.String("protocol", "", fmt.Sprintf("construction: %v", registry.Names()))
		param     = fs.Int64("param", 2, "construction parameter (n or k)")
		inState   = fs.String("input", "i", "input state holding the swept agent count")
		sizes     = fs.String("sizes", "", "comma-separated population sizes, e.g. 8,64,512")
		trials    = fs.Int("trials", 10, "trials per size")
		seed      = fs.Int64("seed", 1, "sweep base seed")
		steps     = fs.Int("steps", 0, "max interactions per run (0 = sim default)")
		patience  = fs.Int("patience", 0, "consensus patience (0 = whole-run mode)")
		scheduler = fs.String("scheduler", "", "scheduler: weighted (default), uniform, batched, countbatch")
		batch     = fs.Int("batch", 0, "batched batch size / countbatch aggregation threshold")
		eps       = fs.Float64("eps", 0, "countbatch drift tolerance")
		shards    = fs.Int("shards", 1, "number of shards to plan")
		outPath   = fs.String("o", "plan.json", "manifest output path")
	)
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	xs, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	sw := shard.SweepSpec{
		Protocol:   *protocol,
		Param:      *param,
		InputState: *inState,
		Sizes:      xs,
		Trials:     *trials,
		Seed:       *seed,
		MaxSteps:   *steps,
		Patience:   *patience,
		Scheduler:  *scheduler,
		Batch:      *batch,
		Epsilon:    *eps,
	}
	// Fail at plan time, not on the worker: the protocol must exist and
	// decide a counting predicate.
	if _, _, err := sw.Build(); err != nil {
		return err
	}
	m, err := shard.Plan(sw, *shards)
	if err != nil {
		return err
	}
	if err := writeJSON(*outPath, m); err != nil {
		return err
	}
	fmt.Fprintf(out, "planned %d shards over %d sizes × %d trials -> %s\n",
		len(m.Shards), len(sw.Sizes), sw.Trials, *outPath)
	for _, s := range m.Shards {
		fmt.Fprintf(out, "  %s: %d trials in %d cells\n", s.ID, s.Trials(), len(s.Cells))
	}
	return nil
}

func runShard(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep run", flag.ContinueOnError)
	var (
		planPath = fs.String("plan", "plan.json", "manifest path (from ppsweep plan)")
		shardID  = fs.String("shard", "", "shard id to execute, e.g. s002")
		workers  = fs.Int("workers", 0, "trial worker pool bound (0 = GOMAXPROCS)")
		outPath  = fs.String("o", "", "artifact output path (default part-<shard>.json)")
	)
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	if *shardID == "" {
		return errors.New("run: -shard is required")
	}
	var m shard.Manifest
	if err := readJSON(*planPath, &m); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	art, err := shard.Run(ctx, &m, *shardID, *workers)
	if err != nil {
		return err
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("part-%s.json", *shardID)
	}
	if err := writeJSON(path, art); err != nil {
		return err
	}
	trials := 0
	for _, pt := range art.Points {
		trials += pt.Stats.Trials
	}
	fmt.Fprintf(out, "shard %s: %d trials over %d cells -> %s\n", *shardID, trials, len(art.Points), path)
	return nil
}

func runMerge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppsweep merge", flag.ContinueOnError)
	outPath := fs.String("o", "merged.json", "merged output path")
	if err := fs.Parse(args); err != nil {
		return flagErr(err)
	}
	if fs.NArg() == 0 {
		return errors.New("merge: no artifact files given")
	}
	arts := make([]*shard.Artifact, 0, fs.NArg())
	for _, path := range fs.Args() {
		var a shard.Artifact
		if err := readJSON(path, &a); err != nil {
			return err
		}
		arts = append(arts, &a)
	}
	merged, err := shard.Merge(arts)
	if err != nil {
		return err
	}
	if err := writeJSON(*outPath, merged); err != nil {
		return err
	}
	fmt.Fprintf(out, "merged %d artifacts -> %s\n", len(arts), *outPath)
	fmt.Fprintf(out, "%10s %8s %10s %8s %14s %14s\n",
		"x", "trials", "converged", "correct", "mean steps", "±95% CI")
	for _, pt := range merged.Points {
		st := &pt.Stats
		fmt.Fprintf(out, "%10d %8d %10d %8d %14.1f %14.1f\n",
			pt.X, st.Trials, st.Converged, st.Correct, st.MeanSteps(), st.HalfCI95Steps())
	}
	return nil
}

func parseSizes(s string) ([]int64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("plan: -sizes is required, e.g. -sizes 8,64,512")
	}
	parts := strings.Split(s, ",")
	xs := make([]int64, 0, len(parts))
	for _, p := range parts {
		x, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("plan: bad size %q: %w", p, err)
		}
		xs = append(xs, x)
	}
	return xs, nil
}

func flagErr(err error) error {
	if errors.Is(err, flag.ErrHelp) {
		return nil
	}
	return err
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
