// Command ppverify exhaustively verifies that a built-in counting
// protocol stably computes its predicate for all inputs up to a bound,
// printing per-input closure statistics.
//
// Usage:
//
//	ppverify -protocol example42 -param 3 -maxx 6
//	ppverify -protocol flock -param 6 -maxx 12 -workers 8
//	ppverify -protocol power2 -param 4 -maxx 40 -spill-dir /tmp/spill -spill-mb 512
//
// Verification parallelizes across inputs and, within each input,
// across the closure BFS (-workers, default all cores); results are
// byte-identical for any worker count. Closures that outgrow RAM can
// run out-of-core with -spill-dir/-spill-mb: arena pages beyond the
// budget page to bucket files and the verdicts are identical to the
// in-RAM run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/conf"
	"repro/internal/petri"
	"repro/internal/registry"
	"repro/internal/verify"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppverify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ppverify", flag.ContinueOnError)
	var (
		protocol   = fs.String("protocol", "example42", fmt.Sprintf("construction: %v", registry.Names()))
		param      = fs.Int64("param", 2, "construction parameter (n or k)")
		maxX       = fs.Int64("maxx", -1, "max input size (default n+3)")
		maxConfigs = fs.Int("budget", 1<<20, "closure budget (configurations)")
		workers    = fs.Int("workers", 0, "verification worker budget, split across inputs and each closure BFS (0 = all cores); results are identical for any value")
		spillDir   = fs.String("spill-dir", "", "spill closure arenas to bucket files under this directory when they outgrow -spill-mb (empty = all in RAM)")
		spillMB    = fs.Int64("spill-mb", 0, fmt.Sprintf("resident arena budget per closure, MiB, for -spill-dir (0 = %d)", conf.DefaultSpillThreshold>>20))
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	p, n, err := registry.Make(*protocol, *param)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%s does not decide a counting predicate; ppverify handles counting protocols", *protocol)
	}
	limit := *maxX
	if limit < 0 {
		limit = n + 3
	}
	fmt.Println(p)
	fmt.Printf("verifying φ_{i≥%d} for x ∈ [0, %d]\n", n, limit)

	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative (got %d)", *workers)
	}
	if *spillMB < 0 {
		return fmt.Errorf("-spill-mb must be non-negative (got %d)", *spillMB)
	}
	if *spillMB > 0 && *spillDir == "" {
		return errors.New("-spill-mb needs -spill-dir")
	}
	budget := petri.Budget{
		MaxConfigs:     *maxConfigs,
		Workers:        *workers,
		SpillDir:       *spillDir,
		SpillThreshold: *spillMB << 20,
	}
	res, err := verify.Counting(p, "i", n, limit, budget)
	if err != nil {
		return err
	}
	for _, r := range res.Reports {
		status := "OK"
		if !r.OK {
			status = fmt.Sprintf("FAIL (counterexample %v)", r.Counterexample)
		}
		fmt.Printf("  x=%-4d expected=%-5v closure=%-8d stable=%-8d %s\n",
			r.Input.GetName("i"), r.Expected, r.Configs, r.StableConfigs, status)
	}
	if res.OK() {
		fmt.Printf("VERIFIED: stably computes (i ≥ %d) on all %d inputs (max closure %d)\n",
			n, len(res.Reports), res.MaxConfigs)
		return nil
	}
	return fmt.Errorf("verification FAILED for %d inputs", len(res.Failures))
}
