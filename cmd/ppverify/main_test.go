package main

import "testing"

func TestRunVerifiesExample42(t *testing.T) {
	if err := run([]string{"-protocol", "example42", "-param", "2", "-maxx", "4"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunVerifiesFlock(t *testing.T) {
	if err := run([]string{"-protocol", "flock", "-param", "3", "-maxx", "5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "nope"},
		// majority decides no counting predicate.
		{"-protocol", "majority"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): error expected", args)
		}
	}
}
