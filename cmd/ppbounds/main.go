// Command ppbounds evaluates the paper's quantitative bounds.
//
// Usage:
//
//	ppbounds thm43 -dmax 10 -w 2 -l 2     Theorem 4.3 table
//	ppbounds minstates -log10n 100 -m 2   states needed for a given n
//	ppbounds cor44 -kmax 20 -h 0.49 -m 2  Corollary 4.4 curve at n=2^(2^k)
//	ppbounds rackoff -d 5 -t 1 -r 1       Lemma 5.3 bound
//	ppbounds section8 -d 4 -t 2 -l 2      Section 8 cascade (b,h,k,a,ℓ,n)
//
// The table subcommands (thm43, cor44) evaluate each row independently
// in parallel (-workers, default all cores) and print in row order, so
// the output is identical for any worker count. Deep rows of the
// Theorem 4.3 tower are big-number evaluations that dominate the run,
// which is why rows — not digits — are the parallel unit.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bounds"
)

// forEachRow evaluates eval(row) for row ∈ [0, rows) on a bounded
// worker pool and returns the results in row order. workers ≤ 0 means
// GOMAXPROCS. Rows are independent, so ordering the result slice by
// index keeps the printed tables byte-identical for any worker count.
func forEachRow(rows, workers int, eval func(row int) string) []string {
	out := make([]string, rows)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		for i := range out {
			out[i] = eval(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= rows {
					return
				}
				out[i] = eval(i)
			}
		}()
	}
	wg.Wait()
	return out
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppbounds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("subcommand required: thm43 | minstates | cor44 | rackoff | section8")
	}
	switch args[0] {
	case "thm43":
		fs := flag.NewFlagSet("thm43", flag.ContinueOnError)
		dmax := fs.Int("dmax", 10, "max state count")
		w := fs.Int64("w", 2, "interaction-width")
		l := fs.Int64("l", 2, "leaders")
		workers := fs.Int("workers", 0, "row workers (0 = all cores); output is identical for any value")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		fmt.Printf("Theorem 4.3: n ≤ (4+4·%d+2·%d)^(d^((d+2)²))\n", *w, *l)
		rows := forEachRow(*dmax, *workers, func(row int) string {
			d := row + 1
			m := bounds.Theorem43MaxN(d, *w, *l)
			return fmt.Sprintf("  d=%-3d log10(max n) = %.4g", d, m.Log10())
		})
		for _, r := range rows {
			fmt.Println(r)
		}
		return nil
	case "minstates":
		fs := flag.NewFlagSet("minstates", flag.ContinueOnError)
		log10n := fs.Float64("log10n", 9, "log10 of the threshold n")
		m := fs.Int64("m", 2, "width and leader bound")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		d := bounds.MinStatesTheorem43(*log10n, *m)
		fmt.Printf("deciding (i ≥ n) with n = 1e%g and width/leaders ≤ %d needs ≥ %d states\n", *log10n, *m, d)
		return nil
	case "cor44":
		fs := flag.NewFlagSet("cor44", flag.ContinueOnError)
		kmax := fs.Int("kmax", 20, "max tower level (n = 2^(2^k))")
		h := fs.Float64("h", 0.49, "exponent h < 1/2")
		m := fs.Int64("m", 2, "width and leader bound")
		workers := fs.Int("workers", 0, "row workers (0 = all cores); output is identical for any value")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		fmt.Printf("Corollary 4.4 lower bound Ω((log log n)^%g) at n = 2^(2^k), m = %d\n", *h, *m)
		rows := forEachRow(*kmax, *workers, func(row int) string {
			k := row + 1
			log2n := math.Pow(2, float64(k))
			lb := bounds.Corollary44LowerBound(log2n, *h, *m)
			return fmt.Sprintf("  k=%-3d states ≥ %.2f", k, lb)
		})
		for _, r := range rows {
			fmt.Println(r)
		}
		return nil
	case "rackoff":
		fs := flag.NewFlagSet("rackoff", flag.ContinueOnError)
		d := fs.Int("d", 5, "states |P|")
		tn := fs.Int64("t", 1, "‖T‖∞")
		rn := fs.Int64("r", 1, "‖target‖∞")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		m := bounds.Rackoff(*d, *rn, *tn)
		fmt.Printf("Lemma 5.3: covering word length ≤ (%d+%d)^(%d^%d): log10 = %.4g\n",
			*rn, *tn, *d, *d, m.Log10())
		return nil
	case "section8":
		fs := flag.NewFlagSet("section8", flag.ContinueOnError)
		d := fs.Int("d", 4, "states |P| (≥ 2)")
		tn := fs.Int64("t", 2, "‖T‖∞")
		l := fs.Int64("l", 2, "‖ρ_L‖∞")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		s, err := bounds.NewSection8(*d, *tn, *l)
		if err != nil {
			return err
		}
		fmt.Printf("Section 8 cascade for d=%d, ‖T‖∞=%d, ‖ρL‖∞=%d:\n", *d, *tn, *l)
		fmt.Printf("  b: log10 = %.4g\n", s.B.Log10())
		fmt.Printf("  h: log10 = %.4g\n", s.H.Log10())
		fmt.Printf("  k: log10 = %.4g\n", s.K.Log10())
		fmt.Printf("  a: log10 = %.4g\n", s.A.Log10())
		fmt.Printf("  ℓ: log10 = %.4g\n", s.L.Log10())
		fmt.Printf("  n: log10 = %.4g (final bound on the threshold)\n", s.N.Log10())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
