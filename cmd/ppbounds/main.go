// Command ppbounds evaluates the paper's quantitative bounds.
//
// Usage:
//
//	ppbounds thm43 -dmax 10 -w 2 -l 2     Theorem 4.3 table
//	ppbounds minstates -log10n 100 -m 2   states needed for a given n
//	ppbounds cor44 -kmax 20 -h 0.49 -m 2  Corollary 4.4 curve at n=2^(2^k)
//	ppbounds rackoff -d 5 -t 1 -r 1       Lemma 5.3 bound
//	ppbounds section8 -d 4 -t 2 -l 2      Section 8 cascade (b,h,k,a,ℓ,n)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bounds"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ppbounds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("subcommand required: thm43 | minstates | cor44 | rackoff | section8")
	}
	switch args[0] {
	case "thm43":
		fs := flag.NewFlagSet("thm43", flag.ContinueOnError)
		dmax := fs.Int("dmax", 10, "max state count")
		w := fs.Int64("w", 2, "interaction-width")
		l := fs.Int64("l", 2, "leaders")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		fmt.Printf("Theorem 4.3: n ≤ (4+4·%d+2·%d)^(d^((d+2)²))\n", *w, *l)
		for d := 1; d <= *dmax; d++ {
			m := bounds.Theorem43MaxN(d, *w, *l)
			fmt.Printf("  d=%-3d log10(max n) = %.4g\n", d, m.Log10())
		}
		return nil
	case "minstates":
		fs := flag.NewFlagSet("minstates", flag.ContinueOnError)
		log10n := fs.Float64("log10n", 9, "log10 of the threshold n")
		m := fs.Int64("m", 2, "width and leader bound")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		d := bounds.MinStatesTheorem43(*log10n, *m)
		fmt.Printf("deciding (i ≥ n) with n = 1e%g and width/leaders ≤ %d needs ≥ %d states\n", *log10n, *m, d)
		return nil
	case "cor44":
		fs := flag.NewFlagSet("cor44", flag.ContinueOnError)
		kmax := fs.Int("kmax", 20, "max tower level (n = 2^(2^k))")
		h := fs.Float64("h", 0.49, "exponent h < 1/2")
		m := fs.Int64("m", 2, "width and leader bound")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		fmt.Printf("Corollary 4.4 lower bound Ω((log log n)^%g) at n = 2^(2^k), m = %d\n", *h, *m)
		for k := 1; k <= *kmax; k++ {
			log2n := math.Pow(2, float64(k))
			lb := bounds.Corollary44LowerBound(log2n, *h, *m)
			fmt.Printf("  k=%-3d states ≥ %.2f\n", k, lb)
		}
		return nil
	case "rackoff":
		fs := flag.NewFlagSet("rackoff", flag.ContinueOnError)
		d := fs.Int("d", 5, "states |P|")
		tn := fs.Int64("t", 1, "‖T‖∞")
		rn := fs.Int64("r", 1, "‖target‖∞")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		m := bounds.Rackoff(*d, *rn, *tn)
		fmt.Printf("Lemma 5.3: covering word length ≤ (%d+%d)^(%d^%d): log10 = %.4g\n",
			*rn, *tn, *d, *d, m.Log10())
		return nil
	case "section8":
		fs := flag.NewFlagSet("section8", flag.ContinueOnError)
		d := fs.Int("d", 4, "states |P| (≥ 2)")
		tn := fs.Int64("t", 2, "‖T‖∞")
		l := fs.Int64("l", 2, "‖ρ_L‖∞")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		s, err := bounds.NewSection8(*d, *tn, *l)
		if err != nil {
			return err
		}
		fmt.Printf("Section 8 cascade for d=%d, ‖T‖∞=%d, ‖ρL‖∞=%d:\n", *d, *tn, *l)
		fmt.Printf("  b: log10 = %.4g\n", s.B.Log10())
		fmt.Printf("  h: log10 = %.4g\n", s.H.Log10())
		fmt.Printf("  k: log10 = %.4g\n", s.K.Log10())
		fmt.Printf("  a: log10 = %.4g\n", s.A.Log10())
		fmt.Printf("  ℓ: log10 = %.4g\n", s.L.Log10())
		fmt.Printf("  n: log10 = %.4g (final bound on the threshold)\n", s.N.Log10())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
