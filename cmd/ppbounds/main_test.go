package main

import "testing"

func TestSubcommands(t *testing.T) {
	cases := [][]string{
		{"thm43", "-dmax", "4"},
		{"minstates", "-log10n", "100", "-m", "2"},
		{"cor44", "-kmax", "5"},
		{"rackoff", "-d", "4"},
		{"section8", "-d", "3"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"section8", "-d", "1"}); err == nil {
		t.Error("d=1 accepted by section8")
	}
}
