package repro

import (
	"context"
	"testing"

	"repro/internal/bounds"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/petri"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/verify"
)

// The cross-cutting invariant of the whole reproduction: every sound
// construction in the registry (a) stably computes its counting
// predicate on inputs around the threshold, (b) respects Theorem 4.3
// (its decided n is below the bound for its states/width/leaders), and
// (c) converges correctly in simulation just above the threshold.
func TestEndToEndSoundConstructions(t *testing.T) {
	budget := petri.Budget{MaxConfigs: 1 << 19}
	cases := []struct {
		name  string
		param int64
	}{
		{"example41", 3},
		{"example42", 2},
		{"flock", 4},
		{"power2", 2},
		{"leaderdoubling", 2},
		{"tower", 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, n, err := registry.Make(tc.name, tc.param)
			if err != nil {
				t.Fatalf("Make: %v", err)
			}

			// (a) Exhaustive verification around the threshold.
			res, err := verify.Counting(p, "i", n, n+2, budget)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if !res.OK() {
				f := res.FirstFailure()
				t.Fatalf("fails at %v (expected %v): %v", f.Input, f.Expected, f.Counterexample)
			}

			// (b) Theorem 4.3: n must sit below the bound.
			bound := bounds.Theorem43MaxN(p.States(), p.Width(), p.NumLeaders())
			if !bound.GeqInt(n) {
				t.Fatalf("Theorem 4.3 violated: n = %d above bound %v for %s", n, bound, p)
			}

			// (c) Simulation above the threshold.
			input, err := p.Input(map[string]int64{"i": n + 2})
			if err != nil {
				t.Fatalf("input: %v", err)
			}
			stats, err := sim.RunMany(context.Background(), p, input, true, 5,
				sim.Options{Seed: 42, MaxSteps: 500_000, StablePatience: 3_000})
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if stats.Correct != stats.Converged || stats.Converged == 0 {
				t.Fatalf("simulation: %d/%d correct of %d converged",
					stats.Correct, stats.Converged, stats.Trials)
			}
		})
	}
}

// Lemma 5.1 must hold across different protocols, not just Example 4.2:
// stabilized w.r.t. F = γ⁻¹({0}) coincides with 0-output stability.
func TestLemma51AcrossProtocols(t *testing.T) {
	budget := petri.Budget{MaxConfigs: 1 << 16}
	protos := []struct {
		name  string
		param int64
		rhos  []map[string]int64
	}{
		{"flock", 3, []map[string]int64{
			{"i": 1},
			{"i": 2},
			{"z": 2},
			{"T": 1, "z": 1},
			nil,
		}},
		{"power2", 2, []map[string]int64{
			{"i": 3},
			{"l1": 1, "z": 1},
			{"T": 2},
		}},
	}
	for _, pc := range protos {
		p, _, err := registry.Make(pc.name, pc.param)
		if err != nil {
			t.Fatalf("Make(%s): %v", pc.name, err)
		}
		for _, m := range pc.rhos {
			rho := conf.MustFromMap(p.Space(), m)
			if err := p.Lemma51Holds(rho, budget); err != nil {
				t.Errorf("%s: %v", pc.name, err)
			}
		}
	}
}

// Theorem 6.1 certificates exist and verify on every sound construction
// from realistic initial configurations.
func TestBottomCertificatesAcrossProtocols(t *testing.T) {
	opts := core.ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 1 << 16}}
	for _, tc := range []struct {
		name  string
		param int64
		x     int64
	}{
		{"example41", 3, 4},
		{"example42", 2, 3},
		{"flock", 3, 4},
		{"power2", 2, 5},
	} {
		p, _, err := registry.Make(tc.name, tc.param)
		if err != nil {
			t.Fatalf("Make(%s): %v", tc.name, err)
		}
		rho := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": tc.x}))
		cert, err := core.ReachBottom(p.Net(), rho, opts)
		if err != nil {
			t.Fatalf("%s: ReachBottom: %v", tc.name, err)
		}
		if err := core.VerifyBottomCert(p.Net(), rho, cert, opts.Budget); err != nil {
			t.Errorf("%s: certificate rejected: %v", tc.name, err)
		}
		// The certificate magnitudes must respect Theorem 6.1's b.
		d := p.States()
		b := bounds.Theorem61B(d, p.Net().NormInf(), rho.NormInf())
		for what, v := range map[string]int64{
			"sigma":     int64(len(cert.Sigma)),
			"w":         int64(len(cert.W)),
			"component": int64(cert.ComponentSize),
			"alpha":     int64(d) * cert.Alpha.NormInf(),
			"beta":      int64(d) * cert.Beta.NormInf(),
		} {
			if !b.GeqInt(v) {
				t.Errorf("%s: %s = %d exceeds Theorem 6.1 bound", tc.name, what, v)
			}
		}
	}
}

// The state-complexity story end to end: the constructions' measured
// state counts must dominate the Theorem 4.3 lower bound evaluated at
// their own thresholds — i.e. the paper's lower bound is consistent
// with every protocol this repository builds.
func TestLowerBoundConsistency(t *testing.T) {
	for _, tc := range []struct {
		name  string
		param int64
	}{
		{"example42", 4},
		{"flock", 6},
		{"power2", 3},
		{"leaderdoubling", 3},
	} {
		p, n, err := registry.Make(tc.name, tc.param)
		if err != nil {
			t.Fatalf("Make(%s): %v", tc.name, err)
		}
		m := p.Width()
		if l := p.NumLeaders(); l > m {
			m = l
		}
		if m == 0 {
			m = 1
		}
		// log10(n) for small n.
		log10n := 0.0
		for v := n; v > 1; v /= 10 {
			log10n++
		}
		need := bounds.MinStatesTheorem43(log10n, m)
		if p.States() < need {
			t.Errorf("%s: %d states below the Theorem 4.3 minimum %d for n=%d, m=%d",
				tc.name, p.States(), need, n, m)
		}
	}
}

// Example 4.1's width grows with n while Example 4.2's leader count
// does: the Section 4 message that state count alone is meaningless.
func TestSection4TradeoffMessage(t *testing.T) {
	for n := int64(2); n <= 6; n++ {
		p41, err := counting.Example41(n)
		if err != nil {
			t.Fatalf("Example41: %v", err)
		}
		p42, err := counting.Example42(n)
		if err != nil {
			t.Fatalf("Example42: %v", err)
		}
		if p41.States() != 2 || p41.Width() != n {
			t.Errorf("n=%d: Example 4.1 shape %d states width %d", n, p41.States(), p41.Width())
		}
		if p42.States() != 6 || p42.NumLeaders() != n || p42.Width() != 2 {
			t.Errorf("n=%d: Example 4.2 shape %d states %d leaders width %d",
				n, p42.States(), p42.NumLeaders(), p42.Width())
		}
	}
}
