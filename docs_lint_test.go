package repro

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The package documentation of the core packages is part of the
// cross-PR contract: it is where the invariants the engines rely on
// (positional seed derivation, mergeable accumulators, arena/CSR
// ownership, deterministic parallel merge order) are written down for
// the next refactor to honor. This lint fails when a package loses
// its doc comment or the doc stops naming its invariants.
func TestPackageDocsStateInvariants(t *testing.T) {
	requirements := map[string][]string{
		// The seed contract and accumulator mergeability (PRs 1–3), plus
		// the anytime layer: streaming sinks and sequential stopping (PR 10).
		"internal/sim": {"positional", "mergeable", "DeriveSeed", "associative", "CellSink", "StopRule", "sequential stopping"},
		// The sharding exactness contract and the dispatch layer (PRs 3, 5),
		// plus the integrity/liveness hardening (PR 7) and the anytime
		// merge/stopping contract (PR 10): prefix-valid partial merges,
		// block-diced cell grids, and merge-time stopping canonicality.
		"internal/shard": {"positional", "mergeable", "bit-identical", "lease", "checksum", "quarantine", "heartbeat sequence", "anytime", "MergePartial", "completeness", "merge time", "pure function of (spec, block, rule)"},
		// The injectable I/O seam and the error taxonomy (PR 7).
		"internal/faultfs": {"seam", "schedule", "Transient", "fsync", "reproducibility"},
		// Config value semantics and CountSet arena ownership (PRs 1, 4).
		"internal/conf": {"InPlace", "arena", "insertion order"},
		// Arena/CSR ownership and deterministic parallel BFS (PR 4).
		"internal/petri": {"arena", "CSR", "zero-copy", "worker count"},
		// Bounded exactness and deterministic report order (PR 4).
		"internal/verify": {"exact", "enumeration order", "budget"},
		// The shared canonical-JSON/checksum convention (PR 8).
		"internal/canon": {"canonical", "CRC-32C", "sorted keys", "checksum", "json.Number"},
		// The daemon's caching, lifecycle, and admission contracts (PR 8),
		// plus the self-healing serve path (PR 9): deadlines, the per-key
		// circuit breaker, and degraded-mode readiness. PR 10 adds the
		// anytime streaming endpoint and its replay contract.
		"internal/serve": {"canonical", "content-addressed", "singleflight", "token bucket", "quarantined", "deadline", "timed_out", "circuit breaker", "Retry-After", "compute-only", "/v1/sweep", "NDJSON", "delta", "terminal merged document"},
		// Key stability is the cache-correctness contract (PR 8).
		"internal/serve/key": {"canonical", "SchemaVersion", "golden", "SHA-256"},
		// Store durability and exactly-once compute (PR 8), plus
		// degradation, the access journal, and the LRU bound (PR 9).
		"internal/serve/store": {"singleflight", "quarantined", "rename", "checksum", "fsync", "degraded", "compute-only", "journal", "LRU", "O(1)"},
	}
	for dir, wants := range requirements {
		doc := packageDoc(t, dir)
		if doc == "" {
			t.Errorf("%s: no package doc comment", dir)
			continue
		}
		if len(doc) < 300 {
			t.Errorf("%s: package doc is %d bytes — too short to document its invariants", dir, len(doc))
		}
		// Multi-word requirements must match across comment line breaks.
		flat := strings.Join(strings.Fields(doc), " ")
		for _, want := range wants {
			if !strings.Contains(flat, want) {
				t.Errorf("%s: package doc no longer mentions %q — if the invariant moved, move its documentation (and this lint) with it", dir, want)
			}
		}
	}
}

// The user-facing docs must keep pace with the user-facing surface:
// README's tool table has to name the anytime flags and the streaming
// endpoint, and DESIGN.md has to carry the "Anytime sweeps" section
// that specifies the delta schema, the completeness semantics, and
// the stopping rule the test battery pins.
func TestMarkdownDocsCoverAnytimeSurface(t *testing.T) {
	requirements := map[string][]string{
		"README.md": {
			"-ci-target", "/v1/sweep", "merge -partial", "status",
		},
		"DESIGN.md": {
			"Anytime sweeps", "trials_done", "trials_planned",
			"ci_target", "NDJSON", "stop rule", "MergePartial",
		},
	}
	for file, wants := range requirements {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		doc := strings.Join(strings.Fields(string(data)), " ")
		for _, want := range wants {
			if !strings.Contains(doc, want) {
				t.Errorf("%s no longer mentions %q — the anytime-sweep surface must stay documented", file, want)
			}
		}
	}
}

// packageDoc returns the package-level doc comment of the (single)
// package in dir, concatenated across files in case of split docs.
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var sb strings.Builder
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if f.Doc != nil {
			sb.WriteString(f.Doc.Text())
		}
	}
	return sb.String()
}
