// Package repro's top-level benchmarks regenerate every experiment of
// DESIGN.md's index (E1–E10): one benchmark per table/figure-equivalent
// claim of the paper, timing the full workload that produces the
// table. Run with
//
//	go test -bench=. -benchmem
//
// cmd/ppbench prints the corresponding tables.
package repro

import (
	"context"
	"testing"

	"repro/internal/bounds"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/experiments"
	"repro/internal/hilbert"
	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/verify"
)

func runTable(b *testing.B, fn func() (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty experiment table")
		}
	}
}

// BenchmarkE1StateCounts regenerates the construction trade-off table
// (Section 4 + [6]): states/width/leaders per counting construction.
func BenchmarkE1StateCounts(b *testing.B) { runTable(b, experiments.E1StateCounts) }

// BenchmarkE1bMachine regenerates the repeated-squaring machine table
// underlying the Θ(log log n) family.
func BenchmarkE1bMachine(b *testing.B) { runTable(b, experiments.MachineTable) }

// BenchmarkE2Theorem43 evaluates the headline Theorem 4.3 bound for
// d = 1..10.
func BenchmarkE2Theorem43(b *testing.B) { runTable(b, experiments.E2Theorem43) }

// BenchmarkE3Gap regenerates the closed-gap curves (Corollary 4.4 lower
// bound vs the tower upper bound).
func BenchmarkE3Gap(b *testing.B) { runTable(b, experiments.E3Gap) }

// BenchmarkE4VerifyCost measures exhaustive stable-computation
// verification across constructions and populations.
func BenchmarkE4VerifyCost(b *testing.B) { runTable(b, experiments.E4VerifyCost) }

// BenchmarkE5Rackoff measures shortest covering words against the
// Lemma 5.3 bound.
func BenchmarkE5Rackoff(b *testing.B) { runTable(b, experiments.E5Rackoff) }

// BenchmarkE6Pottier measures Hilbert-basis norms against the Pottier
// bound behind Lemma 7.3.
func BenchmarkE6Pottier(b *testing.B) { runTable(b, experiments.E6Pottier) }

// BenchmarkE7Euler measures Lemma 7.2 total-cycle lengths against
// |E|·|S|.
func BenchmarkE7Euler(b *testing.B) { runTable(b, experiments.E7Euler) }

// BenchmarkE8Bottom runs the constructive Theorem 6.1
// bottom-configuration search with certificate verification.
func BenchmarkE8Bottom(b *testing.B) { runTable(b, experiments.E8Bottom) }

// BenchmarkE9Stabilized measures the minimal Lemma 5.4 threshold.
func BenchmarkE9Stabilized(b *testing.B) { runTable(b, experiments.E9Stabilized) }

// BenchmarkE10Convergence measures simulated convergence across the
// constructions.
func BenchmarkE10Convergence(b *testing.B) { runTable(b, experiments.E10Convergence) }

// BenchmarkE11LargeNBatch measures the count-batched large-population
// runs (10⁸–10⁹ agents per case).
func BenchmarkE11LargeNBatch(b *testing.B) { runTable(b, experiments.E11LargeNBatch) }

// --- micro-benchmarks for the hot substrate paths ---

// BenchmarkReachClosure measures raw closure construction on
// Example 4.2 with 8 agents.
func BenchmarkReachClosure(b *testing.B) {
	p, err := counting.Example42(3)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := p.Net().Reach(from, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil {
			b.Fatal(err)
		}
		if !rs.Complete {
			b.Fatal("incomplete closure")
		}
	}
}

// BenchmarkReachBottomPR2Budget pins the PR2-era E8 workload — the
// three original instances at the original MaxConfigs = 1<<16 budget —
// so the closure-substrate speedup stays measurable at equal work even
// though E8 itself now runs a 4× budget and one more instance.
func BenchmarkReachBottomPR2Budget(b *testing.B) {
	type tc struct {
		net *petri.Net
		rho conf.Config
	}
	var cases []tc
	{
		p, err := counting.Example42(2)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, tc{p.Net(), p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 3}))})
	}
	{
		space := conf.MustSpace("a", "b")
		u := func(n string) conf.Config { return conf.MustUnit(space, n) }
		pump, err := petri.NewTransition("pump", u("a"), u("a").Add(u("b")))
		if err != nil {
			b.Fatal(err)
		}
		net, err := petri.New(space, []petri.Transition{pump})
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, tc{net, u("a")})
	}
	{
		p, err := counting.FlockOfBirds(3)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, tc{p.Net(), p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 4}))})
	}
	opts := core.ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 1 << 16}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			if _, err := core.ReachBottom(c.net, c.rho, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkVerifyRange measures the exhaustive range verifier — the E4
// workload shape — on Example 4.2 with populations up to 8: every
// input's closure, two CSR reachability passes each, fanned out to the
// worker pool.
func BenchmarkVerifyRange(b *testing.B) {
	p, err := counting.Example42(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Counting(p, "i", 3, 8, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil || !res.OK() {
			b.Fatalf("result %+v, %v", res, err)
		}
	}
}

// BenchmarkBackwardCoverability measures the backward algorithm on the
// flock net.
func BenchmarkBackwardCoverability(b *testing.B) {
	p, err := counting.FlockOfBirds(6)
	if err != nil {
		b.Fatal(err)
	}
	from := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 8}))
	target := conf.MustFromMap(p.Space(), map[string]int64{"T": 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := p.Net().Coverable(from, target, 1<<16)
		if err != nil || !ok {
			b.Fatalf("coverable = %v, %v", ok, err)
		}
	}
}

// BenchmarkHilbertBasis measures the Contejean–Devie completion on the
// Lemma 7.3-style system 3x + y = 2z + 4w.
func BenchmarkHilbertBasis(b *testing.B) {
	sys, err := hilbert.NewSystem([][]int64{{3, 1, -2, -4}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis, err := sys.MinimalSolutions(hilbert.Options{})
		if err != nil || len(basis) == 0 {
			b.Fatalf("basis = %v, %v", basis, err)
		}
	}
}

// BenchmarkSimulation measures scheduler throughput on the flock
// protocol with 64 agents.
func BenchmarkSimulation(b *testing.B) {
	p, err := counting.FlockOfBirds(8)
	if err != nil {
		b.Fatal(err)
	}
	input, err := p.Input(map[string]int64{"i": 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p, input, sim.Options{Seed: int64(i), MaxSteps: 50_000, StablePatience: 1_000})
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := res.ConsensusBool(); !ok || !v {
			b.Fatalf("unexpected outcome %+v", res)
		}
	}
}

// --- sweep benchmarks: the simulation-bound experiment workloads ---

// BenchmarkSweepFlock measures the full sweep pipeline at default
// populations: flock(8) convergence statistics across four population
// sizes, eight trials each, on the incremental engine.
func BenchmarkSweepFlock(b *testing.B) {
	p, err := counting.FlockOfBirds(8)
	if err != nil {
		b.Fatal(err)
	}
	xs := []int64{16, 32, 64, 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := sim.Sweep(context.Background(), p, "i", xs, func(x int64) bool { return x >= 8 }, 8,
			sim.Options{Seed: 42, MaxSteps: 400_000, StablePatience: 2_000})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Stats.Correct != pt.Stats.Trials {
				b.Fatalf("x=%d: %d/%d correct", pt.X, pt.Stats.Correct, pt.Stats.Trials)
			}
		}
	}
}

// BenchmarkSweepSchedulers compares the three schedulers on one
// RunMany workload: flock(8) with 64 agents.
func BenchmarkSweepSchedulers(b *testing.B) {
	p, err := counting.FlockOfBirds(8)
	if err != nil {
		b.Fatal(err)
	}
	input, err := p.Input(map[string]int64{"i": 64})
	if err != nil {
		b.Fatal(err)
	}
	for _, sched := range []sim.Scheduler{sim.Weighted{}, sim.UniformPairs{}, sim.Batched{}, sim.CountBatched{}} {
		b.Run(sched.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := sim.RunMany(context.Background(), p, input, true, 8, sim.Options{
					Seed: 42, MaxSteps: 400_000, StablePatience: 2_000, Scheduler: sched,
				})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Correct != stats.Trials {
					b.Fatalf("%d/%d correct", stats.Correct, stats.Trials)
				}
			}
		})
	}
}

// flipFlopInput builds the deadlock-free throughput workload: the
// flip-flop net 2a ⇄ 2b keeps both transitions recurrently enabled
// from any even population, so a run executes exactly MaxSteps
// interactions.
func flipFlopInput(b *testing.B, agents int64) (*core.Protocol, conf.Config) {
	b.Helper()
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	mk := func(name string, pre, post conf.Config) petri.Transition {
		tr, err := petri.NewTransition(name, pre, post)
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	net, err := petri.New(space, []petri.Transition{
		mk("ab", u("a").Scale(2), u("b").Scale(2)),
		mk("ba", u("b").Scale(2), u("a").Scale(2)),
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewProtocol("flipflop", net, conf.New(space), []string{"a"},
		map[string]core.Output{"a": core.Out0, "b": core.Out0})
	if err != nil {
		b.Fatal(err)
	}
	input, err := p.Input(map[string]int64{"a": agents})
	if err != nil {
		b.Fatal(err)
	}
	return p, input
}

// BenchmarkStepThroughput measures the raw per-interaction cost of the
// incremental engine: one long weighted run on the flip-flop net,
// b.N interactions per op, so ns/op IS ns/step.
func BenchmarkStepThroughput(b *testing.B) {
	p, input := flipFlopInput(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	res, err := sim.Run(p, input, sim.Options{Seed: 9, MaxSteps: b.N})
	if err != nil {
		b.Fatal(err)
	}
	if res.Steps != b.N {
		b.Fatalf("executed %d steps, want %d", res.Steps, b.N)
	}
}

// BenchmarkStepThroughputLargeN compares amortized ns/interaction at
// n = 10⁶ agents: Weighted pays the full per-interaction sampling path
// while CountBatched amortizes one O(|T|) aggregate over up to
// millions of interactions — the headline speedup of the count-based
// batch regime (the acceptance bar is ≥ 10×; measured is orders of
// magnitude beyond it).
func BenchmarkStepThroughputLargeN(b *testing.B) {
	for _, sched := range []sim.Scheduler{sim.Weighted{}, sim.CountBatched{}} {
		b.Run(sched.Name(), func(b *testing.B) {
			p, input := flipFlopInput(b, 1_000_000)
			b.ReportAllocs()
			b.ResetTimer()
			res, err := sim.Run(p, input, sim.Options{Seed: 9, MaxSteps: b.N, Scheduler: sched})
			if err != nil {
				b.Fatal(err)
			}
			if res.Steps != b.N {
				b.Fatalf("executed %d steps, want %d", res.Steps, b.N)
			}
		})
	}
}

// BenchmarkVerifyInput measures a single-input verification of
// Example 4.2 with 9 agents total.
func BenchmarkVerifyInput(b *testing.B) {
	p, err := counting.Example42(3)
	if err != nil {
		b.Fatal(err)
	}
	input := conf.MustFromMap(p.Space(), map[string]int64{"i": 6})
	pred := verify.CountingPredicate("i", 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Input(p, input, pred, petri.Budget{MaxConfigs: 1 << 18})
		if err != nil || !rep.OK {
			b.Fatalf("report %+v, %v", rep, err)
		}
	}
}

// BenchmarkTheorem43 measures big-integer bound evaluation.
func BenchmarkTheorem43(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := bounds.Theorem43MaxN(2, 2, 2)
		if !m.IsExact() {
			b.Fatal("d=2 bound should be exact")
		}
	}
}
