package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/serve/key"
	"repro/internal/serve/store"
)

// Lifecycle phases timed per job; indices into Job.phases.
const (
	phaseAdmit = iota
	phasePlan
	phaseRun
	numPhases
)

var phaseNames = [numPhases]string{"admit", "plan", "run"}

// Job is one request's lifecycle record: its SM plus the side state
// the SM invariant guards. /v1/jobs/{id} serves a snapshot.
type Job struct {
	mu      sync.Mutex
	id      string
	kind    string
	sm      SM
	created time.Time

	key    key.Key
	hasKey bool
	// phases holds per-phase wall time once the phase finishes.
	phases   [numPhases]time.Duration
	hit      bool
	artifact *store.Artifact
	errMsg   string
}

// invariant is the per-transition side-condition check wired into the
// job's SM: a planned or running job must have derived its cache key,
// a cached job must hold the artifact it serves, and a failed job
// must record why.
func (j *Job) invariant(s JobState) error {
	switch s {
	case StatePlanned, StateRunning:
		if !j.hasKey {
			return fmt.Errorf("job %s reached %s without a cache key", j.id, s)
		}
	case StateCached:
		if j.artifact == nil {
			return fmt.Errorf("job %s cached without an artifact", j.id)
		}
	case StateFailed:
		if j.errMsg == "" {
			return fmt.Errorf("job %s failed without a reason", j.id)
		}
	case StateTimedOut:
		if j.errMsg == "" {
			return fmt.Errorf("job %s timed out without recording what expired", j.id)
		}
	}
	return nil
}

// to drives the job's SM under its lock. An illegal transition is a
// programming error in the handler flow, surfaced loudly.
func (j *Job) to(s JobState) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sm.To(s)
}

// JobView is the externally visible snapshot of one job.
type JobView struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Key     string `json:"key,omitempty"`
	Created string `json:"created"`
	// Cache reports where the result came from once terminal:
	// "hit" or "miss" for cached jobs, empty otherwise.
	Cache  string            `json:"cache,omitempty"`
	Error  string            `json:"error,omitempty"`
	Phases map[string]string `json:"phases,omitempty"`
}

// view snapshots the job under its lock.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		Kind:    j.kind,
		State:   j.sm.State().String(),
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.hasKey {
		v.Key = j.key.String()
	}
	if j.sm.State() == StateCached {
		if j.hit {
			v.Cache = "hit"
		} else {
			v.Cache = "miss"
		}
	}
	v.Error = j.errMsg
	for i, d := range j.phases {
		if d > 0 {
			if v.Phases == nil {
				v.Phases = map[string]string{}
			}
			v.Phases[phaseNames[i]] = d.String()
		}
	}
	return v
}

// jobTable tracks recent jobs for /v1/jobs/{id}: a bounded
// insertion-ordered map — the daemon is long-lived, so completed job
// records beyond the window are evicted oldest-first rather than
// accumulated forever.
type jobTable struct {
	mu    sync.Mutex
	cap   int
	seq   int64
	byID  map[string]*Job
	order []string
}

func newJobTable(capacity int) *jobTable {
	if capacity <= 0 {
		capacity = 4096
	}
	return &jobTable{cap: capacity, byID: map[string]*Job{}}
}

// create registers a fresh job in the initial SM state.
func (t *jobTable) create(kind string, now time.Time) (*Job, error) {
	j := &Job{kind: kind, created: now}
	m, err := newSM(j.invariant)
	if err != nil {
		return nil, err
	}
	j.sm = m
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	j.id = fmt.Sprintf("j%08d", t.seq)
	t.byID[j.id] = j
	t.order = append(t.order, j.id)
	for len(t.order) > t.cap {
		delete(t.byID, t.order[0])
		t.order = t.order[1:]
	}
	return j, nil
}

func (t *jobTable) get(id string) (*Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byID[id]
	return j, ok
}

// byState counts tracked jobs per lifecycle state for /metrics.
func (t *jobTable) byState() map[string]int {
	t.mu.Lock()
	jobs := make([]*Job, 0, len(t.byID))
	for _, j := range t.byID {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	out := map[string]int{}
	for _, j := range jobs {
		j.mu.Lock()
		out[j.sm.State().String()]++
		j.mu.Unlock()
	}
	return out
}
