package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/serve/key"
	"repro/internal/shard"
	"repro/internal/sim"
)

// sweepBody is the test sweep: small enough to finish instantly,
// blocked so each size streams several deltas.
const sweepBody = `{"spec":{"protocol":"flock","param":4},"sizes":[2,4,8],"trials":8,"seed":7,"max_steps":200000,"patience":1000,"block":2}`

func sweepTestQuery(t *testing.T) *key.Query {
	t.Helper()
	var req sweepRequest
	if err := json.Unmarshal([]byte(sweepBody), &req); err != nil {
		t.Fatal(err)
	}
	return &key.Query{Kind: key.KindSweep, Spec: req.Spec, Sweep: &req.SweepParams}
}

// The replay-client contract on a cold stream: every non-terminal line
// is a checksum-valid cell delta, completeness strictly increases
// delta over delta, the folded deltas equal the terminal document, and
// the terminal line is byte-identical to the stored artifact's result.
func TestSweepStreamColdThenWarm(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(sweepBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("cold sweep: status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	if c := rec.Header().Get("X-Cache"); c != "miss" {
		t.Fatalf("cold sweep X-Cache %q, want miss", c)
	}
	lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("cold stream has %d lines; want deltas plus a terminal document", len(lines))
	}
	deltas, terminal := lines[:len(lines)-1], lines[len(lines)-1]

	var cells []*shard.CellArtifact
	done := 0
	for i, line := range deltas {
		ca, err := shard.DecodeCellLine(line)
		if err != nil {
			t.Fatalf("delta %d invalid: %v\n%s", i, err, line)
		}
		next := done + ca.Stats.Trials
		if next <= done {
			t.Fatalf("delta %d: completeness did not increase (%d -> %d)", i, done, next)
		}
		done = next
		cells = append(cells, ca)
	}

	var merged shard.AnytimeMerged
	if err := json.Unmarshal(terminal, &merged); err != nil {
		t.Fatalf("terminal line is not a merged document: %v", err)
	}
	if merged.Partial {
		t.Fatal("completed sweep reported partial")
	}
	if done != len(merged.Points)*8 {
		t.Fatalf("deltas cover %d trials, terminal document %d points × 8", done, len(merged.Points))
	}
	// Folding the deltas reproduces the terminal document exactly.
	sw, pts, err := shard.CollectPartial(nil, cells)
	if err != nil {
		t.Fatal(err)
	}
	refold, err := shard.MergePartial(sw, pts, sim.StopRule{})
	if err != nil {
		t.Fatal(err)
	}
	refoldBytes, err := json.Marshal(refold)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refoldBytes, terminal) {
		t.Fatalf("folded deltas differ from terminal line:\n%s\nvs\n%s", refoldBytes, terminal)
	}
	// The terminal line is the stored artifact, byte for byte.
	k, err := key.Of(sweepTestQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	art, err := s.Store().Get(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(art.Result), terminal) {
		t.Fatalf("stored artifact differs from terminal line:\n%s\nvs\n%s", art.Result, terminal)
	}

	// Warm replay: one line only (the terminal document), X-Cache hit,
	// identical bytes.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(sweepBody)))
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm sweep: status %d", rec2.Code)
	}
	if c := rec2.Header().Get("X-Cache"); c != "hit" {
		t.Fatalf("warm sweep X-Cache %q, want hit", c)
	}
	warm := bytes.Split(bytes.TrimSpace(rec2.Body.Bytes()), []byte("\n"))
	if len(warm) != 1 {
		t.Fatalf("warm stream has %d lines, want just the terminal document", len(warm))
	}
	if !bytes.Equal(warm[0], terminal) {
		t.Fatal("warm terminal line differs from cold one")
	}
}

// A sweep with a CI target stops early: the terminal document marks
// every size stopped with fewer trials done than planned, and the
// stream carries fewer deltas than the exhaustive plan would.
func TestSweepStreamStopsEarly(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	body := `{"spec":{"protocol":"flock","param":4},"sizes":[2,4,8,16],"trials":48,"seed":1,"max_steps":200000,"patience":1000,"block":4,"ci_target":0.05}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	lines := bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n"))
	var merged shard.AnytimeMerged
	if err := json.Unmarshal(lines[len(lines)-1], &merged); err != nil {
		t.Fatal(err)
	}
	for _, pt := range merged.Points {
		if !pt.Stopped {
			t.Errorf("x=%d not stopped under a rule every size satisfies", pt.X)
		}
		if pt.TrialsDone >= pt.TrialsPlanned {
			t.Errorf("x=%d: stopping saved nothing (%d of %d)", pt.X, pt.TrialsDone, pt.TrialsPlanned)
		}
	}
	if exhaustive := 4 * 48 / 4; len(lines)-1 >= exhaustive {
		t.Errorf("stream carried %d deltas; stopping should cut well below the %d-cell plan", len(lines)-1, exhaustive)
	}
}

// notifyWriter signals the first streamed byte, so the disconnect test
// can cancel mid-stream rather than racing the whole compute.
type notifyWriter struct {
	httptest.ResponseRecorder
	mu    sync.Mutex
	once  sync.Once
	first chan struct{}
}

func (nw *notifyWriter) Write(b []byte) (int, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.once.Do(func() { close(nw.first) })
	return nw.ResponseRecorder.Write(b)
}

func (nw *notifyWriter) WriteHeader(code int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.ResponseRecorder.WriteHeader(code)
}

// A client that disconnects mid-stream cancels the compute and leaks
// no admission tokens: the bucket refills to capacity once the handler
// unwinds.
func TestSweepDisconnectReleasesAdmission(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	// Big enough that the compute cannot finish before the cancel
	// lands: many sizes, many trials, one-trial blocks.
	body := `{"spec":{"protocol":"flock","param":4},"sizes":[64,128,256,512,1024],"trials":64,"block":1,"max_steps":1000000}`

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(body)).WithContext(ctx)
	nw := &notifyWriter{ResponseRecorder: *httptest.NewRecorder(), first: make(chan struct{})}
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		h.ServeHTTP(nw, req)
	}()
	<-nw.first
	cancel()
	<-doneCh

	capacity, avail, _ := s.admit.snapshot()
	if avail != capacity {
		t.Fatalf("admission bucket at %d of %d after a mid-stream disconnect: tokens leaked", avail, capacity)
	}
}

// Malformed sweep requests fail as JSON errors before any stream
// starts: unknown members, non-counting protocols, bad stop rules.
func TestSweepBadRequests(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	for name, body := range map[string]string{
		"unknown member":  `{"spec":{"protocol":"flock","param":4},"sizes":[2],"trialz":3}`,
		"no sizes":        `{"spec":{"protocol":"flock","param":4}}`,
		"non-counting":    `{"spec":{"protocol":"majority","param":0},"sizes":[2]}`,
		"bad ci_target":   `{"spec":{"protocol":"flock","param":4},"sizes":[2],"ci_target":2}`,
		"floor sans rule": `{"spec":{"protocol":"flock","param":4},"sizes":[2],"min_trials":4}`,
	} {
		rec, doc := post(t, h, "/v1/sweep", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
		if _, ok := doc["error"]; !ok {
			t.Errorf("%s: no error member in %s", name, rec.Body.String())
		}
	}
}
