package serve

import "fmt"

// The request lifecycle state machine. Every query a ppserve daemon
// accepts walks this SM; each transition is checked against the
// allowed-transition table below and against the job's invariant, so
// an impossible lifecycle (a result without a compute, a failure
// without a reason) is a programming error caught at the transition,
// not a corrupt row discovered later. The conformance test walks
// every legal path and rejects every illegal edge.
//
//	StateAdmitted ------------+-------------------+
//	|                         |                   |
//	| key derived,            |                   |
//	| store consulted         |                   |
//	V                         |                   |
//	StatePlanned ---------+   |                   |
//	|            \        |   |                   +--> StateTimedOut
//	| cache miss: \ cache |   |                   |    (deadline hit
//	| compute      \ hit  |   |                   |    at any stage)
//	V               \     |   |                   |
//	StateRunning     \    |   | admission rejected|
//	|           \     \   |   | / malformed plan  |
//	| computed   \     \  |   |                   |
//	V             \     V V   V                   |
//	StateCached    +--> StateFailed     Planned --+-- Running
type JobState int

const (
	// StateAdmitted: the request entered the daemon (its record
	// exists); it may still be waiting for admission tokens.
	StateAdmitted JobState = iota
	// StatePlanned: the request holds its cost tokens, the query was
	// canonicalized and keyed, and the result store was consulted.
	StatePlanned
	// StateRunning: a cache miss is being computed (this job leads the
	// singleflight, or shares a leader's flight).
	StateRunning
	// StateCached: terminal — the result is in the store and was
	// served (whether this job computed it or found it).
	StateCached
	// StateFailed: terminal — admission, planning, or compute failed;
	// the job records why.
	StateFailed
	// StateTimedOut: terminal — the request's compute deadline expired
	// (or its client disconnected) before a result was served; the job
	// records which. Distinct from StateFailed because the query was
	// fine: the same request re-posted later may hit warm.
	StateTimedOut

	numJobStates
)

const (
	smInitial uint8 = 1 << iota
	smFinal
)

func bitsOf(states ...JobState) uint32 {
	var b uint32
	for _, s := range states {
		b |= 1 << uint(s)
	}
	return b
}

// smConf configures one state: display name, role flags, and the
// bitmask of states it may transition to.
type smConf struct {
	name    string
	flags   uint8
	allowed uint32
}

// jobSMConf is the allowed-transition table — the single source of
// truth for the lifecycle; the diagram above and the conformance test
// both derive from it.
var jobSMConf = [numJobStates]smConf{
	StateAdmitted: {
		name:    "admitted",
		flags:   smInitial,
		allowed: bitsOf(StatePlanned, StateFailed, StateTimedOut),
	},
	StatePlanned: {
		name:    "planned",
		allowed: bitsOf(StateRunning, StateCached, StateFailed, StateTimedOut),
	},
	StateRunning: {
		name:    "running",
		allowed: bitsOf(StateCached, StateFailed, StateTimedOut),
	},
	StateCached:   {name: "cached", flags: smFinal},
	StateFailed:   {name: "failed", flags: smFinal},
	StateTimedOut: {name: "timed_out", flags: smFinal},
}

func (s JobState) String() string {
	if s < 0 || s >= numJobStates {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return jobSMConf[s].name
}

// SM is one lifecycle instance: the current state plus an optional
// invariant checked after the table allows a transition. The
// invariant sees the destination state and rejects transitions whose
// side conditions do not hold (a Cached job must hold an artifact, a
// Failed job a reason) — the dqlite sm_move/sm_check idiom.
type SM struct {
	state     JobState
	invariant func(JobState) error
}

// newSM starts a lifecycle in the initial state; the invariant (nil =
// none) is checked for it too, so an SM cannot even begin in an
// inconsistent shape.
func newSM(invariant func(JobState) error) (SM, error) {
	m := SM{state: StateAdmitted, invariant: invariant}
	if err := m.check(StateAdmitted); err != nil {
		return SM{}, err
	}
	return m, nil
}

func (m *SM) check(s JobState) error {
	if m.invariant == nil {
		return nil
	}
	if err := m.invariant(s); err != nil {
		return fmt.Errorf("serve: invariant violated entering %s: %w", s, err)
	}
	return nil
}

// State returns the current state.
func (m *SM) State() JobState { return m.state }

// Done reports whether the SM is in a terminal state.
func (m *SM) Done() bool { return jobSMConf[m.state].flags&smFinal != 0 }

// To transitions to next, failing loudly if the allowed-transition
// table forbids the edge or the invariant rejects the destination.
// A failed transition leaves the state unchanged.
func (m *SM) To(next JobState) error {
	if next < 0 || next >= numJobStates {
		return fmt.Errorf("serve: transition %s -> state(%d): no such state", m.state, int(next))
	}
	if jobSMConf[m.state].allowed&(1<<uint(next)) == 0 {
		return fmt.Errorf("serve: illegal transition %s -> %s", m.state, next)
	}
	if err := m.check(next); err != nil {
		return err
	}
	m.state = next
	return nil
}
