package store

import (
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
)

// health owns graceful degradation: when a publish fails even after
// the transient-retry budget (disk full, persistent EIO), the store
// flips to compute-only mode — results are served without persisting,
// reads still answer warm hits, journal appends pause — and a single
// background probe re-tests writability on an exponential backoff
// schedule (ProbeBase doubling to 30s) until a probe write round-trips,
// at which point the store heals itself and persisting resumes. The
// daemon's /readyz reports this flag; requests never see it as an
// error.
type health struct {
	s        *Store
	degraded atomic.Bool
	healed   atomic.Int64

	mu      sync.Mutex
	reason  string
	since   time.Time
	probing bool
}

// HealthSnapshot is the store-health block of /metrics and /readyz.
type HealthSnapshot struct {
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason,omitempty"`
	Since    string `json:"since,omitempty"` // RFC3339, seam clock
}

func (h *health) init(s *Store) { h.s = s }

func (h *health) isDegraded() bool { return h.degraded.Load() }

// Degraded reports whether the store is in compute-only mode.
func (s *Store) Degraded() bool { return s.health.isDegraded() }

// Health snapshots the degradation state.
func (s *Store) Health() HealthSnapshot {
	h := &s.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.degraded.Load() {
		return HealthSnapshot{}
	}
	return HealthSnapshot{Degraded: true, Reason: h.reason, Since: h.since.UTC().Format(time.RFC3339)}
}

// degrade enters (or re-confirms) compute-only mode and ensures
// exactly one probe goroutine is chasing recovery.
func (h *health) degrade(reason string) {
	h.mu.Lock()
	if !h.degraded.Load() {
		h.reason = reason
		h.since = h.s.fsys.Now()
		h.degraded.Store(true)
		log.Printf("store: degraded to compute-only mode: %s", reason)
	}
	start := !h.probing
	h.probing = true
	h.mu.Unlock()
	if start {
		go h.probeLoop()
	}
}

func (h *health) probeBase() time.Duration {
	if h.s.opts.ProbeBase <= 0 {
		return 250 * time.Millisecond
	}
	return h.s.opts.ProbeBase
}

// probeLoop re-tests the store on a doubling backoff until one probe
// succeeds, then clears the degraded flag and exits.
func (h *health) probeLoop() {
	delay := h.probeBase()
	for {
		time.Sleep(delay)
		if h.probe() {
			h.mu.Lock()
			h.degraded.Store(false)
			h.probing = false
			h.reason = ""
			h.mu.Unlock()
			h.healed.Add(1)
			log.Printf("store: healed, persisting resumed")
			return
		}
		if delay < 30*time.Second {
			delay *= 2
		}
	}
}

// probe is one writability check: durably write a scratch file under
// the root, read it back, remove it. Deliberately not retried — the
// loop around it is the retry.
func (h *health) probe() bool {
	path := h.s.root + "/.probe"
	payload := []byte(h.s.fsys.Now().UTC().Format(time.RFC3339Nano) + "\n")
	if err := faultfs.AtomicWrite(h.s.fsys, path, payload); err != nil {
		return false
	}
	got, err := h.s.fsys.ReadFile(path)
	if err != nil || string(got) != string(payload) {
		return false
	}
	_ = h.s.fsys.Remove(path)
	return true
}
