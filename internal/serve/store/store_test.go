package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/serve/key"
)

func testKey(t *testing.T, x int64) key.Key {
	t.Helper()
	q := &key.Query{
		Kind:     key.KindSimulate,
		Spec:     key.Spec{Protocol: "flock", Param: 4},
		Simulate: &key.SimulateParams{X: x},
	}
	k, err := key.Of(q)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func openTest(t *testing.T, fsys faultfs.FS) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func result(x int64) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"x":%d}`, x))
}

func TestGetOrComputePersistsAndHits(t *testing.T) {
	s := openTest(t, nil)
	k := testKey(t, 8)
	var computes atomic.Int64
	compute := func(context.Context) (json.RawMessage, error) {
		computes.Add(1)
		return result(8), nil
	}
	art, hit, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, compute)
	if err != nil || hit {
		t.Fatalf("cold lookup: hit=%v err=%v", hit, err)
	}
	if string(art.Result) != `{"x":8}` || art.Key != k.String() {
		t.Fatalf("bad artifact %+v", art)
	}

	// A second store over the same directory (daemon restart) must hit
	// without recomputing.
	s2, err := Open(s.Root(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	art2, hit, err := s2.GetOrCompute(context.Background(), k, key.KindSimulate, compute)
	if err != nil || !hit {
		t.Fatalf("warm lookup after reopen: hit=%v err=%v", hit, err)
	}
	if string(art2.Result) != string(art.Result) {
		t.Fatalf("restart changed the result: %s vs %s", art2.Result, art.Result)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	stats, err := s2.Size()
	if err != nil || stats.Objects != 1 || stats.Bytes == 0 {
		t.Fatalf("size = %+v err=%v, want 1 object", stats, err)
	}
}

// The singleflight contract under -race: N goroutines per key, mixed
// keys, exactly one compute per key, everyone sees the same artifact.
func TestConcurrentSingleflight(t *testing.T) {
	s := openTest(t, nil)
	const keys, per = 4, 16
	computes := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	errs := make(chan error, keys*per)
	arts := make([]*Artifact, keys*per)
	for ki := 0; ki < keys; ki++ {
		k := testKey(t, int64(100+ki))
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func(ki, g int) {
				defer wg.Done()
				art, _, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
					computes[ki].Add(1)
					return result(int64(100 + ki)), nil
				})
				if err != nil {
					errs <- err
					return
				}
				arts[ki*per+g] = art
			}(ki, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for ki := 0; ki < keys; ki++ {
		if got := computes[ki].Load(); got != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", ki, got)
		}
		want := fmt.Sprintf(`{"x":%d}`, 100+ki)
		for g := 0; g < per; g++ {
			if art := arts[ki*per+g]; art == nil || string(art.Result) != want {
				t.Fatalf("key %d caller %d got %v", ki, g, arts[ki*per+g])
			}
		}
	}
	c := s.Counters()
	if c.Misses != keys {
		t.Errorf("misses = %d, want %d", c.Misses, keys)
	}
	if c.Hits+c.Dedups != keys*(per-1) {
		t.Errorf("hits+dedups = %d+%d, want %d", c.Hits, c.Dedups, keys*(per-1))
	}
}

// A compute error is shared with waiting callers and leaves nothing
// on disk; the next request retries and can succeed.
func TestComputeErrorNotCached(t *testing.T) {
	s := openTest(t, nil)
	k := testKey(t, 9)
	boom := fmt.Errorf("transient closure explosion")
	if _, _, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("err = %v, want the compute error", err)
	}
	art, hit, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(9), nil
	})
	if err != nil || hit || art == nil {
		t.Fatalf("retry after error: art=%v hit=%v err=%v", art, hit, err)
	}
}

// A crash mid-publish (torn write that still reports success, rename
// landing the short file) must never surface a torn read: the
// checksum catches it, the artifact is quarantined with a reason, and
// the query recomputes.
func TestTornWriteQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()
	k := testKey(t, 11)
	// First write of this store tears silently at byte 40 — the
	// "crash between write and fsync, rename already durable" shape.
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpWrite, Nth: 1, Path: k.SHA[:8], Tear: true, TearAt: 40},
	})
	s, err := Open(dir, Options{FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(11), nil
	}); err != nil {
		t.Fatal(err)
	}
	if fired := faulty.Fired(); len(fired) != 1 {
		t.Fatalf("torn-write fault did not fire: %v", fired)
	}

	// Restarted daemon over the same directory, healthy filesystem.
	var computes atomic.Int64
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	art, hit, err := s2.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		computes.Add(1)
		return result(11), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || computes.Load() != 1 {
		t.Fatalf("torn artifact served as a hit (hit=%v computes=%d)", hit, computes.Load())
	}
	if string(art.Result) != `{"x":11}` {
		t.Fatalf("recompute produced %s", art.Result)
	}
	if got := s2.Counters().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	qdir := filepath.Join(dir, "corrupt")
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatalf("no quarantine directory: %v", err)
	}
	var foundReason bool
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".reason") {
			foundReason = true
			reason, _ := os.ReadFile(filepath.Join(qdir, e.Name()))
			if !strings.Contains(string(reason), "torn write") && !strings.Contains(string(reason), "unparseable") {
				t.Errorf("reason does not name the corruption: %q", reason)
			}
		}
	}
	if !foundReason {
		t.Fatalf("no .reason file among %v", entries)
	}
	// The healthy recompute replaced the object: a third open hits.
	s3, _ := Open(dir, Options{})
	if _, hit, err := s3.GetOrCompute(context.Background(), k, key.KindSimulate, nil); err != nil || !hit {
		t.Fatalf("after quarantine+recompute: hit=%v err=%v", hit, err)
	}
}

// A transiently failing rename (one EIO) is absorbed by the retry
// policy: the publish succeeds on the second attempt and the caller
// never notices.
func TestTransientRenameRetried(t *testing.T) {
	dir := t.TempDir()
	k := testKey(t, 12)
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpRename, Nth: 1, Err: syscall.EIO},
	})
	s, err := Open(dir, Options{FS: faulty, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(12), nil
	}); err != nil {
		t.Fatalf("one transient rename failure leaked to the caller: %v", err)
	}
	c := s.Counters()
	if c.IORetries == 0 {
		t.Fatalf("retry not recorded: %+v", c)
	}
	if s.Degraded() {
		t.Fatal("transient fault degraded the store")
	}
	s2, _ := Open(dir, Options{})
	art, err := s2.Get(context.Background(), k)
	if err != nil || art == nil {
		t.Fatalf("retried publish not durable: art=%v err=%v", art, err)
	}
}

// A permanently failing publish (disk full) must not fail the request:
// the store degrades to compute-only mode, the artifact is served
// anyway, and the disk keeps a clean miss — no torn or partial file.
func TestPermanentPublishFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	k := testKey(t, 12)
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpWrite, Nth: 1, Path: k.SHA[:8], Err: syscall.ENOSPC},
	})
	// ProbeBase of an hour: the store must stay degraded for the whole
	// test instead of self-healing mid-assertion.
	s, err := Open(dir, Options{FS: faulty, ProbeBase: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	art, hit, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(12), nil
	})
	if err != nil || hit || art == nil {
		t.Fatalf("degraded publish failed the request: art=%v hit=%v err=%v", art, hit, err)
	}
	if !s.Degraded() {
		t.Fatal("ENOSPC publish did not degrade the store")
	}
	if c := s.Counters(); c.PutFailures != 1 {
		t.Fatalf("put_failures = %d, want 1", c.PutFailures)
	}
	// While degraded, computes are served without touching the disk.
	k2 := testKey(t, 13)
	if _, _, err := s.GetOrCompute(context.Background(), k2, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(13), nil
	}); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c.PutSkipped != 1 {
		t.Fatalf("put_skipped = %d, want 1", c.PutSkipped)
	}
	s2, _ := Open(dir, Options{})
	got, err := s2.Get(context.Background(), k)
	if err != nil || got != nil {
		t.Fatalf("after failed publish: art=%v err=%v, want clean miss", got, err)
	}
	if got := s2.Counters().Quarantined; got != 0 {
		t.Fatalf("clean miss quarantined %d files", got)
	}
}

// Edited content with a stale checksum — bit rot or a hand edit —
// is quarantined, not served.
func TestEditedArtifactQuarantined(t *testing.T) {
	s := openTest(t, nil)
	k := testKey(t, 13)
	if _, _, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(13), nil
	}); err != nil {
		t.Fatal(err)
	}
	path := s.ObjectPath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), `"x": 13`, `"x": 31`, 1)
	if edited == string(data) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	art, err := s.Get(context.Background(), k)
	if err != nil || art != nil {
		t.Fatalf("edited artifact served: art=%v err=%v", art, err)
	}
	if got := s.Counters().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
}

// A misfiled artifact — valid document sealed for key A sitting at
// key B's address — must not answer B's query.
func TestMisfiledArtifactNotServed(t *testing.T) {
	s := openTest(t, nil)
	ka, kb := testKey(t, 14), testKey(t, 15)
	if _, _, err := s.GetOrCompute(context.Background(), ka, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(14), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.ObjectPath(kb)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.ObjectPath(ka))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.ObjectPath(kb), data, 0o644); err != nil {
		t.Fatal(err)
	}
	art, err := s.Get(context.Background(), kb)
	if err != nil || art != nil {
		t.Fatalf("misfiled artifact served: art=%v err=%v", art, err)
	}
}
