package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// One GC pass over a battered store: corrupt artifact quarantined,
// stray publish temp swept, expired quarantine dropped, journal
// compacted to the survivors — and a daemon reopening the store
// afterwards serves the survivors warm.
func TestGCRepairsAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ka := putOne(t, s, 70)
	kb := putOne(t, s, 71)
	kc := putOne(t, s, 72)

	// Corrupt kc in place (bit rot).
	cpath := s.ObjectPath(kc)
	data, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cpath, bytes.Replace(data, []byte(`"x": 72`), []byte(`"x": 27`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	// A stray publish temp file (crash before rename).
	stray := filepath.Join(filepath.Dir(s.ObjectPath(ka)), ka.SHA+".json.tmp.999.1")
	if err := os.WriteFile(stray, []byte("half an artifa"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An old quarantine entry past the TTL, plus its reason.
	qdir := filepath.Join(dir, "corrupt")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(qdir, "ancient.json")
	if err := os.WriteFile(old, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(old+".reason", []byte("junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}

	rep, err := GC(dir, GCOptions{QuarantineTTL: 24 * time.Hour})
	if err != nil {
		t.Fatalf("recoverable damage made GC fail: %v", err)
	}
	if rep.Verified != 2 || rep.Quarantined != 1 || rep.DroppedTmp != 1 || rep.DroppedQuarantine != 1 {
		t.Fatalf("report %+v, want verified=2 quarantined=1 dropped_tmp=1 dropped_quarantine=1", rep)
	}
	if rep.Objects != 2 || rep.JournalLines != 2 {
		t.Fatalf("report %+v, want 2 surviving objects and 2 journal lines", rep)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("expired quarantine entry survived")
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived")
	}
	journal, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(journal), "\n"); lines != 2 {
		t.Fatalf("compacted journal has %d lines:\n%s", lines, journal)
	}

	// The repaired store serves the survivors warm and the corrupt key
	// as a clean miss.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := s2.Size()
	if stats.Objects != 2 {
		t.Fatalf("reopened footprint %+v, want 2", stats)
	}
	if art, err := s2.Get(context.Background(), ka); err != nil || art == nil {
		t.Fatalf("survivor ka lost: %v", err)
	}
	if art, err := s2.Get(context.Background(), kb); err != nil || art == nil {
		t.Fatalf("survivor kb lost: %v", err)
	}
	if art, err := s2.Get(context.Background(), kc); err != nil || art != nil {
		t.Fatalf("quarantined kc still served: %v %v", art, err)
	}
}
