package store

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/faultfs"
	"repro/internal/serve/key"
)

// GCOptions parameterizes one offline collection pass.
type GCOptions struct {
	// FS is the filesystem seam (nil = the real OS).
	FS faultfs.FS
	// QuarantineTTL drops corrupt/ entries older than this (their
	// .reason siblings too); 0 keeps quarantine forever. Age is
	// measured by file mtime against the seam clock.
	QuarantineTTL time.Duration
}

// GCReport is what one pass found and did. Quarantined, DroppedTmp
// and DroppedQuarantine describe recoverable damage the pass repaired
// — a store with a non-zero report is healthy afterwards, which is
// why the gc subcommand exits zero on them.
type GCReport struct {
	// Objects and Bytes are the live footprint after the pass.
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
	// Verified counts artifacts whose checksum round-tripped.
	Verified int `json:"verified"`
	// Quarantined counts corrupt artifacts moved to corrupt/.
	Quarantined int `json:"quarantined"`
	// DroppedTmp counts stray publish temp files removed (crash
	// leftovers whose rename never happened).
	DroppedTmp int `json:"dropped_tmp"`
	// DroppedQuarantine counts quarantine entries past the TTL removed.
	DroppedQuarantine int `json:"dropped_quarantine"`
	// JournalLines is the compacted journal's line count (one per live
	// object).
	JournalLines int `json:"journal_lines"`
}

// GC runs one offline collection pass over the store at dir: every
// artifact is read and checksum-verified (corrupt ones are quarantined
// exactly as the serving path would), stray publish temp files are
// swept, quarantine entries older than the TTL are dropped, and the
// access journal is compacted to one line per surviving object with
// recency carried over — so a subsequent Open replays a minimal
// journal and the LRU order survives the compaction.
//
// GC assumes exclusive ownership of dir: run it offline, not under a
// live daemon. Recoverable damage (corruption, strays, expired
// quarantine) is repaired and reported, not returned as an error; the
// error path is reserved for an unreadable store or a failed journal
// rewrite.
func GC(dir string, opts GCOptions) (*GCReport, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS()
	}
	rep := &GCReport{}
	objects := filepath.Join(dir, "objects")
	if err := fsys.MkdirAll(objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: gc %s: %w", dir, err)
	}

	// Recency and kinds from the old journal, so compaction preserves
	// the LRU order Open would have replayed.
	type hint struct {
		kind string
		last int64
		seq  int64
	}
	hints := map[string]hint{}
	var seq int64
	if data, err := fsys.ReadFile(filepath.Join(dir, "journal.log")); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		for sc.Scan() {
			op, sha, kind, _, last, ok := parseJournalLine(sc.Text())
			if !ok || (op != "put" && op != "get") {
				continue
			}
			seq++
			h := hints[sha]
			if kind != "" {
				h.kind = kind
			}
			if last > h.last {
				h.last = last
			}
			h.seq = seq
			hints[sha] = h
		}
	}

	type live struct {
		sha  string
		kind string
		size int64
		last int64
		seq  int64
	}
	var survivors []live
	fanouts, err := os.ReadDir(objects)
	if err != nil {
		return nil, fmt.Errorf("store: gc %s: %w", dir, err)
	}
	quarantine := func(path, reason string) error {
		qdir := filepath.Join(dir, "corrupt")
		if err := fsys.MkdirAll(qdir, 0o755); err != nil {
			return err
		}
		dst := filepath.Join(qdir, filepath.Base(path))
		for i := 2; ; i++ {
			if _, err := fsys.Stat(dst); errors.Is(err, fs.ErrNotExist) {
				break
			}
			dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
		}
		if err := fsys.Rename(path, dst); err != nil {
			return err
		}
		_ = fsys.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
		rep.Quarantined++
		return nil
	}
	for _, fan := range fanouts {
		if !fan.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(objects, fan.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: gc %s: %w", dir, err)
		}
		for _, f := range files {
			path := filepath.Join(objects, fan.Name(), f.Name())
			sha := shaOfObjectFile(f.Name())
			if sha == "" {
				// A publish temp file (or other stray): its rename never
				// happened, so it was never an artifact. Sweep it.
				if err := fsys.Remove(path); err == nil {
					rep.DroppedTmp++
				}
				continue
			}
			data, err := fsys.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("store: gc read %s: %w", path, err)
			}
			art, reason := decode(data, key.Key{SHA: sha})
			if art == nil {
				if err := quarantine(path, reason); err != nil {
					return nil, fmt.Errorf("store: gc quarantine %s: %w", path, err)
				}
				continue
			}
			rep.Verified++
			h := hints[sha]
			kind := art.Kind
			if kind == "" {
				kind = h.kind
			}
			last := h.last
			if last == 0 {
				if info, err := f.Info(); err == nil {
					last = info.ModTime().Unix()
				}
			}
			survivors = append(survivors, live{sha, kind, int64(len(data)), last, h.seq})
			rep.Objects++
			rep.Bytes += int64(len(data))
		}
	}

	// Drop expired quarantine (and orphaned .reason siblings).
	if opts.QuarantineTTL > 0 {
		qdir := filepath.Join(dir, "corrupt")
		cutoff := fsys.Now().Add(-opts.QuarantineTTL)
		if entries, err := os.ReadDir(qdir); err == nil {
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".reason") {
					continue
				}
				info, err := e.Info()
				if err != nil || !info.ModTime().Before(cutoff) {
					continue
				}
				path := filepath.Join(qdir, e.Name())
				if err := fsys.Remove(path); err == nil {
					rep.DroppedQuarantine++
					_ = fsys.Remove(path + ".reason")
				}
			}
		}
	}

	// Compact the journal: one put line per survivor, oldest access
	// first, atomically replacing the old log.
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].last != survivors[j].last {
			return survivors[i].last < survivors[j].last
		}
		return survivors[i].seq < survivors[j].seq
	})
	var buf bytes.Buffer
	for _, o := range survivors {
		buf.Write(journalLine("put", o.sha, o.kind, o.size, o.last))
	}
	rep.JournalLines = len(survivors)
	if err := faultfs.AtomicWrite(fsys, filepath.Join(dir, "journal.log"), buf.Bytes()); err != nil {
		return nil, fmt.Errorf("store: gc journal rewrite: %w", err)
	}
	return rep, nil
}
