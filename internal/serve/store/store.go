// Package store is ppserve's persistent, content-addressed result
// store: one sealed JSON artifact per cache key, laid out
// objects/<sha[:2]>/<sha>.json under the store root, so a repeated
// query is an O(1) file lookup that survives daemon restarts.
//
// Durability and integrity follow the shard-queue conventions. Every
// artifact is published fsync-temp → atomic rename → dir-sync through
// the injectable faultfs seam, so readers never observe a torn
// document and a host crash leaves either nothing or the complete
// file. Every artifact carries an internal/canon content checksum
// verified on each read; a corrupted artifact (torn write that beat
// the rename discipline, bit rot, hand edit) is quarantined to
// corrupt/ with a .reason file and reported as a miss — recomputed,
// never served, never re-read in a loop. A key mismatch between file
// name and sealed content is corruption too: a renamed artifact must
// not answer someone else's query.
//
// Concurrent identical queries compute once: GetOrCompute runs a
// per-key singleflight. The first caller becomes the leader (it
// re-checks disk, then computes and publishes); every concurrent
// caller for the same key blocks on the leader's flight and shares
// its artifact or error. Errors are never persisted — a failed
// compute leaves no artifact, so the next request retries.
package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/canon"
	"repro/internal/faultfs"
	"repro/internal/hostmeta"
	"repro/internal/serve/key"
)

// ArtifactSchema versions the stored artifact document.
const ArtifactSchema = 1

// Artifact is one sealed store entry: the query's result document
// plus the provenance of the daemon incarnation that computed it.
type Artifact struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	Kind   string `json:"kind"`
	// Server and Instance identify the computing daemon (hostmeta
	// identity; telemetry, not protocol state).
	Server   hostmeta.Meta   `json:"server"`
	Instance string          `json:"instance"`
	Result   json.RawMessage `json:"result"`
	Checksum string          `json:"checksum"`
}

func (a *Artifact) setChecksum(s string) { a.Checksum = s }

// compactResult normalizes the embedded result document to compact
// JSON: sealing indents the whole artifact (re-indenting the raw
// message), so without this a computed artifact and its re-read would
// differ byte-wise in Result — same content, different whitespace.
func (a *Artifact) compactResult() error {
	var buf bytes.Buffer
	if err := json.Compact(&buf, a.Result); err != nil {
		return fmt.Errorf("store: result is not valid JSON: %w", err)
	}
	a.Result = json.RawMessage(buf.Bytes())
	return nil
}

// seal marshals a with its content checksum stamped in, the repo-wide
// sealed-document convention (indented, trailing newline).
func seal(a *Artifact) ([]byte, error) {
	a.setChecksum("")
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	sum, err := canon.Checksum(data, "checksum")
	if err != nil {
		return nil, err
	}
	a.setChecksum(sum)
	data, err = json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Counters aggregates the store's cache-traffic telemetry; /metrics
// exposes a snapshot. Hits + Dedups over total lookups is the cache
// hit rate the serve-smoke drill asserts on.
type Counters struct {
	// Hits counts disk lookups answered by an existing artifact.
	Hits int64 `json:"hits"`
	// Dedups counts callers who shared a concurrent leader's compute
	// instead of running their own (singleflight followers).
	Dedups int64 `json:"dedups"`
	// Misses counts leader computes actually run.
	Misses int64 `json:"misses"`
	// Quarantined counts corrupt artifacts moved to corrupt/.
	Quarantined int64 `json:"quarantined"`
}

// flight is one in-progress compute; followers block on done.
type flight struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// Store is the content-addressed artifact store. Safe for concurrent
// use by any number of goroutines.
type Store struct {
	root     string
	fsys     faultfs.FS
	identity hostmeta.Process

	mu      sync.Mutex
	flights map[string]*flight

	hits        atomic.Int64
	dedups      atomic.Int64
	misses      atomic.Int64
	quarantined atomic.Int64
}

// Open prepares a store rooted at dir (created if missing) over the
// given filesystem seam; fsys nil means the real OS.
func Open(dir string, fsys faultfs.FS) (*Store, error) {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	s := &Store{
		root:     dir,
		fsys:     fsys,
		identity: hostmeta.CollectProcess(),
		flights:  map[string]*flight{},
	}
	if err := fsys.MkdirAll(s.objectsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return s, nil
}

func (s *Store) objectsDir() string { return filepath.Join(s.root, "objects") }

// ObjectPath is the artifact file of one key: two-hex fan-out
// directories keep any one directory from ballooning.
func (s *Store) ObjectPath(k key.Key) string {
	return filepath.Join(s.objectsDir(), k.SHA[:2], k.SHA+".json")
}

// Get looks k up on disk. A missing artifact is (nil, nil): absence
// is a normal cache state. A corrupt artifact is quarantined and
// likewise reported as a miss — the caller recomputes; it is never
// served.
func (s *Store) Get(k key.Key) (*Artifact, error) {
	path := s.ObjectPath(k)
	data, err := s.fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	art, reason := decode(data, k)
	if art == nil {
		s.quarantine(path, reason)
		return nil, nil
	}
	return art, nil
}

// decode parses and integrity-checks one artifact document; a nil
// artifact comes back with the quarantine reason.
func decode(data []byte, k key.Key) (*Artifact, string) {
	sum, err := canon.Checksum(data, "checksum")
	if err != nil {
		return nil, fmt.Sprintf("unparseable JSON: %v", err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Sprintf("not an artifact document: %v", err)
	}
	if a.Checksum == "" {
		return nil, "no content checksum"
	}
	if a.Checksum != sum {
		return nil, fmt.Sprintf("checksum %s, content is %s (torn write or bit rot)", a.Checksum, sum)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Sprintf("artifact schema %d, this build understands %d", a.Schema, ArtifactSchema)
	}
	if a.Key != k.String() {
		return nil, fmt.Sprintf("sealed key %s under address %s (misfiled artifact)", a.Key, k)
	}
	if err := a.compactResult(); err != nil {
		return nil, err.Error()
	}
	return &a, ""
}

// quarantine moves a corrupt artifact to <root>/corrupt/ with a
// .reason sibling, removing it from the cache namespace so it is
// recomputed instead of served and never re-read in a loop. Name
// collisions across repeated corruption get a numeric suffix.
func (s *Store) quarantine(path, reason string) {
	qdir := filepath.Join(s.root, "corrupt")
	if err := s.fsys.MkdirAll(qdir, 0o755); err != nil {
		log.Printf("store: quarantine mkdir: %v", err)
		return
	}
	base := filepath.Base(path)
	dst := filepath.Join(qdir, base)
	for i := 2; ; i++ {
		if _, err := s.fsys.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := s.fsys.Rename(path, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		log.Printf("store: quarantine %s: %v", base, err)
		return
	}
	// The reason file is evidence, not protocol state: best effort.
	_ = s.fsys.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	s.quarantined.Add(1)
	log.Printf("store: quarantined %s: %s", dst, reason)
}

// put seals and publishes one artifact durably (fsync-temp → rename →
// dir-sync through the seam).
func (s *Store) put(k key.Key, a *Artifact) error {
	path := s.ObjectPath(k)
	if err := s.fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", k, err)
	}
	data, err := seal(a)
	if err != nil {
		return err
	}
	if err := faultfs.AtomicWrite(s.fsys, path, data); err != nil {
		return fmt.Errorf("store: put %s: %w", k, err)
	}
	return nil
}

// GetOrCompute returns k's artifact, computing and persisting it
// exactly once per key across any number of concurrent callers: a
// disk hit is served as-is; otherwise the first caller computes while
// concurrent callers for the same key wait and share the outcome.
// hit reports whether this caller avoided a compute (disk hit or
// shared flight). A compute error is returned to every waiting
// caller and nothing is persisted; ctx cancels this caller's wait
// (the leader's compute sees the leader's ctx).
func (s *Store) GetOrCompute(ctx context.Context, k key.Key, kind string, compute func(context.Context) (json.RawMessage, error)) (art *Artifact, hit bool, err error) {
	s.mu.Lock()
	if f, ok := s.flights[k.SHA]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err != nil {
			return nil, false, f.err
		}
		s.dedups.Add(1)
		return f.art, true, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[k.SHA] = f
	s.mu.Unlock()

	defer func() {
		f.art, f.err = art, err
		s.mu.Lock()
		delete(s.flights, k.SHA)
		s.mu.Unlock()
		close(f.done)
	}()

	// Leader: the disk check happens *inside* the flight, so a caller
	// racing past a concurrent leader's completion re-reads the disk
	// instead of recomputing.
	if art, err = s.Get(k); err != nil {
		return nil, false, err
	}
	if art != nil {
		s.hits.Add(1)
		return art, true, nil
	}
	s.misses.Add(1)
	result, cerr := compute(ctx)
	if cerr != nil {
		return nil, false, cerr
	}
	art = &Artifact{
		Schema:   ArtifactSchema,
		Key:      k.String(),
		Kind:     kind,
		Server:   s.identity.Meta,
		Instance: s.identity.Instance(),
		Result:   result,
	}
	if err = art.compactResult(); err != nil {
		return nil, false, err
	}
	if err = s.put(k, art); err != nil {
		return nil, false, err
	}
	return art, false, nil
}

// Counters snapshots the cache-traffic telemetry.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:        s.hits.Load(),
		Dedups:      s.dedups.Load(),
		Misses:      s.misses.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// Stats describes the on-disk footprint for /metrics.
type Stats struct {
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
}

// Size walks the objects tree. It reads the real filesystem directly
// (observability, not protocol state — the faultfs seam carries no
// directory listing).
func (s *Store) Size() (Stats, error) {
	var st Stats
	err := filepath.WalkDir(s.objectsDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		st.Objects++
		st.Bytes += info.Size()
		return nil
	})
	if errors.Is(err, fs.ErrNotExist) {
		err = nil
	}
	return st, err
}

// Root returns the store directory (for logs and /metrics).
func (s *Store) Root() string { return s.root }
