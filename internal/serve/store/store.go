// Package store is ppserve's persistent, content-addressed result
// store: one sealed JSON artifact per cache key, laid out
// objects/<sha[:2]>/<sha>.json under the store root, so a repeated
// query is an O(1) file lookup that survives daemon restarts.
//
// Durability and integrity follow the shard-queue conventions. Every
// artifact is published fsync-temp → atomic rename → dir-sync through
// the injectable faultfs seam, so readers never observe a torn
// document and a host crash leaves either nothing or the complete
// file. Every artifact carries an internal/canon content checksum
// verified on each read; a corrupted artifact (torn write that beat
// the rename discipline, bit rot, hand edit) is quarantined to
// corrupt/ with a .reason file and reported as a miss — recomputed,
// never served, never re-read in a loop. A key mismatch between file
// name and sealed content is corruption too: a renamed artifact must
// not answer someone else's query.
//
// Concurrent identical queries compute once: GetOrCompute runs a
// per-key singleflight. The first caller becomes the leader (it
// re-checks disk, then computes and publishes); every concurrent
// caller for the same key blocks on the leader's flight and shares
// its artifact or error. Errors are never persisted — a failed
// compute leaves no artifact, so the next request retries.
//
// The store is self-healing rather than fail-stop. All seam I/O runs
// under the faultfs bounded-retry policy (transient errno taxonomy,
// exponential backoff + jitter); when a publish still fails — disk
// full, persistent EIO — the store flips to a degraded, compute-only
// mode: results are served without persisting, reads keep answering
// warm hits, and a background probe re-tests writability on a backoff
// schedule until the store heals. Requests never fail because the
// cache underneath them is sick.
//
// Growth is bounded (Options.MaxBytes): every access is recorded in
// an append-only journal (journal.log, crash-tolerant — the tail is a
// recency hint, reconciled against the objects tree at Open and by
// GC) feeding strict-LRU eviction. Eviction never removes an artifact
// whose key has an open singleflight, nor the artifact whose own
// publish triggered the pass, so the footprint is bounded by MaxBytes
// plus the artifacts currently in flight. Footprint is an
// incrementally maintained counter: Size is O(1) in the store size.
package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/faultfs"
	"repro/internal/hostmeta"
	"repro/internal/serve/key"
)

// ArtifactSchema versions the stored artifact document.
const ArtifactSchema = 1

// Artifact is one sealed store entry: the query's result document
// plus the provenance of the daemon incarnation that computed it.
type Artifact struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	Kind   string `json:"kind"`
	// Server and Instance identify the computing daemon (hostmeta
	// identity; telemetry, not protocol state).
	Server   hostmeta.Meta   `json:"server"`
	Instance string          `json:"instance"`
	Result   json.RawMessage `json:"result"`
	Checksum string          `json:"checksum"`
}

func (a *Artifact) setChecksum(s string) { a.Checksum = s }

// compactResult normalizes the embedded result document to compact
// JSON: sealing indents the whole artifact (re-indenting the raw
// message), so without this a computed artifact and its re-read would
// differ byte-wise in Result — same content, different whitespace.
func (a *Artifact) compactResult() error {
	var buf bytes.Buffer
	if err := json.Compact(&buf, a.Result); err != nil {
		return fmt.Errorf("store: result is not valid JSON: %w", err)
	}
	a.Result = json.RawMessage(buf.Bytes())
	return nil
}

// seal marshals a with its content checksum stamped in, the repo-wide
// sealed-document convention (indented, trailing newline).
func seal(a *Artifact) ([]byte, error) {
	a.setChecksum("")
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	sum, err := canon.Checksum(data, "checksum")
	if err != nil {
		return nil, err
	}
	a.setChecksum(sum)
	data, err = json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Counters aggregates the store's cache-traffic and degradation
// telemetry; /metrics exposes a snapshot. Hits + Dedups over total
// lookups is the cache hit rate the serve-smoke drill asserts on.
type Counters struct {
	// Hits counts disk lookups answered by an existing artifact.
	Hits int64 `json:"hits"`
	// Dedups counts callers who shared a concurrent leader's compute
	// instead of running their own (singleflight followers).
	Dedups int64 `json:"dedups"`
	// Misses counts leader computes actually run.
	Misses int64 `json:"misses"`
	// Quarantined counts corrupt artifacts moved to corrupt/.
	Quarantined int64 `json:"quarantined"`
	// Evictions counts artifacts removed by the LRU size bound.
	Evictions int64 `json:"evictions"`
	// IORetries counts transient seam errors absorbed by backoff.
	IORetries int64 `json:"io_retries"`
	// PutFailures counts publishes that failed even after retries —
	// each one trips (or re-confirms) degraded mode.
	PutFailures int64 `json:"put_failures"`
	// PutSkipped counts computes served without persisting because the
	// store was degraded when they finished.
	PutSkipped int64 `json:"put_skipped"`
	// ReadErrors counts lookups whose read failed after retries and
	// were served by recomputing instead.
	ReadErrors int64 `json:"read_errors"`
	// Healed counts degraded→healthy transitions won by the probe.
	Healed int64 `json:"healed"`
}

// flight is one in-progress compute; followers block on done.
type flight struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// Options sizes one store.
type Options struct {
	// FS is the filesystem seam (nil = the real OS); chaos tests
	// inject fault schedules here.
	FS faultfs.FS
	// MaxBytes bounds the objects/ footprint; 0 = unbounded. When a
	// publish pushes the footprint past the bound, least-recently-
	// accessed artifacts are evicted (in-flight and just-published
	// artifacts excepted).
	MaxBytes int64
	// RetryAttempts and RetryBase shape the transient-I/O retry policy
	// (0 = the faultfs defaults: 5 attempts from 20ms).
	RetryAttempts int
	RetryBase     time.Duration
	// ProbeBase is the first self-heal probe delay after the store
	// degrades, doubling up to 30s (0 = 250ms).
	ProbeBase time.Duration
}

// Store is the content-addressed artifact store. Safe for concurrent
// use by any number of goroutines.
type Store struct {
	root     string
	fsys     faultfs.FS
	identity hostmeta.Process
	opts     Options

	mu      sync.Mutex
	flights map[string]*flight

	// lifecycle guards the object index, LRU order, footprint
	// counters and journal (lifecycle.go).
	lifecycle lifecycle

	// health owns the degraded flag and the self-heal probe
	// (health.go).
	health health

	hits        atomic.Int64
	dedups      atomic.Int64
	misses      atomic.Int64
	quarantined atomic.Int64
	evictions   atomic.Int64
	ioRetries   atomic.Int64
	putFailures atomic.Int64
	putSkipped  atomic.Int64
	readErrors  atomic.Int64
	retrySeq    atomic.Uint64
}

// Open prepares a store rooted at dir (created if missing): the
// objects tree is scanned once to rebuild the footprint counters and
// object index, and the access journal is replayed to restore LRU
// recency across restarts.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS()
	}
	s := &Store{
		root:     dir,
		fsys:     fsys,
		identity: hostmeta.CollectProcess(),
		opts:     opts,
		flights:  map[string]*flight{},
	}
	s.health.init(s)
	if err := s.retrier().Do(context.Background(), "mkdir objects/", func() error {
		return fsys.MkdirAll(s.objectsDir(), 0o755)
	}); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if err := s.lifecycle.init(s); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return s, nil
}

// retrier builds one per-operation bounded-retry policy over the
// store's seam, with a fresh jitter stream per call (Retrier is not
// concurrency-safe) and the absorbed-error counter wired in.
func (s *Store) retrier() *faultfs.Retrier {
	return &faultfs.Retrier{
		Attempts: s.opts.RetryAttempts,
		Base:     s.opts.RetryBase,
		Seed:     s.retrySeq.Add(0x9e3779b97f4a7c15),
		Count:    &s.ioRetries,
	}
}

func (s *Store) objectsDir() string { return filepath.Join(s.root, "objects") }

// ObjectPath is the artifact file of one key: two-hex fan-out
// directories keep any one directory from ballooning.
func (s *Store) ObjectPath(k key.Key) string {
	return filepath.Join(s.objectsDir(), k.SHA[:2], k.SHA+".json")
}

// Get looks k up on disk. A missing artifact is (nil, nil): absence
// is a normal cache state. A corrupt artifact is quarantined and
// likewise reported as a miss — the caller recomputes; it is never
// served. A read that still fails after the transient-retry budget is
// also a miss (counted in ReadErrors): a sick disk degrades the cache
// to recomputation, never the request to an error.
func (s *Store) Get(ctx context.Context, k key.Key) (*Artifact, error) {
	path := s.ObjectPath(k)
	var data []byte
	err := s.retrier().Do(ctx, "read "+k.Short(), func() error {
		var rerr error
		data, rerr = s.fsys.ReadFile(path)
		if rerr != nil && errors.Is(rerr, fs.ErrNotExist) {
			data = nil
			return nil
		}
		return rerr
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		s.readErrors.Add(1)
		log.Printf("store: read %s failed after retries, recomputing: %v", path, err)
		return nil, nil
	}
	if data == nil {
		return nil, nil
	}
	art, reason := decode(data, k)
	if art == nil {
		s.quarantine(path, reason, int64(len(data)))
		return nil, nil
	}
	s.lifecycle.noteGet(k.SHA, art.Kind, int64(len(data)))
	return art, nil
}

// decode parses and integrity-checks one artifact document; a nil
// artifact comes back with the quarantine reason.
func decode(data []byte, k key.Key) (*Artifact, string) {
	sum, err := canon.Checksum(data, "checksum")
	if err != nil {
		return nil, fmt.Sprintf("unparseable JSON: %v", err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Sprintf("not an artifact document: %v", err)
	}
	if a.Checksum == "" {
		return nil, "no content checksum"
	}
	if a.Checksum != sum {
		return nil, fmt.Sprintf("checksum %s, content is %s (torn write or bit rot)", a.Checksum, sum)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Sprintf("artifact schema %d, this build understands %d", a.Schema, ArtifactSchema)
	}
	if a.Key != k.String() {
		return nil, fmt.Sprintf("sealed key %s under address %s (misfiled artifact)", a.Key, k)
	}
	if err := a.compactResult(); err != nil {
		return nil, err.Error()
	}
	return &a, ""
}

// quarantine moves a corrupt artifact to <root>/corrupt/ with a
// .reason sibling, removing it from the cache namespace so it is
// recomputed instead of served and never re-read in a loop. Name
// collisions across repeated corruption get a numeric suffix.
func (s *Store) quarantine(path, reason string, size int64) {
	qdir := filepath.Join(s.root, "corrupt")
	if err := s.fsys.MkdirAll(qdir, 0o755); err != nil {
		log.Printf("store: quarantine mkdir: %v", err)
		return
	}
	base := filepath.Base(path)
	dst := filepath.Join(qdir, base)
	for i := 2; ; i++ {
		if _, err := s.fsys.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := s.fsys.Rename(path, dst); err != nil && !errors.Is(err, fs.ErrNotExist) {
		log.Printf("store: quarantine %s: %v", base, err)
		return
	}
	// The reason file is evidence, not protocol state: best effort.
	_ = s.fsys.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	s.quarantined.Add(1)
	s.lifecycle.noteRemoved(shaOfObjectFile(base), size, "quarantine")
	log.Printf("store: quarantined %s: %s", dst, reason)
}

// put seals and publishes one artifact durably (fsync-temp → rename →
// dir-sync through the seam), with transient failures of the whole
// sequence retried as one unit (a re-run of a sequence whose rename
// already landed is idempotent: same content, same target).
func (s *Store) put(ctx context.Context, k key.Key, a *Artifact) (int64, error) {
	path := s.ObjectPath(k)
	data, err := seal(a)
	if err != nil {
		return 0, err
	}
	err = s.retrier().Do(ctx, "put "+k.Short(), func() error {
		if merr := s.fsys.MkdirAll(filepath.Dir(path), 0o755); merr != nil {
			return merr
		}
		return faultfs.AtomicWrite(s.fsys, path, data)
	})
	if err != nil {
		return 0, fmt.Errorf("store: put %s: %w", k, err)
	}
	return int64(len(data)), nil
}

// GetOrCompute returns k's artifact, computing and persisting it
// exactly once per key across any number of concurrent callers: a
// disk hit is served as-is; otherwise the first caller computes while
// concurrent callers for the same key wait and share the outcome.
// hit reports whether this caller avoided a compute (disk hit or
// shared flight). A compute error is returned to every waiting
// caller and nothing is persisted; ctx cancels this caller's wait
// (the leader's compute sees the leader's ctx), freeing the follower
// immediately — the flight itself completes or dies with its leader.
//
// A publish failure is NOT a request failure: if the store is
// degraded (or this publish trips degradation), the computed artifact
// is served without persisting and the store heals in the background.
func (s *Store) GetOrCompute(ctx context.Context, k key.Key, kind string, compute func(context.Context) (json.RawMessage, error)) (art *Artifact, hit bool, err error) {
	s.mu.Lock()
	if f, ok := s.flights[k.SHA]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err != nil {
			return nil, false, f.err
		}
		s.dedups.Add(1)
		return f.art, true, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[k.SHA] = f
	s.mu.Unlock()

	defer func() {
		f.art, f.err = art, err
		s.mu.Lock()
		delete(s.flights, k.SHA)
		s.mu.Unlock()
		close(f.done)
	}()

	// Leader: the disk check happens *inside* the flight, so a caller
	// racing past a concurrent leader's completion re-reads the disk
	// instead of recomputing.
	if art, err = s.Get(ctx, k); err != nil {
		return nil, false, err
	}
	if art != nil {
		s.hits.Add(1)
		return art, true, nil
	}
	s.misses.Add(1)
	result, cerr := compute(ctx)
	if cerr != nil {
		return nil, false, cerr
	}
	art = &Artifact{
		Schema:   ArtifactSchema,
		Key:      k.String(),
		Kind:     kind,
		Server:   s.identity.Meta,
		Instance: s.identity.Instance(),
		Result:   result,
	}
	if err = art.compactResult(); err != nil {
		return nil, false, err
	}
	if s.Degraded() {
		// Compute-only mode: serve without persisting; the probe owns
		// re-testing the disk, the request path never hammers it.
		s.putSkipped.Add(1)
		return art, false, nil
	}
	size, perr := s.put(ctx, k, art)
	if perr != nil {
		if ctx.Err() != nil {
			// The client is gone or out of time; nothing to degrade over.
			return nil, false, ctx.Err()
		}
		s.putFailures.Add(1)
		s.health.degrade(fmt.Sprintf("publish failed: %v", perr))
		return art, false, nil
	}
	s.lifecycle.notePut(k.SHA, kind, size)
	return art, false, nil
}

// Counters snapshots the cache-traffic telemetry.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:        s.hits.Load(),
		Dedups:      s.dedups.Load(),
		Misses:      s.misses.Load(),
		Quarantined: s.quarantined.Load(),
		Evictions:   s.evictions.Load(),
		IORetries:   s.ioRetries.Load(),
		PutFailures: s.putFailures.Load(),
		PutSkipped:  s.putSkipped.Load(),
		ReadErrors:  s.readErrors.Load(),
		Healed:      s.health.healed.Load(),
	}
}

// Root returns the store directory (for logs and /metrics).
func (s *Store) Root() string { return s.root }
