package store

import (
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/serve/key"
)

// putOne computes-and-publishes one artifact and returns its key.
func putOne(t *testing.T, s *Store, x int64) key.Key {
	t.Helper()
	k := testKey(t, x)
	if _, _, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
		return result(x), nil
	}); err != nil {
		t.Fatal(err)
	}
	return k
}

// artifactSize measures one published artifact's on-disk size; the
// test keys here all seal to the same length (same field widths), so
// one measurement sizes them all.
func artifactSize(t *testing.T) int64 {
	t.Helper()
	s := openTest(t, nil)
	putOne(t, s, 20)
	stats, err := s.Size()
	if err != nil || stats.Objects != 1 {
		t.Fatalf("measuring artifact size: %+v err=%v", stats, err)
	}
	return stats.Bytes
}

// The LRU bound: with room for two artifacts, publishing a third
// evicts the least recently accessed — and a read refreshes recency,
// steering the next eviction elsewhere.
func TestEvictionIsLRUAndBounded(t *testing.T) {
	size := artifactSize(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 2 * size})
	if err != nil {
		t.Fatal(err)
	}
	ka := putOne(t, s, 21)
	kb := putOne(t, s, 22)
	kc := putOne(t, s, 23) // pushes past the bound: ka is LRU, goes

	if got, _ := s.Get(context.Background(), ka); got != nil {
		t.Fatal("LRU artifact survived the bound")
	}
	for _, k := range []key.Key{kb, kc} {
		if got, err := s.Get(context.Background(), k); err != nil || got == nil {
			t.Fatalf("recent artifact evicted: %s (err=%v)", k.Short(), err)
		}
	}
	if c := s.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	stats, _ := s.Size()
	if stats.Objects != 2 || stats.Bytes > 2*size {
		t.Fatalf("footprint %+v exceeds the bound %d", stats, 2*size)
	}

	// Touch kb, publish kd: kc is now the LRU victim, kb survives.
	if _, err := s.Get(context.Background(), kb); err != nil {
		t.Fatal(err)
	}
	kd := putOne(t, s, 24)
	if got, _ := s.Get(context.Background(), kc); got != nil {
		t.Fatal("LRU order ignored the refreshing read")
	}
	for _, k := range []key.Key{kb, kd} {
		if got, err := s.Get(context.Background(), k); err != nil || got == nil {
			t.Fatalf("wrong victim chosen; %s missing (err=%v)", k.Short(), err)
		}
	}
}

// Recency must survive a restart via the journal: an artifact read
// just before shutdown outlives an unread one published after it.
func TestJournalRecencySurvivesRestart(t *testing.T) {
	size := artifactSize(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 2 * size})
	if err != nil {
		t.Fatal(err)
	}
	ka := putOne(t, s, 31)
	kb := putOne(t, s, 32)
	// ka is now the most recently accessed, despite the older mtime.
	if _, err := s.Get(context.Background(), ka); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{MaxBytes: 2 * size})
	if err != nil {
		t.Fatal(err)
	}
	putOne(t, s2, 33)
	if got, _ := s2.Get(context.Background(), kb); got != nil {
		t.Fatal("restart forgot journal recency: mtime order won over access order")
	}
	if got, err := s2.Get(context.Background(), ka); err != nil || got == nil {
		t.Fatalf("recently read artifact evicted after restart (err=%v)", err)
	}
}

// In-flight keys are never evicted, under -race: a bound far too
// small for the working set must degrade to recomputes, never to a
// wrong answer or an error, and the footprint must collapse back to
// the bound once the store quiesces.
func TestInFlightNeverEvictedUnderPressure(t *testing.T) {
	s, err := Open(t.TempDir(), Options{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	const keys, per = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, keys*per)
	for ki := 0; ki < keys; ki++ {
		k := testKey(t, int64(40+ki))
		want := fmt.Sprintf(`{"x":%d}`, 40+ki)
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				art, _, err := s.GetOrCompute(context.Background(), k, key.KindSimulate, func(context.Context) (json.RawMessage, error) {
					time.Sleep(time.Millisecond)
					return result(int64(40 + ki)), nil
				})
				if err != nil {
					errs <- err
					return
				}
				if string(art.Result) != want {
					errs <- fmt.Errorf("key %d served %s", ki, art.Result)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c := s.Counters(); c.Evictions == 0 {
		t.Fatalf("1-byte bound evicted nothing: %+v", c)
	}
	// Quiesced: one final publish evicts everything but itself.
	putOne(t, s, 49)
	stats, _ := s.Size()
	if stats.Objects != 1 {
		t.Fatalf("quiesced footprint %+v, want exactly the last publish", stats)
	}
}

// Keys pages the whole inventory in key order with a stable cursor.
func TestKeysPagination(t *testing.T) {
	s := openTest(t, nil)
	want := map[string]bool{}
	for x := int64(50); x < 55; x++ {
		want["sha256:"+testKey(t, x).SHA] = true
	}
	for x := int64(50); x < 55; x++ {
		putOne(t, s, x)
	}
	var got []string
	after, pages := "", 0
	for {
		page, next := s.Keys(after, 2)
		pages++
		for _, ki := range page {
			got = append(got, ki.Key)
			if ki.Kind != key.KindSimulate || ki.Bytes == 0 || ki.LastAccess == "" {
				t.Fatalf("incomplete row %+v", ki)
			}
		}
		if next == "" {
			break
		}
		after = next
	}
	if len(got) != 5 || pages != 3 {
		t.Fatalf("paged %d keys in %d pages, want 5 in 3", len(got), pages)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("keys out of order: %s after %s", got[i], got[i-1])
		}
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %s", k)
		}
	}
}

// countingFS counts every seam operation, so a test can assert an
// API call performs no I/O at all.
type countingFS struct {
	faultfs.FS
	ops atomic.Int64
}

func (c *countingFS) ReadFile(name string) ([]byte, error) {
	c.ops.Add(1)
	return c.FS.ReadFile(name)
}
func (c *countingFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	c.ops.Add(1)
	return c.FS.WriteFile(name, data, perm)
}
func (c *countingFS) WriteFileSync(name string, data []byte, perm fs.FileMode) error {
	c.ops.Add(1)
	return c.FS.WriteFileSync(name, data, perm)
}
func (c *countingFS) Append(name string, data []byte, perm fs.FileMode) error {
	c.ops.Add(1)
	return c.FS.Append(name, data, perm)
}
func (c *countingFS) Rename(o, n string) error { c.ops.Add(1); return c.FS.Rename(o, n) }
func (c *countingFS) Remove(name string) error { c.ops.Add(1); return c.FS.Remove(name) }
func (c *countingFS) Stat(name string) (fs.FileInfo, error) {
	c.ops.Add(1)
	return c.FS.Stat(name)
}
func (c *countingFS) MkdirAll(name string, perm fs.FileMode) error {
	c.ops.Add(1)
	return c.FS.MkdirAll(name, perm)
}
func (c *countingFS) SyncDir(name string) error { c.ops.Add(1); return c.FS.SyncDir(name) }

// Size must be O(1): after any number of puts, reading the footprint
// performs zero filesystem operations — it is the incrementally
// maintained counter, not a tree walk. It must also agree with the
// walk it replaced.
func TestSizeIsO1AndAccurate(t *testing.T) {
	cfs := &countingFS{FS: faultfs.OS()}
	s, err := Open(t.TempDir(), Options{FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes int64
	for x := int64(60); x < 68; x++ {
		k := putOne(t, s, x)
		data, err := cfs.FS.ReadFile(s.ObjectPath(k))
		if err != nil {
			t.Fatal(err)
		}
		wantBytes += int64(len(data))
	}
	before := cfs.ops.Load()
	var stats Stats
	for i := 0; i < 100; i++ {
		stats, err = s.Size()
		if err != nil {
			t.Fatal(err)
		}
	}
	if ops := cfs.ops.Load() - before; ops != 0 {
		t.Fatalf("100 Size calls performed %d filesystem operations, want 0", ops)
	}
	if stats.Objects != 8 || stats.Bytes != wantBytes {
		t.Fatalf("counter drifted from disk: %+v, want 8 objects / %d bytes", stats, wantBytes)
	}
}
