package store

import (
	"bufio"
	"bytes"
	"container/list"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// lifecycle is the store's in-memory object index: which artifacts
// exist, how big they are, and in what recency order — the state
// behind O(1) Size, paginated Keys, and strict-LRU eviction. The
// objects tree is ground truth; the index is rebuilt from a directory
// scan at Open and kept current by put/get/evict/quarantine hooks.
//
// Recency survives restarts through journal.log, an append-only
// access log (one line per put or read hit, plus evict/quarantine
// tombstones). It is deliberately cheap: buffered appends, no fsync —
// a crash may truncate its tail, which costs at most some recency
// precision, never correctness. Open replays it over the scan; GC
// compacts it back to one line per live object.
type lifecycle struct {
	s *Store

	mu      sync.Mutex
	entries map[string]*list.Element // sha → element whose Value is *object
	lru     *list.List               // front = most recently accessed
	objects int
	bytes   int64
	seq     int64 // journal line ordinal, for stable sort of snapshots
}

// object is one indexed artifact.
type object struct {
	sha  string
	kind string // "" until first put/journal line names it
	size int64
	last int64 // unix seconds of last access (seam clock)
	seq  int64 // monotone access ordinal (finer than 1s timestamps)
}

// KeyInfo is one /v1/keys row.
type KeyInfo struct {
	Key        string `json:"key"` // sha256:<sha>
	Kind       string `json:"kind,omitempty"`
	Bytes      int64  `json:"bytes"`
	LastAccess string `json:"last_access"` // RFC3339, seam clock
}

// Stats is the store's footprint, maintained incrementally — reading
// it never walks the objects tree.
type Stats struct {
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
}

func (s *Store) journalPath() string { return filepath.Join(s.root, "journal.log") }

// init rebuilds the index: scan the objects tree for ground truth,
// then replay the journal for recency and kinds. The scan lists
// directories with the os package directly — the seam deliberately
// has no listing operation (fault schedules target I/O on artifact
// content, not enumeration), matching the old Size walk.
func (l *lifecycle) init(s *Store) error {
	l.s = s
	l.entries = map[string]*list.Element{}
	l.lru = list.New()

	type scanned struct {
		sha   string
		size  int64
		mtime int64
	}
	var found []scanned
	fanouts, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return err
	}
	for _, fan := range fanouts {
		if !fan.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.objectsDir(), fan.Name()))
		if err != nil {
			return err
		}
		for _, f := range files {
			sha := shaOfObjectFile(f.Name())
			if sha == "" {
				continue // stray temp file; GC sweeps those
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, scanned{sha, info.Size(), info.ModTime().Unix()})
		}
	}
	// Oldest first, so pushing to the front leaves the newest there.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, f := range found {
		l.seq++
		l.entries[f.sha] = l.lru.PushFront(&object{sha: f.sha, size: f.size, last: f.mtime, seq: l.seq})
		l.objects++
		l.bytes += f.size
	}
	l.replayJournal()
	return nil
}

// replayJournal walks journal.log in order, refreshing recency and
// kinds for objects the scan found. Unparseable lines (a crash-torn
// tail, hand edits) and lines for vanished objects are skipped: the
// journal is a hint, the tree is the truth.
func (l *lifecycle) replayJournal() {
	data, err := l.s.fsys.ReadFile(l.s.journalPath())
	if err != nil {
		return // missing or unreadable: cold recency, still correct
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		op, sha, kind, _, last, ok := parseJournalLine(sc.Text())
		if !ok {
			continue
		}
		el, live := l.entries[sha]
		if !live {
			continue
		}
		switch op {
		case "put", "get":
			o := el.Value.(*object)
			if kind != "" {
				o.kind = kind
			}
			if last > o.last {
				o.last = last
			}
			l.seq++
			o.seq = l.seq
			l.lru.MoveToFront(el)
		}
	}
}

// journal line format, one space-separated record per line:
//
//	put <sha> <kind> <size> <unix>
//	get <sha> - <size> <unix>
//	evict <sha> - <size> <unix>
//	quarantine <sha> - <size> <unix>
func journalLine(op, sha, kind string, size, last int64) []byte {
	if kind == "" {
		kind = "-"
	}
	return []byte(fmt.Sprintf("%s %s %s %d %d\n", op, sha, kind, size, last))
}

func parseJournalLine(line string) (op, sha, kind string, size, last int64, ok bool) {
	f := strings.Fields(line)
	if len(f) != 5 {
		return
	}
	op, sha, kind = f[0], f[1], f[2]
	if kind == "-" {
		kind = ""
	}
	var err1, err2 error
	size, err1 = strconv.ParseInt(f[3], 10, 64)
	last, err2 = strconv.ParseInt(f[4], 10, 64)
	ok = err1 == nil && err2 == nil && len(sha) == 64
	return
}

// appendJournal records one access, best effort: while the store is
// degraded the append is skipped outright (no point hammering a sick
// disk for a recency hint), and an append error is logged, not
// propagated — losing a journal line costs eviction precision only.
func (l *lifecycle) appendJournal(op, sha, kind string, size, last int64) {
	if l.s.health.isDegraded() {
		return
	}
	if err := l.s.fsys.Append(l.s.journalPath(), journalLine(op, sha, kind, size, last), 0o644); err != nil {
		log.Printf("store: journal append: %v", err)
	}
}

// noteGet refreshes recency after a disk hit (inserting the entry if
// the index somehow missed it — the tree is the truth).
func (l *lifecycle) noteGet(sha, kind string, size int64) {
	now := l.s.fsys.Now().Unix()
	l.mu.Lock()
	l.seq++
	if el, ok := l.entries[sha]; ok {
		o := el.Value.(*object)
		if kind != "" {
			o.kind = kind
		}
		o.last, o.seq = now, l.seq
		l.lru.MoveToFront(el)
	} else {
		l.entries[sha] = l.lru.PushFront(&object{sha: sha, kind: kind, size: size, last: now, seq: l.seq})
		l.objects++
		l.bytes += size
	}
	l.mu.Unlock()
	l.appendJournal("get", sha, kind, size, now)
}

// notePut indexes a fresh publish and then enforces the size bound.
func (l *lifecycle) notePut(sha, kind string, size int64) {
	now := l.s.fsys.Now().Unix()
	l.mu.Lock()
	l.seq++
	if el, ok := l.entries[sha]; ok {
		o := el.Value.(*object)
		l.bytes += size - o.size
		o.kind, o.size, o.last, o.seq = kind, size, now, l.seq
		l.lru.MoveToFront(el)
	} else {
		l.entries[sha] = l.lru.PushFront(&object{sha: sha, kind: kind, size: size, last: now, seq: l.seq})
		l.objects++
		l.bytes += size
	}
	victims := l.evictLocked(sha)
	l.mu.Unlock()
	l.appendJournal("put", sha, kind, size, now)
	l.removeVictims(victims, now)
}

// noteRemoved drops an externally removed object (quarantine, GC)
// from the index.
func (l *lifecycle) noteRemoved(sha string, size int64, op string) {
	if sha == "" {
		return
	}
	now := l.s.fsys.Now().Unix()
	l.mu.Lock()
	if el, ok := l.entries[sha]; ok {
		o := el.Value.(*object)
		l.bytes -= o.size
		l.objects--
		l.lru.Remove(el)
		delete(l.entries, sha)
	}
	l.mu.Unlock()
	l.appendJournal(op, sha, "", size, now)
}

// evictLocked picks least-recently-accessed victims until the
// footprint fits MaxBytes, skipping the artifact just published and
// every key with an open singleflight: a leader's artifact must still
// be on disk when its followers re-read, and evicting what you just
// wrote would turn a hot key into a recompute loop. If everything
// left is protected the pass stops — the bound is MaxBytes plus the
// in-flight working set, not a hard ceiling bought by breaking the
// cache contract. Victims leave the index here (under the lock);
// their files are removed by removeVictims outside it.
func (l *lifecycle) evictLocked(justPublished string) []*object {
	if l.s.opts.MaxBytes <= 0 || l.bytes <= l.s.opts.MaxBytes {
		return nil
	}
	l.s.mu.Lock()
	inFlight := make(map[string]bool, len(l.s.flights))
	for sha := range l.s.flights {
		inFlight[sha] = true
	}
	l.s.mu.Unlock()

	var victims []*object
	for el := l.lru.Back(); el != nil && l.bytes > l.s.opts.MaxBytes; {
		prev := el.Prev()
		o := el.Value.(*object)
		if o.sha != justPublished && !inFlight[o.sha] {
			victims = append(victims, o)
			l.bytes -= o.size
			l.objects--
			l.lru.Remove(el)
			delete(l.entries, o.sha)
		}
		el = prev
	}
	return victims
}

// removeVictims deletes evicted files, best effort with a single try:
// a removal that fails leaves an orphan on disk outside the index,
// which GC reconciles; retry loops here would stall the publish path.
func (l *lifecycle) removeVictims(victims []*object, now int64) {
	for _, o := range victims {
		path := filepath.Join(l.s.objectsDir(), o.sha[:2], o.sha+".json")
		if err := l.s.fsys.Remove(path); err != nil {
			log.Printf("store: evict %s: %v (gc will reconcile)", o.sha[:12], err)
		}
		l.s.evictions.Add(1)
		l.appendJournal("evict", o.sha, "", o.size, now)
	}
}

// Size returns the store footprint from the incrementally maintained
// counters — O(1), no tree walk, safe to scrape per request.
func (s *Store) Size() (Stats, error) {
	s.lifecycle.mu.Lock()
	defer s.lifecycle.mu.Unlock()
	return Stats{Objects: s.lifecycle.objects, Bytes: s.lifecycle.bytes}, nil
}

// Keys pages through the index in key order: up to limit entries with
// keys strictly after `after` (pass "" for the first page). next is
// the cursor for the following page, "" when exhausted.
func (s *Store) Keys(after string, limit int) (page []KeyInfo, next string) {
	if limit <= 0 {
		limit = 100
	}
	after = strings.TrimPrefix(after, "sha256:")
	l := &s.lifecycle
	l.mu.Lock()
	shas := make([]string, 0, len(l.entries))
	for sha := range l.entries {
		if sha > after {
			shas = append(shas, sha)
		}
	}
	sort.Strings(shas)
	if len(shas) > limit {
		shas, next = shas[:limit], "sha256:"+shas[limit-1]
	}
	for _, sha := range shas {
		o := l.entries[sha].Value.(*object)
		page = append(page, KeyInfo{
			Key:        "sha256:" + sha,
			Kind:       o.kind,
			Bytes:      o.size,
			LastAccess: unixRFC3339(o.last),
		})
	}
	l.mu.Unlock()
	return page, next
}

func unixRFC3339(u int64) string { return time.Unix(u, 0).UTC().Format(time.RFC3339) }

// shaOfObjectFile extracts the 64-hex sha from an artifact file name,
// or "" for anything else (temp files, strays).
func shaOfObjectFile(name string) string {
	sha, ok := strings.CutSuffix(name, ".json")
	if !ok || len(sha) != 64 {
		return ""
	}
	for _, c := range sha {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
	}
	return sha
}
