package serve

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// allowedPairs enumerates the table's legal ordered edges.
func allowedPairs() [][2]JobState {
	var out [][2]JobState
	for s := JobState(0); s < numJobStates; s++ {
		for d := JobState(0); d < numJobStates; d++ {
			if jobSMConf[s].allowed&(1<<uint(d)) != 0 {
				out = append(out, [2]JobState{s, d})
			}
		}
	}
	return out
}

// The table itself must be well-formed: exactly one initial state,
// terminal states with no outgoing edges, no self-loops (a lifecycle
// phase never re-enters itself), and every state reachable from the
// initial one.
func TestSMTableWellFormed(t *testing.T) {
	var initials []JobState
	for s := JobState(0); s < numJobStates; s++ {
		c := jobSMConf[s]
		if c.name == "" {
			t.Errorf("state %d has no name", s)
		}
		if c.flags&smInitial != 0 {
			initials = append(initials, s)
		}
		if c.flags&smFinal != 0 && c.allowed != 0 {
			t.Errorf("final state %s has outgoing edges", s)
		}
		if c.flags&smFinal == 0 && c.allowed == 0 {
			t.Errorf("non-final state %s is a dead end", s)
		}
		if c.allowed&(1<<uint(s)) != 0 {
			t.Errorf("state %s allows a self-loop", s)
		}
		if c.allowed>>uint(numJobStates) != 0 {
			t.Errorf("state %s allows a transition past numJobStates", s)
		}
	}
	if len(initials) != 1 || initials[0] != StateAdmitted {
		t.Fatalf("initial states = %v, want exactly [admitted]", initials)
	}
	reached := map[JobState]bool{StateAdmitted: true}
	frontier := []JobState{StateAdmitted}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for d := JobState(0); d < numJobStates; d++ {
			if jobSMConf[s].allowed&(1<<uint(d)) != 0 && !reached[d] {
				reached[d] = true
				frontier = append(frontier, d)
			}
		}
	}
	for s := JobState(0); s < numJobStates; s++ {
		if !reached[s] {
			t.Errorf("state %s unreachable from %s", s, StateAdmitted)
		}
	}
}

// legalPaths enumerates every path from the initial state to a final
// state (the table is a DAG — TestSMTableWellFormed rejects loops at
// length one, and the enumeration would not terminate on longer ones,
// so a cycle fails this test by construction via the depth bound).
func legalPaths(t *testing.T) [][]JobState {
	var out [][]JobState
	var walk func(path []JobState)
	walk = func(path []JobState) {
		if len(path) > int(numJobStates) {
			t.Fatalf("path longer than the state count — cycle in the table: %v", path)
		}
		s := path[len(path)-1]
		if jobSMConf[s].flags&smFinal != 0 {
			out = append(out, append([]JobState(nil), path...))
			return
		}
		for d := JobState(0); d < numJobStates; d++ {
			if jobSMConf[s].allowed&(1<<uint(d)) != 0 {
				walk(append(path, d))
			}
		}
	}
	walk([]JobState{StateAdmitted})
	return out
}

// Conformance, accepting half: every legal admitted→terminal path
// must execute transition by transition. The expected path set is
// written out long-hand so a table edit shows up as a diff here, not
// just as a silently changed walk.
func TestSMWalksEveryLegalPath(t *testing.T) {
	paths := legalPaths(t)
	var got []string
	for _, p := range paths {
		m, err := newSM(nil)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		names = append(names, m.State().String())
		for _, next := range p[1:] {
			if err := m.To(next); err != nil {
				t.Fatalf("legal path %v refused at %s: %v", p, next, err)
			}
			names = append(names, next.String())
		}
		if !m.Done() {
			t.Fatalf("path %v ended non-terminal", p)
		}
		got = append(got, strings.Join(names, "->"))
	}
	want := []string{
		"admitted->failed",
		"admitted->timed_out",
		"admitted->planned->cached",
		"admitted->planned->failed",
		"admitted->planned->timed_out",
		"admitted->planned->running->cached",
		"admitted->planned->running->failed",
		"admitted->planned->running->timed_out",
	}
	if len(got) != len(want) {
		t.Fatalf("walked %d paths %v, want %d", len(got), got, len(want))
	}
	seen := map[string]bool{}
	for _, g := range got {
		seen[g] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("expected lifecycle path %q not derivable from the table (got %v)", w, got)
		}
	}
}

// Conformance, rejecting half: every ordered pair outside the table —
// including to/from out-of-range states — must refuse, leaving the
// state unchanged.
func TestSMRejectsEveryIllegalEdge(t *testing.T) {
	legal := map[[2]JobState]bool{}
	for _, e := range allowedPairs() {
		legal[e] = true
	}
	checked := 0
	for s := JobState(0); s < numJobStates; s++ {
		for d := JobState(0); d < numJobStates; d++ {
			if legal[[2]JobState{s, d}] {
				continue
			}
			m := SM{state: s}
			if err := m.To(d); err == nil {
				t.Errorf("illegal transition %s -> %s accepted", s, d)
			}
			if m.State() != s {
				t.Errorf("refused transition %s -> %s still moved the state to %s", s, d, m.State())
			}
			checked++
		}
	}
	// 6 states = 36 ordered pairs, 10 legal edges: 26 illegal.
	if wantIllegal := int(numJobStates*numJobStates) - len(allowedPairs()); checked != wantIllegal {
		t.Fatalf("checked %d illegal edges, want %d", checked, wantIllegal)
	}
	m, _ := newSM(nil)
	if err := m.To(numJobStates + 3); err == nil {
		t.Error("transition to out-of-range state accepted")
	}
	if err := m.To(-1); err == nil {
		t.Error("transition to negative state accepted")
	}
}

// The invariant hook fires on every transition and can veto a
// table-legal edge; a veto leaves the state unchanged.
func TestSMInvariantVetoes(t *testing.T) {
	artifactMissing := errors.New("no artifact")
	m, err := newSM(func(s JobState) error {
		if s == StateCached {
			return artifactMissing
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.To(StatePlanned); err != nil {
		t.Fatal(err)
	}
	if err := m.To(StateCached); !errors.Is(err, artifactMissing) {
		t.Fatalf("invariant not consulted: %v", err)
	}
	if m.State() != StatePlanned {
		t.Fatalf("vetoed transition moved the state to %s", m.State())
	}
	if err := m.To(StateFailed); err != nil {
		t.Fatalf("veto wedged the SM: %v", err)
	}

	// An invariant that rejects the initial state prevents construction.
	if _, err := newSM(func(s JobState) error {
		return fmt.Errorf("nothing is ever admissible")
	}); err == nil {
		t.Fatal("newSM accepted an inadmissible initial state")
	}
}
