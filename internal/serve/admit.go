package serve

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/serve/key"
	"repro/internal/shard"
)

// admitter is ppserve's admission control: a token bucket sized in
// shard cost-model units. Each request estimates its cost before any
// work runs and must acquire that many tokens; requests over capacity
// are rejected outright (they could never run), requests over the
// currently available balance wait their turn or give up with their
// context. Tokens are returned when the request reaches a terminal
// state, so a burst of expensive queries queues instead of stampeding
// the samplers.
type admitter struct {
	capacity int64

	mu    sync.Mutex
	cond  *sync.Cond
	avail int64
	// rejected counts requests refused outright (cost > capacity).
	rejected int64
}

func newAdmitter(capacity int64) *admitter {
	if capacity <= 0 {
		capacity = defaultAdmitCapacity
	}
	a := &admitter{capacity: capacity, avail: capacity}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// defaultAdmitCapacity is roughly one maximal verify query (budget
// 1<<20 configurations) plus headroom for cheap traffic alongside it.
const defaultAdmitCapacity = 3 << 19

// acquire blocks until n tokens are available or ctx is done. A
// request costing more than the whole bucket is rejected immediately:
// it would starve forever otherwise.
func (a *admitter) acquire(ctx context.Context, n int64) error {
	if n <= 0 {
		n = 1
	}
	if n > a.capacity {
		a.mu.Lock()
		a.rejected++
		a.mu.Unlock()
		return fmt.Errorf("serve: query cost %d exceeds admission capacity %d; shrink trials, budget, or population", n, a.capacity)
	}
	// Waiters park on the cond; context cancellation has to wake them.
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		a.cond.Broadcast()
	})
	defer stop()
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.avail < n {
		if ctx.Err() != nil {
			return fmt.Errorf("serve: admission wait: %w", ctx.Err())
		}
		a.cond.Wait()
	}
	a.avail -= n
	return nil
}

// release returns n tokens and wakes waiters.
func (a *admitter) release(n int64) {
	if n <= 0 {
		n = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.avail += n
	if a.avail > a.capacity {
		a.avail = a.capacity
	}
	a.cond.Broadcast()
}

// snapshot returns (capacity, available, rejected) for /metrics.
func (a *admitter) snapshot() (int64, int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity, a.avail, a.rejected
}

// queryCost estimates a normalized query's token cost in shard
// cost-model units. Bounds queries are closed-form arithmetic: one
// token. Verify is bounded by its configuration budget. Simulation
// reuses the shard dispatcher's per-scheduler cost model over the
// population size, times trials.
func queryCost(q *key.Query) int64 {
	switch q.Kind {
	case key.KindBounds:
		return 1
	case key.KindVerify:
		return int64(q.Verify.Budget)
	case key.KindSimulate:
		p := q.Simulate
		model := shard.DefaultCost(p.Scheduler)
		per := model.TrialCost(p.X + p.Y)
		if per <= 0 {
			per = 1
		}
		trials := int64(p.Trials)
		if trials > 0 && per > math.MaxInt64/trials {
			return math.MaxInt64
		}
		return per * trials
	case key.KindSweep:
		p := q.Sweep
		model := shard.DefaultCost(p.Scheduler)
		trials := int64(p.Trials)
		total := int64(0)
		for _, x := range p.Sizes {
			per := model.TrialCost(x)
			if per <= 0 {
				per = 1
			}
			if trials > 0 && per > math.MaxInt64/trials {
				return math.MaxInt64
			}
			c := per * trials
			if total > math.MaxInt64-c {
				return math.MaxInt64
			}
			total += c
		}
		return total
	default:
		return 1
	}
}
