package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/serve/store"
)

// metrics aggregates daemon telemetry with lock-free counters on the
// request path; /metrics serializes a snapshot. Wall-clock values are
// telemetry for operators, never protocol state.
type metrics struct {
	requests atomic.Int64
	failures atomic.Int64
	inflight atomic.Int64
	// timeouts counts requests resolved by deadline expiry or client
	// disconnect (a subset of failures).
	timeouts atomic.Int64

	phaseCount [numPhases]atomic.Int64
	phaseNanos [numPhases]atomic.Int64
}

// observePhase records one finished lifecycle phase.
func (m *metrics) observePhase(phase int, d time.Duration) {
	m.phaseCount[phase].Add(1)
	m.phaseNanos[phase].Add(int64(d))
}

// PhaseStats is one phase's latency aggregate.
type PhaseStats struct {
	Count  int64 `json:"count"`
	MeanNs int64 `json:"mean_ns"`
}

// MetricsSnapshot is the /metrics response document.
type MetricsSnapshot struct {
	Instance string `json:"instance"`
	UptimeMs int64  `json:"uptime_ms"`

	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	Inflight int64 `json:"inflight"`
	Timeouts int64 `json:"timeouts"`

	Cache struct {
		store.Counters
		// HitRate is (hits+dedups) / lookups; the serve-smoke CI drill
		// asserts a replayed query file stays above 0.9 on pass two.
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`

	Admission struct {
		Capacity  int64 `json:"capacity"`
		Available int64 `json:"available"`
		Rejected  int64 `json:"rejected"`
	} `json:"admission"`

	Breaker struct {
		Open    int   `json:"open"`
		Tripped int64 `json:"tripped"`
		Refused int64 `json:"refused"`
	} `json:"breaker"`

	Store struct {
		Root string `json:"root"`
		// Degraded mirrors the store's compute-only flag; /readyz
		// carries the reason.
		Degraded bool `json:"degraded"`
		store.Stats
	} `json:"store"`

	Phases map[string]PhaseStats `json:"phases"`
	Jobs   map[string]int        `json:"jobs"`
}

// snapshot assembles the /metrics document from the daemon's parts.
// Scraping it is O(1) in the store size: the footprint comes from the
// store's incrementally maintained counters, never a tree walk.
func (m *metrics) snapshot(st *store.Store, adm *admitter, brk *breaker, jobs *jobTable, instance string, started time.Time) MetricsSnapshot {
	var out MetricsSnapshot
	out.Instance = instance
	out.UptimeMs = time.Since(started).Milliseconds()
	out.Requests = m.requests.Load()
	out.Failures = m.failures.Load()
	out.Inflight = m.inflight.Load()
	out.Timeouts = m.timeouts.Load()

	c := st.Counters()
	out.Cache.Counters = c
	if lookups := c.Hits + c.Dedups + c.Misses; lookups > 0 {
		out.Cache.HitRate = float64(c.Hits+c.Dedups) / float64(lookups)
	}

	out.Admission.Capacity, out.Admission.Available, out.Admission.Rejected = adm.snapshot()
	out.Breaker.Open, out.Breaker.Tripped, out.Breaker.Refused = brk.snapshot()

	out.Store.Root = st.Root()
	out.Store.Degraded = st.Degraded()
	if stats, err := st.Size(); err == nil {
		out.Store.Stats = stats
	}

	out.Phases = map[string]PhaseStats{}
	for i := 0; i < numPhases; i++ {
		n := m.phaseCount[i].Load()
		ps := PhaseStats{Count: n}
		if n > 0 {
			ps.MeanNs = m.phaseNanos[i].Load() / n
		}
		out.Phases[phaseNames[i]] = ps
	}
	out.Jobs = jobs.byState()
	return out
}
