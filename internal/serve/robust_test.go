package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// A request whose compute cannot finish inside its deadline resolves
// as 503 + Retry-After with the job in timed_out — a verify walk is
// cancellable at every closure level, so even a 1ns deadline is seen
// promptly rather than after the full walk.
func TestDeadlineTimesOutCompute(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 2, Deadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	rec, doc := post(t, h, "/v1/verify", `{"spec":{"protocol":"flock","param":2},"max_x":4,"budget":200000}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without a Retry-After hint")
	}
	if doc["error"] == nil {
		t.Fatalf("timeout response has no error member: %s", rec.Body.String())
	}
	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if m.Timeouts != 1 || m.Failures != 1 {
		t.Errorf("timeouts=%d failures=%d, want 1 and 1", m.Timeouts, m.Failures)
	}
	if m.Jobs["timed_out"] != 1 {
		t.Errorf("job states %v, want one timed_out", m.Jobs)
	}
	// The tokens came back: a cheap follow-up sails through.
	if rec, _ := post(t, h, "/v1/bounds", `{"op":"rackoff"}`); rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusOK {
		t.Fatalf("follow-up after timeout: %d %s", rec.Code, rec.Body.String())
	}
}

// A request that dies waiting for admission tokens is a timed_out job
// too (admitted → timed_out), with the same 503 + Retry-After shape.
func TestDeadlineTimesOutAdmissionWait(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 2, Deadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the bucket so even a one-token bounds query must wait.
	capacity, _, _ := s.admit.snapshot()
	if err := s.admit.acquire(context.Background(), capacity); err != nil {
		t.Fatal(err)
	}
	defer s.admit.release(capacity)

	h := s.Handler()
	rec, _ := post(t, h, "/v1/bounds", `{"op":"rackoff"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("starved request: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without a Retry-After hint")
	}
	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if m.Timeouts != 1 || m.Jobs["timed_out"] != 1 {
		t.Errorf("timeouts=%d jobs=%v, want a timed_out job", m.Timeouts, m.Jobs)
	}
}

// The per-key circuit breaker: a poison query (its verify budget can
// never cover the closure) fails threshold times, then is refused
// without recomputing; after the TTL one probe is let through, and its
// failure re-opens the circuit.
func TestBreakerOpensRefusesAndHalfOpens(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 2, BreakerThreshold: 3, BreakerTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	// Budget 2 cannot hold flock(2)'s closure for any input: ErrBudget
	// every time — the canonical poison query.
	poison := `{"spec":{"protocol":"flock","param":2},"max_x":4,"budget":2}`
	for i := 0; i < 3; i++ {
		rec, _ := post(t, h, "/v1/verify", poison)
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("failing compute %d: %d %s", i+1, rec.Code, rec.Body.String())
		}
	}
	rec, doc := post(t, h, "/v1/verify", poison)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("open circuit answered %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("refusal without a Retry-After hint")
	}
	if !strings.Contains(string(doc["error"]), "circuit is open") {
		t.Errorf("refusal reason: %s", doc["error"])
	}
	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if m.Breaker.Open != 1 || m.Breaker.Tripped != 1 || m.Breaker.Refused != 1 {
		t.Errorf("breaker snapshot %+v, want open=1 tripped=1 refused=1", m.Breaker)
	}
	// The refused request never reached the engines: still 3 misses.
	if m.Cache.Misses != 3 {
		t.Errorf("misses = %d after a refusal, want 3", m.Cache.Misses)
	}

	// Advance the breaker's clock past the TTL: the next request is the
	// half-open probe (it recomputes and fails → the circuit re-opens),
	// and the one after is refused again.
	s.breaker.now = func() time.Time { return time.Now().Add(31 * time.Second) }
	if rec, _ := post(t, h, "/v1/verify", poison); rec.Code != http.StatusInternalServerError {
		t.Fatalf("half-open probe not let through: %d %s", rec.Code, rec.Body.String())
	}
	if rec, _ := post(t, h, "/v1/verify", poison); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("re-opened circuit answered %d %s", rec.Code, rec.Body.String())
	}
	get(t, h, "/metrics", &m)
	if m.Breaker.Tripped != 2 {
		t.Errorf("tripped = %d after the failed probe, want 2", m.Breaker.Tripped)
	}
}

// Bodies over the limit are cut off with 413 before they can balloon
// memory, and still count as a failed request in /metrics.
func TestOversizedBodyRejected(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	huge := `{"op":"` + strings.Repeat("a", maxBodyBytes) + `"}`
	rec, doc := post(t, h, "/v1/bounds", huge)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", rec.Code)
	}
	if !strings.Contains(string(doc["error"]), "exceeds") {
		t.Errorf("413 reason: %s", doc["error"])
	}
	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if m.Requests != 1 || m.Failures != 1 {
		t.Errorf("requests=%d failures=%d, want 1 and 1", m.Requests, m.Failures)
	}
	// A maximal-but-legal body still parses (and fails validation, not
	// the size limit).
	ok := `{"op":"` + strings.Repeat("a", 100) + `"}`
	if rec, _ := post(t, h, "/v1/bounds", ok); rec.Code != http.StatusBadRequest {
		t.Errorf("legal-sized bad op: %d", rec.Code)
	}
}

// Degraded mode end to end through the HTTP surface: a dead disk under
// the store turns the daemon compute-only — requests still answer —
// and /healthz stays green while /readyz goes 503 until the self-heal
// probe wins, after which publishing resumes.
func TestReadyzTracksDegradationAndSelfHeal(t *testing.T) {
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpWrite, Nth: 1, Path: "objects", Err: syscall.ENOSPC},
	})
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 2, FS: faulty, StoreProbeBase: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := get(t, h, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("fresh daemon not ready: %d %s", rec.Code, rec.Body.String())
	}

	// The publish hits ENOSPC: the request is still served (compute-only
	// degradation is never a request error), but readiness flips.
	rec, _ := post(t, h, "/v1/bounds", `{"op":"rackoff"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("request failed because the disk was sick: %d %s", rec.Code, rec.Body.String())
	}
	var ready struct {
		Status string `json:"status"`
		Store  struct {
			Reason string `json:"reason"`
		} `json:"store"`
	}
	if rec := get(t, h, "/readyz", &ready); rec.Code != http.StatusServiceUnavailable || ready.Status != "degraded" {
		t.Fatalf("/readyz on a degraded store: %d %+v", rec.Code, ready)
	}
	if !strings.Contains(ready.Store.Reason, "no space") {
		t.Errorf("degradation reason lost: %+v", ready.Store)
	}
	if rec := get(t, h, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("degradation leaked into liveness: %d", rec.Code)
	}
	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if !m.Store.Degraded || m.Cache.PutFailures != 1 {
		t.Errorf("metrics during degradation: degraded=%v put_failures=%d", m.Store.Degraded, m.Cache.PutFailures)
	}

	// The fault was one-shot: the probe heals the store on its own.
	deadline := time.Now().Add(10 * time.Second)
	for s.Store().Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rec := get(t, h, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after heal: %d %s", rec.Code, rec.Body.String())
	}
	if c := s.Store().Counters(); c.Healed != 1 {
		t.Errorf("healed = %d, want 1", c.Healed)
	}
	// Persisting resumed: the same query recomputes once more (it was
	// never stored) and then hits from disk.
	if rec, _ := post(t, h, "/v1/bounds", `{"op":"rackoff"}`); rec.Header().Get("X-Cache") != "miss" {
		t.Fatal("degraded-era result was somehow persisted")
	}
	if rec, _ := post(t, h, "/v1/bounds", `{"op":"rackoff"}`); rec.Header().Get("X-Cache") != "hit" {
		t.Fatal("healed store still not persisting")
	}
}

// /v1/keys pages the store inventory with a cursor and validates its
// limit.
func TestKeysEndpoint(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	for _, op := range []string{"rackoff", "minstates", "section8"} {
		if rec, _ := post(t, h, "/v1/bounds", fmt.Sprintf(`{"op":%q}`, op)); rec.Code != http.StatusOK {
			t.Fatalf("seeding %s: %d", op, rec.Code)
		}
	}
	var page keysResponse
	if rec := get(t, h, "/v1/keys?limit=2", &page); rec.Code != http.StatusOK {
		t.Fatalf("/v1/keys: %d %s", rec.Code, rec.Body.String())
	}
	if len(page.Keys) != 2 || page.Next == "" {
		t.Fatalf("first page %+v, want 2 keys and a cursor", page)
	}
	var rest keysResponse
	get(t, h, "/v1/keys?limit=2&after="+page.Next, &rest)
	if len(rest.Keys) != 1 || rest.Next != "" {
		t.Fatalf("second page %+v, want the final key and no cursor", rest)
	}
	for _, ki := range append(page.Keys, rest.Keys...) {
		if !strings.HasPrefix(ki.Key, "sha256:") || ki.Kind != "bounds" || ki.Bytes == 0 {
			t.Errorf("incomplete inventory row %+v", ki)
		}
	}
	for _, bad := range []string{"0", "-3", "1001", "x"} {
		if rec := get(t, h, "/v1/keys?limit="+bad, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("limit=%s accepted: %d", bad, rec.Code)
		}
	}
}

// Cancelled admission waiters must not leak tokens or wedge the cond
// var: under a storm of acquires whose contexts die at random points,
// the bucket balance returns to capacity and a full-capacity acquire
// still goes through. Run with -race.
func TestAdmissionCancelledWaitersDoNotLeak(t *testing.T) {
	a := newAdmitter(4)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
			defer cancel()
			if err := a.acquire(ctx, 3); err == nil {
				time.Sleep(time.Millisecond)
				a.release(3)
			}
		}(i)
	}
	wg.Wait()
	capacity, avail, _ := a.snapshot()
	if avail != capacity {
		t.Fatalf("bucket leaked: %d of %d tokens after quiesce", avail, capacity)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.acquire(ctx, capacity); err != nil {
		t.Fatalf("bucket wedged after cancelled waiters: %v", err)
	}
	a.release(capacity)
}

// The serve-path chaos property: a seeded fault schedule under the
// store must never change an answer. Every response during the storm
// is either the byte-exact artifact a clean daemon computes or a clean
// typed error; once the schedule exhausts and the store heals, a warm
// replay serves every query as a disk hit.
func TestServePathChaos(t *testing.T) {
	queries := []struct{ path, body string }{
		{"/v1/bounds", `{"op":"rackoff"}`},
		{"/v1/bounds", `{"op":"minstates"}`},
		{"/v1/bounds", `{"op":"section8"}`},
		{"/v1/simulate", `{"spec":{"protocol":"flock","param":3},"x":5,"trials":2,"max_steps":30000,"seed":7}`},
		{"/v1/verify", `{"spec":{"protocol":"flock","param":2},"max_x":4,"budget":200000}`},
	}
	// Ground truth from a fault-free daemon.
	clean := testServer(t).Handler()
	want := make([]string, len(queries))
	for i, q := range queries {
		rec, doc := post(t, clean, q.path, q.body)
		if rec.Code != http.StatusOK {
			t.Fatalf("clean daemon rejected %s: %d %s", q.path, rec.Code, rec.Body.String())
		}
		want[i] = string(doc["result"])
	}

	for _, seed := range []int64{1, 7, 1984} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			faulty := faultfs.NewFaulty(faultfs.OS(), faultfs.RandomSchedule(seed, 24))
			s, err := New(Config{StoreDir: t.TempDir(), Workers: 2, FS: faulty, StoreProbeBase: 10 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			h := s.Handler()

			// The storm: concurrent clients replay the mix while the
			// schedule fires underneath them.
			var wg sync.WaitGroup
			errs := make(chan error, 4*3*len(queries))
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for pass := 0; pass < 3; pass++ {
						for i, q := range queries {
							req := httptest.NewRequest("POST", q.path, strings.NewReader(q.body))
							rec := httptest.NewRecorder()
							h.ServeHTTP(rec, req)
							var doc map[string]json.RawMessage
							if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
								errs <- fmt.Errorf("%s: non-JSON response under chaos: %q", q.path, rec.Body.String())
								continue
							}
							switch {
							case rec.Code == http.StatusOK:
								if string(doc["result"]) != want[i] {
									errs <- fmt.Errorf("%s: chaos changed the answer:\n got %s\nwant %s", q.path, doc["result"], want[i])
								}
							case rec.Code >= 500:
								if doc["error"] == nil {
									errs <- fmt.Errorf("%s: %d without a typed error: %s", q.path, rec.Code, rec.Body.String())
								}
							default:
								errs <- fmt.Errorf("%s: unexpected status %d under chaos: %s", q.path, rec.Code, rec.Body.String())
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if t.Failed() {
				t.Fatalf("fired faults:\n%s", strings.Join(faulty.Fired(), "\n"))
			}

			// Let the store heal if the storm degraded it.
			deadline := time.Now().Add(10 * time.Second)
			for s.Store().Degraded() {
				if time.Now().After(deadline) {
					t.Fatal("store never healed after the storm")
				}
				time.Sleep(10 * time.Millisecond)
			}
			// Settle: a late-scheduled fault may still tear one more
			// publish, so replay until a full pass is all warm hits —
			// the schedule is finite, so this converges fast.
			for pass := 1; ; pass++ {
				allHits := true
				for i, q := range queries {
					rec, doc := post(t, h, q.path, q.body)
					if rec.Code != http.StatusOK {
						t.Fatalf("post-chaos replay of %s: %d %s", q.path, rec.Code, rec.Body.String())
					}
					if string(doc["result"]) != want[i] {
						t.Fatalf("post-chaos replay of %s changed the answer:\n got %s\nwant %s", q.path, doc["result"], want[i])
					}
					if rec.Header().Get("X-Cache") != "hit" {
						allHits = false
					}
				}
				if allHits {
					break
				}
				if pass >= 20 {
					t.Fatalf("warm replay never reached 100%% hits; fired faults:\n%s", strings.Join(faulty.Fired(), "\n"))
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	}
}
