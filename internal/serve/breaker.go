package serve

import (
	"sync"
	"time"
)

// breaker is the daemon's per-key circuit breaker: a negative-result
// cache over compute outcomes. A query whose compute keeps failing or
// timing out — a poison query: parameters that blow the budget every
// time, an input tickling an engine bug — would otherwise re-burn a
// full compute (and its admission tokens) on every retry, because
// errors are deliberately never persisted in the store. After
// `threshold` consecutive failures the key's circuit opens for `ttl`:
// requests for it are refused immediately with 503 + Retry-After and
// the last failure's reason, costing nothing. When the TTL expires
// the circuit half-opens — exactly one request is let through as the
// probe; its success resets the key, one more failure re-opens the
// circuit for a fresh TTL.
//
// Client disconnects never count as failures: a gone client says
// nothing about the query.
type breaker struct {
	threshold int
	ttl       time.Duration
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerEntry
	// tripped counts circuits opened; refused counts requests turned
	// away by an open circuit (for /metrics).
	tripped int64
	refused int64
}

type breakerEntry struct {
	fails   int
	until   time.Time // open until; zero = closed (counting)
	lastErr string
}

func newBreaker(threshold int, ttl time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	return &breaker{threshold: threshold, ttl: ttl, now: time.Now, entries: map[string]*breakerEntry{}}
}

// check reports whether sha's circuit is open right now; when open,
// remaining is the time until the next half-open probe and lastErr
// the failure being cached. An expired circuit half-opens here: this
// caller proceeds as the probe, concurrent callers still see it open
// until the probe resolves.
func (b *breaker) check(sha string) (open bool, remaining time.Duration, lastErr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[sha]
	if !ok || e.until.IsZero() {
		return false, 0, ""
	}
	if rem := e.until.Sub(b.now()); rem > 0 {
		b.refused++
		return true, rem, e.lastErr
	}
	// Half-open: this request probes; one more failure re-opens.
	e.until = time.Time{}
	e.fails = b.threshold - 1
	return false, 0, ""
}

// failure records one compute failure for sha, opening the circuit at
// the threshold.
func (b *breaker) failure(sha string, errMsg string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[sha]
	if !ok {
		b.pruneLocked()
		e = &breakerEntry{}
		b.entries[sha] = e
	}
	e.fails++
	e.lastErr = errMsg
	if e.fails >= b.threshold && e.until.IsZero() {
		e.until = b.now().Add(b.ttl)
		b.tripped++
	}
}

// success clears sha's record entirely.
func (b *breaker) success(sha string) {
	b.mu.Lock()
	delete(b.entries, sha)
	b.mu.Unlock()
}

// pruneLocked drops expired open circuits and stale counting entries
// once the map is large, bounding memory under a churn of distinct
// failing keys.
func (b *breaker) pruneLocked() {
	if len(b.entries) < 1024 {
		return
	}
	now := b.now()
	for sha, e := range b.entries {
		if !e.until.IsZero() && now.After(e.until.Add(b.ttl)) {
			delete(b.entries, sha)
		}
	}
}

// snapshot returns (open circuits, tripped, refused) for /metrics.
func (b *breaker) snapshot() (open int, tripped, refused int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	for _, e := range b.entries {
		if !e.until.IsZero() && e.until.After(now) {
			open++
		}
	}
	return open, b.tripped, b.refused
}
