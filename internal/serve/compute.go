package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/petri"
	"repro/internal/registry"
	"repro/internal/serve/key"
	"repro/internal/sim"
	"repro/internal/verify"
)

// compute evaluates one normalized query to its result document — the
// json.RawMessage sealed into the store artifact. It runs only on a
// cache miss, inside the store's singleflight, with the daemon's
// worker budget; everything request-dependent is already pinned in
// the query (and hence in the cache key), so the same query computes
// the same document on any host.
func (s *Server) compute(ctx context.Context, q *key.Query) (json.RawMessage, error) {
	switch q.Kind {
	case key.KindSimulate:
		return s.computeSimulate(ctx, q)
	case key.KindVerify:
		return s.computeVerify(ctx, q)
	case key.KindBounds:
		return computeBounds(q.Bounds)
	default:
		return nil, fmt.Errorf("serve: no compute for kind %q", q.Kind)
	}
}

// SimulateResult is the /v1/simulate result document.
type SimulateResult struct {
	Predicate string    `json:"predicate"`
	Expected  bool      `json:"expected"`
	Stats     sim.Stats `json:"stats"`
	// MeanSteps and ConvergedRate summarize Stats for human readers;
	// they are derived, so recomputation cannot disagree with Stats.
	MeanSteps     float64 `json:"mean_steps"`
	ConvergedRate float64 `json:"converged_rate"`
	CorrectRate   float64 `json:"correct_rate"`
}

func (s *Server) computeSimulate(ctx context.Context, q *key.Query) (json.RawMessage, error) {
	sp := q.Simulate
	p, n, err := registry.Make(q.Spec.Protocol, q.Spec.Param)
	if err != nil {
		return nil, err
	}
	sched, err := sim.SchedulerByName(sp.Scheduler, sp.Batch, sp.Eps, s.workers)
	if err != nil {
		return nil, err
	}
	counts := map[string]int64{}
	initial := p.InitialStates()
	counts[initial[0]] = sp.X
	if len(initial) > 1 {
		counts[initial[1]] = sp.Y
	}
	input, err := p.Input(counts)
	if err != nil {
		return nil, err
	}
	var res SimulateResult
	if n > 0 {
		res.Predicate = fmt.Sprintf("%s >= %d", initial[0], n)
		res.Expected = sp.X >= n
	} else {
		res.Predicate = fmt.Sprintf("%s > %s", initial[0], initial[1])
		res.Expected = sp.X > sp.Y
	}
	stats, err := sim.RunMany(ctx, p, input, res.Expected, sp.Trials, sim.Options{
		Seed:           sp.Seed,
		MaxSteps:       sp.MaxSteps,
		StablePatience: sp.Patience,
		Scheduler:      sched,
		Workers:        s.workers,
	})
	if err != nil {
		return nil, err
	}
	res.Stats = *stats
	if stats.Trials > 0 {
		res.MeanSteps = float64(stats.SumSteps) / float64(stats.Trials)
		res.ConvergedRate = float64(stats.Converged) / float64(stats.Trials)
		res.CorrectRate = float64(stats.Correct) / float64(stats.Trials)
	}
	return json.Marshal(res)
}

// VerifyResult is the /v1/verify result document: the per-input
// reports collapsed to the verdict surface a client acts on.
type VerifyResult struct {
	Predicate  string `json:"predicate"`
	MaxX       int64  `json:"max_x"`
	Inputs     int    `json:"inputs"`
	OK         bool   `json:"ok"`
	Failures   []int  `json:"failures,omitempty"`
	MaxConfigs int    `json:"max_configs"`
}

func (s *Server) computeVerify(ctx context.Context, q *key.Query) (json.RawMessage, error) {
	p, n, err := registry.Make(q.Spec.Protocol, q.Spec.Param)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("serve: %s is not a counting protocol", q.Spec.Protocol)
	}
	state := p.InitialStates()[0]
	// The request's cancellation rides the budget into the closure
	// walk, so an expired deadline stops the BFS mid-level instead of
	// holding the admission tokens until the budget drains.
	rr, err := verify.Counting(p, state, n, q.Verify.MaxX, petri.Budget{
		MaxConfigs: q.Verify.Budget,
		Workers:    s.workers,
		Cancel:     ctx.Done(),
	})
	if err != nil {
		return nil, err
	}
	res := VerifyResult{
		Predicate:  fmt.Sprintf("%s >= %d", state, n),
		MaxX:       q.Verify.MaxX,
		Inputs:     len(rr.Reports),
		OK:         rr.OK(),
		Failures:   rr.Failures,
		MaxConfigs: rr.MaxConfigs,
	}
	return json.Marshal(res)
}

// BoundsRow is one row of a /v1/bounds result table.
type BoundsRow struct {
	K     int     `json:"k"`
	Value float64 `json:"value"`
}

// BoundsResult is the /v1/bounds result document. Scalar ops fill
// Value; table ops (thm43, cor44) fill Rows; section8 fills Cascade.
type BoundsResult struct {
	Op      string             `json:"op"`
	Value   float64            `json:"value,omitempty"`
	Rows    []BoundsRow        `json:"rows,omitempty"`
	Cascade map[string]float64 `json:"cascade,omitempty"`
	// Unit names what the numbers are (log10, states, ...), so the
	// document is self-describing.
	Unit string `json:"unit"`
}

// computeBounds mirrors the ppbounds subcommands over the same
// internal/bounds entry points, returning values instead of printed
// tables.
func computeBounds(bp *key.BoundsParams) (json.RawMessage, error) {
	res := BoundsResult{Op: bp.Op}
	switch bp.Op {
	case "thm43":
		res.Unit = "log10(max n) per d"
		for d := 1; d <= bp.D; d++ {
			m := bounds.Theorem43MaxN(d, bp.W, bp.L)
			res.Rows = append(res.Rows, BoundsRow{K: d, Value: m.Log10()})
		}
	case "minstates":
		res.Unit = "states"
		res.Value = float64(bounds.MinStatesTheorem43(bp.Log10N, bp.M))
	case "cor44":
		res.Unit = "state lower bound per k (n = 2^(2^k))"
		for k := 1; k <= bp.KMax; k++ {
			lb := bounds.Corollary44LowerBound(math.Pow(2, float64(k)), bp.H, bp.M)
			res.Rows = append(res.Rows, BoundsRow{K: k, Value: lb})
		}
	case "rackoff":
		res.Unit = "log10(covering word length)"
		res.Value = bounds.Rackoff(bp.D, bp.R, bp.T).Log10()
	case "section8":
		res.Unit = "log10 per cascade stage"
		s8, err := bounds.NewSection8(bp.D, bp.T, bp.L)
		if err != nil {
			return nil, err
		}
		res.Cascade = map[string]float64{
			"b": s8.B.Log10(),
			"h": s8.H.Log10(),
			"k": s8.K.Log10(),
			"a": s8.A.Log10(),
			"l": s8.L.Log10(),
			"n": s8.N.Log10(),
		}
	default:
		return nil, fmt.Errorf("serve: unknown bounds op %q", bp.Op)
	}
	return json.Marshal(res)
}
