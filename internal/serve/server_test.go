package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/serve/key"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("%s: non-JSON response %q", path, rec.Body.String())
	}
	return rec, doc
}

func get(t *testing.T, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: non-JSON response %q", path, rec.Body.String())
		}
	}
	return rec
}

// One query through each endpoint: first POST misses and computes,
// an equivalent POST (different spelling, same meaning) hits, and
// the result documents are byte-identical.
func TestEndpointsMissThenHit(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	cases := []struct{ path, first, equivalent string }{
		{
			"/v1/simulate",
			`{"spec":{"protocol":"flock","param":4},"x":6,"trials":2,"max_steps":30000,"seed":7}`,
			`{"seed":7,"trials":2,"max_steps":30000,"x":6,"scheduler":"weighted","spec":{"param":4,"protocol":"flock"}}`,
		},
		{
			"/v1/verify",
			`{"spec":{"protocol":"flock","param":2},"max_x":4,"budget":200000}`,
			`{"budget":200000,"max_x":4,"spec":{"protocol":"flock","param":2}}`,
		},
		{
			"/v1/bounds",
			`{"op":"rackoff"}`,
			`{"op":"rackoff","d":5,"t":1,"r":1}`,
		},
	}
	for _, c := range cases {
		rec, doc := post(t, h, c.path, c.first)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", c.path, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("X-Cache") != "miss" || string(doc["cache"]) != `"miss"` {
			t.Errorf("%s: cold request not a miss (%s)", c.path, doc["cache"])
		}
		rec2, doc2 := post(t, h, c.path, c.equivalent)
		if rec2.Code != http.StatusOK {
			t.Fatalf("%s equivalent: %d %s", c.path, rec2.Code, rec2.Body.String())
		}
		if rec2.Header().Get("X-Cache") != "hit" {
			t.Errorf("%s: equivalent spelling missed the cache", c.path)
		}
		if string(doc["key"]) != string(doc2["key"]) {
			t.Errorf("%s: equivalent spellings keyed apart: %s vs %s", c.path, doc["key"], doc2["key"])
		}
		if string(doc["result"]) != string(doc2["result"]) {
			t.Errorf("%s: hit served a different result", c.path)
		}
	}

	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if m.Requests != int64(2*len(cases)) {
		t.Errorf("requests = %d, want %d", m.Requests, 2*len(cases))
	}
	if m.Cache.Misses != int64(len(cases)) || m.Cache.Hits != int64(len(cases)) {
		t.Errorf("cache = %+v, want %d misses and %d hits", m.Cache.Counters, len(cases), len(cases))
	}
	if m.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", m.Cache.HitRate)
	}
	for _, phase := range []string{"admit", "plan", "run"} {
		if m.Phases[phase].Count == 0 {
			t.Errorf("phase %q never observed", phase)
		}
	}
	if m.Jobs["cached"] != 2*len(cases) {
		t.Errorf("cached jobs = %d, want %d", m.Jobs["cached"], 2*len(cases))
	}
}

// A served job is inspectable at /v1/jobs/{id} with its lifecycle
// record; unknown ids are 404.
func TestJobEndpoint(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec, doc := post(t, h, "/v1/bounds", `{"op":"minstates"}`)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	var id string
	if err := json.Unmarshal(doc["job"], &id); err != nil {
		t.Fatal(err)
	}
	var v JobView
	if rec := get(t, h, "/v1/jobs/"+id, &v); rec.Code != http.StatusOK {
		t.Fatalf("job lookup: %d", rec.Code)
	}
	if v.State != "cached" || v.Cache != "miss" || v.Kind != "bounds" || v.Key == "" {
		t.Errorf("job view %+v", v)
	}
	if v.Phases["admit"] == "" || v.Phases["plan"] == "" || v.Phases["run"] == "" {
		t.Errorf("job view lacks phase timings: %+v", v.Phases)
	}
	if rec := get(t, h, "/v1/jobs/j99999999", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", rec.Code)
	}
}

// Client errors never consume tokens or reach the engines: unknown
// members, malformed parameter combinations, and unknown protocols
// are all 400s, and a query costing more than the whole bucket is
// rejected with 429.
func TestRequestRejections(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	bad := []struct {
		path, body string
		code       int
	}{
		{"/v1/simulate", `{"spec":{"protocol":"flock","param":4},"x":6,"typo":1}`, http.StatusBadRequest},
		{"/v1/simulate", `{"spec":{"protocol":"nosuch","param":4},"x":6}`, http.StatusBadRequest},
		{"/v1/simulate", `{"spec":{"protocol":"flock","param":4},"x":6,"eps":0.1}`, http.StatusBadRequest},
		{"/v1/verify", `{"spec":{"protocol":"majority","param":0},"max_x":3}`, http.StatusBadRequest},
		{"/v1/bounds", `{"op":"nosuch"}`, http.StatusBadRequest},
		{"/v1/bounds", `{"op":"rackoff","kmax":3}`, http.StatusBadRequest},
		// Cost = trials × per-trial cost: astronomically over capacity.
		{"/v1/simulate", `{"spec":{"protocol":"flock","param":4},"x":1000000000,"trials":1000000}`, http.StatusTooManyRequests},
	}
	for _, c := range bad {
		rec, doc := post(t, h, c.path, c.body)
		if rec.Code != c.code {
			t.Errorf("%s %s: code %d, want %d (%s)", c.path, c.body, rec.Code, c.code, rec.Body.String())
		}
		if doc["error"] == nil {
			t.Errorf("%s %s: no error member in %s", c.path, c.body, rec.Body.String())
		}
	}
	var m MetricsSnapshot
	get(t, h, "/metrics", &m)
	if m.Failures != int64(len(bad)) {
		t.Errorf("failures = %d, want %d", m.Failures, len(bad))
	}
	if m.Admission.Rejected != 1 {
		t.Errorf("admission rejections = %d, want 1", m.Admission.Rejected)
	}
	if m.Admission.Available != m.Admission.Capacity {
		t.Errorf("rejected requests leaked tokens: %d of %d available", m.Admission.Available, m.Admission.Capacity)
	}
}

// Admission queues rather than stampedes: with a bucket sized for one
// query, concurrent identical-cost queries all complete (serially),
// and the bucket refills to capacity.
func TestAdmissionQueues(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 1, AdmitCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	var wg sync.WaitGroup
	codes := make([]int, 6)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/v1/bounds", strings.NewReader(`{"op":"minstates"}`))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d: %d", i, code)
		}
	}
	cap, avail, rejected := s.admit.snapshot()
	if avail != cap || rejected != 0 {
		t.Errorf("bucket after drain: avail=%d cap=%d rejected=%d", avail, cap, rejected)
	}
}

// A canceled admission wait returns with the context's error instead
// of parking forever.
func TestAdmissionWaitHonorsContext(t *testing.T) {
	a := newAdmitter(1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, 1) }()
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled wait acquired tokens")
	}
	a.release(1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("bucket wedged after canceled wait: %v", err)
	}
}

// The simulate result document is faithful: for flock(n) with x ≥ n
// the expected consensus is true and the sampler agrees.
func TestSimulateResultDocument(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec, doc := post(t, h, "/v1/simulate",
		`{"spec":{"protocol":"flock","param":3},"x":5,"trials":4,"seed":3,"max_steps":50000}`)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	var res SimulateResult
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if !res.Expected {
		t.Errorf("flock(3) with x=5: expected consensus should be true")
	}
	if res.Stats.Trials != 4 {
		t.Errorf("trials = %d, want 4", res.Stats.Trials)
	}
	if res.CorrectRate != 1 {
		t.Errorf("correct rate = %g, want 1 (stats %+v)", res.CorrectRate, res.Stats)
	}
}

// Verify results round through the daemon: flock(2) is a correct
// counting protocol over the checked range.
func TestVerifyResultDocument(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec, doc := post(t, h, "/v1/verify", `{"spec":{"protocol":"flock","param":2},"max_x":4,"budget":200000}`)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	var res VerifyResult
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Inputs == 0 {
		t.Errorf("verify result %+v", res)
	}
}

// queryCost scales with what the engines will actually do.
func TestQueryCost(t *testing.T) {
	mk := func(body string, kind string) *key.Query {
		t.Helper()
		q := &key.Query{Kind: kind}
		var err error
		switch kind {
		case key.KindSimulate:
			q.Spec = key.Spec{Protocol: "flock", Param: 4}
			q.Simulate = &key.SimulateParams{}
			err = json.Unmarshal([]byte(body), q.Simulate)
		case key.KindVerify:
			q.Spec = key.Spec{Protocol: "flock", Param: 4}
			q.Verify = &key.VerifyParams{}
			err = json.Unmarshal([]byte(body), q.Verify)
		case key.KindBounds:
			q.Bounds = &key.BoundsParams{}
			err = json.Unmarshal([]byte(body), q.Bounds)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Normalize(); err != nil {
			t.Fatal(err)
		}
		return q
	}
	if c := queryCost(mk(`{"op":"section8"}`, key.KindBounds)); c != 1 {
		t.Errorf("bounds cost = %d, want 1", c)
	}
	if c := queryCost(mk(`{"max_x":4,"budget":5000}`, key.KindVerify)); c != 5000 {
		t.Errorf("verify cost = %d, want its budget", c)
	}
	small := queryCost(mk(`{"x":10,"trials":1}`, key.KindSimulate))
	big := queryCost(mk(`{"x":10,"trials":8}`, key.KindSimulate))
	if big != 8*small {
		t.Errorf("simulate cost not linear in trials: %d vs %d", big, small)
	}
	huge := queryCost(mk(`{"x":4000000000,"trials":2000000000}`, key.KindSimulate))
	if huge <= 0 {
		t.Errorf("saturating cost went non-positive: %d", huge)
	}
}
