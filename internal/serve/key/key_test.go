package key

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func mustKey(t *testing.T, q *Query) Key {
	t.Helper()
	k, err := Of(q)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func simQuery() *Query {
	return &Query{
		Kind:     KindSimulate,
		Spec:     Spec{Protocol: "flock", Param: 4},
		Simulate: &SimulateParams{X: 8, Trials: 3, Seed: 7, MaxSteps: 200000, Patience: 1000, Scheduler: "weighted"},
	}
}

// Keying must be insensitive to spelled-out defaults: the same
// computation requested tersely and verbosely is one cache entry.
func TestDefaultsShareKeys(t *testing.T) {
	terse := &Query{
		Kind:     KindSimulate,
		Spec:     Spec{Protocol: "flock", Param: 4},
		Simulate: &SimulateParams{X: 8},
	}
	verbose := &Query{
		Kind:     KindSimulate,
		Spec:     Spec{Protocol: "flock", Param: 4},
		Simulate: &SimulateParams{X: 8, Trials: 1, Seed: 1, MaxSteps: 1 << 20, Scheduler: "weighted"},
	}
	if a, b := mustKey(t, terse), mustKey(t, verbose); a != b {
		t.Fatalf("defaulted and explicit queries split keys: %s vs %s", a, b)
	}

	tv := &Query{Kind: KindVerify, Spec: Spec{Protocol: "flock", Param: 4}, Verify: &VerifyParams{}}
	vv := &Query{Kind: KindVerify, Spec: Spec{Protocol: "flock", Param: 4}, Verify: &VerifyParams{MaxX: 7, Budget: 1 << 20}}
	if a, b := mustKey(t, tv), mustKey(t, vv); a != b {
		t.Fatalf("verify max_x default (n+3) split keys: %s vs %s", a, b)
	}

	tb := &Query{Kind: KindBounds, Bounds: &BoundsParams{Op: "thm43"}}
	vb := &Query{Kind: KindBounds, Bounds: &BoundsParams{Op: "thm43", D: 10, W: 2, L: 2}}
	if a, b := mustKey(t, tb), mustKey(t, vb); a != b {
		t.Fatalf("bounds defaults split keys: %s vs %s", a, b)
	}

	ts := &Query{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2, 4}}}
	vs := &Query{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4},
		Sweep: &SweepParams{Sizes: []int64{2, 4}, Trials: 10, Seed: 1, MaxSteps: 1 << 20, Scheduler: "weighted", Block: 3}}
	if a, b := mustKey(t, ts), mustKey(t, vs); a != b {
		t.Fatalf("sweep defaults split keys: %s vs %s", a, b)
	}
	// The stop-rule floor default is spelled out too: an enabled rule
	// with a defaulted floor keys like the explicit floor.
	tr := &Query{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2, 4}, CITarget: 0.05}}
	vr := &Query{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2, 4}, CITarget: 0.05, MinTrials: 8}}
	if a, b := mustKey(t, tr), mustKey(t, vr); a != b {
		t.Fatalf("stop-rule floor default split keys: %s vs %s", a, b)
	}
}

func sweepQuery() *Query {
	return &Query{
		Kind: KindSweep,
		Spec: Spec{Protocol: "flock", Param: 4},
		Sweep: &SweepParams{Sizes: []int64{2, 4, 8}, Trials: 8, Seed: 7, MaxSteps: 200000,
			Patience: 1000, Scheduler: "weighted", Block: 2},
	}
}

// Every semantically meaningful sweep field must move the key —
// including the trial block (it changes the stream and the stopping
// boundaries) and the stop rule.
func TestSweepFieldsSplitKeys(t *testing.T) {
	base := mustKey(t, sweepQuery())
	for name, mutate := range map[string]func(*Query){
		"sizes":     func(q *Query) { q.Sweep.Sizes = []int64{2, 4, 16} },
		"trials":    func(q *Query) { q.Sweep.Trials = 9 },
		"seed":      func(q *Query) { q.Sweep.Seed = 8 },
		"block":     func(q *Query) { q.Sweep.Block = 4 },
		"ci_target": func(q *Query) { q.Sweep.CITarget = 0.05 },
		"scheduler": func(q *Query) { q.Sweep.Scheduler = "countbatch" },
	} {
		q := sweepQuery()
		mutate(q)
		if k := mustKey(t, q); k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

// Every semantically meaningful field must move the key.
func TestFieldsSplitKeys(t *testing.T) {
	base := mustKey(t, simQuery())
	for name, mutate := range map[string]func(*Query){
		"param":     func(q *Query) { q.Spec.Param = 5 },
		"protocol":  func(q *Query) { q.Spec.Protocol = "power2" },
		"x":         func(q *Query) { q.Simulate.X = 9 },
		"seed":      func(q *Query) { q.Simulate.Seed = 8 },
		"trials":    func(q *Query) { q.Simulate.Trials = 4 },
		"max_steps": func(q *Query) { q.Simulate.MaxSteps = 100000 },
		"patience":  func(q *Query) { q.Simulate.Patience = 999 },
		"scheduler": func(q *Query) { q.Simulate.Scheduler = "countbatch" },
	} {
		q := simQuery()
		mutate(q)
		if k := mustKey(t, q); k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func TestNormalizeRejects(t *testing.T) {
	bad := []*Query{
		{Kind: "explode"},
		{Kind: KindSimulate, Spec: Spec{Protocol: "flock", Param: 4}},
		{Kind: KindSimulate, Spec: Spec{Protocol: "flock", Param: 4}, Simulate: &SimulateParams{X: 2}, Verify: &VerifyParams{}},
		{Kind: KindSimulate, Spec: Spec{Protocol: "nope", Param: 4}, Simulate: &SimulateParams{X: 2}},
		{Kind: KindSimulate, Spec: Spec{Protocol: "flock", Param: 4}, Simulate: &SimulateParams{X: -1}},
		{Kind: KindSimulate, Spec: Spec{Protocol: "flock", Param: 4}, Simulate: &SimulateParams{X: 2, Scheduler: "weighted", Batch: 9}},
		{Kind: KindSimulate, Spec: Spec{Protocol: "flock", Param: 4}, Simulate: &SimulateParams{X: 2, Scheduler: "batched", Eps: 0.1}},
		{Kind: KindVerify, Spec: Spec{Protocol: "majority", Param: 0}, Verify: &VerifyParams{}},
		{Kind: KindVerify, Spec: Spec{Protocol: "flock", Param: 4}, Verify: &VerifyParams{Budget: -1}},
		{Kind: KindBounds, Bounds: &BoundsParams{Op: "nope"}},
		{Kind: KindBounds, Bounds: &BoundsParams{Op: "thm43", KMax: 5}},
		{Kind: KindBounds, Spec: Spec{Protocol: "flock", Param: 4}, Bounds: &BoundsParams{Op: "thm43"}},
		{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}},
		{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{}},
		{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2, 2}}},
		{Kind: KindSweep, Spec: Spec{Protocol: "majority", Param: 0}, Sweep: &SweepParams{Sizes: []int64{2}}},
		{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2}, Block: -1}},
		{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2}, CITarget: 1.5}},
		{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2}, MinTrials: 4}},
		{Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4}, Sweep: &SweepParams{Sizes: []int64{2}}, Verify: &VerifyParams{}},
	}
	for i, q := range bad {
		if _, err := Of(q); err == nil {
			t.Errorf("query %d unexpectedly keyed: %+v", i, q)
		}
	}
}

// goldenEntry pins one query's derived key: the cache's on-disk
// addresses must never move under a refactor, or every stored result
// silently misses (cache split) — and a *colliding* change could serve
// stale results for new semantics (cache poisoning). If this test
// fails because the derivation changed on purpose, bump SchemaVersion
// and regenerate with -update.
type goldenEntry struct {
	Name  string          `json:"name"`
	Query json.RawMessage `json:"query"`
	SHA   string          `json:"sha"`
	CRC   string          `json:"crc"`
}

func TestKeyGolden(t *testing.T) {
	queries := map[string]*Query{
		"simulate-flock":     simQuery(),
		"simulate-cb-power2": {Kind: KindSimulate, Spec: Spec{Protocol: "power2", Param: 10}, Simulate: &SimulateParams{X: 1024, Scheduler: "countbatch"}},
		"verify-flock":       {Kind: KindVerify, Spec: Spec{Protocol: "flock", Param: 4}, Verify: &VerifyParams{MaxX: 9, Budget: 1 << 16}},
		"bounds-section8":    {Kind: KindBounds, Bounds: &BoundsParams{Op: "section8", D: 4, T: 2, L: 2}},
		"sweep-flock":        sweepQuery(),
		"sweep-ci-flock": {Kind: KindSweep, Spec: Spec{Protocol: "flock", Param: 4},
			Sweep: &SweepParams{Sizes: []int64{2, 4, 8, 16}, Trials: 48, Block: 4, CITarget: 0.05}},
	}
	golden := filepath.Join("testdata", "key.golden.json")
	if *update {
		var entries []goldenEntry
		for _, name := range []string{"simulate-flock", "simulate-cb-power2", "verify-flock", "bounds-section8", "sweep-flock", "sweep-ci-flock"} {
			q := queries[name]
			k := mustKey(t, q)
			raw, err := json.Marshal(q)
			if err != nil {
				t.Fatal(err)
			}
			entries = append(entries, goldenEntry{Name: name, Query: raw, SHA: k.SHA, CRC: k.CRC})
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(queries) {
		t.Fatalf("golden pins %d queries, test builds %d — regenerate with -update", len(entries), len(queries))
	}
	for _, e := range entries {
		q, ok := queries[e.Name]
		if !ok {
			t.Errorf("golden entry %q has no generating query", e.Name)
			continue
		}
		k := mustKey(t, q)
		if k.SHA != e.SHA || k.CRC != e.CRC {
			t.Errorf("%s: key drifted:\n  got  %s / %s\n  want %s / %s\n"+
				"a canonicalization change splits or poisons the cache; if intentional, bump key.SchemaVersion and -update",
				e.Name, k.SHA, k.CRC, e.SHA, e.CRC)
		}
		// The golden also pins the *parsed* form: a query round-tripped
		// through its stored JSON must key identically.
		var rq Query
		if err := json.Unmarshal(e.Query, &rq); err != nil {
			t.Fatal(err)
		}
		if rk := mustKey(t, &rq); rk != k {
			t.Errorf("%s: round-tripped query keys to %s, direct to %s", e.Name, rk, k)
		}
	}
}

// Normalization is idempotent: keying a query twice (the second time
// over its normalized self) cannot move the key.
func TestOfIdempotent(t *testing.T) {
	q := simQuery()
	k1 := mustKey(t, q)
	k2 := mustKey(t, q)
	if k1 != k2 {
		t.Fatalf("re-keying a normalized query moved the key: %s vs %s", k1, k2)
	}
}
