// Package key derives the content-addressed cache keys of the
// ppserve daemon: every query is reduced to a canonical form and
// hashed, so two requests that mean the same computation — whatever
// their JSON formatting, member order, or omitted-default spelling —
// land on the same key, and any semantic difference (protocol spec,
// parameters, seed, budget, or the key schema version itself) lands
// on a different one. Keys address the persistent result store, so a
// key collision would serve one query's result for another and a key
// split would silently recompute (or, worse, poison a restored cache):
// both directions are pinned by a golden-file test
// (testdata/key.golden.json) that fails on any canonicalization or
// schema drift.
//
// Derivation: the query is normalized (defaults filled in explicitly,
// parameters validated against the registry and scheduler tables),
// wrapped in an envelope carrying SchemaVersion, marshaled, and
// canonicalized by internal/canon (sorted keys, compact, number-exact).
// The canonical bytes are hashed twice: SHA-256 is the store address
// (collision-resistant against distinct queries), CRC-32C is the
// short display/correlation form used in job ids and logs. Bump
// SchemaVersion whenever the canonical form or the meaning of any
// field changes — old store entries then miss rather than mislead.
package key

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/canon"
	"repro/internal/registry"
	"repro/internal/sim"
)

// SchemaVersion versions the key derivation itself. It is hashed into
// every key, so bumping it invalidates the whole cache at once —
// which is the point: a schema change means old results may no longer
// answer new queries.
const SchemaVersion = 1

// Query kinds, one per serving endpoint.
const (
	KindSimulate = "simulate"
	KindVerify   = "verify"
	KindBounds   = "bounds"
	KindSweep    = "sweep"
)

// Spec names a protocol construction: a registry entry plus its
// parameter. It is the "protocol spec" component of every cache key.
type Spec struct {
	// Protocol is the registry name (example41, flock, power2, ...).
	Protocol string `json:"protocol"`
	// Param is the construction parameter (threshold n or level k).
	Param int64 `json:"param"`
}

// SimulateParams are the /v1/simulate parameters. Zero values are
// filled in by Normalize so the key always hashes the explicit form.
type SimulateParams struct {
	// X and Y are the initial counts of the first and second input
	// state (Y is meaningful for two-input protocols like majority).
	X int64 `json:"x"`
	Y int64 `json:"y,omitempty"`
	// Trials is the number of runs (default 1); per-trial seeds are
	// derived positionally from Seed.
	Trials int `json:"trials"`
	// Seed is the base PRNG seed (default 1).
	Seed int64 `json:"seed"`
	// MaxSteps caps interactions per run (default 1<<20).
	MaxSteps int `json:"max_steps"`
	// Patience is the consensus patience in steps; 0 runs to MaxSteps.
	Patience int `json:"patience"`
	// Scheduler is weighted, uniform, batched, countbatch or auto
	// (default weighted).
	Scheduler string `json:"scheduler"`
	// Batch is the batched/countbatch aggregation parameter (0 = the
	// scheduler's default).
	Batch int `json:"batch,omitempty"`
	// Eps is the countbatch/auto drift tolerance (0 = default).
	Eps float64 `json:"eps,omitempty"`
}

// VerifyParams are the /v1/verify parameters.
type VerifyParams struct {
	// MaxX bounds the verified inputs x ∈ [0, MaxX]; 0 means the
	// protocol's n+3 (resolved to its explicit value by Normalize).
	MaxX int64 `json:"max_x"`
	// Budget caps each input's closure size (default 1<<20). It also
	// drives admission control: closure memory is the resource the
	// daemon's token bucket guards.
	Budget int `json:"budget"`
}

// BoundsParams are the /v1/bounds parameters: one of the ppbounds
// subcommand evaluations. Fields mirror the CLI flags; only the
// fields of the selected Op are hashed (the rest must be zero).
type BoundsParams struct {
	// Op is thm43, minstates, cor44, rackoff or section8.
	Op string `json:"op"`
	// D is the state count (thm43: max; minstates/rackoff/section8: |P|).
	D int `json:"d,omitempty"`
	// W and L are interaction width and leader norms (thm43, section8).
	W int64 `json:"w,omitempty"`
	L int64 `json:"l,omitempty"`
	// T and R are ‖T‖∞ and ‖target‖∞ (rackoff, section8).
	T int64 `json:"t,omitempty"`
	R int64 `json:"r,omitempty"`
	// Log10N and M parameterize minstates; H and M cor44, with KMax rows.
	Log10N float64 `json:"log10n,omitempty"`
	H      float64 `json:"h,omitempty"`
	M      int64   `json:"m,omitempty"`
	KMax   int     `json:"kmax,omitempty"`
}

// SweepParams are the /v1/sweep parameters: a multi-size anytime
// sweep over the shard planner, streamed as NDJSON cell deltas and
// cached whole under the plan-content key.
type SweepParams struct {
	// Sizes are the population sizes swept (required, no duplicates —
	// they are the merge keys).
	Sizes []int64 `json:"sizes"`
	// Trials is the per-size trial ceiling (default 10); an enabled
	// stop rule may cancel the tail.
	Trials int `json:"trials"`
	// Seed is the sweep's base seed (default 1); per-(size, trial)
	// seeds derive positionally.
	Seed int64 `json:"seed"`
	// MaxSteps and Patience mirror SimulateParams.
	MaxSteps int `json:"max_steps"`
	Patience int `json:"patience"`
	// Scheduler/Batch/Eps mirror SimulateParams.
	Scheduler string  `json:"scheduler"`
	Batch     int     `json:"batch,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	// Block is the trial-axis dice: every streamed delta and every
	// stopping checkpoint covers Block trials (the last block ragged).
	// Default ⌈Trials/4⌉, so a sweep streams at least ~4 deltas per
	// size. Always explicit in the canonical form: the block size
	// changes the stream and the stopping boundaries, hence the key.
	Block int `json:"block"`
	// CITarget enables sequential stopping: a size stops once its 95%
	// CI half-width is ≤ CITarget × mean steps (after MinTrials).
	// 0 disables stopping and omits both fields from the key.
	CITarget  float64 `json:"ci_target,omitempty"`
	MinTrials int     `json:"min_trials,omitempty"`
}

// Query is one canonicalized request: a kind, a protocol spec (unused
// by bounds queries), and exactly the parameter block of its kind.
type Query struct {
	Kind     string          `json:"kind"`
	Spec     Spec            `json:"spec"`
	Simulate *SimulateParams `json:"simulate,omitempty"`
	Verify   *VerifyParams   `json:"verify,omitempty"`
	Bounds   *BoundsParams   `json:"bounds,omitempty"`
	Sweep    *SweepParams    `json:"sweep,omitempty"`
}

// envelope is the hashed document: the schema version rides inside,
// so a derivation change can never collide with an old key.
type envelope struct {
	Schema int   `json:"schema"`
	Query  Query `json:"query"`
}

// Normalize validates q and fills every defaulted field with its
// explicit value, so the canonical form is independent of which
// defaults the client spelled out. It is idempotent: normalizing a
// normalized query changes nothing, which is what keeps a re-posted
// cached response keying back to itself.
func (q *Query) Normalize() error {
	switch q.Kind {
	case KindSimulate:
		if q.Simulate == nil || q.Verify != nil || q.Bounds != nil || q.Sweep != nil {
			return fmt.Errorf("key: %s query must carry exactly the simulate parameter block", q.Kind)
		}
		if err := q.normalizeSpec(); err != nil {
			return err
		}
		p := q.Simulate
		if p.X < 0 || p.Y < 0 {
			return fmt.Errorf("key: negative input counts x=%d y=%d", p.X, p.Y)
		}
		if p.Trials == 0 {
			p.Trials = 1
		}
		if p.Trials < 0 {
			return fmt.Errorf("key: negative trials %d", p.Trials)
		}
		if p.Seed == 0 {
			p.Seed = 1
		}
		if p.MaxSteps == 0 {
			p.MaxSteps = 1 << 20
		}
		if p.MaxSteps < 0 || p.Patience < 0 {
			return fmt.Errorf("key: negative step budget (max_steps=%d patience=%d)", p.MaxSteps, p.Patience)
		}
		if p.Scheduler == "" {
			p.Scheduler = "weighted"
		}
		if p.Batch < 0 || p.Eps < 0 || p.Eps >= 1 {
			return fmt.Errorf("key: bad batch/eps (%d, %g)", p.Batch, p.Eps)
		}
		// Batch/eps only mean something under a batching scheduler;
		// under one, fill the scheduler defaults explicitly so "default
		// batch" and the spelled-out default share a key.
		switch p.Scheduler {
		case "batched":
			if p.Eps != 0 {
				return fmt.Errorf("key: eps only applies to countbatch or auto (got %q)", p.Scheduler)
			}
			if p.Batch == 0 {
				p.Batch = sim.DefaultBatch
			}
		case "countbatch", "auto":
			if p.Batch == 0 {
				p.Batch = sim.DefaultMinBatch
			}
			if p.Eps == 0 {
				p.Eps = sim.DefaultEpsilon
			}
		default:
			if p.Batch != 0 || p.Eps != 0 {
				return fmt.Errorf("key: batch/eps only apply to batched, countbatch or auto (got %q)", p.Scheduler)
			}
		}
		// The scheduler table owns name validation.
		if _, err := sim.SchedulerByName(p.Scheduler, p.Batch, p.Eps, 0); err != nil {
			return err
		}
	case KindVerify:
		if q.Verify == nil || q.Simulate != nil || q.Bounds != nil || q.Sweep != nil {
			return fmt.Errorf("key: %s query must carry exactly the verify parameter block", q.Kind)
		}
		if err := q.normalizeSpec(); err != nil {
			return err
		}
		_, n, err := registry.Make(q.Spec.Protocol, q.Spec.Param)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("key: %s does not decide a counting predicate; verify handles counting protocols", q.Spec.Protocol)
		}
		p := q.Verify
		if p.MaxX == 0 {
			p.MaxX = n + 3
		}
		if p.MaxX < 0 {
			return fmt.Errorf("key: negative max_x %d", p.MaxX)
		}
		if p.Budget == 0 {
			p.Budget = 1 << 20
		}
		if p.Budget < 0 {
			return fmt.Errorf("key: negative budget %d", p.Budget)
		}
	case KindBounds:
		if q.Bounds == nil || q.Simulate != nil || q.Verify != nil || q.Sweep != nil {
			return fmt.Errorf("key: %s query must carry exactly the bounds parameter block", q.Kind)
		}
		if q.Spec != (Spec{}) {
			return fmt.Errorf("key: bounds queries take no protocol spec (got %+v)", q.Spec)
		}
		return q.Bounds.normalize()
	case KindSweep:
		if q.Sweep == nil || q.Simulate != nil || q.Verify != nil || q.Bounds != nil {
			return fmt.Errorf("key: %s query must carry exactly the sweep parameter block", q.Kind)
		}
		if err := q.normalizeSpec(); err != nil {
			return err
		}
		// Sweeps score Correct against a counting threshold, like the
		// ppsweep pipeline: non-counting protocols have no per-size
		// expected value.
		_, n, err := registry.Make(q.Spec.Protocol, q.Spec.Param)
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf("key: %s decides no counting predicate; sweeps need a threshold", q.Spec.Protocol)
		}
		p := q.Sweep
		if len(p.Sizes) == 0 {
			return fmt.Errorf("key: sweep needs a non-empty size list")
		}
		seen := make(map[int64]bool, len(p.Sizes))
		for _, x := range p.Sizes {
			if x < 0 {
				return fmt.Errorf("key: negative sweep size %d", x)
			}
			if seen[x] {
				return fmt.Errorf("key: duplicate sweep size %d (sizes are merge keys)", x)
			}
			seen[x] = true
		}
		if p.Trials == 0 {
			p.Trials = 10
		}
		if p.Trials < 0 {
			return fmt.Errorf("key: negative trials %d", p.Trials)
		}
		if p.Seed == 0 {
			p.Seed = 1
		}
		if p.MaxSteps == 0 {
			p.MaxSteps = 1 << 20
		}
		if p.MaxSteps < 0 || p.Patience < 0 {
			return fmt.Errorf("key: negative step budget (max_steps=%d patience=%d)", p.MaxSteps, p.Patience)
		}
		if p.Scheduler == "" {
			p.Scheduler = "weighted"
		}
		if p.Batch < 0 || p.Eps < 0 || p.Eps >= 1 {
			return fmt.Errorf("key: bad batch/eps (%d, %g)", p.Batch, p.Eps)
		}
		switch p.Scheduler {
		case "batched":
			if p.Eps != 0 {
				return fmt.Errorf("key: eps only applies to countbatch or auto (got %q)", p.Scheduler)
			}
			if p.Batch == 0 {
				p.Batch = sim.DefaultBatch
			}
		case "countbatch", "auto":
			if p.Batch == 0 {
				p.Batch = sim.DefaultMinBatch
			}
			if p.Eps == 0 {
				p.Eps = sim.DefaultEpsilon
			}
		default:
			if p.Batch != 0 || p.Eps != 0 {
				return fmt.Errorf("key: batch/eps only apply to batched, countbatch or auto (got %q)", p.Scheduler)
			}
		}
		if _, err := sim.SchedulerByName(p.Scheduler, p.Batch, p.Eps, 0); err != nil {
			return err
		}
		if p.Block < 0 {
			return fmt.Errorf("key: negative trial block %d", p.Block)
		}
		if p.Block == 0 {
			// ≥ ~4 deltas per size by default; the dice is key material,
			// so the default is spelled out explicitly.
			p.Block = (p.Trials + 3) / 4
			if p.Block < 1 {
				p.Block = 1
			}
		}
		// Stop-rule normalization mirrors sim.StopRule.WithDefaults so a
		// defaulted floor and a spelled-out one share a key.
		rule := sim.StopRule{TargetRelCI: p.CITarget, MinTrials: p.MinTrials}
		if err := rule.Validate(); err != nil {
			return err
		}
		if rule.Enabled() {
			p.MinTrials = rule.WithDefaults().MinTrials
		}
	default:
		return fmt.Errorf("key: unknown query kind %q", q.Kind)
	}
	return nil
}

func (q *Query) normalizeSpec() error {
	if _, err := registry.Lookup(q.Spec.Protocol); err != nil {
		return err
	}
	return nil
}

// normalize fills the selected bounds op's defaults and rejects
// parameters that belong to a different op: a stray member would
// otherwise split the cache between equal evaluations.
func (p *BoundsParams) normalize() error {
	allowed := map[string][]string{
		"thm43":     {"d", "w", "l"},
		"minstates": {"log10n", "m"},
		"cor44":     {"kmax", "h", "m"},
		"rackoff":   {"d", "t", "r"},
		"section8":  {"d", "t", "l"},
	}
	fields, ok := allowed[p.Op]
	if !ok {
		return fmt.Errorf("key: unknown bounds op %q (have thm43, minstates, cor44, rackoff, section8)", p.Op)
	}
	// Defaults mirror the ppbounds flag defaults.
	defaults := BoundsParams{Op: p.Op}
	switch p.Op {
	case "thm43":
		defaults.D, defaults.W, defaults.L = 10, 2, 2
	case "minstates":
		defaults.Log10N, defaults.M = 9, 2
	case "cor44":
		defaults.KMax, defaults.H, defaults.M = 20, 0.49, 2
	case "rackoff":
		defaults.D, defaults.T, defaults.R = 5, 1, 1
	case "section8":
		defaults.D, defaults.T, defaults.L = 4, 2, 2
	}
	set := map[string]bool{}
	for _, f := range fields {
		set[f] = true
	}
	type field struct {
		name string
		val  any
		def  func()
	}
	for _, f := range []field{
		{"d", p.D, func() { p.D = defaults.D }},
		{"w", p.W, func() { p.W = defaults.W }},
		{"l", p.L, func() { p.L = defaults.L }},
		{"t", p.T, func() { p.T = defaults.T }},
		{"r", p.R, func() { p.R = defaults.R }},
		{"log10n", p.Log10N, func() { p.Log10N = defaults.Log10N }},
		{"h", p.H, func() { p.H = defaults.H }},
		{"m", p.M, func() { p.M = defaults.M }},
		{"kmax", p.KMax, func() { p.KMax = defaults.KMax }},
	} {
		zero := f.val == any(0) || f.val == any(int64(0)) || f.val == any(0.0)
		switch {
		case set[f.name] && zero:
			f.def()
		case !set[f.name] && !zero:
			return fmt.Errorf("key: bounds op %s does not take %q", p.Op, f.name)
		}
	}
	return nil
}

// Key is the content address of one normalized query: SHA-256 of the
// canonical envelope addresses the store; CRC-32C of the same bytes
// is the short correlation form in job ids, headers and logs.
type Key struct {
	// SHA is 64 hex digits of SHA-256 over the canonical envelope.
	SHA string
	// CRC is the short "crc32c:%08x" rendering of the same bytes.
	CRC string
}

// String renders the store-addressing form.
func (k Key) String() string { return "sha256:" + k.SHA }

// Short is the 8-hex correlation tag used in job ids.
func (k Key) Short() string { return k.CRC[len("crc32c:"):] }

// Of normalizes q in place and derives its key. The error cases are
// exactly Normalize's: a derivable key implies a valid query.
func Of(q *Query) (Key, error) {
	if err := q.Normalize(); err != nil {
		return Key{}, err
	}
	data, err := json.Marshal(envelope{Schema: SchemaVersion, Query: *q})
	if err != nil {
		return Key{}, err
	}
	canonical, err := canon.Canonicalize(data)
	if err != nil {
		return Key{}, err
	}
	sum := sha256.Sum256(canonical)
	return Key{
		SHA: hex.EncodeToString(sum[:]),
		CRC: canon.FormatChecksum(canon.CRC32C(canonical)),
	}, nil
}
