package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/hostmeta"
	"repro/internal/registry"
	"repro/internal/serve/key"
	"repro/internal/shard"
	"repro/internal/sim"
)

// sweepRequest is the POST /v1/sweep body: the protocol spec plus the
// sweep parameter block inlined, exactly the cache-key material.
type sweepRequest struct {
	Spec key.Spec `json:"spec"`
	key.SweepParams
}

// ndjsonWriter serializes the /v1/sweep stream: per-cell delta lines
// while the compute runs, then one terminal merged-document line. The
// header (status 200, Content-Type, X-Cache) is written lazily at the
// first line, so a request that fails before any delta still gets a
// proper JSON error status; once a line is out, the response is
// committed and a later failure can only truncate the stream (which
// the replay client detects by the missing terminal line). Writes are
// serialized: the compute closure emits deltas from sampler
// goroutines.
type ndjsonWriter struct {
	w     http.ResponseWriter
	cache string // X-Cache value, decided before the first write

	mu    sync.Mutex
	wrote bool
}

func (nw *ndjsonWriter) writeLine(line []byte) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if !nw.wrote {
		nw.w.Header().Set("Content-Type", "application/x-ndjson")
		nw.w.Header().Set("X-Cache", nw.cache)
		nw.w.WriteHeader(http.StatusOK)
		nw.wrote = true
	}
	if _, err := nw.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if f, ok := nw.w.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

func (nw *ndjsonWriter) committed() bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.wrote
}

// runSweep drives one anytime sweep query: the same lifecycle as run()
// — normalize → admit → plan → breaker → store singleflight — but the
// response is an NDJSON stream. When this request leads a cache-miss
// compute, every finished cell is streamed as a sealed delta line the
// moment it lands; a warm hit (or a follower collapsed into a leader's
// flight) skips straight to the terminal line. The terminal line is
// byte-identical to the stored artifact's result document, so a client
// folding deltas can cross-check against it and a replayed query gets
// exactly the bytes the stream promised.
func (s *Server) runSweep(w http.ResponseWriter, r *http.Request, q *key.Query) {
	s.metrics.requests.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	if err := q.Normalize(); err != nil {
		s.metrics.failures.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cost := queryCost(q)
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(cost))
	defer cancel()

	j, err := s.jobs.create(q.Kind, time.Now())
	if err != nil {
		s.metrics.failures.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	nw := &ndjsonWriter{w: w, cache: "miss"}

	fail := func(status int, err error) {
		s.metrics.failures.Add(1)
		j.mu.Lock()
		j.errMsg = err.Error()
		smErr := j.sm.To(StateFailed)
		j.mu.Unlock()
		if smErr != nil {
			err = errors.Join(err, smErr)
			status = http.StatusInternalServerError
		}
		if !nw.committed() {
			writeError(w, status, err)
		}
	}
	timeout := func(cause error) {
		s.metrics.failures.Add(1)
		s.metrics.timeouts.Add(1)
		j.mu.Lock()
		j.errMsg = cause.Error()
		smErr := j.sm.To(StateTimedOut)
		j.mu.Unlock()
		if nw.committed() {
			return // mid-stream: the truncated stream is the signal
		}
		if smErr != nil {
			writeError(w, http.StatusInternalServerError, errors.Join(cause, smErr))
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusServiceUnavailable, cause)
	}

	tAdmit := time.Now()
	if err := s.admit.acquire(ctx, cost); err != nil {
		if ctx.Err() != nil {
			timeout(fmt.Errorf("serve: admission wait exceeded the request deadline: %w", err))
			return
		}
		s.metrics.failures.Add(1)
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	defer s.admit.release(cost)
	admitDur := time.Since(tAdmit)
	s.metrics.observePhase(phaseAdmit, admitDur)
	j.mu.Lock()
	j.phases[phaseAdmit] = admitDur
	j.mu.Unlock()

	tPlan := time.Now()
	k, err := key.Of(q)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	j.mu.Lock()
	j.key, j.hasKey = k, true
	smErr := j.sm.To(StatePlanned)
	j.phases[phasePlan] = time.Since(tPlan)
	j.mu.Unlock()
	if smErr != nil {
		fail(http.StatusInternalServerError, smErr)
		return
	}
	s.metrics.observePhase(phasePlan, j.phases[phasePlan])

	if open, remaining, lastErr := s.breaker.check(k.SHA); open {
		j.mu.Lock()
		j.errMsg = "circuit open: " + lastErr
		smErr := j.sm.To(StateFailed)
		j.mu.Unlock()
		s.metrics.failures.Add(1)
		if smErr != nil {
			writeError(w, http.StatusInternalServerError, smErr)
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(remaining/time.Second)+1))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: this query keeps failing and its circuit is open for %s: %s", remaining.Round(time.Millisecond), lastErr))
		return
	}

	tRun := time.Now()
	art, hit, err := s.store.GetOrCompute(ctx, k, q.Kind, func(ctx context.Context) (json.RawMessage, error) {
		// Leader of a cache-miss flight: this request streams every
		// delta. Followers and warm hits never enter here and get only
		// the terminal line.
		if err := j.to(StateRunning); err != nil {
			return nil, err
		}
		return s.computeSweep(ctx, q, func(ca *shard.CellArtifact) error {
			line, err := shard.SealCellLine(ca)
			if err != nil {
				return err
			}
			return nw.writeLine(line)
		})
	})
	runDur := time.Since(tRun)
	s.metrics.observePhase(phaseRun, runDur)
	if err != nil {
		if ctx.Err() != nil {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.breaker.failure(k.SHA, "deadline exceeded: "+err.Error())
			}
			timeout(fmt.Errorf("serve: compute exceeded the request deadline: %w", err))
			return
		}
		s.breaker.failure(k.SHA, err.Error())
		fail(http.StatusInternalServerError, err)
		return
	}
	s.breaker.success(k.SHA)
	j.mu.Lock()
	j.phases[phaseRun] = runDur
	j.artifact, j.hit = art, hit
	smErr = j.sm.To(StateCached)
	j.mu.Unlock()
	if smErr != nil {
		fail(http.StatusInternalServerError, smErr)
		return
	}

	if hit {
		nw.cache = "hit"
	}
	// Terminal line: the stored artifact's result document, verbatim.
	_ = nw.writeLine(art.Result)
}

// computeSweep executes one normalized sweep query cell by cell: the
// query is planned through shard.PlanCostBlock (one shard — the
// daemon is a single process; parallelism lives inside the samplers),
// each finished cell is handed to emit, and the computed cells are
// folded by shard.MergePartial under the query's stop rule into the
// result document. Planning through internal/shard is what makes the
// daemon's documents byte-compatible with the ppsweep pipeline's: the
// same spec, block and rule produce the same cells, the same stopping
// boundary, and the same merged bytes.
func (s *Server) computeSweep(ctx context.Context, q *key.Query, emit func(*shard.CellArtifact) error) (json.RawMessage, error) {
	sw, rule, err := sweepSpecOf(q)
	if err != nil {
		return nil, err
	}
	m, err := shard.PlanCostBlock(sw, 1, shard.DefaultCost(sw.Scheduler), q.Sweep.Block)
	if err != nil {
		return nil, err
	}
	p, n, err := sw.Build()
	if err != nil {
		return nil, err
	}
	opts, err := sw.Options(s.workers)
	if err != nil {
		return nil, err
	}
	expected := func(x int64) bool { return x >= n }
	host := hostmeta.Collect()

	var points []shard.PartialPoint
	prefix := make(map[int64]*sim.Stats, len(sw.Sizes))
	stopped := make(map[int64]bool, len(sw.Sizes))
	norm := rule.WithDefaults()
	for _, c := range m.Shards[0].Cells {
		// Single-shard plans walk size-major in trial order, so the
		// running per-size prefix is exactly the stopping fold.
		if stopped[c.X] {
			continue
		}
		pts, err := sim.SweepRange(ctx, p, sw.InputState, []int64{c.X}, expected, c.TrialLo, c.TrialHi, opts)
		if err != nil {
			return nil, fmt.Errorf("serve: sweep cell x=%d trials [%d,%d): %w", c.X, c.TrialLo, c.TrialHi, err)
		}
		st := pts[0].Stats
		points = append(points, shard.PartialPoint{X: c.X, TrialLo: c.TrialLo, TrialHi: c.TrialHi, Stats: st})
		if emit != nil {
			if err := emit(&shard.CellArtifact{
				Schema: shard.ArtifactSchema, Sweep: sw, Cell: c, Stats: st, Host: host,
			}); err != nil {
				return nil, err
			}
		}
		if norm.Enabled() {
			acc := prefix[c.X]
			if acc == nil {
				acc = &sim.Stats{}
				prefix[c.X] = acc
			}
			acc.Merge(st)
			if norm.Satisfied(acc) {
				stopped[c.X] = true
			}
		}
	}
	merged, err := shard.MergePartial(sw, points, rule)
	if err != nil {
		return nil, err
	}
	return json.Marshal(merged)
}

// sweepSpecOf translates a normalized sweep query into the shard
// pipeline's spec and stop rule.
func sweepSpecOf(q *key.Query) (shard.SweepSpec, sim.StopRule, error) {
	p := q.Sweep
	proto, _, err := registry.Make(q.Spec.Protocol, q.Spec.Param)
	if err != nil {
		return shard.SweepSpec{}, sim.StopRule{}, err
	}
	sw := shard.SweepSpec{
		Protocol:   q.Spec.Protocol,
		Param:      q.Spec.Param,
		InputState: proto.InitialStates()[0],
		Sizes:      p.Sizes,
		Trials:     p.Trials,
		Seed:       p.Seed,
		MaxSteps:   p.MaxSteps,
		Patience:   p.Patience,
	}
	// The spec's scheduler fields follow ppsweep's omit-the-default
	// convention so daemon and CLI sweeps of one workload share
	// artifact bytes.
	if p.Scheduler != "weighted" {
		sw.Scheduler = p.Scheduler
		sw.Batch = p.Batch
		sw.Epsilon = p.Eps
	}
	rule := sim.StopRule{TargetRelCI: p.CITarget, MinTrials: p.MinTrials}
	if !rule.Enabled() {
		rule = sim.StopRule{}
	}
	return sw, rule, nil
}
