// Package serve is the ppserve daemon: a long-lived HTTP/JSON front
// end over the repo's simulation, verification, and bounds engines
// with a persistent content-addressed result cache.
//
// Every request is reduced to a canonical query (internal/serve/key):
// defaults are filled explicitly, parameters validated, and the
// canonical bytes hashed, so any two requests that mean the same
// computation share one cache key and one stored artifact — the
// daemon's answer to a repeated query is a file read, not a
// recomputation, across restarts. Results live in the
// content-addressed store (internal/serve/store), published through
// the faultfs fsync-temp→rename seam and checksum-verified on read;
// a corrupt artifact is quarantined and recomputed, never served.
// Concurrent identical queries collapse into one compute via the
// store's singleflight.
//
// Each request walks the lifecycle state machine in sm.go —
// admitted → planned → running → cached/failed — with every
// transition checked against the allowed-transition table and the
// job's invariant (a cached job holds its artifact, a failed job its
// reason); the conformance test pins every legal path and every
// illegal edge. Admission control is a token bucket denominated in
// shard cost-model units: a query's estimated cost (trials × per-trial
// cost, or the verify closure budget) must fit the bucket before any
// engine work starts, so expensive bursts queue instead of
// stampeding the samplers. /metrics exposes the cache hit rate,
// per-phase latencies, admission balance, and store footprint.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/faultfs"
	"repro/internal/hostmeta"
	"repro/internal/serve/key"
	"repro/internal/serve/store"
)

// Config sizes one daemon.
type Config struct {
	// StoreDir roots the content-addressed result store.
	StoreDir string
	// Workers bounds each compute's worker pool (0 = GOMAXPROCS).
	Workers int
	// AdmitCapacity sizes the admission token bucket in shard
	// cost-model units (0 = the default capacity).
	AdmitCapacity int64
	// JobWindow bounds the /v1/jobs record table (0 = 4096).
	JobWindow int
	// FS is the filesystem seam for the store (nil = the real OS);
	// tests inject faults here.
	FS faultfs.FS
}

// Server is one ppserve daemon instance.
type Server struct {
	store    *store.Store
	admit    *admitter
	metrics  metrics
	jobs     *jobTable
	identity hostmeta.Process
	workers  int
	started  time.Time
}

// New opens the store and assembles a daemon.
func New(cfg Config) (*Server, error) {
	st, err := store.Open(cfg.StoreDir, cfg.FS)
	if err != nil {
		return nil, err
	}
	return &Server{
		store:    st,
		admit:    newAdmitter(cfg.AdmitCapacity),
		jobs:     newJobTable(cfg.JobWindow),
		identity: hostmeta.CollectProcess(),
		workers:  cfg.Workers,
		started:  time.Now(),
	}, nil
}

// Store exposes the result store (for the replay client and tests).
func (s *Server) Store() *store.Store { return s.store }

// Handler builds the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req simulateRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		s.run(w, r, &key.Query{Kind: key.KindSimulate, Spec: req.Spec, Simulate: &req.SimulateParams})
	})
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		var req verifyRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		s.run(w, r, &key.Query{Kind: key.KindVerify, Spec: req.Spec, Verify: &req.VerifyParams})
	})
	mux.HandleFunc("POST /v1/bounds", func(w http.ResponseWriter, r *http.Request) {
		var req boundsRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		s.run(w, r, &key.Query{Kind: key.KindBounds, Bounds: &req.BoundsParams})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.jobs.get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job (the record window may have evicted it)"))
			return
		}
		writeJSON(w, http.StatusOK, j.view())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.metrics.snapshot(s.store, s.admit, s.jobs, s.identity.Instance(), s.started))
	})
	return mux
}

// Per-endpoint request bodies: the protocol spec plus the endpoint's
// parameter block inlined — exactly the fields the cache key hashes,
// so a request body IS its key material. Unknown members are
// rejected: a typoed parameter must not silently key as the default.
type simulateRequest struct {
	Spec key.Spec `json:"spec"`
	key.SimulateParams
}

type verifyRequest struct {
	Spec key.Spec `json:"spec"`
	key.VerifyParams
}

type boundsRequest struct {
	key.BoundsParams
}

// queryResponse is every query endpoint's response envelope.
type queryResponse struct {
	Job    string          `json:"job"`
	Key    string          `json:"key"`
	Cache  string          `json:"cache"`
	Kind   string          `json:"kind"`
	Result json.RawMessage `json:"result"`
}

// run drives one query through the full lifecycle:
// admission (tokens) → plan (canonicalize + key) → store lookup /
// singleflight compute → response. Every state change goes through
// the job's SM; an illegal transition here is a bug, surfaced as a
// 500 rather than papered over.
func (s *Server) run(w http.ResponseWriter, r *http.Request, q *key.Query) {
	s.metrics.requests.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	// Normalization must precede admission: the cost estimate reads
	// the defaults-filled form. A malformed query is the client's
	// fault and never consumes tokens.
	if err := q.Normalize(); err != nil {
		s.metrics.failures.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cost := queryCost(q)
	tAdmit := time.Now()
	if err := s.admit.acquire(r.Context(), cost); err != nil {
		s.metrics.failures.Add(1)
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	defer s.admit.release(cost)
	admitDur := time.Since(tAdmit)
	s.metrics.observePhase(phaseAdmit, admitDur)

	j, err := s.jobs.create(q.Kind, time.Now())
	if err != nil {
		s.metrics.failures.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	j.mu.Lock()
	j.phases[phaseAdmit] = admitDur
	j.mu.Unlock()

	fail := func(status int, err error) {
		s.metrics.failures.Add(1)
		j.mu.Lock()
		j.errMsg = err.Error()
		smErr := j.sm.To(StateFailed)
		j.mu.Unlock()
		if smErr != nil {
			err = errors.Join(err, smErr)
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
	}

	tPlan := time.Now()
	k, err := key.Of(q)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	j.mu.Lock()
	j.key, j.hasKey = k, true
	smErr := j.sm.To(StatePlanned)
	j.phases[phasePlan] = time.Since(tPlan)
	j.mu.Unlock()
	if smErr != nil {
		fail(http.StatusInternalServerError, smErr)
		return
	}
	s.metrics.observePhase(phasePlan, j.phases[phasePlan])

	tRun := time.Now()
	art, hit, err := s.store.GetOrCompute(r.Context(), k, q.Kind, func(ctx context.Context) (json.RawMessage, error) {
		// This closure runs only when this job leads a cache-miss
		// compute; followers and disk hits stay in planned.
		if err := j.to(StateRunning); err != nil {
			return nil, err
		}
		return s.compute(ctx, q)
	})
	runDur := time.Since(tRun)
	s.metrics.observePhase(phaseRun, runDur)
	if err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	j.mu.Lock()
	j.phases[phaseRun] = runDur
	j.artifact, j.hit = art, hit
	smErr = j.sm.To(StateCached)
	j.mu.Unlock()
	if smErr != nil {
		fail(http.StatusInternalServerError, smErr)
		return
	}

	cache := "miss"
	if hit {
		cache = "hit"
	}
	w.Header().Set("X-Cache", cache)
	writeJSON(w, http.StatusOK, queryResponse{
		Job:    j.id,
		Key:    k.String(),
		Cache:  cache,
		Kind:   q.Kind,
		Result: art.Result,
	})
}

// decodeBody strictly decodes a JSON request body; unknown members
// are a 400 so a typo cannot silently become a default (and a
// different cache key than the client intended). A rejected body
// still counts as a request and a failure in /metrics.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.metrics.requests.Add(1)
		s.metrics.failures.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
