// Package serve is the ppserve daemon: a long-lived HTTP/JSON front
// end over the repo's simulation, verification, and bounds engines
// with a persistent content-addressed result cache.
//
// Every request is reduced to a canonical query (internal/serve/key):
// defaults are filled explicitly, parameters validated, and the
// canonical bytes hashed, so any two requests that mean the same
// computation share one cache key and one stored artifact — the
// daemon's answer to a repeated query is a file read, not a
// recomputation, across restarts. Results live in the
// content-addressed store (internal/serve/store), published through
// the faultfs fsync-temp→rename seam and checksum-verified on read;
// a corrupt artifact is quarantined and recomputed, never served.
// Concurrent identical queries collapse into one compute via the
// store's singleflight.
//
// Each request walks the lifecycle state machine in sm.go —
// admitted → planned → running → cached/failed/timed_out — with every
// transition checked against the allowed-transition table and the
// job's invariant (a cached job holds its artifact, a failed job its
// reason); the conformance test pins every legal path and every
// illegal edge. Admission control is a token bucket denominated in
// shard cost-model units: a query's estimated cost (trials × per-trial
// cost, or the verify closure budget) must fit the bucket before any
// engine work starts, so expensive bursts queue instead of
// stampeding the samplers. /metrics exposes the cache hit rate,
// per-phase latencies, admission balance, breaker and store health,
// and store footprint.
//
// The serve path is self-limiting and self-healing. Every request
// runs under a compute deadline — Config.Deadline, or a per-query
// default priced from the same cost model admission uses — and the
// deadline's context is plumbed into the engines, so an expired
// request stops burning workers; the client gets 503 with a
// Retry-After hint sized to the bucket's backlog, and the job lands
// in the terminal timed_out state (distinct from failed: the query
// was fine, retrying later may hit warm). A query whose compute keeps
// failing trips a per-key circuit breaker — while the circuit is open
// the daemon refuses that key for free, and after the TTL exactly one
// half-open probe decides whether it closes. Request bodies are
// capped (413 past the limit), /healthz answers liveness while the
// process is up, and /readyz flips to 503 while the store underneath
// is degraded to compute-only mode, healing itself in the background.
//
// /v1/sweep is the anytime endpoint: an NDJSON stream of checksummed
// per-cell delta lines while the compute runs — each delta a sealed
// shard.CellArtifact whose cumulative trial counts give the client a
// strictly increasing completeness view — followed by one terminal
// merged document byte-identical to the stored artifact, so a client
// folding deltas can cross-check the fold and a warm replay (which
// skips straight to the terminal line, X-Cache: hit) returns exactly
// the bytes the cold stream promised. Sweep queries are planned
// through internal/shard with the same block dicing and stop rule the
// ppsweep CLI uses, so daemon and CLI produce interchangeable
// artifacts; a stream cut by a failure or deadline is detectable by
// its missing terminal line, and a disconnected client cancels the
// compute and returns its admission tokens.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/faultfs"
	"repro/internal/hostmeta"
	"repro/internal/serve/key"
	"repro/internal/serve/store"
)

// Config sizes one daemon.
type Config struct {
	// StoreDir roots the content-addressed result store.
	StoreDir string
	// Workers bounds each compute's worker pool (0 = GOMAXPROCS).
	Workers int
	// AdmitCapacity sizes the admission token bucket in shard
	// cost-model units (0 = the default capacity).
	AdmitCapacity int64
	// JobWindow bounds the /v1/jobs record table (0 = 4096).
	JobWindow int
	// Deadline caps each request's wall time inside the daemon —
	// admission wait plus compute. 0 prices a per-query default from
	// the same cost estimate admission uses (deadlineFor), so cheap
	// queries time out in seconds and a maximal verify gets minutes.
	Deadline time.Duration
	// StoreMaxBytes bounds the result store's on-disk footprint with
	// LRU eviction (0 = unbounded).
	StoreMaxBytes int64
	// BreakerThreshold consecutive compute failures for one key open
	// its circuit for BreakerTTL: the query is refused with the cached
	// failure instead of recomputed (0 = 3 failures, 30s).
	BreakerThreshold int
	BreakerTTL       time.Duration
	// StoreProbeBase is the degraded store's first self-heal probe
	// delay, doubling to 30s (0 = 250ms); chaos tests shrink it.
	StoreProbeBase time.Duration
	// FS is the filesystem seam for the store (nil = the real OS);
	// tests inject faults here.
	FS faultfs.FS
}

// Server is one ppserve daemon instance.
type Server struct {
	store    *store.Store
	admit    *admitter
	breaker  *breaker
	metrics  metrics
	jobs     *jobTable
	identity hostmeta.Process
	workers  int
	deadline time.Duration
	started  time.Time
}

// New opens the store and assembles a daemon.
func New(cfg Config) (*Server, error) {
	st, err := store.Open(cfg.StoreDir, store.Options{
		FS:        cfg.FS,
		MaxBytes:  cfg.StoreMaxBytes,
		ProbeBase: cfg.StoreProbeBase,
	})
	if err != nil {
		return nil, err
	}
	return &Server{
		store:    st,
		admit:    newAdmitter(cfg.AdmitCapacity),
		breaker:  newBreaker(cfg.BreakerThreshold, cfg.BreakerTTL),
		jobs:     newJobTable(cfg.JobWindow),
		identity: hostmeta.CollectProcess(),
		workers:  cfg.Workers,
		deadline: cfg.Deadline,
		started:  time.Now(),
	}, nil
}

// deadlineFor prices a request's compute deadline from its admission
// cost when no explicit Config.Deadline is set: a floor for cheap
// queries plus a cost-proportional term, capped — the same unit
// admission reasons in, so "expensive" buys time as well as tokens.
func (s *Server) deadlineFor(cost int64) time.Duration {
	if s.deadline > 0 {
		return s.deadline
	}
	d := 5*time.Second + time.Duration(cost/(1<<14))*time.Second
	if d > 2*time.Minute {
		d = 2 * time.Minute
	}
	return d
}

// retryAfter derives a Retry-After hint (seconds) from the admission
// balance: an idle daemon says "right away", a saturated one backs
// clients off up to 30s.
func (s *Server) retryAfter() int {
	capacity, avail, _ := s.admit.snapshot()
	if capacity <= 0 {
		return 1
	}
	return int(1 + 29*(capacity-avail)/capacity)
}

// Store exposes the result store (for the replay client and tests).
func (s *Server) Store() *store.Store { return s.store }

// Handler builds the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req simulateRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		s.run(w, r, &key.Query{Kind: key.KindSimulate, Spec: req.Spec, Simulate: &req.SimulateParams})
	})
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		var req verifyRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		s.run(w, r, &key.Query{Kind: key.KindVerify, Spec: req.Spec, Verify: &req.VerifyParams})
	})
	mux.HandleFunc("POST /v1/bounds", func(w http.ResponseWriter, r *http.Request) {
		var req boundsRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		s.run(w, r, &key.Query{Kind: key.KindBounds, Bounds: &req.BoundsParams})
	})
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req sweepRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		s.runSweep(w, r, &key.Query{Kind: key.KindSweep, Spec: req.Spec, Sweep: &req.SweepParams})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.jobs.get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no such job (the record window may have evicted it)"))
			return
		}
		writeJSON(w, http.StatusOK, j.view())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.metrics.snapshot(s.store, s.admit, s.breaker, s.jobs, s.identity.Instance(), s.started))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving. Degradation is a
		// readiness concern, never a liveness one.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.store.Health()
		status := http.StatusOK
		ready := "ok"
		if h.Degraded {
			// Still serving (compute-only), but a load balancer should
			// prefer a replica whose cache persists.
			status = http.StatusServiceUnavailable
			ready = "degraded"
		}
		writeJSON(w, status, map[string]any{"status": ready, "store": h})
	})
	mux.HandleFunc("GET /v1/keys", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 || n > 1000 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("limit must be in [1, 1000], got %q", v))
				return
			}
			limit = n
		}
		page, next := s.store.Keys(r.URL.Query().Get("after"), limit)
		writeJSON(w, http.StatusOK, keysResponse{Keys: page, Next: next})
	})
	return mux
}

// keysResponse pages the store inventory: keyset pagination, so a
// page is consistent even while puts and evictions race the listing.
type keysResponse struct {
	Keys []store.KeyInfo `json:"keys"`
	// Next is the cursor for the following page ("" when exhausted);
	// pass it back as ?after=.
	Next string `json:"next,omitempty"`
}

// Per-endpoint request bodies: the protocol spec plus the endpoint's
// parameter block inlined — exactly the fields the cache key hashes,
// so a request body IS its key material. Unknown members are
// rejected: a typoed parameter must not silently key as the default.
type simulateRequest struct {
	Spec key.Spec `json:"spec"`
	key.SimulateParams
}

type verifyRequest struct {
	Spec key.Spec `json:"spec"`
	key.VerifyParams
}

type boundsRequest struct {
	key.BoundsParams
}

// queryResponse is every query endpoint's response envelope.
type queryResponse struct {
	Job    string          `json:"job"`
	Key    string          `json:"key"`
	Cache  string          `json:"cache"`
	Kind   string          `json:"kind"`
	Result json.RawMessage `json:"result"`
}

// run drives one query through the full lifecycle:
// deadline + admission (tokens) → plan (canonicalize + key) →
// breaker check → store lookup / singleflight compute → response.
// Every state change goes through the job's SM; an illegal transition
// here is a bug, surfaced as a 500 rather than papered over.
//
// The whole walk runs under a compute deadline (Config.Deadline, or a
// per-query default priced from the admission cost). When it expires
// — or the client disconnects — the context cancellation propagates
// into the engines (sim polls it, petri.Budget.Cancel carries it into
// the verify closure walk), the job lands in timed_out, the held
// admission tokens are released immediately, and the client gets 503
// with a Retry-After derived from the admission balance.
func (s *Server) run(w http.ResponseWriter, r *http.Request, q *key.Query) {
	s.metrics.requests.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	// Normalization must precede admission: the cost estimate reads
	// the defaults-filled form. A malformed query is the client's
	// fault and never consumes tokens.
	if err := q.Normalize(); err != nil {
		s.metrics.failures.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cost := queryCost(q)
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(cost))
	defer cancel()

	// The job record exists before admission, so a request that dies
	// waiting for tokens is a visible timed_out job, not a mystery.
	j, err := s.jobs.create(q.Kind, time.Now())
	if err != nil {
		s.metrics.failures.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	fail := func(status int, err error) {
		s.metrics.failures.Add(1)
		j.mu.Lock()
		j.errMsg = err.Error()
		smErr := j.sm.To(StateFailed)
		j.mu.Unlock()
		if smErr != nil {
			err = errors.Join(err, smErr)
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
	}

	// timeout resolves a request whose deadline expired or whose
	// client vanished: the job is timed_out either way (the query
	// itself was fine — re-posting it later may even hit warm), and
	// the 503 tells a still-listening client when to come back.
	timeout := func(cause error) {
		s.metrics.failures.Add(1)
		s.metrics.timeouts.Add(1)
		j.mu.Lock()
		j.errMsg = cause.Error()
		smErr := j.sm.To(StateTimedOut)
		j.mu.Unlock()
		if smErr != nil {
			writeError(w, http.StatusInternalServerError, errors.Join(cause, smErr))
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusServiceUnavailable, cause)
	}

	tAdmit := time.Now()
	if err := s.admit.acquire(ctx, cost); err != nil {
		if ctx.Err() != nil {
			timeout(fmt.Errorf("serve: admission wait exceeded the request deadline: %w", err))
			return
		}
		s.metrics.failures.Add(1)
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	defer s.admit.release(cost)
	admitDur := time.Since(tAdmit)
	s.metrics.observePhase(phaseAdmit, admitDur)
	j.mu.Lock()
	j.phases[phaseAdmit] = admitDur
	j.mu.Unlock()

	tPlan := time.Now()
	k, err := key.Of(q)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	j.mu.Lock()
	j.key, j.hasKey = k, true
	smErr := j.sm.To(StatePlanned)
	j.phases[phasePlan] = time.Since(tPlan)
	j.mu.Unlock()
	if smErr != nil {
		fail(http.StatusInternalServerError, smErr)
		return
	}
	s.metrics.observePhase(phasePlan, j.phases[phasePlan])

	if open, remaining, lastErr := s.breaker.check(k.SHA); open {
		j.mu.Lock()
		j.errMsg = "circuit open: " + lastErr
		smErr := j.sm.To(StateFailed)
		j.mu.Unlock()
		s.metrics.failures.Add(1)
		if smErr != nil {
			writeError(w, http.StatusInternalServerError, smErr)
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(remaining/time.Second)+1))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: this query keeps failing and its circuit is open for %s: %s", remaining.Round(time.Millisecond), lastErr))
		return
	}

	tRun := time.Now()
	art, hit, err := s.store.GetOrCompute(ctx, k, q.Kind, func(ctx context.Context) (json.RawMessage, error) {
		// This closure runs only when this job leads a cache-miss
		// compute; followers and disk hits stay in planned.
		if err := j.to(StateRunning); err != nil {
			return nil, err
		}
		return s.compute(ctx, q)
	})
	runDur := time.Since(tRun)
	s.metrics.observePhase(phaseRun, runDur)
	if err != nil {
		if ctx.Err() != nil {
			// Deadline or disconnect. Only a deadline feeds the breaker:
			// a query that cannot finish in its time budget is poison,
			// a client that hung up says nothing about the query.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.breaker.failure(k.SHA, "deadline exceeded: "+err.Error())
			}
			timeout(fmt.Errorf("serve: compute exceeded the request deadline: %w", err))
			return
		}
		s.breaker.failure(k.SHA, err.Error())
		fail(http.StatusInternalServerError, err)
		return
	}
	s.breaker.success(k.SHA)
	j.mu.Lock()
	j.phases[phaseRun] = runDur
	j.artifact, j.hit = art, hit
	smErr = j.sm.To(StateCached)
	j.mu.Unlock()
	if smErr != nil {
		fail(http.StatusInternalServerError, smErr)
		return
	}

	cache := "miss"
	if hit {
		cache = "hit"
	}
	w.Header().Set("X-Cache", cache)
	writeJSON(w, http.StatusOK, queryResponse{
		Job:    j.id,
		Key:    k.String(),
		Cache:  cache,
		Kind:   q.Kind,
		Result: art.Result,
	})
}

// maxBodyBytes bounds a query body. Real queries are a few hundred
// bytes of parameters; a megabyte is already absurd, and an unbounded
// decoder would buffer whatever a hostile client streams.
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes a JSON request body; unknown members
// are a 400 so a typo cannot silently become a default (and a
// different cache key than the client intended), and bodies over
// maxBodyBytes are cut off with 413 before they can balloon memory.
// A rejected body still counts as a request and a failure in
// /metrics.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.metrics.requests.Add(1)
		s.metrics.failures.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
