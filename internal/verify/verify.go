// Package verify decides stable computation on bounded instances: given
// a protocol, an input and the expected predicate value, it builds the
// exact reachability closure of the initial configuration and checks
// the Section 2 condition
//
//	∀α: ρ_L + ρ|_P —T*→ α  ⟹  ∃β ∈ S_{φ(ρ)}: α —T*→ β
//
// by SCC/reachability analysis of the closure. The general problem is
// equivalent to Petri-net reachability and therefore
// Ackermannian-complete ([9, 10] + [8, 11]); this verifier is exact but
// bounded, and reports budget exhaustion as an error instead of
// guessing.
//
// Results are deterministic regardless of parallelism: Input runs
// both reachability passes over one shared reverse-CSR view of the
// closure (zero-copy from petri, see that package's ownership
// invariants), and Range fans independent inputs out to a bounded
// worker pool while collecting reports in enumeration order, so
// tables and first-error semantics never depend on scheduling.
package verify

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/petri"
)

// Predicate is a predicate φ: ℕ^I → {0, 1} evaluated on input
// configurations. Range calls it from concurrent workers, so it must
// be safe for concurrent use (pure functions of the input, like
// CountingPredicate, trivially are).
type Predicate func(input conf.Config) bool

// CountingPredicate returns φ_{i≥n} for the named initial state.
func CountingPredicate(state string, n int64) Predicate {
	return func(input conf.Config) bool {
		return input.GetName(state) >= n
	}
}

// Report is the outcome of one input's verification.
type Report struct {
	// Input is the verified input configuration ρ.
	Input conf.Config
	// Expected is φ(ρ).
	Expected bool
	// OK reports that the stable-computation condition holds for this
	// input.
	OK bool
	// Configs is the size of the reachability closure.
	Configs int
	// StableConfigs is the number of closure members in S_{φ(ρ)}.
	StableConfigs int
	// Counterexample, when OK is false, is a reachable configuration
	// from which no φ(ρ)-output-stable configuration is reachable.
	Counterexample *conf.Config
}

// Input checks stable computation for a single input. Both
// reachability passes (who can reach a bad node; who can reach a
// stable node) run over the closure's shared CSR edge structure: the
// reverse graph is built once and no per-node adjacency slices are
// allocated.
func Input(p *core.Protocol, input conf.Config, pred Predicate, budget petri.Budget) (*Report, error) {
	expected := pred(input)
	initial := p.InitialConfig(input)
	rs, err := p.Net().Reach(initial, budget)
	if rs != nil {
		// The closure never escapes this function (counterexamples are
		// cloned), so spill files from an out-of-core exploration are
		// reclaimed here; for in-RAM closures Release is a no-op.
		defer rs.Release()
	}
	if err != nil {
		return nil, fmt.Errorf("verify %v: %w", input, err)
	}
	radj := rs.CSR().Reverse()

	// A node is "bad" for output j when its own output set already
	// violates S_j membership; a node is in S_j iff it cannot reach a
	// bad node (the closure is forward-closed, so this is exact).
	var bad []int
	for id := 0; id < rs.Len(); id++ {
		out := p.OutputOf(rs.Config(id))
		violates := out != core.Set1
		if !expected {
			violates = out&(core.SetStar|core.Set1) != 0
		}
		if violates {
			bad = append(bad, id)
		}
	}
	reachesBad := graph.ReachableFrom(radj, bad, nil)
	var stable []int
	for id := 0; id < rs.Len(); id++ {
		if !reachesBad[id] {
			stable = append(stable, id)
		}
	}
	report := &Report{
		Input:         input.Clone(),
		Expected:      expected,
		Configs:       rs.Len(),
		StableConfigs: len(stable),
	}
	if len(stable) == 0 {
		report.OK = false
		c := rs.Config(0).Clone() // detach from the closure arena
		report.Counterexample = &c
		return report, nil
	}
	canStabilize := graph.ReachableFrom(radj, stable, reachesBad)
	report.OK = true
	for id := 0; id < rs.Len(); id++ {
		if !canStabilize[id] {
			report.OK = false
			c := rs.Config(id).Clone() // detach from the closure arena
			report.Counterexample = &c
			break
		}
	}
	return report, nil
}

// RangeResult aggregates the verification of many inputs.
type RangeResult struct {
	Reports []Report
	// Failures indexes the reports that are not OK.
	Failures []int
	// MaxConfigs is the largest closure encountered.
	MaxConfigs int
}

// OK reports whether every input verified.
func (r *RangeResult) OK() bool { return len(r.Failures) == 0 }

// FirstFailure returns the first failing report, or nil.
func (r *RangeResult) FirstFailure() *Report {
	if len(r.Failures) == 0 {
		return nil
	}
	return &r.Reports[r.Failures[0]]
}

// Range verifies every input with total agent count in [minTotal,
// maxTotal] over the protocol's initial states: the bounded analogue of
// the well-specification problem for the given predicate.
//
// Inputs are independent, so they fan out to a bounded worker pool
// (the sim.RunMany pattern); reports are collected in enumeration
// order and the first error by that order is returned, so results and
// errors are deterministic regardless of scheduling. The worker budget
// is Budget.Workers (0 = GOMAXPROCS), split two-level: the outer pool
// takes one worker per input and each input's closure BFS gets the
// ceiling share of the remainder, so the pool product covers the
// budget whether the range has many small inputs or one huge one.
func Range(p *core.Protocol, pred Predicate, minTotal, maxTotal int64, budget petri.Budget) (*RangeResult, error) {
	if minTotal < 0 || maxTotal < minTotal {
		return nil, errors.New("verify: invalid total range")
	}
	inputSpace, err := conf.NewSpace(p.InitialStates()...)
	if err != nil {
		return nil, err
	}
	var inputs []conf.Config
	for total := minTotal; total <= maxTotal; total++ {
		if err := conf.EnumerateTotal(inputSpace, total, func(c conf.Config) bool {
			inputs = append(inputs, c.Clone())
			return true
		}); err != nil {
			return nil, err
		}
	}
	reports := make([]*Report, len(inputs))
	errs := make([]error, len(inputs))
	total := budget.EffectiveWorkers()
	workers := total
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers > 0 {
		// Each input's Reach runs its level-parallel BFS with the
		// ceiling share of the worker budget (byte-identical for any
		// split — only the wall clock depends on it).
		budget.Workers = (total + workers - 1) / workers
	}
	if workers <= 1 {
		for i, ic := range inputs {
			reports[i], errs[i] = verifyOne(p, ic, pred, budget)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
	} else {
		// minFailed is the smallest input index that errored so far;
		// workers skip only jobs above it, so every input below the
		// first failure is still verified and the first-by-index error
		// below stays exactly the sequential one — only work past the
		// failure point is saved.
		var minFailed atomic.Int64
		minFailed.Store(int64(len(inputs)))
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					if int64(i) > minFailed.Load() {
						continue
					}
					reports[i], errs[i] = verifyOne(p, inputs[i], pred, budget)
					if errs[i] != nil {
						for {
							cur := minFailed.Load()
							if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
								break
							}
						}
					}
				}
			}()
		}
		for i := range inputs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	result := &RangeResult{}
	for i, report := range reports {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if report == nil {
			// Unreachable: a nil report means the job was skipped after
			// an earlier-index failure, which the loop returns first.
			return nil, errors.New("verify: internal: input skipped without error")
		}
		if report.Configs > result.MaxConfigs {
			result.MaxConfigs = report.Configs
		}
		result.Reports = append(result.Reports, *report)
		if !report.OK {
			result.Failures = append(result.Failures, len(result.Reports)-1)
		}
	}
	return result, nil
}

// verifyOne embeds one enumerated input into the protocol space and
// verifies it.
func verifyOne(p *core.Protocol, ic conf.Config, pred Predicate, budget petri.Budget) (*Report, error) {
	embedded, err := ic.Embed(p.Space())
	if err != nil {
		return nil, err
	}
	return Input(p, embedded, pred, budget)
}

// Counting verifies a protocol against φ_{i≥n} for all input sizes
// x ∈ [0, maxX]: the standard acceptance test for the counting
// constructions of Section 4.
func Counting(p *core.Protocol, state string, n int64, maxX int64, budget petri.Budget) (*RangeResult, error) {
	if len(p.InitialStates()) != 1 || p.InitialStates()[0] != state {
		return nil, fmt.Errorf("verify: counting protocols must have I = {%s}", state)
	}
	return Range(p, CountingPredicate(state, n), 0, maxX, budget)
}
