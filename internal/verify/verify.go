// Package verify decides stable computation on bounded instances: given
// a protocol, an input and the expected predicate value, it builds the
// exact reachability closure of the initial configuration and checks
// the Section 2 condition
//
//	∀α: ρ_L + ρ|_P —T*→ α  ⟹  ∃β ∈ S_{φ(ρ)}: α —T*→ β
//
// by SCC/reachability analysis of the closure. The general problem is
// equivalent to Petri-net reachability and therefore
// Ackermannian-complete ([9, 10] + [8, 11]); this verifier is exact but
// bounded, and reports budget exhaustion as an error instead of
// guessing.
package verify

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/petri"
)

// Predicate is a predicate φ: ℕ^I → {0, 1} evaluated on input
// configurations.
type Predicate func(input conf.Config) bool

// CountingPredicate returns φ_{i≥n} for the named initial state.
func CountingPredicate(state string, n int64) Predicate {
	return func(input conf.Config) bool {
		return input.GetName(state) >= n
	}
}

// Report is the outcome of one input's verification.
type Report struct {
	// Input is the verified input configuration ρ.
	Input conf.Config
	// Expected is φ(ρ).
	Expected bool
	// OK reports that the stable-computation condition holds for this
	// input.
	OK bool
	// Configs is the size of the reachability closure.
	Configs int
	// StableConfigs is the number of closure members in S_{φ(ρ)}.
	StableConfigs int
	// Counterexample, when OK is false, is a reachable configuration
	// from which no φ(ρ)-output-stable configuration is reachable.
	Counterexample *conf.Config
}

// Input checks stable computation for a single input.
func Input(p *core.Protocol, input conf.Config, pred Predicate, budget petri.Budget) (*Report, error) {
	expected := pred(input)
	initial := p.InitialConfig(input)
	rs, err := p.Net().Reach(initial, budget)
	if err != nil {
		return nil, fmt.Errorf("verify %v: %w", input, err)
	}
	adj := rs.AdjacencyLists()

	// A node is "bad" for output j when its own output set already
	// violates S_j membership; a node is in S_j iff it cannot reach a
	// bad node (the closure is forward-closed, so this is exact).
	var bad []int
	for id := 0; id < rs.Len(); id++ {
		out := p.OutputOf(rs.Config(id))
		violates := out != core.Set1
		if !expected {
			violates = out&(core.SetStar|core.Set1) != 0
		}
		if violates {
			bad = append(bad, id)
		}
	}
	reachesBad := graph.CanReach(adj, bad)
	var stable []int
	for id := 0; id < rs.Len(); id++ {
		if !reachesBad[id] {
			stable = append(stable, id)
		}
	}
	report := &Report{
		Input:         input.Clone(),
		Expected:      expected,
		Configs:       rs.Len(),
		StableConfigs: len(stable),
	}
	if len(stable) == 0 {
		report.OK = false
		c := rs.Config(0)
		report.Counterexample = &c
		return report, nil
	}
	canStabilize := graph.CanReach(adj, stable)
	report.OK = true
	for id := 0; id < rs.Len(); id++ {
		if !canStabilize[id] {
			report.OK = false
			c := rs.Config(id)
			report.Counterexample = &c
			break
		}
	}
	return report, nil
}

// RangeResult aggregates the verification of many inputs.
type RangeResult struct {
	Reports []Report
	// Failures indexes the reports that are not OK.
	Failures []int
	// MaxConfigs is the largest closure encountered.
	MaxConfigs int
}

// OK reports whether every input verified.
func (r *RangeResult) OK() bool { return len(r.Failures) == 0 }

// FirstFailure returns the first failing report, or nil.
func (r *RangeResult) FirstFailure() *Report {
	if len(r.Failures) == 0 {
		return nil
	}
	return &r.Reports[r.Failures[0]]
}

// Range verifies every input with total agent count in [minTotal,
// maxTotal] over the protocol's initial states: the bounded analogue of
// the well-specification problem for the given predicate.
func Range(p *core.Protocol, pred Predicate, minTotal, maxTotal int64, budget petri.Budget) (*RangeResult, error) {
	if minTotal < 0 || maxTotal < minTotal {
		return nil, errors.New("verify: invalid total range")
	}
	inputSpace, err := conf.NewSpace(p.InitialStates()...)
	if err != nil {
		return nil, err
	}
	result := &RangeResult{}
	for total := minTotal; total <= maxTotal; total++ {
		var inputs []conf.Config
		if err := conf.EnumerateTotal(inputSpace, total, func(c conf.Config) bool {
			inputs = append(inputs, c.Clone())
			return true
		}); err != nil {
			return nil, err
		}
		for _, ic := range inputs {
			embedded, err := ic.Embed(p.Space())
			if err != nil {
				return nil, err
			}
			report, err := Input(p, embedded, pred, budget)
			if err != nil {
				return nil, err
			}
			if report.Configs > result.MaxConfigs {
				result.MaxConfigs = report.Configs
			}
			result.Reports = append(result.Reports, *report)
			if !report.OK {
				result.Failures = append(result.Failures, len(result.Reports)-1)
			}
		}
	}
	return result, nil
}

// Counting verifies a protocol against φ_{i≥n} for all input sizes
// x ∈ [0, maxX]: the standard acceptance test for the counting
// constructions of Section 4.
func Counting(p *core.Protocol, state string, n int64, maxX int64, budget petri.Budget) (*RangeResult, error) {
	if len(p.InitialStates()) != 1 || p.InitialStates()[0] != state {
		return nil, fmt.Errorf("verify: counting protocols must have I = {%s}", state)
	}
	return Range(p, CountingPredicate(state, n), 0, maxX, budget)
}
