package verify

import (
	"errors"
	"os"
	"runtime"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/petri"
)

var budget = petri.Budget{MaxConfigs: 1 << 18}

func TestCountingPredicate(t *testing.T) {
	space := conf.MustSpace("i", "p")
	pred := CountingPredicate("i", 3)
	if pred(conf.MustFromMap(space, map[string]int64{"i": 2})) {
		t.Error("pred(2) = true")
	}
	if !pred(conf.MustFromMap(space, map[string]int64{"i": 3})) {
		t.Error("pred(3) = false")
	}
}

func TestInputExample42(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	for x := int64(0); x <= 4; x++ {
		input := conf.MustFromMap(p.Space(), map[string]int64{"i": x})
		report, err := Input(p, input, CountingPredicate("i", 2), budget)
		if err != nil {
			t.Fatalf("x=%d: %v", x, err)
		}
		if !report.OK {
			t.Errorf("x=%d: stable computation fails; counterexample %v", x, report.Counterexample)
		}
		if report.Expected != (x >= 2) {
			t.Errorf("x=%d: Expected = %v", x, report.Expected)
		}
		if report.StableConfigs == 0 {
			t.Errorf("x=%d: no stable configurations", x)
		}
	}
}

// A deliberately broken protocol: output 1 for i, 0 for p, and a
// transition i -> p, so from 2·i the output flaps and... actually that
// one stably computes "false" for nothing. Build a protocol that is NOT
// well-specified: i <-> p with γ(i)=1, γ(p)=0 flips forever and neither
// stable set is reachable.
func TestInputDetectsIllSpecified(t *testing.T) {
	space := conf.MustSpace("i", "p")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	t1, err := petri.NewTransition("ip", u("i"), u("p"))
	if err != nil {
		t.Fatalf("transition: %v", err)
	}
	t2, err := petri.NewTransition("pi", u("p"), u("i"))
	if err != nil {
		t.Fatalf("transition: %v", err)
	}
	net, err := petri.New(space, []petri.Transition{t1, t2})
	if err != nil {
		t.Fatalf("net: %v", err)
	}
	p, err := core.NewProtocol("flipflop", net, conf.New(space), []string{"i"},
		map[string]core.Output{"i": core.Out1, "p": core.Out0})
	if err != nil {
		t.Fatalf("NewProtocol: %v", err)
	}
	input := conf.MustFromMap(space, map[string]int64{"i": 1})
	// Whatever the predicate claims, the flip-flop never stabilizes.
	for _, expected := range []bool{true, false} {
		pred := func(conf.Config) bool { return expected }
		report, err := Input(p, input, pred, budget)
		if err != nil {
			t.Fatalf("Input: %v", err)
		}
		if report.OK {
			t.Errorf("expected=%v: flip-flop accepted as stably computing", expected)
		}
		if report.Counterexample == nil {
			t.Errorf("expected=%v: no counterexample reported", expected)
		}
	}
}

func TestInputBudgetError(t *testing.T) {
	space := conf.MustSpace("i", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	pump, err := petri.NewTransition("pump", u("i"), u("i").Add(u("b")))
	if err != nil {
		t.Fatalf("transition: %v", err)
	}
	net, err := petri.New(space, []petri.Transition{pump})
	if err != nil {
		t.Fatalf("net: %v", err)
	}
	p, err := core.NewProtocol("pumper", net, conf.New(space), []string{"i"},
		map[string]core.Output{"i": core.Out0, "b": core.Out0})
	if err != nil {
		t.Fatalf("NewProtocol: %v", err)
	}
	input := conf.MustFromMap(space, map[string]int64{"i": 1})
	_, err = Input(p, input, func(conf.Config) bool { return false }, petri.Budget{MaxConfigs: 4})
	if !errors.Is(err, petri.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestRangeExample41(t *testing.T) {
	p, err := counting.Example41(3)
	if err != nil {
		t.Fatalf("Example41: %v", err)
	}
	res, err := Counting(p, "i", 3, 5, budget)
	if err != nil {
		t.Fatalf("Counting: %v", err)
	}
	if !res.OK() {
		f := res.FirstFailure()
		t.Fatalf("Example 4.1 fails at %v (expected %v)", f.Input, f.Expected)
	}
	// Inputs 0..5 = 6 reports.
	if len(res.Reports) != 6 {
		t.Errorf("reports = %d, want 6", len(res.Reports))
	}
	if res.MaxConfigs == 0 {
		t.Error("MaxConfigs = 0")
	}
}

func TestRangeValidation(t *testing.T) {
	p, err := counting.Example41(2)
	if err != nil {
		t.Fatalf("Example41: %v", err)
	}
	if _, err := Range(p, CountingPredicate("i", 2), 3, 1, budget); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := Counting(p, "p", 2, 3, budget); err == nil {
		t.Error("wrong counting state accepted")
	}
}

// Range fans inputs out to a worker pool; reports must come back in
// enumeration order with identical content regardless of parallelism.
func TestRangeParallelDeterminism(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	prev := runtime.GOMAXPROCS(1)
	seq, seqErr := Counting(p, "i", 4, 7, budget)
	runtime.GOMAXPROCS(4)
	par, parErr := Counting(p, "i", 4, 7, budget)
	runtime.GOMAXPROCS(prev)
	if seqErr != nil || parErr != nil {
		t.Fatalf("errs: sequential %v, parallel %v", seqErr, parErr)
	}
	if len(seq.Reports) != len(par.Reports) || seq.MaxConfigs != par.MaxConfigs {
		t.Fatalf("shape: sequential (%d, %d), parallel (%d, %d)",
			len(seq.Reports), seq.MaxConfigs, len(par.Reports), par.MaxConfigs)
	}
	for i := range seq.Reports {
		s, q := seq.Reports[i], par.Reports[i]
		if !s.Input.Equal(q.Input) || s.Expected != q.Expected || s.OK != q.OK ||
			s.Configs != q.Configs || s.StableConfigs != q.StableConfigs {
			t.Fatalf("report %d differs: sequential %+v, parallel %+v", i, s, q)
		}
	}
	if len(seq.Failures) != len(par.Failures) {
		t.Fatalf("failures differ: %v vs %v", seq.Failures, par.Failures)
	}
}

// Budget errors must surface deterministically from the pool: the
// first failing input in enumeration order wins.
func TestRangeParallelBudgetError(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	_, err = Counting(p, "i", 4, 7, petri.Budget{MaxConfigs: 3})
	if !errors.Is(err, petri.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// Range reports must be byte-identical for every worker budget: the
// outer input fan-out collects in enumeration order and the inner
// closure BFS is byte-identical per worker count, so only the wall
// clock may differ.
func TestRangeDeterministicAcrossWorkers(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	var ref *RangeResult
	for _, workers := range []int{1, 2, 4, 8} {
		b := budget
		b.Workers = workers
		res, err := Counting(p, "i", 4, 7, b)
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.MaxConfigs != ref.MaxConfigs || len(res.Reports) != len(ref.Reports) || len(res.Failures) != len(ref.Failures) {
			t.Fatalf("w=%d: (max %d, %d reports, %d failures) vs w=1 (max %d, %d, %d)",
				workers, res.MaxConfigs, len(res.Reports), len(res.Failures),
				ref.MaxConfigs, len(ref.Reports), len(ref.Failures))
		}
		for i := range res.Reports {
			got, want := res.Reports[i], ref.Reports[i]
			if !got.Input.Equal(want.Input) || got.Expected != want.Expected || got.OK != want.OK ||
				got.Configs != want.Configs || got.StableConfigs != want.StableConfigs {
				t.Errorf("w=%d report %d: %+v vs w=1 %+v", workers, i, got, want)
			}
		}
	}
}

// A spill-enabled verification must reach the same verdicts as the
// in-RAM one, and must leave no spill files behind (Input releases
// each closure).
func TestRangeSpilledMatchesRAM(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	ram, err := Counting(p, "i", 4, 6, budget)
	if err != nil {
		t.Fatalf("ram: %v", err)
	}
	dir := t.TempDir()
	b := budget
	b.SpillDir = dir
	b.SpillThreshold = 4 << 10
	sp, err := Counting(p, "i", 4, 6, b)
	if err != nil {
		t.Fatalf("spilled: %v", err)
	}
	if sp.MaxConfigs != ram.MaxConfigs || len(sp.Reports) != len(ram.Reports) || !sp.OK() || !ram.OK() {
		t.Fatalf("spilled (max %d, %d reports, ok %v) vs ram (max %d, %d, ok %v)",
			sp.MaxConfigs, len(sp.Reports), sp.OK(), ram.MaxConfigs, len(ram.Reports), ram.OK())
	}
	for i := range sp.Reports {
		if sp.Reports[i].Configs != ram.Reports[i].Configs || sp.Reports[i].StableConfigs != ram.Reports[i].StableConfigs {
			t.Errorf("report %d: spilled %+v vs ram %+v", i, sp.Reports[i], ram.Reports[i])
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 0 {
		t.Errorf("spill dir not reclaimed after verification: %v", entries)
	}
}
