package machine

import (
	"math/big"
	"testing"
)

func TestSquaringProgram(t *testing.T) {
	for k := 0; k <= 6; k++ {
		p := SquaringProgram(k)
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: Validate: %v", k, err)
		}
		if len(p.Instrs) != k+1 {
			t.Errorf("k=%d: %d instructions, want %d", k, len(p.Instrs), k+1)
		}
		out, maxVal, err := p.Run()
		if err != nil {
			t.Fatalf("k=%d: Run: %v", k, err)
		}
		want := TowerValue(k)
		if out.Cmp(want) != 0 {
			t.Errorf("k=%d: output %v, want %v", k, out, want)
		}
		if maxVal.Cmp(want) != 0 {
			t.Errorf("k=%d: max %v, want %v", k, maxVal, want)
		}
	}
}

func TestTowerValue(t *testing.T) {
	wants := []int64{2, 4, 16, 256, 65536, 4294967296}
	for k, want := range wants {
		got := TowerValue(k)
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("TowerValue(%d) = %v, want %d", k, got, want)
		}
		gi, err := TowerValueInt64(k)
		if err != nil || gi != want {
			t.Errorf("TowerValueInt64(%d) = %d, %v", k, gi, err)
		}
	}
	if _, err := TowerValueInt64(6); err == nil {
		t.Error("2^64 fit into int64?")
	}
}

func TestGeneralProgram(t *testing.T) {
	p := Program{
		Instrs: []Instr{
			{Op: OpSet, Dst: "a", K: 3},
			{Op: OpSet, Dst: "b", K: 4},
			{Op: OpMul, Dst: "c", Src1: "a", Src2: "b"},
			{Op: OpAdd, Dst: "c", Src1: "c", Src2: "a"},
			{Op: OpCopy, Dst: "out", Src1: "c"},
		},
		Output: "out",
	}
	out, maxVal, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Int64() != 15 {
		t.Errorf("out = %v, want 15", out)
	}
	if maxVal.Int64() != 15 {
		t.Errorf("max = %v, want 15", maxVal)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Program{
		{},
		{Instrs: []Instr{{Op: OpSet, Dst: "a", K: 1}}},
		{Instrs: []Instr{{Op: OpSet, Dst: "a", K: -1}}, Output: "a"},
		{Instrs: []Instr{{Op: OpAdd, Dst: "a", Src1: "x", Src2: "y"}}, Output: "a"},
		{Instrs: []Instr{{Op: OpCopy, Dst: "a", Src1: "x"}}, Output: "a"},
		{Instrs: []Instr{{Op: Op(99), Dst: "a"}}, Output: "a"},
		{Instrs: []Instr{{Op: OpSet, Dst: "a", K: 1}}, Output: "zz"},
		{Instrs: []Instr{{Op: OpSet, Dst: "", K: 1}}, Output: "a"},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid program validated", i)
		}
	}
}

func TestInstrString(t *testing.T) {
	for _, in := range []Instr{
		{Op: OpSet, Dst: "a", K: 2},
		{Op: OpAdd, Dst: "a", Src1: "b", Src2: "c"},
		{Op: OpMul, Dst: "a", Src1: "b", Src2: "c"},
		{Op: OpCopy, Dst: "a", Src1: "b"},
		{Op: Op(42)},
	} {
		if in.String() == "" {
			t.Errorf("empty String for %+v", in)
		}
	}
}
