// Package machine provides bounded register machines with polynomial
// updates: the computational substrate behind the O(log log n)
// counting protocols of Blondin–Esparza–Jaax [6] that Theorem 4.3 is
// matched against. A machine with O(k) instructions can compute values
// as large as 2^(2^k) by repeated squaring; the tower protocol
// (counting.Tower) simulates such a machine with a leader.
package machine

import (
	"errors"
	"fmt"
	"math/big"
)

// Op is an instruction opcode.
type Op int

// Opcodes.
const (
	OpSet  Op = iota + 1 // Dst := K
	OpAdd                // Dst := Src1 + Src2
	OpMul                // Dst := Src1 · Src2
	OpCopy               // Dst := Src1
)

// Instr is one register-machine instruction.
type Instr struct {
	Op         Op
	Dst        string
	Src1, Src2 string
	K          int64
}

// String renders the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpSet:
		return fmt.Sprintf("%s := %d", i.Dst, i.K)
	case OpAdd:
		return fmt.Sprintf("%s := %s + %s", i.Dst, i.Src1, i.Src2)
	case OpMul:
		return fmt.Sprintf("%s := %s · %s", i.Dst, i.Src1, i.Src2)
	case OpCopy:
		return fmt.Sprintf("%s := %s", i.Dst, i.Src1)
	default:
		return fmt.Sprintf("op(%d)", i.Op)
	}
}

// Program is a straight-line register program.
type Program struct {
	Instrs []Instr
	// Output is the register holding the result.
	Output string
}

// Validate checks opcodes and register references.
func (p Program) Validate() error {
	if len(p.Instrs) == 0 {
		return errors.New("machine: empty program")
	}
	if p.Output == "" {
		return errors.New("machine: no output register")
	}
	defined := make(map[string]bool)
	for idx, in := range p.Instrs {
		switch in.Op {
		case OpSet:
			if in.K < 0 {
				return fmt.Errorf("machine: instr %d: negative constant", idx)
			}
		case OpAdd, OpMul:
			if !defined[in.Src1] || !defined[in.Src2] {
				return fmt.Errorf("machine: instr %d: undefined source", idx)
			}
		case OpCopy:
			if !defined[in.Src1] {
				return fmt.Errorf("machine: instr %d: undefined source", idx)
			}
		default:
			return fmt.Errorf("machine: instr %d: bad opcode %d", idx, in.Op)
		}
		if in.Dst == "" {
			return fmt.Errorf("machine: instr %d: no destination", idx)
		}
		defined[in.Dst] = true
	}
	if !defined[p.Output] {
		return fmt.Errorf("machine: output register %q never written", p.Output)
	}
	return nil
}

// Run executes the program and returns the output register's value and
// the maximum value held by any register at any point (the bound the
// simulating protocol's population must carry).
func (p Program) Run() (out, maxVal *big.Int, err error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	regs := make(map[string]*big.Int)
	maxVal = big.NewInt(0)
	note := func(v *big.Int) {
		if v.Cmp(maxVal) > 0 {
			maxVal = new(big.Int).Set(v)
		}
	}
	for _, in := range p.Instrs {
		switch in.Op {
		case OpSet:
			regs[in.Dst] = big.NewInt(in.K)
		case OpAdd:
			regs[in.Dst] = new(big.Int).Add(regs[in.Src1], regs[in.Src2])
		case OpMul:
			regs[in.Dst] = new(big.Int).Mul(regs[in.Src1], regs[in.Src2])
		case OpCopy:
			regs[in.Dst] = new(big.Int).Set(regs[in.Src1])
		}
		note(regs[in.Dst])
	}
	return new(big.Int).Set(regs[p.Output]), maxVal, nil
}

// SquaringProgram returns the k-squaring program R := 2; R := R² (×k),
// computing 2^(2^k) with k+1 instructions: the canonical witness that
// short programs compute doubly-exponential values.
func SquaringProgram(k int) Program {
	instrs := []Instr{{Op: OpSet, Dst: "R", K: 2}}
	for i := 0; i < k; i++ {
		instrs = append(instrs, Instr{Op: OpMul, Dst: "R", Src1: "R", Src2: "R"})
	}
	return Program{Instrs: instrs, Output: "R"}
}

// TowerValue returns 2^(2^k) exactly.
func TowerValue(k int) *big.Int {
	exp := new(big.Int).Lsh(big.NewInt(1), uint(k)) // 2^k
	return new(big.Int).Exp(big.NewInt(2), exp, nil)
}

// TowerValueInt64 returns 2^(2^k) when it fits an int64 (k ≤ 5).
func TowerValueInt64(k int) (int64, error) {
	if k > 5 {
		return 0, fmt.Errorf("machine: 2^(2^%d) exceeds int64", k)
	}
	return TowerValue(k).Int64(), nil
}
