package shard

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"time"

	"repro/internal/faultfs"
)

// ErrQueueIO marks a queue-directory operation that still failed
// after the bounded transient-error retry budget: the filesystem is
// not merely hiccuping, and the dispatcher gives up rather than
// spinning. ppsweep maps it to its own exit code so operators can
// tell "queue storage is broken" from "a shard's work failed".
var ErrQueueIO = errors.New("shard: queue I/O failed after retries")

// queueEnv bundles what every queue-directory touch needs: the
// (injectable) filesystem seam, the transient-retry policy, and the
// degradation counters. One env serves one Dispatch or RunResumable
// call; counters are only touched from its goroutine.
type queueEnv struct {
	fsys     faultfs.FS
	attempts int           // total tries per operation, >= 1
	base     time.Duration // first backoff; doubles up to cap
	cap      time.Duration
	rng      uint64 // splitmix64 state for jitter
	counters *Counters
}

func newQueueEnv(fsys faultfs.FS, attempts int, base time.Duration, c *Counters) *queueEnv {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if attempts <= 0 {
		attempts = 5
	}
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if c == nil {
		c = &Counters{}
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return &queueEnv{
		fsys:     fsys,
		attempts: attempts,
		base:     base,
		cap:      1024 * base,
		rng:      binary.LittleEndian.Uint64(seed[:]),
		counters: c,
	}
}

func (e *queueEnv) splitmix() uint64 {
	e.rng += 0x9e3779b97f4a7c15
	z := e.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b5b9
	z = (z ^ (z >> 27)) * 0x94d35a2d9c2c2a49
	return z ^ (z >> 31)
}

// jitter draws a full-jitter delay: uniform in [0, d), floored at 1ms
// so exhausted-entropy draws cannot busy-spin.
func (e *queueEnv) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Millisecond
	}
	j := time.Duration(e.splitmix() % uint64(d))
	if j < time.Millisecond {
		j = time.Millisecond
	}
	return j
}

// sleep waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retry runs f, absorbing transient errors (faultfs.Transient) with
// exponential backoff plus full jitter, up to the attempt budget.
// Permanent errors return immediately; an exhausted budget returns
// the last error wrapped in ErrQueueIO.
func (e *queueEnv) retry(ctx context.Context, op string, f func() error) error {
	delay := e.base
	for attempt := 1; ; attempt++ {
		err := f()
		if err == nil || !faultfs.Transient(err) {
			return err
		}
		if attempt >= e.attempts {
			return fmt.Errorf("%w: %s: %w", ErrQueueIO, op, err)
		}
		e.counters.Retries++
		if serr := sleepCtx(ctx, e.jitter(delay)); serr != nil {
			return serr
		}
		if delay < e.cap {
			delay *= 2
		}
	}
}

// writeSealedRetry seals v and publishes it atomically, retrying
// transient failures of each step as one unit (a retried rename whose
// first attempt actually succeeded is idempotent: same temp content,
// same target).
func (e *queueEnv) writeSealedRetry(ctx context.Context, path string, v sealable) error {
	data, err := sealJSON(v)
	if err != nil {
		return err
	}
	return e.retry(ctx, "write "+filepath.Base(path), func() error {
		return faultfs.AtomicWrite(e.fsys, path, data)
	})
}

// readRetry reads path with transient-retry; a missing file is
// returned as (nil, nil) — absence is a normal queue state, not an
// error.
func (e *queueEnv) readRetry(ctx context.Context, path string) ([]byte, error) {
	var data []byte
	err := e.retry(ctx, "read "+filepath.Base(path), func() error {
		var rerr error
		data, rerr = e.fsys.ReadFile(path)
		if rerr != nil && errors.Is(rerr, fs.ErrNotExist) {
			data = nil
			return nil
		}
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// existsRetry stats path with transient-retry.
func (e *queueEnv) existsRetry(ctx context.Context, path string) (bool, error) {
	var found bool
	err := e.retry(ctx, "stat "+filepath.Base(path), func() error {
		_, serr := e.fsys.Stat(path)
		if serr == nil {
			found = true
			return nil
		}
		if errors.Is(serr, fs.ErrNotExist) {
			found = false
			return nil
		}
		return serr
	})
	return found, err
}

// CorruptDir is the quarantine subdirectory corrupt artifacts are
// moved to, next to the files they were found among (the queue
// directory for part-*.json, the partials directory for cell
// partials). Each quarantined file gains a sibling
// "<name>.reason" explaining why it was pulled.
func CorruptDir(dir string) string { return filepath.Join(dir, "corrupt") }

// quarantine moves the corrupt file at path into its directory's
// corrupt/ subdirectory with a reason file, so the cell or shard is
// recomputed instead of merged — and never re-read in a loop, because
// the move removes it from the queue's namespace while preserving the
// evidence for operators. Name collisions (the same artifact
// quarantined across attempts) get a numeric suffix.
func (e *queueEnv) quarantine(ctx context.Context, path, reason string) error {
	qdir := CorruptDir(filepath.Dir(path))
	if err := e.retry(ctx, "mkdir corrupt/", func() error {
		return e.fsys.MkdirAll(qdir, 0o755)
	}); err != nil {
		return err
	}
	base := filepath.Base(path)
	dst := filepath.Join(qdir, base)
	for i := 2; ; i++ {
		taken, err := e.existsRetry(ctx, dst)
		if err != nil {
			return err
		}
		if !taken {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	err := e.retry(ctx, "quarantine "+base, func() error {
		rerr := e.fsys.Rename(path, dst)
		if rerr != nil && errors.Is(rerr, fs.ErrNotExist) {
			// A racing dispatcher quarantined (or re-published) it first.
			return nil
		}
		return rerr
	})
	if err != nil {
		return err
	}
	// The reason file is evidence, not protocol state: best effort.
	_ = e.fsys.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	e.counters.Quarantined++
	log.Printf("shard: quarantined %s: %s", dst, reason)
	return nil
}
