package shard

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/hostmeta"
	"repro/internal/sim"
)

// Lease is one shard's ownership record in the dispatch directory: who
// is executing it, which attempt this is, and when the owner last
// proved it was alive. Leases are advisory — execution is idempotent
// (positional seeds, atomic artifact writes), so a lost lease race
// wastes work but can never corrupt results.
type Lease struct {
	Schema int `json:"schema"`
	// Shard is the shard id the lease covers.
	Shard string `json:"shard"`
	// Token is a random per-acquisition value: ownership is proven by
	// writing the lease and reading one's own token back, never by
	// host/PID (which can recur across reboots).
	Token string `json:"token"`
	// Attempt counts acquisitions of this shard, including steals; it
	// is how per-shard retry caps survive across dispatcher processes.
	Attempt int `json:"attempt"`
	// Seq is the monotonic heartbeat sequence number: the owner
	// increments it on every refresh, and liveness is judged by
	// whether Seq advances — observed against the *scanner's own*
	// clock — never by comparing wall-clock stamps across hosts. A
	// lease whose (Token, Seq) has not changed for LeaseTTL of the
	// observer's local time is expired, however skewed the hosts'
	// clocks are.
	Seq int64 `json:"seq"`
	// Owner identifies the worker process for operators (hostname,
	// PID, start time, build); the protocol itself only trusts Token.
	Owner hostmeta.Process `json:"owner"`
	// AcquiredAt / HeartbeatAt are wall-clock stamps from the owner's
	// host — operator telemetry only, since cross-host wall clocks
	// may be skewed; expiry decisions use Seq observation instead.
	AcquiredAt  time.Time `json:"acquired_at"`
	HeartbeatAt time.Time `json:"heartbeat_at"`
	// Checksum is the content checksum over the lease document's
	// canonical form. A lease that fails verification cannot prove
	// liveness and is treated as expired with an unknown attempt
	// count.
	Checksum string `json:"checksum,omitempty"`
}

// DispatchOptions configures one dispatcher process.
type DispatchOptions struct {
	// Dir is the shared queue directory (local path, NFS mount, fuse
	// bucket — anything with atomic rename and link semantics). It
	// holds lease-<shard>.json, part-<shard>.json (completed
	// artifacts), failed-<shard>.json (terminal markers), a
	// partials/ subdirectory of per-cell resume artifacts shared
	// across attempts, and corrupt/ quarantine subdirectories.
	Dir string
	// Workers bounds each cell's trial pool (0 = GOMAXPROCS).
	Workers int
	// LeaseTTL is how long a lease's (token, seq) pair must be
	// observed unchanged — on the observer's own clock — before any
	// dispatcher may steal the shard. Zero means 1 minute. It bounds
	// how long a dead worker's shard sits idle, and unlike a
	// wall-clock stamp comparison it is immune to cross-host clock
	// skew.
	LeaseTTL time.Duration
	// Heartbeat is the owner's lease-refresh period. Zero means
	// LeaseTTL/4.
	Heartbeat time.Duration
	// MaxAttempts caps acquisitions per shard: a shard whose lease
	// expires on its MaxAttempts-th attempt is marked terminally
	// failed instead of redispatched. Zero means 3.
	MaxAttempts int
	// Poll is the *initial* wait between queue scans when every open
	// shard is leased elsewhere; consecutive idle scans back off
	// exponentially (full jitter) up to PollMax, so large idle fleets
	// don't hammer one directory in lockstep. Zero means 500ms.
	Poll time.Duration
	// PollMax caps the idle-scan backoff. Zero means 8×Poll.
	PollMax time.Duration
	// RetryAttempts bounds per-operation retries of transient queue
	// I/O errors (ESTALE, EINTR, EIO, …). Zero means 5; exhaustion
	// surfaces as ErrQueueIO.
	RetryAttempts int
	// RetryBase is the first transient-retry backoff (exponential,
	// full jitter). Zero means 20ms.
	RetryBase time.Duration
	// FS is the filesystem-and-clock seam queue operations go
	// through. Nil means the real OS; chaos tests and the CI drill
	// inject a faultfs.Faulty with a seeded schedule here.
	FS faultfs.FS
	// FailAfterCells > 0 injects a worker death for tests and CI
	// drills: the first shard this process acquires fails after
	// persisting that many fresh cells, leaving its lease to expire
	// and its partials for the next attempt, exactly like a SIGKILL.
	FailAfterCells int
	// Stop is the anytime sequential-stopping rule. When enabled, each
	// acquired shard skips cells whose point already satisfies the rule
	// on its folded prefix (Counters.CellsStopped counts them); the
	// skip is an optimization only — MergePartial truncates at the same
	// canonical boundary either way.
	Stop sim.StopRule
	// Sink, when non-nil, receives every cell this process contributes
	// (loaded or computed) the moment it lands, for streaming
	// consumers.
	Sink sim.CellSink
}

func (o DispatchOptions) withDefaults() DispatchOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = time.Minute
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 4
	}
	if o.Heartbeat <= 0 { // sub-4ns TTLs in steal tests
		o.Heartbeat = time.Millisecond
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.PollMax <= 0 {
		o.PollMax = 8 * o.Poll
	}
	return o
}

// DonePath, LeasePath, FailedPath and PartialsDir name the queue
// directory's per-shard files; exported so CLI layers and tests agree
// with the dispatcher on layout.
func DonePath(dir, shardID string) string   { return filepath.Join(dir, "part-"+shardID+".json") }
func LeasePath(dir, shardID string) string  { return filepath.Join(dir, "lease-"+shardID+".json") }
func FailedPath(dir, shardID string) string { return filepath.Join(dir, "failed-"+shardID+".json") }
func PartialsDir(dir string) string         { return filepath.Join(dir, "partials") }

// ErrShardsFailed marks shards that exhausted their attempt cap: the
// work itself keeps dying, as opposed to the queue storage misbehaving
// (ErrQueueIO) or the dispatcher being cancelled. ppsweep maps the
// three to distinct exit codes.
var ErrShardsFailed = errors.New("shard: terminal shard failure")

// DispatchResult reports what one dispatcher process did: the shards
// it completed and the degradation counters (steals, transient
// retries, quarantined artifacts, cell provenance) operators read to
// see how hard the fleet fought the filesystem. It is returned even
// alongside an error, so a failed dispatch still surfaces its
// counters.
type DispatchResult struct {
	Completed []string `json:"completed"`
	Counters  Counters `json:"counters"`
}

// Dispatch runs one worker of a shared-directory shard queue: it scans
// the manifest's shards, leases open ones (oldest first), executes
// them resumably, and keeps scanning until every shard has a completed
// artifact — including shards other dispatchers are finishing — or a
// shard fails terminally. Run one Dispatch per host against a shared
// Dir and the fleet drains the plan with straggler retry and
// crash resume; run it alone and it degrades to a sequential sweep.
//
// The protocol is lease files with heartbeats: acquisition is an
// atomic link (first writer wins), liveness is a monotonically
// increasing heartbeat sequence number, and a lease whose (token,
// seq) the scanner has observed unchanged for LeaseTTL of its own
// local time may be stolen, incrementing the attempt count — wall
// clocks never cross hosts, so skew cannot cause premature steals or
// immortal leases. A stolen-from worker notices the foreign token at
// its next heartbeat and cancels itself. Steal races are benign by
// construction: every execution of a shard produces bit-identical
// statistics (positional seeds) and every artifact write is an atomic
// rename of a complete fsynced document, so the worst case is
// duplicated work. A shard whose lease expires on attempt MaxAttempts
// is marked terminally failed (failed-<shard>.json) and Dispatch
// reports it (ErrShardsFailed) rather than retrying forever.
//
// Every artifact read verifies the content checksum: a corrupt or
// truncated part-*.json or cell partial is quarantined into corrupt/
// with a reason file and its shard or cell re-executed — never
// silently merged, and never re-read in a loop, because quarantining
// removes it from the queue's namespace. Transient I/O errors
// (ESTALE, EINTR, EIO, …) are absorbed by bounded exponential backoff
// with full jitter; only after RetryAttempts does the dispatcher give
// up with ErrQueueIO.
//
// After Dispatch returns a nil error, every shard of the manifest has
// a verified part-<shard>.json in Dir and CollectArtifacts + Merge
// yield the sweep result, bit-identical to the single-process Sweep.
func Dispatch(ctx context.Context, m *Manifest, opts DispatchOptions) (*DispatchResult, error) {
	res := &DispatchResult{}
	if err := m.Validate(); err != nil {
		return res, err
	}
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return res, errors.New("shard: dispatch needs a queue directory")
	}
	env := newQueueEnv(opts.FS, opts.RetryAttempts, opts.RetryBase, &res.Counters)
	if err := env.retry(ctx, "mkdir queue", func() error {
		return env.fsys.MkdirAll(PartialsDir(opts.Dir), 0o755)
	}); err != nil {
		return res, err
	}
	d := &dispatcher{
		m:        m,
		opts:     opts,
		proc:     hostmeta.CollectProcess(),
		env:      env,
		obs:      make(map[string]leaseObs),
		verified: make(map[string]bool),
		done:     make(map[string]bool),
	}
	idle := 0
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		open, failed := 0, []string{}
		ranOne := false
		for i := range m.Shards {
			id := m.Shards[i].ID
			doneOK, err := d.doneVerified(ctx, id)
			if err != nil {
				return res, err
			}
			if doneOK {
				continue
			}
			failedHere, err := d.env.existsRetry(ctx, FailedPath(opts.Dir, id))
			if err != nil {
				return res, err
			}
			if failedHere {
				failed = append(failed, id)
				continue
			}
			open++
			lease, state, err := d.tryAcquire(ctx, id)
			if err != nil {
				return res, err
			}
			switch state {
			case leaseBusy:
				continue
			case leaseFailed:
				failed = append(failed, id)
				open--
				continue
			}
			if err := d.runShard(ctx, id, lease); err != nil {
				// Leave the lease in place: it expires and the shard is
				// retried (capped) by whoever scans next — including this
				// process, unless the error is fatal to it.
				return res, err
			}
			if !d.done[id] {
				d.done[id] = true
				res.Completed = append(res.Completed, id)
			}
			ranOne = true
		}
		if open == 0 {
			if len(failed) > 0 {
				sort.Strings(failed)
				return res, fmt.Errorf("%w: %d shard(s) failed terminally after attempt cap %d: %v",
					ErrShardsFailed, len(failed), opts.MaxAttempts, failed)
			}
			return res, nil
		}
		if ranOne {
			idle = 0
			continue
		}
		// Every open shard is leased by a live peer (or cooling toward
		// expiry) — back off exponentially with full jitter before
		// rescanning, so an idle fleet's scans decorrelate instead of
		// hammering the directory in lockstep.
		window := opts.Poll << idle
		if window > opts.PollMax || window <= 0 {
			window = opts.PollMax
		}
		if idle < 30 {
			idle++
		}
		if err := sleepCtx(ctx, env.jitter(window)); err != nil {
			return res, err
		}
	}
}

// CollectArtifacts loads every shard's completed artifact from a
// drained queue directory, in manifest order, ready for Merge. Each
// artifact's content checksum is verified on read.
func CollectArtifacts(dir string, m *Manifest) ([]*Artifact, error) {
	arts := make([]*Artifact, 0, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		a, err := ReadArtifact(DonePath(dir, id))
		if err != nil {
			return nil, fmt.Errorf("shard: collecting %s: %w", id, err)
		}
		arts = append(arts, a)
	}
	return arts, nil
}

type leaseState int

const (
	leaseAcquired leaseState = iota
	leaseBusy
	leaseFailed
)

// leaseObs is one scanner's memory of a lease: the (token, seq) pair
// it last saw and when — on its own clock — it first saw that pair.
// Liveness is "the pair changed"; expiry is "the pair sat still for
// LeaseTTL of my time".
type leaseObs struct {
	token string
	seq   int64
	since time.Time
}

type dispatcher struct {
	m    *Manifest
	opts DispatchOptions
	proc hostmeta.Process
	env  *queueEnv
	// obs tracks foreign leases for skew-free expiry.
	obs map[string]leaseObs
	// verified caches done-artifact integrity checks (one read per
	// shard per dispatcher, not per scan).
	verified map[string]bool
	// done dedupes the Completed list across re-runs of a shard whose
	// first artifact was quarantined.
	done map[string]bool
}

// doneVerified reports whether the shard has a completed artifact
// that passes integrity verification. A corrupt done artifact is
// quarantined — the shard becomes open again and is re-executed —
// which is what makes a torn part-*.json self-healing instead of
// silently merged or fatally wedging the fleet.
func (d *dispatcher) doneVerified(ctx context.Context, shardID string) (bool, error) {
	if d.verified[shardID] {
		return true, nil
	}
	path := DonePath(d.opts.Dir, shardID)
	data, err := d.env.readRetry(ctx, path)
	if err != nil {
		return false, err
	}
	if data == nil {
		return false, nil
	}
	a, derr := decodeArtifact(data, path)
	var corrupt *corruptError
	if derr == nil && a.Shard.ID != shardID {
		derr = &corruptError{reason: fmt.Sprintf("%s: artifact is for shard %q", path, a.Shard.ID)}
	}
	if errors.As(derr, &corrupt) {
		if qerr := d.env.quarantine(ctx, path, corrupt.reason); qerr != nil {
			return false, qerr
		}
		return false, nil
	}
	if derr != nil {
		return false, derr
	}
	if !reflect.DeepEqual(a.Sweep, d.m.Sweep) {
		return false, fmt.Errorf("shard: %s belongs to a different sweep (queue dir shared between plans?)", path)
	}
	d.verified[shardID] = true
	return true, nil
}

// tryAcquire claims the shard's lease: fresh creation via atomic link
// (first writer wins), or a steal of a lease whose heartbeat sequence
// number this dispatcher has observed unchanged for LeaseTTL of local
// time, via atomic rename plus token read-back (last writer wins,
// losers see a foreign token). An expired lease already at the
// attempt cap is promoted to a terminal failed marker instead.
func (d *dispatcher) tryAcquire(ctx context.Context, shardID string) (Lease, leaseState, error) {
	path := LeasePath(d.opts.Dir, shardID)
	now := d.env.fsys.Now().UTC()
	lease := Lease{
		Schema:      ManifestSchema,
		Shard:       shardID,
		Token:       newToken(),
		Attempt:     1,
		Owner:       d.proc,
		AcquiredAt:  now,
		HeartbeatAt: now,
	}
	created, err := d.linkNew(ctx, path, &lease)
	if err != nil {
		return Lease{}, leaseBusy, err
	}
	if created {
		delete(d.obs, shardID)
		return lease, leaseAcquired, nil
	}
	// Contested: inspect the incumbent.
	data, err := d.env.readRetry(ctx, path)
	if err != nil {
		return Lease{}, leaseBusy, err
	}
	if data == nil {
		// Released between our link attempt and read — next scan gets it.
		return Lease{}, leaseBusy, nil
	}
	old, intact := decodeLease(data)
	if intact {
		prev, seen := d.obs[shardID]
		if !seen || prev.token != old.Token || prev.seq != old.Seq {
			// First sighting of this (token, seq): start the local
			// expiry clock. Wall-clock stamps in the lease are never
			// compared — a skewed owner ages out exactly like a dead one.
			d.obs[shardID] = leaseObs{token: old.Token, seq: old.Seq, since: d.env.fsys.Now()}
			return Lease{}, leaseBusy, nil
		}
		if d.env.fsys.Now().Sub(prev.since) < d.opts.LeaseTTL {
			return Lease{}, leaseBusy, nil
		}
		// Observed frozen for a full TTL: expired.
	} else {
		// A corrupt lease cannot prove liveness; treat as expired with
		// an unknown attempt count of 0. Benign if the owner lives: it
		// rewrites the lease on its next heartbeat, and duplicated work
		// merges bit-identically anyway.
		old = Lease{Shard: shardID}
	}
	if old.Attempt >= d.opts.MaxAttempts {
		// Expired on its last permitted attempt: terminal. The marker
		// write is idempotent (atomic rename of identical semantics from
		// racing dispatchers).
		if err := d.env.writeSealedRetry(ctx, FailedPath(d.opts.Dir, shardID), &old); err != nil {
			return Lease{}, leaseBusy, err
		}
		return Lease{}, leaseFailed, nil
	}
	lease.Attempt = old.Attempt + 1
	if err := d.env.writeSealedRetry(ctx, path, &lease); err != nil {
		return Lease{}, leaseBusy, err
	}
	// Read back: of N racing stealers the last rename wins; exactly one
	// sees its own token.
	data, err = d.env.readRetry(ctx, path)
	if err != nil {
		return Lease{}, leaseBusy, err
	}
	if data == nil {
		// Our steal lost to a racing release's check-then-remove (the
		// incumbent finished after all) or another steal's cleanup —
		// benign, the next scan finds the done artifact or a fresh lease.
		return Lease{}, leaseBusy, nil
	}
	if current, ok := decodeLease(data); !ok || current.Token != lease.Token {
		return Lease{}, leaseBusy, nil
	}
	d.env.counters.Steals++
	delete(d.obs, shardID)
	return lease, leaseAcquired, nil
}

// runShard executes one leased shard resumably while heartbeating the
// lease, then publishes the artifact and releases the lease. An
// execution error leaves the lease to expire so the shard is retried
// under the attempt cap.
func (d *dispatcher) runShard(ctx context.Context, shardID string, lease Lease) error {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.heartbeat(shardCtx, stop, shardID, lease, cancel)
	}()
	art, err := runResumable(shardCtx, d.m, shardID, d.opts.Workers, PartialsDir(d.opts.Dir), d.opts.FailAfterCells, d.env, d.opts.Stop, d.opts.Sink)
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	if err := d.env.writeSealedRetry(ctx, DonePath(d.opts.Dir, shardID), art); err != nil {
		return err
	}
	d.release(ctx, shardID, lease.Token)
	return nil
}

// heartbeat refreshes the lease every Heartbeat period, incrementing
// the monotonic Seq that scanners watch for liveness (the wall-clock
// stamp is refreshed too, for operators). If the lease no longer
// carries our token — a peer presumed us dead and stole the shard —
// the in-flight execution is cancelled: the thief owns the shard now,
// and idempotent artifacts make our partial progress its head start
// rather than a hazard.
func (d *dispatcher) heartbeat(ctx context.Context, stop <-chan struct{}, shardID string, lease Lease, cancel context.CancelFunc) {
	path := LeasePath(d.opts.Dir, shardID)
	ticker := time.NewTicker(d.opts.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			if data, err := d.env.fsys.ReadFile(path); err == nil {
				if current, ok := decodeLease(data); ok && current.Token != lease.Token {
					cancel()
					return
				}
			}
			lease.Seq++
			lease.HeartbeatAt = d.env.fsys.Now().UTC()
			// Best effort: a failed beat only freezes Seq, aging the
			// lease toward stealability — the intended failure mode.
			if data, err := sealJSON(&lease); err == nil {
				_ = faultfs.AtomicWrite(d.env.fsys, path, data)
			}
		}
	}
}

// release removes the lease if it is still ours; losing this race is
// fine (the new owner will find the done artifact and move on).
func (d *dispatcher) release(ctx context.Context, shardID, token string) {
	path := LeasePath(d.opts.Dir, shardID)
	data, err := d.env.readRetry(ctx, path)
	if err != nil || data == nil {
		return
	}
	if current, ok := decodeLease(data); ok && current.Token == token {
		_ = d.env.fsys.Remove(path)
	}
}

// decodeLease parses and integrity-checks a lease document. ok=false
// means the lease is corrupt (unparseable or checksum-mismatched) and
// cannot prove liveness; pre-checksum leases verify by schema alone.
func decodeLease(data []byte) (Lease, bool) {
	var l Lease
	if _, err := verifyDoc(data, "lease"); err != nil {
		return l, false
	}
	if err := json.Unmarshal(data, &l); err != nil {
		return l, false
	}
	return l, true
}

// linkNew atomically creates path with the sealed lease iff it does
// not already exist, via a unique temp file and an atomic link — the
// content is complete (and fsynced) before the name appears, unlike
// O_CREATE|O_EXCL plus write, whose readers can observe a
// half-written lease. An EEXIST after a transient-retry is reported
// as "lost the race" even if our own earlier attempt's link actually
// landed before its ack was lost (classic NFS): that orphan lease
// never heartbeats and is stolen after TTL, costing one attempt,
// never correctness.
func (d *dispatcher) linkNew(ctx context.Context, path string, lease *Lease) (created bool, err error) {
	data, err := sealJSON(lease)
	if err != nil {
		return false, err
	}
	tmp := faultfs.TmpName(path)
	defer d.env.fsys.Remove(tmp)
	err = d.env.retry(ctx, "acquire lease", func() error {
		if werr := d.env.fsys.WriteFileSync(tmp, data, 0o644); werr != nil {
			return werr
		}
		lerr := d.env.fsys.Link(tmp, path)
		switch {
		case lerr == nil:
			created = true
			return d.env.fsys.SyncDir(filepath.Dir(path))
		case errors.Is(lerr, fs.ErrExist):
			created = false
			return nil
		default:
			return lerr
		}
	})
	if err != nil {
		return false, err
	}
	return created, nil
}

// fileExists is a test/CLI convenience over the real filesystem.
func fileExists(path string) bool {
	_, err := faultfs.OS().Stat(path)
	return err == nil
}

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}
