package shard

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/hostmeta"
)

// Lease is one shard's ownership record in the dispatch directory: who
// is executing it, which attempt this is, and when the owner last
// proved it was alive. Leases are advisory — execution is idempotent
// (positional seeds, atomic artifact writes), so a lost lease race
// wastes work but can never corrupt results.
type Lease struct {
	Schema int `json:"schema"`
	// Shard is the shard id the lease covers.
	Shard string `json:"shard"`
	// Token is a random per-acquisition value: ownership is proven by
	// writing the lease and reading one's own token back, never by
	// host/PID (which can recur across reboots).
	Token string `json:"token"`
	// Attempt counts acquisitions of this shard, including steals; it
	// is how per-shard retry caps survive across dispatcher processes.
	Attempt int `json:"attempt"`
	// Owner identifies the worker process for operators (hostname,
	// PID, build); the protocol itself only trusts Token.
	Owner hostmeta.Process `json:"owner"`
	// AcquiredAt / HeartbeatAt are wall-clock stamps from the owner's
	// host. Expiry compares HeartbeatAt against the local clock, so
	// LeaseTTL must comfortably exceed cross-host clock skew.
	AcquiredAt  time.Time `json:"acquired_at"`
	HeartbeatAt time.Time `json:"heartbeat_at"`
}

// DispatchOptions configures one dispatcher process.
type DispatchOptions struct {
	// Dir is the shared queue directory (local path, NFS mount, fuse
	// bucket — anything with atomic rename and link semantics). It
	// holds lease-<shard>.json, part-<shard>.json (completed
	// artifacts), failed-<shard>.json (terminal markers) and a
	// partials/ subdirectory of per-cell resume artifacts shared
	// across attempts.
	Dir string
	// Workers bounds each cell's trial pool (0 = GOMAXPROCS).
	Workers int
	// LeaseTTL is how stale a lease's heartbeat may be before any
	// dispatcher may steal the shard. Zero means 1 minute.
	LeaseTTL time.Duration
	// Heartbeat is the owner's lease-refresh period. Zero means
	// LeaseTTL/4.
	Heartbeat time.Duration
	// MaxAttempts caps acquisitions per shard: a shard whose lease
	// expires on its MaxAttempts-th attempt is marked terminally
	// failed instead of redispatched. Zero means 3.
	MaxAttempts int
	// Poll is how long to wait between queue scans when every open
	// shard is leased elsewhere. Zero means 500ms.
	Poll time.Duration
	// FailAfterCells > 0 injects a worker death for tests and CI
	// drills: the first shard this process acquires fails after
	// persisting that many fresh cells, leaving its lease to expire
	// and its partials for the next attempt, exactly like a SIGKILL.
	FailAfterCells int
}

func (o DispatchOptions) withDefaults() DispatchOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = time.Minute
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 4
	}
	if o.Heartbeat <= 0 { // sub-4ns TTLs in steal tests
		o.Heartbeat = time.Millisecond
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	return o
}

// DonePath, LeasePath, FailedPath and PartialsDir name the queue
// directory's per-shard files; exported so CLI layers and tests agree
// with the dispatcher on layout.
func DonePath(dir, shardID string) string   { return filepath.Join(dir, "part-"+shardID+".json") }
func LeasePath(dir, shardID string) string  { return filepath.Join(dir, "lease-"+shardID+".json") }
func FailedPath(dir, shardID string) string { return filepath.Join(dir, "failed-"+shardID+".json") }
func PartialsDir(dir string) string         { return filepath.Join(dir, "partials") }

// Dispatch runs one worker of a shared-directory shard queue: it scans
// the manifest's shards, leases open ones (oldest first), executes
// them resumably, and keeps scanning until every shard has a completed
// artifact — including shards other dispatchers are finishing — or a
// shard fails terminally. Run one Dispatch per host against a shared
// Dir and the fleet drains the plan with straggler retry and
// crash resume; run it alone and it degrades to a sequential sweep.
//
// The protocol is lease files with heartbeats: acquisition is an
// atomic link (first writer wins), liveness is a periodically
// refreshed heartbeat stamp, and a lease whose heartbeat is older
// than LeaseTTL may be stolen by any dispatcher, incrementing the
// attempt count. A stolen-from worker notices the foreign token at
// its next heartbeat and cancels itself. Steal races are benign by
// construction: every execution of a shard produces bit-identical
// statistics (positional seeds) and every artifact write is an atomic
// rename of a complete document, so the worst case is duplicated work.
// A shard whose lease expires on attempt MaxAttempts is marked
// terminally failed (failed-<shard>.json) and Dispatch reports it
// rather than retrying forever.
//
// Dispatch returns the ids of the shards this process completed.
// After it returns nil, every shard of the manifest has a
// part-<shard>.json in Dir and CollectArtifacts + Merge yield the
// sweep result, bit-identical to the single-process Sweep.
func Dispatch(ctx context.Context, m *Manifest, opts DispatchOptions) ([]string, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("shard: dispatch needs a queue directory")
	}
	if err := os.MkdirAll(PartialsDir(opts.Dir), 0o755); err != nil {
		return nil, err
	}
	d := &dispatcher{m: m, opts: opts, proc: hostmeta.CollectProcess()}
	var completed []string
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		open, failed := 0, []string{}
		ranOne := false
		for i := range m.Shards {
			id := m.Shards[i].ID
			if fileExists(DonePath(opts.Dir, id)) {
				continue
			}
			if fileExists(FailedPath(opts.Dir, id)) {
				failed = append(failed, id)
				continue
			}
			open++
			lease, state, err := d.tryAcquire(id)
			if err != nil {
				return completed, err
			}
			switch state {
			case leaseBusy:
				continue
			case leaseFailed:
				failed = append(failed, id)
				open--
				continue
			}
			if err := d.runShard(ctx, id, lease); err != nil {
				// Leave the lease in place: it expires and the shard is
				// retried (capped) by whoever scans next — including this
				// process, unless the error is fatal to it.
				return completed, err
			}
			completed = append(completed, id)
			ranOne = true
		}
		if open == 0 {
			if len(failed) > 0 {
				sort.Strings(failed)
				return completed, fmt.Errorf("shard: %d shard(s) failed terminally after attempt cap %d: %v",
					len(failed), opts.MaxAttempts, failed)
			}
			return completed, nil
		}
		if !ranOne {
			// Every open shard is leased by a live peer (or cooling toward
			// expiry) — wait before rescanning.
			select {
			case <-ctx.Done():
				return completed, ctx.Err()
			case <-time.After(opts.Poll):
			}
		}
	}
}

// CollectArtifacts loads every shard's completed artifact from a
// drained queue directory, in manifest order, ready for Merge.
func CollectArtifacts(dir string, m *Manifest) ([]*Artifact, error) {
	arts := make([]*Artifact, 0, len(m.Shards))
	for i := range m.Shards {
		id := m.Shards[i].ID
		data, err := os.ReadFile(DonePath(dir, id))
		if err != nil {
			return nil, fmt.Errorf("shard: collecting %s: %w", id, err)
		}
		var a Artifact
		if err := json.Unmarshal(data, &a); err != nil {
			return nil, fmt.Errorf("shard: collecting %s: %w", id, err)
		}
		arts = append(arts, &a)
	}
	return arts, nil
}

type leaseState int

const (
	leaseAcquired leaseState = iota
	leaseBusy
	leaseFailed
)

type dispatcher struct {
	m    *Manifest
	opts DispatchOptions
	proc hostmeta.Process
}

// tryAcquire claims the shard's lease: fresh creation via atomic link
// (first writer wins), or a steal of an expired lease via atomic
// rename plus token read-back (last writer wins, losers see a foreign
// token). An expired lease already at the attempt cap is promoted to
// a terminal failed marker instead.
func (d *dispatcher) tryAcquire(shardID string) (Lease, leaseState, error) {
	path := LeasePath(d.opts.Dir, shardID)
	now := time.Now().UTC()
	lease := Lease{
		Schema:      ManifestSchema,
		Shard:       shardID,
		Token:       newToken(),
		Attempt:     1,
		Owner:       d.proc,
		AcquiredAt:  now,
		HeartbeatAt: now,
	}
	created, err := linkNew(path, lease)
	if err != nil {
		return Lease{}, leaseBusy, err
	}
	if created {
		return lease, leaseAcquired, nil
	}
	// Contested: inspect the incumbent.
	var old Lease
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Released between our link attempt and read — next scan gets it.
		return Lease{}, leaseBusy, nil
	case err != nil:
		return Lease{}, leaseBusy, err
	case json.Unmarshal(data, &old) != nil:
		// A corrupt lease cannot prove liveness; treat as expired with
		// an unknown attempt count of 0. (Lease writes are atomic, so
		// this is an operator-truncated file, not a torn write.)
		old = Lease{Shard: shardID}
	}
	if now.Sub(old.HeartbeatAt) < d.opts.LeaseTTL {
		return Lease{}, leaseBusy, nil
	}
	if old.Attempt >= d.opts.MaxAttempts {
		// Expired on its last permitted attempt: terminal. The marker
		// write is idempotent (atomic rename of identical semantics from
		// racing dispatchers).
		if err := writeJSONAtomic(FailedPath(d.opts.Dir, shardID), &old); err != nil {
			return Lease{}, leaseBusy, err
		}
		return Lease{}, leaseFailed, nil
	}
	lease.Attempt = old.Attempt + 1
	if err := writeJSONAtomic(path, &lease); err != nil {
		return Lease{}, leaseBusy, err
	}
	// Read back: of N racing stealers the last rename wins; exactly one
	// sees its own token.
	current, err := readLease(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Our steal lost to a racing release's check-then-remove (the
		// incumbent finished after all) or another steal's cleanup —
		// benign, the next scan finds the done artifact or a fresh lease.
		return Lease{}, leaseBusy, nil
	case err != nil:
		return Lease{}, leaseBusy, err
	case current.Token != lease.Token:
		return Lease{}, leaseBusy, nil
	}
	return lease, leaseAcquired, nil
}

// runShard executes one leased shard resumably while heartbeating the
// lease, then publishes the artifact and releases the lease. An
// execution error leaves the lease to expire so the shard is retried
// under the attempt cap.
func (d *dispatcher) runShard(ctx context.Context, shardID string, lease Lease) error {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.heartbeat(shardCtx, stop, shardID, lease, cancel)
	}()
	art, err := runResumable(shardCtx, d.m, shardID, d.opts.Workers, PartialsDir(d.opts.Dir), d.opts.FailAfterCells)
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	if err := writeJSONAtomic(DonePath(d.opts.Dir, shardID), art); err != nil {
		return err
	}
	d.release(shardID, lease.Token)
	return nil
}

// heartbeat refreshes the lease's HeartbeatAt every Heartbeat period.
// If the lease no longer carries our token — a peer presumed us dead
// and stole the shard — the in-flight execution is cancelled: the
// thief owns the shard now, and idempotent artifacts make our partial
// progress its head start rather than a hazard.
func (d *dispatcher) heartbeat(ctx context.Context, stop <-chan struct{}, shardID string, lease Lease, cancel context.CancelFunc) {
	path := LeasePath(d.opts.Dir, shardID)
	ticker := time.NewTicker(d.opts.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			current, err := readLease(path)
			if err == nil && current.Token != lease.Token {
				cancel()
				return
			}
			lease.HeartbeatAt = time.Now().UTC()
			// Best effort: a failed beat only ages the lease toward
			// stealability, which is the intended failure mode.
			_ = writeJSONAtomic(path, &lease)
		}
	}
}

// release removes the lease if it is still ours; losing this race is
// fine (the new owner will find the done artifact and move on).
func (d *dispatcher) release(shardID, token string) {
	path := LeasePath(d.opts.Dir, shardID)
	if current, err := readLease(path); err == nil && current.Token == token {
		_ = os.Remove(path)
	}
}

func readLease(path string) (Lease, error) {
	var l Lease
	data, err := os.ReadFile(path)
	if err != nil {
		return l, err
	}
	if err := json.Unmarshal(data, &l); err != nil {
		return l, err
	}
	return l, nil
}

// linkNew atomically creates path with v's JSON iff it does not
// already exist, via a unique temp file and os.Link — the content is
// complete before the name appears, unlike O_CREATE|O_EXCL plus
// write, whose readers can observe a half-written lease.
func linkNew(path string, v any) (created bool, err error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return false, err
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return false, err
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := os.Link(name, path); err != nil {
		if errors.Is(err, os.ErrExist) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}
