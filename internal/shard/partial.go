package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"repro/internal/faultfs"
	"repro/internal/sim"
)

// AnytimePoint is one size's result in an anytime merge: the folded
// prefix statistics plus completeness metadata. For a point whose
// every planned trial is folded and whose stop rule did not fire, the
// metadata fields are all omitted, so the point marshals byte-for-byte
// like a plain sim.SweepPoint — that is what makes the full-completion
// invariant (MergePartial over all cells == Merge, bytes) hold.
type AnytimePoint struct {
	X     int64     `json:"x"`
	Stats sim.Stats `json:"stats"`
	// TrialsDone/TrialsPlanned report completeness. They are set only
	// when the point is incomplete or stopped (TrialsPlanned > 0 marks
	// either); a complete, unstopped point omits both.
	TrialsDone    int `json:"trials_done,omitempty"`
	TrialsPlanned int `json:"trials_planned,omitempty"`
	// Stopped reports that the stop rule fired at TrialsDone: the
	// remaining planned trials are cancelled, not missing.
	Stopped bool `json:"stopped,omitempty"`
}

// Complete reports whether the point needs no further trials: every
// planned trial folded, or the stop rule fired.
func (pt *AnytimePoint) Complete() bool { return pt.TrialsPlanned == 0 || pt.Stopped }

// AnytimeMerged is the prefix-valid merge document: a Merged that
// additionally says how much of each point is in. With every cell
// present and no stop rule, it marshals byte-identically to Merged —
// the anytime path degrades to exactly today's artifact.
type AnytimeMerged struct {
	Schema int       `json:"schema"`
	Sweep  SweepSpec `json:"sweep"`
	// Partial is set when at least one point is incomplete (not
	// counting stopped points, whose remaining trials are cancelled by
	// rule, not absent by accident).
	Partial bool           `json:"partial,omitempty"`
	Points  []AnytimePoint `json:"points"`
}

// CollectPartial flattens shard artifacts and cell partials from any
// mix of sources into one cell-granularity point list, verifying they
// all belong to the same sweep and the same schema and that each
// point's accumulators cover its claimed range. The returned spec is
// the common sweep.
func CollectPartial(arts []*Artifact, cells []*CellArtifact) (SweepSpec, []PartialPoint, error) {
	var sw SweepSpec
	var have bool
	claim := func(s SweepSpec, schema int, origin string) error {
		if schema != ArtifactSchema {
			return fmt.Errorf("shard: %s has schema %d, this build understands %d", origin, schema, ArtifactSchema)
		}
		if !have {
			sw, have = s, true
			return nil
		}
		if !reflect.DeepEqual(s, sw) {
			return fmt.Errorf("shard: %s belongs to a different sweep: %+v vs %+v", origin, s, sw)
		}
		return nil
	}
	var points []PartialPoint
	for i, a := range arts {
		if err := claim(a.Sweep, a.Schema, fmt.Sprintf("artifact %d (shard %q)", i, a.Shard.ID)); err != nil {
			return SweepSpec{}, nil, err
		}
		points = append(points, a.Points...)
	}
	for i, ca := range cells {
		if err := claim(ca.Sweep, ca.Schema, fmt.Sprintf("cell partial %d (%+v)", i, ca.Cell)); err != nil {
			return SweepSpec{}, nil, err
		}
		points = append(points, PartialPoint{
			X: ca.Cell.X, TrialLo: ca.Cell.TrialLo, TrialHi: ca.Cell.TrialHi, Stats: ca.Stats,
		})
	}
	if !have {
		return SweepSpec{}, nil, errors.New("shard: nothing to merge")
	}
	return sw, points, nil
}

// MergePartial folds any subset of a sweep's cell-granularity partial
// points into a valid anytime document. Per size, it folds the
// maximal gap-free prefix of the cells in trial order (cells beyond
// the first gap wait for the gap to fill and are not folded), records
// trials_done/trials_planned, and — under an enabled rule — truncates
// the point at the first cell boundary where the rule is satisfied,
// marking it stopped and ignoring any later cells. Because the fold
// order is trial order and the truncation point is the first
// satisfying boundary, the reported document is a pure function of
// (spec, available cell set, rule): two hosts merging the same cells
// agree byte for byte, and with every cell present and no rule the
// output marshals byte-identically to Merge's.
//
// Exact duplicate cells (same size and range) are tolerated when
// their statistics agree bit for bit (the same cell computed twice by
// a re-sharded fleet) and rejected as corrupt otherwise; partially
// overlapping ranges are always an error — two plans were mixed.
func MergePartial(sw SweepSpec, points []PartialPoint, rule sim.StopRule) (*AnytimeMerged, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	rule = rule.WithDefaults()
	sizes := make(map[int64]bool, len(sw.Sizes))
	for _, x := range sw.Sizes {
		sizes[x] = true
	}
	byX := make(map[int64][]PartialPoint)
	for _, pt := range points {
		if !sizes[pt.X] {
			return nil, fmt.Errorf("shard: partial results for size %d, which the sweep does not contain", pt.X)
		}
		if pt.TrialLo < 0 || pt.TrialHi > sw.Trials || pt.TrialLo >= pt.TrialHi {
			return nil, fmt.Errorf("shard: size %d has invalid trial range [%d,%d) of %d trials",
				pt.X, pt.TrialLo, pt.TrialHi, sw.Trials)
		}
		if pt.Stats.Trials != pt.TrialHi-pt.TrialLo {
			return nil, fmt.Errorf("shard: size %d claims trials [%d,%d) but its stats aggregate %d trials",
				pt.X, pt.TrialLo, pt.TrialHi, pt.Stats.Trials)
		}
		byX[pt.X] = append(byX[pt.X], pt)
	}
	out := &AnytimeMerged{Schema: ArtifactSchema, Sweep: sw, Points: make([]AnytimePoint, 0, len(sw.Sizes))}
	for _, x := range sw.Sizes {
		parts := byX[x]
		sort.Slice(parts, func(i, j int) bool {
			if parts[i].TrialLo != parts[j].TrialLo {
				return parts[i].TrialLo < parts[j].TrialLo
			}
			return parts[i].TrialHi < parts[j].TrialHi
		})
		// Deduplicate exact-range repeats, verifying their stats agree;
		// any remaining overlap is a structural error.
		dedup := parts[:0]
		for _, pt := range parts {
			if n := len(dedup); n > 0 && dedup[n-1].TrialLo == pt.TrialLo && dedup[n-1].TrialHi == pt.TrialHi {
				if dedup[n-1].Stats != pt.Stats {
					return nil, &corruptError{reason: fmt.Sprintf(
						"size %d trials [%d,%d) delivered twice with disagreeing statistics (non-deterministic worker or bit rot)",
						pt.X, pt.TrialLo, pt.TrialHi)}
				}
				continue
			}
			dedup = append(dedup, pt)
		}
		pt := AnytimePoint{X: x}
		var prefix sim.Stats
		done := 0
		stopped := false
		for _, c := range dedup {
			if c.TrialLo < done {
				return nil, fmt.Errorf("shard: size %d trials [%d,%d) overlap an earlier range ending at %d (shard run twice, or plans mixed?)",
					x, c.TrialLo, c.TrialHi, done)
			}
			if c.TrialLo > done {
				break // gap: later cells wait for the prefix to fill
			}
			prefix.Merge(c.Stats)
			done = c.TrialHi
			if rule.Satisfied(&prefix) {
				stopped = true
				break // first satisfying boundary is the canonical stop
			}
		}
		pt.Stats = prefix
		if stopped {
			pt.TrialsDone, pt.TrialsPlanned, pt.Stopped = done, sw.Trials, true
		} else if done < sw.Trials {
			pt.TrialsDone, pt.TrialsPlanned = done, sw.Trials
			out.Partial = true
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// SealCellLine marshals one cell artifact compactly with its content
// checksum stamped: one NDJSON delta line of the /v1/sweep stream.
// The checksum is over the canonical form, so the compact line and
// the indented on-disk cell document of the same cell verify against
// the same sum.
func SealCellLine(ca *CellArtifact) ([]byte, error) {
	ca.Checksum = ""
	data, err := json.Marshal(ca)
	if err != nil {
		return nil, err
	}
	sum, err := ChecksumOf(data)
	if err != nil {
		return nil, err
	}
	ca.Checksum = sum
	return json.Marshal(ca)
}

// DecodeCellLine verifies and decodes one streamed delta line: the
// checksum must match, the schema must be known, and the statistics
// must cover the claimed trial range. It is the replay client's (and
// the stream tests') validity check for every delta.
func DecodeCellLine(data []byte) (*CellArtifact, error) {
	if _, err := verifyDoc(data, "delta"); err != nil {
		return nil, err
	}
	var ca CellArtifact
	if err := json.Unmarshal(data, &ca); err != nil {
		return nil, &corruptError{reason: fmt.Sprintf("delta: %v", err)}
	}
	if ca.Schema != ArtifactSchema {
		return nil, fmt.Errorf("delta: cell schema %d, this build understands %d", ca.Schema, ArtifactSchema)
	}
	c := ca.Cell
	if c.TrialLo < 0 || c.TrialHi <= c.TrialLo {
		return nil, &corruptError{reason: fmt.Sprintf("delta: invalid trial range [%d,%d)", c.TrialLo, c.TrialHi)}
	}
	if ca.Stats.Trials != c.TrialHi-c.TrialLo {
		return nil, &corruptError{reason: fmt.Sprintf("delta: cell claims trials [%d,%d) but its stats aggregate %d trials",
			c.TrialLo, c.TrialHi, ca.Stats.Trials)}
	}
	return &ca, nil
}

// ReadCellFile loads one cell-*.json partial on its own, outside the
// resumable runner: checksum verified, schema checked, statistics
// consistent with the claimed range. Unlike the runner's loader it
// does not compare against a plan — CollectPartial/MergePartial do
// the cross-source sweep checks.
func ReadCellFile(path string) (*CellArtifact, error) {
	data, err := faultfs.OS().ReadFile(path)
	if err != nil {
		return nil, err
	}
	if _, err := verifyDoc(data, path); err != nil {
		return nil, err
	}
	var ca CellArtifact
	if err := json.Unmarshal(data, &ca); err != nil {
		return nil, &corruptError{reason: fmt.Sprintf("%s: %v", path, err)}
	}
	if ca.Schema != ArtifactSchema {
		return nil, fmt.Errorf("%s: cell schema %d, this build understands %d", path, ca.Schema, ArtifactSchema)
	}
	if ca.Stats.Trials != ca.Cell.TrialHi-ca.Cell.TrialLo {
		return nil, &corruptError{reason: fmt.Sprintf("%s: cell claims trials [%d,%d) but its stats aggregate %d trials",
			path, ca.Cell.TrialLo, ca.Cell.TrialHi, ca.Stats.Trials)}
	}
	return &ca, nil
}

// ScanPartialDir gathers the merge inputs living under one queue or
// partials directory: finished part-*.json shard artifacts in dir
// itself, and cell-*.json partials both in dir and under its
// partials/ subdirectory (the dispatcher's layout). Corrupt or
// foreign files fail loudly — an anytime merge must degrade by
// honestly reporting less completeness, not by silently dropping data
// an operator believes is there.
func ScanPartialDir(dir string) ([]*Artifact, []*CellArtifact, error) {
	var arts []*Artifact
	var cells []*CellArtifact
	scan := func(d string, wantCells, wantParts bool) error {
		entries, err := os.ReadDir(d)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			path := filepath.Join(d, name)
			switch {
			case wantParts && strings.HasPrefix(name, "part-") && strings.HasSuffix(name, ".json"):
				a, err := ReadArtifact(path)
				if err != nil {
					return err
				}
				arts = append(arts, a)
			case wantCells && strings.HasPrefix(name, "cell-") && strings.HasSuffix(name, ".json"):
				ca, err := ReadCellFile(path)
				if err != nil {
					return err
				}
				cells = append(cells, ca)
			}
		}
		return nil
	}
	if err := scan(dir, true, true); err != nil {
		return nil, nil, err
	}
	sub := filepath.Join(dir, "partials")
	if _, err := os.Stat(sub); err == nil {
		if err := scan(sub, true, false); err != nil {
			return nil, nil, err
		}
	}
	return arts, cells, nil
}
