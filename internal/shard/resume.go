package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"

	"repro/internal/faultfs"
	"repro/internal/hostmeta"
	"repro/internal/sim"
)

// CellArtifact is the resumable runner's unit of persisted progress:
// one cell's aggregated statistics, self-describing like the shard
// Artifact (it echoes the full sweep spec, so a partials directory
// can be checked against the plan it belongs to). Cell keys
// (x, trial range) are globally unique within a plan — cells tile the
// (size × trial) grid — so partials carry no shard id and survive
// re-sharding: a cell computed under a 4-shard plan resumes a 7-shard
// plan of the same sweep.
type CellArtifact struct {
	Schema int           `json:"schema"`
	Sweep  SweepSpec     `json:"sweep"`
	Cell   Cell          `json:"cell"`
	Stats  sim.Stats     `json:"stats"`
	Host   hostmeta.Meta `json:"host"`
	// Checksum is the content checksum ("crc32c:…") over the
	// document's canonical form; absent in pre-checksum artifacts,
	// which load on schema checks alone.
	Checksum string `json:"checksum,omitempty"`
}

// cellFileName is the canonical partial file name for a cell. The
// name is a pure function of the cell so concurrent attempts at the
// same cell collide on one path and the atomic rename makes the last
// writer win with a complete document either way.
func cellFileName(c Cell) string {
	return fmt.Sprintf("cell-x%d-t%d-%d.json", c.X, c.TrialLo, c.TrialHi)
}

// WriteFileAtomic writes data to path via a uniquely named temp file
// in the same directory and an atomic rename, so concurrent readers
// (and merge/resume scans) never observe a torn file and a killed
// writer leaves no partial document behind — at worst a stray .tmp.
// The temp file and the directory are fsynced before and after the
// rename: a host crash after WriteFileAtomic returns cannot surface
// an empty or torn document on ext4/NFS.
func WriteFileAtomic(path string, data []byte) error {
	return faultfs.AtomicWrite(faultfs.OS(), path, data)
}

// writeJSONAtomic marshals v (indented, trailing newline, the
// repo-wide artifact convention) and writes it atomically. Documents
// that carry a checksum field should go through writeSealedRetry
// instead so the checksum is stamped.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// parseCell integrity-checks and decodes one cell partial document.
// Corruption — unparseable JSON, checksum mismatch, a cell that is
// not the one the file name promises, stats that do not cover the
// claimed trial range — comes back as *corruptError, telling the
// caller to quarantine and recompute (always safe: cells are pure
// functions of the sweep spec). A partial from a different sweep or
// an unknown schema stays a loud error: recomputing would mask an
// operator mixup (two plans sharing a partials dir) or a build
// mismatch until merge time or beyond.
func parseCell(data []byte, path string, sw SweepSpec, want Cell) (*CellArtifact, error) {
	if _, err := verifyDoc(data, path); err != nil {
		return nil, err
	}
	var ca CellArtifact
	if err := json.Unmarshal(data, &ca); err != nil {
		return nil, &corruptError{reason: fmt.Sprintf("%s: %v", path, err)}
	}
	if ca.Schema != ArtifactSchema {
		return nil, fmt.Errorf("%s: cell schema %d, this build understands %d", path, ca.Schema, ArtifactSchema)
	}
	if !reflect.DeepEqual(ca.Sweep, sw) {
		return nil, fmt.Errorf("%s: cell belongs to a different sweep (partials dir shared between plans?)", path)
	}
	if ca.Cell != want {
		return nil, &corruptError{reason: fmt.Sprintf("%s: cell is %+v, file name promises %+v", path, ca.Cell, want)}
	}
	if ca.Stats.Trials != want.TrialHi-want.TrialLo {
		return nil, &corruptError{reason: fmt.Sprintf("%s: cell claims trials [%d,%d) but its stats aggregate %d trials",
			path, want.TrialLo, want.TrialHi, ca.Stats.Trials)}
	}
	return &ca, nil
}

// RunResumable is Run with per-cell persistence in dir: cells whose
// partial artifacts already exist (and verify) are loaded instead of
// recomputed, and every freshly computed cell is persisted (sealed
// with a content checksum, fsynced, atomic rename) the moment it
// completes — a worker killed mid-shard loses at most the one cell in
// flight, and the next attempt (same process or a dispatcher retry on
// another host) picks up from the surviving cells. A corrupt partial
// (torn write, bit rot, checksum mismatch) is quarantined to
// corrupt/ with a reason file and its cell recomputed. Cells execute
// one at a time (trials still fan out to the worker pool) so
// persistence granularity really is one cell; the grouped multi-size
// parallelism of Run is traded away for it.
//
// Positional seeds make resumed and fresh cells bit-identical, so the
// assembled Artifact carries exactly the Points of an uninterrupted
// Run (the Host stamp is the finishing process's). The returned
// Counters report loaded/computed cells, quarantines and transient
// retries.
func RunResumable(ctx context.Context, m *Manifest, shardID string, workers int, dir string) (*Artifact, Counters, error) {
	return RunResumableStop(ctx, m, shardID, workers, dir, sim.StopRule{}, nil)
}

// RunResumableStop is RunResumable with the anytime extensions: an
// optional stop rule and an optional streaming sink. Before computing
// a cell, the runner folds the point's gap-free prefix from the
// partials directory (cells other shards persisted count too) and
// skips the cell when the rule is already satisfied at an earlier
// boundary — the skip is purely an optimization: MergePartial
// truncates at the same canonical boundary whether or not the
// post-stop cells exist, so racing workers that compute a few extra
// cells never change the reported document. sink (may be nil) fires
// once per cell the shard contributes, loaded or computed, in
// execution order.
func RunResumableStop(ctx context.Context, m *Manifest, shardID string, workers int, dir string, rule sim.StopRule, sink sim.CellSink) (*Artifact, Counters, error) {
	var c Counters
	env := newQueueEnv(nil, 0, 0, &c)
	art, err := runResumable(ctx, m, shardID, workers, dir, 0, env, rule, sink)
	return art, c, err
}

// runResumable implements RunResumable over an explicit queue
// environment (filesystem seam, retry policy, counters); failAfter >
// 0 injects a fault for kill/resume tests and the CI dispatcher
// drill: the runner returns errInjectedFailure after persisting that
// many fresh cells, leaving the partials exactly as a killed process
// would.
func runResumable(ctx context.Context, m *Manifest, shardID string, workers int, dir string, failAfter int, env *queueEnv, rule sim.StopRule, sink sim.CellSink) (*Artifact, error) {
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("shard: manifest schema %d, this build understands %d", m.Schema, ManifestSchema)
	}
	spec, err := m.Shard(shardID)
	if err != nil {
		return nil, err
	}
	if err := env.retry(ctx, "mkdir partials", func() error {
		return env.fsys.MkdirAll(dir, 0o755)
	}); err != nil {
		return nil, err
	}
	sw := m.Sweep
	p, n, err := sw.Build()
	if err != nil {
		return nil, err
	}
	opts, err := sw.Options(workers)
	if err != nil {
		return nil, err
	}
	expected := func(x int64) bool { return x >= n }

	art := &Artifact{
		Schema: ArtifactSchema,
		Sweep:  sw,
		Shard:  *spec,
		Host:   hostmeta.Collect(),
	}
	// Prefix context for sequential stopping: the full per-size cell
	// grid (all shards, trial order) and the stats this run has seen,
	// keyed by cell. Other shards' cells are read from the partials
	// dir on demand — best effort, since a missing or unreadable
	// prefix merely means the cell is computed rather than skipped.
	rule = rule.WithDefaults()
	var grid map[int64][]Cell
	known := make(map[Cell]sim.Stats)
	if rule.Enabled() {
		grid = make(map[int64][]Cell, len(sw.Sizes))
		for _, s := range m.Shards {
			for _, c := range s.Cells {
				grid[c.X] = append(grid[c.X], c)
			}
		}
		for _, cs := range grid {
			sortCellsByTrialLo(cs)
		}
	}
	emit := func(c Cell, st sim.Stats) {
		known[c] = st
		art.Points = append(art.Points, PartialPoint{
			X: c.X, TrialLo: c.TrialLo, TrialHi: c.TrialHi, Stats: st,
		})
		if sink != nil {
			sink(c.X, c.TrialLo, c.TrialHi, st)
		}
	}
	fresh := 0
	for _, c := range spec.Cells {
		path := filepath.Join(dir, cellFileName(c))
		data, err := env.readRetry(ctx, path)
		if err != nil {
			return nil, err
		}
		if data != nil {
			ca, perr := parseCell(data, path, sw, c)
			var corrupt *corruptError
			switch {
			case perr == nil:
				emit(c, ca.Stats)
				env.counters.CellsLoaded++
				continue
			case errors.As(perr, &corrupt):
				if qerr := env.quarantine(ctx, path, corrupt.reason); qerr != nil {
					return nil, qerr
				}
				// Fall through: the cell is recomputed.
			default:
				return nil, perr
			}
		}
		if rule.Enabled() && prefixSatisfied(ctx, env, dir, sw, grid[c.X], c, known, rule) {
			env.counters.CellsStopped++
			continue
		}
		points, err := sim.SweepRange(ctx, p, sw.InputState, []int64{c.X}, expected, c.TrialLo, c.TrialHi, opts)
		if err != nil {
			return nil, fmt.Errorf("shard %s cell x=%d trials [%d,%d): %w", shardID, c.X, c.TrialLo, c.TrialHi, err)
		}
		ca := CellArtifact{Schema: ArtifactSchema, Sweep: sw, Cell: c, Stats: points[0].Stats, Host: art.Host}
		if err := env.writeSealedRetry(ctx, path, &ca); err != nil {
			return nil, err
		}
		emit(c, points[0].Stats)
		env.counters.CellsComputed++
		fresh++
		if failAfter > 0 && fresh >= failAfter {
			return nil, fmt.Errorf("shard %s: %w after %d cells", shardID, errInjectedFailure, fresh)
		}
	}
	return art, nil
}

// sortCellsByTrialLo orders one size's cells in trial order, the fold
// order both the stopping fold here and MergePartial use.
func sortCellsByTrialLo(cs []Cell) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].TrialLo < cs[j].TrialLo })
}

// prefixSatisfied reports whether the stop rule is already satisfied
// at some cell boundary strictly before c.TrialLo, folding the
// point's gap-free prefix [0, c.TrialLo) from cells this run already
// holds (known) or other shards persisted in dir. Any hole in the
// prefix — a cell not yet computed, unreadable, or corrupt — aborts
// the fold and reports false: computing a post-stop cell is always
// safe (MergePartial truncates at the canonical boundary), whereas
// skipping on incomplete evidence could stall a sweep. Quarantining
// an observed-corrupt prefix cell is left to the shard that owns it.
func prefixSatisfied(ctx context.Context, env *queueEnv, dir string, sw SweepSpec, gridX []Cell, c Cell, known map[Cell]sim.Stats, rule sim.StopRule) bool {
	if c.TrialLo == 0 {
		return false
	}
	var prefix sim.Stats
	next := 0
	for _, pc := range gridX {
		if pc.TrialLo != next || pc.TrialHi > c.TrialLo {
			return false // gap, or the grid never tiles [0, c.TrialLo)
		}
		st, ok := known[pc]
		if !ok {
			data, err := env.readRetry(ctx, dir+"/"+cellFileName(pc))
			if err != nil || data == nil {
				return false
			}
			ca, perr := parseCell(data, dir+"/"+cellFileName(pc), sw, pc)
			if perr != nil {
				return false
			}
			st = ca.Stats
			known[pc] = st
		}
		prefix.Merge(st)
		if rule.Satisfied(&prefix) {
			return true
		}
		next = pc.TrialHi
		if next >= c.TrialLo {
			return false
		}
	}
	return false
}

// errInjectedFailure marks a deliberately simulated worker death
// (ppsweep dispatch -fail-after-cells, kill/resume tests).
var errInjectedFailure = errors.New("injected worker failure")
