package shard

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"repro/internal/sim"
)

// Merged is the fan-in result: exactly the []SweepPoint a
// single-process sim.Sweep over the same spec would have produced,
// point for point and bit for bit. It deliberately carries no host
// metadata — the merged document is a pure function of the sweep spec,
// so two merges of differently-sharded runs are byte-identical.
type Merged struct {
	Schema int              `json:"schema"`
	Sweep  SweepSpec        `json:"sweep"`
	Points []sim.SweepPoint `json:"points"`
}

// Merge folds partial artifacts into the single-process sweep result.
// It verifies that every artifact carries a known schema version and
// the same sweep spec, and that for every size the partial trial
// ranges tile [0, Trials) exactly — overlapping shards (a shard run
// twice, or two plans mixed) and missing shards are reported by size
// and range rather than silently mis-aggregated.
func Merge(arts []*Artifact) (*Merged, error) {
	if len(arts) == 0 {
		return nil, errors.New("shard: nothing to merge")
	}
	for i, a := range arts {
		if a.Schema != ArtifactSchema {
			return nil, fmt.Errorf("shard: artifact %d (shard %q) has schema %d, this build understands %d",
				i, a.Shard.ID, a.Schema, ArtifactSchema)
		}
		if !reflect.DeepEqual(a.Sweep, arts[0].Sweep) {
			return nil, fmt.Errorf("shard: artifact %d (shard %q) belongs to a different sweep: %+v vs %+v",
				i, a.Shard.ID, a.Sweep, arts[0].Sweep)
		}
	}
	sw := arts[0].Sweep
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	byX := make(map[int64][]PartialPoint)
	for _, a := range arts {
		for _, pt := range a.Points {
			// An internally inconsistent point (a worker that died after
			// writing partial accumulators, a hand-edited file) would pass
			// the range tiling below while under-counting trials.
			if pt.Stats.Trials != pt.TrialHi-pt.TrialLo {
				return nil, fmt.Errorf("shard: artifact %q size %d claims trials [%d,%d) but its stats aggregate %d trials",
					a.Shard.ID, pt.X, pt.TrialLo, pt.TrialHi, pt.Stats.Trials)
			}
			byX[pt.X] = append(byX[pt.X], pt)
		}
	}
	for x := range byX {
		found := false
		for _, want := range sw.Sizes {
			if x == want {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("shard: partial results for size %d, which the sweep does not contain", x)
		}
	}
	out := &Merged{Schema: ArtifactSchema, Sweep: sw, Points: make([]sim.SweepPoint, 0, len(sw.Sizes))}
	for _, x := range sw.Sizes {
		parts := byX[x]
		cells := make([]Cell, len(parts))
		for i, pt := range parts {
			cells[i] = Cell{X: x, TrialLo: pt.TrialLo, TrialHi: pt.TrialHi}
		}
		if err := checkTiling(x, cells, sw.Trials); err != nil {
			return nil, err
		}
		sort.Slice(parts, func(i, j int) bool { return parts[i].TrialLo < parts[j].TrialLo })
		var stats sim.Stats
		for _, pt := range parts {
			stats.Merge(pt.Stats)
		}
		out.Points = append(out.Points, sim.SweepPoint{X: x, Stats: stats})
	}
	return out, nil
}

// checkTiling verifies that the cells' trial ranges partition
// [0, trials) exactly: no overlap, no gap, no out-of-bounds range.
func checkTiling(x int64, cells []Cell, trials int) error {
	if len(cells) == 0 {
		return fmt.Errorf("shard: size %d has no partial results", x)
	}
	sorted := make([]Cell, len(cells))
	copy(sorted, cells)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TrialLo != sorted[j].TrialLo {
			return sorted[i].TrialLo < sorted[j].TrialLo
		}
		return sorted[i].TrialHi < sorted[j].TrialHi
	})
	next := 0
	for _, c := range sorted {
		if c.TrialLo < 0 || c.TrialHi > trials || c.TrialLo >= c.TrialHi {
			return fmt.Errorf("shard: size %d has invalid trial range [%d,%d) of %d trials",
				x, c.TrialLo, c.TrialHi, trials)
		}
		if c.TrialLo < next {
			return fmt.Errorf("shard: size %d trials [%d,%d) overlap an earlier range ending at %d (shard run twice, or plans mixed?)",
				x, c.TrialLo, c.TrialHi, next)
		}
		if c.TrialLo > next {
			return fmt.Errorf("shard: size %d missing trials [%d,%d)", x, next, c.TrialLo)
		}
		next = c.TrialHi
	}
	if next != trials {
		return fmt.Errorf("shard: size %d missing trials [%d,%d)", x, next, trials)
	}
	return nil
}
