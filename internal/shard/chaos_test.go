package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/sim"
)

// The chaos property: a dispatcher running over a seeded random fault
// schedule — transient errors, silent torn writes, clock skew — plus
// an injected mid-shard death, followed by a clean dispatcher
// draining the wreckage, still merges byte-identically to the
// single-process sweep. Every seed is deterministic, so a failure
// reproduces exactly.
func TestDispatchChaosSchedules(t *testing.T) {
	want := baselineMergedBytes(t, testSpec())
	for seed := int64(1); seed <= 4; seed++ {
		m := dispatchPlan(t)
		dir := t.TempDir()
		killAt := int(seed % 3) // 0 = no injected death this seed
		faulty := faultfs.NewFaulty(faultfs.OS(), faultfs.RandomSchedule(seed, 12))
		res, err := Dispatch(context.Background(), m, DispatchOptions{
			Dir:            dir,
			FS:             faulty,
			FailAfterCells: killAt,
			LeaseTTL:       50 * time.Millisecond,
			Poll:           2 * time.Millisecond,
			RetryAttempts:  8,
			RetryBase:      time.Millisecond,
		})
		if killAt > 0 && err == nil {
			t.Fatalf("seed %d: injected death after %d cells did not surface", seed, killAt)
		}
		t.Logf("seed %d: chaos worker err=%v, %s, fired %v", seed, err, res.Counters, faulty.Fired())
		// A clean second worker must drain whatever the chaos worker left:
		// expired leases, torn partials, quarantined artifacts.
		res2, err := Dispatch(context.Background(), m, DispatchOptions{
			Dir: dir, LeaseTTL: time.Nanosecond, Poll: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("seed %d: clean drain after chaos: %v", seed, err)
		}
		t.Logf("seed %d: clean drain %s", seed, res2.Counters)
		if got := mergedQueueBytes(t, dir, m); string(got) != string(want) {
			t.Errorf("seed %d: chaos merge differs from single-process sweep", seed)
		}
	}
}

// Directed fault schedules, one failure mode at a time.

// A silently torn cell write — reported as success, prefix persisted —
// is caught by the checksum on the next attempt's read, quarantined
// and recomputed to the bit-identical artifact.
func TestResumeTornCellWrite(t *testing.T) {
	m, err := Plan(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var c1 Counters
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpWrite, Nth: 1, Path: "cell-", Tear: true, TearAt: 40},
	})
	env := newQueueEnv(faulty, 0, 0, &c1)
	// The tear is silent: this run believes it persisted every cell.
	if _, err := runResumable(context.Background(), m, "s000", 0, dir, 0, env, sim.StopRule{}, nil); err != nil {
		t.Fatalf("torn write must be silent at write time: %v", err)
	}
	if len(faulty.Fired()) != 1 {
		t.Fatalf("tear did not fire: %v", faulty.Fired())
	}
	// The resume catches it: quarantine, recompute, identical output.
	res, counters, err := RunResumable(context.Background(), m, "s000", 0, dir)
	if err != nil {
		t.Fatalf("resume over torn cell: %v", err)
	}
	if counters.Quarantined != 1 {
		t.Errorf("quarantined %d, want 1 (the torn cell)", counters.Quarantined)
	}
	plain, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Points, res.Points) {
		t.Errorf("post-tear resume differs from uninterrupted run")
	}
}

// Transient read and rename errors (the NFS staleness family) are
// absorbed by bounded backoff, counted, and never change the result.
func TestDispatchAbsorbsTransientErrors(t *testing.T) {
	m := dispatchPlan(t)
	dir := t.TempDir()
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpRead, Nth: 1, Err: syscall.ESTALE},
		{Op: faultfs.OpRename, Nth: 1, Err: syscall.EIO},
		{Op: faultfs.OpWrite, Nth: 2, Err: syscall.EINTR},
	})
	res, err := Dispatch(context.Background(), m, DispatchOptions{
		Dir: dir, FS: faulty, RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("transient faults must be absorbed: %v", err)
	}
	if res.Counters.Retries < 3 {
		t.Errorf("retries = %d, want >= 3 (one per injected fault)", res.Counters.Retries)
	}
	if got, want := mergedQueueBytes(t, dir, m), baselineMergedBytes(t, m.Sweep); string(got) != string(want) {
		t.Errorf("merge after transient faults differs from single-process sweep")
	}
}

// A persistent transient error — the filesystem never recovers within
// the retry budget — surfaces as ErrQueueIO, ppsweep's exit code 5,
// not a hang and not a generic failure.
func TestDispatchGivesUpAfterRetryBudget(t *testing.T) {
	m := dispatchPlan(t)
	faults := make([]faultfs.Fault, 20)
	for i := range faults {
		faults[i] = faultfs.Fault{Op: faultfs.OpWrite, Nth: i + 1, Err: syscall.EIO}
	}
	_, err := Dispatch(context.Background(), m, DispatchOptions{
		Dir: t.TempDir(), FS: faultfs.NewFaulty(faultfs.OS(), faults),
		RetryAttempts: 3, RetryBase: time.Millisecond,
	})
	if !errors.Is(err, ErrQueueIO) {
		t.Errorf("want ErrQueueIO after exhausted retry budget, got %v", err)
	}
}

// A skewed clock — Now() jumping hours between observations — must
// not let a dispatcher rob a live, heartbeating owner: liveness is
// the advancing seq, not any wall-clock arithmetic.
func TestSkewedClockCannotStealLiveLease(t *testing.T) {
	m := dispatchPlan(t)
	dir := t.TempDir()
	id := m.Shards[0].ID
	skewed := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpClock, Nth: 2, Skew: 4 * time.Hour},
	})
	var c Counters
	d := &dispatcher{
		m:        m,
		opts:     DispatchOptions{Dir: dir, LeaseTTL: time.Minute}.withDefaults(),
		env:      newQueueEnv(skewed, 0, 0, &c),
		obs:      make(map[string]leaseObs),
		verified: make(map[string]bool),
		done:     make(map[string]bool),
	}
	ctx := context.Background()
	live := Lease{Shard: id, Token: newToken(), Attempt: 1, Seq: 1, HeartbeatAt: time.Now().UTC().Add(-time.Hour)}
	if err := writeJSONAtomic(LeasePath(dir, id), &live); err != nil {
		t.Fatal(err)
	}
	// First sighting: records (token, seq=1). The clock fault then skews
	// this dispatcher's Now() 4 hours forward.
	if _, state, err := d.tryAcquire(ctx, id); err != nil || state != leaseBusy {
		t.Fatalf("first sighting: state=%v err=%v", state, err)
	}
	// The owner heartbeats (seq advances) — so despite the observer's
	// clock having leapt far past any TTL, the lease must stay busy.
	live.Seq = 2
	if err := writeJSONAtomic(LeasePath(dir, id), &live); err != nil {
		t.Fatal(err)
	}
	if _, state, _ := d.tryAcquire(ctx, id); state != leaseBusy {
		t.Errorf("live lease stolen under clock skew: state=%v", state)
	}
	if c.Steals != 0 {
		t.Errorf("steal counter = %d, want 0", c.Steals)
	}
}

// The live-queue corruption acceptance criterion: garbage planted as
// a completed shard artifact in the queue directory is quarantined
// (with a reason file), the shard recomputed, and the merge is
// byte-identical — never silently merged, never an error, never an
// infinite re-read loop.
func TestDispatchQuarantinesCorruptDoneArtifact(t *testing.T) {
	m := dispatchPlan(t)
	dir := t.TempDir()
	victim := m.Shards[0].ID
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(DonePath(dir, victim), []byte(`{"schema": 1, "points": [{"x"`), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Dispatch(context.Background(), m, DispatchOptions{Dir: dir})
	if err != nil {
		t.Fatalf("dispatch over corrupt done artifact: %v", err)
	}
	if res.Counters.Quarantined != 1 {
		t.Errorf("quarantined %d, want 1", res.Counters.Quarantined)
	}
	qpath := filepath.Join(CorruptDir(dir), filepath.Base(DonePath(dir, victim)))
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("corrupt artifact not in quarantine: %v", err)
	}
	if _, err := os.Stat(qpath + ".reason"); err != nil {
		t.Errorf("no reason file: %v", err)
	}
	if got, want := mergedQueueBytes(t, dir, m), baselineMergedBytes(t, m.Sweep); string(got) != string(want) {
		t.Errorf("merge after quarantine differs from single-process sweep")
	}
}
