package shard

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// A sealed document verifies, and its checksum survives any
// reformatting that preserves content: whitespace, key order, even
// hand-editing the file through a pretty-printer.
func TestSealVerifyRoundTrip(t *testing.T) {
	ca := &CellArtifact{
		Schema: ArtifactSchema,
		Sweep:  testSpec(),
		Cell:   Cell{X: 4, TrialLo: 0, TrialHi: 6},
		Stats:  sim.Stats{Trials: 6, Converged: 6, Correct: 6, SumSteps: 42},
	}
	data, err := sealJSON(ca)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Checksum == "" || !strings.HasPrefix(ca.Checksum, "crc32c:") {
		t.Fatalf("seal left checksum %q", ca.Checksum)
	}
	if legacy, err := verifyDoc(data, "sealed"); err != nil || legacy {
		t.Fatalf("sealed document: legacy=%v err=%v", legacy, err)
	}
	// Reformat: strip all the indentation the canonical form ignores.
	reformatted := bytes.ReplaceAll(bytes.ReplaceAll(data, []byte("\n"), nil), []byte("  "), nil)
	if legacy, err := verifyDoc(reformatted, "reformatted"); err != nil || legacy {
		t.Errorf("reformatting broke verification: legacy=%v err=%v", legacy, err)
	}
}

// Any content change under an unchanged checksum is corruption: a
// flipped digit, a truncated tail, a swapped field value.
func TestVerifyDetectsMutation(t *testing.T) {
	ca := &CellArtifact{Schema: ArtifactSchema, Sweep: testSpec(),
		Cell: Cell{X: 4, TrialLo: 0, TrialHi: 6}, Stats: sim.Stats{Trials: 6}}
	data, err := sealJSON(ca)
	if err != nil {
		t.Fatal(err)
	}
	var corrupt *corruptError
	mutated := bytes.Replace(data, []byte(`"x": 4`), []byte(`"x": 5`), 1)
	if bytes.Equal(mutated, data) {
		t.Fatal("mutation did not apply")
	}
	if _, err := verifyDoc(mutated, "mutated"); !errors.As(err, &corrupt) {
		t.Errorf("flipped digit not flagged as corrupt: %v", err)
	}
	if _, err := verifyDoc(data[:len(data)/2], "truncated"); !errors.As(err, &corrupt) {
		t.Errorf("truncated document not flagged as corrupt: %v", err)
	}
	if _, err := verifyDoc([]byte(`{"checksum": 7}`), "nonstring"); !errors.As(err, &corrupt) {
		t.Errorf("non-string checksum not flagged as corrupt: %v", err)
	}
}

// The canonical form re-emits numbers digit for digit: two sums that
// collide as float64 (beyond 2^53) must checksum differently.
func TestChecksumExactBigIntegers(t *testing.T) {
	a := []byte(`{"sum": 9007199254740993}`)
	b := []byte(`{"sum": 9007199254740992}`) // same float64, different integer
	ca, err := ChecksumOf(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := ChecksumOf(b)
	if err != nil {
		t.Fatal(err)
	}
	if ca == cb {
		t.Error("sums differing only beyond float64 precision checksum identically")
	}
}

// A checksum-less document is legacy, not corrupt: it verifies by
// schema alone (the PRs 3–6 compatibility contract).
func TestVerifyLegacyDocument(t *testing.T) {
	legacy, err := verifyDoc([]byte(`{"schema": 1, "stats": {"trials": 3}}`), "old")
	if err != nil {
		t.Fatalf("legacy document rejected: %v", err)
	}
	if !legacy {
		t.Error("checksum-less document not reported as legacy")
	}
}
