package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// stopSpec is the anytime-stopping workload: the flock sweep with
// enough trials that the rule fires well before exhaustion at every
// size (empirically: sizes stop between 8 and 12 of 48 trials under a
// 5% target with an 8-trial floor).
func stopSpec() SweepSpec {
	sw := testSpec()
	sw.Trials = 48
	return sw
}

func stopRule() sim.StopRule { return sim.StopRule{TargetRelCI: 0.05, MinTrials: 8} }

// mergeStopped executes every shard of a manifest through the
// stop-aware resumable runner (shared partials dir, shard order) and
// merges the queue directory under the rule, returning the marshaled
// anytime document and the summed counters.
func mergeStopped(t *testing.T, m *Manifest, workers int, rule sim.StopRule) ([]byte, Counters) {
	t.Helper()
	dir := t.TempDir()
	var total Counters
	var arts []*Artifact
	for _, spec := range m.Shards {
		a, c, err := RunResumableStop(context.Background(), m, spec.ID, workers, dir, rule, nil)
		if err != nil {
			t.Fatalf("RunResumableStop(%s): %v", spec.ID, err)
		}
		total.add(c)
		arts = append(arts, a)
	}
	sw, pts, err := CollectPartial(arts, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergePartial(sw, pts, rule)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data, total
}

// The stopping determinism contract: on a block-diced plan the merged
// anytime document is byte-identical across shard cuts and worker
// counts, and identical to merging the exhaustive cell set under the
// same rule — runtime skipping changes how much work runs, never what
// is reported.
func TestStopDeterministicAcrossCutsAndWorkers(t *testing.T) {
	sw := stopSpec()
	rule := stopRule()
	model := DefaultCost(sw.Scheduler)

	// Reference: every cell computed (no runtime skipping), truncated
	// only at merge time.
	mFull, err := PlanCostBlock(sw, 1, model, 4)
	if err != nil {
		t.Fatal(err)
	}
	exhaustive := cellPoints(t, mFull)
	ref, err := MergePartial(sw, exhaustive, rule)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(ref, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{1, 2, 4, 7} {
		for _, workers := range []int{1, 4} {
			m, err := PlanCostBlock(sw, cut, model, 4)
			if err != nil {
				t.Fatal(err)
			}
			got, counters := mergeStopped(t, m, workers, rule)
			if !bytes.Equal(got, want) {
				t.Fatalf("cut=%d workers=%d: stopped merge differs from exhaustive+rule reference:\n%s\nvs\n%s",
					cut, workers, got, want)
			}
			if counters.CellsStopped == 0 {
				t.Errorf("cut=%d workers=%d: no cells skipped, stopping never engaged", cut, workers)
			}
		}
	}
}

// The savings contract: under the rule, total executed trials drop
// well below the plan while every reported point is stopped, meets the
// CI target, and its mean sits within the widened CI of the exhaustive
// run.
func TestStopSavesTrialsAndMeetsTarget(t *testing.T) {
	sw := stopSpec()
	rule := stopRule()
	m, err := PlanCostBlock(sw, 2, DefaultCost(sw.Scheduler), 4)
	if err != nil {
		t.Fatal(err)
	}
	data, counters := mergeStopped(t, m, 0, rule)
	var merged AnytimeMerged
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatal(err)
	}
	exhaustive, err := MergePartial(sw, cellPoints(t, m), sim.StopRule{})
	if err != nil {
		t.Fatal(err)
	}
	fullByX := make(map[int64]AnytimePoint, len(exhaustive.Points))
	for _, pt := range exhaustive.Points {
		fullByX[pt.X] = pt
	}
	done := 0
	for _, pt := range merged.Points {
		if !pt.Stopped {
			t.Errorf("x=%d: not stopped under a rule every size satisfies", pt.X)
			continue
		}
		if pt.TrialsPlanned != sw.Trials {
			t.Errorf("x=%d: trials_planned %d, want %d", pt.X, pt.TrialsPlanned, sw.Trials)
		}
		done += pt.TrialsDone
		norm := rule.WithDefaults()
		if !norm.Satisfied(&pt.Stats) {
			t.Errorf("x=%d: reported stopped but rule unsatisfied (relCI %.4f of mean %.2f)",
				pt.X, pt.Stats.HalfCI95Steps(), pt.Stats.MeanSteps())
		}
		full := fullByX[pt.X]
		gap := pt.Stats.MeanSteps() - full.Stats.MeanSteps()
		if gap < 0 {
			gap = -gap
		}
		if width := pt.Stats.HalfCI95Steps() + full.Stats.HalfCI95Steps(); gap > width {
			t.Errorf("x=%d: stopped mean %.2f vs exhaustive %.2f exceeds widened CI %.2f",
				pt.X, pt.Stats.MeanSteps(), full.Stats.MeanSteps(), width)
		}
	}
	planned := len(sw.Sizes) * sw.Trials
	if done*2 >= planned {
		t.Errorf("stopping saved too little: %d of %d trials executed", done, planned)
	}
	if counters.CellsStopped == 0 {
		t.Error("no cells skipped at runtime")
	}
	if merged.Partial {
		t.Error("fully stopped sweep still marked partial")
	}
}

// A shard dispatched with a Stop rule skips converged cells and its
// queue directory merges to the same document as the in-process
// runner's; the streaming sink observes every contributed cell.
func TestDispatchStopAndSink(t *testing.T) {
	sw := stopSpec()
	rule := stopRule()
	m, err := PlanCostBlock(sw, 2, DefaultCost(sw.Scheduler), 4)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mergeStopped(t, m, 0, rule)

	dir := t.TempDir()
	var streamed []Cell
	res, err := Dispatch(context.Background(), m, DispatchOptions{
		Dir:  dir,
		Stop: rule,
		Sink: func(x int64, trialLo, trialHi int, stats sim.Stats) {
			streamed = append(streamed, Cell{X: x, TrialLo: trialLo, TrialHi: trialHi})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.CellsStopped == 0 {
		t.Error("dispatch with a stop rule skipped nothing")
	}
	arts, err := CollectArtifacts(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	wsw, pts, err := CollectPartial(arts, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergePartial(wsw, pts, rule)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("dispatched stopped merge differs from in-process runner's:\n%s\nvs\n%s", got, want)
	}
	// The sink saw exactly the cells the artifacts carry.
	seen := make(map[Cell]bool, len(streamed))
	for _, c := range streamed {
		seen[c] = true
	}
	contributed := 0
	for _, a := range arts {
		for _, pt := range a.Points {
			contributed++
			if !seen[Cell{X: pt.X, TrialLo: pt.TrialLo, TrialHi: pt.TrialHi}] {
				t.Errorf("cell x=%d [%d,%d) in artifact but never streamed", pt.X, pt.TrialLo, pt.TrialHi)
			}
		}
	}
	if len(streamed) != contributed {
		t.Errorf("sink fired %d times, artifacts carry %d cells", len(streamed), contributed)
	}
}
