package shard

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSpec is a small sweep that exercises both sides of the flock(4)
// threshold under the exact weighted scheduler.
func testSpec() SweepSpec {
	return SweepSpec{
		Protocol:   "flock",
		Param:      4,
		InputState: "i",
		Sizes:      []int64{2, 4, 8, 16},
		Trials:     6,
		Seed:       1,
		MaxSteps:   200_000,
		Patience:   1_000,
	}
}

// The headline acceptance property: plan → run shards → merge is
// bit-identical to the single-process Sweep, for every shard count.
func TestMergeMatchesSingleProcessSweep(t *testing.T) {
	sw := testSpec()
	p, n, err := sw.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opts, err := sw.Options(0)
	if err != nil {
		t.Fatalf("Options: %v", err)
	}
	whole, err := sim.Sweep(context.Background(), p, sw.InputState, sw.Sizes,
		func(x int64) bool { return x >= n }, sw.Trials, opts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, shards := range []int{1, 2, 4, 7, 24, 100} {
		m, err := Plan(sw, shards)
		if err != nil {
			t.Fatalf("Plan(%d): %v", shards, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Plan(%d) invalid: %v", shards, err)
		}
		arts := make([]*Artifact, 0, len(m.Shards))
		for _, spec := range m.Shards {
			a, err := Run(context.Background(), m, spec.ID, 0)
			if err != nil {
				t.Fatalf("Run(%d, %s): %v", shards, spec.ID, err)
			}
			arts = append(arts, a)
		}
		// Merge in reverse arrival order too: order must not matter.
		for _, reverse := range []bool{false, true} {
			in := arts
			if reverse {
				in = make([]*Artifact, len(arts))
				for i, a := range arts {
					in[len(arts)-1-i] = a
				}
			}
			merged, err := Merge(in)
			if err != nil {
				t.Fatalf("Merge(%d shards, reverse=%v): %v", shards, reverse, err)
			}
			if !reflect.DeepEqual(merged.Points, whole) {
				t.Errorf("%d shards (reverse=%v): merged points differ from single-process sweep\nmerged: %+v\nwhole:  %+v",
					shards, reverse, merged.Points, whole)
			}
		}
	}
}

// Serializing artifacts through JSON (as ppsweep does between run and
// merge) must not perturb the merge: the accumulators are integers.
func TestMergeSurvivesJSONRoundTrip(t *testing.T) {
	sw := testSpec()
	m, err := Plan(sw, 2)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	direct := make([]*Artifact, 0, 2)
	decoded := make([]*Artifact, 0, 2)
	for _, spec := range m.Shards {
		a, err := Run(context.Background(), m, spec.ID, 0)
		if err != nil {
			t.Fatalf("Run(%s): %v", spec.ID, err)
		}
		direct = append(direct, a)
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Artifact
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		decoded = append(decoded, &back)
	}
	a, err := Merge(direct)
	if err != nil {
		t.Fatalf("Merge(direct): %v", err)
	}
	b, err := Merge(decoded)
	if err != nil {
		t.Fatalf("Merge(decoded): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("JSON round trip changed the merge:\ndirect:  %+v\ndecoded: %+v", a, b)
	}
}

// Plan must partition the (size × trial) grid exactly: every cell
// covered once, across representative shapes.
func TestPlanPartitionsGrid(t *testing.T) {
	for _, tc := range []struct {
		sizes  int
		trials int
		shards int
	}{
		{1, 1, 1}, {1, 1, 5}, {4, 6, 1}, {4, 6, 2}, {4, 6, 3},
		{4, 6, 5}, {4, 6, 24}, {4, 6, 100}, {3, 7, 4}, {2, 8, 4},
	} {
		sw := testSpec()
		sw.Sizes = make([]int64, tc.sizes)
		for i := range sw.Sizes {
			sw.Sizes[i] = int64(10 + i)
		}
		sw.Trials = tc.trials
		m, err := Plan(sw, tc.shards)
		if err != nil {
			t.Fatalf("Plan(%+v): %v", tc, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("Plan(%+v) does not tile the grid: %v", tc, err)
		}
		wantShards := min(tc.shards, tc.sizes*tc.trials)
		if len(m.Shards) != wantShards {
			t.Errorf("Plan(%+v) = %d shards, want %d", tc, len(m.Shards), wantShards)
		}
		// Near-equal balance: shard trial counts differ by at most 1.
		lo, hi := m.Shards[0].Trials(), m.Shards[0].Trials()
		for _, s := range m.Shards {
			n := s.Trials()
			lo, hi = min(lo, n), max(hi, n)
		}
		if hi-lo > 1 {
			t.Errorf("Plan(%+v): unbalanced shards (trials %d..%d)", tc, lo, hi)
		}
	}
}

// The manifest bytes for a fixed spec are part of the cross-process
// contract: a planner change that reshuffles shards silently breaks
// mixed-version fleets, so it must show up as a golden diff.
func TestPlanGolden(t *testing.T) {
	sw := SweepSpec{
		Protocol:   "power2",
		Param:      5,
		InputState: "i",
		Sizes:      []int64{16, 32, 64},
		Trials:     4,
		Seed:       42,
		MaxSteps:   100_000,
		Scheduler:  "countbatch",
		Epsilon:    0.05,
	}
	m, err := Plan(sw, 5)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "plan.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("manifest drifted from golden file %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestPlanRejectsBadSpecs(t *testing.T) {
	bad := []SweepSpec{
		{},
		{Protocol: "nope", InputState: "i", Sizes: []int64{1}, Trials: 1},
		{Protocol: "flock", Param: 4, InputState: "", Sizes: []int64{1}, Trials: 1},
		{Protocol: "flock", Param: 4, InputState: "i", Sizes: nil, Trials: 1},
		{Protocol: "flock", Param: 4, InputState: "i", Sizes: []int64{3, 3}, Trials: 1},
		{Protocol: "flock", Param: 4, InputState: "i", Sizes: []int64{-1}, Trials: 1},
		{Protocol: "flock", Param: 4, InputState: "i", Sizes: []int64{1}, Trials: 0},
		{Protocol: "flock", Param: 4, InputState: "i", Sizes: []int64{1}, Trials: 1, Scheduler: "nope"},
		{Protocol: "flock", Param: 4, InputState: "i", Sizes: []int64{1}, Trials: 1, MaxSteps: -1},
	}
	for i, sw := range bad {
		if _, err := Plan(sw, 2); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, sw)
		}
	}
	if _, err := Plan(testSpec(), 0); err == nil {
		t.Error("zero shard count accepted")
	}
}

// Non-counting protocols have no expected predicate to score against.
func TestBuildRejectsNonCounting(t *testing.T) {
	sw := SweepSpec{Protocol: "majority", InputState: "A", Sizes: []int64{4}, Trials: 1}
	if _, _, err := sw.Build(); err == nil {
		t.Error("majority accepted as a sweepable counting protocol")
	}
}

func TestRunUnknownShard(t *testing.T) {
	m, err := Plan(testSpec(), 2)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if _, err := Run(context.Background(), m, "s999", 0); err == nil {
		t.Error("unknown shard id accepted")
	}
}

func TestRunCancelled(t *testing.T) {
	m, err := Plan(testSpec(), 1)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, m, "s000", 0); err == nil {
		t.Error("cancelled run returned no error")
	}
}

// runShards executes every shard of a fresh plan of testSpec.
func runShards(t *testing.T, shards int) []*Artifact {
	t.Helper()
	m, err := Plan(testSpec(), shards)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	arts := make([]*Artifact, 0, len(m.Shards))
	for _, spec := range m.Shards {
		a, err := Run(context.Background(), m, spec.ID, 0)
		if err != nil {
			t.Fatalf("Run(%s): %v", spec.ID, err)
		}
		arts = append(arts, a)
	}
	return arts
}

func TestMergeDetectsOverlap(t *testing.T) {
	arts := runShards(t, 2)
	// The same shard delivered twice.
	if _, err := Merge([]*Artifact{arts[0], arts[1], arts[0]}); err == nil {
		t.Error("duplicated shard artifact accepted")
	}
}

func TestMergeDetectsMissing(t *testing.T) {
	arts := runShards(t, 2)
	if _, err := Merge(arts[:1]); err == nil {
		t.Error("incomplete shard set accepted")
	}
}

func TestMergeDetectsMixedSchema(t *testing.T) {
	arts := runShards(t, 2)
	broken := *arts[1]
	broken.Schema = ArtifactSchema + 1
	if _, err := Merge([]*Artifact{arts[0], &broken}); err == nil {
		t.Error("mixed artifact schemas accepted")
	}
}

func TestMergeDetectsSweepMismatch(t *testing.T) {
	arts := runShards(t, 2)
	other := *arts[1]
	other.Sweep.Seed++
	if _, err := Merge([]*Artifact{arts[0], &other}); err == nil {
		t.Error("artifacts from different sweeps accepted")
	}
}

func TestMergeDetectsForeignSize(t *testing.T) {
	arts := runShards(t, 2)
	alien := *arts[1]
	alien.Points = append([]PartialPoint{}, alien.Points...)
	alien.Points[0].X = 999
	if _, err := Merge([]*Artifact{arts[0], &alien}); err == nil {
		t.Error("partial results for a size outside the sweep accepted")
	}
}

func TestMergeDetectsInconsistentTrialCount(t *testing.T) {
	arts := runShards(t, 2)
	hurt := *arts[1]
	hurt.Points = append([]PartialPoint{}, hurt.Points...)
	hurt.Points[0].Stats.Trials-- // accumulators no longer cover the claimed range
	if _, err := Merge([]*Artifact{arts[0], &hurt}); err == nil {
		t.Error("internally inconsistent artifact accepted")
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Error("empty artifact list accepted")
	}
}
