package shard

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// geometricSpec is the acceptance-criteria workload: a sweep over
// x ∈ {2^10, 2^11, ..., 2^20}, where a linear cut makes the top-size
// shard the straggler of the whole sweep.
func geometricSpec() SweepSpec {
	sw := testSpec()
	sw.Sizes = nil
	for k := 10; k <= 20; k++ {
		sw.Sizes = append(sw.Sizes, int64(1)<<k)
	}
	sw.Trials = 8
	return sw
}

// PlanCost under UniformCost must reproduce Plan exactly — same cuts,
// same ids, same bytes — so the legacy planner is one model of the
// weighted one, not a separate code path.
func TestPlanCostUniformMatchesPlan(t *testing.T) {
	for _, sw := range []SweepSpec{testSpec(), geometricSpec()} {
		for _, shards := range []int{1, 2, 3, 5, 7, 24, 1000} {
			a, err := Plan(sw, shards)
			if err != nil {
				t.Fatalf("Plan(%d): %v", shards, err)
			}
			b, err := PlanCost(sw, shards, UniformCost{})
			if err != nil {
				t.Fatalf("PlanCost(%d, uniform): %v", shards, err)
			}
			ab, _ := json.Marshal(a)
			bb, _ := json.Marshal(b)
			if string(ab) != string(bb) {
				t.Errorf("shards=%d: PlanCost(uniform) differs from Plan:\n%s\nvs\n%s", shards, ab, bb)
			}
		}
	}
}

// Cost-weighted plans must still tile the grid exactly and validate,
// for every model and awkward shard counts.
func TestPlanCostTilesGrid(t *testing.T) {
	for _, model := range []CostModel{UniformCost{}, LinearCost{}, LogCost{}} {
		for _, sw := range []SweepSpec{testSpec(), geometricSpec()} {
			for _, shards := range []int{1, 2, 3, 4, 7, 11, 40, 10000} {
				m, err := PlanCost(sw, shards, model)
				if err != nil {
					t.Fatalf("PlanCost(%d, %s): %v", shards, model.Name(), err)
				}
				if err := m.Validate(); err != nil {
					t.Errorf("PlanCost(%d, %s) does not tile the grid: %v", shards, model.Name(), err)
				}
				if len(m.Shards) > shards {
					t.Errorf("PlanCost(%d, %s) produced %d shards", shards, model.Name(), len(m.Shards))
				}
			}
		}
	}
}

// The headline balance property (acceptance criteria): on the
// geometric sweep the cost-weighted plan's max/mean cost imbalance is
// strictly below the linear-cut plan's, and near-optimal in absolute
// terms. Scored with the workload's own cost model — the model is the
// wall-time proxy the criterion names.
func TestPlanCostReducesImbalance(t *testing.T) {
	sw := geometricSpec()
	model := LinearCost{}
	for _, shards := range []int{2, 4, 8} {
		linear, err := Plan(sw, shards)
		if err != nil {
			t.Fatalf("Plan(%d): %v", shards, err)
		}
		weighted, err := PlanCost(sw, shards, model)
		if err != nil {
			t.Fatalf("PlanCost(%d): %v", shards, err)
		}
		li := linear.Imbalance(model)
		wi := weighted.Imbalance(model)
		if wi >= li {
			t.Errorf("shards=%d: weighted imbalance %.3f not below linear-cut %.3f", shards, wi, li)
		}
		// The largest single cell is 2^20 of ~2^21 total cost, so for
		// shards ≤ 2 total/shards dominates and the plan can stay within
		// ~35% of perfect balance; the linear cut is off by multiples.
		if wi > 1.35 {
			t.Errorf("shards=%d: weighted imbalance %.3f, want ≤ 1.35", shards, wi)
		}
		// max/mean is capped at the shard count, so at 2 shards even a
		// maximally skewed linear cut scores just under 2.
		if li < 1.5 {
			t.Errorf("shards=%d: linear-cut imbalance %.3f unexpectedly low — workload no longer skewed?", shards, li)
		}
	}
}

// A cost-weighted manifest records its model name; the uniform model
// (and hence Plan) leaves the field empty so legacy manifest bytes are
// unchanged.
func TestPlanCostStampsModel(t *testing.T) {
	sw := testSpec()
	m, err := PlanCost(sw, 2, LinearCost{})
	if err != nil {
		t.Fatal(err)
	}
	if m.CostModel != "linear" {
		t.Errorf("CostModel = %q, want linear", m.CostModel)
	}
	u, err := Plan(sw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.CostModel != "" {
		t.Errorf("uniform plan stamps CostModel %q, want empty", u.CostModel)
	}
	data, _ := json.Marshal(u)
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["cost_model"]; ok {
		t.Error("uniform manifest JSON carries cost_model key")
	}
}

// Cost-weighted plans run and merge exactly like linear-cut ones: the
// shard boundaries move, the merged document must not.
func TestPlanCostMergeMatchesPlan(t *testing.T) {
	sw := testSpec()
	runPlan := func(m *Manifest) *Merged {
		t.Helper()
		arts := make([]*Artifact, 0, len(m.Shards))
		for _, spec := range m.Shards {
			a, err := Run(context.Background(), m, spec.ID, 0)
			if err != nil {
				t.Fatalf("Run(%s): %v", spec.ID, err)
			}
			arts = append(arts, a)
		}
		merged, err := Merge(arts)
		if err != nil {
			t.Fatalf("Merge: %v", err)
		}
		return merged
	}
	linear, err := Plan(sw, 3)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := PlanCost(sw, 3, LinearCost{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(linear.Shards, weighted.Shards) {
		t.Fatal("test vacuous: weighted cut equals linear cut on the skewed spec")
	}
	if !reflect.DeepEqual(runPlan(linear), runPlan(weighted)) {
		t.Error("merged result depends on the plan's cost model")
	}
}

func TestCostByName(t *testing.T) {
	for _, tc := range []struct {
		name, scheduler, want string
	}{
		{"", "", "linear"},
		{"auto", "weighted", "linear"},
		{"", "countbatch", "log"},
		{"auto", "countbatch", "log"},
		{"uniform", "countbatch", "uniform"},
		{"linear", "countbatch", "linear"},
		{"log", "", "log"},
	} {
		m, err := CostByName(tc.name, tc.scheduler)
		if err != nil {
			t.Fatalf("CostByName(%q, %q): %v", tc.name, tc.scheduler, err)
		}
		if m.Name() != tc.want {
			t.Errorf("CostByName(%q, %q) = %s, want %s", tc.name, tc.scheduler, m.Name(), tc.want)
		}
	}
	if _, err := CostByName("nope", ""); err == nil {
		t.Error("unknown cost model accepted")
	}
}

// A sweep whose total cost would wrap int64 is rejected at plan time
// instead of silently producing a degenerate plan.
func TestPlanCostOverflow(t *testing.T) {
	sw := testSpec()
	sw.Sizes = []int64{1 << 62}
	sw.Trials = 4 // 4 · 2^62 wraps int64
	if _, err := PlanCost(sw, 2, LinearCost{}); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("overflowing cost not rejected: %v", err)
	}
	// Spec.Cost saturates rather than wrapping when scored under a
	// hotter model than the plan used.
	s := Spec{Cells: []Cell{{X: 1 << 62, TrialLo: 0, TrialHi: 4}}}
	if got := s.Cost(LinearCost{}); got != math.MaxInt64 {
		t.Errorf("Cost wrapped to %d, want MaxInt64 saturation", got)
	}
}

// BenchmarkPlanImbalance pins the acceptance-criteria comparison as a
// benchmark metric: linear-vs-weighted max/mean cost imbalance on the
// x ∈ {2^10..2^20} sweep at 4 shards, alongside planning throughput.
func BenchmarkPlanImbalance(b *testing.B) {
	sw := geometricSpec()
	model := LinearCost{}
	var li, wi float64
	for i := 0; i < b.N; i++ {
		linear, err := Plan(sw, 4)
		if err != nil {
			b.Fatal(err)
		}
		weighted, err := PlanCost(sw, 4, model)
		if err != nil {
			b.Fatal(err)
		}
		li = linear.Imbalance(model)
		wi = weighted.Imbalance(model)
	}
	b.ReportMetric(li, "linear-imbalance")
	b.ReportMetric(wi, "weighted-imbalance")
	if wi >= li {
		b.Fatalf("weighted imbalance %.3f not below linear-cut %.3f", wi, li)
	}
}
