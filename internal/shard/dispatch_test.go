package shard

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// dispatchSpec is the property-test workload: skewed cell costs (the
// x=16 cells dominate under LinearCost) in a 3-shard cost-weighted
// plan.
func dispatchPlan(t *testing.T) *Manifest {
	t.Helper()
	m, err := PlanCost(testSpec(), 3, LinearCost{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// baselineMergedBytes renders the single-process sweep result through
// the merge path: the byte-level ground truth every dispatch
// interleaving must reproduce.
func baselineMergedBytes(t *testing.T, sw SweepSpec) []byte {
	t.Helper()
	m, err := Plan(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	art, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge([]*Artifact{art})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mergedQueueBytes merges a drained queue directory.
func mergedQueueBytes(t *testing.T, dir string, m *Manifest) []byte {
	t.Helper()
	arts, err := CollectArtifacts(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(arts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// One dispatcher, no failures: the queue drains and merges
// bit-identically to the single-process sweep.
func TestDispatchDrainsPlan(t *testing.T) {
	m := dispatchPlan(t)
	dir := t.TempDir()
	res, err := Dispatch(context.Background(), m, DispatchOptions{Dir: dir})
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if len(res.Completed) != len(m.Shards) {
		t.Errorf("completed %d shards, want %d", len(res.Completed), len(m.Shards))
	}
	if res.Counters.Steals != 0 || res.Counters.Quarantined != 0 {
		t.Errorf("clean drain reported degradation: %s", res.Counters)
	}
	if got, want := mergedQueueBytes(t, dir, m), baselineMergedBytes(t, m.Sweep); string(got) != string(want) {
		t.Errorf("dispatched merge differs from single-process sweep:\n%s\nvs\n%s", got, want)
	}
	for i := range m.Shards {
		if fileExists(LeasePath(dir, m.Shards[i].ID)) {
			t.Errorf("lease for %s not released", m.Shards[i].ID)
		}
	}
}

// The acceptance-criteria property: kills at every cell boundary,
// resume by the same "host", then redispatch of the remainder by a
// second "host" — every interleaving merges byte-identically to the
// single-process sweep.
func TestDispatchKillResumeRedispatchDeterminism(t *testing.T) {
	want := baselineMergedBytes(t, testSpec())
	for killAt := 1; killAt <= 3; killAt++ {
		m := dispatchPlan(t)
		dir := t.TempDir()
		// Worker 1 "dies" after persisting killAt fresh cells: its lease
		// survives with a frozen heartbeat seq, its partials stay on disk.
		_, err := Dispatch(context.Background(), m, DispatchOptions{Dir: dir, FailAfterCells: killAt})
		if !errors.Is(err, errInjectedFailure) {
			t.Fatalf("killAt=%d: want injected failure, got %v", killAt, err)
		}
		leases := 0
		for i := range m.Shards {
			if fileExists(LeasePath(dir, m.Shards[i].ID)) {
				leases++
			}
		}
		if leases != 1 {
			t.Fatalf("killAt=%d: %d leases after worker death, want exactly the victim's", killAt, leases)
		}
		// Worker 2 observes the dead lease's seq frozen for a (tiny) TTL
		// of its own local time, steals, resumes from the dead worker's
		// partials, and drains the rest.
		res, err := Dispatch(context.Background(), m, DispatchOptions{
			Dir: dir, LeaseTTL: time.Nanosecond, Poll: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("killAt=%d: redispatch: %v", killAt, err)
		}
		if len(res.Completed) != len(m.Shards) {
			t.Errorf("killAt=%d: redispatch completed %d shards, want %d", killAt, len(res.Completed), len(m.Shards))
		}
		if res.Counters.Steals != 1 {
			t.Errorf("killAt=%d: %d steals, want 1 (the victim's shard)", killAt, res.Counters.Steals)
		}
		if got := mergedQueueBytes(t, dir, m); string(got) != string(want) {
			t.Errorf("killAt=%d: kill+resume+redispatch merge differs from single-process sweep", killAt)
		}
	}
}

// Two dispatchers racing on one queue: every shard completes exactly
// once per the done files, leases never wedge, and the merge is still
// byte-identical.
func TestDispatchConcurrentWorkers(t *testing.T) {
	m := dispatchPlan(t)
	dir := t.TempDir()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	done := make([]*DispatchResult, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done[w], errs[w] = Dispatch(context.Background(), m, DispatchOptions{Dir: dir, Poll: 5 * time.Millisecond})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if total := len(done[0].Completed) + len(done[1].Completed); total != len(m.Shards) {
		t.Errorf("workers completed %d + %d shards, want %d total",
			len(done[0].Completed), len(done[1].Completed), len(m.Shards))
	}
	if got, want := mergedQueueBytes(t, dir, m), baselineMergedBytes(t, m.Sweep); string(got) != string(want) {
		t.Errorf("concurrent dispatch merge differs from single-process sweep")
	}
}

// A shard that keeps losing its worker exhausts its attempt cap and
// is marked terminally failed; dispatchers report it (wrapped in
// ErrShardsFailed, mapped to its own exit code by ppsweep) instead of
// spinning, and later dispatchers see the marker immediately.
func TestDispatchAttemptCap(t *testing.T) {
	m := dispatchPlan(t)
	dir := t.TempDir()
	victim := m.Shards[0].ID
	stale := Lease{
		Schema:      ManifestSchema,
		Shard:       victim,
		Token:       newToken(),
		Attempt:     3, // the default cap
		HeartbeatAt: time.Now().UTC().Add(-time.Hour),
	}
	if err := os.MkdirAll(PartialsDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONAtomic(LeasePath(dir, victim), &stale); err != nil {
		t.Fatal(err)
	}
	opts := DispatchOptions{Dir: dir, LeaseTTL: 5 * time.Millisecond, Poll: 2 * time.Millisecond}
	_, err := Dispatch(context.Background(), m, opts)
	if err == nil || !strings.Contains(err.Error(), victim) {
		t.Fatalf("want terminal failure naming %s, got %v", victim, err)
	}
	if !errors.Is(err, ErrShardsFailed) {
		t.Errorf("terminal failure not classified as ErrShardsFailed: %v", err)
	}
	if !fileExists(FailedPath(dir, victim)) {
		t.Error("no failed marker written")
	}
	// A second dispatcher trusts the marker and reports the same
	// failure without re-running anything.
	if _, err := Dispatch(context.Background(), m, opts); !errors.Is(err, ErrShardsFailed) || !strings.Contains(err.Error(), victim) {
		t.Errorf("failed marker not honored on rescan: %v", err)
	}
}

// Liveness is observed, never read off a foreign clock: a lease is
// never stolen on first sighting however stale its wall-clock stamps
// look, a (token, seq) frozen for a local TTL is stolen with the
// attempt incremented (the cap holds across dispatcher processes),
// and an advancing seq restarts the observation clock so heartbeating
// owners on skewed clocks are never robbed.
func TestTryAcquireStealIncrementsAttempt(t *testing.T) {
	m := dispatchPlan(t)
	dir := t.TempDir()
	var c Counters
	d := &dispatcher{
		m:        m,
		opts:     DispatchOptions{Dir: dir, LeaseTTL: 5 * time.Millisecond}.withDefaults(),
		env:      newQueueEnv(nil, 0, 0, &c),
		obs:      make(map[string]leaseObs),
		verified: make(map[string]bool),
		done:     make(map[string]bool),
	}
	ctx := context.Background()
	id := m.Shards[0].ID
	stale := Lease{Shard: id, Token: newToken(), Attempt: 1, HeartbeatAt: time.Now().UTC().Add(-time.Hour)}
	if err := writeJSONAtomic(LeasePath(dir, id), &stale); err != nil {
		t.Fatal(err)
	}
	if _, state, err := d.tryAcquire(ctx, id); err != nil || state != leaseBusy {
		t.Fatalf("first sighting must be busy (hour-old wall stamp notwithstanding): state=%v err=%v", state, err)
	}
	time.Sleep(10 * time.Millisecond) // > LeaseTTL of local time, seq frozen
	lease, state, err := d.tryAcquire(ctx, id)
	if err != nil || state != leaseAcquired {
		t.Fatalf("steal of expired lease: state=%v err=%v", state, err)
	}
	if lease.Attempt != 2 {
		t.Errorf("stolen lease attempt = %d, want 2", lease.Attempt)
	}
	if c.Steals != 1 {
		t.Errorf("steal counter = %d, want 1", c.Steals)
	}
	// An owner that keeps heartbeating — advancing seq — is never
	// stolen, because each new (token, seq) restarts the local clock.
	live := Lease{Shard: id, Token: newToken(), Attempt: 1, Seq: 1, HeartbeatAt: time.Now().UTC()}
	if err := writeJSONAtomic(LeasePath(dir, id), &live); err != nil {
		t.Fatal(err)
	}
	if _, state, _ := d.tryAcquire(ctx, id); state != leaseBusy {
		t.Errorf("fresh (token, seq) stolen on first sight: state=%v", state)
	}
	time.Sleep(10 * time.Millisecond)
	live.Seq = 2 // heartbeat arrived
	if err := writeJSONAtomic(LeasePath(dir, id), &live); err != nil {
		t.Fatal(err)
	}
	if _, state, _ := d.tryAcquire(ctx, id); state != leaseBusy {
		t.Errorf("heartbeating lease stolen: state=%v", state)
	}
}

// Cancelling the dispatcher context stops the scan promptly and
// reports the cancellation.
func TestDispatchCancelled(t *testing.T) {
	m := dispatchPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Dispatch(ctx, m, DispatchOptions{Dir: t.TempDir()}); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}
