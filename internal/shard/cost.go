package shard

import (
	"fmt"
	"math"
	"math/bits"
)

// CostModel estimates the relative work of one trial at population
// size x, so the planner can cut shards at equal expected *cost*
// rather than equal trial count. Linear-cut plans straggle badly on
// geometric sweeps: with sizes 2^10..2^20 a shard holding the 2^20
// cells costs ~1000× a shard holding the 2^10 cells under any exact
// per-interaction scheduler, and the whole sweep waits on it.
//
// Costs are relative integers (only ratios matter) and must be ≥ 1 so
// every cell has positive weight. Models must be pure functions of x:
// planning is re-derived independently on every host and has to agree
// byte for byte.
type CostModel interface {
	// Name identifies the model in manifests and CLI flags.
	Name() string
	// TrialCost is the relative expected work of one trial at size x.
	TrialCost(x int64) int64
}

// UniformCost weighs every trial equally, reproducing the legacy
// equal-trial-count cut: Plan is PlanCost under UniformCost.
type UniformCost struct{}

func (UniformCost) Name() string          { return "uniform" }
func (UniformCost) TrialCost(int64) int64 { return 1 }

// LinearCost weighs a trial by its population size: convergent
// protocols under the exact per-interaction schedulers (weighted,
// uniform, batched) execute Θ(x)–Θ(x log x) interactions per trial at
// O(log |T|) each, so expected wall time is ~linear in x to first
// order. This is the scheduler-aware default for those schedulers.
type LinearCost struct{}

func (LinearCost) Name() string { return "linear" }
func (LinearCost) TrialCost(x int64) int64 {
	if x < 1 {
		return 1
	}
	return x
}

// LogCost weighs a trial by log₂ x: under the count-batched scheduler
// the per-interaction cost is amortized away and a trial's work is
// dominated by the number of adaptive batches, which grows roughly
// with log of the population (drift tolerances scale with counts).
// This is the scheduler-aware default for countbatch.
type LogCost struct{}

func (LogCost) Name() string { return "log" }
func (LogCost) TrialCost(x int64) int64 {
	if x < 1 {
		return 1
	}
	return int64(bits.Len64(uint64(x)))
}

// DefaultCost picks the scheduler-aware model: count-batched trials
// (countbatch, and the hybrid auto scheduler that batches whenever it
// pays) cost ~log x, every exact per-interaction scheduler ~x.
func DefaultCost(scheduler string) CostModel {
	if scheduler == "countbatch" || scheduler == "auto" {
		return LogCost{}
	}
	return LinearCost{}
}

// CostByName resolves a CLI cost-model name. The empty name and
// "auto" select the scheduler-aware default.
func CostByName(name, scheduler string) (CostModel, error) {
	switch name {
	case "", "auto":
		return DefaultCost(scheduler), nil
	case "uniform":
		return UniformCost{}, nil
	case "linear":
		return LinearCost{}, nil
	case "log":
		return LogCost{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown cost model %q (have auto, uniform, linear, log)", name)
	}
}

// PlanCost partitions the sweep into at most shards specs of
// near-equal total cost under the model. Like Plan it walks the
// (size × trial) grid size-major and cuts contiguous runs, so the
// manifest is a pure function of (spec, shards, model) and any host
// re-derives it byte-identically. Cuts land at cell granularity, so
// one cell costlier than the quantile width swallows its whole shard;
// quantiles falling inside the same cell produce no empty shards —
// the manifest may carry fewer specs than requested.
//
// PlanCost with UniformCost is exactly Plan: equal cost is equal
// trial count when every trial costs 1.
func PlanCost(sw SweepSpec, shards int, model CostModel) (*Manifest, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive")
	}
	cellsTotal := len(sw.Sizes) * sw.Trials
	if shards > cellsTotal {
		shards = cellsTotal
	}
	// Per-size trial cost and size-major prefix sums over whole sizes:
	// the cumulative cost of the first k grid cells is
	// prefix[k/Trials] + (k%Trials)·cost[k/Trials].
	cost := make([]int64, len(sw.Sizes))
	prefix := make([]int64, len(sw.Sizes)+1)
	for i, x := range sw.Sizes {
		c := model.TrialCost(x)
		if c < 1 {
			return nil, fmt.Errorf("shard: cost model %s gives non-positive cost %d at x=%d", model.Name(), c, x)
		}
		cost[i] = c
		if c > math.MaxInt64/int64(sw.Trials) || prefix[i] > math.MaxInt64-c*int64(sw.Trials) {
			return nil, fmt.Errorf("shard: total cost overflows int64 under model %s", model.Name())
		}
		prefix[i+1] = prefix[i] + c*int64(sw.Trials)
	}
	total := prefix[len(sw.Sizes)]
	if total > math.MaxInt64/int64(shards) {
		return nil, fmt.Errorf("shard: total cost %d too large for %d-shard quantiles", total, shards)
	}
	m := &Manifest{Schema: ManifestSchema, Sweep: sw, Shards: make([]Spec, 0, shards)}
	if model.Name() != (UniformCost{}).Name() {
		m.CostModel = model.Name()
	}
	// Boundary i is the largest cell index k with cum(k) ≤ ⌊i·total/shards⌋;
	// under UniformCost this reduces to k = ⌊i·cells/shards⌋, the Plan cut.
	cut := func(i int) int {
		q := int64(i) * total / int64(shards)
		// Largest whole-size index si with prefix[si] ≤ q, then trials
		// within that size.
		si := 0
		for si < len(sw.Sizes) && prefix[si+1] <= q {
			si++
		}
		if si == len(sw.Sizes) {
			return cellsTotal
		}
		return si*sw.Trials + int((q-prefix[si])/cost[si])
	}
	prev := 0
	for i := 1; i <= shards; i++ {
		hi := cut(i)
		if i == shards {
			hi = cellsTotal // guard against ⌊·⌋ shaving the last cell
		}
		if hi <= prev {
			continue // quantile landed inside the previous cut's cell
		}
		spec := Spec{ID: fmt.Sprintf("s%03d", len(m.Shards))}
		for si := prev / sw.Trials; si*sw.Trials < hi; si++ {
			tLo := max(prev, si*sw.Trials) - si*sw.Trials
			tHi := min(hi, (si+1)*sw.Trials) - si*sw.Trials
			spec.Cells = append(spec.Cells, Cell{X: sw.Sizes[si], TrialLo: tLo, TrialHi: tHi})
		}
		m.Shards = append(m.Shards, spec)
		prev = hi
	}
	return m, nil
}

// PlanCostBlock is PlanCost with the trial axis diced into fixed
// blocks of block trials before the cut: per size, cells are
// [0,block), [block,2·block), … (the last one ragged), and shards are
// contiguous runs of whole blocks at near-equal cost. The dice makes
// every cell boundary a pure function of (spec, block) — independent
// of the shard count — which is what anytime stopping needs: the
// StopRule is evaluated at cell boundaries, so on a diced plan the
// stopping decision (and hence the reported artifact) is identical
// whether the sweep ran on 1 worker or 100, cut 2 ways or 7. It also
// fixes the granularity of streamed deltas and of resumable
// persistence. block = 0 is exactly PlanCost; the manifest records
// the dice in its Block field.
func PlanCostBlock(sw SweepSpec, shards int, model CostModel, block int) (*Manifest, error) {
	if block < 0 {
		return nil, fmt.Errorf("shard: negative trial block %d", block)
	}
	if block == 0 {
		return PlanCost(sw, shards, model)
	}
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive")
	}
	// The diced grid, size-major like PlanCost's walk.
	var cells []Cell
	var costs []int64
	var total int64
	for _, x := range sw.Sizes {
		unit := model.TrialCost(x)
		if unit < 1 {
			return nil, fmt.Errorf("shard: cost model %s gives non-positive cost %d at x=%d", model.Name(), unit, x)
		}
		for lo := 0; lo < sw.Trials; lo += block {
			hi := min(lo+block, sw.Trials)
			n := int64(hi - lo)
			if unit > math.MaxInt64/n || total > math.MaxInt64-unit*n {
				return nil, fmt.Errorf("shard: total cost overflows int64 under model %s", model.Name())
			}
			cells = append(cells, Cell{X: x, TrialLo: lo, TrialHi: hi})
			costs = append(costs, unit*n)
			total += unit * n
		}
	}
	if shards > len(cells) {
		shards = len(cells)
	}
	if total > math.MaxInt64/int64(shards) {
		return nil, fmt.Errorf("shard: total cost %d too large for %d-shard quantiles", total, shards)
	}
	m := &Manifest{Schema: ManifestSchema, Sweep: sw, Block: block, Shards: make([]Spec, 0, shards)}
	if model.Name() != (UniformCost{}).Name() {
		m.CostModel = model.Name()
	}
	// Quantile cuts at block granularity: boundary i is the largest
	// block index k whose cumulative cost is ≤ ⌊i·total/shards⌋.
	prev, cum := 0, int64(0)
	k := 0
	for i := 1; i <= shards; i++ {
		q := int64(i) * total / int64(shards)
		for k < len(cells) && cum+costs[k] <= q {
			cum += costs[k]
			k++
		}
		hi := k
		if i == shards {
			hi = len(cells) // guard against ⌊·⌋ shaving the last block
			for k < len(cells) {
				cum += costs[k]
				k++
			}
		}
		if hi <= prev {
			continue // quantile landed inside the previous cut's block
		}
		spec := Spec{ID: fmt.Sprintf("s%03d", len(m.Shards))}
		spec.Cells = append(spec.Cells, cells[prev:hi]...)
		m.Shards = append(m.Shards, spec)
		prev = hi
	}
	return m, nil
}

// Cost is the shard's total cost under the model: Σ over cells of
// (trial count × per-trial cost), saturating at MaxInt64 — costs are
// relative and only feed ratios, so a manifest scored under a hotter
// model than it was planned with degrades gracefully instead of
// wrapping.
func (s *Spec) Cost(model CostModel) int64 {
	total := int64(0)
	for _, c := range s.Cells {
		n := int64(c.TrialHi - c.TrialLo)
		unit := model.TrialCost(c.X)
		if n > 0 && unit > math.MaxInt64/n {
			return math.MaxInt64
		}
		if total > math.MaxInt64-n*unit {
			return math.MaxInt64
		}
		total += n * unit
	}
	return total
}

// Imbalance is the manifest's max-shard / mean-shard cost ratio under
// the model: 1.0 is a perfectly balanced plan, and the ratio
// approximates how much longer the straggler shard runs than the
// fleet average. The planner's own model scores its plans; scoring a
// linear-cut plan with the workload's real cost model is how the
// cost-weighted planner's advantage is asserted in tests and pinned
// by BenchmarkPlanImbalance.
func (m *Manifest) Imbalance(model CostModel) float64 {
	if len(m.Shards) == 0 {
		return 0
	}
	maxC, sum := int64(0), int64(0)
	for i := range m.Shards {
		c := m.Shards[i].Cost(model)
		if c > maxC {
			maxC = c
		}
		sum += c
	}
	mean := float64(sum) / float64(len(m.Shards))
	if mean == 0 {
		return 0
	}
	return float64(maxC) / mean
}
