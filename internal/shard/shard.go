// Package shard turns a single-process population-protocol sweep into
// a fan-out/fan-in pipeline: Plan deterministically partitions a sweep
// (protocol × population sizes × trial blocks) into self-contained
// shard specs any process on any machine can execute, Run executes one
// shard on the sim engine and emits a partial-result artifact, and
// Merge folds any set of partial artifacts back into exactly the
// Stats/SweepPoints a single-process run would have produced.
//
// The exactness contract rests on two invariants:
//
//   - Seed derivation is positional, not sequential. A trial's seed is
//     DeriveSeed(DeriveSeedK(base, x), trial): a pure function of the
//     sweep's base seed, the population size, and the absolute trial
//     index — independent of which shard runs it, in what order, or on
//     which host.
//   - Statistics are mergeable accumulators. sim.Stats carries exact
//     integer counts, sums (128-bit for Σsteps²), and extrema, never
//     precomputed means, so folding partials is associative and
//     bit-identical to direct aggregation.
//
// On top of the plan/run/merge core sit the scaling layers: PlanCost
// cuts shards at equal expected cost under a pluggable CostModel so
// large-population cells don't straggle; RunResumable persists each
// completed cell by atomic rename so a killed worker loses at most
// the cell in flight; and Dispatch turns a shared directory into a
// work queue — lease files with heartbeats, expired-lease stealing
// with per-shard attempt caps — whose every interleaving of kills,
// resumes and redispatches still merges bit-identically to the
// single-process sweep, because execution is idempotent under the two
// invariants above.
//
// The queue is hardened for lossy shared filesystems. Every artifact
// the queue trades in (cell partials, shard artifacts, lease files)
// carries a canonical-JSON CRC-32C checksum verified on every read;
// a document that fails its checksum — torn write, bit rot, stray
// editor — is moved to a corrupt/ quarantine beside a .reason file
// and its work recomputed, never silently merged and never re-read
// in a loop. (The final Merged output deliberately has no checksum,
// so byte-diffing merged files across runs stays meaningful.) Queue
// I/O retries transient errors (the ESTALE/EINTR family) with
// exponential backoff and full jitter before giving up with
// ErrQueueIO, and lease liveness is judged by each observer's own
// clock watching the lease's monotonic heartbeat sequence — never by
// comparing wall-clock stamps across hosts — so clock skew can
// neither rob a live owner nor keep a dead one's lease. All I/O goes
// through the faultfs seam, so every one of these failure paths is
// exercised by seeded, reproducible fault schedules.
//
// Sweeps are anytime computations. PlanCostBlock dices each size's
// trial axis into fixed blocks, making the cell grid a pure function
// of the spec and the block size — independent of the shard count —
// so cells from any cut of the same sweep interoperate. MergePartial
// folds any subset of shard artifacts and cell partials into a valid
// document with per-point trials_done/trials_planned completeness;
// with every cell present its bytes equal the strict Merge's. A
// sim.StopRule adds sequential stopping: a size stops once the
// gap-free prefix of its trials meets the CI target, and the
// canonical stopping boundary is decided at merge time — MergePartial
// truncates each size at the first satisfied block boundary — so the
// stopped document is a pure function of (spec, block, rule). Workers
// that skip cells past the boundary at run time are an optimization,
// never a semantic: racing workers, shard cuts and worker counts all
// produce byte-identical stopped documents.
package shard

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/sim"
)

// ManifestSchema versions the plan format; ArtifactSchema versions the
// partial-result format. Merge refuses artifacts whose schema it does
// not understand rather than silently misfolding them.
const (
	ManifestSchema = 1
	ArtifactSchema = 1
)

// SweepSpec is the full description of a sweep: everything a worker
// needs to reproduce its slice of the work, with no reference to the
// planning process. The zero values of MaxSteps and Patience inherit
// the sim defaults (1<<20 cap, whole-run convergence).
type SweepSpec struct {
	// Protocol and Param name a registry construction.
	Protocol string `json:"protocol"`
	Param    int64  `json:"param"`
	// InputState is the state holding the swept agent count.
	InputState string `json:"input_state"`
	// Sizes are the population sizes (input counts) swept, in report
	// order. Duplicates are rejected: a size is the merge key.
	Sizes []int64 `json:"sizes"`
	// Trials is the number of runs per size; shards cover sub-ranges of
	// [0, Trials).
	Trials int `json:"trials"`
	// Seed is the sweep's base seed; per-(size, trial) seeds derive
	// from it positionally.
	Seed int64 `json:"seed"`
	// MaxSteps and Patience mirror sim.Options.
	MaxSteps int `json:"max_steps,omitempty"`
	Patience int `json:"patience,omitempty"`
	// Scheduler, Batch and Epsilon mirror the ppsim flags; an empty
	// scheduler means weighted.
	Scheduler string  `json:"scheduler,omitempty"`
	Batch     int     `json:"batch,omitempty"`
	Epsilon   float64 `json:"epsilon,omitempty"`
}

// Validate checks the spec without instantiating the protocol.
func (sw *SweepSpec) Validate() error {
	if _, err := registry.Lookup(sw.Protocol); err != nil {
		return err
	}
	if sw.InputState == "" {
		return errors.New("shard: empty input state")
	}
	if len(sw.Sizes) == 0 {
		return errors.New("shard: empty size list")
	}
	seen := make(map[int64]bool, len(sw.Sizes))
	for _, x := range sw.Sizes {
		if x < 0 {
			return fmt.Errorf("shard: negative size %d", x)
		}
		if seen[x] {
			return fmt.Errorf("shard: duplicate size %d (sizes are merge keys)", x)
		}
		seen[x] = true
	}
	if sw.Trials <= 0 {
		return errors.New("shard: trials must be positive")
	}
	if sw.MaxSteps < 0 || sw.Patience < 0 || sw.Batch < 0 {
		return errors.New("shard: negative max_steps/patience/batch")
	}
	if _, err := sim.SchedulerByName(sw.Scheduler, sw.Batch, sw.Epsilon, 0); err != nil {
		return err
	}
	return nil
}

// Build instantiates the protocol and returns it with the counting
// threshold n it decides (the expected predicate is x ≥ n). Sweeps are
// defined for counting protocols only: without a threshold there is no
// per-size expected value to score Correct against.
func (sw *SweepSpec) Build() (*core.Protocol, int64, error) {
	if err := sw.Validate(); err != nil {
		return nil, 0, err
	}
	p, n, err := registry.Make(sw.Protocol, sw.Param)
	if err != nil {
		return nil, 0, err
	}
	if n <= 0 {
		return nil, 0, fmt.Errorf("shard: %s decides no counting predicate; sweeps need a threshold", sw.Protocol)
	}
	return p, n, nil
}

// Options translates the spec into sim.Options. Workers bounds the
// per-point trial pool and the scheduler's span-parallel draw (0 =
// GOMAXPROCS); results are byte-identical for any value.
func (sw *SweepSpec) Options(workers int) (sim.Options, error) {
	sched, err := sim.SchedulerByName(sw.Scheduler, sw.Batch, sw.Epsilon, workers)
	if err != nil {
		return sim.Options{}, err
	}
	return sim.Options{
		Seed:           sw.Seed,
		MaxSteps:       sw.MaxSteps,
		StablePatience: sw.Patience,
		Scheduler:      sched,
		Workers:        workers,
	}, nil
}

// Cell is one shard's slice of one population size: the trial range
// [TrialLo, TrialHi) of size X.
type Cell struct {
	X       int64 `json:"x"`
	TrialLo int   `json:"trial_lo"`
	TrialHi int   `json:"trial_hi"`
}

// Spec is one self-contained shard: a set of cells. Together with the
// manifest's SweepSpec it fully determines the shard's work and seeds.
type Spec struct {
	ID    string `json:"id"`
	Cells []Cell `json:"cells"`
}

// Trials is the shard's total trial count across cells.
func (s *Spec) Trials() int {
	total := 0
	for _, c := range s.Cells {
		total += c.TrialHi - c.TrialLo
	}
	return total
}

// Manifest is the plan document: the sweep and its partition.
// CostModel records the model a cost-weighted plan was cut with —
// provenance only (execution and merging never read it; empty means
// uniform, so legacy manifests are unchanged).
type Manifest struct {
	Schema    int       `json:"schema"`
	Sweep     SweepSpec `json:"sweep"`
	CostModel string    `json:"cost_model,omitempty"`
	// Block records the trial-axis dice of PlanCostBlock: every cell
	// boundary lands on a multiple of Block (plus the ragged end of
	// the trial range), so the cell grid — and with it every anytime
	// stopping checkpoint — is independent of the shard count. 0
	// means the legacy cut, where boundaries follow the cost
	// quantiles. Provenance only: it does not enter the sweep spec,
	// so diced and undiced runs of one sweep merge together.
	Block  int    `json:"block,omitempty"`
	Shards []Spec `json:"shards"`
}

// Shard returns the spec with the given id.
func (m *Manifest) Shard(id string) (*Spec, error) {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return &m.Shards[i], nil
		}
	}
	ids := make([]string, len(m.Shards))
	for i, s := range m.Shards {
		ids[i] = s.ID
	}
	return nil, fmt.Errorf("shard: no shard %q in manifest (have %v)", id, ids)
}

// Validate checks the manifest's schema and sweep, and that the shards
// exactly tile the (size × trial) grid.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("shard: manifest schema %d, this build understands %d", m.Schema, ManifestSchema)
	}
	if err := m.Sweep.Validate(); err != nil {
		return err
	}
	covered := make(map[int64][]Cell, len(m.Sweep.Sizes))
	ids := make(map[string]bool, len(m.Shards))
	for _, s := range m.Shards {
		if s.ID == "" || ids[s.ID] {
			return fmt.Errorf("shard: missing or duplicate shard id %q", s.ID)
		}
		ids[s.ID] = true
		for _, c := range s.Cells {
			covered[c.X] = append(covered[c.X], c)
		}
	}
	for x, cells := range covered {
		if err := checkTiling(x, cells, m.Sweep.Trials); err != nil {
			return err
		}
	}
	for _, x := range m.Sweep.Sizes {
		if covered[x] == nil {
			return fmt.Errorf("shard: size %d not covered by any shard", x)
		}
	}
	if len(covered) != len(m.Sweep.Sizes) {
		return fmt.Errorf("shard: shards cover %d sizes, sweep has %d", len(covered), len(m.Sweep.Sizes))
	}
	return nil
}

// Plan deterministically partitions the sweep into at most shards
// specs of near-equal trial count. The (size × trial) grid is walked
// size-major and cut into contiguous runs, so a shard covers a trial
// block of one size, whole sizes, or a mix — never an interleaving.
// The same (spec, shards) input always yields the identical manifest.
// Plan is PlanCost under UniformCost; sweeps over geometric size
// ranges should prefer PlanCost with a workload-matched model so
// large-x shards don't straggle.
func Plan(sw SweepSpec, shards int) (*Manifest, error) {
	return PlanCost(sw, shards, UniformCost{})
}
