package shard

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// A full resumable run with a cold partials dir must produce exactly
// the Points of the plain runner, and leave one sealed partial per
// cell.
func TestRunResumableMatchesRun(t *testing.T) {
	m, err := Plan(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, counters, err := RunResumable(context.Background(), m, "s000", 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Points, res.Points) {
		t.Errorf("resumable points differ from plain run:\n%+v\nvs\n%+v", plain.Points, res.Points)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "cell-") && strings.HasSuffix(e.Name(), ".json") {
			cells++
		}
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stray temp file %s", e.Name())
		}
	}
	spec, _ := m.Shard("s000")
	if cells != len(spec.Cells) {
		t.Errorf("%d cell partials persisted, want %d", cells, len(spec.Cells))
	}
	if counters.CellsComputed != len(spec.Cells) || counters.CellsLoaded != 0 {
		t.Errorf("cold run counters %+v, want %d computed / 0 loaded", counters, len(spec.Cells))
	}
	// Every persisted cell carries a verifying checksum.
	for _, c := range spec.Cells {
		data, err := os.ReadFile(filepath.Join(dir, cellFileName(c)))
		if err != nil {
			t.Fatal(err)
		}
		if legacy, err := verifyDoc(data, cellFileName(c)); err != nil || legacy {
			t.Errorf("cell %s: legacy=%v err=%v, want sealed and verifying", cellFileName(c), legacy, err)
		}
	}
}

// The kill-mid-shard contract: a worker that dies after persisting k
// cells loses nothing but the in-flight cell; a second attempt loads
// the k survivors and completes to the same artifact an uninterrupted
// run produces. A survivor corrupted in the meantime (torn write, bit
// rot) is quarantined into corrupt/ with a reason file and recomputed
// — never merged, never an error, never re-read forever.
func TestRunResumableKillResume(t *testing.T) {
	m, err := Plan(testSpec(), 1) // 4 cells, one per size
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var kc Counters
	kenv := newQueueEnv(nil, 0, 0, &kc)
	if _, err := runResumable(context.Background(), m, "s000", 0, dir, 2, kenv, sim.StopRule{}, nil); !errors.Is(err, errInjectedFailure) {
		t.Fatalf("injected failure not reported: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("%d partials after dying at 2 cells, want 2", len(entries))
	}
	// Corrupt one survivor: the resume must notice (checksum/parse),
	// quarantine it and recompute that cell — while genuinely loading
	// the intact survivor, observable in the counters.
	spec, _ := m.Shard("s000")
	poison := filepath.Join(dir, cellFileName(spec.Cells[0]))
	if err := os.WriteFile(poison, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, counters, err := RunResumable(context.Background(), m, "s000", 0, dir)
	if err != nil {
		t.Fatalf("resume over corrupt partial must recover, got %v", err)
	}
	if counters.Quarantined != 1 {
		t.Errorf("quarantined %d, want 1", counters.Quarantined)
	}
	if counters.CellsLoaded != 1 || counters.CellsComputed != 3 {
		t.Errorf("counters %+v, want 1 loaded (intact survivor) / 3 computed", counters)
	}
	qpath := filepath.Join(CorruptDir(dir), cellFileName(spec.Cells[0]))
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("poisoned partial not quarantined at %s: %v", qpath, err)
	}
	if _, err := os.Stat(qpath + ".reason"); err != nil {
		t.Errorf("no reason file next to quarantined partial: %v", err)
	}
	plain, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Points, resumed.Points) {
		t.Errorf("kill+corrupt+resume points differ from uninterrupted run:\n%+v\nvs\n%+v", plain.Points, resumed.Points)
	}
}

// Partials from a different sweep (same directory reused for another
// plan) must fail loudly, not silently recompute or — worse — merge:
// unlike corruption, this is an operator mixup quarantining would
// mask.
func TestRunResumableRejectsForeignPartials(t *testing.T) {
	sw := testSpec()
	m, err := Plan(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := RunResumable(context.Background(), m, "s000", 0, dir); err != nil {
		t.Fatal(err)
	}
	other := sw
	other.Seed++
	m2, err := Plan(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunResumable(context.Background(), m2, "s000", 0, dir); err == nil {
		t.Error("partials of a different sweep accepted")
	}
}

// Tampered partials are caught and quarantined, by either tripwire: a
// content edit under an unchanged checksum mismatches the checksum,
// and a checksum-stripped (legacy-looking) partial whose stats do not
// cover its claimed range fails the internal-consistency check that
// mirrors Merge's.
func TestRunResumableQuarantinesTamperedPartial(t *testing.T) {
	for _, strip := range []bool{false, true} {
		m, err := Plan(testSpec(), 1)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		baseline, _, err := RunResumable(context.Background(), m, "s000", 0, dir)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := m.Shard("s000")
		path := filepath.Join(dir, cellFileName(spec.Cells[0]))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var ca CellArtifact
		if err := json.Unmarshal(data, &ca); err != nil {
			t.Fatal(err)
		}
		ca.Stats.Trials-- // now inconsistent with the cell's range
		if strip {
			ca.Checksum = "" // legacy-looking: consistency check must catch it
		}
		if err := writeJSONAtomic(path, &ca); err != nil {
			t.Fatal(err)
		}
		res, counters, err := RunResumable(context.Background(), m, "s000", 0, dir)
		if err != nil {
			t.Fatalf("strip=%v: tampered partial must be quarantined and recomputed, got %v", strip, err)
		}
		if counters.Quarantined != 1 {
			t.Errorf("strip=%v: quarantined %d, want 1", strip, counters.Quarantined)
		}
		if !reflect.DeepEqual(baseline.Points, res.Points) {
			t.Errorf("strip=%v: recovered points differ from baseline", strip)
		}
	}
}
