package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// A full resumable run with a cold partials dir must produce exactly
// the Points of the plain runner, and leave one partial per cell.
func TestRunResumableMatchesRun(t *testing.T) {
	m, err := Plan(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResumable(context.Background(), m, "s000", 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Points, res.Points) {
		t.Errorf("resumable points differ from plain run:\n%+v\nvs\n%+v", plain.Points, res.Points)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "cell-") && strings.HasSuffix(e.Name(), ".json") {
			cells++
		}
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stray temp file %s", e.Name())
		}
	}
	spec, _ := m.Shard("s000")
	if cells != len(spec.Cells) {
		t.Errorf("%d cell partials persisted, want %d", cells, len(spec.Cells))
	}
}

// The kill-mid-shard contract: a worker that dies after persisting k
// cells loses nothing but the in-flight cell; a second attempt loads
// the k survivors (verified: recomputation would be indistinguishable
// here, so the test plants a poison pill) and completes to the same
// artifact an uninterrupted run produces.
func TestRunResumableKillResume(t *testing.T) {
	m, err := Plan(testSpec(), 1) // 4 cells, one per size
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := runResumable(context.Background(), m, "s000", 0, dir, 2); !errors.Is(err, errInjectedFailure) {
		t.Fatalf("injected failure not reported: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("%d partials after dying at 2 cells, want 2", len(entries))
	}
	// Loaded-not-recomputed is observable because corrupting a survivor
	// must break the resume: a runner that recomputed every cell would
	// never read the poisoned file.
	spec, _ := m.Shard("s000")
	poison := filepath.Join(dir, cellFileName(spec.Cells[0]))
	if err := os.WriteFile(poison, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunResumable(context.Background(), m, "s000", 0, dir); err == nil {
		t.Fatal("corrupt partial silently ignored — resume is recomputing instead of loading")
	}
	// Restore by deleting the poison: the cell is simply recomputed.
	if err := os.Remove(poison); err != nil {
		t.Fatal(err)
	}
	resumed, err := RunResumable(context.Background(), m, "s000", 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Points, resumed.Points) {
		t.Errorf("kill+resume points differ from uninterrupted run:\n%+v\nvs\n%+v", plain.Points, resumed.Points)
	}
}

// Partials from a different sweep (same directory reused for another
// plan) must fail loudly, not silently recompute or — worse — merge.
func TestRunResumableRejectsForeignPartials(t *testing.T) {
	sw := testSpec()
	m, err := Plan(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := RunResumable(context.Background(), m, "s000", 0, dir); err != nil {
		t.Fatal(err)
	}
	other := sw
	other.Seed++
	m2, err := Plan(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunResumable(context.Background(), m2, "s000", 0, dir); err == nil {
		t.Error("partials of a different sweep accepted")
	}
}

// A cell partial whose stats do not cover its claimed range (torn by
// hand, truncated accumulators) is rejected at load time, mirroring
// Merge's internal-consistency check.
func TestRunResumableRejectsInconsistentPartial(t *testing.T) {
	m, err := Plan(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := RunResumable(context.Background(), m, "s000", 0, dir); err != nil {
		t.Fatal(err)
	}
	spec, _ := m.Shard("s000")
	path := filepath.Join(dir, cellFileName(spec.Cells[0]))
	ca, err := loadCell(path, m.Sweep, spec.Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	ca.Stats.Trials--
	if err := writeJSONAtomic(path, ca); err != nil {
		t.Fatal(err)
	}
	if _, err := RunResumable(context.Background(), m, "s000", 0, dir); err == nil {
		t.Error("internally inconsistent cell partial accepted")
	}
}
