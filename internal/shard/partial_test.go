package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// cellPoints runs every shard of a manifest in-process and returns the
// flattened cell-granularity points in plan order (size-major, trial
// order within a size — the order a single sequential worker would
// deliver them).
func cellPoints(t *testing.T, m *Manifest) []PartialPoint {
	t.Helper()
	byCell := make(map[Cell]sim.Stats)
	for _, spec := range m.Shards {
		a, err := Run(context.Background(), m, spec.ID, 0)
		if err != nil {
			t.Fatalf("Run(%s): %v", spec.ID, err)
		}
		for _, pt := range a.Points {
			byCell[Cell{X: pt.X, TrialLo: pt.TrialLo, TrialHi: pt.TrialHi}] = pt.Stats
		}
	}
	var out []PartialPoint
	for _, x := range m.Sweep.Sizes {
		var cs []Cell
		for c := range byCell {
			if c.X == x {
				cs = append(cs, c)
			}
		}
		sortCellsByTrialLo(cs)
		for _, c := range cs {
			out = append(out, PartialPoint{X: c.X, TrialLo: c.TrialLo, TrialHi: c.TrialHi, Stats: byCell[c]})
		}
	}
	return out
}

// The prefix-validity property: every prefix of the cell stream merges
// into a schema-valid anytime document whose completeness counters are
// consistent, whose folded statistics cover exactly the trials they
// claim, and whose per-point means sit inside a widened confidence
// interval around the full run's mean. Deterministic seeds make the
// containment assertion exact rather than probabilistic.
func TestMergePartialEveryPrefix(t *testing.T) {
	sw := testSpec()
	m, err := PlanCostBlock(sw, 3, DefaultCost(sw.Scheduler), 2)
	if err != nil {
		t.Fatal(err)
	}
	points := cellPoints(t, m)
	full, err := MergePartial(sw, points, sim.StopRule{})
	if err != nil {
		t.Fatal(err)
	}
	fullMean := make(map[int64]float64, len(full.Points))
	fullHalf := make(map[int64]float64, len(full.Points))
	for i := range full.Points {
		fullMean[full.Points[i].X] = full.Points[i].Stats.MeanSteps()
		fullHalf[full.Points[i].X] = full.Points[i].Stats.HalfCI95Steps()
	}
	for k := 0; k <= len(points); k++ {
		got, err := MergePartial(sw, points[:k], sim.StopRule{})
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if got.Schema != ArtifactSchema || !reflect.DeepEqual(got.Sweep, sw) {
			t.Fatalf("prefix %d: schema/sweep mangled", k)
		}
		if len(got.Points) != len(sw.Sizes) {
			t.Fatalf("prefix %d: %d points, want one per size", k, len(got.Points))
		}
		doneTotal := 0
		for _, pt := range got.Points {
			done := sw.Trials
			if pt.TrialsPlanned > 0 {
				if pt.TrialsPlanned != sw.Trials {
					t.Fatalf("prefix %d x=%d: trials_planned %d, want %d", k, pt.X, pt.TrialsPlanned, sw.Trials)
				}
				done = pt.TrialsDone
			}
			if pt.Stats.Trials != done {
				t.Fatalf("prefix %d x=%d: stats cover %d trials, metadata says %d", k, pt.X, pt.Stats.Trials, done)
			}
			doneTotal += done
			// Widened-CI containment: partial mean within (partial + full)
			// half-widths of the full mean. With < 2 trials the partial CI
			// is undefined; skip those.
			if done >= 2 {
				gap := pt.Stats.MeanSteps() - fullMean[pt.X]
				if gap < 0 {
					gap = -gap
				}
				if width := pt.Stats.HalfCI95Steps() + fullHalf[pt.X]; gap > width {
					t.Errorf("prefix %d x=%d: partial mean %.2f vs full %.2f exceeds widened CI %.2f",
						k, pt.X, pt.Stats.MeanSteps(), fullMean[pt.X], width)
				}
			}
		}
		if k == len(points) {
			if got.Partial {
				t.Fatal("complete set still marked partial")
			}
		} else if doneTotal >= len(sw.Sizes)*sw.Trials {
			t.Fatalf("prefix %d: claims completeness with cells missing", k)
		}
	}
}

// Random subsets must merge without error, folding exactly the maximal
// gap-free prefix per size and never counting a cell that sits beyond
// a gap.
func TestMergePartialRandomSubsets(t *testing.T) {
	sw := testSpec()
	m, err := PlanCostBlock(sw, 4, DefaultCost(sw.Scheduler), 2)
	if err != nil {
		t.Fatal(err)
	}
	points := cellPoints(t, m)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		var subset []PartialPoint
		for _, pt := range points {
			if rng.Intn(2) == 0 {
				subset = append(subset, pt)
			}
		}
		got, err := MergePartial(sw, subset, sim.StopRule{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Expected prefix per size, computed independently.
		want := make(map[int64]int, len(sw.Sizes))
		for _, x := range sw.Sizes {
			var cs []Cell
			for _, pt := range subset {
				if pt.X == x {
					cs = append(cs, Cell{X: x, TrialLo: pt.TrialLo, TrialHi: pt.TrialHi})
				}
			}
			sortCellsByTrialLo(cs)
			done := 0
			for _, c := range cs {
				if c.TrialLo != done {
					break
				}
				done = c.TrialHi
			}
			want[x] = done
		}
		for _, pt := range got.Points {
			if pt.Stats.Trials != want[pt.X] {
				t.Fatalf("round %d x=%d: folded %d trials, want gap-free prefix %d", round, pt.X, pt.Stats.Trials, want[pt.X])
			}
		}
	}
}

// The full-completion invariant, the tentpole's headline property:
// MergePartial over the complete cell set marshals byte-identically to
// Merge's document, for every shard cut — and the bytes agree across
// cuts, because block dicing makes the cell grid cut-independent.
func TestMergePartialFullSetByteIdentical(t *testing.T) {
	sw := testSpec()
	var first []byte
	for _, cut := range []int{1, 2, 4, 7} {
		m, err := PlanCostBlock(sw, cut, DefaultCost(sw.Scheduler), 2)
		if err != nil {
			t.Fatal(err)
		}
		var arts []*Artifact
		for _, spec := range m.Shards {
			a, err := Run(context.Background(), m, spec.ID, 0)
			if err != nil {
				t.Fatal(err)
			}
			arts = append(arts, a)
		}
		merged, err := Merge(arts)
		if err != nil {
			t.Fatal(err)
		}
		wsw, pts, err := CollectPartial(arts, nil)
		if err != nil {
			t.Fatal(err)
		}
		anytime, err := MergePartial(wsw, pts, sim.StopRule{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.MarshalIndent(anytime, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d: MergePartial over all cells differs from Merge:\n%s\nvs\n%s", cut, got, want)
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(got, first) {
			t.Fatalf("cut %d: merged bytes differ from cut 1", cut)
		}
	}
}

// CollectPartial accepts mixed shard artifacts and loose cell
// partials, and rejects cross-sweep and cross-schema mixes.
func TestCollectPartialSources(t *testing.T) {
	sw := testSpec()
	m, err := PlanCostBlock(sw, 2, DefaultCost(sw.Scheduler), 3)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Run(context.Background(), m, "s001", 0)
	if err != nil {
		t.Fatal(err)
	}
	var cells []*CellArtifact
	for _, pt := range a1.Points {
		cells = append(cells, &CellArtifact{
			Schema: ArtifactSchema, Sweep: sw,
			Cell:  Cell{X: pt.X, TrialLo: pt.TrialLo, TrialHi: pt.TrialHi},
			Stats: pt.Stats,
		})
	}
	wsw, pts, err := CollectPartial([]*Artifact{a0}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wsw, sw) {
		t.Fatal("collected sweep differs")
	}
	if got, err := MergePartial(wsw, pts, sim.StopRule{}); err != nil || got.Partial {
		t.Fatalf("artifact+cells covering the full grid should merge complete, got partial=%v err=%v", got != nil && got.Partial, err)
	}
	foreign := *cells[0]
	foreign.Sweep.Seed++
	if _, _, err := CollectPartial([]*Artifact{a0}, []*CellArtifact{&foreign}); err == nil {
		t.Error("cell of a different sweep accepted")
	}
	badSchema := *cells[0]
	badSchema.Schema = 99
	if _, _, err := CollectPartial(nil, []*CellArtifact{&badSchema}); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, _, err := CollectPartial(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

// MergePartial's error matrix: foreign sizes, malformed ranges,
// stats/range inconsistency, overlapping ranges, and exact duplicates
// with disagreeing stats (corrupt) vs agreeing stats (tolerated).
func TestMergePartialErrors(t *testing.T) {
	sw := testSpec()
	m, err := PlanCostBlock(sw, 1, DefaultCost(sw.Scheduler), 2)
	if err != nil {
		t.Fatal(err)
	}
	points := cellPoints(t, m)
	mutate := func(f func([]PartialPoint) []PartialPoint) []PartialPoint {
		cp := append([]PartialPoint(nil), points...)
		return f(cp)
	}
	cases := []struct {
		name string
		pts  []PartialPoint
		want string
	}{
		{"foreign size", mutate(func(p []PartialPoint) []PartialPoint {
			p[0].X = 9999
			return p
		}), "does not contain"},
		{"inverted range", mutate(func(p []PartialPoint) []PartialPoint {
			p[0].TrialLo, p[0].TrialHi = p[0].TrialHi, p[0].TrialLo
			return p
		}), "invalid trial range"},
		{"stats mismatch", mutate(func(p []PartialPoint) []PartialPoint {
			p[0].Stats.Trials++
			return p
		}), "stats aggregate"},
		{"overlap", mutate(func(p []PartialPoint) []PartialPoint {
			q := p[1]
			q.TrialLo, q.TrialHi = q.TrialLo-1, q.TrialHi-1
			q.Stats = p[0].Stats
			return append(p, q)
		}), "overlap an earlier range"},
		{"disagreeing duplicate", mutate(func(p []PartialPoint) []PartialPoint {
			q := p[0]
			q.Stats.SumSteps++
			return append(p, q)
		}), "disagreeing statistics"},
	}
	for _, tc := range cases {
		if _, err := MergePartial(sw, tc.pts, sim.StopRule{}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// The benign twin: an exact duplicate with identical stats folds
	// once and succeeds.
	dup := append(append([]PartialPoint(nil), points...), points[0])
	if got, err := MergePartial(sw, dup, sim.StopRule{}); err != nil || got.Partial {
		t.Errorf("agreeing duplicate rejected: partial=%v err=%v", got != nil && got.Partial, err)
	}
	if _, err := MergePartial(sw, points, sim.StopRule{TargetRelCI: 2}); err == nil {
		t.Error("invalid stop rule accepted")
	}
}

// SealCellLine / DecodeCellLine: the NDJSON delta round-trips, its
// checksum matches the indented on-disk form of the same cell, and a
// flipped byte is caught.
func TestCellLineRoundTrip(t *testing.T) {
	sw := testSpec()
	m, err := Plan(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), m, "s000", 0)
	if err != nil {
		t.Fatal(err)
	}
	pt := a.Points[0]
	ca := &CellArtifact{
		Schema: ArtifactSchema, Sweep: sw,
		Cell:  Cell{X: pt.X, TrialLo: pt.TrialLo, TrialHi: pt.TrialHi},
		Stats: pt.Stats, Host: a.Host,
	}
	line, err := SealCellLine(ca)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(line, '\n') {
		t.Fatal("sealed delta line contains a newline")
	}
	back, err := DecodeCellLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cell != ca.Cell || back.Stats != ca.Stats {
		t.Fatal("delta round-trip lost content")
	}
	// The same document indented verifies against the same checksum:
	// canonical checksums ignore whitespace.
	indented, err := json.MarshalIndent(ca, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCellLine(indented); err != nil {
		t.Fatalf("indented twin of a sealed delta rejected: %v", err)
	}
	bad := bytes.Replace(line, []byte(`"trials"`), []byte(`"trialz"`), 1)
	if _, err := DecodeCellLine(bad); err == nil {
		t.Error("tampered delta accepted")
	}
	var ce *corruptError
	if _, err := DecodeCellLine([]byte("{torn")); err == nil {
		t.Error("torn delta accepted")
	} else if !errors.As(err, &ce) {
		t.Errorf("torn delta classified %T, want corrupt", err)
	}
}

// ScanPartialDir gathers part-*.json and cell-*.json from a dispatch
// layout (cells under partials/) and fails loudly on corruption.
func TestScanPartialDir(t *testing.T) {
	sw := testSpec()
	m, err := PlanCostBlock(sw, 2, DefaultCost(sw.Scheduler), 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Shard s000 finishes (part file); s001 leaves loose cells.
	a0, _, err := RunResumable(context.Background(), m, "s000", 0, PartialsDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteArtifact(DonePath(dir, "s000"), a0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunResumable(context.Background(), m, "s001", 0, PartialsDir(dir)); err != nil {
		t.Fatal(err)
	}
	arts, cells, err := ScanPartialDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("%d artifacts scanned, want 1", len(arts))
	}
	wsw, pts, err := CollectPartial(arts, cells)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergePartial(wsw, pts, sim.StopRule{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("scan of a finished queue directory merged incomplete")
	}
	// A torn cell file fails the scan loudly.
	spec, _ := m.Shard("s001")
	poison := fmt.Sprintf("%s/%s", PartialsDir(dir), cellFileName(spec.Cells[0]))
	if err := WriteFileAtomic(poison, []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScanPartialDir(dir); err == nil {
		t.Error("scan over a torn cell file succeeded")
	}
}
