package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"sync"

	"repro/internal/canon"
	"repro/internal/faultfs"
)

// Artifact integrity: every document the queue pipeline persists —
// cell partials, shard part-*.json, lease files — carries a content
// checksum ("crc32c:xxxxxxxx") computed over the document's canonical
// JSON form with the checksum member removed. Canonical means
// whitespace- and key-order-insensitive and number-exact (numbers are
// re-emitted digit for digit via json.Number, so 64-bit accumulator
// sums above 2^53 survive), so reformatting an artifact by hand does
// not invalidate it, while any content change — a torn write, a
// truncated tail, a flipped bit, an edited field — does.
//
// Verification runs on every read. A document with no checksum member
// is a pre-checksum artifact (PRs 3–6): it is accepted after the
// schema checks alone, logged once per process. A document whose
// checksum mismatches, or which does not parse at all, is corrupt: the
// reader quarantines it (moved to a corrupt/ sibling directory with a
// .reason file) and recomputes, never merges it and never re-reads it
// forever.

// ChecksumOf computes the canonical content checksum of one artifact
// document: parse with exact numbers, drop the top-level "checksum"
// member, re-marshal compact with sorted keys, CRC-32C. The machinery
// is the shared internal/canon implementation, which the serve result
// store and cache keys also build on; shard keeps this named wrapper
// because the queue-document convention (which member is dropped) is
// part of its artifact schema.
func ChecksumOf(doc []byte) (string, error) {
	return canon.Checksum(doc, "checksum")
}

// sealable is implemented by every persisted document type carrying a
// checksum field.
type sealable interface{ setChecksum(string) }

func (a *Artifact) setChecksum(s string)      { a.Checksum = s }
func (ca *CellArtifact) setChecksum(s string) { ca.Checksum = s }
func (l *Lease) setChecksum(s string)         { l.Checksum = s }

// sealJSON marshals v with its content checksum stamped in: the sum
// is computed with the checksum field cleared, then embedded, and the
// final document re-marshaled (indented, trailing newline — the
// repo-wide artifact convention).
func sealJSON(v sealable) ([]byte, error) {
	v.setChecksum("")
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	sum, err := ChecksumOf(data)
	if err != nil {
		return nil, err
	}
	v.setChecksum(sum)
	data, err = json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// corruptError classifies a document as corrupt: unreadable,
// checksum-mismatched, or internally inconsistent in a way that makes
// recomputation the only safe recovery. Readers quarantine-and-retry
// on it instead of failing; every other load error (foreign sweep,
// unknown schema) stays loud, because recomputing would mask an
// operator or build mismatch.
type corruptError struct{ reason string }

func (e *corruptError) Error() string { return "corrupt artifact: " + e.reason }

// verifyDoc checks data's embedded checksum. It returns a
// corruptError for unparseable documents and mismatched sums; legacy
// reports a parseable document with no checksum member (pre-checksum
// format), which the caller accepts after schema checks alone.
func verifyDoc(data []byte, path string) (legacy bool, err error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return false, &corruptError{reason: fmt.Sprintf("%s: unparseable JSON: %v", path, err)}
	}
	raw, ok := m["checksum"]
	if !ok {
		logLegacyOnce(path)
		return true, nil
	}
	want, ok := raw.(string)
	if !ok {
		return false, &corruptError{reason: fmt.Sprintf("%s: non-string checksum field", path)}
	}
	got, err := ChecksumOf(data)
	if err != nil {
		return false, &corruptError{reason: fmt.Sprintf("%s: %v", path, err)}
	}
	if got != want {
		return false, &corruptError{reason: fmt.Sprintf("%s: checksum %s, content is %s (torn write or bit rot)", path, want, got)}
	}
	return false, nil
}

var legacyLogOnce sync.Once

// logLegacyOnce notes — once per process, to avoid drowning fleets in
// per-file noise — that a pre-checksum artifact was accepted on
// schema checks alone.
func logLegacyOnce(path string) {
	legacyLogOnce.Do(func() {
		log.Printf("shard: %s carries no content checksum (pre-checksum artifact); verified by schema only", path)
	})
}

// Counters aggregates the degradation events of one resumable run or
// dispatch: operators read them on exit to see how hard the queue
// directory fought back.
type Counters struct {
	// Steals counts expired leases this process took over.
	Steals int `json:"steals"`
	// Retries counts transient queue-I/O errors absorbed by backoff.
	Retries int `json:"retries"`
	// Quarantined counts corrupt artifacts moved to corrupt/.
	Quarantined int `json:"quarantined"`
	// CellsLoaded / CellsComputed split resumable cells by provenance.
	CellsLoaded   int `json:"cells_loaded"`
	CellsComputed int `json:"cells_computed"`
	// CellsStopped counts cells skipped because the point's stop rule
	// was already satisfied by its folded prefix: budget the anytime
	// sweep handed back to the fleet.
	CellsStopped int `json:"cells_stopped,omitempty"`
}

func (c *Counters) add(o Counters) {
	c.Steals += o.Steals
	c.Retries += o.Retries
	c.Quarantined += o.Quarantined
	c.CellsLoaded += o.CellsLoaded
	c.CellsComputed += o.CellsComputed
	c.CellsStopped += o.CellsStopped
}

// String renders the counters the way ppsweep prints them on exit.
func (c Counters) String() string {
	s := fmt.Sprintf("steals %d, transient retries %d, quarantined %d, cells %d computed / %d resumed",
		c.Steals, c.Retries, c.Quarantined, c.CellsComputed, c.CellsLoaded)
	if c.CellsStopped > 0 {
		s += fmt.Sprintf(" / %d stopped early", c.CellsStopped)
	}
	return s
}

// ReadArtifact loads one shard artifact file, verifying its content
// checksum (pre-checksum artifacts are verified by schema alone and
// logged once). Corruption is reported as an error naming the reason;
// quarantining is the dispatcher's job, not this reader's.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := faultfs.OS().ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := decodeArtifact(data, path)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// decodeArtifact parses and integrity-checks one shard artifact
// document. Corruption (including a schema-field type mismatch under
// a missing checksum) comes back as *corruptError.
func decodeArtifact(data []byte, path string) (*Artifact, error) {
	if _, err := verifyDoc(data, path); err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, &corruptError{reason: fmt.Sprintf("%s: %v", path, err)}
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Errorf("%s: artifact schema %d, this build understands %d", path, a.Schema, ArtifactSchema)
	}
	return &a, nil
}

// WriteArtifact seals a (stamping its content checksum) and persists
// it durably: temp file fsynced, atomic rename, directory synced — a
// host crash leaves either the old state or the complete new
// document, never a torn part-*.json.
func WriteArtifact(path string, a *Artifact) error {
	data, err := sealJSON(a)
	if err != nil {
		return err
	}
	return faultfs.AtomicWrite(faultfs.OS(), path, data)
}
