package shard

import (
	"context"
	"fmt"

	"repro/internal/hostmeta"
	"repro/internal/sim"
)

// PartialPoint is one cell's aggregated result: the partial statistics
// of trials [TrialLo, TrialHi) at size X.
type PartialPoint struct {
	X       int64     `json:"x"`
	TrialLo int       `json:"trial_lo"`
	TrialHi int       `json:"trial_hi"`
	Stats   sim.Stats `json:"stats"`
}

// Artifact is one shard's partial-result document. It echoes the full
// sweep spec so Merge can verify that artifacts gathered from many
// hosts belong to the same sweep, and stamps the producing host's
// metadata (same conventions as the BENCH_*.json timing artifacts).
type Artifact struct {
	Schema int            `json:"schema"`
	Sweep  SweepSpec      `json:"sweep"`
	Shard  Spec           `json:"shard"`
	Points []PartialPoint `json:"points"`
	Host   hostmeta.Meta  `json:"host"`
	// Checksum is the content checksum ("crc32c:…") over the
	// document's canonical form; absent in pre-checksum artifacts,
	// which load on schema checks alone.
	Checksum string `json:"checksum,omitempty"`
}

// Run executes one shard of the manifest and returns its artifact.
// workers bounds each point's trial pool (0 = GOMAXPROCS). Cancelling
// ctx stops the underlying sim workers promptly and returns ctx.Err().
//
// Consecutive cells sharing a trial range execute as one SweepRange
// call, so a shard covering several whole sizes gets the sweep
// engine's two-level point/trial parallelism.
func Run(ctx context.Context, m *Manifest, shardID string, workers int) (*Artifact, error) {
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("shard: manifest schema %d, this build understands %d", m.Schema, ManifestSchema)
	}
	spec, err := m.Shard(shardID)
	if err != nil {
		return nil, err
	}
	sw := m.Sweep
	p, n, err := sw.Build()
	if err != nil {
		return nil, err
	}
	opts, err := sw.Options(workers)
	if err != nil {
		return nil, err
	}
	expected := func(x int64) bool { return x >= n }

	art := &Artifact{
		Schema: ArtifactSchema,
		Sweep:  sw,
		Shard:  *spec,
		Host:   hostmeta.Collect(),
	}
	for g := 0; g < len(spec.Cells); {
		// Group consecutive cells with the same trial range.
		h := g + 1
		for h < len(spec.Cells) &&
			spec.Cells[h].TrialLo == spec.Cells[g].TrialLo &&
			spec.Cells[h].TrialHi == spec.Cells[g].TrialHi {
			h++
		}
		xs := make([]int64, 0, h-g)
		for _, c := range spec.Cells[g:h] {
			xs = append(xs, c.X)
		}
		lo, hi := spec.Cells[g].TrialLo, spec.Cells[g].TrialHi
		points, err := sim.SweepRange(ctx, p, sw.InputState, xs, expected, lo, hi, opts)
		if err != nil {
			return nil, fmt.Errorf("shard %s trials [%d,%d): %w", shardID, lo, hi, err)
		}
		for _, pt := range points {
			art.Points = append(art.Points, PartialPoint{
				X: pt.X, TrialLo: lo, TrialHi: hi, Stats: pt.Stats,
			})
		}
		g = h
	}
	return art, nil
}
