package faultfs

import (
	"syscall"
	"time"
)

// splitmix64 is the repo-standard cheap seeded generator (same
// recurrence as internal/sim's RNG, duplicated to keep faultfs
// dependency-free): one 64-bit state, full-period, O(1) seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b5b9
	z = (z ^ (z >> 27)) * 0x94d35a2d9c2c2a49
	return z ^ (z >> 31)
}

// RandomSchedule derives n faults deterministically from seed: a mix
// of transient errors (ESTALE, EINTR, EIO) on reads, writes, renames,
// links and stats, torn writes, and clock-skew events, spread over
// the first few dozen calls of each class. The same seed always
// yields the same schedule.
//
// Every fault in the mix is survivable by a hardened pipeline —
// transient errors are absorbed by bounded retry, torn writes by
// checksum quarantine and recompute, clock skew by sequence-number
// lease liveness — so a chaos run under any RandomSchedule must still
// converge to the byte-identical merged sweep; that is the property
// the chaos tests and the CI drill assert.
func RandomSchedule(seed int64, n int) []Fault {
	state := uint64(seed) * 0x9e3779b97f4a7c15
	splitmix64(&state) // decorrelate small seeds
	transient := []error{syscall.ESTALE, syscall.EINTR, syscall.EIO}
	ops := []Op{OpRead, OpWrite, OpRename, OpLink, OpStat}
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		r := splitmix64(&state)
		switch {
		case r%10 == 0: // clock skew, either direction, up to ~4h
			skew := time.Duration(int64(splitmix64(&state)%(8*3600))-4*3600) * time.Second
			faults = append(faults, Fault{Op: OpClock, Nth: int(splitmix64(&state)%64) + 1, Skew: skew})
		case r%10 <= 2: // silent torn write
			faults = append(faults, Fault{
				Op:     OpWrite,
				Nth:    int(splitmix64(&state)%30) + 1,
				Tear:   true,
				TearAt: int(splitmix64(&state) % 64),
			})
		default: // transient error on a random op class
			op := ops[splitmix64(&state)%uint64(len(ops))]
			faults = append(faults, Fault{
				Op:  op,
				Nth: int(splitmix64(&state)%30) + 1,
				Err: transient[splitmix64(&state)%uint64(len(transient))],
			})
		}
	}
	return faults
}
