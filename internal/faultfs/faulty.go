package faultfs

import (
	"fmt"
	"io/fs"
	"os"
	"strings"
	"sync"
	"time"
)

// Op names one seam operation class for fault matching. Reads,
// writes (sync and plain count as one class), renames, links,
// removes, stats, mkdirs, dir syncs and clock reads are counted
// separately, each with its own 1-based call counter.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpRename
	OpLink
	OpRemove
	OpStat
	OpMkdir
	OpSync
	OpClock
	numOps
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpRename:
		return "rename"
	case OpLink:
		return "link"
	case OpRemove:
		return "remove"
	case OpStat:
		return "stat"
	case OpMkdir:
		return "mkdir"
	case OpSync:
		return "sync"
	case OpClock:
		return "clock"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Fault is one scheduled injection: when the Nth call of Op (counted
// across the Faulty's lifetime, after no filtering — retries advance
// the counter too) touches a path containing Path (empty matches
// any), the fault fires once.
//
// What firing does depends on the fields:
//   - Err non-nil: the operation fails with Err (the underlying call
//     is not performed, except a torn write's prefix — see Tear).
//   - Tear with Op == OpWrite: only the first TearAt bytes of data
//     are actually written. With Err == nil the call still reports
//     success — the "crash after rename without fsync" torn-artifact
//     scenario, detectable only by content checksums.
//   - Skew non-zero with Op == OpClock: every subsequent Now is
//     offset by Skew (cumulative across skew faults).
type Fault struct {
	Op     Op
	Nth    int
	Path   string
	Err    error
	Tear   bool
	TearAt int
	Skew   time.Duration
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s #%d", f.Op, f.Nth)
	if f.Path != "" {
		s += " ~" + f.Path
	}
	switch {
	case f.Tear:
		s += fmt.Sprintf(" torn at %d", f.TearAt)
		if f.Err != nil {
			s += fmt.Sprintf(" (%v)", f.Err)
		}
	case f.Err != nil:
		s += fmt.Sprintf(" -> %v", f.Err)
	case f.Skew != 0:
		s += fmt.Sprintf(" skew %v", f.Skew)
	}
	return s
}

// Faulty wraps an FS with a deterministic fault schedule. It is safe
// for concurrent use; operation counters are global across
// goroutines, so schedules against concurrent workloads are
// reproducible only up to goroutine interleaving — drive
// single-dispatcher workloads for strict determinism.
type Faulty struct {
	inner FS

	mu     sync.Mutex
	counts [numOps]int
	faults []Fault
	done   []bool
	skew   time.Duration
	fired  []string
}

// NewFaulty wraps inner with the given schedule. Each fault fires at
// most once, in schedule order when several match the same call.
func NewFaulty(inner FS, schedule []Fault) *Faulty {
	return &Faulty{inner: inner, faults: schedule, done: make([]bool, len(schedule))}
}

// Fired returns descriptions of the faults injected so far, in firing
// order — chaos tests assert on it, operators read it in logs.
func (f *Faulty) Fired() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.fired...)
}

// next advances op's counter and returns the first unfired matching
// fault, or nil.
func (f *Faulty) next(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for i := range f.faults {
		ft := &f.faults[i]
		if f.done[i] || ft.Op != op || ft.Nth != f.counts[op] {
			continue
		}
		if ft.Path != "" && !strings.Contains(path, ft.Path) {
			continue
		}
		f.done[i] = true
		f.fired = append(f.fired, ft.String()+" @ "+path)
		if ft.Skew != 0 {
			f.skew += ft.Skew
		}
		return ft
	}
	return nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if ft := f.next(OpRead, name); ft != nil && ft.Err != nil {
		return nil, &fs.PathError{Op: "read", Path: name, Err: ft.Err}
	}
	return f.inner.ReadFile(name)
}

func (f *Faulty) writeFile(name string, data []byte, perm fs.FileMode, sync bool) error {
	write := f.inner.WriteFile
	if sync {
		write = f.inner.WriteFileSync
	}
	if ft := f.next(OpWrite, name); ft != nil {
		if ft.Tear {
			n := ft.TearAt
			if n > len(data) {
				n = len(data)
			}
			if err := write(name, data[:n], perm); err != nil {
				return err
			}
			if ft.Err != nil {
				return &fs.PathError{Op: "write", Path: name, Err: ft.Err}
			}
			return nil // silent tear: success reported, bytes missing
		}
		if ft.Err != nil {
			return &fs.PathError{Op: "write", Path: name, Err: ft.Err}
		}
	}
	return write(name, data, perm)
}

func (f *Faulty) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return f.writeFile(name, data, perm, false)
}

func (f *Faulty) WriteFileSync(name string, data []byte, perm fs.FileMode) error {
	return f.writeFile(name, data, perm, true)
}

// Append counts in the write class, so write faults — including torn
// writes, which append only a prefix — fire on journal appends too.
func (f *Faulty) Append(name string, data []byte, perm fs.FileMode) error {
	if ft := f.next(OpWrite, name); ft != nil {
		if ft.Tear {
			n := ft.TearAt
			if n > len(data) {
				n = len(data)
			}
			if err := f.inner.Append(name, data[:n], perm); err != nil {
				return err
			}
			if ft.Err != nil {
				return &fs.PathError{Op: "append", Path: name, Err: ft.Err}
			}
			return nil
		}
		if ft.Err != nil {
			return &fs.PathError{Op: "append", Path: name, Err: ft.Err}
		}
	}
	return f.inner.Append(name, data, perm)
}

func (f *Faulty) Rename(oldname, newname string) error {
	if ft := f.next(OpRename, oldname); ft != nil && ft.Err != nil {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: ft.Err}
	}
	return f.inner.Rename(oldname, newname)
}

func (f *Faulty) Link(oldname, newname string) error {
	if ft := f.next(OpLink, newname); ft != nil && ft.Err != nil {
		return &os.LinkError{Op: "link", Old: oldname, New: newname, Err: ft.Err}
	}
	return f.inner.Link(oldname, newname)
}

func (f *Faulty) Remove(name string) error {
	if ft := f.next(OpRemove, name); ft != nil && ft.Err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: ft.Err}
	}
	return f.inner.Remove(name)
}

func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if ft := f.next(OpStat, name); ft != nil && ft.Err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: ft.Err}
	}
	return f.inner.Stat(name)
}

func (f *Faulty) MkdirAll(name string, perm fs.FileMode) error {
	if ft := f.next(OpMkdir, name); ft != nil && ft.Err != nil {
		return &fs.PathError{Op: "mkdir", Path: name, Err: ft.Err}
	}
	return f.inner.MkdirAll(name, perm)
}

func (f *Faulty) SyncDir(name string) error {
	if ft := f.next(OpSync, name); ft != nil && ft.Err != nil {
		return &fs.PathError{Op: "sync", Path: name, Err: ft.Err}
	}
	return f.inner.SyncDir(name)
}

func (f *Faulty) Now() time.Time {
	f.next(OpClock, "")
	f.mu.Lock()
	skew := f.skew
	f.mu.Unlock()
	return f.inner.Now().Add(skew)
}
