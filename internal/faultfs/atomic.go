package faultfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// tmpCounter makes temp names unique within the process; the PID
// component keeps concurrent processes on one directory apart.
var tmpCounter atomic.Uint64

// TmpName derives a unique sibling temp name for an atomic publish of
// path: same directory (so the rename cannot cross filesystems),
// process-unique suffix.
func TmpName(path string) string {
	return fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpCounter.Add(1))
}

// AtomicWrite writes data to path durably through the seam: unique
// temp file in the same directory, fsynced, atomic rename, directory
// fsynced. Readers never observe a torn document, and a host crash
// after the rename cannot surface an empty or partial file the way
// rename-without-sync can on ext4/NFS. Both the shard queue and the
// serve result store publish every artifact through this sequence, so
// fault injection on any FS implementation exercises each step.
func AtomicWrite(fsys FS, path string, data []byte) error {
	tmp := TmpName(path)
	if err := fsys.WriteFileSync(tmp, data, 0o644); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
