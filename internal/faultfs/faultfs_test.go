package faultfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// The OS implementation must behave like the os package, and the
// durable write must leave the full content on disk.
func TestOSRoundTrip(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := fsys.WriteFileSync(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(filepath.Join(dir, "b.json")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Link(filepath.Join(dir, "b.json"), filepath.Join(dir, "c.json")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(filepath.Join(dir, "c.json")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(fsys.Now()); d < -time.Minute || d > time.Minute {
		t.Errorf("Now() is %v away from wall clock", d)
	}
}

// A scheduled transient error fires on exactly the Nth call of its
// class, once, and honors the path filter.
func TestFaultyNthAndPathMatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	if err := os.WriteFile(path, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(OS(), []Fault{
		{Op: OpRead, Nth: 2, Err: syscall.ESTALE},
		{Op: OpRead, Nth: 3, Path: "no-such-substring", Err: syscall.EIO},
	})
	if _, err := f.ReadFile(path); err != nil {
		t.Fatalf("read #1 should pass: %v", err)
	}
	if _, err := f.ReadFile(path); !errors.Is(err, syscall.ESTALE) {
		t.Fatalf("read #2 should be ESTALE, got %v", err)
	}
	// #3 matches Nth but not Path; #4 matches nothing (one-shot).
	for i := 3; i <= 4; i++ {
		if _, err := f.ReadFile(path); err != nil {
			t.Fatalf("read #%d should pass: %v", i, err)
		}
	}
	if fired := f.Fired(); len(fired) != 1 {
		t.Errorf("fired log %v, want exactly the ESTALE injection", fired)
	}
}

// A silent torn write reports success but persists only a prefix —
// the checksum layer's whole reason to exist.
func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	f := NewFaulty(OS(), []Fault{{Op: OpWrite, Nth: 1, Tear: true, TearAt: 3}})
	if err := f.WriteFileSync(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatalf("silent tear must report success, got %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "012" {
		t.Fatalf("torn file holds %q, want the 3-byte prefix", data)
	}
}

// Clock skew faults offset every subsequent Now, cumulatively.
func TestFaultyClockSkew(t *testing.T) {
	f := NewFaulty(OS(), []Fault{{Op: OpClock, Nth: 2, Skew: time.Hour}})
	if d := time.Until(f.Now()); d > time.Minute {
		t.Fatalf("clock #1 already skewed by %v", d)
	}
	for i := 0; i < 3; i++ {
		if d := time.Until(f.Now()); d < 59*time.Minute {
			t.Fatalf("clock after skew fault off by only %v, want ~1h", d)
		}
	}
}

// The transient taxonomy: the NFS staleness family retries, the
// permanent family (not-exist, exists, no-space) does not.
func TestTransient(t *testing.T) {
	for _, err := range []error{syscall.ESTALE, syscall.EINTR, syscall.EIO,
		fmt.Errorf("wrapped: %w", syscall.EAGAIN)} {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false", err)
		}
	}
	for _, err := range []error{os.ErrNotExist, os.ErrExist, syscall.ENOSPC,
		syscall.EACCES, errors.New("corrupt artifact")} {
		if Transient(err) {
			t.Errorf("Transient(%v) = true", err)
		}
	}
}

// Same seed, same schedule — the reproducibility contract chaos tests
// rely on; different seeds should differ.
func TestRandomScheduleDeterministic(t *testing.T) {
	a, b := RandomSchedule(7, 16), RandomSchedule(7, 16)
	if !reflect.DeepEqual(a, b) {
		t.Error("RandomSchedule(7) not deterministic")
	}
	if len(a) != 16 {
		t.Errorf("schedule has %d faults, want 16", len(a))
	}
	if reflect.DeepEqual(RandomSchedule(7, 16), RandomSchedule(8, 16)) {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
	for _, ft := range a {
		if ft.Err != nil && !Transient(ft.Err) {
			t.Errorf("random schedule contains non-survivable error %v", ft.Err)
		}
		if ft.Nth < 1 {
			t.Errorf("fault %v has non-positive Nth", ft)
		}
	}
}
