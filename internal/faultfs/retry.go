package faultfs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrRetryExhausted marks an operation that still failed after the
// bounded transient-error retry budget: the filesystem is not merely
// hiccuping. Callers branch on it to enter their degraded mode (the
// serve store stops persisting, the shard dispatcher gives up)
// instead of spinning forever.
var ErrRetryExhausted = errors.New("faultfs: I/O failed after retries")

// Retrier is the bounded-retry policy over the Transient taxonomy:
// transient errors are absorbed with exponential backoff plus full
// jitter up to the attempt budget, permanent errors return
// immediately. It is the PR 7 shard-queue idiom promoted next to the
// seam it keys on, so every consumer of the FS interface shares one
// policy shape. A Retrier is not safe for concurrent use; give each
// goroutine its own (the jitter state is a bare splitmix64 cursor).
type Retrier struct {
	// Attempts is the total number of tries per operation (minimum 1;
	// 0 means the default 5).
	Attempts int
	// Base is the first backoff delay, doubling per retry up to
	// 1024×Base (0 means 20ms).
	Base time.Duration
	// Seed feeds the jitter stream; the zero seed is valid. Chaos
	// tests pin it so a failing schedule replays exactly.
	Seed uint64
	// Count, when non-nil, is incremented once per absorbed transient
	// error — the caller's retry telemetry.
	Count *atomic.Int64

	rng uint64
}

func (r *Retrier) attempts() int {
	if r.Attempts <= 0 {
		return 5
	}
	return r.Attempts
}

func (r *Retrier) base() time.Duration {
	if r.Base <= 0 {
		return 20 * time.Millisecond
	}
	return r.Base
}

// jitter draws a full-jitter delay: uniform in [0, d), floored at 1ms
// so exhausted-entropy draws cannot busy-spin.
func (r *Retrier) jitter(d time.Duration) time.Duration {
	if r.rng == 0 {
		r.rng = r.Seed | 1
	}
	j := time.Duration(splitmix64(&r.rng) % uint64(d))
	if j < time.Millisecond {
		j = time.Millisecond
	}
	return j
}

// Do runs f, absorbing transient errors (Transient) with exponential
// backoff plus full jitter, up to the attempt budget. Permanent
// errors return immediately; an exhausted budget returns the last
// error wrapped in ErrRetryExhausted; ctx cancellation interrupts a
// backoff sleep and returns the context's error.
func (r *Retrier) Do(ctx context.Context, op string, f func() error) error {
	delay := r.base()
	cap := 1024 * delay
	for attempt := 1; ; attempt++ {
		err := f()
		if err == nil || !Transient(err) {
			return err
		}
		if attempt >= r.attempts() {
			return fmt.Errorf("%w: %s: %w", ErrRetryExhausted, op, err)
		}
		if r.Count != nil {
			r.Count.Add(1)
		}
		t := time.NewTimer(r.jitter(delay))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		if delay < cap {
			delay *= 2
		}
	}
}
