package faultfs

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// Three transient failures under a five-attempt budget: the caller
// sees success, the counter sees three absorbed errors.
func TestRetrierAbsorbsTransient(t *testing.T) {
	var count atomic.Int64
	r := &Retrier{Attempts: 5, Base: time.Millisecond, Count: &count}
	calls := 0
	err := r.Do(context.Background(), "op", func() error {
		calls++
		if calls <= 3 {
			return syscall.EIO
		}
		return nil
	})
	if err != nil {
		t.Fatalf("recoverable op failed: %v", err)
	}
	if calls != 4 || count.Load() != 3 {
		t.Fatalf("calls=%d absorbed=%d, want 4 and 3", calls, count.Load())
	}
}

// Permanent errors return immediately: retrying ENOSPC only delays
// the real recovery.
func TestRetrierPermanentImmediate(t *testing.T) {
	r := &Retrier{Attempts: 5, Base: time.Millisecond}
	calls := 0
	err := r.Do(context.Background(), "op", func() error {
		calls++
		return syscall.ENOSPC
	})
	if !errors.Is(err, syscall.ENOSPC) || errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("err = %v, want bare ENOSPC", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
}

// An exhausted budget wraps ErrRetryExhausted around the last error,
// so callers can branch on "the disk is sick" vs the errno.
func TestRetrierExhaustion(t *testing.T) {
	r := &Retrier{Attempts: 3, Base: time.Millisecond}
	calls := 0
	err := r.Do(context.Background(), "op", func() error {
		calls++
		return syscall.ESTALE
	})
	if !errors.Is(err, ErrRetryExhausted) || !errors.Is(err, syscall.ESTALE) {
		t.Fatalf("err = %v, want ErrRetryExhausted wrapping ESTALE", err)
	}
	if calls != 3 {
		t.Fatalf("budget of 3 ran %d attempts", calls)
	}
}

// Cancellation interrupts the backoff sleep, not just the next call.
func TestRetrierContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Retrier{Attempts: 1000, Base: time.Hour}
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, "op", func() error { return syscall.EIO })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled retry still sleeping")
	}
}

// The same seed replays the same jitter stream — a failing chaos
// schedule must be a bug report, not a flake.
func TestRetrierSeedDeterminism(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		r := &Retrier{Seed: seed}
		var ds []time.Duration
		for i := 0; i < 8; i++ {
			ds = append(ds, r.jitter(100*time.Millisecond))
		}
		return ds
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Append through the OS seam accumulates; a torn append through the
// fault injector loses the suffix but keeps the prefix — the
// crash-truncated-journal shape.
func TestAppendAndTornAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	osfs := OS()
	if err := osfs.Append(path, []byte("one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := osfs.Append(path, []byte("two\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "one\ntwo\n" {
		t.Fatalf("append accumulated %q err=%v", got, err)
	}

	faulty := NewFaulty(osfs, []Fault{
		{Op: OpWrite, Nth: 1, Tear: true, TearAt: 2},
		{Op: OpWrite, Nth: 2, Err: syscall.EIO},
	})
	if err := faulty.Append(path, []byte("three\n"), 0o644); err != nil {
		t.Fatalf("silent tear reported failure: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "one\ntwo\nth" {
		t.Fatalf("torn append left %q, want prefix through byte 2", got)
	}
	err = faulty.Append(path, []byte("four\n"), 0o644)
	var perr *fs.PathError
	if !errors.As(err, &perr) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted append err = %v, want EIO PathError", err)
	}
}
