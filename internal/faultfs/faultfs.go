// Package faultfs is the injectable I/O seam under the shard queue
// and the spill arena: an interface over the filesystem operations
// the dispatch/resume/merge pipeline performs (read, write, rename,
// link, remove, stat, mkdir, directory sync) plus the clock, with two
// implementations — the real OS, and a deterministic fault-injecting
// wrapper driven by an explicit schedule ("fail the 3rd rename with
// ESTALE", "tear the 5th write at byte 17", "skew the clock by 2h").
//
// The point is reproducibility: chaos scenarios that used to exist
// only as one hardcoded CI drill become seeded property tests. A
// schedule is data; the same schedule against the same workload
// injects the same faults at the same operations, so a failing chaos
// seed is a bug report, not a flake.
//
// The package also owns the transient/permanent error taxonomy the
// retry layer keys on: Transient reports whether an error is the kind
// a networked filesystem emits spuriously (ESTALE, EINTR, EIO,
// resource pressure) and hence worth a bounded backoff-and-retry,
// versus conditions retrying cannot fix (ENOENT, EEXIST, EACCES,
// ENOSPC, corruption).
//
// Durability is part of the seam's contract: WriteFileSync fsyncs the
// file before returning and SyncDir fsyncs a directory, so callers
// can build crash-safe write-temp → rename → sync-dir sequences on
// any FS implementation and fault injection exercises each step.
package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"syscall"
	"time"
)

// FS is the filesystem-plus-clock seam. All paths are OS paths, not
// io/fs slash paths; semantics match the corresponding os functions.
type FS interface {
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data like os.WriteFile: buffered, no fsync.
	// Use it for scratch data whose loss a crash already implies.
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// WriteFileSync is WriteFile plus an fsync of the file before it
	// returns, for artifacts that must survive a host crash.
	WriteFileSync(name string, data []byte, perm fs.FileMode) error
	// Append appends data to name (created if missing), buffered, no
	// fsync — for append-only logs whose tail a crash may truncate
	// (access journals, telemetry). Fault matching counts it in the
	// write class.
	Append(name string, data []byte, perm fs.FileMode) error
	Rename(oldname, newname string) error
	Link(oldname, newname string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(name string, perm fs.FileMode) error
	// SyncDir fsyncs the directory itself, making preceding renames
	// and links in it durable. Filesystems that cannot sync a
	// directory degrade to a no-op rather than an error.
	SyncDir(name string) error
	Now() time.Time
}

// OS returns the real filesystem and clock.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) WriteFileSync(name string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) Append(name string, data []byte, perm fs.FileMode) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Link(oldname, newname string) error   { return os.Link(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	// Directory fsync is unsupported on some filesystems; the rename
	// itself is still atomic there, so degrade silently.
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EBADF)) {
		return nil
	}
	return err
}

func (osFS) Now() time.Time { return time.Now() }

// Transient reports whether err is a transient I/O condition worth a
// bounded retry: the staleness/interruption family networked
// filesystems emit spuriously, plus resource-pressure errnos that
// clear on their own. Everything else — not-exist, already-exists,
// permission, disk-full, corruption — is permanent: retrying cannot
// fix it and only delays the real recovery (quarantine, steal, or a
// loud error).
func Transient(err error) bool {
	for _, e := range []error{
		syscall.ESTALE, syscall.EINTR, syscall.EIO, syscall.EAGAIN,
		syscall.EBUSY, syscall.ETIMEDOUT, syscall.ENFILE, syscall.EMFILE,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}
