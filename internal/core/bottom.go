package core

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/graph"
	"repro/internal/petri"
)

// Component returns the T-component of ρ: the configurations β with
// ρ —T*→ β —T*→ ρ (Section 6). It requires a complete forward closure
// and errs (wrapping petri.ErrBudget) otherwise: a truncated closure
// cannot certify mutual reachability.
func Component(net *petri.Net, rho conf.Config, budget petri.Budget) ([]conf.Config, error) {
	rs, err := net.Reach(rho, budget)
	if err != nil {
		return nil, fmt.Errorf("component: %w", err)
	}
	comp, ncomp := graph.SCCOf(rs.CSR())
	members := graph.Members(comp, ncomp)
	rootComp := comp[0] // node 0 is ρ itself
	out := make([]conf.Config, 0, len(members[rootComp]))
	for _, id := range members[rootComp] {
		// Clone: the escaping members must not pin the closure arena.
		out = append(out, rs.Config(id).Clone())
	}
	return out, nil
}

// IsBottom reports whether ρ is T-bottom: its component is finite and
// every reachable β can reach back to ρ (Section 6). Over a complete
// closure this says ρ's SCC is the whole closure. For configurations
// with infinite closures the check errs on budget rather than guessing.
func IsBottom(net *petri.Net, rho conf.Config, budget petri.Budget) (bool, error) {
	rs, err := net.Reach(rho, budget)
	if err != nil {
		return false, fmt.Errorf("bottom check: %w", err)
	}
	_, ncomp := graph.SCCOf(rs.CSR())
	// ρ is bottom iff every reachable configuration is mutually
	// reachable with ρ, i.e. the whole (finite) closure is one SCC.
	return ncomp == 1, nil
}

// BottomCert is a witness for Theorem 6.1: words σ, w, a state subset Q
// and configurations α, β with
//
//	ρ —σ→ α —w→ β,  α|Q = β|Q,  α(p) < β(p) for p ∈ P∖Q,
//	α|Q is T|Q-bottom, and the T|Q-component of α|Q is small.
type BottomCert struct {
	// Sigma is the word σ with ρ —σ→ α (transition indices of the net).
	Sigma []int
	// W is the word w with α —w→ β.
	W []int
	// Q is the subset of states on which α is a bottom configuration.
	Q []string
	// Alpha and Beta are the witnessed configurations.
	Alpha, Beta conf.Config
	// ComponentSize is the cardinal of the T|Q-component of α|Q.
	ComponentSize int
}

// ErrNoBottom is returned (possibly wrapped with diagnostic counts)
// when the bounded search cannot produce a certificate; Theorem 6.1
// guarantees one exists, so hitting this means the search budget was
// too small for the instance.
var ErrNoBottom = errors.New("core: bottom-configuration search exhausted without certificate")

// ReachBottomOptions tunes the certificate search.
type ReachBottomOptions struct {
	// Closure budget for the top-level forward exploration from ρ.
	Budget petri.Budget
	// SubBudget bounds the T|Q closures used for bottom checks. Zero
	// applies Budget.
	SubBudget petri.Budget
	// PumpDepth bounds the BFS searching for the pumping word w. Zero
	// means 4·|P|.
	PumpDepth int
	// MaxCandidates bounds how many visited α are tried. Zero means all.
	MaxCandidates int
}

// maskCandidate is the per-candidate-Q state of the certificate
// search, built once per mask and reused across every visited α: the
// restricted space and net, the index map driving RestrictInto, and
// the memo of bottom checks keyed by the arena id of α|Q's counts —
// exact integer-hash dedup, no string keys.
type maskCandidate struct {
	mask   []bool
	qSpace *conf.Space
	netQ   *petri.Net
	idxMap []int
	seen   *conf.CountSet
	isBot  []bool
}

// ReachBottom searches constructively for a Theorem 6.1 certificate.
//
// Bounded instances: the closure from ρ is complete, so a reachable
// bottom SCC gives α with Q = P, w = ε. Unbounded instances: the
// Karp–Miller tree supplies pumpable place sets P∖Q; for each visited α
// whose restriction α|Q is T|Q-bottom, a short pumping word w with
// β|Q = α|Q and β > α outside Q is searched breadth-first.
//
// Every returned certificate is verified by VerifyBottomCert before
// being handed to the caller.
func ReachBottom(net *petri.Net, rho conf.Config, opts ReachBottomOptions) (*BottomCert, error) {
	space := net.Space()
	rs, reachErr := net.Reach(rho, opts.Budget)
	if reachErr != nil && rs == nil {
		return nil, reachErr
	}

	if reachErr == nil {
		// Complete closure: Q = P and any reachable bottom-SCC member is
		// a T-bottom configuration.
		cert, err := bottomFromCompleteClosure(net, rs)
		if err != nil {
			return nil, err
		}
		if err := VerifyBottomCert(net, rho, cert, opts.subBudget()); err != nil {
			return nil, fmt.Errorf("core: internal: bounded certificate failed verification: %w", err)
		}
		return cert, nil
	}

	// Unbounded (or too large): derive candidate Q sets from Karp–Miller
	// pumpable places. The restricted space, net and index map of every
	// mask are built once, outside the (candidate × mask) loop.
	tree, err := net.KarpMiller(rho, opts.Budget.MaxConfigs)
	if err != nil {
		return nil, fmt.Errorf("reach-bottom: %w", err)
	}
	var candidates []*maskCandidate
	maxQ := 0
	for _, omega := range tree.PumpableSets() {
		mask := make([]bool, space.Len())
		for i := range mask {
			mask[i] = true
		}
		for _, p := range omega {
			mask[p] = false // pumpable places leave Q
		}
		qSpace, err := subSpace(space, mask)
		if err != nil {
			return nil, err
		}
		netQ, err := net.Restrict(qSpace)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, &maskCandidate{
			mask:   mask,
			qSpace: qSpace,
			netQ:   netQ,
			idxMap: space.IndexMap(qSpace),
			seen:   conf.NewCountSet(qSpace.Len(), 64),
		})
		if qSpace.Len() > maxQ {
			maxQ = qSpace.Len()
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoBottom
	}

	pumpDepth := opts.PumpDepth
	if pumpDepth <= 0 {
		pumpDepth = 4 * space.Len()
	}
	maxCand := opts.MaxCandidates
	if maxCand <= 0 {
		maxCand = rs.Len()
	}

	skipped := 0 // distinct (Q, α|Q) bottom checks lost to the budget
	scratchQ := make([]int64, maxQ)
	for id := 0; id < rs.Len() && id < maxCand; id++ {
		alpha := rs.Config(id)
		for _, mc := range candidates {
			alphaQ := scratchQ[:mc.qSpace.Len()]
			alpha.RestrictInto(alphaQ, mc.idxMap)
			qid, added := mc.seen.Insert(alphaQ)
			if added {
				b, err := IsBottom(mc.netQ, conf.View(mc.qSpace, mc.seen.At(qid)), opts.subBudget())
				if err != nil {
					// Closure too large to certify bottomness: treat as
					// not bottom for search purposes, but account for
					// the skip so an exhausted search is diagnosable.
					b = false
					skipped++
				}
				mc.isBot = append(mc.isBot, b)
			}
			if !mc.isBot[qid] {
				continue
			}
			w, beta, found := findPumpWord(net, alpha, mc.mask, pumpDepth, opts.subBudget())
			if !found {
				continue
			}
			cert := &BottomCert{
				Sigma: rs.PathTo(id),
				W:     w,
				Q:     spaceNamesFromMask(space, mc.mask),
				// Clone: the certificate outlives the closure and must
				// not pin its arena.
				Alpha:         alpha.Clone(),
				Beta:          beta,
				ComponentSize: 0,
			}
			comp, err := Component(mc.netQ, conf.View(mc.qSpace, mc.seen.At(qid)), opts.subBudget())
			if err != nil {
				return nil, err
			}
			cert.ComponentSize = len(comp)
			if err := VerifyBottomCert(net, rho, cert, opts.subBudget()); err != nil {
				return nil, fmt.Errorf("core: internal: pumping certificate failed verification: %w", err)
			}
			return cert, nil
		}
	}
	if skipped > 0 {
		return nil, fmt.Errorf("%w (%d distinct (Q, α|Q) bottom checks hit the closure budget; raise SubBudget.MaxConfigs)", ErrNoBottom, skipped)
	}
	return nil, ErrNoBottom
}

func (o ReachBottomOptions) subBudget() petri.Budget {
	if o.SubBudget == (petri.Budget{}) {
		return o.Budget
	}
	return o.SubBudget
}

// bottomFromCompleteClosure picks the closest reachable bottom-SCC
// configuration as α, with Q = P and w = ε.
func bottomFromCompleteClosure(net *petri.Net, rs *petri.ReachSet) (*BottomCert, error) {
	comp, ncomp := graph.SCCOf(rs.CSR())
	cond := graph.CondenseCSR(rs.CSR(), comp, ncomp)
	bottoms := graph.BottomComponents(cond)
	isBottom := make([]bool, ncomp)
	for _, b := range bottoms {
		isBottom[b] = true
	}
	// BFS order = increasing depth, so the first node in a bottom SCC
	// has a shortest σ.
	best := -1
	for id := 0; id < rs.Len(); id++ {
		if isBottom[comp[id]] {
			best = id
			break
		}
	}
	if best < 0 {
		return nil, errors.New("core: internal: complete closure has no bottom SCC")
	}
	// Clone: the certificate outlives the closure and must not pin its
	// arena.
	alpha := rs.Config(best).Clone()
	members := graph.Members(comp, ncomp)
	return &BottomCert{
		Sigma:         rs.PathTo(best),
		W:             nil,
		Q:             net.Space().Names(),
		Alpha:         alpha,
		Beta:          alpha,
		ComponentSize: len(members[comp[best]]),
	}, nil
}

// findPumpWord searches breadth-first from α for a word w with
// β|Q = α|Q and β(p) > α(p) for every p outside Q. The visited set is
// the same arena-backed integer-hash substrate as the closure engine;
// firing runs through a scratch buffer, so the search allocates only
// the arena itself.
func findPumpWord(net *petri.Net, alpha conf.Config, qMask []bool, maxDepth int, budget petri.Budget) ([]int, conf.Config, bool) {
	space := net.Space()
	d := space.Len()
	idx := net.Index()
	alphaCounts := alpha.RawCounts()

	matchesQ := func(c []int64) bool {
		for i, inQ := range qMask {
			if inQ && c[i] != alphaCounts[i] {
				return false
			}
		}
		return true
	}
	pumped := func(c []int64) bool {
		for i, inQ := range qMask {
			if !inQ && c[i] <= alphaCounts[i] {
				return false
			}
		}
		return true
	}

	set := conf.NewCountSet(d, 256)
	set.Insert(alphaCounts)
	parent := []int32{-1}
	via := []int32{-1}
	depth := []int32{0}
	scratch := make([]int64, d)
	maxConfigs := budget.MaxConfigs
	if maxConfigs <= 0 {
		maxConfigs = petri.DefaultMaxConfigs
	}
	// Node ids live in the int32 parent/via arrays: clamp like
	// petri.Budget does rather than wrap.
	if maxConfigs > 1<<31-1 {
		maxConfigs = 1<<31 - 1
	}
	for head := 0; head < set.Len(); head++ {
		if int(depth[head]) >= maxDepth {
			continue
		}
		cur := set.At(head)
		for ti := 0; ti < net.Len(); ti++ {
			if !idx.FireInto(ti, cur, scratch) {
				continue
			}
			id, added := set.Insert(scratch)
			if !added {
				continue
			}
			parent = append(parent, int32(head))
			via = append(via, int32(ti))
			depth = append(depth, depth[head]+1)
			if matchesQ(scratch) && pumped(scratch) {
				var rev []int
				for cur := id; parent[cur] >= 0; cur = int(parent[cur]) {
					rev = append(rev, int(via[cur]))
				}
				for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
					rev[a], rev[b] = rev[b], rev[a]
				}
				beta, err := conf.FromSlice(space, scratch)
				if err != nil {
					// Unreachable: fired counts are non-negative.
					panic(err)
				}
				return rev, beta, true
			}
			if set.Len() >= maxConfigs {
				return nil, conf.Config{}, false
			}
		}
	}
	return nil, conf.Config{}, false
}

// VerifyBottomCert replays and checks every clause of a Theorem 6.1
// certificate against the net, returning the first violation.
func VerifyBottomCert(net *petri.Net, rho conf.Config, cert *BottomCert, budget petri.Budget) error {
	if cert == nil {
		return errors.New("core: nil certificate")
	}
	space := net.Space()
	alpha, err := net.FireWord(rho, cert.Sigma)
	if err != nil {
		return fmt.Errorf("replay σ: %w", err)
	}
	if !alpha.Equal(cert.Alpha) {
		return fmt.Errorf("core: σ leads to %v, certificate says α = %v", alpha, cert.Alpha)
	}
	beta, err := net.FireWord(alpha, cert.W)
	if err != nil {
		return fmt.Errorf("replay w: %w", err)
	}
	if !beta.Equal(cert.Beta) {
		return fmt.Errorf("core: w leads to %v, certificate says β = %v", beta, cert.Beta)
	}
	qSpace, err := space.Sub(cert.Q...)
	if err != nil {
		return err
	}
	if !alpha.Restrict(qSpace).Equal(beta.Restrict(qSpace)) {
		return errors.New("core: α|Q ≠ β|Q")
	}
	inQ := make(map[string]bool, len(cert.Q))
	for _, q := range cert.Q {
		inQ[q] = true
	}
	for i := 0; i < space.Len(); i++ {
		if inQ[space.Name(i)] {
			continue
		}
		if alpha.Get(i) >= beta.Get(i) {
			return fmt.Errorf("core: state %q not pumped: α=%d β=%d", space.Name(i), alpha.Get(i), beta.Get(i))
		}
	}
	netQ, err := net.Restrict(qSpace)
	if err != nil {
		return err
	}
	bot, err := IsBottom(netQ, alpha.Restrict(qSpace), budget)
	if err != nil {
		return err
	}
	if !bot {
		return errors.New("core: α|Q is not T|Q-bottom")
	}
	comp, err := Component(netQ, alpha.Restrict(qSpace), budget)
	if err != nil {
		return err
	}
	if len(comp) != cert.ComponentSize {
		return fmt.Errorf("core: component size %d, certificate says %d", len(comp), cert.ComponentSize)
	}
	return nil
}

func subSpace(space *conf.Space, mask []bool) (*conf.Space, error) {
	return space.Sub(spaceNamesFromMask(space, mask)...)
}

func spaceNamesFromMask(space *conf.Space, mask []bool) []string {
	var names []string
	for i, in := range mask {
		if in {
			names = append(names, space.Name(i))
		}
	}
	return names
}
