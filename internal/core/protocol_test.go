package core

import (
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/petri"
)

// example42 rebuilds the protocol of Example 4.2 of the paper for a
// given n: six states {i, ī, p, p̄, q, q̄}, leaders n·ī, width 2, stably
// computing φ_{i≥n}. It is the workhorse fixture of the core tests (the
// counting package provides the public constructor; this local copy
// keeps the core tests self-contained).
func example42(t *testing.T, n int64) *Protocol {
	t.Helper()
	space := conf.MustSpace("i", "ib", "p", "pb", "q", "qb")
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }
	pair := func(a, b string) conf.Config { return u(a).Add(u(b)) }
	mkT := func(name string, pre, post conf.Config) petri.Transition {
		tr, err := petri.NewTransition(name, pre, post)
		if err != nil {
			t.Fatalf("transition %s: %v", name, err)
		}
		return tr
	}
	net, err := petri.New(space, []petri.Transition{
		mkT("t", pair("i", "ib"), pair("p", "q")),
		mkT("tp", pair("pb", "i"), pair("p", "i")),
		mkT("tpb", pair("p", "ib"), pair("pb", "ib")),
		mkT("tq", pair("qb", "i"), pair("q", "i")),
		mkT("tqb", pair("q", "ib"), pair("qb", "ib")),
		mkT("tqbar", pair("p", "qb"), pair("p", "q")),
		mkT("tpbar", pair("q", "pb"), pair("q", "p")),
	})
	if err != nil {
		t.Fatalf("net: %v", err)
	}
	leaders := u("ib").Scale(n)
	proto, err := NewProtocol("example42", net, leaders, []string{"i"}, map[string]Output{
		"i": Out1, "p": Out1, "q": Out1,
		"ib": Out0, "pb": Out0, "qb": Out0,
	})
	if err != nil {
		t.Fatalf("NewProtocol: %v", err)
	}
	return proto
}

func TestNewProtocolValidation(t *testing.T) {
	space := conf.MustSpace("a", "b")
	net, err := petri.New(space, nil)
	if err != nil {
		t.Fatalf("net: %v", err)
	}
	leaders := conf.New(space)
	gamma := map[string]Output{"a": Out0, "b": Out1}

	tests := []struct {
		name string
		run  func() (*Protocol, error)
	}{
		{"empty name", func() (*Protocol, error) {
			return NewProtocol("", net, leaders, []string{"a"}, gamma)
		}},
		{"nil net", func() (*Protocol, error) {
			return NewProtocol("p", nil, leaders, []string{"a"}, gamma)
		}},
		{"wrong leader space", func() (*Protocol, error) {
			return NewProtocol("p", net, conf.New(conf.MustSpace("z")), []string{"a"}, gamma)
		}},
		{"no initial states", func() (*Protocol, error) {
			return NewProtocol("p", net, leaders, nil, gamma)
		}},
		{"unknown initial", func() (*Protocol, error) {
			return NewProtocol("p", net, leaders, []string{"z"}, gamma)
		}},
		{"duplicate initial", func() (*Protocol, error) {
			return NewProtocol("p", net, leaders, []string{"a", "a"}, gamma)
		}},
		{"missing gamma", func() (*Protocol, error) {
			return NewProtocol("p", net, leaders, []string{"a"}, map[string]Output{"a": Out0})
		}},
		{"invalid gamma value", func() (*Protocol, error) {
			return NewProtocol("p", net, leaders, []string{"a"}, map[string]Output{"a": 0, "b": Out1})
		}},
		{"extra gamma state", func() (*Protocol, error) {
			return NewProtocol("p", net, leaders, []string{"a"}, map[string]Output{"a": Out0, "b": Out1, "z": Out0})
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.run(); err == nil {
				t.Fatal("validation passed, want error")
			}
		})
	}
}

func TestProtocolAccessors(t *testing.T) {
	p := example42(t, 2)
	if p.States() != 6 {
		t.Errorf("States = %d, want 6", p.States())
	}
	if p.Width() != 2 {
		t.Errorf("Width = %d, want 2", p.Width())
	}
	if p.NumLeaders() != 2 {
		t.Errorf("NumLeaders = %d, want 2", p.NumLeaders())
	}
	if p.Leaderless() {
		t.Error("Leaderless = true with 2 leaders")
	}
	if got := p.InitialStates(); len(got) != 1 || got[0] != "i" {
		t.Errorf("InitialStates = %v", got)
	}
	if o, err := p.GammaName("pb"); err != nil || o != Out0 {
		t.Errorf("GammaName(pb) = %v, %v", o, err)
	}
	if _, err := p.GammaName("nope"); err == nil {
		t.Error("GammaName(nope) succeeded")
	}
	zeros := p.OutputStates(Out0)
	if len(zeros) != 3 {
		t.Errorf("OutputStates(0) = %v", zeros)
	}
	if !strings.Contains(p.String(), "example42") {
		t.Errorf("String = %q", p.String())
	}
}

func TestOutputOf(t *testing.T) {
	p := example42(t, 1)
	space := p.Space()
	mixed := conf.MustFromMap(space, map[string]int64{"i": 1, "ib": 1})
	s := p.OutputOf(mixed)
	if !s.Has(Out0) || !s.Has(Out1) || s.Has(OutStar) {
		t.Errorf("OutputOf(mixed) = %v", s)
	}
	if got := p.OutputOf(conf.New(space)); got != 0 {
		t.Errorf("OutputOf(zero) = %v, want empty", got)
	}
	ones := conf.MustFromMap(space, map[string]int64{"p": 2, "q": 1})
	if got := p.OutputOf(ones); got != Set1 {
		t.Errorf("OutputOf(ones) = %v, want {1}", got)
	}
}

func TestOutputSetString(t *testing.T) {
	if got := (Set0 | Set1).String(); got != "{0,1}" {
		t.Errorf("String = %q", got)
	}
	if got := SetStar.String(); got != "{★}" {
		t.Errorf("String = %q", got)
	}
	if got := Out1.String(); got != "1" {
		t.Errorf("Out1.String = %q", got)
	}
	if got := OutStar.String(); got != "★" {
		t.Errorf("OutStar.String = %q", got)
	}
}

func TestInputAndInitialConfig(t *testing.T) {
	p := example42(t, 3)
	in, err := p.Input(map[string]int64{"i": 5})
	if err != nil {
		t.Fatalf("Input: %v", err)
	}
	init := p.InitialConfig(in)
	if init.GetName("i") != 5 || init.GetName("ib") != 3 {
		t.Errorf("InitialConfig = %v", init)
	}
	if _, err := p.Input(map[string]int64{"p": 1}); err == nil {
		t.Error("non-initial input state accepted")
	}
}

func TestKeepMask(t *testing.T) {
	p := example42(t, 1)
	mask, err := p.KeepMask([]string{"ib", "pb"})
	if err != nil {
		t.Fatalf("KeepMask: %v", err)
	}
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	if n != 2 {
		t.Errorf("mask has %d set bits, want 2", n)
	}
	if _, err := p.KeepMask([]string{"zz"}); err == nil {
		t.Error("unknown state accepted")
	}
}

func TestGammaTable(t *testing.T) {
	p := example42(t, 2)
	tbl := p.GammaTable()
	if len(tbl) != p.States() {
		t.Fatalf("GammaTable length %d, want %d", len(tbl), p.States())
	}
	for i, o := range tbl {
		if o != p.Gamma(i) {
			t.Errorf("GammaTable[%d] = %v, Gamma = %v", i, o, p.Gamma(i))
		}
	}
	// The table is a copy: mutating it must not corrupt the protocol.
	tbl[0] = Out0
	if p.Gamma(0) != Out1 {
		t.Error("GammaTable aliases the protocol's gamma")
	}
}
