package core

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/petri"
)

// IsStabilized reports whether ρ is (T,F)-stabilized: every β with
// ρ —T*→ β has β(p) = 0 for every state p outside F (Section 5). keep is
// the mask of F over state indices.
//
// The check explores the forward closure of ρ; an incomplete closure is
// an error (wrapped petri.ErrBudget), never a silent verdict.
func IsStabilized(net *petri.Net, keep []bool, rho conf.Config, budget petri.Budget) (bool, error) {
	if len(keep) != net.Space().Len() {
		return false, errors.New("core: keep mask length mismatch")
	}
	// Fast refutation: ρ itself violates the condition.
	if !rho.ZeroOutside(keep) {
		return false, nil
	}
	rs, err := net.Reach(rho, budget)
	if err != nil {
		// A violation found before the budget ran out is still a
		// definitive "no".
		if rs != nil {
			violated := false
			rs.ForEach(func(_ int, c conf.Config) bool {
				if !c.ZeroOutside(keep) {
					violated = true
					return false
				}
				return true
			})
			if violated {
				return false, nil
			}
		}
		return false, fmt.Errorf("stabilization check: %w", err)
	}
	ok := true
	rs.ForEach(func(_ int, c conf.Config) bool {
		if !c.ZeroOutside(keep) {
			ok = false
			return false
		}
		return true
	})
	return ok, nil
}

// IsOutputStable reports whether the configuration belongs to S_j for
// j ∈ {0, 1} (Section 2):
//
//	S_0 = {α : ∀β, α →* β ⟹ γ(β) ⊆ {0}}
//	S_1 = {α : ∀β, α →* β ⟹ γ(β) = {1}}
//
// Note the asymmetry: the zero configuration (empty output set) is
// 0-output stable but not 1-output stable.
func (p *Protocol) IsOutputStable(c conf.Config, out Output, budget petri.Budget) (bool, error) {
	if out != Out0 && out != Out1 {
		return false, fmt.Errorf("core: output-stability is defined for 0 and 1, not %v", out)
	}
	violates := func(s OutputSet) bool {
		if out == Out0 {
			return s&(SetStar|Set1) != 0
		}
		return s != Set1
	}
	if violates(p.OutputOf(c)) {
		return false, nil
	}
	rs, err := p.net.Reach(c, budget)
	if err != nil {
		if rs != nil {
			violated := false
			rs.ForEach(func(_ int, b conf.Config) bool {
				if violates(p.OutputOf(b)) {
					violated = true
					return false
				}
				return true
			})
			if violated {
				return false, nil
			}
		}
		return false, fmt.Errorf("output-stability check: %w", err)
	}
	stable := true
	rs.ForEach(func(_ int, b conf.Config) bool {
		if violates(p.OutputOf(b)) {
			stable = false
			return false
		}
		return true
	})
	return stable, nil
}

// Lemma51Holds checks Lemma 5.1 on a concrete configuration: with
// F = γ⁻¹({0}), ρ is (T,F)-stabilized iff it is 0-output stable. It
// returns an error if the two sides disagree (which would falsify the
// implementation, not the paper).
func (p *Protocol) Lemma51Holds(rho conf.Config, budget petri.Budget) error {
	keep, err := p.KeepMask(p.OutputStates(Out0))
	if err != nil {
		return err
	}
	stab, err := IsStabilized(p.net, keep, rho, budget)
	if err != nil {
		return err
	}
	os, err := p.IsOutputStable(rho, Out0, budget)
	if err != nil {
		return err
	}
	if stab != os {
		return fmt.Errorf("core: Lemma 5.1 violated at %v: stabilized=%v output-stable=%v", rho, stab, os)
	}
	return nil
}

// SmallValuesR returns the mask of R = {p ∈ P : ρ(p) < h}, the "small
// values" of ρ at threshold h (Lemma 5.4).
func SmallValuesR(rho conf.Config, h int64) []bool {
	mask := make([]bool, rho.Space().Len())
	for i := range mask {
		mask[i] = rho.Get(i) < h
	}
	return mask
}

// CheckSmallValues verifies the conclusion of Lemma 5.4 on concrete
// pump vectors: for a (T,F)-stabilized ρ and R = {p : ρ(p) < h}, every α
// with α|R ≤ ρ|R must be stabilized too. Each pump must be supported
// outside R (so that α = ρ + pump satisfies α|R ≤ ρ|R); the function
// also tests α = ρ|R-preserving reductions implicitly through the pumps
// given. It returns the first violation found, or nil if all pumped
// configurations are stabilized.
func CheckSmallValues(net *petri.Net, keep []bool, rho conf.Config, h int64, pumps []conf.Config, budget petri.Budget) error {
	stab, err := IsStabilized(net, keep, rho, budget)
	if err != nil {
		return err
	}
	if !stab {
		return errors.New("core: CheckSmallValues requires a stabilized ρ")
	}
	r := SmallValuesR(rho, h)
	for _, pump := range pumps {
		for i, small := range r {
			if small && pump.Get(i) != 0 {
				return fmt.Errorf("core: pump %v touches small-value state %q", pump, rho.Space().Name(i))
			}
		}
		alpha := rho.Add(pump)
		ok, err := IsStabilized(net, keep, alpha, budget)
		if err != nil {
			return fmt.Errorf("pumped %v: %w", alpha, err)
		}
		if !ok {
			return fmt.Errorf("core: Lemma 5.4 characterization violated: %v stabilized but %v is not (h=%d)", rho, alpha, h)
		}
	}
	return nil
}

// MinimalCharacterizationH measures the least threshold h ∈ [1, maxH]
// such that the Lemma 5.4 characterization holds for ρ with pump vectors
// pumpUnit scaled 1..maxScale on every state outside R_h. It returns 0
// with no error when no h ≤ maxH works. This is the measured quantity
// E9 compares against the paper's (astronomically larger) formula
// h ≥ ‖T‖∞(1+‖T‖∞)^(|P|^|P|).
func MinimalCharacterizationH(net *petri.Net, keep []bool, rho conf.Config, maxH int64, maxScale int64, budget petri.Budget) (int64, error) {
	stab, err := IsStabilized(net, keep, rho, budget)
	if err != nil {
		return 0, err
	}
	if !stab {
		return 0, errors.New("core: MinimalCharacterizationH requires a stabilized ρ")
	}
	space := rho.Space()
	for h := int64(1); h <= maxH; h++ {
		r := SmallValuesR(rho, h)
		holds := true
		for i := 0; i < space.Len() && holds; i++ {
			if r[i] {
				continue
			}
			unit := conf.MustUnit(space, space.Name(i))
			for scale := int64(1); scale <= maxScale; scale++ {
				alpha := rho.Add(unit.Scale(scale))
				ok, err := IsStabilized(net, keep, alpha, budget)
				if err != nil {
					return 0, fmt.Errorf("h=%d pump %v: %w", h, alpha, err)
				}
				if !ok {
					holds = false
					break
				}
			}
		}
		if holds {
			return h, nil
		}
	}
	return 0, nil
}
