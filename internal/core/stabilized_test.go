package core

import (
	"errors"
	"testing"

	"repro/internal/conf"
	"repro/internal/petri"
)

func TestIsOutputStable(t *testing.T) {
	p := example42(t, 2)
	space := p.Space()
	budget := petri.Budget{MaxConfigs: 1 << 16}

	tests := []struct {
		name   string
		cfg    map[string]int64
		out    Output
		stable bool
	}{
		// All agents on the 0 side with no i to react with: 0-stable.
		{"all zero side", map[string]int64{"ib": 2, "pb": 1, "qb": 1}, Out0, true},
		// All agents on the 1 side with no ib: 1-stable.
		{"all one side", map[string]int64{"i": 2, "p": 1, "q": 1}, Out1, true},
		// Mixed i and ib can annihilate and flip: not stable either way.
		{"mixed", map[string]int64{"i": 1, "ib": 1, "p": 1}, Out1, false},
		{"mixed 0", map[string]int64{"i": 1, "ib": 1}, Out0, false},
		// The zero configuration is 0-stable but not 1-stable.
		{"zero is 0-stable", nil, Out0, true},
		{"zero not 1-stable", nil, Out1, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := conf.MustFromMap(space, tc.cfg)
			got, err := p.IsOutputStable(cfg, tc.out, budget)
			if err != nil {
				t.Fatalf("IsOutputStable: %v", err)
			}
			if got != tc.stable {
				t.Errorf("IsOutputStable(%v, %v) = %v, want %v", cfg, tc.out, got, tc.stable)
			}
		})
	}
}

func TestIsOutputStableRejectsStar(t *testing.T) {
	p := example42(t, 1)
	if _, err := p.IsOutputStable(conf.New(p.Space()), OutStar, petri.Budget{}); err == nil {
		t.Fatal("OutStar accepted as stability target")
	}
}

func TestIsStabilized(t *testing.T) {
	p := example42(t, 2)
	space := p.Space()
	keep, err := p.KeepMask(p.OutputStates(Out0))
	if err != nil {
		t.Fatalf("KeepMask: %v", err)
	}
	budget := petri.Budget{MaxConfigs: 1 << 16}

	stab := conf.MustFromMap(space, map[string]int64{"ib": 3, "qb": 2})
	got, err := IsStabilized(p.Net(), keep, stab, budget)
	if err != nil || !got {
		t.Errorf("IsStabilized(all-bar) = %v, %v; want true", got, err)
	}

	// An agent in i (output 1) immediately violates stabilization.
	bad := conf.MustFromMap(space, map[string]int64{"ib": 1, "i": 1})
	got, err = IsStabilized(p.Net(), keep, bad, budget)
	if err != nil || got {
		t.Errorf("IsStabilized(mixed) = %v, %v; want false", got, err)
	}
}

func TestIsStabilizedMaskMismatch(t *testing.T) {
	p := example42(t, 1)
	if _, err := IsStabilized(p.Net(), []bool{true}, conf.New(p.Space()), petri.Budget{}); err == nil {
		t.Fatal("short mask accepted")
	}
}

func TestIsStabilizedBudget(t *testing.T) {
	// Pumping net: closure infinite, stabilization undecidable within
	// budget -> error, not a guess.
	space := conf.MustSpace("a", "b")
	tr, err := petri.NewTransition("pump", conf.MustUnit(space, "a"),
		conf.MustFromMap(space, map[string]int64{"a": 1, "b": 1}))
	if err != nil {
		t.Fatalf("transition: %v", err)
	}
	net, err := petri.New(space, []petri.Transition{tr})
	if err != nil {
		t.Fatalf("net: %v", err)
	}
	keep := []bool{true, true} // everything allowed: stabilized in truth
	_, err = IsStabilized(net, keep, conf.MustUnit(space, "a"), petri.Budget{MaxConfigs: 5})
	if !errors.Is(err, petri.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}

	// But a violation inside the truncated closure is a definitive no.
	keepOnlyA := []bool{true, false}
	got, err := IsStabilized(net, keepOnlyA, conf.MustUnit(space, "a"), petri.Budget{MaxConfigs: 5})
	if err != nil || got {
		t.Fatalf("IsStabilized = %v, %v; want false, nil", got, err)
	}
}

func TestLemma51OnExample42(t *testing.T) {
	p := example42(t, 2)
	space := p.Space()
	budget := petri.Budget{MaxConfigs: 1 << 16}
	configs := []map[string]int64{
		{"ib": 2},
		{"ib": 2, "i": 1},
		{"ib": 2, "i": 3},
		{"pb": 1, "qb": 1},
		{"p": 1, "q": 1},
		{"i": 2, "p": 1},
		nil,
	}
	for _, m := range configs {
		rho := conf.MustFromMap(space, m)
		if err := p.Lemma51Holds(rho, budget); err != nil {
			t.Errorf("Lemma 5.1: %v", err)
		}
	}
}

func TestSmallValuesR(t *testing.T) {
	space := conf.MustSpace("a", "b", "c")
	rho := conf.MustFromMap(space, map[string]int64{"a": 5, "b": 1})
	r := SmallValuesR(rho, 3)
	// a=5 ≥ 3 not small; b=1 < 3 small; c=0 < 3 small.
	want := []bool{false, true, true}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("R[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

// Lemma 5.4 on Example 4.2: a 0-output-stable configuration with many ib
// stays stabilized when ib (a large-value state) is pumped further.
func TestCheckSmallValuesExample42(t *testing.T) {
	p := example42(t, 2)
	space := p.Space()
	keep, err := p.KeepMask(p.OutputStates(Out0))
	if err != nil {
		t.Fatalf("KeepMask: %v", err)
	}
	budget := petri.Budget{MaxConfigs: 1 << 16}

	rho := conf.MustFromMap(space, map[string]int64{"ib": 4, "pb": 1, "qb": 1})
	h := int64(2) // measured threshold: states with ρ(p) ≥ 2 are pumpable
	pumps := []conf.Config{
		conf.MustFromMap(space, map[string]int64{"ib": 3}),
		conf.MustFromMap(space, map[string]int64{"ib": 10}),
	}
	if err := CheckSmallValues(p.Net(), keep, rho, h, pumps, budget); err != nil {
		t.Errorf("CheckSmallValues: %v", err)
	}

	// A pump touching a small-value state must be rejected as misuse.
	badPump := []conf.Config{conf.MustFromMap(space, map[string]int64{"i": 1})}
	if err := CheckSmallValues(p.Net(), keep, rho, h, badPump, budget); err == nil {
		t.Error("pump on small-value state accepted")
	}

	// Requires a stabilized ρ.
	unstable := conf.MustFromMap(space, map[string]int64{"i": 1, "ib": 1})
	if err := CheckSmallValues(p.Net(), keep, unstable, h, nil, budget); err == nil {
		t.Error("unstabilized ρ accepted")
	}
}

func TestMinimalCharacterizationH(t *testing.T) {
	p := example42(t, 2)
	space := p.Space()
	keep, err := p.KeepMask(p.OutputStates(Out0))
	if err != nil {
		t.Fatalf("KeepMask: %v", err)
	}
	budget := petri.Budget{MaxConfigs: 1 << 16}
	rho := conf.MustFromMap(space, map[string]int64{"ib": 4, "pb": 1, "qb": 1})

	h, err := MinimalCharacterizationH(p.Net(), keep, rho, 10, 3, budget)
	if err != nil {
		t.Fatalf("MinimalCharacterizationH: %v", err)
	}
	if h == 0 {
		t.Fatal("no characterization threshold found")
	}
	// The measured h must itself satisfy the Lemma 5.4 conclusion for
	// unit pumps; re-check via CheckSmallValues.
	var pumps []conf.Config
	r := SmallValuesR(rho, h)
	for i, small := range r {
		if !small {
			pumps = append(pumps, conf.MustUnit(space, space.Name(i)).Scale(2))
		}
	}
	if err := CheckSmallValues(p.Net(), keep, rho, h, pumps, budget); err != nil {
		t.Errorf("measured h=%d fails CheckSmallValues: %v", h, err)
	}

	if _, err := MinimalCharacterizationH(p.Net(), keep,
		conf.MustFromMap(space, map[string]int64{"i": 1, "ib": 1}), 5, 2, budget); err == nil {
		t.Error("unstabilized ρ accepted")
	}
}
