package core

import (
	"errors"
	"testing"

	"repro/internal/conf"
	"repro/internal/petri"
)

// ReachBottomOptions knobs: SubBudget defaulting, MaxCandidates and
// PumpDepth limits, and the failure mode when the search is starved.
func TestReachBottomOptionKnobs(t *testing.T) {
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space,
		mkTr(t, "pump", u("a"), u("a").Add(u("b"))),
	)
	rho := u("a")

	// Generous budget: certificate found.
	cert, err := ReachBottom(net, rho, ReachBottomOptions{
		Budget:    petri.Budget{MaxConfigs: 64},
		SubBudget: petri.Budget{MaxConfigs: 128},
		PumpDepth: 2,
	})
	if err != nil {
		t.Fatalf("ReachBottom: %v", err)
	}
	if len(cert.W) == 0 {
		t.Error("expected a pumping word")
	}

	// PumpDepth 0 defaults to 4|P| and still succeeds.
	if _, err := ReachBottom(net, rho, ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 64}}); err != nil {
		t.Errorf("default PumpDepth failed: %v", err)
	}

	// Karp–Miller starved by a tiny node budget: explicit error, not a
	// wrong certificate.
	_, err = ReachBottom(net, rho, ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 1}})
	if err == nil {
		t.Error("starved search returned a certificate")
	}
}

// The verifier-facing error contract: certificates must replay; words
// referencing missing transitions are rejected.
func TestVerifyBottomCertBadWord(t *testing.T) {
	space := conf.MustSpace("a")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space, mkTr(t, "loop", u("a"), u("a")))
	rho := u("a")
	cert := &BottomCert{
		Sigma: []int{5}, // out of range
		Q:     []string{"a"},
		Alpha: rho, Beta: rho, ComponentSize: 1,
	}
	if err := VerifyBottomCert(net, rho, cert, petri.Budget{MaxConfigs: 16}); err == nil {
		t.Error("out-of-range word accepted")
	}
	badQ := &BottomCert{Q: []string{"zz"}, Alpha: rho, Beta: rho, ComponentSize: 1}
	if err := VerifyBottomCert(net, rho, badQ, petri.Budget{MaxConfigs: 16}); err == nil {
		t.Error("unknown Q state accepted")
	}
}

// IsOutputStable/IsStabilized propagate budget errors from genuinely
// infinite closures instead of guessing.
func TestStabilityBudgetPropagation(t *testing.T) {
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space, mkTr(t, "pump", u("a"), u("a").Add(u("b"))))
	p, err := NewProtocol("pumper", net, conf.New(space), []string{"a"},
		map[string]Output{"a": Out1, "b": Out1})
	if err != nil {
		t.Fatalf("NewProtocol: %v", err)
	}
	_, err = p.IsOutputStable(u("a"), Out1, petri.Budget{MaxConfigs: 4})
	if !errors.Is(err, petri.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}
