package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/petri"
)

func mkNet(t *testing.T, space *conf.Space, trs ...petri.Transition) *petri.Net {
	t.Helper()
	n, err := petri.New(space, trs)
	if err != nil {
		t.Fatalf("net: %v", err)
	}
	return n
}

func mkTr(t *testing.T, name string, pre, post conf.Config) petri.Transition {
	t.Helper()
	tr, err := petri.NewTransition(name, pre, post)
	if err != nil {
		t.Fatalf("transition %s: %v", name, err)
	}
	return tr
}

func TestComponentAndIsBottom(t *testing.T) {
	// a <-> b, and c sink: from a the component is {a,b}... but c is
	// reachable from b? No: net is a->b, b->a, b->c.
	space := conf.MustSpace("a", "b", "c")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space,
		mkTr(t, "ab", u("a"), u("b")),
		mkTr(t, "ba", u("b"), u("a")),
		mkTr(t, "bc", u("b"), u("c")),
	)
	budget := petri.Budget{MaxConfigs: 1 << 10}

	comp, err := Component(net, u("a"), budget)
	if err != nil {
		t.Fatalf("Component: %v", err)
	}
	if len(comp) != 2 {
		t.Errorf("component size = %d, want 2 ({a},{b})", len(comp))
	}

	bot, err := IsBottom(net, u("a"), budget)
	if err != nil {
		t.Fatalf("IsBottom: %v", err)
	}
	if bot {
		t.Error("a reported bottom although c is a one-way exit")
	}
	bot, err = IsBottom(net, u("c"), budget)
	if err != nil || !bot {
		t.Errorf("IsBottom(c) = %v, %v; want true", bot, err)
	}
}

func TestComponentBudget(t *testing.T) {
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space,
		mkTr(t, "pump", u("a"), u("a").Add(u("b"))),
	)
	_, err := Component(net, u("a"), petri.Budget{MaxConfigs: 4})
	if !errors.Is(err, petri.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestReachBottomBounded(t *testing.T) {
	// Conservative chain a -> b -> c with a 2-cycle at the end:
	// c <-> d. Bottom SCCs are over {c,d} mixes.
	space := conf.MustSpace("a", "b", "c", "d")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space,
		mkTr(t, "ab", u("a"), u("b")),
		mkTr(t, "bc", u("b"), u("c")),
		mkTr(t, "cd", u("c"), u("d")),
		mkTr(t, "dc", u("d"), u("c")),
	)
	rho := conf.MustFromMap(space, map[string]int64{"a": 2})
	cert, err := ReachBottom(net, rho, ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 1 << 12}})
	if err != nil {
		t.Fatalf("ReachBottom: %v", err)
	}
	if len(cert.Q) != space.Len() {
		t.Errorf("bounded case Q = %v, want full space", cert.Q)
	}
	if len(cert.W) != 0 {
		t.Errorf("bounded case w length = %d, want 0", len(cert.W))
	}
	// α must place both agents in the {c,d} cycle.
	if cert.Alpha.GetName("a") != 0 || cert.Alpha.GetName("b") != 0 {
		t.Errorf("α = %v still has agents outside the bottom cycle", cert.Alpha)
	}
	// Component of a 2-agent config over the c<->d cycle: 3 mixes.
	if cert.ComponentSize != 3 {
		t.Errorf("component size = %d, want 3", cert.ComponentSize)
	}
	if err := VerifyBottomCert(net, rho, cert, petri.Budget{MaxConfigs: 1 << 12}); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}

func TestReachBottomUnbounded(t *testing.T) {
	// pump: a -> a+b is unbounded on b; Q = {a}, α = a, w = pump gives
	// β = a+b with β|Q = α|Q and β(b) > α(b).
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space,
		mkTr(t, "pump", u("a"), u("a").Add(u("b"))),
	)
	rho := u("a")
	cert, err := ReachBottom(net, rho, ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 64}})
	if err != nil {
		t.Fatalf("ReachBottom: %v", err)
	}
	if len(cert.Q) != 1 || cert.Q[0] != "a" {
		t.Errorf("Q = %v, want [a]", cert.Q)
	}
	if len(cert.W) == 0 {
		t.Error("pumping word empty")
	}
	if err := VerifyBottomCert(net, rho, cert, petri.Budget{MaxConfigs: 1 << 10}); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}

func TestVerifyBottomCertRejectsTampering(t *testing.T) {
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space,
		mkTr(t, "ab", u("a"), u("b")),
		mkTr(t, "ba", u("b"), u("a")),
	)
	rho := u("a")
	cert, err := ReachBottom(net, rho, ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 64}})
	if err != nil {
		t.Fatalf("ReachBottom: %v", err)
	}
	budget := petri.Budget{MaxConfigs: 64}

	bad := *cert
	bad.Alpha = u("b").Add(u("b"))
	if err := VerifyBottomCert(net, rho, &bad, budget); err == nil {
		t.Error("tampered α accepted")
	}

	bad = *cert
	bad.Sigma = []int{0, 0} // ab twice is not fireable from a single a
	if err := VerifyBottomCert(net, rho, &bad, budget); err == nil {
		t.Error("non-replayable σ accepted")
	}

	bad = *cert
	bad.ComponentSize = 99
	if err := VerifyBottomCert(net, rho, &bad, budget); err == nil {
		t.Error("wrong component size accepted")
	}

	if err := VerifyBottomCert(net, rho, nil, budget); err == nil {
		t.Error("nil certificate accepted")
	}
}

func TestReachBottomOnExample42(t *testing.T) {
	// The full protocol net of Example 4.2 is conservative, so the
	// closure is complete and the certificate has Q = P.
	p := example42(t, 2)
	rho := p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 3}))
	cert, err := ReachBottom(p.Net(), rho, ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 1 << 16}})
	if err != nil {
		t.Fatalf("ReachBottom: %v", err)
	}
	if err := VerifyBottomCert(p.Net(), rho, cert, petri.Budget{MaxConfigs: 1 << 16}); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
	// For x=3 ≥ n=2 the bottom of Example 4.2 is the all-1 consensus
	// component; α must contain no ib, pb, qb.
	for _, s := range []string{"ib", "pb", "qb"} {
		if cert.Alpha.GetName(s) != 0 {
			t.Errorf("bottom α has %s agents: %v", s, cert.Alpha)
		}
	}
}

// When every candidate bottom check dies on the sub-closure budget,
// the exhausted search must say how many checks were skipped instead
// of silently reporting "no certificate": that count is the signal
// that SubBudget — not the instance — is what failed.
func TestReachBottomReportsSkippedBudgetChecks(t *testing.T) {
	// pump makes b unbounded (so the Karp–Miller path runs, with
	// Q = {a, c, d}); the c ⇄ d shuffle gives every α|Q a 3-node
	// T|Q-closure, above the deliberately tiny SubBudget.
	space := conf.MustSpace("a", "b", "c", "d")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	net := mkNet(t, space,
		mkTr(t, "pump", u("a"), u("a").Add(u("b"))),
		mkTr(t, "cd", u("c"), u("d")),
		mkTr(t, "dc", u("d"), u("c")),
	)
	rho := u("a").Add(u("c").Scale(2))
	_, err := ReachBottom(net, rho, ReachBottomOptions{
		Budget:    petri.Budget{MaxConfigs: 64},
		SubBudget: petri.Budget{MaxConfigs: 2},
	})
	if !errors.Is(err, ErrNoBottom) {
		t.Fatalf("err = %v, want ErrNoBottom", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "bottom checks hit the closure budget") {
		t.Errorf("error does not surface the skipped checks: %q", msg)
	}
	// The distinct α|Q values are the three c/d splits of (1, ·, ·).
	if !strings.Contains(msg, "(3 distinct") {
		t.Errorf("error does not carry the skip count: %q", msg)
	}

	// With an adequate sub-budget the same instance yields a verified
	// certificate — proving the skip accounting pointed at the right
	// knob.
	cert, err := ReachBottom(net, rho, ReachBottomOptions{
		Budget:    petri.Budget{MaxConfigs: 64},
		SubBudget: petri.Budget{MaxConfigs: 1 << 10},
	})
	if err != nil {
		t.Fatalf("adequate sub-budget: %v", err)
	}
	if err := VerifyBottomCert(net, rho, cert, petri.Budget{MaxConfigs: 1 << 10}); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}
