// Package core implements the protocol model of Leroux, "State
// Complexity of Protocols With Leaders" (PODC 2022): population
// protocols with leaders over finite-interaction-width additive
// preorders, i.e. Petri-net reachability relations (Sections 2–3), plus
// the analyses the lower-bound proof is built on: output-stable and
// (T,F)-stabilized configurations (Section 5) and bottom configurations
// (Section 6).
package core

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/petri"
)

// Output is the value of the output function γ on a state: 0, ★
// (undetermined) or 1.
type Output int8

// Output values. The zero value is invalid so that forgotten outputs are
// caught by validation rather than silently meaning "reject".
const (
	Out0    Output = iota + 1 // γ(p) = 0
	OutStar                   // γ(p) = ★
	Out1                      // γ(p) = 1
)

// String renders the output value.
func (o Output) String() string {
	switch o {
	case Out0:
		return "0"
	case OutStar:
		return "★"
	case Out1:
		return "1"
	default:
		return fmt.Sprintf("Output(%d)", int8(o))
	}
}

func (o Output) valid() bool { return o == Out0 || o == OutStar || o == Out1 }

// OutputSet is a subset of {0, ★, 1}: the image γ(ρ) of a configuration.
type OutputSet uint8

// OutputSet bits.
const (
	Set0    OutputSet = 1 << iota // some agent outputs 0
	SetStar                       // some agent outputs ★
	Set1                          // some agent outputs 1
)

// Has reports whether the set contains the given output value.
func (s OutputSet) Has(o Output) bool {
	switch o {
	case Out0:
		return s&Set0 != 0
	case OutStar:
		return s&SetStar != 0
	case Out1:
		return s&Set1 != 0
	default:
		return false
	}
}

// String renders the output set, e.g. "{0,1}".
func (s OutputSet) String() string {
	out := "{"
	first := true
	add := func(label string) {
		if !first {
			out += ","
		}
		out += label
		first = false
	}
	if s&Set0 != 0 {
		add("0")
	}
	if s&SetStar != 0 {
		add("★")
	}
	if s&Set1 != 0 {
		add("1")
	}
	return out + "}"
}

// Protocol is a tuple (P, →*, ρ_L, I, γ) where the additive preorder →*
// is the reachability relation of a Petri net (Section 3 shows the two
// views coincide for finite interaction-width).
type Protocol struct {
	name    string
	net     *petri.Net
	leaders conf.Config
	initial []string
	gamma   []Output // indexed by state
}

// NewProtocol validates and builds a protocol.
//
//   - net gives the state space P and the preorder →* = —T*→;
//   - leaders is ρ_L, a configuration over P;
//   - initial lists the input states I ⊆ P;
//   - gamma assigns every state of P an output value.
func NewProtocol(name string, net *petri.Net, leaders conf.Config, initial []string, gamma map[string]Output) (*Protocol, error) {
	if name == "" {
		return nil, errors.New("core: empty protocol name")
	}
	if net == nil {
		return nil, errors.New("core: nil net")
	}
	space := net.Space()
	if space.Len() == 0 {
		return nil, fmt.Errorf("core: protocol %q: empty state space", name)
	}
	if !leaders.Space().Equal(space) {
		return nil, fmt.Errorf("core: protocol %q: leaders over wrong space", name)
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("core: protocol %q: no initial states", name)
	}
	seen := make(map[string]bool, len(initial))
	for _, s := range initial {
		if !space.Contains(s) {
			return nil, fmt.Errorf("core: protocol %q: initial state %q not in space", name, s)
		}
		if seen[s] {
			return nil, fmt.Errorf("core: protocol %q: duplicate initial state %q", name, s)
		}
		seen[s] = true
	}
	g := make([]Output, space.Len())
	for i := 0; i < space.Len(); i++ {
		o, ok := gamma[space.Name(i)]
		if !ok {
			return nil, fmt.Errorf("core: protocol %q: no output for state %q", name, space.Name(i))
		}
		if !o.valid() {
			return nil, fmt.Errorf("core: protocol %q: invalid output %d for state %q", name, o, space.Name(i))
		}
		g[i] = o
	}
	if len(gamma) != space.Len() {
		return nil, fmt.Errorf("core: protocol %q: gamma mentions %d states, space has %d", name, len(gamma), space.Len())
	}
	ini := make([]string, len(initial))
	copy(ini, initial)
	return &Protocol{name: name, net: net, leaders: leaders, initial: ini, gamma: g}, nil
}

// Name returns the protocol's name.
func (p *Protocol) Name() string { return p.name }

// Net returns the underlying Petri net.
func (p *Protocol) Net() *petri.Net { return p.net }

// Space returns the state space P.
func (p *Protocol) Space() *conf.Space { return p.net.Space() }

// Leaders returns ρ_L.
func (p *Protocol) Leaders() conf.Config { return p.leaders }

// NumLeaders returns |ρ_L|.
func (p *Protocol) NumLeaders() int64 { return p.leaders.Agents() }

// Leaderless reports whether the protocol has no leaders.
func (p *Protocol) Leaderless() bool { return p.leaders.IsZero() }

// Width returns the interaction-width of the protocol's preorder.
func (p *Protocol) Width() int64 { return p.net.Width() }

// States returns |P|, the state count whose asymptotics the paper
// bounds.
func (p *Protocol) States() int { return p.Space().Len() }

// InitialStates returns a copy of I.
func (p *Protocol) InitialStates() []string {
	out := make([]string, len(p.initial))
	copy(out, p.initial)
	return out
}

// Gamma returns γ(p) for the state with the given index.
func (p *Protocol) Gamma(i int) Output { return p.gamma[i] }

// GammaTable returns a copy of γ as a dense slice indexed by state.
// Simulation engines use it to track γ(ρ) incrementally: maintaining a
// per-output-class count of occupied states makes the output set an
// O(changed) quantity per step instead of the O(|P|) rescan of OutputOf.
func (p *Protocol) GammaTable() []Output {
	out := make([]Output, len(p.gamma))
	copy(out, p.gamma)
	return out
}

// GammaName returns γ(p) for the named state.
func (p *Protocol) GammaName(name string) (Output, error) {
	i, ok := p.Space().Index(name)
	if !ok {
		return 0, fmt.Errorf("core: state %q not in space", name)
	}
	return p.gamma[i], nil
}

// OutputStates returns the names of states with the given output value.
func (p *Protocol) OutputStates(o Output) []string {
	var out []string
	for i, g := range p.gamma {
		if g == o {
			out = append(out, p.Space().Name(i))
		}
	}
	return out
}

// OutputOf returns γ(ρ) = {j : ∃p, ρ(p) > 0 ∧ γ(p) = j}. The zero
// configuration yields the empty set.
func (p *Protocol) OutputOf(c conf.Config) OutputSet {
	var s OutputSet
	for i := 0; i < c.Space().Len(); i++ {
		if c.Get(i) == 0 {
			continue
		}
		switch p.gamma[i] {
		case Out0:
			s |= Set0
		case OutStar:
			s |= SetStar
		case Out1:
			s |= Set1
		}
	}
	return s
}

// Input builds an input configuration ρ ∈ ℕ^I from counts on initial
// states.
func (p *Protocol) Input(counts map[string]int64) (conf.Config, error) {
	valid := make(map[string]bool, len(p.initial))
	for _, s := range p.initial {
		valid[s] = true
	}
	for s := range counts {
		if !valid[s] {
			return conf.Config{}, fmt.Errorf("core: %q is not an initial state of %s", s, p.name)
		}
	}
	return conf.FromMap(p.Space(), counts)
}

// InitialConfig returns ρ_L + ρ|_P for an input ρ built with Input.
func (p *Protocol) InitialConfig(input conf.Config) conf.Config {
	return p.leaders.Add(input)
}

// KeepMask returns the boolean mask over state indices of the states in
// the given set F (by name). Unknown names are errors.
func (p *Protocol) KeepMask(states []string) ([]bool, error) {
	mask := make([]bool, p.Space().Len())
	for _, s := range states {
		i, ok := p.Space().Index(s)
		if !ok {
			return nil, fmt.Errorf("core: state %q not in space", s)
		}
		mask[i] = true
	}
	return mask, nil
}

// String summarizes the protocol.
func (p *Protocol) String() string {
	return fmt.Sprintf("protocol %s: %d states, width %d, %d leaders, %d transitions",
		p.name, p.States(), p.Width(), p.NumLeaders(), p.net.Len())
}
