package ctrlnet

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/petri"
)

// twoStateNet builds a strongly connected control net over control
// states {s0, s1} and Petri places {x, y}:
//
//	e0: s0 -(x→y)-> s1
//	e1: s1 -(y→x)-> s0
//	e2: s1 -(y→x)-> s1   (self loop)
func twoStateNet(t *testing.T) *Net {
	t.Helper()
	space := conf.MustSpace("x", "y")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	mkTr := func(name string, pre, post conf.Config) petri.Transition {
		tr, err := petri.NewTransition(name, pre, post)
		if err != nil {
			t.Fatalf("transition: %v", err)
		}
		return tr
	}
	pnet, err := petri.New(space, []petri.Transition{
		mkTr("xy", u("x"), u("y")),
		mkTr("yx", u("y"), u("x")),
	})
	if err != nil {
		t.Fatalf("petri net: %v", err)
	}
	n, err := New([]string{"s0", "s1"}, pnet, []Edge{
		{From: "s0", Trans: 0, To: "s1"},
		{From: "s1", Trans: 1, To: "s0"},
		{From: "s1", Trans: 1, To: "s1"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	space := conf.MustSpace("x")
	pnet, err := petri.New(space, nil)
	if err != nil {
		t.Fatalf("petri net: %v", err)
	}
	if _, err := New(nil, pnet, nil); err == nil {
		t.Error("no control-states accepted")
	}
	if _, err := New([]string{"a"}, nil, nil); err == nil {
		t.Error("nil Petri net accepted")
	}
	if _, err := New([]string{"a", "a"}, pnet, nil); err == nil {
		t.Error("duplicate control-states accepted")
	}
	if _, err := New([]string{"a"}, pnet, []Edge{{From: "z", Trans: 0, To: "a"}}); err == nil {
		t.Error("unknown source state accepted")
	}
	if _, err := New([]string{"a"}, pnet, []Edge{{From: "a", Trans: 5, To: "a"}}); err == nil {
		t.Error("bad transition index accepted")
	}
}

func TestPathsAndCycles(t *testing.T) {
	n := twoStateNet(t)
	from, to, err := n.ValidatePath([]int{0, 2, 1})
	if err != nil || from != "s0" || to != "s0" {
		t.Fatalf("ValidatePath = %q,%q,%v", from, to, err)
	}
	if !n.IsCycle([]int{0, 2, 1}) {
		t.Error("s0->s1->s1->s0 not a cycle")
	}
	if n.IsCycle([]int{0}) {
		t.Error("s0->s1 reported as cycle")
	}
	if _, _, err := n.ValidatePath([]int{0, 0}); err == nil {
		t.Error("non-chaining path accepted")
	}
	if _, _, err := n.ValidatePath(nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestParikhAndDisplacement(t *testing.T) {
	n := twoStateNet(t)
	cyc := []int{0, 2, 1} // xy, yx, yx
	p := n.Parikh(cyc)
	if p[0] != 1 || p[1] != 1 || p[2] != 1 {
		t.Errorf("Parikh = %v", p)
	}
	// Δ = (x→y) + 2·(y→x) = x: +1, y: −1.
	d := n.Displacement(cyc)
	if d[0] != 1 || d[1] != -1 {
		t.Errorf("Displacement = %v", d)
	}
	if dp := n.DisplacementOfParikh(p); dp[0] != 1 || dp[1] != -1 {
		t.Errorf("DisplacementOfParikh = %v", dp)
	}
	label := n.Label(cyc)
	if len(label) != 3 || label[0] != 0 || label[1] != 1 || label[2] != 1 {
		t.Errorf("Label = %v", label)
	}
}

func TestStronglyConnected(t *testing.T) {
	n := twoStateNet(t)
	if !n.StronglyConnected() {
		t.Error("two-state net not strongly connected")
	}
	space := conf.MustSpace("x")
	pnet, _ := petri.New(space, []petri.Transition{})
	oneWay, err := New([]string{"a", "b"}, pnet, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if oneWay.StronglyConnected() {
		t.Error("edgeless 2-state net reported strongly connected")
	}
}

func TestSimpleCycleThrough(t *testing.T) {
	n := twoStateNet(t)
	for e := 0; e < n.NumEdges(); e++ {
		cyc, err := n.SimpleCycleThrough(e)
		if err != nil {
			t.Fatalf("edge %d: %v", e, err)
		}
		if !n.IsCycle(cyc) {
			t.Fatalf("edge %d: result %v not a cycle", e, cyc)
		}
		if cyc[0] != e {
			t.Errorf("edge %d: cycle %v does not start with the edge", e, cyc)
		}
		if len(cyc) > n.NumStates() {
			t.Errorf("edge %d: cycle length %d > |S| = %d", e, len(cyc), n.NumStates())
		}
	}
	if _, err := n.SimpleCycleThrough(99); err == nil {
		t.Error("bad edge accepted")
	}
}

func TestTotalCycleLemma72(t *testing.T) {
	n := twoStateNet(t)
	cyc, err := n.TotalCycle()
	if err != nil {
		t.Fatalf("TotalCycle: %v", err)
	}
	if !n.IsCycle(cyc) {
		t.Fatal("total cycle is not a cycle")
	}
	p := n.Parikh(cyc)
	for e, c := range p {
		if c == 0 {
			t.Errorf("edge %d missing from total cycle", e)
		}
	}
	// Lemma 7.2 bound: |θ| ≤ |E|·|S| = 3·2 = 6.
	if len(cyc) > n.NumEdges()*n.NumStates() {
		t.Errorf("total cycle length %d exceeds |E||S| = %d", len(cyc), n.NumEdges()*n.NumStates())
	}
}

func TestEulerCycle(t *testing.T) {
	n := twoStateNet(t)
	// Multicycle: 2×(e0,e1) + 1×(e2): balanced, total.
	parikh := []int64{2, 2, 1}
	cyc, err := n.EulerCycle(parikh)
	if err != nil {
		t.Fatalf("EulerCycle: %v", err)
	}
	if !n.IsCycle(cyc) {
		t.Fatal("Euler output not a cycle")
	}
	got := n.Parikh(cyc)
	for e := range parikh {
		if got[e] != parikh[e] {
			t.Errorf("edge %d: Parikh %d, want %d", e, got[e], parikh[e])
		}
	}
}

func TestEulerCycleRejectsImbalance(t *testing.T) {
	n := twoStateNet(t)
	if _, err := n.EulerCycle([]int64{1, 0, 0}); err == nil {
		t.Error("unbalanced Parikh accepted")
	}
	if _, err := n.EulerCycle([]int64{0, 0, 0}); err == nil {
		t.Error("empty multicycle accepted")
	}
	if _, err := n.EulerCycle([]int64{1, 1}); err == nil {
		t.Error("wrong-length Parikh accepted")
	}
	if _, err := n.EulerCycle([]int64{-1, 0, 0}); err == nil {
		t.Error("negative Parikh accepted")
	}
}

func TestDecomposeSimple(t *testing.T) {
	n := twoStateNet(t)
	// s0 -e0-> s1 -e2-> s1 -e1-> s0: peels into [e2] and [e0,e1].
	cyc := []int{0, 2, 1}
	parts, err := n.DecomposeSimple(cyc)
	if err != nil {
		t.Fatalf("DecomposeSimple: %v", err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %v, want 2 simple cycles", parts)
	}
	// Parikh images must sum to the original.
	sum := make([]int64, n.NumEdges())
	for _, part := range parts {
		if !n.IsCycle(part) {
			t.Errorf("part %v is not a cycle", part)
		}
		for e, c := range n.Parikh(part) {
			sum[e] += c
		}
		// Simplicity: no control-state repeats, so length ≤ |S|.
		if len(part) > n.NumStates() {
			t.Errorf("part %v longer than |S|", part)
		}
	}
	orig := n.Parikh(cyc)
	for e := range orig {
		if sum[e] != orig[e] {
			t.Errorf("edge %d: decomposition Parikh %d, want %d", e, sum[e], orig[e])
		}
	}

	if _, err := n.DecomposeSimple([]int{0}); err == nil {
		t.Error("non-cycle accepted")
	}
}
