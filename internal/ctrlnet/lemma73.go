package ctrlnet

import (
	"errors"
	"fmt"

	"repro/internal/hilbert"
)

// Lemma73Result is the replacement multicycle Θ' produced by Lemma 7.3,
// as a list of simple cycles with multiplicities.
type Lemma73Result struct {
	// Cycles are the distinct simple cycles of Θ' (edge-index paths).
	Cycles [][]int
	// Mult[i] is the multiplicity of Cycles[i] in Θ'.
	Mult []int64
	// Parikh is #Θ' over edges.
	Parikh []int64
	// Delta is Δ(Θ') over the Petri net's states.
	Delta []int64
	// Length is |Θ'| = Σ multiplicities × cycle lengths.
	Length int64
}

// Lemma73 constructs, from a multicycle Θ (a list of cycles), a
// replacement multicycle Θ' such that, writing Δ = Δ(Θ):
//
//   - Δ(Θ')(p) ≤ 0 wherever Δ(p) ≤ 0, and Δ(Θ')(p) < 0 wherever
//     Δ(p) ≤ −k;
//   - Δ(Θ')(p) ≥ 0 wherever Δ(p) ≥ 0, and Δ(Θ')(p) > 0 wherever
//     Δ(p) ≥ k;
//   - Δ(Θ')(q) = 0 for every Petri-net state q ∈ Q (zeroMask);
//   - #Θ'(e) > 0 for every edge e with #Θ(e) ≥ k.
//
// The construction follows the paper's proof: decompose Θ into simple
// cycles, set up the linear system (1) over variables (α, β) with β
// indexed by the distinct simple cycles, obtain a Pottier decomposition
// of the canonical solution (|Δ|, multiplicities) into minimal
// solutions, keep those vanishing on Q (the set H₀), and sum one H₀
// element per constraint that must be hit. It fails with an explicit
// error when k is too small for H₀ to cover the constraints — the
// paper's choice k > ‖Δ(Θ)|Q‖₁(1+2|S|‖T‖∞)^(d(d+1)) always suffices.
func (n *Net) Lemma73(theta [][]int, zeroMask []bool, k int64) (*Lemma73Result, error) {
	d := n.pnet.Space().Len()
	if len(zeroMask) != d {
		return nil, errors.New("ctrlnet: zero-mask length mismatch")
	}
	if k <= 0 {
		return nil, errors.New("ctrlnet: k must be positive")
	}
	if len(theta) == 0 {
		return nil, errors.New("ctrlnet: empty multicycle")
	}

	// 1. Decompose Θ into simple cycles; collect distinct ones (by
	// Parikh key) with multiplicities.
	type simpleInfo struct {
		cycle []int
		mult  int64
		delta []int64
	}
	var simples []simpleInfo
	index := make(map[string]int)
	keyOf := func(c []int) string {
		p := n.Parikh(c)
		buf := make([]byte, 0, len(p))
		for _, v := range p {
			buf = append(buf, byte(v), byte(v>>8))
		}
		return string(buf)
	}
	for ci, cyc := range theta {
		if !n.IsCycle(cyc) {
			return nil, fmt.Errorf("ctrlnet: element %d of Θ is not a cycle", ci)
		}
		parts, err := n.DecomposeSimple(cyc)
		if err != nil {
			return nil, err
		}
		for _, s := range parts {
			ck := keyOf(s)
			if i, ok := index[ck]; ok {
				simples[i].mult++
				continue
			}
			index[ck] = len(simples)
			simples = append(simples, simpleInfo{cycle: s, mult: 1, delta: n.Displacement(s)})
		}
	}

	// 2. Sign vector s(p) and magnitude f(p) = |Δ(Θ)(p)|.
	deltaTheta := make([]int64, d)
	for _, s := range simples {
		for p, v := range s.delta {
			deltaTheta[p] += s.mult * v
		}
	}
	sign := make([]int64, d)
	f := make([]int64, d)
	for p, v := range deltaTheta {
		if v >= 0 {
			sign[p] = 1
			f[p] = v
		} else {
			sign[p] = -1
			f[p] = -v
		}
	}
	// Hypothesis check: the lemma's k exceeds ‖Δ(Θ)|Q‖₁ (times a
	// positive factor), so no state of Q can be heavy. Reject
	// inconsistent inputs up front with a diagnostic instead of failing
	// deep inside the H₀ search.
	for p := 0; p < d; p++ {
		if zeroMask[p] && f[p] >= k {
			return nil, fmt.Errorf(
				"ctrlnet: lemma 7.3 hypothesis violated: |Δ(Θ)(%s)| = %d ≥ k = %d for a state of Q",
				n.pnet.Space().Name(p), f[p], k)
		}
	}

	// 3. Linear system (1): for each state p,
	//    s(p)·α(p) − Σ_c β(c)·Δ(c)(p) = 0
	// over unknowns x = (α, β) ∈ ℕ^d × ℕ^|simples|.
	cols := d + len(simples)
	rows := make([][]int64, d)
	for p := 0; p < d; p++ {
		row := make([]int64, cols)
		row[p] = sign[p]
		for ci, s := range simples {
			row[d+ci] = -s.delta[p]
		}
		rows[p] = row
	}
	sys, err := hilbert.NewSystem(rows)
	if err != nil {
		return nil, err
	}
	basis, err := sys.MinimalSolutions(hilbert.Options{})
	if err != nil {
		return nil, fmt.Errorf("lemma 7.3: %w", err)
	}

	// 4. Decompose the canonical solution (f, g).
	canon := make([]int64, cols)
	copy(canon, f)
	for ci, s := range simples {
		canon[d+ci] = s.mult
	}
	coeff, err := sys.Decompose(canon, basis)
	if err != nil {
		return nil, fmt.Errorf("lemma 7.3: %w", err)
	}

	// 5. H₀: basis elements used by the decomposition that vanish on Q
	// in their α part. (Restricting to used elements keeps the
	// correspondence with the paper's multiset H.)
	var h0 []int
	for bi, c := range coeff {
		if c == 0 {
			continue
		}
		ok := true
		for p := 0; p < d; p++ {
			if zeroMask[p] && basis[bi][p] != 0 {
				ok = false
				break
			}
		}
		if ok {
			h0 = append(h0, bi)
		}
	}

	// 6. Pick one H₀ element per constraint.
	chosen := make(map[int]int64) // basis index -> multiplicity in Θ'
	pick := func(pred func(x []int64) bool, what string) error {
		for _, bi := range h0 {
			if pred(basis[bi]) {
				chosen[bi]++
				return nil
			}
		}
		return fmt.Errorf("ctrlnet: lemma 7.3: no H₀ element covers %s (k too small)", what)
	}
	// Heavy edges: #Θ(e) ≥ k must stay present. An H₀ element covers
	// edge e when some simple cycle containing e has positive β.
	parikhTheta := make([]int64, len(n.edges))
	for _, s := range simples {
		p := n.Parikh(s.cycle)
		for e, c := range p {
			parikhTheta[e] += s.mult * c
		}
	}
	for e, c := range parikhTheta {
		if c < k {
			continue
		}
		e := e
		if err := pick(func(x []int64) bool {
			for ci, s := range simples {
				if x[d+ci] > 0 && n.Parikh(s.cycle)[e] > 0 {
					return true
				}
			}
			return false
		}, fmt.Sprintf("edge %d", e)); err != nil {
			return nil, err
		}
	}
	// Heavy states: |Δ(Θ)(p)| ≥ k must keep a strict sign. States of Q
	// cannot be heavy (checked above).
	for p := 0; p < d; p++ {
		if f[p] < k || zeroMask[p] {
			continue
		}
		p := p
		if err := pick(func(x []int64) bool { return x[p] > 0 },
			fmt.Sprintf("state %q", n.pnet.Space().Name(p))); err != nil {
			return nil, err
		}
	}
	if len(chosen) == 0 {
		return nil, errors.New("ctrlnet: lemma 7.3: no constraints to satisfy (all counts below k)")
	}

	// 7. Assemble Θ' = Σ chosen elements.
	res := &Lemma73Result{Parikh: make([]int64, len(n.edges)), Delta: make([]int64, d)}
	betaSum := make([]int64, len(simples))
	for bi, mult := range chosen {
		x := basis[bi]
		for p := 0; p < d; p++ {
			res.Delta[p] += mult * sign[p] * x[p]
		}
		for ci := range simples {
			betaSum[ci] += mult * x[d+ci]
		}
	}
	for ci, c := range betaSum {
		if c == 0 {
			continue
		}
		res.Cycles = append(res.Cycles, simples[ci].cycle)
		res.Mult = append(res.Mult, c)
		res.Length += c * int64(len(simples[ci].cycle))
		p := n.Parikh(simples[ci].cycle)
		for e, pc := range p {
			res.Parikh[e] += c * pc
		}
	}
	return res, nil
}
