package ctrlnet

import (
	"strings"
	"testing"

	"repro/internal/bounds"
	"repro/internal/conf"
	"repro/internal/petri"
)

// lemma73Net builds a control net whose cycles have opposite-sign
// displacements so the linear system (1) is non-trivial:
//
// Petri places {x, y, z}; control states {s0, s1}.
//
//	e0: s0 -(x→y)-> s1     Δ = (−1, +1, 0)
//	e1: s1 -(y→x)-> s0     Δ = (+1, −1, 0)
//	e2: s1 -(y→y+z)-> s1   Δ = (0, 0, +1)   pumps z
//	e3: s1 -(z→∅)-> s1     Δ = (0, 0, −1)   drains z
func lemma73Net(t *testing.T) *Net {
	t.Helper()
	space := conf.MustSpace("x", "y", "z")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	mkTr := func(name string, pre, post conf.Config) petri.Transition {
		tr, err := petri.NewTransition(name, pre, post)
		if err != nil {
			t.Fatalf("transition: %v", err)
		}
		return tr
	}
	pnet, err := petri.New(space, []petri.Transition{
		mkTr("xy", u("x"), u("y")),
		mkTr("yx", u("y"), u("x")),
		mkTr("pump", u("y"), u("y").Add(u("z"))),
		mkTr("drain", u("z"), conf.New(space)),
	})
	if err != nil {
		t.Fatalf("petri: %v", err)
	}
	n, err := New([]string{"s0", "s1"}, pnet, []Edge{
		{From: "s0", Trans: 0, To: "s1"},
		{From: "s1", Trans: 1, To: "s0"},
		{From: "s1", Trans: 2, To: "s1"},
		{From: "s1", Trans: 3, To: "s1"},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// buildTheta assembles a multicycle from cycle templates repeated the
// given number of times.
func buildTheta(cycle []int, times int) [][]int {
	out := make([][]int, times)
	for i := range out {
		out[i] = cycle
	}
	return out
}

func TestLemma73SignPreservation(t *testing.T) {
	n := lemma73Net(t)
	// Θ = 10 copies of the pumping cycle (e0, e2, e2, e1): Δ = (0,0,+20),
	// Parikh(e0)=Parikh(e1)=10, Parikh(e2)=20, Parikh(e3)=0.
	theta := buildTheta([]int{0, 2, 2, 1}, 10)
	zero := []bool{false, false, false} // Q = ∅
	k := int64(5)
	res, err := n.Lemma73(theta, zero, k)
	if err != nil {
		t.Fatalf("Lemma73: %v", err)
	}
	// Δ(Θ)(z) = 20 ≥ k ⟹ Δ(Θ')(z) > 0.
	if res.Delta[2] <= 0 {
		t.Errorf("Δ(Θ')(z) = %d, want > 0", res.Delta[2])
	}
	// Δ(Θ)(x) = Δ(Θ)(y) = 0 ⟹ Δ(Θ') respects signs (here = 0 since
	// sign(x)=sign(y)=+1 means ≥ 0; and ≤ is not forced).
	if res.Delta[0] < 0 || res.Delta[1] < 0 {
		t.Errorf("Δ(Θ') = %v violates sign preservation", res.Delta)
	}
	// Heavy edges e0, e1, e2 (counts 10, 10, 20 ≥ 5) must stay present.
	for _, e := range []int{0, 1, 2} {
		if res.Parikh[e] == 0 {
			t.Errorf("heavy edge %d dropped from Θ'", e)
		}
	}
	// Every multiplicity corresponds to a genuine cycle.
	for i, c := range res.Cycles {
		if !n.IsCycle(c) {
			t.Errorf("Θ' element %d is not a cycle", i)
		}
		if res.Mult[i] <= 0 {
			t.Errorf("Θ' multiplicity %d not positive", i)
		}
	}
}

func TestLemma73ZeroConstraint(t *testing.T) {
	n := lemma73Net(t)
	// Θ balances pumping (+2 z per cycle, 6 cycles) against draining
	// (−1 z per cycle, 12 cycles): Δ(Θ)(z) = 0 so the hypothesis holds
	// for Q = {z}, and Θ' must keep Δ(Θ')(z) = 0 exactly.
	theta := append(buildTheta([]int{0, 2, 2, 1}, 6), buildTheta([]int{0, 3, 1}, 12)...)
	zero := []bool{false, false, true} // Q = {z}
	res, err := n.Lemma73(theta, zero, 6)
	if err != nil {
		t.Fatalf("Lemma73: %v", err)
	}
	if res.Delta[2] != 0 {
		t.Errorf("Δ(Θ')(z) = %d, want 0 (z ∈ Q)", res.Delta[2])
	}
	// Heavy edges (e0: 18, e1: 18, e2: 12, e3: 12, all ≥ 6) must be
	// present.
	for e := 0; e < 4; e++ {
		if res.Parikh[e] == 0 {
			t.Errorf("heavy edge %d dropped", e)
		}
	}
}

func TestLemma73NegativeSide(t *testing.T) {
	n := lemma73Net(t)
	// Draining multicycle: Δ(z) = −6 ≤ −k for k=3.
	theta := buildTheta([]int{0, 3, 1}, 6)
	zero := []bool{false, false, false}
	res, err := n.Lemma73(theta, zero, 3)
	if err != nil {
		t.Fatalf("Lemma73: %v", err)
	}
	if res.Delta[2] >= 0 {
		t.Errorf("Δ(Θ')(z) = %d, want < 0", res.Delta[2])
	}
}

func TestLemma73Validation(t *testing.T) {
	n := lemma73Net(t)
	theta := buildTheta([]int{0, 2, 2, 1}, 2)
	if _, err := n.Lemma73(theta, []bool{true}, 1); err == nil {
		t.Error("bad mask accepted")
	}
	if _, err := n.Lemma73(theta, []bool{false, false, false}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := n.Lemma73(nil, []bool{false, false, false}, 1); err == nil {
		t.Error("empty Θ accepted")
	}
	if _, err := n.Lemma73([][]int{{0}}, []bool{false, false, false}, 1); err == nil {
		t.Error("non-cycle element accepted")
	}
}

func TestLemma73HypothesisViolation(t *testing.T) {
	n := lemma73Net(t)
	// Pump-only Θ has Δ(Θ)(z) = +20; with z ∈ Q and k = 5 the lemma's
	// hypothesis k > ‖Δ(Θ)|Q‖₁·(…) is violated and the implementation
	// must refuse with a diagnostic rather than produce a wrong Θ'.
	theta := buildTheta([]int{0, 2, 2, 1}, 10)
	zero := []bool{false, false, true}
	_, err := n.Lemma73(theta, zero, 5)
	if err == nil {
		t.Fatal("expected failure for violated hypothesis")
	}
	if !strings.Contains(err.Error(), "hypothesis") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// With Q on states untouched by the cycles' net displacement, a tiny k
// still succeeds because cycle displacements on x, y cancel within each
// simple cycle.
func TestLemma73QOnBalancedStates(t *testing.T) {
	n := lemma73Net(t)
	theta := buildTheta([]int{0, 2, 2, 1}, 10)
	zero := []bool{true, true, false} // Q = {x, y}
	res, err := n.Lemma73(theta, zero, 5)
	if err != nil {
		t.Fatalf("Lemma73: %v", err)
	}
	if res.Delta[0] != 0 || res.Delta[1] != 0 {
		t.Errorf("Δ(Θ') = %v, want zeros on Q", res.Delta)
	}
	if res.Delta[2] <= 0 {
		t.Errorf("Δ(Θ')(z) = %d, want > 0 (heavy state)", res.Delta[2])
	}
}

// The replacement multicycle obeys the Lemma 7.3 length bound
// |Θ'| ≤ (|E|+d)(1+2|S|‖T‖∞)^(d(d+1)).
func TestLemma73LengthBound(t *testing.T) {
	n := lemma73Net(t)
	theta := append(buildTheta([]int{0, 2, 2, 1}, 6), buildTheta([]int{0, 3, 1}, 12)...)
	res, err := n.Lemma73(theta, []bool{false, false, true}, 6)
	if err != nil {
		t.Fatalf("Lemma73: %v", err)
	}
	d := n.PNet().Space().Len()
	bound := bounds.Lemma73MulticycleLength(d, n.NumEdges(), int64(n.NumStates()), n.PNet().NormInf())
	if !bound.GeqInt(res.Length) {
		t.Errorf("|Θ'| = %d exceeds Lemma 7.3 bound %v", res.Length, bound)
	}
}

// End-to-end shape of the Section 8 usage: Θ' is total on heavy edges,
// Euler-combines into a single cycle.
func TestLemma73ThenEuler(t *testing.T) {
	n := lemma73Net(t)
	// 8 pump (+16 z) against 16 drain (−16 z): Δ(Θ)(z) = 0, Q = {z}.
	theta := append(buildTheta([]int{0, 2, 2, 1}, 8), buildTheta([]int{0, 3, 1}, 16)...)
	zero := []bool{false, false, true}
	res, err := n.Lemma73(theta, zero, 8)
	if err != nil {
		t.Fatalf("Lemma73: %v", err)
	}
	// If Θ' is total (it is here: all four edges are heavy), the Euler
	// lemma must combine it into one cycle with the same Parikh image.
	cyc, err := n.EulerCycle(res.Parikh)
	if err != nil {
		t.Fatalf("EulerCycle: %v", err)
	}
	got := n.Parikh(cyc)
	for e := range got {
		if got[e] != res.Parikh[e] {
			t.Errorf("edge %d: Euler Parikh %d, want %d", e, got[e], res.Parikh[e])
		}
	}
}
