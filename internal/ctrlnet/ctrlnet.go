// Package ctrlnet implements Petri nets with control-states (Section 7
// of Leroux, PODC 2022): a triple (S, T, E) with S a finite set of
// control-states, T a P-Petri net and E ⊆ S×T×S a set of edges. It
// provides paths, cycles, multicycles, Parikh images, displacements,
// the Euler lemma (Lemma 7.1), small total cycles (Lemma 7.2) and the
// constructive small-multicycle replacement of Lemma 7.3 built on
// Pottier's theorem.
package ctrlnet

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/petri"
)

// Edge is an element (s, t, s') of E: transition index Trans of the
// Petri net fired while moving from control-state From to To.
type Edge struct {
	From  string
	Trans int
	To    string
}

// Net is a Petri net with control-states.
type Net struct {
	states []string
	sidx   map[string]int
	pnet   *petri.Net
	edges  []Edge
	// out[s] lists edge indices leaving control-state s.
	out [][]int
}

// New validates and builds a Petri net with control-states.
func New(states []string, pnet *petri.Net, edges []Edge) (*Net, error) {
	if len(states) == 0 {
		return nil, errors.New("ctrlnet: no control-states")
	}
	if pnet == nil {
		return nil, errors.New("ctrlnet: nil Petri net")
	}
	n := &Net{
		states: append([]string(nil), states...),
		sidx:   make(map[string]int, len(states)),
		pnet:   pnet,
		edges:  append([]Edge(nil), edges...),
		out:    make([][]int, len(states)),
	}
	for i, s := range states {
		if s == "" {
			return nil, errors.New("ctrlnet: empty control-state name")
		}
		if _, dup := n.sidx[s]; dup {
			return nil, fmt.Errorf("ctrlnet: duplicate control-state %q", s)
		}
		n.sidx[s] = i
	}
	for ei, e := range n.edges {
		from, ok := n.sidx[e.From]
		if !ok {
			return nil, fmt.Errorf("ctrlnet: edge %d: unknown control-state %q", ei, e.From)
		}
		if _, ok := n.sidx[e.To]; !ok {
			return nil, fmt.Errorf("ctrlnet: edge %d: unknown control-state %q", ei, e.To)
		}
		if e.Trans < 0 || e.Trans >= pnet.Len() {
			return nil, fmt.Errorf("ctrlnet: edge %d: no transition %d", ei, e.Trans)
		}
		n.out[from] = append(n.out[from], ei)
	}
	return n, nil
}

// NumStates returns |S|.
func (n *Net) NumStates() int { return len(n.states) }

// NumEdges returns |E|.
func (n *Net) NumEdges() int { return len(n.edges) }

// PNet returns the underlying Petri net.
func (n *Net) PNet() *petri.Net { return n.pnet }

// EdgeAt returns the i-th edge.
func (n *Net) EdgeAt(i int) Edge { return n.edges[i] }

// StateIndex returns the index of a control-state name.
func (n *Net) StateIndex(name string) (int, bool) {
	i, ok := n.sidx[name]
	return i, ok
}

// controlAdjacency returns S-level adjacency lists induced by E.
func (n *Net) controlAdjacency() [][]int {
	adj := make([][]int, len(n.states))
	for s, outs := range n.out {
		for _, ei := range outs {
			adj[s] = append(adj[s], n.sidx[n.edges[ei].To])
		}
	}
	return adj
}

// StronglyConnected reports whether for every pair (s, s') there is a
// path from s to s'.
func (n *Net) StronglyConnected() bool {
	return graph.StronglyConnected(n.controlAdjacency())
}

// ValidatePath checks that the edge-index sequence is a path (each
// edge's target is the next edge's source) and returns its endpoints.
// The empty path is invalid (no endpoints).
func (n *Net) ValidatePath(path []int) (from, to string, err error) {
	if len(path) == 0 {
		return "", "", errors.New("ctrlnet: empty path")
	}
	for i, ei := range path {
		if ei < 0 || ei >= len(n.edges) {
			return "", "", fmt.Errorf("ctrlnet: no edge %d", ei)
		}
		if i > 0 && n.edges[path[i-1]].To != n.edges[ei].From {
			return "", "", fmt.Errorf("ctrlnet: edges %d and %d do not chain", path[i-1], ei)
		}
	}
	return n.edges[path[0]].From, n.edges[path[len(path)-1]].To, nil
}

// IsCycle reports whether the path returns to its starting
// control-state.
func (n *Net) IsCycle(path []int) bool {
	from, to, err := n.ValidatePath(path)
	return err == nil && from == to
}

// Parikh returns the Parikh image #π ∈ ℕ^E of a path.
func (n *Net) Parikh(path []int) []int64 {
	out := make([]int64, len(n.edges))
	for _, ei := range path {
		out[ei]++
	}
	return out
}

// Displacement returns Δ(π) ∈ ℤ^P of a path (or any edge multiset).
func (n *Net) Displacement(path []int) []int64 {
	out := make([]int64, n.pnet.Space().Len())
	for _, ei := range path {
		d := n.pnet.At(n.edges[ei].Trans).Delta()
		for i, v := range d {
			out[i] += v
		}
	}
	return out
}

// DisplacementOfParikh returns Δ for an edge-multiplicity vector.
func (n *Net) DisplacementOfParikh(parikh []int64) []int64 {
	out := make([]int64, n.pnet.Space().Len())
	for ei, c := range parikh {
		if c == 0 {
			continue
		}
		d := n.pnet.At(n.edges[ei].Trans).Delta()
		for i, v := range d {
			out[i] += c * v
		}
	}
	return out
}

// Label returns the transition-index word read along the path.
func (n *Net) Label(path []int) []int {
	out := make([]int, len(path))
	for i, ei := range path {
		out[i] = n.edges[ei].Trans
	}
	return out
}

// SimpleCycleThrough returns a shortest cycle containing the given edge
// (the edge first, then a shortest path from its target back to its
// source). Its length is at most |S|.
func (n *Net) SimpleCycleThrough(edge int) ([]int, error) {
	if edge < 0 || edge >= len(n.edges) {
		return nil, fmt.Errorf("ctrlnet: no edge %d", edge)
	}
	start := n.sidx[n.edges[edge].To]
	goal := n.sidx[n.edges[edge].From]
	if start == goal {
		return []int{edge}, nil
	}
	// BFS over control-states remembering the edge used.
	prevEdge := make([]int, len(n.states))
	prevNode := make([]int, len(n.states))
	for i := range prevEdge {
		prevEdge[i] = -1
		prevNode[i] = -1
	}
	queue := []int{start}
	visited := make([]bool, len(n.states))
	visited[start] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s == goal {
			break
		}
		for _, ei := range n.out[s] {
			t := n.sidx[n.edges[ei].To]
			if !visited[t] {
				visited[t] = true
				prevEdge[t] = ei
				prevNode[t] = s
				queue = append(queue, t)
			}
		}
	}
	if !visited[goal] {
		return nil, fmt.Errorf("ctrlnet: no path from %q back to %q", n.edges[edge].To, n.edges[edge].From)
	}
	var back []int
	for s := goal; s != start; s = prevNode[s] {
		back = append(back, prevEdge[s])
	}
	cycle := []int{edge}
	for i := len(back) - 1; i >= 0; i-- {
		cycle = append(cycle, back[i])
	}
	return cycle, nil
}

// TotalCycle returns a total cycle (every edge occurs) of length at
// most |E|·|S|, per Lemma 7.2: one simple cycle per edge, merged by the
// Euler lemma. The net must be strongly connected.
func (n *Net) TotalCycle() ([]int, error) {
	if len(n.edges) == 0 {
		return nil, errors.New("ctrlnet: no edges")
	}
	if !n.StronglyConnected() {
		return nil, errors.New("ctrlnet: not strongly connected")
	}
	parikh := make([]int64, len(n.edges))
	for ei := range n.edges {
		cyc, err := n.SimpleCycleThrough(ei)
		if err != nil {
			return nil, err
		}
		for _, e := range cyc {
			parikh[e]++
		}
	}
	return n.EulerCycle(parikh)
}

// EulerCycle implements Lemma 7.1 constructively: given the Parikh
// image of a total multicycle (every edge count positive, flow balanced
// at every control-state) over a strongly connected net, it returns one
// cycle with exactly that Parikh image, via Hierholzer's algorithm on
// the multigraph.
func (n *Net) EulerCycle(parikh []int64) ([]int, error) {
	if len(parikh) != len(n.edges) {
		return nil, errors.New("ctrlnet: parikh length mismatch")
	}
	var totalEdges int64
	inDeg := make([]int64, len(n.states))
	outDeg := make([]int64, len(n.states))
	for ei, c := range parikh {
		if c < 0 {
			return nil, errors.New("ctrlnet: negative parikh entry")
		}
		if c == 0 {
			continue
		}
		totalEdges += c
		outDeg[n.sidx[n.edges[ei].From]] += c
		inDeg[n.sidx[n.edges[ei].To]] += c
	}
	if totalEdges == 0 {
		return nil, errors.New("ctrlnet: empty multicycle")
	}
	for s := range n.states {
		if inDeg[s] != outDeg[s] {
			return nil, fmt.Errorf("ctrlnet: flow imbalance at %q: in=%d out=%d", n.states[s], inDeg[s], outDeg[s])
		}
	}
	// Support connectivity: the states touched by positive-count edges
	// must be strongly connected among themselves (guaranteed when the
	// multicycle is total and the net strongly connected, but verified
	// here for robustness).
	if !n.supportConnected(parikh) {
		return nil, errors.New("ctrlnet: multicycle support not connected")
	}

	// Hierholzer over the multigraph.
	remaining := append([]int64(nil), parikh...)
	outEdges := make([][]int, len(n.states))
	for s, outs := range n.out {
		for _, ei := range outs {
			if parikh[ei] > 0 {
				outEdges[s] = append(outEdges[s], ei)
			}
		}
	}
	cursor := make([]int, len(n.states))
	var start int
	for ei, c := range parikh {
		if c > 0 {
			start = n.sidx[n.edges[ei].From]
			break
		}
	}
	// Iterative Hierholzer: walk until stuck, backtrack inserting
	// detours.
	var circuit []int // edges in reverse completion order
	type stackItem struct {
		state int
		edge  int // edge taken to arrive here, −1 for the start
	}
	stack := []stackItem{{state: start, edge: -1}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		s := top.state
		advanced := false
		for cursor[s] < len(outEdges[s]) {
			ei := outEdges[s][cursor[s]]
			if remaining[ei] == 0 {
				cursor[s]++
				continue
			}
			remaining[ei]--
			stack = append(stack, stackItem{state: n.sidx[n.edges[ei].To], edge: ei})
			advanced = true
			break
		}
		if !advanced {
			if top.edge >= 0 {
				circuit = append(circuit, top.edge)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if int64(len(circuit)) != totalEdges {
		return nil, errors.New("ctrlnet: internal: Euler walk incomplete")
	}
	// circuit is in reverse order.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	if !n.IsCycle(circuit) {
		return nil, errors.New("ctrlnet: internal: Euler output not a cycle")
	}
	return circuit, nil
}

// supportConnected checks strong connectivity of the sub-digraph on
// positive-count edges, restricted to touched states.
func (n *Net) supportConnected(parikh []int64) bool {
	touched := make([]bool, len(n.states))
	adj := make([][]int, len(n.states))
	any := false
	for ei, c := range parikh {
		if c <= 0 {
			continue
		}
		f, t := n.sidx[n.edges[ei].From], n.sidx[n.edges[ei].To]
		touched[f], touched[t] = true, true
		adj[f] = append(adj[f], t)
		any = true
	}
	if !any {
		return false
	}
	comp, _ := graph.SCC(adj)
	first := -1
	for s, ok := range touched {
		if !ok {
			continue
		}
		if first == -1 {
			first = comp[s]
		} else if comp[s] != first {
			return false
		}
	}
	return true
}

// DecomposeSimple decomposes a cycle into simple cycles with the same
// total Parikh image (the classical peeling argument used at the start
// of the Lemma 7.3 proof).
func (n *Net) DecomposeSimple(cycle []int) ([][]int, error) {
	if !n.IsCycle(cycle) {
		return nil, errors.New("ctrlnet: not a cycle")
	}
	var cycles [][]int
	var stackEdges []int
	var stackStates []int // stackStates[i] = control-state before stackEdges[i]
	posOf := make(map[int]int)
	cur := n.sidx[n.edges[cycle[0]].From]
	posOf[cur] = 0
	for _, ei := range cycle {
		stackStates = append(stackStates, cur)
		stackEdges = append(stackEdges, ei)
		cur = n.sidx[n.edges[ei].To]
		p, seen := posOf[cur]
		if !seen {
			posOf[cur] = len(stackEdges)
			continue
		}
		// stackEdges[p:] is a cycle on cur: peel it off.
		cycles = append(cycles, append([]int(nil), stackEdges[p:]...))
		for i := p; i < len(stackStates); i++ {
			delete(posOf, stackStates[i])
		}
		stackEdges = stackEdges[:p]
		stackStates = stackStates[:p]
		posOf[cur] = p
	}
	if len(stackEdges) != 0 {
		return nil, errors.New("ctrlnet: internal: decomposition left a non-empty stack")
	}
	return cycles, nil
}
