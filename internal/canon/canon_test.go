package canon

import (
	"strings"
	"testing"
)

// Canonicalization must be insensitive to whitespace and member order,
// drop the named members, and keep big integers digit-exact.
func TestCanonicalizeNormalizes(t *testing.T) {
	a := []byte(`{"b": 1, "a": {"y": 2, "x": 9007199254740993}, "checksum": "crc32c:deadbeef"}`)
	b := []byte("{\n  \"checksum\": \"crc32c:00000000\",\n  \"a\": {\"x\": 9007199254740993, \"y\": 2},\n  \"b\": 1\n}")
	ca, err := Canonicalize(a, "checksum")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Canonicalize(b, "checksum")
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ca, cb)
	}
	// 2^53+1 is not representable in float64; a lossy parse would have
	// rounded it to ...992.
	if !strings.Contains(string(ca), "9007199254740993") {
		t.Fatalf("big integer not digit-exact in %s", ca)
	}
	if strings.Contains(string(ca), "checksum") {
		t.Fatalf("dropped member survived in %s", ca)
	}
}

func TestChecksumMatchesAcrossFormatting(t *testing.T) {
	a := []byte(`{"k": 1, "v": [1, 2, 3]}`)
	b := []byte("{ \"v\": [1,2,3],\n \"k\": 1 }")
	sa, err := Checksum(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Checksum(b)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("reformatting changed the checksum: %s vs %s", sa, sb)
	}
	if !strings.HasPrefix(sa, "crc32c:") || len(sa) != len("crc32c:")+8 {
		t.Fatalf("bad checksum rendering %q", sa)
	}
	sc, err := Checksum([]byte(`{"k": 2, "v": [1, 2, 3]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc == sa {
		t.Fatal("content change did not change the checksum")
	}
}

func TestChecksumUnparseable(t *testing.T) {
	if _, err := Checksum([]byte(`{"torn": tr`)); err == nil {
		t.Fatal("unparseable document checksummed without error")
	}
}

// The rendered sum is pinned so the convention cannot silently drift:
// every sealed artifact in the repo (shard queue documents, serve
// store artifacts) and the golden files that pin them depend on it.
func TestChecksumGolden(t *testing.T) {
	got, err := Checksum([]byte(`{"a": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if want := FormatChecksum(CRC32C([]byte(`{"a":1}`))); got != want {
		t.Fatalf("Checksum = %s, canonical CRC32C = %s", got, want)
	}
	if got != "crc32c:cff7d56a" {
		t.Fatalf("pinned checksum drifted: %s", got)
	}
}
