// Package canon is the shared canonical-JSON and content-checksum
// machinery under every persisted artifact in the repo: shard queue
// documents (cell partials, part-*.json, leases) and the ppserve
// result store both seal and verify documents through it, and the
// serve cache keys are derived from its canonical form. Canonical
// means whitespace- and key-order-insensitive and number-exact:
// documents are parsed with json.Number (so 64-bit accumulator sums
// above 2^53 re-emit digit for digit), selected top-level members are
// dropped (the embedded "checksum" field, which cannot cover itself),
// and the object is re-marshaled compact with sorted keys. Two
// documents that differ only in formatting or member order therefore
// canonicalize to the same bytes, while any content change — a torn
// write, a truncated tail, a flipped bit, an edited field — changes
// them.
//
// Checksums are CRC-32C (Castagnoli) over the canonical bytes,
// rendered "crc32c:%08x". CRC-32C detects the corruption classes an
// artifact store sees (torn writes, bit rot) at 4 bytes per document;
// callers needing collision resistance against *distinct inputs* —
// cache keys, content addresses — hash the canonical bytes with
// SHA-256 instead (see internal/serve/key). The checksum member
// convention is shared repo-wide: a sealed document carries
// `"checksum":"crc32c:…"` computed over itself with that one member
// removed, so reformatting a document by hand does not invalidate it.
package canon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

var crcCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C is the repo's artifact checksum function: CRC-32 with the
// Castagnoli polynomial.
func CRC32C(data []byte) uint32 { return crc32.Checksum(data, crcCastagnoli) }

// FormatChecksum renders a CRC-32C sum in the artifact convention.
func FormatChecksum(sum uint32) string { return fmt.Sprintf("crc32c:%08x", sum) }

// Canonicalize parses one JSON object with exact numbers, drops the
// named top-level members, and re-marshals compact with sorted keys.
// The result is the document's canonical form: independent of
// whitespace, member order, and the dropped members' values.
func Canonicalize(doc []byte, drop ...string) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.UseNumber()
	var m map[string]any
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("canon: canonicalize unparseable document: %w", err)
	}
	for _, d := range drop {
		delete(m, d)
	}
	return json.Marshal(m)
}

// Checksum computes the canonical content checksum of one document:
// Canonicalize with the given members dropped, then CRC-32C in the
// "crc32c:%08x" rendering. Sealed artifacts call it with "checksum"
// dropped, so the stored sum covers everything but itself.
func Checksum(doc []byte, drop ...string) (string, error) {
	canonical, err := Canonicalize(doc, drop...)
	if err != nil {
		return "", err
	}
	return FormatChecksum(CRC32C(canonical)), nil
}
