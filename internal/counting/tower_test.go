package counting

import (
	"context"
	"errors"
	"testing"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/verify"
)

func TestTowerShape(t *testing.T) {
	for k := int64(0); k <= 4; k++ {
		p, err := Tower(k)
		if err != nil {
			t.Fatalf("Tower(%d): %v", k, err)
		}
		want := int(6*k + 13)
		if p.States() != want {
			t.Errorf("k=%d: states = %d, want %d", k, p.States(), want)
		}
		if p.Width() != 3 {
			t.Errorf("k=%d: width = %d, want 3", k, p.Width())
		}
		if p.NumLeaders() != 1 {
			t.Errorf("k=%d: leaders = %d, want 1", k, p.NumLeaders())
		}
	}
	if _, err := Tower(-1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := Tower(6); err == nil {
		t.Error("k=6 accepted (threshold exceeds int64)")
	}
}

// Tower(0) has no squaring loops (the register is created directly), so
// it must genuinely stably compute φ_{i≥2}.
func TestTower0StablyComputes(t *testing.T) {
	p, err := Tower(0)
	if err != nil {
		t.Fatalf("Tower(0): %v", err)
	}
	n, err := TowerThreshold(0)
	if err != nil || n != 2 {
		t.Fatalf("threshold = %d, %v; want 2", n, err)
	}
	res, err := verify.Counting(p, "i", n, 4, petri.Budget{MaxConfigs: 1 << 18})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !res.OK() {
		f := res.FirstFailure()
		t.Errorf("Tower(0) fails at %v (expected %v), counterexample %v",
			f.Input, f.Expected, f.Counterexample)
	}
}

// Tower(k ≥ 1) uses agent creation, and dirty restarts (the error
// state's exit is itself a guess) can inflate token counts without
// bound: the reachability closure is infinite, so exhaustive
// verification must report budget exhaustion rather than a verdict.
// This documents why the k ≥ 1 family's stable-computation status is
// assessed by simulation, not by the exhaustive verifier.
func TestTower1ClosureUnbounded(t *testing.T) {
	p, err := Tower(1)
	if err != nil {
		t.Fatalf("Tower(1): %v", err)
	}
	_, err = verify.Counting(p, "i", 4, 0, petri.Budget{MaxConfigs: 1 << 14})
	if !errors.Is(err, petri.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget (infinite closure)", err)
	}
}

// Below the threshold, runs whose inner loops exited early
// under-approximate the register and can stabilize on a wrong accept —
// the obstruction that restricts the O(log log n) upper bound of [6] to
// infinitely many special n. This test demonstrates the phenomenon: at
// least one seed converges, and the per-seed outcomes are recorded (a
// wrong accept is expected but not required — it depends on the
// scheduler's guesses).
func TestTower1BelowThresholdEmpirical(t *testing.T) {
	p, err := Tower(1)
	if err != nil {
		t.Fatalf("Tower(1): %v", err)
	}
	in, err := p.Input(map[string]int64{"i": 2}) // below n = 4
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	stats, err := sim.RunMany(context.Background(), p, in, false, 10, sim.Options{Seed: 17, MaxSteps: 200_000, StablePatience: 3000})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if stats.Converged == 0 {
		t.Fatal("no runs converged")
	}
	t.Logf("below-threshold: %d/%d converged, %d/%d correct (wrong accepts demonstrate the documented under-approximation)",
		stats.Converged, stats.Trials, stats.Correct, stats.Converged)
}

// Above the threshold the tower must accept on simulated runs: every
// (possibly under-approximated) register value N' ≤ n ≤ x cancels
// against inputs leaving accepting evidence.
func TestTower1SimulatesAboveThreshold(t *testing.T) {
	p, err := Tower(1)
	if err != nil {
		t.Fatalf("Tower(1): %v", err)
	}
	in, err := p.Input(map[string]int64{"i": 6}) // n = 4
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	stats, err := sim.RunMany(context.Background(), p, in, true, 10, sim.Options{Seed: 5, MaxSteps: 300_000, StablePatience: 3000})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if stats.Converged == 0 {
		t.Fatal("no runs converged")
	}
	if stats.Correct != stats.Converged {
		t.Errorf("above-threshold accuracy %d/%d", stats.Correct, stats.Converged)
	}
}
