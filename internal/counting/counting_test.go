package counting

import (
	"testing"

	"repro/internal/petri"
	"repro/internal/verify"
)

var budget = petri.Budget{MaxConfigs: 1 << 19}

func TestExample41StateAndWidth(t *testing.T) {
	for n := int64(1); n <= 5; n++ {
		p, err := Example41(n)
		if err != nil {
			t.Fatalf("Example41(%d): %v", n, err)
		}
		if p.States() != 2 {
			t.Errorf("n=%d: states = %d, want 2", n, p.States())
		}
		if p.Width() != n {
			t.Errorf("n=%d: width = %d, want %d", n, p.Width(), n)
		}
		if !p.Leaderless() {
			t.Errorf("n=%d: not leaderless", n)
		}
	}
	if _, err := Example41(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestExample41StablyComputes(t *testing.T) {
	for n := int64(1); n <= 4; n++ {
		p, err := Example41(n)
		if err != nil {
			t.Fatalf("Example41(%d): %v", n, err)
		}
		res, err := verify.Counting(p, "i", n, n+3, budget)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.OK() {
			f := res.FirstFailure()
			t.Errorf("n=%d fails at input %v (expected %v), counterexample %v",
				n, f.Input, f.Expected, f.Counterexample)
		}
	}
}

func TestExample42StateWidthLeaders(t *testing.T) {
	for n := int64(1); n <= 5; n++ {
		p, err := Example42(n)
		if err != nil {
			t.Fatalf("Example42(%d): %v", n, err)
		}
		if p.States() != 6 {
			t.Errorf("n=%d: states = %d, want 6", n, p.States())
		}
		if p.Width() != 2 {
			t.Errorf("n=%d: width = %d, want 2", n, p.Width())
		}
		if p.NumLeaders() != n {
			t.Errorf("n=%d: leaders = %d, want %d", n, p.NumLeaders(), n)
		}
		if !p.Net().Conservative() {
			t.Errorf("n=%d: not conservative", n)
		}
	}
	if _, err := Example42(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestExample42StablyComputes(t *testing.T) {
	for n := int64(1); n <= 3; n++ {
		p, err := Example42(n)
		if err != nil {
			t.Fatalf("Example42(%d): %v", n, err)
		}
		res, err := verify.Counting(p, "i", n, n+3, budget)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.OK() {
			f := res.FirstFailure()
			t.Errorf("n=%d fails at input %v (expected %v), counterexample %v",
				n, f.Input, f.Expected, f.Counterexample)
		}
	}
}

func TestFlockOfBirdsShape(t *testing.T) {
	for n := int64(1); n <= 6; n++ {
		p, err := FlockOfBirds(n)
		if err != nil {
			t.Fatalf("FlockOfBirds(%d): %v", n, err)
		}
		wantStates := int(n) + 1
		if n == 1 {
			wantStates = 1
		}
		if p.States() != wantStates {
			t.Errorf("n=%d: states = %d, want %d", n, p.States(), wantStates)
		}
		if n > 1 && p.Width() != 2 {
			t.Errorf("n=%d: width = %d, want 2", n, p.Width())
		}
		if !p.Leaderless() {
			t.Errorf("n=%d: not leaderless", n)
		}
	}
}

func TestFlockOfBirdsStablyComputes(t *testing.T) {
	for n := int64(1); n <= 5; n++ {
		p, err := FlockOfBirds(n)
		if err != nil {
			t.Fatalf("FlockOfBirds(%d): %v", n, err)
		}
		res, err := verify.Counting(p, "i", n, n+2, budget)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.OK() {
			f := res.FirstFailure()
			t.Errorf("n=%d fails at input %v (expected %v), counterexample %v",
				n, f.Input, f.Expected, f.Counterexample)
		}
	}
}

func TestPowerOfTwoShape(t *testing.T) {
	for k := int64(1); k <= 6; k++ {
		p, err := PowerOfTwo(k)
		if err != nil {
			t.Fatalf("PowerOfTwo(%d): %v", k, err)
		}
		if got := int64(p.States()); got != k+2 {
			t.Errorf("k=%d: states = %d, want %d", k, got, k+2)
		}
		if p.Width() != 2 {
			t.Errorf("k=%d: width = %d, want 2", k, p.Width())
		}
	}
	if _, err := PowerOfTwo(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPowerOfTwoStablyComputes(t *testing.T) {
	// k=1 (n=2), k=2 (n=4), k=3 (n=8): verify around the threshold.
	for k := int64(1); k <= 3; k++ {
		n := int64(1) << k
		p, err := PowerOfTwo(k)
		if err != nil {
			t.Fatalf("PowerOfTwo(%d): %v", k, err)
		}
		res, err := verify.Counting(p, "i", n, n+2, budget)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.OK() {
			f := res.FirstFailure()
			t.Errorf("k=%d fails at input %v (expected %v), counterexample %v",
				k, f.Input, f.Expected, f.Counterexample)
		}
	}
}

func TestLeaderDoublingShape(t *testing.T) {
	for k := int64(0); k <= 5; k++ {
		p, err := LeaderDoubling(k)
		if err != nil {
			t.Fatalf("LeaderDoubling(%d): %v", k, err)
		}
		if got := int64(p.States()); got != k+6 {
			t.Errorf("k=%d: states = %d, want %d", k, got, k+6)
		}
		if p.NumLeaders() != 1 {
			t.Errorf("k=%d: leaders = %d, want 1", k, p.NumLeaders())
		}
		if p.Width() != 2 {
			t.Errorf("k=%d: width = %d, want 2", k, p.Width())
		}
	}
}

func TestLeaderDoublingStablyComputes(t *testing.T) {
	// k=0 -> n=1, k=1 -> n=2, k=2 -> n=4.
	for k := int64(0); k <= 2; k++ {
		n := int64(1) << k
		p, err := LeaderDoubling(k)
		if err != nil {
			t.Fatalf("LeaderDoubling(%d): %v", k, err)
		}
		res, err := verify.Counting(p, "i", n, n+2, budget)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.OK() {
			f := res.FirstFailure()
			t.Errorf("k=%d (n=%d) fails at input %v (expected %v), counterexample %v",
				k, n, f.Input, f.Expected, f.Counterexample)
		}
	}
}
