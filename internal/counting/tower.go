package counting

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/petri"
)

// Tower builds the Θ(log log n) protocol family for n(k) = 2^(2^k): a
// single leader simulates the repeated-squaring register machine
// machine.SquaringProgram(k) on agent populations, then compares the
// produced register against the input agents. States: 6k + 13, width 3,
// one leader.
//
// Faithfulness note (DESIGN.md substitution 1): the squaring loops need
// zero-tests, which population protocols cannot perform; loop exits are
// nondeterministic guesses. Detectable inconsistencies (leftover a/b̂/c
// tokens in later phases) send the leader to an error state that wipes
// the computation and restarts it, but an early exit from the inner
// marking loop silently under-approximates the product — this is
// precisely the obstruction that restricts the Blondin–Esparza–Jaax
// O(log log n) upper bound to infinitely many specially chosen n rather
// than all n. Tower therefore reproduces the state-count scaling of [6]
// (the quantity Theorem 4.3 is matched against) while stable
// computation holds only for k = 0; the test suite demonstrates both
// facts and EXPERIMENTS.md reports them.
//
// Protocol structure, per squaring level j ∈ [0, k):
//
//	P0_j split:   (P0, r) → (P0, a, b)      copy register into a and b
//	P1_j outer:   (P1, a) → (P2)            pick a multiplicand
//	P2_j inner:   (P2, b) → (P2, b̂, c)      emit one product token per b
//	P3_j unmark:  (P3, b̂) → (P3, b)
//	P4_j drop:    (P4, b) → (P4)
//	P5_j rename:  (P5, c) → (P5, r)         (→ m at the last level)
//
// with guessed exits P0→P1, P2→P3, P3→P1, P1→P4, P4→P5, P5→next, error
// rules (phase, forbidden token) → (E, token), an error state E that
// deletes tokens and restores converted inputs before restarting, and a
// final majority-style comparison of input tokens i against register
// tokens m with tie-accepting follower dynamics.
func Tower(k int64) (*core.Protocol, error) {
	if k < 0 {
		return nil, fmt.Errorf("counting: k = %d, want ≥ 0", k)
	}
	if k > 5 {
		return nil, fmt.Errorf("counting: k = %d makes n = 2^(2^k) exceed int64", k)
	}

	names := []string{"i", "r", "a", "b", "bp", "c", "m", "fi0", "fi1", "fm0", "fm1", "Linit", "E"}
	phase := func(j int64, p int) string { return fmt.Sprintf("P%d_%d", p, j) }
	for j := int64(0); j < k; j++ {
		for p := 0; p <= 5; p++ {
			names = append(names, phase(j, p))
		}
	}
	space, err := conf.NewSpace(names...)
	if err != nil {
		return nil, err
	}
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	var trans []petri.Transition
	next := 0
	add := func(label string, pre, post conf.Config) error {
		t, err := petri.NewTransition(fmt.Sprintf("%s#%d", label, next), pre, post)
		if err != nil {
			return err
		}
		next++
		trans = append(trans, t)
		return nil
	}
	move := func(label, from, to string) error { return add(label, u(from), u(to)) }

	// Leader start: create R = 2 and enter the first phase; for k = 0
	// the register is already the final one (m) and the leader becomes
	// an accepting follower.
	if k == 0 {
		if err := add("init", u("Linit"), u("fi1").Add(u("m")).Add(u("m"))); err != nil {
			return nil, err
		}
	} else {
		if err := add("init", u("Linit"), u(phase(0, 0)).Add(u("r")).Add(u("r"))); err != nil {
			return nil, err
		}
	}
	// Strays at Linit are errors (possible after an E → Linit restart
	// raced with cleanup).
	for _, s := range []string{"r", "a", "b", "bp", "c", "m"} {
		if err := add("initerr_"+s, u("Linit").Add(u(s)), u("E").Add(u(s))); err != nil {
			return nil, err
		}
	}

	for j := int64(0); j < k; j++ {
		last := j == k-1
		// P0: split r into a + b.
		if err := add(fmt.Sprintf("split%d", j), u(phase(j, 0)).Add(u("r")),
			u(phase(j, 0)).Add(u("a")).Add(u("b"))); err != nil {
			return nil, err
		}
		if err := move(fmt.Sprintf("x01_%d", j), phase(j, 0), phase(j, 1)); err != nil {
			return nil, err
		}
		// P1: pick one a, enter inner loop.
		if err := add(fmt.Sprintf("pick%d", j), u(phase(j, 1)).Add(u("a")), u(phase(j, 2))); err != nil {
			return nil, err
		}
		if err := move(fmt.Sprintf("x14_%d", j), phase(j, 1), phase(j, 4)); err != nil {
			return nil, err
		}
		// P2: mark each b, emitting a product token.
		if err := add(fmt.Sprintf("mark%d", j), u(phase(j, 2)).Add(u("b")),
			u(phase(j, 2)).Add(u("bp")).Add(u("c"))); err != nil {
			return nil, err
		}
		if err := move(fmt.Sprintf("x23_%d", j), phase(j, 2), phase(j, 3)); err != nil {
			return nil, err
		}
		// P3: unmark.
		if err := add(fmt.Sprintf("unmark%d", j), u(phase(j, 3)).Add(u("bp")),
			u(phase(j, 3)).Add(u("b"))); err != nil {
			return nil, err
		}
		if err := move(fmt.Sprintf("x31_%d", j), phase(j, 3), phase(j, 1)); err != nil {
			return nil, err
		}
		// P4: drop the b copies.
		if err := add(fmt.Sprintf("drop%d", j), u(phase(j, 4)).Add(u("b")), u(phase(j, 4))); err != nil {
			return nil, err
		}
		if err := move(fmt.Sprintf("x45_%d", j), phase(j, 4), phase(j, 5)); err != nil {
			return nil, err
		}
		// P5: rename product tokens into the next register (or the
		// comparison register at the last level).
		target := "r"
		if last {
			target = "m"
		}
		if err := add(fmt.Sprintf("rename%d", j), u(phase(j, 5)).Add(u("c")),
			u(phase(j, 5)).Add(u(target))); err != nil {
			return nil, err
		}
		if last {
			if err := move(fmt.Sprintf("x5f_%d", j), phase(j, 5), "fi1"); err != nil {
				return nil, err
			}
		} else {
			if err := move(fmt.Sprintf("x50_%d", j), phase(j, 5), phase(j+1, 0)); err != nil {
				return nil, err
			}
		}
		// Error rules: forbidden tokens per phase.
		forbidden := map[int][]string{
			0: {"a", "b", "bp", "c"},
			1: {"bp"},
			4: {"a", "bp"},
			5: {"a", "b", "bp"},
		}
		for p, toks := range forbidden {
			for _, s := range toks {
				if err := add(fmt.Sprintf("err%d_%d_%s", j, p, s),
					u(phase(j, p)).Add(u(s)), u("E").Add(u(s))); err != nil {
					return nil, err
				}
			}
		}
	}

	// Error state: delete computation tokens, restore converted inputs,
	// then retry from Linit.
	for _, s := range []string{"r", "a", "b", "bp", "c", "m", "fm0", "fm1"} {
		if err := add("eclean_"+s, u("E").Add(u(s)), u("E")); err != nil {
			return nil, err
		}
	}
	for _, s := range []string{"fi0", "fi1"} {
		if err := add("erestore_"+s, u("E").Add(u(s)), u("E").Add(u("i"))); err != nil {
			return nil, err
		}
	}
	if err := move("eexit", "E", "Linit"); err != nil {
		return nil, err
	}

	// Comparison: majority of i against m with ties accepting.
	if err := add("cancel", u("i").Add(u("m")), u("fi1").Add(u("fm1"))); err != nil {
		return nil, err
	}
	for _, f := range []string{"fi", "fm"} {
		if err := add("iwin_"+f, u("i").Add(u(f+"0")), u("i").Add(u(f+"1"))); err != nil {
			return nil, err
		}
		if err := add("mwin_"+f, u("m").Add(u(f+"1")), u("m").Add(u(f+"0"))); err != nil {
			return nil, err
		}
	}
	for _, f1 := range []string{"fi1", "fm1"} {
		for _, f0 := range []string{"fi0", "fm0"} {
			up := "fi1"
			if f0 == "fm0" {
				up = "fm1"
			}
			if err := add("tie_"+f1+"_"+f0, u(f1).Add(u(f0)), u(f1).Add(u(up))); err != nil {
				return nil, err
			}
		}
	}
	// Followers eat stray computation tokens left behind by a leader
	// that rushed to the comparison.
	for _, f := range []string{"fi0", "fi1", "fm0", "fm1"} {
		for _, s := range []string{"a", "b", "bp", "c", "r"} {
			if err := add("eat_"+f+"_"+s, u(f).Add(u(s)), u(f)); err != nil {
				return nil, err
			}
		}
	}

	net, err := petri.New(space, trans)
	if err != nil {
		return nil, err
	}
	gamma := map[string]core.Output{
		"i": core.Out1, "fi1": core.Out1, "fm1": core.Out1,
		"m": core.Out0, "fi0": core.Out0, "fm0": core.Out0,
	}
	for _, s := range names {
		if _, ok := gamma[s]; !ok {
			gamma[s] = core.OutStar
		}
	}
	leaders := u("Linit")
	return core.NewProtocol(fmt.Sprintf("tower(k=%d)", k), net, leaders, []string{"i"}, gamma)
}

// TowerThreshold returns n(k) = 2^(2^k), the intended threshold of
// Tower(k).
func TowerThreshold(k int64) (int64, error) {
	return machine.TowerValueInt64(int(k))
}
