// Package counting builds the counting-predicate protocols the paper's
// state-complexity results are about: for each construction, a protocol
// stably computing φ_{i≥n}(ρ) = [ρ(i) ≥ n] with a different trade-off
// between states, interaction-width and leaders.
//
//	Construction     states            width  leaders  source
//	Example41        2                 n      0        paper, Ex. 4.1
//	Example42        6                 2      n        paper, Ex. 4.2
//	FlockOfBirds     n+1               2      0        folklore/[6]
//	PowerOfTwo       log₂(n)+2         2      0        [6]-style, n = 2^k
//	LeaderDoubling   log₂(n)+6         2      1        Ex. 4.2 + doubling
//	Tower            Θ(k)              2      1        [6]-style, n = 2^(2^k)
//
// All constructions except Tower are exhaustively verified in the test
// suite to stably compute their predicate on every tested input; Tower
// (package tower) reproduces the Θ(log log n) state scaling of
// Blondin–Esparza–Jaax and its stable-computation status is assessed
// empirically (see DESIGN.md, substitution 1).
package counting

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/petri"
)

// InputState is the canonical initial state name used by every
// construction.
const InputState = "i"

// Example41 builds the 2-state, width-n, leaderless protocol of
// Example 4.1: the additive preorder "convert i to p when at least n
// agents are present", materialized as the Petri net
// {(ρ+i, ρ+p) : |ρ| = n−1}.
func Example41(n int64) (*core.Protocol, error) {
	if n < 1 {
		return nil, fmt.Errorf("counting: n = %d, want ≥ 1", n)
	}
	space, err := conf.NewSpace("i", "p")
	if err != nil {
		return nil, err
	}
	var trans []petri.Transition
	// ρ ranges over configurations with n−1 agents: ρ = k·i + (n−1−k)·p.
	for k := int64(0); k <= n-1; k++ {
		pre, err := conf.FromMap(space, map[string]int64{"i": k + 1, "p": n - 1 - k})
		if err != nil {
			return nil, err
		}
		post, err := conf.FromMap(space, map[string]int64{"i": k, "p": n - k})
		if err != nil {
			return nil, err
		}
		t, err := petri.NewTransition(fmt.Sprintf("t%d", k), pre, post)
		if err != nil {
			return nil, err
		}
		trans = append(trans, t)
	}
	net, err := petri.New(space, trans)
	if err != nil {
		return nil, err
	}
	return core.NewProtocol(fmt.Sprintf("example41(n=%d)", n), net, conf.New(space), []string{"i"},
		map[string]core.Output{"i": core.Out0, "p": core.Out1})
}

// Example42 builds the 6-state, width-2 protocol of Example 4.2 with n
// leaders in state ī: states {i, ī, p, p̄, q, q̄} (ASCII: ib, pb, qb)
// and the seven transitions of the paper.
func Example42(n int64) (*core.Protocol, error) {
	if n < 1 {
		return nil, fmt.Errorf("counting: n = %d, want ≥ 1", n)
	}
	space, err := conf.NewSpace("i", "ib", "p", "pb", "q", "qb")
	if err != nil {
		return nil, err
	}
	pair := func(a, b string) conf.Config {
		return conf.MustUnit(space, a).Add(conf.MustUnit(space, b))
	}
	mk := func(name string, pre, post conf.Config) (petri.Transition, error) {
		return petri.NewTransition(name, pre, post)
	}
	specs := []struct {
		name      string
		pre, post conf.Config
	}{
		{"t", pair("i", "ib"), pair("p", "q")},
		{"tp", pair("pb", "i"), pair("p", "i")},
		{"tpb", pair("p", "ib"), pair("pb", "ib")},
		{"tq", pair("qb", "i"), pair("q", "i")},
		{"tqb", pair("q", "ib"), pair("qb", "ib")},
		{"tqbar", pair("p", "qb"), pair("p", "q")},
		{"tpbar", pair("q", "pb"), pair("q", "p")},
	}
	trans := make([]petri.Transition, 0, len(specs))
	for _, s := range specs {
		t, err := mk(s.name, s.pre, s.post)
		if err != nil {
			return nil, err
		}
		trans = append(trans, t)
	}
	net, err := petri.New(space, trans)
	if err != nil {
		return nil, err
	}
	leaders := conf.MustUnit(space, "ib").Scale(n)
	return core.NewProtocol(fmt.Sprintf("example42(n=%d)", n), net, leaders, []string{"i"},
		map[string]core.Output{
			"i": core.Out1, "p": core.Out1, "q": core.Out1,
			"ib": core.Out0, "pb": core.Out0, "qb": core.Out0,
		})
}

// FlockOfBirds builds the classical leaderless width-2 counting
// protocol with n+1 states: agents carry values that merge, saturating
// into a broadcast ⊤ once a pair sums to at least n.
//
// States: v1..v(n−1) (value k), z (value 0), T (saturated). For n = 1
// the protocol degenerates to a single always-accepting input state.
func FlockOfBirds(n int64) (*core.Protocol, error) {
	if n < 1 {
		return nil, fmt.Errorf("counting: n = %d, want ≥ 1", n)
	}
	if n == 1 {
		space, err := conf.NewSpace("i")
		if err != nil {
			return nil, err
		}
		net, err := petri.New(space, nil)
		if err != nil {
			return nil, err
		}
		return core.NewProtocol("flock(n=1)", net, conf.New(space), []string{"i"},
			map[string]core.Output{"i": core.Out1})
	}
	names := []string{"i"} // i is v1
	for k := int64(2); k <= n-1; k++ {
		names = append(names, fmt.Sprintf("v%d", k))
	}
	names = append(names, "z", "T")
	space, err := conf.NewSpace(names...)
	if err != nil {
		return nil, err
	}
	valueState := func(k int64) string {
		if k == 1 {
			return "i"
		}
		return fmt.Sprintf("v%d", k)
	}
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }
	var trans []petri.Transition
	add := func(name string, pre, post conf.Config) error {
		t, err := petri.NewTransition(name, pre, post)
		if err != nil {
			return err
		}
		trans = append(trans, t)
		return nil
	}
	// Merges: unordered value pairs (a ≤ b).
	for a := int64(1); a <= n-1; a++ {
		for b := a; b <= n-1; b++ {
			pre := u(valueState(a)).Add(u(valueState(b)))
			var post conf.Config
			if a+b >= n {
				post = u("T").Add(u("T"))
			} else {
				post = u(valueState(a + b)).Add(u("z"))
			}
			if err := add(fmt.Sprintf("m%d_%d", a, b), pre, post); err != nil {
				return nil, err
			}
		}
	}
	// Broadcast: T converts everything.
	for _, s := range names {
		if s == "T" {
			continue
		}
		if err := add("bT_"+s, u("T").Add(u(s)), u("T").Add(u("T"))); err != nil {
			return nil, err
		}
	}
	net, err := petri.New(space, trans)
	if err != nil {
		return nil, err
	}
	gamma := make(map[string]core.Output, len(names))
	for _, s := range names {
		gamma[s] = core.Out0
	}
	gamma["T"] = core.Out1
	return core.NewProtocol(fmt.Sprintf("flock(n=%d)", n), net, conf.New(space), []string{"i"}, gamma)
}

// PowerOfTwo builds the leaderless doubling protocol for n = 2^k with
// k+2 states: agents at level j hold value 2^j; equal levels merge
// upward; two agents at level k−1 saturate (their values sum to 2^k).
//
// This is the O(log n) upper-bound family for the infinitely many
// n = 2^k, in the style of [6].
func PowerOfTwo(k int64) (*core.Protocol, error) {
	if k < 1 {
		return nil, fmt.Errorf("counting: k = %d, want ≥ 1", k)
	}
	names := []string{"i"} // i is level 0
	for j := int64(1); j < k; j++ {
		names = append(names, fmt.Sprintf("l%d", j))
	}
	names = append(names, "z", "T")
	space, err := conf.NewSpace(names...)
	if err != nil {
		return nil, err
	}
	level := func(j int64) string {
		if j == 0 {
			return "i"
		}
		return fmt.Sprintf("l%d", j)
	}
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }
	var trans []petri.Transition
	add := func(name string, pre, post conf.Config) error {
		t, err := petri.NewTransition(name, pre, post)
		if err != nil {
			return err
		}
		trans = append(trans, t)
		return nil
	}
	for j := int64(0); j < k-1; j++ {
		pre := u(level(j)).Add(u(level(j)))
		post := u(level(j + 1)).Add(u("z"))
		if err := add(fmt.Sprintf("d%d", j), pre, post); err != nil {
			return nil, err
		}
	}
	if err := add("top", u(level(k-1)).Add(u(level(k-1))), u("T").Add(u("T"))); err != nil {
		return nil, err
	}
	for _, s := range names {
		if s == "T" {
			continue
		}
		if err := add("bT_"+s, u("T").Add(u(s)), u("T").Add(u("T"))); err != nil {
			return nil, err
		}
	}
	net, err := petri.New(space, trans)
	if err != nil {
		return nil, err
	}
	gamma := make(map[string]core.Output, len(names))
	for _, s := range names {
		gamma[s] = core.Out0
	}
	gamma["T"] = core.Out1
	return core.NewProtocol(fmt.Sprintf("power2(k=%d)", k), net, conf.New(space), []string{"i"}, gamma)
}

// LeaderDoubling builds a single-leader protocol for n = 2^k with
// k+6 states: the leader unfolds into 2^k agents in state ī by k rounds
// of doubling (using the model's agent creations), then Example 4.2
// decides the threshold against them.
func LeaderDoubling(k int64) (*core.Protocol, error) {
	if k < 0 {
		return nil, fmt.Errorf("counting: k = %d, want ≥ 0", k)
	}
	names := []string{"i", "ib", "p", "pb", "q", "qb"}
	for j := int64(0); j < k; j++ {
		names = append(names, fmt.Sprintf("t%d", j))
	}
	space, err := conf.NewSpace(names...)
	if err != nil {
		return nil, err
	}
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }
	pair := func(a, b string) conf.Config { return u(a).Add(u(b)) }
	tok := func(j int64) string {
		if j == k {
			return "ib"
		}
		return fmt.Sprintf("t%d", j)
	}
	var trans []petri.Transition
	add := func(name string, pre, post conf.Config) error {
		t, err := petri.NewTransition(name, pre, post)
		if err != nil {
			return err
		}
		trans = append(trans, t)
		return nil
	}
	// Doubling phase: t_j -> t_{j+1} + t_{j+1} (t_k = ī).
	for j := int64(0); j < k; j++ {
		if err := add(fmt.Sprintf("dbl%d", j), u(tok(j)), pair(tok(j+1), tok(j+1))); err != nil {
			return nil, err
		}
	}
	// Example 4.2 transitions.
	specs := []struct {
		name      string
		pre, post conf.Config
	}{
		{"t", pair("i", "ib"), pair("p", "q")},
		{"tp", pair("pb", "i"), pair("p", "i")},
		{"tpb", pair("p", "ib"), pair("pb", "ib")},
		{"tq", pair("qb", "i"), pair("q", "i")},
		{"tqb", pair("q", "ib"), pair("qb", "ib")},
		{"tqbar", pair("p", "qb"), pair("p", "q")},
		{"tpbar", pair("q", "pb"), pair("q", "p")},
	}
	for _, sp := range specs {
		if err := add(sp.name, sp.pre, sp.post); err != nil {
			return nil, err
		}
	}
	net, err := petri.New(space, trans)
	if err != nil {
		return nil, err
	}
	gamma := map[string]core.Output{
		"i": core.Out1, "p": core.Out1, "q": core.Out1,
		"ib": core.Out0, "pb": core.Out0, "qb": core.Out0,
	}
	for j := int64(0); j < k; j++ {
		gamma[fmt.Sprintf("t%d", j)] = core.Out0
	}
	leaders := u(tok(0))
	return core.NewProtocol(fmt.Sprintf("leaderdoubling(k=%d)", k), net, leaders, []string{"i"}, gamma)
}
