package hilbert

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
)

func mustSystem(t *testing.T, rows [][]int64) *System {
	t.Helper()
	s, err := NewSystem(rows)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := NewSystem([][]int64{{}}); err == nil {
		t.Error("zero-column system accepted")
	}
	if _, err := NewSystem([][]int64{{1, 2}, {1}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestEvalAndIsSolution(t *testing.T) {
	s := mustSystem(t, [][]int64{{1, -1}})
	v, err := s.Eval([]int64{3, 3})
	if err != nil || v[0] != 0 {
		t.Fatalf("Eval = %v, %v", v, err)
	}
	if !s.IsSolution([]int64{2, 2}) {
		t.Error("x=y not a solution")
	}
	if s.IsSolution([]int64{2, 1}) {
		t.Error("x≠y accepted")
	}
	if _, err := s.Eval([]int64{1}); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestMinimalSolutionsSimpleEquality(t *testing.T) {
	// x = y: Hilbert basis is {(1,1)}.
	s := mustSystem(t, [][]int64{{1, -1}})
	basis, err := s.MinimalSolutions(Options{})
	if err != nil {
		t.Fatalf("MinimalSolutions: %v", err)
	}
	if len(basis) != 1 || basis[0][0] != 1 || basis[0][1] != 1 {
		t.Fatalf("basis = %v, want [(1,1)]", basis)
	}
}

func TestMinimalSolutionsWeighted(t *testing.T) {
	// 2x = 3y: minimal solution (3,2).
	s := mustSystem(t, [][]int64{{2, -3}})
	basis, err := s.MinimalSolutions(Options{})
	if err != nil {
		t.Fatalf("MinimalSolutions: %v", err)
	}
	if len(basis) != 1 || basis[0][0] != 3 || basis[0][1] != 2 {
		t.Fatalf("basis = %v, want [(3,2)]", basis)
	}
}

func TestMinimalSolutionsThreeVars(t *testing.T) {
	// x + y = 2z: minimal solutions (2,0,1), (0,2,1), (1,1,1).
	s := mustSystem(t, [][]int64{{1, 1, -2}})
	basis, err := s.MinimalSolutions(Options{})
	if err != nil {
		t.Fatalf("MinimalSolutions: %v", err)
	}
	if len(basis) != 3 {
		t.Fatalf("basis = %v, want 3 elements", basis)
	}
	want := map[[3]int64]bool{{2, 0, 1}: true, {0, 2, 1}: true, {1, 1, 1}: true}
	for _, b := range basis {
		if !want[[3]int64{b[0], b[1], b[2]}] {
			t.Errorf("unexpected basis element %v", b)
		}
	}
}

func TestMinimalSolutionsNoSolution(t *testing.T) {
	// x + y = 0 over ℕ forces x=y=0: empty basis.
	s := mustSystem(t, [][]int64{{1, 1}})
	basis, err := s.MinimalSolutions(Options{})
	if err != nil {
		t.Fatalf("MinimalSolutions: %v", err)
	}
	if len(basis) != 0 {
		t.Fatalf("basis = %v, want empty", basis)
	}
}

func TestMinimalSolutionsTwoEquations(t *testing.T) {
	// x = y and y = z: basis {(1,1,1)}.
	s := mustSystem(t, [][]int64{{1, -1, 0}, {0, 1, -1}})
	basis, err := s.MinimalSolutions(Options{})
	if err != nil {
		t.Fatalf("MinimalSolutions: %v", err)
	}
	if len(basis) != 1 || basis[0][0] != 1 || basis[0][1] != 1 || basis[0][2] != 1 {
		t.Fatalf("basis = %v, want [(1,1,1)]", basis)
	}
}

// Every basis element solves the system; no basis element dominates
// another; all obey the Pottier bound — on random systems.
func TestMinimalSolutionsRandomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(2)
		cols := 2 + rng.Intn(3)
		a := make([][]int64, rows)
		for i := range a {
			a[i] = make([]int64, cols)
			for j := range a[i] {
				a[i][j] = int64(rng.Intn(7)) - 3
			}
		}
		s := mustSystem(t, a)
		basis, err := s.MinimalSolutions(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, b := range basis {
			if !s.IsSolution(b) {
				t.Fatalf("trial %d: basis element %v not a solution of %v", trial, b, a)
			}
			if isZero(b) {
				t.Fatalf("trial %d: zero vector in basis", trial)
			}
		}
		for i := range basis {
			for j := range basis {
				if i != j && leq(basis[i], basis[j]) {
					t.Fatalf("trial %d: %v ≤ %v in basis", trial, basis[i], basis[j])
				}
			}
		}
		// Pottier bound (as used in the paper, with d = #rows):
		// ‖x‖₁ ≤ (2 + Σ_j ‖col_j‖∞)^d.
		bound := bounds.Pottier(rows, s.SumColumnNormInf())
		if got := MaxNorm1(basis); !bound.GeqInt(got) {
			t.Fatalf("trial %d: max ‖·‖₁ = %d exceeds Pottier bound %v", trial, got, bound)
		}
	}
}

// Completeness cross-check: brute-force minimal solutions within a box
// and compare with the computed basis.
func TestMinimalSolutionsBruteForce(t *testing.T) {
	systems := [][][]int64{
		{{1, -1}},
		{{2, -3}},
		{{1, 1, -2}},
		{{1, -1, 0}, {0, 1, -1}},
		{{2, -1, -1}},
		{{1, 2, -2, -1}},
	}
	const box = 6
	for si, rows := range systems {
		s := mustSystem(t, rows)
		basis, err := s.MinimalSolutions(Options{})
		if err != nil {
			t.Fatalf("system %d: %v", si, err)
		}
		// Enumerate all solutions in [0,box]^cols and find minimal ones.
		var all [][]int64
		var rec func(prefix []int64)
		rec = func(prefix []int64) {
			if len(prefix) == s.Cols() {
				x := append([]int64(nil), prefix...)
				if !isZero(x) && s.IsSolution(x) {
					all = append(all, x)
				}
				return
			}
			for v := int64(0); v <= box; v++ {
				rec(append(prefix, v))
			}
		}
		rec(nil)
		var minimal [][]int64
		for i, x := range all {
			dominated := false
			for j, y := range all {
				if i != j && leq(y, x) && !eq(y, x) {
					dominated = true
					break
				}
			}
			if !dominated {
				minimal = append(minimal, x)
			}
		}
		// Every brute-force minimal solution within the box must be in
		// the computed basis (provided it fits: check norm).
		inBasis := func(x []int64) bool {
			for _, b := range basis {
				if eq(b, x) {
					return true
				}
			}
			return false
		}
		for _, m := range minimal {
			if !inBasis(m) {
				t.Errorf("system %d: minimal solution %v missing from basis %v", si, m, basis)
			}
		}
	}
}

func TestDecompose(t *testing.T) {
	s := mustSystem(t, [][]int64{{1, 1, -2}})
	basis, err := s.MinimalSolutions(Options{})
	if err != nil {
		t.Fatalf("MinimalSolutions: %v", err)
	}
	// (3,1,2) = (2,0,1) + (1,1,1).
	x := []int64{3, 1, 2}
	coeff, err := s.Decompose(x, basis)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	recomposed := make([]int64, len(x))
	for bi, c := range coeff {
		for j := range recomposed {
			recomposed[j] += c * basis[bi][j]
		}
	}
	if !eq(recomposed, x) {
		t.Errorf("recomposition = %v, want %v", recomposed, x)
	}

	if _, err := s.Decompose([]int64{1, 0, 0}, basis); err == nil {
		t.Error("non-solution decomposed")
	}
}

func TestDecomposeRandom(t *testing.T) {
	s := mustSystem(t, [][]int64{{2, -1, -1}})
	basis, err := s.MinimalSolutions(Options{})
	if err != nil {
		t.Fatalf("MinimalSolutions: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		// Random ℕ-combination of basis elements is a solution; it must
		// decompose back to something summing to it.
		x := make([]int64, s.Cols())
		for _, b := range basis {
			c := int64(rng.Intn(4))
			for j := range x {
				x[j] += c * b[j]
			}
		}
		coeff, err := s.Decompose(x, basis)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		re := make([]int64, len(x))
		for bi, c := range coeff {
			for j := range re {
				re[j] += c * basis[bi][j]
			}
		}
		if !eq(re, x) {
			t.Fatalf("trial %d: decomposition does not re-sum: %v vs %v", trial, re, x)
		}
	}
}

func TestBudget(t *testing.T) {
	s := mustSystem(t, [][]int64{{5, -7, 3, -2}})
	if _, err := s.MinimalSolutions(Options{MaxFrontier: 2}); err == nil {
		t.Error("tiny frontier budget not reported")
	}
}

func TestMaxNorm1(t *testing.T) {
	if got := MaxNorm1([][]int64{{1, 2}, {3, 1}}); got != 4 {
		t.Errorf("MaxNorm1 = %d, want 4", got)
	}
	if got := MaxNorm1(nil); got != 0 {
		t.Errorf("MaxNorm1(nil) = %d, want 0", got)
	}
}
