// Package hilbert computes minimal non-negative integer solutions
// (Hilbert bases) of homogeneous linear Diophantine systems A·x = 0,
// using the Contejean–Devie completion procedure, together with the
// decomposition of arbitrary solutions into sums of minimal ones.
//
// This is the machinery behind Lemma 7.3 of Leroux (PODC 2022), which
// invokes Pottier's theorem [12]: every minimal solution of the system
// (1) built from simple-cycle displacements has 1-norm at most
// (2 + Σ_a ‖a‖∞)^d, and every solution decomposes as an ℕ-combination
// of minimal ones.
package hilbert

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// System is an m×k homogeneous linear Diophantine system A·x = 0 over
// the unknowns x ∈ ℕ^k.
type System struct {
	rows, cols int
	a          [][]int64 // row-major
}

// NewSystem builds a system from row-major coefficients. All rows must
// have equal length ≥ 1.
func NewSystem(rows [][]int64) (*System, error) {
	if len(rows) == 0 {
		return nil, errors.New("hilbert: no equations")
	}
	cols := len(rows[0])
	if cols == 0 {
		return nil, errors.New("hilbert: no unknowns")
	}
	a := make([][]int64, len(rows))
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("hilbert: row %d has %d columns, want %d", i, len(r), cols)
		}
		a[i] = make([]int64, cols)
		copy(a[i], r)
	}
	return &System{rows: len(rows), cols: cols, a: a}, nil
}

// Rows returns the number of equations.
func (s *System) Rows() int { return s.rows }

// Cols returns the number of unknowns.
func (s *System) Cols() int { return s.cols }

// Eval returns A·x.
func (s *System) Eval(x []int64) ([]int64, error) {
	if len(x) != s.cols {
		return nil, fmt.Errorf("hilbert: vector length %d, want %d", len(x), s.cols)
	}
	out := make([]int64, s.rows)
	for i, row := range s.a {
		var acc int64
		for j, c := range row {
			acc += c * x[j]
		}
		out[i] = acc
	}
	return out, nil
}

// IsSolution reports whether A·x = 0.
func (s *System) IsSolution(x []int64) bool {
	v, err := s.Eval(x)
	if err != nil {
		return false
	}
	for _, n := range v {
		if n != 0 {
			return false
		}
	}
	return true
}

// SumColumnNormInf returns Σ_j ‖A_{·j}‖∞, the quantity the Pottier bound
// (2 + Σ)^rows is stated with in the paper's Lemma 7.3 usage.
func (s *System) SumColumnNormInf() int64 {
	var sum int64
	for j := 0; j < s.cols; j++ {
		var m int64
		for i := 0; i < s.rows; i++ {
			v := s.a[i][j]
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		sum += m
	}
	return sum
}

// Options bounds the completion procedure defensively. The algorithm
// terminates on its own (Contejean–Devie), but adversarial systems can
// have huge bases.
type Options struct {
	// MaxFrontier caps the number of in-flight candidate vectors.
	// Zero means 1<<20.
	MaxFrontier int
	// MaxBasis caps the basis size. Zero means 1<<16.
	MaxBasis int
}

// ErrBudget is reported when the completion exceeds its caps.
var ErrBudget = errors.New("hilbert: completion budget exhausted")

func (o Options) maxFrontier() int {
	if o.MaxFrontier <= 0 {
		return 1 << 20
	}
	return o.MaxFrontier
}

func (o Options) maxBasis() int {
	if o.MaxBasis <= 0 {
		return 1 << 16
	}
	return o.MaxBasis
}

// MinimalSolutions returns the Hilbert basis of A·x = 0: all minimal
// (componentwise) non-zero solutions. The result is deterministic for a
// given system.
//
// Algorithm (Contejean–Devie 1994): breadth-first completion from the
// unit vectors, growing a candidate t by e_j only when the defect A·t
// and the column A·e_j point in opposite half-spaces
// (⟨A·t, A·e_j⟩ < 0), pruning candidates dominated by found solutions.
func (s *System) MinimalSolutions(opts Options) ([][]int64, error) {
	type cand struct {
		x []int64
		v []int64 // A·x, maintained incrementally
	}
	var basis [][]int64

	dominatedByBasis := func(x []int64) bool {
		for _, b := range basis {
			if leq(b, x) {
				return true
			}
		}
		return false
	}

	// Column vectors A·e_j.
	colVec := make([][]int64, s.cols)
	for j := 0; j < s.cols; j++ {
		v := make([]int64, s.rows)
		for i := 0; i < s.rows; i++ {
			v[i] = s.a[i][j]
		}
		colVec[j] = v
	}

	frontier := make([]cand, 0, s.cols)
	seen := make(map[string]bool)
	for j := 0; j < s.cols; j++ {
		x := make([]int64, s.cols)
		x[j] = 1
		c := cand{x: x, v: append([]int64(nil), colVec[j]...)}
		frontier = append(frontier, c)
		seen[key(x)] = true
	}

	for len(frontier) > 0 {
		var next []cand
		for _, c := range frontier {
			if isZero(c.v) {
				if !dominatedByBasis(c.x) {
					basis = append(basis, c.x)
					if len(basis) > opts.maxBasis() {
						return nil, fmt.Errorf("minimal solutions: %w", ErrBudget)
					}
				}
				continue
			}
			if dominatedByBasis(c.x) {
				continue
			}
			for j := 0; j < s.cols; j++ {
				if dot(c.v, colVec[j]) >= 0 {
					continue
				}
				nx := append([]int64(nil), c.x...)
				nx[j]++
				k := key(nx)
				if seen[k] {
					continue
				}
				seen[k] = true
				if dominatedByBasis(nx) {
					continue
				}
				nv := append([]int64(nil), c.v...)
				for i := 0; i < s.rows; i++ {
					nv[i] += colVec[j][i]
				}
				next = append(next, cand{x: nx, v: nv})
			}
			if len(next) > opts.maxFrontier() {
				return nil, fmt.Errorf("minimal solutions: %w", ErrBudget)
			}
		}
		frontier = next
	}

	// The breadth-first discipline can admit a solution that a later,
	// smaller solution dominates; filter to the true minimal set.
	return minimalOnly(basis), nil
}

// minimalOnly removes vectors dominated by another basis element.
func minimalOnly(basis [][]int64) [][]int64 {
	out := make([][]int64, 0, len(basis))
	for i, x := range basis {
		minimal := true
		for j, y := range basis {
			if i == j {
				continue
			}
			if leq(y, x) && !eq(y, x) {
				minimal = false
				break
			}
			// Exact duplicates: keep the first.
			if eq(y, x) && j < i {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, x)
		}
	}
	return out
}

// Decompose writes x as an ℕ-combination of basis vectors, returning
// the multiplicity of each basis element. It requires x to be a
// solution and the basis to be complete (every non-zero solution
// dominates a basis element), which MinimalSolutions guarantees.
func (s *System) Decompose(x []int64, basis [][]int64) ([]int64, error) {
	if !s.IsSolution(x) {
		return nil, errors.New("hilbert: decompose: not a solution")
	}
	coeff := make([]int64, len(basis))
	rest := append([]int64(nil), x...)
	for !isZero(rest) {
		progress := false
		for bi, b := range basis {
			if leq(b, rest) {
				for j := range rest {
					rest[j] -= b[j]
				}
				coeff[bi]++
				progress = true
				break
			}
		}
		if !progress {
			return nil, fmt.Errorf("hilbert: decompose: residual %v dominates no basis element", rest)
		}
	}
	return coeff, nil
}

// MaxNorm1 returns max ‖b‖₁ over the basis: the measured quantity the
// Pottier bound caps.
func MaxNorm1(basis [][]int64) int64 {
	var m int64
	for _, b := range basis {
		var n int64
		for _, v := range b {
			n += v
		}
		if n > m {
			m = n
		}
	}
	return m
}

func leq(a, b []int64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

func eq(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func isZero(v []int64) bool {
	for _, n := range v {
		if n != 0 {
			return false
		}
	}
	return true
}

func dot(a, b []int64) int64 {
	var acc int64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc
}

func key(x []int64) string {
	buf := make([]byte, 0, len(x)*2)
	var tmp [binary.MaxVarintLen64]byte
	for _, n := range x {
		k := binary.PutUvarint(tmp[:], uint64(n))
		buf = append(buf, tmp[:k]...)
	}
	return string(buf)
}
