// Package registry names the built-in protocol constructions so CLI
// tools and examples can instantiate them uniformly.
package registry

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/spec"
)

// Entry describes a named construction.
type Entry struct {
	// Name is the registry key.
	Name string
	// Param documents the meaning of the parameter.
	Param string
	// Make builds the protocol for a parameter value and returns it
	// together with the counting threshold n it decides (0 when the
	// protocol does not decide a counting predicate).
	Make func(param int64) (*core.Protocol, int64, error)
}

var entries = map[string]Entry{
	"example41": {
		Name: "example41", Param: "n (threshold)",
		Make: func(n int64) (*core.Protocol, int64, error) {
			p, err := counting.Example41(n)
			return p, n, err
		},
	},
	"example42": {
		Name: "example42", Param: "n (threshold = leader count)",
		Make: func(n int64) (*core.Protocol, int64, error) {
			p, err := counting.Example42(n)
			return p, n, err
		},
	},
	"flock": {
		Name: "flock", Param: "n (threshold)",
		Make: func(n int64) (*core.Protocol, int64, error) {
			p, err := counting.FlockOfBirds(n)
			return p, n, err
		},
	},
	"power2": {
		Name: "power2", Param: "k (threshold 2^k)",
		Make: func(k int64) (*core.Protocol, int64, error) {
			p, err := counting.PowerOfTwo(k)
			if err != nil {
				return nil, 0, err
			}
			return p, 1 << k, nil
		},
	},
	"leaderdoubling": {
		Name: "leaderdoubling", Param: "k (threshold 2^k)",
		Make: func(k int64) (*core.Protocol, int64, error) {
			p, err := counting.LeaderDoubling(k)
			if err != nil {
				return nil, 0, err
			}
			return p, 1 << k, nil
		},
	},
	"tower": {
		Name: "tower", Param: "k (threshold 2^(2^k); see DESIGN.md on soundness)",
		Make: func(k int64) (*core.Protocol, int64, error) {
			p, err := counting.Tower(k)
			if err != nil {
				return nil, 0, err
			}
			n, err := counting.TowerThreshold(k)
			if err != nil {
				return nil, 0, err
			}
			return p, n, nil
		},
	},
	"majority": {
		Name: "majority", Param: "(ignored) decides A > B",
		Make: func(int64) (*core.Protocol, int64, error) {
			p, err := spec.Majority("A", "B")
			return p, 0, err
		},
	},
}

// Names lists the registered constructions in sorted order.
func Names() []string {
	out := make([]string, 0, len(entries))
	for n := range entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the entry for a name.
func Lookup(name string) (Entry, error) {
	e, ok := entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("registry: unknown protocol %q (have %v)", name, Names())
	}
	return e, nil
}

// Make builds a named protocol.
func Make(name string, param int64) (*core.Protocol, int64, error) {
	e, err := Lookup(name)
	if err != nil {
		return nil, 0, err
	}
	return e.Make(param)
}
