package registry

import "testing"

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("registry has %d entries, want 7: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestMakeAll(t *testing.T) {
	params := map[string]int64{
		"example41":      3,
		"example42":      3,
		"flock":          3,
		"power2":         2,
		"leaderdoubling": 2,
		"tower":          1,
		"majority":       0,
	}
	thresholds := map[string]int64{
		"example41":      3,
		"example42":      3,
		"flock":          3,
		"power2":         4,
		"leaderdoubling": 4,
		"tower":          4,
		"majority":       0,
	}
	for _, name := range Names() {
		p, n, err := Make(name, params[name])
		if err != nil {
			t.Errorf("Make(%s): %v", name, err)
			continue
		}
		if p == nil || p.States() == 0 {
			t.Errorf("Make(%s): empty protocol", name)
		}
		if n != thresholds[name] {
			t.Errorf("Make(%s): threshold %d, want %d", name, n, thresholds[name])
		}
	}
}

func TestMakeUnknown(t *testing.T) {
	if _, _, err := Make("nonsense", 1); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Lookup("nonsense"); err == nil {
		t.Error("unknown lookup accepted")
	}
}

func TestLookupMetadata(t *testing.T) {
	e, err := Lookup("tower")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if e.Name != "tower" || e.Param == "" {
		t.Errorf("entry metadata: %+v", e)
	}
}

func TestMakeInvalidParam(t *testing.T) {
	if _, _, err := Make("example41", 0); err == nil {
		t.Error("example41 with n=0 accepted")
	}
	if _, _, err := Make("tower", 99); err == nil {
		t.Error("tower with k=99 accepted")
	}
}
