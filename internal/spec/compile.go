package spec

import (
	"errors"
	"fmt"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/petri"
)

// Compile translates a predicate into a conservative width-2 leaderless
// protocol whose initial states are exactly the predicate's variables.
func Compile(p Pred) (*core.Protocol, error) {
	return compileWith(p, p.Vars())
}

func compileWith(p Pred, vars []string) (*core.Protocol, error) {
	switch q := p.(type) {
	case Threshold:
		return compileThreshold(q, vars)
	case Remainder:
		return compileRemainder(q, vars)
	case And:
		return compileProduct(q.L, q.R, vars, andOutput, "and")
	case Or:
		return compileProduct(q.L, q.R, vars, orOutput, "or")
	case Not:
		inner, err := compileWith(q.P, vars)
		if err != nil {
			return nil, err
		}
		return negate(inner)
	default:
		return nil, fmt.Errorf("spec: cannot compile %T", p)
	}
}

// transitionBuilder accumulates deduplicated transitions.
type transitionBuilder struct {
	space *conf.Space
	seen  map[string]bool
	trans []petri.Transition
	next  int
}

func newTransitionBuilder(space *conf.Space) *transitionBuilder {
	return &transitionBuilder{space: space, seen: make(map[string]bool)}
}

func (b *transitionBuilder) add(pre, post conf.Config) error {
	key := pre.Key() + "|" + post.Key()
	if b.seen[key] {
		return nil
	}
	b.seen[key] = true
	t, err := petri.NewTransition(fmt.Sprintf("t%d", b.next), pre, post)
	if err != nil {
		return err
	}
	b.next++
	b.trans = append(b.trans, t)
	return nil
}

// compileThreshold builds the weighted flock-of-birds protocol for
// Σ w_v·x_v ≥ c.
//
// States: one input state per variable (value w_v), accumulator states
// v1..v(c−1), a passive zero state z, and the saturated broadcast ⊤.
// Two value-bearing agents merge; a pair summing to ≥ c saturates; ⊤
// converts everyone. γ is 1 exactly on ⊤ and on input states whose
// weight alone meets the threshold.
func compileThreshold(t Threshold, vars []string) (*core.Protocol, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	names := append([]string(nil), vars...)
	for k := int64(1); k <= t.C-1; k++ {
		names = append(names, fmt.Sprintf("v%d", k))
	}
	names = append(names, "z", "T")
	space, err := conf.NewSpace(names...)
	if err != nil {
		return nil, err
	}
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }

	// value of each value-bearing state; z and T are excluded.
	value := make(map[string]int64, len(names))
	for _, v := range vars {
		value[v] = t.Weights[v]
	}
	for k := int64(1); k <= t.C-1; k++ {
		value[fmt.Sprintf("v%d", k)] = k
	}
	accState := func(k int64) string {
		if k == 0 {
			return "z"
		}
		return fmt.Sprintf("v%d", k)
	}

	b := newTransitionBuilder(space)
	valueNames := make([]string, 0, len(value))
	for _, n := range names {
		if _, ok := value[n]; ok {
			valueNames = append(valueNames, n)
		}
	}
	for ai, a := range valueNames {
		for _, bn := range valueNames[ai:] {
			sum := value[a] + value[bn]
			pre := u(a).Add(u(bn))
			var post conf.Config
			if sum >= t.C {
				post = u("T").Add(u("T"))
			} else {
				post = u(accState(sum)).Add(u("z"))
			}
			if err := b.add(pre, post); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range names {
		if s == "T" {
			continue
		}
		if err := b.add(u("T").Add(u(s)), u("T").Add(u("T"))); err != nil {
			return nil, err
		}
	}
	net, err := petri.New(space, b.trans)
	if err != nil {
		return nil, err
	}
	gamma := make(map[string]core.Output, len(names))
	for _, s := range names {
		gamma[s] = core.Out0
	}
	gamma["T"] = core.Out1
	for _, v := range vars {
		if t.Weights[v] >= t.C {
			gamma[v] = core.Out1 // a lone such agent already satisfies φ
		}
	}
	return core.NewProtocol("threshold["+t.String()+"]", net, conf.New(space), vars, gamma)
}

// compileRemainder builds the residue protocol for Σ w_v·x_v ≡ r (mod m).
//
// Value-bearing agents merge into a single surviving residue agent;
// everyone else becomes a follower carrying the opinion of the last
// value agent they met. With exactly one value agent left, its residue
// is Σ w_v·x_v mod m and followers converge to the correct opinion.
func compileRemainder(r Remainder, vars []string) (*core.Protocol, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	names := append([]string(nil), vars...)
	for k := int64(0); k < r.M; k++ {
		names = append(names, fmt.Sprintf("r%d", k))
	}
	names = append(names, "f0", "f1")
	space, err := conf.NewSpace(names...)
	if err != nil {
		return nil, err
	}
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }

	value := make(map[string]int64, len(names))
	for _, v := range vars {
		value[v] = mod(r.Weights[v], r.M)
	}
	for k := int64(0); k < r.M; k++ {
		value[fmt.Sprintf("r%d", k)] = k
	}
	follower := func(v int64) string {
		if v == r.R {
			return "f1"
		}
		return "f0"
	}

	b := newTransitionBuilder(space)
	valueNames := make([]string, 0, len(value))
	for _, n := range names {
		if _, ok := value[n]; ok {
			valueNames = append(valueNames, n)
		}
	}
	// Merge two value agents: one keeps the combined residue, the other
	// becomes a follower with the combined residue's opinion.
	for ai, a := range valueNames {
		for _, bn := range valueNames[ai:] {
			sum := mod(value[a]+value[bn], r.M)
			pre := u(a).Add(u(bn))
			post := u(fmt.Sprintf("r%d", sum)).Add(u(follower(sum)))
			if err := b.add(pre, post); err != nil {
				return nil, err
			}
		}
	}
	// Followers adopt the opinion of any value agent they meet.
	for _, vn := range valueNames {
		want := follower(value[vn])
		for _, f := range []string{"f0", "f1"} {
			if f == want {
				continue
			}
			if err := b.add(u(vn).Add(u(f)), u(vn).Add(u(want))); err != nil {
				return nil, err
			}
		}
	}
	net, err := petri.New(space, b.trans)
	if err != nil {
		return nil, err
	}
	gamma := make(map[string]core.Output, len(names))
	for vn, v := range value {
		if v == r.R {
			gamma[vn] = core.Out1
		} else {
			gamma[vn] = core.Out0
		}
	}
	gamma["f0"] = core.Out0
	gamma["f1"] = core.Out1
	return core.NewProtocol("remainder["+r.String()+"]", net, conf.New(space), vars, gamma)
}

// negate flips the output function of a compiled protocol.
func negate(p *core.Protocol) (*core.Protocol, error) {
	gamma := make(map[string]core.Output, p.States())
	for i := 0; i < p.States(); i++ {
		name := p.Space().Name(i)
		switch p.Gamma(i) {
		case core.Out0:
			gamma[name] = core.Out1
		case core.Out1:
			gamma[name] = core.Out0
		default:
			gamma[name] = core.OutStar
		}
	}
	return core.NewProtocol("not["+p.Name()+"]", p.Net(), p.Leaders(), p.InitialStates(), gamma)
}

func andOutput(a, b core.Output) core.Output {
	if a == core.Out0 || b == core.Out0 {
		return core.Out0
	}
	if a == core.Out1 && b == core.Out1 {
		return core.Out1
	}
	return core.OutStar
}

func orOutput(a, b core.Output) core.Output {
	if a == core.Out1 || b == core.Out1 {
		return core.Out1
	}
	if a == core.Out0 && b == core.Out0 {
		return core.Out0
	}
	return core.OutStar
}

// compileProduct builds the synchronized product of the two compiled
// children: states are pairs, and each interaction advances one
// component while the other is carried unchanged. Both children must be
// leaderless with every transition consuming and producing exactly two
// agents.
func compileProduct(l, r Pred, vars []string, outOp func(a, b core.Output) core.Output, opName string) (*core.Protocol, error) {
	pl, err := compileWith(l, vars)
	if err != nil {
		return nil, err
	}
	pr, err := compileWith(r, vars)
	if err != nil {
		return nil, err
	}
	for _, p := range []*core.Protocol{pl, pr} {
		if !p.Leaderless() {
			return nil, errors.New("spec: product requires leaderless components")
		}
		for _, t := range p.Net().Transitions() {
			if t.Pre.Agents() != 2 || t.Post.Agents() != 2 {
				return nil, fmt.Errorf("spec: product requires 2→2 transitions, %q is not", t.Name)
			}
		}
	}
	ls, rs := pl.Space(), pr.Space()
	pairName := func(a, b string) string { return a + "|" + b }
	var names []string
	for i := 0; i < ls.Len(); i++ {
		for j := 0; j < rs.Len(); j++ {
			names = append(names, pairName(ls.Name(i), rs.Name(j)))
		}
	}
	space, err := conf.NewSpace(names...)
	if err != nil {
		return nil, err
	}
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }
	b := newTransitionBuilder(space)

	// orderedPairs expands a 2-agent multiset into its ordered splits.
	orderedPairs := func(c conf.Config) [][2]string {
		var agents []string
		for _, idx := range c.Support() {
			for n := int64(0); n < c.Get(idx); n++ {
				agents = append(agents, c.Space().Name(idx))
			}
		}
		if len(agents) != 2 {
			return nil
		}
		if agents[0] == agents[1] {
			return [][2]string{{agents[0], agents[1]}}
		}
		return [][2]string{{agents[0], agents[1]}, {agents[1], agents[0]}}
	}

	// Left component moves, right carried.
	for _, t := range pl.Net().Transitions() {
		pres := orderedPairs(t.Pre)
		posts := orderedPairs(t.Post)
		for _, pp := range pres {
			post := posts[0] // fix one orientation; the other is covered by pre orderings
			for j1 := 0; j1 < rs.Len(); j1++ {
				for j2 := 0; j2 < rs.Len(); j2++ {
					pre := u(pairName(pp[0], rs.Name(j1))).Add(u(pairName(pp[1], rs.Name(j2))))
					pst := u(pairName(post[0], rs.Name(j1))).Add(u(pairName(post[1], rs.Name(j2))))
					if err := b.add(pre, pst); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	// Right component moves, left carried.
	for _, t := range pr.Net().Transitions() {
		pres := orderedPairs(t.Pre)
		posts := orderedPairs(t.Post)
		for _, pp := range pres {
			post := posts[0]
			for i1 := 0; i1 < ls.Len(); i1++ {
				for i2 := 0; i2 < ls.Len(); i2++ {
					pre := u(pairName(ls.Name(i1), pp[0])).Add(u(pairName(ls.Name(i2), pp[1])))
					pst := u(pairName(ls.Name(i1), post[0])).Add(u(pairName(ls.Name(i2), post[1])))
					if err := b.add(pre, pst); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	net, err := petri.New(space, b.trans)
	if err != nil {
		return nil, err
	}
	gamma := make(map[string]core.Output, len(names))
	for i := 0; i < ls.Len(); i++ {
		gl := pl.Gamma(i)
		for j := 0; j < rs.Len(); j++ {
			gamma[pairName(ls.Name(i), rs.Name(j))] = outOp(gl, pr.Gamma(j))
		}
	}
	initial := make([]string, 0, len(vars))
	for _, v := range vars {
		initial = append(initial, pairName(v, v))
	}
	name := fmt.Sprintf("%s[%s ; %s]", opName, pl.Name(), pr.Name())
	return core.NewProtocol(name, net, conf.New(space), initial, gamma)
}

// Majority builds the classical 4-state cancellation protocol for the
// strict majority predicate x_A > x_B (ties reject): states {A, B, a,
// b}, rules (A,B)→(b,b), (A,b)→(A,a), (B,a)→(B,b), (b,a)→(b,b).
//
// The last rule resolves ties: once every A has cancelled against a B,
// the b tokens produced by cancellations convert leftover a followers,
// so the all-b (reject) consensus is reachable and stable. Without it,
// configurations like a+3b would be terminal without consensus.
func Majority(varA, varB string) (*core.Protocol, error) {
	if varA == "" || varB == "" || varA == varB {
		return nil, errors.New("spec: majority needs two distinct variables")
	}
	space, err := conf.NewSpace(varA, varB, "a", "b")
	if err != nil {
		return nil, err
	}
	u := func(name string) conf.Config { return conf.MustUnit(space, name) }
	b := newTransitionBuilder(space)
	if err := b.add(u(varA).Add(u(varB)), u("b").Add(u("b"))); err != nil {
		return nil, err
	}
	if err := b.add(u(varA).Add(u("b")), u(varA).Add(u("a"))); err != nil {
		return nil, err
	}
	if err := b.add(u(varB).Add(u("a")), u(varB).Add(u("b"))); err != nil {
		return nil, err
	}
	if err := b.add(u("b").Add(u("a")), u("b").Add(u("b"))); err != nil {
		return nil, err
	}
	net, err := petri.New(space, b.trans)
	if err != nil {
		return nil, err
	}
	return core.NewProtocol(fmt.Sprintf("majority[%s>%s]", varA, varB), net, conf.New(space),
		[]string{varA, varB}, map[string]core.Output{
			varA: core.Out1, "a": core.Out1,
			varB: core.Out0, "b": core.Out0,
		})
}

// MajorityPred returns the predicate x_A > x_B for cross-checking the
// Majority protocol.
func MajorityPred(varA, varB string) Pred { return majority{a: varA, b: varB} }

type majority struct{ a, b string }

func (m majority) Eval(counts map[string]int64) bool { return counts[m.a] > counts[m.b] }
func (m majority) Vars() []string {
	vars := []string{m.a, m.b}
	if vars[0] > vars[1] {
		vars[0], vars[1] = vars[1], vars[0]
	}
	return vars
}
func (m majority) String() string { return m.a + " > " + m.b }
