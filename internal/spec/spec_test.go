package spec

import (
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/petri"
	"repro/internal/verify"
)

var budget = petri.Budget{MaxConfigs: 1 << 18}

func TestPredicateEval(t *testing.T) {
	th := Threshold{Weights: map[string]int64{"x": 2, "y": 1}, C: 4}
	if !th.Eval(map[string]int64{"x": 2}) {
		t.Error("2·2 ≥ 4 false")
	}
	if th.Eval(map[string]int64{"x": 1, "y": 1}) {
		t.Error("3 ≥ 4 true")
	}
	rm := Remainder{Weights: map[string]int64{"x": 1}, M: 3, R: 1}
	if !rm.Eval(map[string]int64{"x": 4}) {
		t.Error("4 ≡ 1 mod 3 false")
	}
	and := And{L: th, R: rm}
	// x=4: 2·4 = 8 ≥ 4 and 4 ≡ 1 (mod 3).
	if !and.Eval(map[string]int64{"x": 4}) {
		t.Error("And false")
	}
	or := Or{L: th, R: rm}
	if !or.Eval(map[string]int64{"x": 1}) {
		t.Error("Or false (1 ≡ 1 mod 3)")
	}
	not := Not{P: th}
	if not.Eval(map[string]int64{"x": 5}) {
		t.Error("Not true")
	}
	if got := and.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Vars = %v", got)
	}
	for _, s := range []string{th.String(), rm.String(), and.String(), or.String(), not.String()} {
		if s == "" {
			t.Error("empty String()")
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Pred{
		Threshold{Weights: map[string]int64{"x": 1}, C: 0},
		Threshold{Weights: map[string]int64{}, C: 1},
		Threshold{Weights: map[string]int64{"x": -1}, C: 1},
		Remainder{Weights: map[string]int64{"x": 1}, M: 0, R: 0},
		Remainder{Weights: map[string]int64{"x": 1}, M: 3, R: 3},
		Remainder{Weights: map[string]int64{}, M: 2, R: 0},
	}
	for i, p := range bad {
		if _, err := Compile(p); err == nil {
			t.Errorf("case %d: invalid predicate compiled", i)
		}
	}
}

// verifyPred exhaustively checks the compiled protocol against the
// predicate's own evaluator for all inputs up to maxTotal agents.
func verifyPred(t *testing.T, p Pred, minTotal, maxTotal int64) {
	t.Helper()
	proto, err := Compile(p)
	if err != nil {
		t.Fatalf("Compile(%v): %v", p, err)
	}
	pred := func(input conf.Config) bool {
		counts := map[string]int64{}
		// Input states are the variables (or var|var pairs for
		// products); translate back to variable counts.
		for _, v := range p.Vars() {
			for _, is := range proto.InitialStates() {
				if is == v || strings.HasPrefix(is, v+"|") {
					counts[v] = input.GetName(is)
				}
			}
		}
		return p.Eval(counts)
	}
	res, err := verify.Range(proto, pred, minTotal, maxTotal, budget)
	if err != nil {
		t.Fatalf("verify %v: %v", p, err)
	}
	if !res.OK() {
		f := res.FirstFailure()
		t.Errorf("%v fails at input %v (expected %v), counterexample %v",
			p, f.Input, f.Expected, f.Counterexample)
	}
}

func TestThresholdStablyComputes(t *testing.T) {
	verifyPred(t, Threshold{Weights: map[string]int64{"x": 1}, C: 3}, 0, 5)
	verifyPred(t, Threshold{Weights: map[string]int64{"x": 2, "y": 1}, C: 4}, 0, 4)
	verifyPred(t, Threshold{Weights: map[string]int64{"x": 5, "y": 1}, C: 3}, 0, 4)
	verifyPred(t, Threshold{Weights: map[string]int64{"x": 0, "y": 1}, C: 2}, 0, 4)
}

func TestRemainderStablyComputes(t *testing.T) {
	// r = 0 disagrees with the model at the empty input (the zero
	// configuration outputs 0 by definition), so start at 1 agent.
	verifyPred(t, Remainder{Weights: map[string]int64{"x": 1}, M: 2, R: 0}, 1, 5)
	verifyPred(t, Remainder{Weights: map[string]int64{"x": 1}, M: 3, R: 1}, 0, 5)
	verifyPred(t, Remainder{Weights: map[string]int64{"x": 2, "y": 1}, M: 3, R: 2}, 0, 4)
}

func TestAndOrNotStablyCompute(t *testing.T) {
	th := Threshold{Weights: map[string]int64{"x": 1}, C: 2}
	rm := Remainder{Weights: map[string]int64{"x": 1}, M: 2, R: 1}
	verifyPred(t, And{L: th, R: rm}, 0, 4)
	verifyPred(t, Or{L: th, R: rm}, 1, 4)
	verifyPred(t, Not{P: th}, 1, 4)
}

func TestCompileThresholdShape(t *testing.T) {
	p, err := Compile(Threshold{Weights: map[string]int64{"x": 1}, C: 4})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// states: x, v1..v3, z, T = 6.
	if p.States() != 6 {
		t.Errorf("states = %d, want 6", p.States())
	}
	if p.Width() != 2 || !p.Net().Conservative() || !p.Leaderless() {
		t.Error("threshold protocol shape wrong")
	}
}

func TestMajority(t *testing.T) {
	p, err := Majority("A", "B")
	if err != nil {
		t.Fatalf("Majority: %v", err)
	}
	if p.States() != 4 {
		t.Errorf("states = %d, want 4", p.States())
	}
	pred := func(input conf.Config) bool {
		return input.GetName("A") > input.GetName("B")
	}
	res, err := verify.Range(p, pred, 0, 6, budget)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !res.OK() {
		f := res.FirstFailure()
		t.Errorf("majority fails at %v (expected %v), counterexample %v",
			f.Input, f.Expected, f.Counterexample)
	}

	if _, err := Majority("A", "A"); err == nil {
		t.Error("same-variable majority accepted")
	}
	mp := MajorityPred("A", "B")
	if !mp.Eval(map[string]int64{"A": 2, "B": 1}) || mp.Eval(map[string]int64{"A": 1, "B": 1}) {
		t.Error("MajorityPred wrong")
	}
	if len(mp.Vars()) != 2 || mp.String() == "" {
		t.Error("MajorityPred metadata wrong")
	}
}

func TestNegateOutputs(t *testing.T) {
	th := Threshold{Weights: map[string]int64{"x": 1}, C: 2}
	p, err := Compile(Not{P: th})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// T must now output 0 and everything else 1.
	o, err := p.GammaName("T")
	if err != nil || o != core.Out0 {
		t.Errorf("γ(T) = %v, %v; want 0", o, err)
	}
	o, err = p.GammaName("z")
	if err != nil || o != core.Out1 {
		t.Errorf("γ(z) = %v, %v; want 1", o, err)
	}
}
