// Package spec represents the simple Presburger predicates population
// protocols compute — thresholds, remainders, boolean combinations —
// and compiles them into conservative width-2 protocols.
//
// Supported fragment:
//
//   - Threshold: Σ w_v·x_v ≥ c with non-negative weights and c ≥ 1,
//     compiled to a weighted flock-of-birds (saturating merge with a
//     broadcast ⊤). This is provably stably computing.
//   - Remainder: Σ w_v·x_v ≡ r (mod m), compiled to a residue-merging
//     protocol with follower states.
//   - And / Or / Not over the above, via the synchronized-product
//     construction.
//   - Majority (x_A > x_B), the classical 4-state cancellation
//     protocol, as a standalone constructor.
//
// Mixed-sign thresholds require the full Angluin–Aspnes–Diamadi–
// Fischer–Peralta machinery and are intentionally out of scope; see
// DESIGN.md.
package spec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Pred is a predicate φ: ℕ^Vars → {0, 1}.
type Pred interface {
	// Eval evaluates the predicate on variable counts (absent = 0).
	Eval(counts map[string]int64) bool
	// Vars returns the sorted variable names the predicate mentions.
	Vars() []string
	// String renders the predicate.
	String() string
}

// Threshold is Σ w_v·x_v ≥ C with w_v ≥ 0 and C ≥ 1.
type Threshold struct {
	Weights map[string]int64
	C       int64
}

// Eval implements Pred.
func (t Threshold) Eval(counts map[string]int64) bool {
	var sum int64
	for v, w := range t.Weights {
		sum += w * counts[v]
	}
	return sum >= t.C
}

// Vars implements Pred.
func (t Threshold) Vars() []string { return sortedKeys(t.Weights) }

// String implements Pred.
func (t Threshold) String() string {
	return fmt.Sprintf("%s ≥ %d", renderSum(t.Weights), t.C)
}

func (t Threshold) validate() error {
	if t.C < 1 {
		return fmt.Errorf("spec: threshold constant %d, want ≥ 1", t.C)
	}
	if len(t.Weights) == 0 {
		return errors.New("spec: threshold with no variables")
	}
	for v, w := range t.Weights {
		if w < 0 {
			return fmt.Errorf("spec: negative weight %d for %q (mixed-sign thresholds unsupported)", w, v)
		}
	}
	return nil
}

// Remainder is Σ w_v·x_v ≡ R (mod M) with M ≥ 1 and 0 ≤ R < M.
type Remainder struct {
	Weights map[string]int64
	M, R    int64
}

// Eval implements Pred.
func (r Remainder) Eval(counts map[string]int64) bool {
	var sum int64
	for v, w := range r.Weights {
		sum += w * counts[v]
	}
	return mod(sum, r.M) == r.R
}

// Vars implements Pred.
func (r Remainder) Vars() []string { return sortedKeys(r.Weights) }

// String implements Pred.
func (r Remainder) String() string {
	return fmt.Sprintf("%s ≡ %d (mod %d)", renderSum(r.Weights), r.R, r.M)
}

func (r Remainder) validate() error {
	if r.M < 1 {
		return fmt.Errorf("spec: modulus %d, want ≥ 1", r.M)
	}
	if r.R < 0 || r.R >= r.M {
		return fmt.Errorf("spec: remainder %d outside [0, %d)", r.R, r.M)
	}
	if len(r.Weights) == 0 {
		return errors.New("spec: remainder with no variables")
	}
	for v, w := range r.Weights {
		if w < 0 {
			return fmt.Errorf("spec: negative weight %d for %q", w, v)
		}
	}
	return nil
}

// And is conjunction.
type And struct{ L, R Pred }

// Eval implements Pred.
func (a And) Eval(counts map[string]int64) bool { return a.L.Eval(counts) && a.R.Eval(counts) }

// Vars implements Pred.
func (a And) Vars() []string { return unionVars(a.L, a.R) }

// String implements Pred.
func (a And) String() string { return "(" + a.L.String() + ") ∧ (" + a.R.String() + ")" }

// Or is disjunction.
type Or struct{ L, R Pred }

// Eval implements Pred.
func (o Or) Eval(counts map[string]int64) bool { return o.L.Eval(counts) || o.R.Eval(counts) }

// Vars implements Pred.
func (o Or) Vars() []string { return unionVars(o.L, o.R) }

// String implements Pred.
func (o Or) String() string { return "(" + o.L.String() + ") ∨ (" + o.R.String() + ")" }

// Not is negation.
type Not struct{ P Pred }

// Eval implements Pred.
func (n Not) Eval(counts map[string]int64) bool { return !n.P.Eval(counts) }

// Vars implements Pred.
func (n Not) Vars() []string { return n.P.Vars() }

// String implements Pred.
func (n Not) String() string { return "¬(" + n.P.String() + ")" }

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func unionVars(l, r Pred) []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range append(l.Vars(), r.Vars()...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func renderSum(weights map[string]int64) string {
	var b strings.Builder
	for i, v := range sortedKeys(weights) {
		if i > 0 {
			b.WriteString(" + ")
		}
		if weights[v] == 1 {
			b.WriteString(v)
			continue
		}
		fmt.Fprintf(&b, "%d·%s", weights[v], v)
	}
	return b.String()
}

func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
