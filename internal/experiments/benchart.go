package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/hostmeta"
)

// BenchArtifactSchema versions the ppbench -json timing document.
const BenchArtifactSchema = 1

// BenchTiming is one experiment's measured cost in a timing artifact,
// in the spirit of go test -bench output: one "op" is one full
// regeneration of the experiment table.
type BenchTiming struct {
	Name     string `json:"name"`
	NsPerOp  int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
}

// BenchArtifact is the ppbench -json document: per-experiment timings
// plus the host/commit metadata (embedded hostmeta.Meta, flattened
// into the JSON object) that makes artifacts from different machines
// and commits comparable. The committed BENCH_PR*.json files and the
// per-PR CI uploads use this schema; MergeBench folds any set of them
// into one trajectory table.
type BenchArtifact struct {
	Schema int `json:"schema"`
	hostmeta.Meta
	Timings []BenchTiming `json:"timings"`
}

// BenchColumn labels one artifact's column in a trajectory table.
type BenchColumn struct {
	// Label is the caller-chosen column name — typically the file name
	// or PR tag the artifact came from.
	Label string `json:"label"`
	// Host echoes the artifact's provenance stamp.
	Host hostmeta.Meta `json:"host"`
}

// BenchRow is one experiment's timing trajectory across the merged
// artifacts: NsPerOp[i] and AllocsOp[i] belong to column i, with -1
// (and the max uint64) marking artifacts that did not time this
// experiment (partial runs via ppbench -run on shard hosts).
type BenchRow struct {
	Name     string   `json:"name"`
	NsPerOp  []int64  `json:"ns_op"`
	AllocsOp []uint64 `json:"allocs_op"`
}

// BenchMissing is the NsPerOp sentinel for "this artifact did not
// time this experiment".
const BenchMissing = int64(-1)

// BenchTrajectory is the fan-in of timing artifacts from many hosts
// or PRs: one column per artifact (caller order preserved — pass
// artifacts oldest first to read left-to-right history), one row per
// experiment (first-seen order, so E1..E11 stay in index order when
// the first artifact ran everything).
type BenchTrajectory struct {
	Schema  int           `json:"schema"`
	Columns []BenchColumn `json:"columns"`
	Rows    []BenchRow    `json:"rows"`
}

// MergeBench folds timing artifacts into one trajectory table. Unlike
// the sweep merge there is no exactness contract — wall times are not
// mergeable accumulators — so the fold is a join, not an aggregation:
// it refuses unknown schemas and duplicate experiment names within
// one artifact, and marks experiments an artifact skipped rather than
// inventing values.
func MergeBench(labels []string, arts []*BenchArtifact) (*BenchTrajectory, error) {
	if len(arts) == 0 {
		return nil, fmt.Errorf("experiments: no timing artifacts to merge")
	}
	if len(labels) != len(arts) {
		return nil, fmt.Errorf("experiments: %d labels for %d artifacts", len(labels), len(arts))
	}
	tr := &BenchTrajectory{Schema: BenchArtifactSchema}
	rowIdx := make(map[string]int)
	for col, a := range arts {
		if a.Schema != BenchArtifactSchema {
			return nil, fmt.Errorf("experiments: artifact %q has schema %d, this build understands %d",
				labels[col], a.Schema, BenchArtifactSchema)
		}
		tr.Columns = append(tr.Columns, BenchColumn{Label: labels[col], Host: a.Meta})
		seen := make(map[string]bool, len(a.Timings))
		for _, tm := range a.Timings {
			if seen[tm.Name] {
				return nil, fmt.Errorf("experiments: artifact %q times %s twice", labels[col], tm.Name)
			}
			seen[tm.Name] = true
			i, ok := rowIdx[tm.Name]
			if !ok {
				i = len(tr.Rows)
				rowIdx[tm.Name] = i
				tr.Rows = append(tr.Rows, BenchRow{Name: tm.Name})
			}
			for len(tr.Rows[i].NsPerOp) < col {
				tr.Rows[i].NsPerOp = append(tr.Rows[i].NsPerOp, BenchMissing)
				tr.Rows[i].AllocsOp = append(tr.Rows[i].AllocsOp, ^uint64(0))
			}
			tr.Rows[i].NsPerOp = append(tr.Rows[i].NsPerOp, tm.NsPerOp)
			tr.Rows[i].AllocsOp = append(tr.Rows[i].AllocsOp, tm.AllocsOp)
		}
	}
	// Right-pad rows absent from the trailing artifacts.
	for i := range tr.Rows {
		for len(tr.Rows[i].NsPerOp) < len(arts) {
			tr.Rows[i].NsPerOp = append(tr.Rows[i].NsPerOp, BenchMissing)
			tr.Rows[i].AllocsOp = append(tr.Rows[i].AllocsOp, ^uint64(0))
		}
	}
	return tr, nil
}

// ParseBenchArtifact decodes one ppbench -json document. The PR1-era
// format — a bare timing array with no schema or host stamp
// (BENCH_PR1.json) — is accepted and wrapped, so the repo's whole
// timing history stays mergeable.
func ParseBenchArtifact(data []byte) (*BenchArtifact, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var timings []BenchTiming
		if err := json.Unmarshal(data, &timings); err != nil {
			return nil, err
		}
		return &BenchArtifact{Schema: BenchArtifactSchema, Timings: timings}, nil
	}
	var a BenchArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// Render formats the trajectory as an aligned text table: experiments
// down, artifacts across, wall time per op with the column's commit
// (short) and hostname in the header. Missing cells render as "—".
func (tr *BenchTrajectory) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s", "experiment")
	for _, c := range tr.Columns {
		fmt.Fprintf(&sb, " %16s", columnTag(c))
	}
	sb.WriteByte('\n')
	for _, r := range tr.Rows {
		fmt.Fprintf(&sb, "%-28s", r.Name)
		for _, ns := range r.NsPerOp {
			if ns == BenchMissing {
				fmt.Fprintf(&sb, " %16s", "—")
			} else {
				fmt.Fprintf(&sb, " %16s", fmtNs(ns))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// columnTag is the short column header: label, plus the commit prefix
// when the artifact carries one.
func columnTag(c BenchColumn) string {
	tag := c.Label
	if commit := strings.TrimSuffix(c.Host.Commit, "-dirty"); len(commit) >= 7 {
		tag += "@" + commit[:7]
	}
	if len(tag) > 16 {
		tag = tag[:16]
	}
	return tag
}

// fmtNs renders nanoseconds with a human unit, keeping columns narrow.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
