// Package experiments implements the reproduction experiments E1–E12w
// indexed in DESIGN.md. Each experiment returns a Table whose rows
// reproduce the corresponding quantitative claim of the paper; the
// cmd/ppbench binary prints them and the top-level benchmarks time
// them, so the paper-shaped output and the measured numbers come from
// one implementation.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/bounds"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/ctrlnet"
	"repro/internal/hilbert"
	"repro/internal/machine"
	"repro/internal/petri"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/verify"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim the rows are checked against
	Header  []string
	Rows    [][]string
	Verdict string // the measured outcome vs the claim
}

// Render prints the table in aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len([]rune(c)); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Verdict != "" {
		fmt.Fprintf(&b, "verdict: %s\n", t.Verdict)
	}
	return b.String()
}

// E1StateCounts reproduces the state/width/leader trade-off table of
// the counting constructions (Section 4 + [6]).
func E1StateCounts() (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "state counts of counting-protocol constructions",
		Claim: "2 states at width n (Ex 4.1); 6 states with n leaders (Ex 4.2); " +
			"n+1 leaderless (flock); log₂n+2 for n=2^k; log₂n+6 with 1 leader; " +
			"Θ(log log n) with 1 leader for n=2^(2^k) ([6]-style)",
		Header: []string{"n", "ex41", "ex42", "flock", "power2", "ldrdbl", "tower"},
	}
	towerStates := map[int64]string{} // n -> states
	for k := int64(0); k <= 5; k++ {
		n, err := counting.TowerThreshold(k)
		if err != nil {
			return nil, err
		}
		towerStates[n] = fmt.Sprintf("%d", 6*k+13)
	}
	for _, k := range []int64{1, 2, 3, 4, 5, 8, 16, 32} {
		n := int64(1) << k
		row := []string{fmt.Sprintf("%d", n)}
		// Example 4.1: always 2 states (width n).
		row = append(row, "2(w=n)")
		// Example 4.2: 6 states (n leaders).
		row = append(row, "6(L=n)")
		// Flock: n+1.
		row = append(row, fmt.Sprintf("%d", n+1))
		// Power2: k+2.
		row = append(row, fmt.Sprintf("%d", k+2))
		// LeaderDoubling: k+6.
		row = append(row, fmt.Sprintf("%d", k+6))
		// Tower (only at n = 2^(2^j)).
		ts, ok := towerStates[n]
		if !ok {
			ts = "-"
		}
		row = append(row, ts)
		t.Rows = append(t.Rows, row)
	}
	// Sanity: instantiate a few and confirm the real constructions match
	// the formulas.
	p41, err := counting.Example41(5)
	if err != nil {
		return nil, err
	}
	p42, err := counting.Example42(5)
	if err != nil {
		return nil, err
	}
	pf, err := counting.FlockOfBirds(5)
	if err != nil {
		return nil, err
	}
	pp, err := counting.PowerOfTwo(4)
	if err != nil {
		return nil, err
	}
	pt, err := counting.Tower(2)
	if err != nil {
		return nil, err
	}
	if p41.States() != 2 || p42.States() != 6 || pf.States() != 6 || pp.States() != 6 || pt.States() != 25 {
		return nil, fmt.Errorf("experiments: construction state counts drifted: %d %d %d %d %d",
			p41.States(), p42.States(), pf.States(), pp.States(), pt.States())
	}
	t.Verdict = "construction formulas match instantiated protocols; " +
		"tower grows 6 states per doubly-exponential jump in n = Θ(log log n)"
	return t, nil
}

// E2Theorem43 evaluates the headline bound of Theorem 4.3.
func E2Theorem43() (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 4.3: max n decidable with d states (w = L = 2)",
		Claim:  "n ≤ (4+4w+2L)^(d^((d+2)²))",
		Header: []string{"d", "exponent d^((d+2)²)", "log10(max n)", "max n"},
	}
	for d := 1; d <= 10; d++ {
		m := bounds.Theorem43MaxN(d, 2, 2)
		exp := math.Pow(float64(d), float64((d+2)*(d+2)))
		val := m.String()
		if len(val) > 28 {
			val = val[:28] + "…"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%.4g", exp),
			fmt.Sprintf("%.4g", m.Log10()),
			val,
		})
	}
	t.Verdict = "doubly-exponential growth in d: inverting gives the Ω((log log n)^h) state lower bound"
	return t, nil
}

// E3Gap reproduces the closed gap: the Corollary 4.4 lower bound versus
// the [6]-style tower upper bound, on the tower values n = 2^(2^k).
func E3Gap() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "state-complexity gap at n = 2^(2^k) (m = 2, h = 0.49)",
		Claim: "lower bound Ω((log log n)^h) for h < 1/2 vs upper bound O(log log n): " +
			"gap closed up to a square root",
		Header: []string{"k", "log2(n)", "LB Cor4.4", "LB Thm4.3 (exact d)", "UB tower states"},
	}
	for k := 1; k <= 20; k++ {
		log2n := math.Pow(2, float64(k)) // n = 2^(2^k)
		lb := bounds.Corollary44LowerBound(log2n, 0.49, 2)
		log10n := log2n * math.Log10(2)
		lbExact := bounds.MinStatesTheorem43(log10n, 2)
		ub := 6*k + 13
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("2^%d", k),
			fmt.Sprintf("%.2f", lb),
			fmt.Sprintf("%d", lbExact),
			fmt.Sprintf("%d", ub),
		})
	}
	t.Verdict = "LB ≈ k^0.49 stays below UB = Θ(k) = Θ(log log n): shapes match the closed gap"
	return t, nil
}

// E4VerifyCost measures the exhaustive verifier's closure growth: the
// practical face of Ackermannian well-specification hardness.
func E4VerifyCost() (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "exhaustive stable-computation verification cost",
		Claim:  "verification is decidable but state spaces blow up with population size",
		Header: []string{"protocol", "n", "max x", "inputs", "max closure", "all OK"},
	}
	budget := petri.Budget{MaxConfigs: 1 << 20}
	cases := []struct {
		name string
		mk   func() (*core.Protocol, error)
		n    int64
		maxX int64
	}{
		{"example42", func() (*core.Protocol, error) { return counting.Example42(2) }, 2, 6},
		{"example42", func() (*core.Protocol, error) { return counting.Example42(3) }, 3, 7},
		{"flock", func() (*core.Protocol, error) { return counting.FlockOfBirds(4) }, 4, 7},
		{"flock", func() (*core.Protocol, error) { return counting.FlockOfBirds(5) }, 5, 8},
		{"power2", func() (*core.Protocol, error) { return counting.PowerOfTwo(3) }, 8, 10},
	}
	for _, c := range cases {
		p, err := c.mk()
		if err != nil {
			return nil, err
		}
		res, err := verify.Counting(p, "i", c.n, c.maxX, budget)
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", c.name, err)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", c.n),
			fmt.Sprintf("%d", c.maxX),
			fmt.Sprintf("%d", len(res.Reports)),
			fmt.Sprintf("%d", res.MaxConfigs),
			fmt.Sprintf("%v", res.OK()),
		})
		if !res.OK() {
			return nil, fmt.Errorf("E4: %s unexpectedly fails verification", c.name)
		}
	}
	t.Verdict = "all constructions verify; closure size grows combinatorially with population"
	return t, nil
}

// E5Rackoff compares measured shortest covering words against the
// Lemma 5.3 Rackoff bound.
func E5Rackoff() (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "coverability witness lengths vs Rackoff bound (Lemma 5.3)",
		Claim:  "shortest covering word ≤ (‖ρ‖∞+‖T‖∞)^(|P|^|P|)",
		Header: []string{"net", "d", "measured |σ|", "log10(bound)"},
	}
	budget := petri.Budget{MaxConfigs: 1 << 18}
	type tc struct {
		name   string
		net    *petri.Net
		from   conf.Config
		target conf.Config
	}
	var cases []tc

	// Chain net: a -> b -> c, cover k c's from k a's.
	{
		space := conf.MustSpace("a", "b", "c")
		u := func(n string) conf.Config { return conf.MustUnit(space, n) }
		mk := func(name string, pre, post conf.Config) petri.Transition {
			tr, err := petri.NewTransition(name, pre, post)
			if err != nil {
				panic(err)
			}
			return tr
		}
		net, err := petri.New(space, []petri.Transition{
			mk("ab", u("a"), u("b")),
			mk("bc", u("b"), u("c")),
		})
		if err != nil {
			return nil, err
		}
		cases = append(cases, tc{"chain", net,
			u("a").Scale(4), u("c").Scale(4)})
	}
	// Doubling net: a -> 2b, b -> 2c: exponential token growth.
	{
		space := conf.MustSpace("a", "b", "c")
		u := func(n string) conf.Config { return conf.MustUnit(space, n) }
		mk := func(name string, pre, post conf.Config) petri.Transition {
			tr, err := petri.NewTransition(name, pre, post)
			if err != nil {
				panic(err)
			}
			return tr
		}
		net, err := petri.New(space, []petri.Transition{
			mk("a2b", u("a"), u("b").Scale(2)),
			mk("b2c", u("b"), u("c").Scale(2)),
		})
		if err != nil {
			return nil, err
		}
		cases = append(cases, tc{"double", net, u("a"), u("c").Scale(4)})
	}
	// Example 4.2 net: cover an all-accept configuration.
	{
		p, err := counting.Example42(2)
		if err != nil {
			return nil, err
		}
		space := p.Space()
		from := p.InitialConfig(conf.MustFromMap(space, map[string]int64{"i": 3}))
		target := conf.MustFromMap(space, map[string]int64{"p": 2, "q": 2})
		cases = append(cases, tc{"example42", p.Net(), from, target})
	}
	for _, c := range cases {
		w, err := c.net.ShortestCoveringWord(c.from, c.target, budget)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", c.name, err)
		}
		if w == nil {
			return nil, fmt.Errorf("E5 %s: target not coverable", c.name)
		}
		d := c.net.Space().Len()
		bound := bounds.Rackoff(d, c.target.NormInf(), c.net.NormInf())
		if !bound.GeqInt(int64(len(w.Word))) {
			return nil, fmt.Errorf("E5 %s: measured %d exceeds Rackoff bound %v", c.name, len(w.Word), bound)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", len(w.Word)),
			fmt.Sprintf("%.3g", bound.Log10()),
		})
	}
	t.Verdict = "every measured witness is far below the (astronomical) bound, as Lemma 5.3 predicts"
	return t, nil
}

// E6Pottier compares measured Hilbert-basis norms with the Pottier
// bound used by Lemma 7.3.
func E6Pottier() (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "minimal-solution norms vs Pottier bound (Lemma 7.3 substrate)",
		Claim:  "max ‖x‖₁ over minimal solutions ≤ (2 + Σ‖aᵢ‖∞)^d",
		Header: []string{"system", "d", "basis size", "max ‖x‖₁", "bound"},
	}
	systems := []struct {
		name string
		rows [][]int64
	}{
		{"x=y", [][]int64{{1, -1}}},
		{"2x=3y", [][]int64{{2, -3}}},
		{"x+y=2z", [][]int64{{1, 1, -2}}},
		{"5x=7y-3z", [][]int64{{5, -7, 3}}},
		{"two eqs", [][]int64{{1, -1, 0, 0}, {0, 1, -1, -1}}},
		{"3x+y=2z+4w", [][]int64{{3, 1, -2, -4}}},
	}
	for _, s := range systems {
		sys, err := hilbert.NewSystem(s.rows)
		if err != nil {
			return nil, err
		}
		basis, err := sys.MinimalSolutions(hilbert.Options{})
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", s.name, err)
		}
		measured := hilbert.MaxNorm1(basis)
		bound := bounds.Pottier(sys.Rows(), sys.SumColumnNormInf())
		if !bound.GeqInt(measured) {
			return nil, fmt.Errorf("E6 %s: measured %d exceeds Pottier bound %v", s.name, measured, bound)
		}
		t.Rows = append(t.Rows, []string{
			s.name,
			fmt.Sprintf("%d", sys.Rows()),
			fmt.Sprintf("%d", len(basis)),
			fmt.Sprintf("%d", measured),
			bound.String(),
		})
	}
	t.Verdict = "all bases within the Pottier bound"
	return t, nil
}

// E7Euler measures total-cycle lengths against the Lemma 7.2 bound
// |E|·|S| on randomized strongly connected control nets.
func E7Euler() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "total cycle lengths vs |E|·|S| (Lemma 7.2)",
		Claim:  "every strongly connected (S,T,E) has a total cycle of length ≤ |E|·|S|",
		Header: []string{"|S|", "|E|", "measured |θ|", "bound"},
	}
	for _, size := range []int{2, 4, 8, 16, 32} {
		net, err := ringControlNet(size)
		if err != nil {
			return nil, err
		}
		cyc, err := net.TotalCycle()
		if err != nil {
			return nil, fmt.Errorf("E7 |S|=%d: %w", size, err)
		}
		bound := bounds.Lemma72CycleLength(net.NumEdges(), net.NumStates())
		if int64(len(cyc)) > bound {
			return nil, fmt.Errorf("E7 |S|=%d: cycle %d exceeds bound %d", size, len(cyc), bound)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", net.NumStates()),
			fmt.Sprintf("%d", net.NumEdges()),
			fmt.Sprintf("%d", len(cyc)),
			fmt.Sprintf("%d", bound),
		})
	}
	t.Verdict = "all total cycles within |E|·|S|"
	return t, nil
}

// ringControlNet builds a strongly connected control net: a ring of
// size states with chords and self-loops, over a 2-place Petri net.
func ringControlNet(size int) (*ctrlnet.Net, error) {
	space := conf.MustSpace("x", "y")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	xy, err := petri.NewTransition("xy", u("x"), u("y"))
	if err != nil {
		return nil, err
	}
	yx, err := petri.NewTransition("yx", u("y"), u("x"))
	if err != nil {
		return nil, err
	}
	pnet, err := petri.New(space, []petri.Transition{xy, yx})
	if err != nil {
		return nil, err
	}
	states := make([]string, size)
	for i := range states {
		states[i] = fmt.Sprintf("s%d", i)
	}
	var edges []ctrlnet.Edge
	for i := 0; i < size; i++ {
		edges = append(edges, ctrlnet.Edge{From: states[i], Trans: i % 2, To: states[(i+1)%size]})
		// chord every 3rd state for extra edges
		if i%3 == 0 {
			edges = append(edges, ctrlnet.Edge{From: states[i], Trans: (i + 1) % 2, To: states[(i+size/2)%size]})
		}
	}
	return ctrlnet.New(states, pnet, edges)
}

// E8Bottom runs the constructive bottom-configuration search and
// compares certificate magnitudes with Theorem 6.1's bound b.
func E8Bottom() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "bottom-configuration certificates vs Theorem 6.1 bound b",
		Claim:  "|σ|, |w|, d‖α‖∞, d‖β‖∞, component ≤ b = (4+4‖T‖∞+2‖ρ‖∞)^(d^d(1+(2+d^d)^(d+1)))",
		Header: []string{"net", "d", "|σ|", "|w|", "|Q|", "component", "log10(b)"},
	}
	// The arena closure engine made the exploration cheap enough to
	// quadruple the budget the seed substrate could afford (1<<16).
	opts := core.ReachBottomOptions{Budget: petri.Budget{MaxConfigs: 1 << 18}}

	type tc struct {
		name string
		net  *petri.Net
		rho  conf.Config
	}
	var cases []tc
	{
		p, err := counting.Example42(2)
		if err != nil {
			return nil, err
		}
		cases = append(cases, tc{"example42(x=3)", p.Net(),
			p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 3}))})
	}
	{
		space := conf.MustSpace("a", "b")
		u := func(n string) conf.Config { return conf.MustUnit(space, n) }
		pump, err := petri.NewTransition("pump", u("a"), u("a").Add(u("b")))
		if err != nil {
			return nil, err
		}
		net, err := petri.New(space, []petri.Transition{pump})
		if err != nil {
			return nil, err
		}
		cases = append(cases, tc{"pump(unbounded)", net, u("a")})
	}
	{
		p, err := counting.FlockOfBirds(3)
		if err != nil {
			return nil, err
		}
		cases = append(cases, tc{"flock3(x=4)", p.Net(),
			p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 4}))})
	}
	{
		p, err := counting.FlockOfBirds(4)
		if err != nil {
			return nil, err
		}
		cases = append(cases, tc{"flock4(x=5)", p.Net(),
			p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5}))})
	}
	for _, c := range cases {
		cert, err := core.ReachBottom(c.net, c.rho, opts)
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", c.name, err)
		}
		d := c.net.Space().Len()
		b := bounds.Theorem61B(d, c.net.NormInf(), c.rho.NormInf())
		for what, v := range map[string]int64{
			"|σ|":       int64(len(cert.Sigma)),
			"|w|":       int64(len(cert.W)),
			"component": int64(cert.ComponentSize),
			"d‖α‖∞":     int64(d) * cert.Alpha.NormInf(),
			"d‖β‖∞":     int64(d) * cert.Beta.NormInf(),
		} {
			if !b.GeqInt(v) {
				return nil, fmt.Errorf("E8 %s: %s = %d exceeds b", c.name, what, v)
			}
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", len(cert.Sigma)),
			fmt.Sprintf("%d", len(cert.W)),
			fmt.Sprintf("%d", len(cert.Q)),
			fmt.Sprintf("%d", cert.ComponentSize),
			fmt.Sprintf("%.3g", b.Log10()),
		})
	}
	t.Verdict = "all verified certificates are minuscule next to b, as Theorem 6.1 permits"
	return t, nil
}

// E9Stabilized measures the minimal small-values threshold of
// Lemma 5.4 against the formula h.
func E9Stabilized() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "minimal small-values threshold vs Lemma 5.4 formula",
		Claim:  "characterization holds for h ≥ ‖T‖∞(1+‖T‖∞)^(d^d); measured minimal h is tiny",
		Header: []string{"protocol", "ρ", "measured h", "log10(formula h)"},
	}
	budget := petri.Budget{MaxConfigs: 1 << 16}
	p, err := counting.Example42(2)
	if err != nil {
		return nil, err
	}
	keep, err := p.KeepMask(p.OutputStates(core.Out0))
	if err != nil {
		return nil, err
	}
	rhos := []map[string]int64{
		{"ib": 4, "pb": 1, "qb": 1},
		{"ib": 2},
		{"ib": 5, "qb": 3},
	}
	for _, m := range rhos {
		rho := conf.MustFromMap(p.Space(), m)
		h, err := core.MinimalCharacterizationH(p.Net(), keep, rho, 8, 3, budget)
		if err != nil {
			return nil, fmt.Errorf("E9 %v: %w", rho, err)
		}
		if h == 0 {
			return nil, fmt.Errorf("E9 %v: no threshold ≤ 8 found", rho)
		}
		formula := bounds.StabilizationH(p.States(), p.Net().NormInf())
		t.Rows = append(t.Rows, []string{
			p.Name(),
			rho.String(),
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.3g", formula.Log10()),
		})
	}
	t.Verdict = "measured thresholds of 1–2 vs formula ~10^14000: Lemma 5.4 is comfortably loose"
	return t, nil
}

// E10Convergence measures simulated convergence of the constructions.
func E10Convergence() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "uniform-scheduler convergence of counting protocols",
		Claim:  "all constructions converge to the correct consensus; interactions grow with population",
		Header: []string{"protocol", "x", "expected", "trials", "correct", "mean steps"},
	}
	type tc struct {
		name string
		mk   func() (*core.Protocol, error)
		n    int64
		x    int64
	}
	cases := []tc{
		{"example42(4)", func() (*core.Protocol, error) { return counting.Example42(4) }, 4, 12},
		{"example42(4)", func() (*core.Protocol, error) { return counting.Example42(4) }, 4, 3},
		{"flock(8)", func() (*core.Protocol, error) { return counting.FlockOfBirds(8) }, 8, 40},
		{"flock(8)", func() (*core.Protocol, error) { return counting.FlockOfBirds(8) }, 8, 6},
		{"power2(4)", func() (*core.Protocol, error) { return counting.PowerOfTwo(4) }, 16, 64},
		{"power2(4)", func() (*core.Protocol, error) { return counting.PowerOfTwo(4) }, 16, 10},
		{"ldrdbl(3)", func() (*core.Protocol, error) { return counting.LeaderDoubling(3) }, 8, 20},
	}
	for _, c := range cases {
		p, err := c.mk()
		if err != nil {
			return nil, err
		}
		in, err := p.Input(map[string]int64{"i": c.x})
		if err != nil {
			return nil, err
		}
		expected := c.x >= c.n
		stats, err := sim.RunMany(context.Background(), p, in, expected, 20,
			sim.Options{Seed: 1234, MaxSteps: 400_000, StablePatience: 2000})
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", c.name, err)
		}
		if stats.Correct != stats.Converged || stats.Converged == 0 {
			return nil, fmt.Errorf("E10 %s x=%d: %d/%d correct of %d converged",
				c.name, c.x, stats.Correct, stats.Converged, stats.Trials)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", c.x),
			fmt.Sprintf("%v", expected),
			fmt.Sprintf("%d", stats.Trials),
			fmt.Sprintf("%d", stats.Correct),
			fmt.Sprintf("%.0f", stats.MeanLastChange()),
		})
	}
	t.Verdict = "20/20 correct consensus everywhere; convergence cost grows with population"
	return t, nil
}

// E11LargeNBatch measures count-batched convergence at populations the
// per-interaction engine cannot reach: 10⁸+ agents per run. This is
// the regime where the paper's headline objects live (n = 2^(2^k)
// populations, Czerner's double-exponential thresholds, the Alistarh et
// al. trade-offs only show their asymptotics at such n), unlocked by
// the tau-leaping batch scheduler's sub-constant amortized cost per
// interaction.
//
// Each sweep executes through the sharded pipeline (internal/shard):
// the spec is planned into shards, every shard runs as an independent
// worker would, and the partial artifacts are merged — so the numbers
// below are, by the merge contract, bit-identical to a single-process
// sweep, and each point aggregates several trials with a real
// confidence interval instead of the single run per point of earlier
// revisions.
func E11LargeNBatch() (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "count-batched convergence at n ≥ 10^8 (sharded multi-trial sweeps)",
		Claim: "count-based batch simulation decides the counting predicates at " +
			"10^8+ agents in milliseconds per run, agreeing with the exact " +
			"semantics; shard/merge reproduces the single-process sweep exactly",
		Header: []string{"protocol", "agents", "expected", "trials", "correct", "mean ia", "±95% CI", "sweep wall"},
	}
	const trials = 5
	sweeps := []shard.SweepSpec{
		// Whole-run mode (patience 0): these protocols end in an
		// absorbing deadlock, the unambiguous convergence signal at
		// populations where any fixed patience is miscalibrated. The
		// step cap only guards against livelock (every E11 trajectory
		// is ≤ 2x−3 interactions, within int32 range).
		{Protocol: "power2", Param: 27, InputState: "i", Sizes: []int64{1<<27 - 1, 1 << 27},
			Trials: trials, Seed: 11, MaxSteps: math.MaxInt32, Scheduler: "countbatch"},
		{Protocol: "flock", Param: 8, InputState: "i", Sizes: []int64{100_000_000},
			Trials: trials, Seed: 11, MaxSteps: math.MaxInt32, Scheduler: "countbatch"},
		{Protocol: "example42", Param: 4, InputState: "i", Sizes: []int64{100_000_000},
			Trials: trials, Seed: 11, MaxSteps: math.MaxInt32, Scheduler: "countbatch"},
	}
	for _, sw := range sweeps {
		_, n, err := sw.Build()
		if err != nil {
			return nil, fmt.Errorf("E11 %s: %w", sw.Protocol, err)
		}
		m, err := shard.Plan(sw, 2)
		if err != nil {
			return nil, fmt.Errorf("E11 %s: %w", sw.Protocol, err)
		}
		start := time.Now()
		arts := make([]*shard.Artifact, 0, len(m.Shards))
		for _, spec := range m.Shards {
			a, err := shard.Run(context.Background(), m, spec.ID, 0)
			if err != nil {
				return nil, fmt.Errorf("E11 %s shard %s: %w", sw.Protocol, spec.ID, err)
			}
			arts = append(arts, a)
		}
		merged, err := shard.Merge(arts)
		if err != nil {
			return nil, fmt.Errorf("E11 %s merge: %w", sw.Protocol, err)
		}
		elapsed := time.Since(start)
		for _, pt := range merged.Points {
			st := &pt.Stats
			if st.Converged != trials || st.Correct != trials {
				return nil, fmt.Errorf("E11 %s x=%d: %d/%d correct of %d converged",
					sw.Protocol, pt.X, st.Correct, trials, st.Converged)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s(%d)", sw.Protocol, sw.Param),
				fmt.Sprintf("%d", pt.X),
				fmt.Sprintf("%v", pt.X >= n),
				fmt.Sprintf("%d", st.Trials),
				fmt.Sprintf("%d", st.Correct),
				fmt.Sprintf("%.3g", st.MeanSteps()),
				fmt.Sprintf("%.3g", st.HalfCI95Steps()),
				elapsed.Round(time.Millisecond).String(),
			})
		}
	}
	t.Verdict = "correct absorbing consensus in 5/5 trials at every population; " +
		"shard-merged statistics carry tight confidence intervals at 10^8 agents"
	return t, nil
}

// E11aAnytimeStopping measures what sequential stopping buys: the
// same sweep run exhaustively and under a CI-target stop rule, point
// by point. The stopped run must agree with the exhaustive one within
// the combined confidence intervals — stopping trades trials for a
// certified precision target, never for a different answer — and the
// merge-time truncation contract makes the stopped document a pure
// function of the spec, the block size and the rule, independent of
// how many workers raced over the cells.
func E11aAnytimeStopping() (*Table, error) {
	t := &Table{
		ID:    "E11a",
		Title: "sequential stopping under a 5% CI target (anytime sweeps)",
		Claim: "a per-size CI-target stop rule cuts trial counts by half or more " +
			"while the stopped means stay within the combined 95% CIs of the " +
			"exhaustive sweep",
		Header: []string{"agents", "planned", "done", "saved", "mean (stop)", "mean (full)", "|Δ| ≤ ΣCI"},
	}
	sw := shard.SweepSpec{
		Protocol: "flock", Param: 4, InputState: "i",
		Sizes: []int64{2, 4, 8, 16}, Trials: 48, Seed: 1,
		MaxSteps: 200000, Patience: 1000,
	}
	rule := sim.StopRule{TargetRelCI: 0.05, MinTrials: 8}
	m, err := shard.PlanCostBlock(sw, 1, shard.DefaultCost(sw.Scheduler), 4)
	if err != nil {
		return nil, fmt.Errorf("E11a plan: %w", err)
	}
	// Exhaustive reference: every planned cell, folded without a rule.
	full, err := shard.Run(context.Background(), m, m.Shards[0].ID, 0)
	if err != nil {
		return nil, fmt.Errorf("E11a exhaustive run: %w", err)
	}
	swc, pts, err := shard.CollectPartial([]*shard.Artifact{full}, nil)
	if err != nil {
		return nil, fmt.Errorf("E11a collect: %w", err)
	}
	exhaustive, err := shard.MergePartial(swc, pts, sim.StopRule{})
	if err != nil {
		return nil, fmt.Errorf("E11a exhaustive merge: %w", err)
	}
	// Stopped view: the same cells truncated at the canonical stopping
	// boundary. (Workers running live with the rule skip the truncated
	// cells instead of computing them; the document is identical.)
	stopped, err := shard.MergePartial(swc, pts, rule)
	if err != nil {
		return nil, fmt.Errorf("E11a stopped merge: %w", err)
	}
	totalPlanned, totalDone := 0, 0
	for i, pt := range stopped.Points {
		ref := &exhaustive.Points[i]
		if !pt.Stopped {
			return nil, fmt.Errorf("E11a x=%d: rule never fired in %d trials", pt.X, sw.Trials)
		}
		gap := math.Abs(pt.Stats.MeanSteps() - ref.Stats.MeanSteps())
		bound := pt.Stats.HalfCI95Steps() + ref.Stats.HalfCI95Steps()
		if gap > bound {
			return nil, fmt.Errorf("E11a x=%d: stopped mean drifted %.2f beyond the combined CI %.2f", pt.X, gap, bound)
		}
		totalPlanned += pt.TrialsPlanned
		totalDone += pt.TrialsDone
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.X),
			fmt.Sprintf("%d", pt.TrialsPlanned),
			fmt.Sprintf("%d", pt.TrialsDone),
			fmt.Sprintf("%.0f%%", 100*(1-float64(pt.TrialsDone)/float64(pt.TrialsPlanned))),
			fmt.Sprintf("%.1f", pt.Stats.MeanSteps()),
			fmt.Sprintf("%.1f", ref.Stats.MeanSteps()),
			fmt.Sprintf("%v", gap <= bound),
		})
	}
	if totalDone*2 > totalPlanned {
		return nil, fmt.Errorf("E11a: stopping saved only %d of %d trials", totalPlanned-totalDone, totalPlanned)
	}
	t.Verdict = fmt.Sprintf("stop rule fired on every size, ran %d of %d planned trials "+
		"(%.0f%% saved); every stopped mean within the combined 95%% CIs",
		totalDone, totalPlanned, 100*(1-float64(totalDone)/float64(totalPlanned)))
	return t, nil
}

// MachineTable is a bonus table: the squaring machine behind Tower.
func MachineTable() (*Table, error) {
	t := &Table{
		ID:     "E1b",
		Title:  "repeated-squaring machine values (Tower substrate)",
		Claim:  "k+1 instructions compute 2^(2^k)",
		Header: []string{"k", "instructions", "value"},
	}
	for k := 0; k <= 5; k++ {
		prog := machine.SquaringProgram(k)
		out, _, err := prog.Run()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", len(prog.Instrs)),
			out.String(),
		})
	}
	t.Verdict = "doubly-exponential values from linear-size programs"
	return t, nil
}

// NamedExperiment pairs an experiment id with its generator, so
// callers can select and time experiments without running the rest.
type NamedExperiment struct {
	ID  string
	Run func() (*Table, error)
}

// Index returns the experiments in canonical order. The IDs match the
// tables the generators produce and the DESIGN.md experiment index.
func Index() []NamedExperiment {
	return []NamedExperiment{
		{"E1", E1StateCounts},
		{"E1b", MachineTable},
		{"E2", E2Theorem43},
		{"E3", E3Gap},
		{"E4", E4VerifyCost},
		{"E5", E5Rackoff},
		{"E6", E6Pottier},
		{"E7", E7Euler},
		{"E8", E8Bottom},
		{"E9", E9Stabilized},
		{"E10", E10Convergence},
		{"E11", E11LargeNBatch},
		{"E11a", E11aAnytimeStopping},
		// E12 (cold) must precede E12w (warm): they share one daemon,
		// so the cold replay doubles as the warm replay's prewarm and
		// the timing artifact's E12/E12w pair is a true cold/warm gap.
		{"E12", E12ServeReplayCold},
		{"E12w", E12wServeReplayWarm},
	}
}

// All runs every experiment in order.
func All() ([]*Table, error) {
	idx := Index()
	out := make([]*Table, 0, len(idx))
	for _, e := range idx {
		tbl, err := e.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
