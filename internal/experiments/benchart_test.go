package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/hostmeta"
)

func benchArt(commit string, timings ...BenchTiming) *BenchArtifact {
	return &BenchArtifact{
		Schema:  BenchArtifactSchema,
		Meta:    hostmeta.Meta{Hostname: "h-" + commit, Commit: commit},
		Timings: timings,
	}
}

func TestMergeBenchJoinsByExperiment(t *testing.T) {
	a := benchArt("aaaaaaaaaaaa",
		BenchTiming{Name: "E2", NsPerOp: 5_500_000, AllocsOp: 514},
		BenchTiming{Name: "E8", NsPerOp: 61_700_000, AllocsOp: 394_849})
	b := benchArt("bbbbbbbbbbbb",
		BenchTiming{Name: "E2", NsPerOp: 2_500_000, AllocsOp: 185},
		BenchTiming{Name: "E8", NsPerOp: 7_700_000, AllocsOp: 859},
		BenchTiming{Name: "E11", NsPerOp: 9_000_000, AllocsOp: 42})
	tr, err := MergeBench([]string{"pr2", "pr4"}, []*BenchArtifact{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Columns) != 2 || len(tr.Rows) != 3 {
		t.Fatalf("got %d columns × %d rows, want 2 × 3", len(tr.Columns), len(tr.Rows))
	}
	if tr.Rows[0].Name != "E2" || tr.Rows[1].Name != "E8" || tr.Rows[2].Name != "E11" {
		t.Errorf("row order %v, want first-seen E2, E8, E11", []string{tr.Rows[0].Name, tr.Rows[1].Name, tr.Rows[2].Name})
	}
	if tr.Rows[0].NsPerOp[0] != 5_500_000 || tr.Rows[0].NsPerOp[1] != 2_500_000 {
		t.Errorf("E2 trajectory %v", tr.Rows[0].NsPerOp)
	}
	// E11 is missing from the first artifact: left-padded with the
	// missing sentinel, never an invented value.
	if tr.Rows[2].NsPerOp[0] != BenchMissing || tr.Rows[2].NsPerOp[1] != 9_000_000 {
		t.Errorf("E11 trajectory %v, want [missing, 9ms]", tr.Rows[2].NsPerOp)
	}
	table := tr.Render()
	for _, want := range []string{"E2", "E8", "E11", "5.5ms", "2.5ms", "—", "pr2@aaaaaaa", "pr4@bbbbbbb"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q:\n%s", want, table)
		}
	}
}

// Trailing artifacts that skipped an experiment leave right-padded
// missing cells.
func TestMergeBenchRightPadsMissing(t *testing.T) {
	a := benchArt("a", BenchTiming{Name: "E2", NsPerOp: 1}, BenchTiming{Name: "E6", NsPerOp: 2})
	b := benchArt("b", BenchTiming{Name: "E2", NsPerOp: 3}) // shard host: ppbench -run E2
	tr, err := MergeBench([]string{"full", "shard"}, []*BenchArtifact{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows[1].Name != "E6" || tr.Rows[1].NsPerOp[1] != BenchMissing {
		t.Errorf("E6 row %+v, want missing in column 2", tr.Rows[1])
	}
}

func TestMergeBenchRejects(t *testing.T) {
	good := benchArt("a", BenchTiming{Name: "E2", NsPerOp: 1})
	if _, err := MergeBench(nil, nil); err == nil {
		t.Error("empty artifact list accepted")
	}
	if _, err := MergeBench([]string{"one", "two"}, []*BenchArtifact{good}); err == nil {
		t.Error("label/artifact count mismatch accepted")
	}
	bad := benchArt("b", BenchTiming{Name: "E2", NsPerOp: 1})
	bad.Schema = BenchArtifactSchema + 1
	if _, err := MergeBench([]string{"a", "b"}, []*BenchArtifact{good, bad}); err == nil {
		t.Error("unknown schema accepted")
	}
	dup := benchArt("c", BenchTiming{Name: "E2", NsPerOp: 1}, BenchTiming{Name: "E2", NsPerOp: 2})
	if _, err := MergeBench([]string{"dup"}, []*BenchArtifact{dup}); err == nil {
		t.Error("duplicate experiment within one artifact accepted")
	}
}

// The committed BENCH_PR*.json artifacts must stay parseable and
// mergeable — they are the repo's own timing history, and the
// merge-bench CLI's primary input.
func TestMergeBenchCommittedArtifacts(t *testing.T) {
	var labels []string
	var arts []*BenchArtifact
	for _, name := range []string{"BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR4.json"} {
		data, err := os.ReadFile("../../" + name)
		if err != nil {
			t.Fatalf("committed artifact: %v", err)
		}
		a, err := ParseBenchArtifact(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		labels = append(labels, strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"))
		arts = append(arts, a)
	}
	tr, err := MergeBench(labels, arts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Columns) != 3 || len(tr.Rows) == 0 {
		t.Fatalf("trajectory %d columns × %d rows", len(tr.Columns), len(tr.Rows))
	}
	if !strings.Contains(tr.Render(), "PR1") {
		t.Error("rendered trajectory missing PR1 column")
	}
}
