package experiments

import (
	"strings"
	"testing"
)

// Each experiment must produce a non-empty, well-formed table whose
// internal bound checks (enforced inside the experiment functions) all
// pass. This is the integration test that every reproduction claim can
// be regenerated.
func TestAllExperiments(t *testing.T) {
	tables, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(tables) != 15 {
		t.Fatalf("experiments = %d, want 15", len(tables))
	}
	seen := make(map[string]bool)
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" || tbl.Claim == "" {
			t.Errorf("table %q missing metadata", tbl.ID)
		}
		if seen[tbl.ID] {
			t.Errorf("duplicate experiment id %q", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.ID)
		}
		for ri, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s row %d: %d cells for %d columns", tbl.ID, ri, len(row), len(tbl.Header))
			}
		}
		out := tbl.Render()
		if !strings.Contains(out, tbl.ID) || !strings.Contains(out, "claim:") {
			t.Errorf("%s: Render missing metadata:\n%s", tbl.ID, out)
		}
		if tbl.Verdict == "" {
			t.Errorf("%s: missing verdict", tbl.ID)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E11a", "E12", "E12w"} {
		if !seen[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestE1Specifics(t *testing.T) {
	tbl, err := E1StateCounts()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	// The n = 16 row must carry a tower entry (16 = 2^(2^2)).
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "16" {
			found = true
			if row[len(row)-1] == "-" {
				t.Error("n=16 should have a tower state count")
			}
		}
	}
	if !found {
		t.Error("n=16 row missing")
	}
}

func TestE3Shape(t *testing.T) {
	tbl, err := E3Gap()
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	// The upper-bound column must grow linearly in k while the
	// asymptotic lower bound grows sublinearly: last row UB/LB ratio
	// larger than first meaningful row's.
	if len(tbl.Rows) < 10 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestRingControlNet(t *testing.T) {
	for _, size := range []int{2, 5, 9} {
		net, err := ringControlNet(size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !net.StronglyConnected() {
			t.Errorf("size %d: not strongly connected", size)
		}
	}
}
