package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// E12/E12w measure the ppserve daemon's replay behavior: E12 replays
// a mixed simulate/verify/bounds query file against a cold daemon
// (every query computes and persists), E12w replays the same mix
// against the now-warm store many times (every query is an O(1)
// content-addressed lookup). The two share one daemon via
// serveEnv, so in an all-experiments run E12's cold pass doubles as
// E12w's prewarm and E12w's ns_op in the timing artifact is pure
// warm-path cost — the cold/warm latency gap in BENCH_PR8.json is
// the E12 vs E12w row pair. Run standalone, E12w warms the store
// itself first.

// serveQuery is one replayed request.
type serveQuery struct {
	path, body string
}

// serveMix is the replayed query mix: cheap but covering all three
// endpoints, with no two lines sharing a cache key.
var serveMix = []serveQuery{
	{"/v1/simulate", `{"spec":{"protocol":"flock","param":4},"x":6,"trials":3,"seed":11,"max_steps":50000}`},
	{"/v1/simulate", `{"spec":{"protocol":"example42","param":3},"x":5,"trials":2,"seed":1,"max_steps":50000}`},
	{"/v1/simulate", `{"spec":{"protocol":"majority","param":0},"x":9,"y":6,"trials":2,"seed":5,"max_steps":50000}`},
	{"/v1/verify", `{"spec":{"protocol":"flock","param":2},"max_x":4,"budget":200000}`},
	{"/v1/bounds", `{"op":"rackoff"}`},
	{"/v1/bounds", `{"op":"section8"}`},
	{"/v1/bounds", `{"op":"minstates"}`},
	{"/v1/bounds", `{"op":"thm43","d":6}`},
	{"/v1/bounds", `{"op":"cor44","kmax":10}`},
}

// serveEnv is the warmed daemon E12's cold pass hands to E12w.
var serveEnv struct {
	mu      sync.Mutex
	handler http.Handler
	coldP50 time.Duration
	coldP99 time.Duration
}

// freshDaemon boots a daemon over a fresh throwaway store.
func freshDaemon() (http.Handler, error) {
	dir, err := os.MkdirTemp("", "ppbench-serve-")
	if err != nil {
		return nil, err
	}
	s, err := serve.New(serve.Config{StoreDir: dir})
	if err != nil {
		return nil, err
	}
	return s.Handler(), nil
}

// replayMix posts every mix query once, returning per-query latencies
// and the cache-hit count.
func replayMix(h http.Handler) ([]time.Duration, int, error) {
	lats := make([]time.Duration, 0, len(serveMix))
	hits := 0
	for _, q := range serveMix {
		req := httptest.NewRequest("POST", q.path, strings.NewReader(q.body))
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		lats = append(lats, time.Since(start))
		if rec.Code != http.StatusOK {
			return nil, 0, fmt.Errorf("%s: %d %s", q.path, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("X-Cache") == "hit" {
			hits++
		}
	}
	return lats, hits, nil
}

// percentile returns the p-th percentile (nearest-rank) of lats.
func percentile(lats []time.Duration, p int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := p * len(sorted) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// warmEnv returns the shared warmed daemon, booting and cold-replaying
// a fresh one when E12 has not run in this process (standalone E12w).
func warmEnv() (http.Handler, time.Duration, time.Duration, error) {
	serveEnv.mu.Lock()
	defer serveEnv.mu.Unlock()
	if serveEnv.handler == nil {
		h, err := freshDaemon()
		if err != nil {
			return nil, 0, 0, err
		}
		lats, _, err := replayMix(h)
		if err != nil {
			return nil, 0, 0, err
		}
		serveEnv.handler = h
		serveEnv.coldP50 = percentile(lats, 50)
		serveEnv.coldP99 = percentile(lats, 99)
	}
	return serveEnv.handler, serveEnv.coldP50, serveEnv.coldP99, nil
}

// E12ServeReplayCold replays the mix against a cold daemon: every
// query computes, persists, and seeds the store E12w then reads.
// Each run boots a fresh store, so the experiment is re-runnable; the
// warmed daemon it leaves behind becomes E12w's environment.
func E12ServeReplayCold() (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "ppserve query replay: cold daemon, every query computes",
		Claim:  "a fresh store answers no query from cache; every result is computed once and persisted",
		Header: []string{"pass", "queries", "cache hits", "p50", "p99"},
	}
	h, err := freshDaemon()
	if err != nil {
		return nil, err
	}
	lats, hits, err := replayMix(h)
	if err != nil {
		return nil, err
	}
	p50, p99 := percentile(lats, 50), percentile(lats, 99)
	serveEnv.mu.Lock()
	serveEnv.handler = h
	serveEnv.coldP50, serveEnv.coldP99 = p50, p99
	serveEnv.mu.Unlock()
	t.Rows = append(t.Rows, []string{
		"cold", fmt.Sprintf("%d", len(serveMix)), fmt.Sprintf("%d", hits),
		p50.Round(time.Microsecond).String(), p99.Round(time.Microsecond).String(),
	})
	if hits != 0 {
		t.Verdict = fmt.Sprintf("FAIL: %d cache hits against a cold store", hits)
		return t, fmt.Errorf("E12: %s", t.Verdict)
	}
	t.Verdict = fmt.Sprintf("replayed %d mixed queries cold: 0 cache hits, all computed and persisted", len(serveMix))
	return t, nil
}

// e12WarmPasses is E12w's warm replay count: enough samples for a
// stable p99 over the mix, while keeping E12w's total wall time below
// E12's single cold pass — so the cold/warm gap shows up directly in
// the BENCH_PR8.json ns_op pair as well as in the per-query table.
const e12WarmPasses = 16

// E12wServeReplayWarm replays the mix against the warm store: every
// query must hit, and the warm tail must beat the cold median — the
// "repeated queries are O(1) lookups" acceptance gap.
func E12wServeReplayWarm() (*Table, error) {
	t := &Table{
		ID:     "E12w",
		Title:  "ppserve query replay: warm store, every query is a lookup",
		Claim:  "a warmed store serves the identical mix entirely from cache, far below cold compute latency",
		Header: []string{"pass", "queries", "cache hits", "p50", "p99"},
	}
	h, coldP50, coldP99, err := warmEnv()
	if err != nil {
		return nil, err
	}
	var lats []time.Duration
	hits, total := 0, 0
	for pass := 0; pass < e12WarmPasses; pass++ {
		l, hitN, err := replayMix(h)
		if err != nil {
			return nil, err
		}
		lats = append(lats, l...)
		hits += hitN
		total += len(serveMix)
	}
	p50, p99 := percentile(lats, 50), percentile(lats, 99)
	t.Rows = append(t.Rows,
		[]string{"cold", fmt.Sprintf("%d", len(serveMix)), "0",
			coldP50.Round(time.Microsecond).String(), coldP99.Round(time.Microsecond).String()},
		[]string{fmt.Sprintf("warm ×%d", e12WarmPasses), fmt.Sprintf("%d", total), fmt.Sprintf("%d", hits),
			p50.Round(time.Microsecond).String(), p99.Round(time.Microsecond).String()},
	)
	if hits != total {
		t.Verdict = fmt.Sprintf("FAIL: only %d/%d warm queries hit the cache", hits, total)
		return t, fmt.Errorf("E12w: %s", t.Verdict)
	}
	if p99 >= coldP50 {
		t.Verdict = fmt.Sprintf("FAIL: warm p99 %v did not beat cold p50 %v", p99, coldP50)
		return t, fmt.Errorf("E12w: %s", t.Verdict)
	}
	t.Verdict = fmt.Sprintf("100%% cache hits over %d warm replays; warm p99 %v < cold p50 %v",
		e12WarmPasses, p99.Round(time.Microsecond), coldP50.Round(time.Microsecond))
	return t, nil
}
