// Package graph provides the directed-graph algorithms the protocol
// analyses are built on: strongly connected components (Tarjan),
// condensations, bottom components and reachability fixpoints.
//
// Graphs are plain adjacency lists over integer node ids, matching the
// node ids of petri.ReachSet closures.
package graph

// SCC computes the strongly connected components of the graph given as
// adjacency lists, using Tarjan's algorithm (iterative, so deep graphs
// cannot overflow the goroutine stack).
//
// It returns the component id of every node and the number of
// components. Component ids are in reverse topological order: if there
// is an edge from a node in component x to a node in component y with
// x ≠ y, then x > y. Consequently component 0 is always a "bottom"
// (sink) component of the condensation.
func SCC(adj [][]int) (comp []int, ncomp int) {
	n := len(adj)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	// Iterative Tarjan: frame.ei is the next edge of frame.v to explore.
	type frame struct {
		v  int
		ei int
	}
	var frames []frame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// All edges of f.v explored: pop.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// Condense builds the condensation graph: one node per component, edges
// between distinct components, deduplicated. Component ids follow SCC's
// numbering.
func Condense(adj [][]int, comp []int, ncomp int) [][]int {
	out := make([][]int, ncomp)
	seen := make(map[[2]int]bool)
	for v, ws := range adj {
		for _, w := range ws {
			a, b := comp[v], comp[w]
			if a == b {
				continue
			}
			key := [2]int{a, b}
			if !seen[key] {
				seen[key] = true
				out[a] = append(out[a], b)
			}
		}
	}
	return out
}

// BottomComponents returns the component ids that have no outgoing edge
// in the condensation: the bottom (sink) SCCs. A node in a bottom SCC
// can reach exactly its own component.
func BottomComponents(cond [][]int) []int {
	var out []int
	for c, succ := range cond {
		if len(succ) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// Members returns, for each component, the list of node ids it contains.
func Members(comp []int, ncomp int) [][]int {
	out := make([][]int, ncomp)
	for v, c := range comp {
		out[c] = append(out[c], v)
	}
	return out
}

// CanReach computes, for every node, whether some node in the target set
// is reachable (including trivially, when the node itself is a target).
// It runs a reverse BFS from the targets.
func CanReach(adj [][]int, targets []int) []bool {
	n := len(adj)
	radj := Reverse(adj)
	reach := make([]bool, n)
	queue := make([]int, 0, len(targets))
	for _, t := range targets {
		if !reach[t] {
			reach[t] = true
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range radj[v] {
			if !reach[w] {
				reach[w] = true
				queue = append(queue, w)
			}
		}
	}
	return reach
}

// Reverse returns the reversed adjacency lists.
func Reverse(adj [][]int) [][]int {
	out := make([][]int, len(adj))
	for v, ws := range adj {
		for _, w := range ws {
			out[w] = append(out[w], v)
		}
	}
	return out
}

// StronglyConnected reports whether the whole graph is one strongly
// connected component. The empty graph is not strongly connected; a
// single node (with or without a self-loop) is.
func StronglyConnected(adj [][]int) bool {
	if len(adj) == 0 {
		return false
	}
	_, ncomp := SCC(adj)
	return ncomp == 1
}
