// Package graph provides the directed-graph algorithms the protocol
// analyses are built on: strongly connected components (Tarjan),
// condensations, bottom components and reachability fixpoints.
//
// Graphs are plain adjacency lists over integer node ids, matching the
// node ids of petri.ReachSet closures.
package graph

// CSR is a directed graph in compressed sparse row form: node v's
// successors are Dst[Off[v]:Off[v+1]]. It is the allocation-free edge
// representation produced by petri.ReachSet closures; NewCSR converts
// plain adjacency lists.
type CSR struct {
	Off []int32 // length NumNodes()+1
	Dst []int32
}

// NewCSR builds a CSR graph from adjacency lists, preserving edge
// order.
func NewCSR(adj [][]int) CSR {
	total := 0
	for _, ws := range adj {
		total += len(ws)
	}
	g := CSR{
		Off: make([]int32, len(adj)+1),
		Dst: make([]int32, 0, total),
	}
	for v, ws := range adj {
		for _, w := range ws {
			g.Dst = append(g.Dst, int32(w))
		}
		g.Off[v+1] = int32(len(g.Dst))
	}
	return g
}

// NumNodes returns the number of nodes.
func (g CSR) NumNodes() int { return len(g.Off) - 1 }

// Succ returns node v's successor slice (shared, not to be mutated).
func (g CSR) Succ(v int) []int32 { return g.Dst[g.Off[v]:g.Off[v+1]] }

// Reverse returns the reversed graph in CSR form, built with a
// counting sort — two passes over the edge array, no per-node slices.
func (g CSR) Reverse() CSR {
	n := g.NumNodes()
	r := CSR{
		Off: make([]int32, n+1),
		Dst: make([]int32, len(g.Dst)),
	}
	for _, w := range g.Dst {
		r.Off[w+1]++
	}
	for v := 0; v < n; v++ {
		r.Off[v+1] += r.Off[v]
	}
	next := make([]int32, n)
	copy(next, r.Off[:n])
	for v := 0; v < n; v++ {
		for _, w := range g.Succ(v) {
			r.Dst[next[w]] = int32(v)
			next[w]++
		}
	}
	return r
}

// SCC computes the strongly connected components of the graph given as
// adjacency lists. It is SCCOf over NewCSR(adj); see SCCOf for the
// component-numbering contract.
func SCC(adj [][]int) (comp []int, ncomp int) {
	return SCCOf(NewCSR(adj))
}

// SCCOf computes the strongly connected components of a CSR graph,
// using Tarjan's algorithm (iterative, so deep graphs cannot overflow
// the goroutine stack).
//
// It returns the component id of every node and the number of
// components. Component ids are in reverse topological order: if there
// is an edge from a node in component x to a node in component y with
// x ≠ y, then x > y. Consequently component 0 is always a "bottom"
// (sink) component of the condensation.
func SCCOf(g CSR) (comp []int, ncomp int) {
	n := g.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	// Iterative Tarjan: frame.ei is the next edge of frame.v to explore.
	type frame struct {
		v  int
		ei int
	}
	var frames []frame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if succ := g.Succ(f.v); f.ei < len(succ) {
				w := int(succ[f.ei])
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// All edges of f.v explored: pop.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// Condense builds the condensation graph: one node per component, edges
// between distinct components, deduplicated. Component ids follow SCC's
// numbering.
func Condense(adj [][]int, comp []int, ncomp int) [][]int {
	return CondenseCSR(NewCSR(adj), comp, ncomp)
}

// CondenseCSR is Condense over a CSR graph.
func CondenseCSR(g CSR, comp []int, ncomp int) [][]int {
	out := make([][]int, ncomp)
	seen := make(map[[2]int]bool)
	for v := 0; v < g.NumNodes(); v++ {
		a := comp[v]
		for _, w := range g.Succ(v) {
			b := comp[w]
			if a == b {
				continue
			}
			key := [2]int{a, b}
			if !seen[key] {
				seen[key] = true
				out[a] = append(out[a], b)
			}
		}
	}
	return out
}

// BottomComponents returns the component ids that have no outgoing edge
// in the condensation: the bottom (sink) SCCs. A node in a bottom SCC
// can reach exactly its own component.
func BottomComponents(cond [][]int) []int {
	var out []int
	for c, succ := range cond {
		if len(succ) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// Members returns, for each component, the list of node ids it contains.
func Members(comp []int, ncomp int) [][]int {
	out := make([][]int, ncomp)
	for v, c := range comp {
		out[c] = append(out[c], v)
	}
	return out
}

// CanReach computes, for every node, whether some node in the target set
// is reachable (including trivially, when the node itself is a target).
// It runs a reverse BFS from the targets. Callers that need several
// passes over the same graph should build the reverse CSR once and use
// ReachableFrom.
func CanReach(adj [][]int, targets []int) []bool {
	return ReachableFrom(NewCSR(adj).Reverse(), targets, nil)
}

// ReachableFrom computes, for every node, whether it is reachable from
// some source by a forward BFS over g. reach, when non-nil, is used as
// the result buffer (cleared first) so repeated passes over one graph
// allocate nothing beyond the queue.
func ReachableFrom(g CSR, sources []int, reach []bool) []bool {
	n := g.NumNodes()
	if cap(reach) >= n {
		reach = reach[:n]
		for i := range reach {
			reach[i] = false
		}
	} else {
		reach = make([]bool, n)
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if !reach[s] {
			reach[s] = true
			queue = append(queue, int32(s))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Succ(int(v)) {
			if !reach[w] {
				reach[w] = true
				queue = append(queue, w)
			}
		}
	}
	return reach
}

// Reverse returns the reversed adjacency lists.
func Reverse(adj [][]int) [][]int {
	out := make([][]int, len(adj))
	for v, ws := range adj {
		for _, w := range ws {
			out[w] = append(out[w], v)
		}
	}
	return out
}

// StronglyConnected reports whether the whole graph is one strongly
// connected component. The empty graph is not strongly connected; a
// single node (with or without a self-loop) is.
func StronglyConnected(adj [][]int) bool {
	if len(adj) == 0 {
		return false
	}
	_, ncomp := SCC(adj)
	return ncomp == 1
}
