package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSCCLinear(t *testing.T) {
	// 0 -> 1 -> 2, three singleton components.
	adj := [][]int{{1}, {2}, nil}
	comp, ncomp := SCC(adj)
	if ncomp != 3 {
		t.Fatalf("ncomp = %d, want 3", ncomp)
	}
	// Reverse topological order: edge source component id > target's.
	if !(comp[0] > comp[1] && comp[1] > comp[2]) {
		t.Errorf("comp order = %v, want reverse topological", comp)
	}
}

func TestSCCCycle(t *testing.T) {
	// 0 <-> 1, 2 alone reachable from the cycle.
	adj := [][]int{{1}, {0, 2}, nil}
	comp, ncomp := SCC(adj)
	if ncomp != 2 {
		t.Fatalf("ncomp = %d, want 2", ncomp)
	}
	if comp[0] != comp[1] {
		t.Error("cycle nodes in different components")
	}
	if comp[2] == comp[0] {
		t.Error("node 2 merged into cycle")
	}
}

func TestSCCSelfLoopAndIsolated(t *testing.T) {
	adj := [][]int{{0}, nil}
	comp, ncomp := SCC(adj)
	if ncomp != 2 || comp[0] == comp[1] {
		t.Errorf("comp = %v ncomp = %d", comp, ncomp)
	}
}

func TestCondenseAndBottom(t *testing.T) {
	// Two cycles {0,1} -> {2,3}; bottom is {2,3}.
	adj := [][]int{{1}, {0, 2}, {3}, {2}}
	comp, ncomp := SCC(adj)
	cond := Condense(adj, comp, ncomp)
	bottoms := BottomComponents(cond)
	if len(bottoms) != 1 {
		t.Fatalf("bottoms = %v, want one", bottoms)
	}
	if bottoms[0] != comp[2] {
		t.Errorf("bottom = %d, want component of node 2 (%d)", bottoms[0], comp[2])
	}
	members := Members(comp, ncomp)
	got := members[comp[2]]
	sort.Ints(got)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("bottom members = %v, want [2 3]", got)
	}
}

func TestCanReach(t *testing.T) {
	// 0 -> 1 -> 2; 3 isolated.
	adj := [][]int{{1}, {2}, nil, nil}
	reach := CanReach(adj, []int{2})
	want := []bool{true, true, true, false}
	for i, w := range want {
		if reach[i] != w {
			t.Errorf("reach[%d] = %v, want %v", i, reach[i], w)
		}
	}
}

func TestStronglyConnected(t *testing.T) {
	if !StronglyConnected([][]int{{1}, {0}}) {
		t.Error("2-cycle not strongly connected")
	}
	if StronglyConnected([][]int{{1}, nil}) {
		t.Error("path reported strongly connected")
	}
	if StronglyConnected(nil) {
		t.Error("empty graph reported strongly connected")
	}
	if !StronglyConnected([][]int{nil}) {
		t.Error("single node not strongly connected")
	}
}

// Cross-check Tarjan against a brute-force mutual-reachability SCC on
// random graphs.
func TestSCCRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		adj := make([][]int, n)
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if rng.Float64() < 0.2 {
					adj[v] = append(adj[v], w)
				}
			}
		}
		comp, _ := SCC(adj)

		// Brute force: Floyd-Warshall style reachability.
		reach := make([][]bool, n)
		for v := range reach {
			reach[v] = make([]bool, n)
			reach[v][v] = true
			for _, w := range adj[v] {
				reach[v][w] = true
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				same := comp[i] == comp[j]
				mutual := reach[i][j] && reach[j][i]
				if same != mutual {
					t.Fatalf("trial %d: nodes %d,%d: same-comp=%v mutual=%v", trial, i, j, same, mutual)
				}
			}
		}
	}
}

// The reverse-topological numbering property on random DAG-ish graphs.
func TestSCCTopologicalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(15)
		adj := make([][]int, n)
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if rng.Float64() < 0.15 {
					adj[v] = append(adj[v], w)
				}
			}
		}
		comp, _ := SCC(adj)
		for v, ws := range adj {
			for _, w := range ws {
				if comp[v] != comp[w] && comp[v] < comp[w] {
					t.Fatalf("trial %d: edge %d->%d violates ordering (%d < %d)", trial, v, w, comp[v], comp[w])
				}
			}
		}
	}
}

func TestReverse(t *testing.T) {
	adj := [][]int{{1, 2}, {2}, nil}
	r := Reverse(adj)
	if len(r[2]) != 2 || len(r[1]) != 1 || len(r[0]) != 0 {
		t.Errorf("Reverse = %v", r)
	}
}

func TestCSRRoundTrip(t *testing.T) {
	adj := [][]int{{1, 2}, {2}, {0, 2}, {}}
	g := NewCSR(adj)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	for v, ws := range adj {
		succ := g.Succ(v)
		if len(succ) != len(ws) {
			t.Fatalf("Succ(%d) = %v, want %v", v, succ, ws)
		}
		for i, w := range ws {
			if int(succ[i]) != w {
				t.Fatalf("Succ(%d)[%d] = %d, want %d", v, i, succ[i], w)
			}
		}
	}
}

func TestCSRReverseMatchesReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		adj := make([][]int, n)
		for v := range adj {
			for w := 0; w < n; w++ {
				if rng.Intn(3) == 0 {
					adj[v] = append(adj[v], w)
				}
			}
		}
		want := Reverse(adj)
		got := NewCSR(adj).Reverse()
		for v := 0; v < n; v++ {
			succ := got.Succ(v)
			if len(succ) != len(want[v]) {
				t.Fatalf("reverse Succ(%d) = %v, want %v", v, succ, want[v])
			}
			// Reverse (adjacency) emits sources in increasing v order,
			// which is exactly the counting-sort order of CSR.Reverse.
			for i := range succ {
				if int(succ[i]) != want[v][i] {
					t.Fatalf("reverse Succ(%d) = %v, want %v", v, succ, want[v])
				}
			}
		}
	}
}

func TestReachableFromMatchesCanReach(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []bool
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		adj := make([][]int, n)
		for v := range adj {
			for w := 0; w < n; w++ {
				if rng.Intn(3) == 0 {
					adj[v] = append(adj[v], w)
				}
			}
		}
		var targets []int
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				targets = append(targets, v)
			}
		}
		want := CanReach(adj, targets)
		buf = ReachableFrom(NewCSR(adj).Reverse(), targets, buf) // reused buffer
		for v := range want {
			if want[v] != buf[v] {
				t.Fatalf("node %d: CanReach=%v ReachableFrom=%v", v, want[v], buf[v])
			}
		}
	}
}
