package bounds

import (
	"fmt"
	"math"
	"math/big"
)

// Rackoff returns Lemma 5.3's covering-word length bound
// (‖ρ‖∞ + ‖T‖∞)^(|P|^|P|) for a d-state net: the shortest word covering
// ρ (when one exists) is no longer than this.
func Rackoff(d int, normTarget, normNet int64) Magnitude {
	base := normTarget + normNet
	exp := new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt(int64(d)), nil)
	return Pow(base, exp)
}

// StabilizationH returns Lemma 5.4's threshold
// h = ‖T‖∞ · (1 + ‖T‖∞)^(|P|^|P|): configurations agreeing with a
// stabilized ρ on the states below h are stabilized too.
func StabilizationH(d int, normNet int64) Magnitude {
	exp := new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt(int64(d)), nil)
	return Pow(1+normNet, exp).MulInt(normNet)
}

// Theorem61B returns Theorem 6.1's bound
// b = (4 + 4‖T‖∞ + 2‖ρ‖∞)^(D·(1 + (2+D)^(d+1))) with D = d^d:
// the bottom-configuration certificate's word lengths, ‖α‖∞·d, ‖β‖∞·d
// and component size are all at most b.
func Theorem61B(d int, normNet, normRho int64) Magnitude {
	if d == 0 {
		return FromInt(1)
	}
	base := 4 + 4*normNet + 2*normRho
	bigD := new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt(int64(d)), nil)
	inner := new(big.Int).Add(big.NewInt(2), bigD) // 2 + d^d
	inner.Exp(inner, big.NewInt(int64(d)+1), nil)  // (2+d^d)^(d+1)
	exp := new(big.Int).Add(big.NewInt(1), inner)  // 1 + …
	exp.Mul(exp, bigD)                             // d^d·(1 + …)
	return Pow(base, exp)
}

// Lemma62Length returns Lemma 6.2's word-length bound
// (1 + d·(1 + s‖T‖∞ + ‖ρ‖∞)^(d^d))·s where d = |P∖Q| and s is the
// cardinal of the T|Q-component.
func Lemma62Length(d int, s, normNet, normRho int64) Magnitude {
	if d == 0 {
		return FromInt(s)
	}
	base := 1 + s*normNet + normRho
	exp := new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt(int64(d)), nil)
	inner := Pow(base, exp).MulInt(int64(d))
	if e, ok := inner.Exact(); ok {
		out := new(big.Int).Add(big.NewInt(1), e)
		out.Mul(out, big.NewInt(s))
		if bigLog10(out) <= MaxExactDigits {
			return FromBig(out)
		}
		return FromLog10(bigLog10(out))
	}
	return inner.MulInt(s)
}

// Lemma72CycleLength returns Lemma 7.2's total-cycle length bound
// |E|·|S| for a strongly connected Petri net with control-states.
func Lemma72CycleLength(edges, states int) int64 {
	return int64(edges) * int64(states)
}

// Pottier returns the bound of Pottier's theorem as used in Lemma 7.3:
// every minimal solution (α, β) of the linear system (1) satisfies
// ‖α‖₁ + ‖β‖₁ ≤ (2 + Σ_a ‖a‖∞)^d.
func Pottier(d int, sumNormInf int64) Magnitude {
	return PowInt(2+sumNormInf, int64(d))
}

// Lemma73MulticycleLength returns Lemma 7.3's bound on the replacement
// multicycle: |Θ'| ≤ (|E| + d)·(1 + 2|S|‖T‖∞)^(d(d+1)).
func Lemma73MulticycleLength(d, edges int, states int64, normNet int64) Magnitude {
	return PowInt(1+2*states*normNet, int64(d)*(int64(d)+1)).MulInt(int64(edges) + int64(d))
}

// Section8 holds the cascade of quantities defined at the start of
// Section 8, all driven by d = |P|, ‖T‖∞ and ‖ρ_L‖∞.
type Section8 struct {
	D       int
	NormNet int64
	NormL   int64

	B Magnitude // b: Theorem 6.1 bound on P' = P∖I (d−1 states)
	H Magnitude // h = d(1+‖T‖∞)·b
	K Magnitude // k = d·h^(d²+d+1)
	A Magnitude // a = h^(2d+3)
	L Magnitude // ℓ = h^(5d²)
	N Magnitude // final bound: n ≤ h^(5d²+2d+4)
}

// NewSection8 evaluates the cascade. d must be ≥ 2 (the paper handles
// d ≤ 1 separately: a 1-state protocol only computes i ≥ 1).
func NewSection8(d int, normNet, normL int64) (*Section8, error) {
	if d < 2 {
		return nil, fmt.Errorf("bounds: Section 8 cascade needs d ≥ 2, got %d", d)
	}
	s := &Section8{D: d, NormNet: normNet, NormL: normL}

	// b = (4+4‖T‖∞+2‖ρL‖∞)^((d−1)^(d−1)·(1+(2+(d−1)^(d−1))^d))
	dm1 := int64(d - 1)
	bigD := new(big.Int).Exp(big.NewInt(dm1), big.NewInt(dm1), nil)
	inner := new(big.Int).Add(big.NewInt(2), bigD)
	inner.Exp(inner, big.NewInt(int64(d)), nil)
	exp := new(big.Int).Add(big.NewInt(1), inner)
	exp.Mul(exp, bigD)
	s.B = Pow(4+4*normNet+2*normL, exp)

	// h = d(1+‖T‖∞)·b
	s.H = s.B.MulInt(int64(d) * (1 + normNet))

	// The remaining quantities are h to various polynomial powers.
	hPow := func(e int64) Magnitude {
		if exact, ok := s.H.Exact(); ok {
			return PowMagBase(exact, e)
		}
		return FromLog10(s.H.Log10() * float64(e))
	}
	dd := int64(d)
	s.K = hPow(dd*dd + dd + 1).MulInt(dd)
	s.A = hPow(2*dd + 3)
	s.L = hPow(5 * dd * dd)
	s.N = hPow(5*dd*dd + 2*dd + 4)
	return s, nil
}

// PowMagBase raises an exact big base to an int64 power, degrading to
// log10 when too large.
func PowMagBase(base *big.Int, e int64) Magnitude {
	logResult := bigLog10(base) * float64(e)
	if logResult <= MaxExactDigits {
		return FromBig(new(big.Int).Exp(base, big.NewInt(e), nil))
	}
	return FromLog10(logResult)
}

// Theorem43MaxN returns the headline bound of Theorem 4.3: every
// protocol with d states, interaction-width w and leader count L that
// stably computes (i ≥ n) satisfies
//
//	n ≤ (4 + 4w + 2L)^(d^((d+2)²)).
//
// (The exponent is d to the power (d+2)², as the Corollary 4.4 proof
// makes explicit via d^((d+2)²) ≤ 2^((d+2)^(2+ε)).)
func Theorem43MaxN(d int, width, leaders int64) Magnitude {
	exp := new(big.Int).Exp(big.NewInt(int64(d)), big.NewInt((int64(d)+2)*(int64(d)+2)), nil)
	return Pow(4+4*width+2*leaders, exp)
}

// MinStatesTheorem43 returns the least d for which Theorem 4.3 permits
// deciding (i ≥ n), given log10(n) and the width/leader bound m: the
// state-complexity lower bound implied by the theorem, exact rather
// than asymptotic. It uses the tight base 4+4m+2m.
func MinStatesTheorem43(log10N float64, m int64) int {
	if log10N <= 0 {
		return 1
	}
	base := float64(4 + 6*m)
	logNeed := math.Log10(log10N / math.Log10(base)) // want (d+2)²·log10(d) ≥ this
	for d := 1; ; d++ {
		lhs := float64(d+2) * float64(d+2) * math.Log10(float64(d))
		if lhs >= logNeed-1e-9 {
			return d
		}
	}
}

// Corollary44LowerBound returns the asymptotic lower bound of
// Corollary 4.4 evaluated concretely:
//
//	states ≥ ((log log n − log log 10m) / log 2)^h − 2
//
// with all logarithms base 2 and n given as log2(n). Inputs where the
// inner difference is non-positive yield 0 (the bound is vacuous there).
func Corollary44LowerBound(log2N float64, h float64, m int64) float64 {
	if log2N <= 1 {
		return 0
	}
	loglogN := math.Log2(log2N)
	loglog10m := math.Log2(math.Log2(float64(10 * m)))
	diff := loglogN - loglog10m
	if diff <= 0 {
		return 0
	}
	v := math.Pow(diff, h) - 2
	if v < 0 {
		return 0
	}
	return v
}

// BEJUpperBoundStates returns the O(log log n) upper-bound shape of
// Blondin–Esparza–Jaax for the tower values n = 2^(2^k): c·k + c0
// states. The constants match the counting.NewTower construction so E3
// can plot both curves from one place.
func BEJUpperBoundStates(k int, perLevel, constant int) int {
	return perLevel*k + constant
}
