// Package bounds evaluates every quantitative bound of Leroux (PODC
// 2022) exactly (math/big) where feasible and in log10 form always:
// Rackoff's coverability bound (Lemma 5.3), the stabilization threshold
// (Lemma 5.4), the bottom-configuration bound b (Theorem 6.1), the
// small-cycle bounds (Lemmas 7.2, 7.3), the Section 8 cascade
// (b, h, k, a, ℓ, r) and the headline Theorem 4.3 / Corollary 4.4
// bounds.
//
// The right-hand sides overflow float64 and even practical big.Int
// sizes quickly — Theorem 4.3's bound for |P| = 10 has ~10³ digits, and
// Rackoff's bound for |P| = 10 has ~10¹⁰ digits — so the package
// represents every quantity as a Magnitude: an always-available log10
// plus an exact big.Int when it fits.
package bounds

import (
	"fmt"
	"math"
	"math/big"
)

// MaxExactDigits is the largest decimal size for which Magnitudes carry
// exact big.Int values.
const MaxExactDigits = 100_000

// Magnitude is a non-negative quantity that may be too large to
// materialize. Log10 is always valid; Exact is present only when the
// value has at most MaxExactDigits decimal digits.
type Magnitude struct {
	log10 float64
	exact *big.Int
}

// FromInt builds an exact magnitude from a non-negative int64.
func FromInt(n int64) Magnitude {
	if n < 0 {
		panic(fmt.Sprintf("bounds: negative magnitude %d", n))
	}
	return FromBig(big.NewInt(n))
}

// FromBig builds an exact magnitude from a non-negative big.Int.
func FromBig(n *big.Int) Magnitude {
	if n.Sign() < 0 {
		panic("bounds: negative magnitude")
	}
	return Magnitude{log10: bigLog10(n), exact: new(big.Int).Set(n)}
}

// FromLog10 builds an inexact magnitude from its decimal logarithm.
func FromLog10(l float64) Magnitude {
	return Magnitude{log10: l}
}

// fromBigOwned is FromBig for freshly computed values whose ownership
// the caller cedes: it skips the defensive copy, which matters for the
// ~10⁵-digit exact bounds.
func fromBigOwned(n *big.Int) Magnitude {
	if n.Sign() < 0 {
		panic("bounds: negative magnitude")
	}
	return Magnitude{log10: bigLog10(n), exact: n}
}

// Log10 returns log10 of the value (−Inf for zero).
func (m Magnitude) Log10() float64 { return m.log10 }

// Exact returns the exact value if it is materialized.
func (m Magnitude) Exact() (*big.Int, bool) {
	if m.exact == nil {
		return nil, false
	}
	return new(big.Int).Set(m.exact), true
}

// IsExact reports whether the magnitude carries an exact value.
func (m Magnitude) IsExact() bool { return m.exact != nil }

// Digits returns the number of decimal digits (1 for zero).
func (m Magnitude) Digits() float64 {
	if m.exact != nil && m.exact.Sign() == 0 {
		return 1
	}
	return math.Floor(m.log10) + 1
}

// Cmp compares the magnitude with a big.Int: −1, 0, +1. For inexact
// magnitudes the comparison uses log10 and is reliable away from
// equality (the use case: astronomically separated bounds).
func (m Magnitude) Cmp(n *big.Int) int {
	if m.exact != nil {
		return m.exact.Cmp(n)
	}
	nl := bigLog10(n)
	switch {
	case m.log10 < nl:
		return -1
	case m.log10 > nl:
		return 1
	default:
		return 0
	}
}

// GeqInt reports m ≥ n for an int64 n.
func (m Magnitude) GeqInt(n int64) bool { return m.Cmp(big.NewInt(n)) >= 0 }

// String renders the exact value when small, else "~1e<log10>".
func (m Magnitude) String() string {
	if m.exact != nil {
		if m.exact.BitLen() <= 64 {
			return m.exact.String()
		}
		return fmt.Sprintf("%s (~1e%.0f)", shortBig(m.exact), m.log10)
	}
	return fmt.Sprintf("~1e%.3g", m.log10)
}

// Pow returns base^exp as a Magnitude: exact when the result is small
// enough, log10 otherwise. base must be ≥ 0 and exp ≥ 0.
func Pow(base int64, exp *big.Int) Magnitude {
	if base < 0 || exp.Sign() < 0 {
		panic("bounds: negative base or exponent")
	}
	if base == 0 {
		if exp.Sign() == 0 {
			return FromInt(1)
		}
		return FromInt(0)
	}
	logResult := float64FromBig(exp) * math.Log10(float64(base))
	if logResult <= MaxExactDigits && exp.IsInt64() {
		return fromBigOwned(new(big.Int).Exp(big.NewInt(base), exp, nil))
	}
	return FromLog10(logResult)
}

// PowInt is Pow with an int64 exponent.
func PowInt(base, exp int64) Magnitude { return Pow(base, big.NewInt(exp)) }

// PowMag returns base^exp where the exponent itself is a Magnitude.
func PowMag(base int64, exp Magnitude) Magnitude {
	if e, ok := exp.Exact(); ok {
		return Pow(base, e)
	}
	if base <= 0 {
		panic("bounds: inexact exponent requires positive base")
	}
	// log10(base^exp) = exp·log10(base); exp itself is only known by its
	// log, so the result's log10 is 10^exp.log10 · log10(base), which
	// can overflow float64 — saturate at +Inf, which is fine for
	// comparisons against anything finite.
	return FromLog10(math.Pow(10, exp.log10) * math.Log10(float64(base)))
}

// MulInt returns m·n for a non-negative int64.
func (m Magnitude) MulInt(n int64) Magnitude {
	if n < 0 {
		panic("bounds: negative multiplier")
	}
	if m.exact != nil {
		prod := new(big.Int).Mul(m.exact, big.NewInt(n))
		if bigLog10(prod) <= MaxExactDigits {
			return FromBig(prod)
		}
		return FromLog10(bigLog10(prod))
	}
	if n == 0 {
		return FromInt(0)
	}
	return FromLog10(m.log10 + math.Log10(float64(n)))
}

// bigLog10 approximates log10 of a non-negative big.Int (−Inf for 0).
func bigLog10(n *big.Int) float64 {
	if n.Sign() == 0 {
		return math.Inf(-1)
	}
	// Use the bit length for scale and a float prefix for precision.
	f, _ := new(big.Float).SetInt(n).Float64()
	if !math.IsInf(f, 1) {
		return math.Log10(f)
	}
	bits := n.BitLen()
	// Take the top 52 bits as a float mantissa.
	shifted := new(big.Int).Rsh(n, uint(bits-52))
	mf, _ := new(big.Float).SetInt(shifted).Float64()
	return math.Log10(mf) + float64(bits-52)*math.Log10(2)
}

// float64FromBig converts saturating to +Inf.
func float64FromBig(n *big.Int) float64 {
	f, _ := new(big.Float).SetInt(n).Float64()
	return f
}

// shortBig renders a non-negative big.Int as its full decimal form when
// short, else as "<first 10>...<last 6> (<digits> digits)".
//
// Large values never run big.Int.String: the full decimal conversion of
// a ~10⁵-digit Theorem 4.3 bound dominated E2's cost. Instead the head
// is the quotient by 10^(digits−10) (one division whose quotient is
// tiny), the tail is one small modulus, and the digit count is taken
// from the float log10 estimate and corrected exactly by the head's
// range — so the rendering is identical to slicing the full string.
func shortBig(n *big.Int) string {
	if n.BitLen() <= 128 { // ≤ 39 digits: full conversion is cheap
		s := n.String()
		if len(s) <= 24 {
			return s
		}
		return s[:10] + "..." + s[len(s)-6:] + fmt.Sprintf(" (%d digits)", len(s))
	}
	digits := int(math.Floor(bigLog10(n))) + 1
	pow := new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(digits-10)), nil)
	head := new(big.Int).Quo(n, pow)
	// The estimate can be off by one near powers of ten; the head's
	// range pins the exact digit count.
	switch {
	case head.Cmp(tenPow9) < 0: // digits overestimated
		digits--
		pow.Quo(pow, big.NewInt(10))
		head.Quo(n, pow)
	case head.Cmp(tenPow10) >= 0: // digits underestimated
		digits++
		head.Quo(head, big.NewInt(10))
	}
	tail := new(big.Int).Mod(n, tenPow6)
	return fmt.Sprintf("%d...%06d (%d digits)", head.Int64(), tail.Int64(), digits)
}

var (
	tenPow6  = big.NewInt(1_000_000)
	tenPow9  = big.NewInt(1_000_000_000)
	tenPow10 = big.NewInt(10_000_000_000)
)
