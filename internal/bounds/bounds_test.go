package bounds

import (
	"fmt"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMagnitudeExactSmall(t *testing.T) {
	m := FromInt(1000)
	if got := m.Log10(); math.Abs(got-3) > 1e-9 {
		t.Errorf("Log10(1000) = %v, want 3", got)
	}
	e, ok := m.Exact()
	if !ok || e.Int64() != 1000 {
		t.Errorf("Exact = %v, %v", e, ok)
	}
	if m.String() != "1000" {
		t.Errorf("String = %q", m.String())
	}
}

func TestMagnitudeExactIsCopy(t *testing.T) {
	m := FromInt(7)
	e, _ := m.Exact()
	e.SetInt64(99)
	e2, _ := m.Exact()
	if e2.Int64() != 7 {
		t.Error("Exact exposed internal big.Int")
	}
}

func TestPowExactAndInexact(t *testing.T) {
	m := PowInt(2, 10)
	if e, ok := m.Exact(); !ok || e.Int64() != 1024 {
		t.Fatalf("2^10 = %v", m)
	}
	// 10^(10^7) has 10^7 digits: within MaxExactDigits? 10^7 > 10^5, so
	// inexact.
	huge := Pow(10, big.NewInt(10_000_000))
	if huge.IsExact() {
		t.Error("10^10^7 materialized exactly")
	}
	if math.Abs(huge.Log10()-1e7) > 1 {
		t.Errorf("log10 = %v, want 1e7", huge.Log10())
	}
}

func TestPowEdgeCases(t *testing.T) {
	if m := Pow(0, big.NewInt(0)); !m.GeqInt(1) || m.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("0^0 = %v, want 1", m)
	}
	if m := Pow(0, big.NewInt(5)); m.Cmp(big.NewInt(0)) != 0 {
		t.Errorf("0^5 = %v, want 0", m)
	}
	if m := Pow(7, big.NewInt(0)); m.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("7^0 = %v, want 1", m)
	}
}

func TestMulInt(t *testing.T) {
	m := FromInt(6).MulInt(7)
	if e, ok := m.Exact(); !ok || e.Int64() != 42 {
		t.Fatalf("6·7 = %v", m)
	}
	z := FromLog10(100).MulInt(0)
	if z.Cmp(big.NewInt(0)) != 0 {
		t.Errorf("x·0 = %v, want 0", z)
	}
	big10 := FromLog10(300).MulInt(10)
	if math.Abs(big10.Log10()-301) > 1e-9 {
		t.Errorf("log10 = %v, want 301", big10.Log10())
	}
}

func TestCmp(t *testing.T) {
	m := FromInt(100)
	if m.Cmp(big.NewInt(99)) != 1 || m.Cmp(big.NewInt(100)) != 0 || m.Cmp(big.NewInt(101)) != -1 {
		t.Error("exact Cmp wrong")
	}
	inexact := FromLog10(50)
	if inexact.Cmp(big.NewInt(1000)) != 1 {
		t.Error("inexact Cmp wrong for large gap")
	}
}

// Property: Pow agrees with big.Int exponentiation on small inputs.
func TestQuickPowMatchesBig(t *testing.T) {
	f := func(b, e uint8) bool {
		base := int64(b%20) + 1
		exp := int64(e % 40)
		m := PowInt(base, exp)
		want := new(big.Int).Exp(big.NewInt(base), big.NewInt(exp), nil)
		return m.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRackoff(t *testing.T) {
	// d=2, ‖ρ‖∞=1, ‖T‖∞=1: (1+1)^(2^2) = 16.
	m := Rackoff(2, 1, 1)
	if m.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("Rackoff = %v, want 16", m)
	}
	// d=10 is astronomically large but must still produce a log10.
	big10 := Rackoff(10, 1, 1)
	if big10.Log10() < 1e9 {
		t.Errorf("Rackoff(10) log10 = %v, want ≥ 1e9", big10.Log10())
	}
}

func TestStabilizationH(t *testing.T) {
	// d=2, ‖T‖∞=1: 1·(1+1)^(2^2) = 16.
	m := StabilizationH(2, 1)
	if m.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("StabilizationH = %v, want 16", m)
	}
	// Monotone in d.
	if StabilizationH(3, 1).Log10() <= m.Log10() {
		t.Error("StabilizationH not monotone in d")
	}
}

func TestTheorem61B(t *testing.T) {
	// d=1: D=1, exponent 1·(1+(2+1)^2) = 10; base 4+4+2 = 10 with
	// normNet=normRho=1: 10^10.
	m := Theorem61B(1, 1, 1)
	want := new(big.Int).Exp(big.NewInt(10), big.NewInt(10), nil)
	if m.Cmp(want) != 0 {
		t.Errorf("Theorem61B(1,1,1) = %v, want 10^10", m)
	}
	if Theorem61B(0, 5, 5).Cmp(big.NewInt(1)) != 0 {
		t.Error("d=0 should be trivial")
	}
	// Monotonicity in every argument.
	base := Theorem61B(2, 1, 1).Log10()
	if Theorem61B(3, 1, 1).Log10() <= base ||
		Theorem61B(2, 2, 1).Log10() <= base ||
		Theorem61B(2, 1, 2).Log10() <= base {
		t.Error("Theorem61B not monotone")
	}
}

func TestLemma62Length(t *testing.T) {
	// d=0: bound is s itself.
	if m := Lemma62Length(0, 7, 1, 1); m.Cmp(big.NewInt(7)) != 0 {
		t.Errorf("Lemma62Length(d=0) = %v, want 7", m)
	}
	// d=1, s=1, ‖T‖∞=1, ‖ρ‖∞=1: (1 + 1·(1+1+1)^1)·1 = 4.
	if m := Lemma62Length(1, 1, 1, 1); m.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("Lemma62Length = %v, want 4", m)
	}
}

func TestLemma72(t *testing.T) {
	if got := Lemma72CycleLength(6, 4); got != 24 {
		t.Errorf("Lemma72CycleLength = %d, want 24", got)
	}
}

func TestPottier(t *testing.T) {
	// d=3, Σ‖a‖∞ = 4: 6^3 = 216.
	if m := Pottier(3, 4); m.Cmp(big.NewInt(216)) != 0 {
		t.Errorf("Pottier = %v, want 216", m)
	}
}

func TestLemma73(t *testing.T) {
	// d=1, |E|=2, |S|=1, ‖T‖∞=1: (2+1)·(1+2)^(1·2) = 27.
	if m := Lemma73MulticycleLength(1, 2, 1, 1); m.Cmp(big.NewInt(27)) != 0 {
		t.Errorf("Lemma73MulticycleLength = %v, want 27", m)
	}
}

func TestSection8Cascade(t *testing.T) {
	s, err := NewSection8(2, 1, 1)
	if err != nil {
		t.Fatalf("NewSection8: %v", err)
	}
	// d=2: (d−1)^(d−1)=1, exponent 1·(1+(2+1)^2)=10, base 10: b = 10^10.
	wantB := new(big.Int).Exp(big.NewInt(10), big.NewInt(10), nil)
	if s.B.Cmp(wantB) != 0 {
		t.Errorf("B = %v, want 10^10", s.B)
	}
	// h = d(1+‖T‖∞)b = 4·10^10.
	wantH := new(big.Int).Mul(big.NewInt(4), wantB)
	if s.H.Cmp(wantH) != 0 {
		t.Errorf("H = %v, want 4·10^10", s.H)
	}
	// The cascade is increasing: h ≤ a ≤ ℓ ≤ n (for d=2: exponents
	// 1 < 7 < 20 < 28).
	if !(s.H.Log10() < s.A.Log10() && s.A.Log10() < s.L.Log10() && s.L.Log10() < s.N.Log10()) {
		t.Errorf("cascade not increasing: h=%v a=%v ℓ=%v n=%v",
			s.H.Log10(), s.A.Log10(), s.L.Log10(), s.N.Log10())
	}
	if _, err := NewSection8(1, 1, 1); err == nil {
		t.Error("d=1 accepted")
	}
}

// The paper's final simplification: the Section 8 bound n ≤ h^(5d²+2d+4)
// is at most the headline (4+4w+2L)^(d(d+2)²) whenever w,L ≥ the norms
// used (the proof shows h ≤ b² and r ≤ d(d+2)²).
func TestSection8ImpliesTheorem43(t *testing.T) {
	for d := 2; d <= 5; d++ {
		s, err := NewSection8(d, 1, 1)
		if err != nil {
			t.Fatalf("NewSection8(%d): %v", d, err)
		}
		headline := Theorem43MaxN(d, 1, 1)
		if s.N.Log10() > headline.Log10() {
			t.Errorf("d=%d: cascade bound 1e%.3g exceeds headline 1e%.3g",
				d, s.N.Log10(), headline.Log10())
		}
	}
}

func TestTheorem43MaxN(t *testing.T) {
	// d=1, w=1, L=0: exponent 1^9 = 1, so the bound is 4+4 = 8.
	m := Theorem43MaxN(1, 1, 0)
	if m.Cmp(big.NewInt(8)) != 0 {
		t.Errorf("Theorem43MaxN = %v, want 8", m)
	}
	// d=2, w=1, L=0: exponent 2^16 = 65536, bound 8^65536.
	m2 := Theorem43MaxN(2, 1, 0)
	wantLog := 65536 * math.Log10(8)
	if math.Abs(m2.Log10()-wantLog) > 1 {
		t.Errorf("Theorem43MaxN(2) log10 = %v, want %v", m2.Log10(), wantLog)
	}
	// Monotone in all arguments.
	base := Theorem43MaxN(3, 2, 2).Log10()
	if Theorem43MaxN(4, 2, 2).Log10() <= base ||
		Theorem43MaxN(3, 3, 2).Log10() <= base ||
		Theorem43MaxN(3, 2, 3).Log10() <= base {
		t.Error("Theorem43MaxN not monotone")
	}
}

func TestMinStatesTheorem43(t *testing.T) {
	// Round-trip: for n exactly at the Theorem 4.3 bound for d states
	// (width = leaders = m, so the bases agree), the minimal admissible
	// state count is exactly d, since d ↦ d^((d+2)²) is strictly
	// increasing.
	for d := 1; d <= 8; d++ {
		m := Theorem43MaxN(d, 2, 2)
		got := MinStatesTheorem43(m.Log10(), 2)
		if got != d {
			t.Errorf("d=%d: MinStates(bound) = %d, want %d", d, got, d)
		}
	}
	if MinStatesTheorem43(0, 2) != 1 {
		t.Error("trivial n should need 1 state")
	}
	// Monotone in n.
	if MinStatesTheorem43(1e6, 2) > MinStatesTheorem43(1e60, 2) {
		t.Error("MinStates not monotone in n")
	}
}

func TestCorollary44LowerBound(t *testing.T) {
	// Grows with n.
	small := Corollary44LowerBound(1<<10, 0.49, 2)
	large := Corollary44LowerBound(math.Pow(2, 40), 0.49, 2)
	if large <= small {
		t.Errorf("lower bound not growing: %v vs %v", small, large)
	}
	// Vacuous for tiny n.
	if Corollary44LowerBound(1, 0.49, 2) != 0 {
		t.Error("tiny n should be vacuous")
	}
	// h < 1/2 beats h' > h asymptotically in the right direction:
	// larger h gives a larger bound for the same n.
	if Corollary44LowerBound(math.Pow(2, 40), 0.3, 2) >= Corollary44LowerBound(math.Pow(2, 40), 0.49, 2) {
		t.Error("exponent ordering violated")
	}
}

func TestBEJUpperBoundStates(t *testing.T) {
	if got := BEJUpperBoundStates(3, 4, 10); got != 22 {
		t.Errorf("BEJUpperBoundStates = %d, want 22", got)
	}
}

func TestPowMagAndPowMagBase(t *testing.T) {
	m := PowMag(2, FromInt(10))
	if m.Cmp(big.NewInt(1024)) != 0 {
		t.Errorf("PowMag = %v, want 1024", m)
	}
	// Inexact exponent: 2^(10^10) → log10 = 10^10·log10(2).
	huge := PowMag(2, FromLog10(10))
	want := 1e10 * math.Log10(2)
	if math.Abs(huge.Log10()-want)/want > 1e-9 {
		t.Errorf("PowMag log10 = %v, want %v", huge.Log10(), want)
	}
	pmb := PowMagBase(big.NewInt(3), 4)
	if pmb.Cmp(big.NewInt(81)) != 0 {
		t.Errorf("PowMagBase = %v, want 81", pmb)
	}
}

func TestBigLog10LargeInt(t *testing.T) {
	// 2^2000 exceeds float64 range; bigLog10 must still be accurate.
	n := new(big.Int).Exp(big.NewInt(2), big.NewInt(2000), nil)
	got := bigLog10(n)
	want := 2000 * math.Log10(2)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("bigLog10(2^2000) = %v, want %v", got, want)
	}
}

func TestDigits(t *testing.T) {
	if FromInt(999).Digits() != 3 {
		t.Errorf("Digits(999) = %v", FromInt(999).Digits())
	}
	if FromInt(0).Digits() != 1 {
		t.Errorf("Digits(0) = %v", FromInt(0).Digits())
	}
}

// refShortBig is the slicing-based reference shortBig replaced by the
// division-based fast path: the two must render identically.
func refShortBig(n *big.Int) string {
	s := n.String()
	if len(s) <= 24 {
		return s
	}
	return s[:10] + "..." + s[len(s)-6:] + fmt.Sprintf(" (%d digits)", len(s))
}

func TestShortBigMatchesReference(t *testing.T) {
	cases := []*big.Int{
		big.NewInt(0),
		big.NewInt(123456789),
		new(big.Int).Exp(big.NewInt(10), big.NewInt(24), nil), // 25 digits
		new(big.Int).Exp(big.NewInt(10), big.NewInt(38), nil),
		new(big.Int).Exp(big.NewInt(10), big.NewInt(39), nil),
		new(big.Int).Sub(new(big.Int).Exp(big.NewInt(10), big.NewInt(60), nil), big.NewInt(1)),
		new(big.Int).Exp(big.NewInt(10), big.NewInt(1000), nil),  // power of ten: log10 edge
		new(big.Int).Exp(big.NewInt(12), big.NewInt(65536), nil), // the E2 d=2 bound
		new(big.Int).Exp(big.NewInt(7), big.NewInt(12345), nil),
	}
	for _, n := range cases {
		if got, want := shortBig(n), refShortBig(n); got != want {
			t.Errorf("shortBig(%s digits=%d):\n got  %s\n want %s",
				n.String()[:10], len(n.String()), got, want)
		}
	}
	// Randomized cross-check across the digit-count boundary region.
	rnd := big.NewInt(0xDEADBEEF)
	x := big.NewInt(3)
	for i := 0; i < 200; i++ {
		x = new(big.Int).Mul(x, big.NewInt(999999937))
		x.Add(x, rnd)
		if got, want := shortBig(x), refShortBig(x); got != want {
			t.Fatalf("random case %d: got %s want %s", i, got, want)
		}
	}
}
