package sim

import "math/bits"

// splitmixGamma is the splitmix64 stream increment (the golden gamma).
const splitmixGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output finalizer: the single source of the
// mixing constants shared by the RNG stream and seed derivation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is the simulator's seed-deterministic PRNG: a splitmix64 stream.
// Unlike math/rand's lagged-Fibonacci source, seeding is O(1) — which
// matters because RunMany gives every trial its own derived seed, so
// with short runs source construction would otherwise dominate (it was
// ~28% of simulation CPU under math/rand).
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{s: uint64(seed)} }

// Seed resets the generator to the given seed.
func (r *RNG) Seed(seed int64) { r.s = uint64(seed) }

// Uint64 returns the next 64 uniform bits.
func (r *RNG) Uint64() uint64 {
	r.s += splitmixGamma
	return mix64(r.s)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform int64 in [0, n) for n > 0 via Lemire's
// multiply-shift reduction (bias < 2⁻⁴⁰ for the population sizes the
// simulator targets, far below sampling noise).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int64(hi)
}

// Intn returns a uniform int in [0, n) for n > 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }
