package sim

import (
	"math"
	"math/bits"
)

// splitmixGamma is the splitmix64 stream increment (the golden gamma).
const splitmixGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 output finalizer: the single source of the
// mixing constants shared by the RNG stream and seed derivation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is the simulator's seed-deterministic PRNG: a splitmix64 stream.
// Unlike math/rand's lagged-Fibonacci source, seeding is O(1) — which
// matters because RunMany gives every trial its own derived seed, so
// with short runs source construction would otherwise dominate (it was
// ~28% of simulation CPU under math/rand).
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{s: uint64(seed)} }

// Seed resets the generator to the given seed.
func (r *RNG) Seed(seed int64) { r.s = uint64(seed) }

// Uint64 returns the next 64 uniform bits.
func (r *RNG) Uint64() uint64 {
	r.s += splitmixGamma
	return mix64(r.s)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63n returns a uniform int64 in [0, n) for n > 0 via Lemire's
// multiply-shift reduction (bias < 2⁻⁴⁰ for the population sizes the
// simulator targets, far below sampling noise).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int64(hi)
}

// Intn returns a uniform int in [0, n) for n > 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// btrsCutoff is the mean below which Binomial uses CDF inversion; at
// and above it the BTRS rejection sampler applies (it requires
// n·min(p,1−p) ≥ 10).
const btrsCutoff = 10

// Binomial returns a draw from Binomial(n, p): the number of successes
// in n independent trials of probability p. Small means invert the CDF
// (O(np) expected work); large means use Hörmann's BTRS transformed
// rejection (O(1) expected work), so one draw is cheap at every scale —
// the property the count-based batch scheduler relies on.
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if float64(n)*p < btrsCutoff {
		return r.binomialInv(n, p)
	}
	return r.btrs(n, p)
}

// binomialInv draws Binomial(n, p), p ≤ 1/2, by CDF inversion with the
// pmf ratio recurrence f(k+1) = f(k)·(n−k)/(k+1)·p/(1−p); at the small
// means it is used for (np < 10) the expected iteration count is np+1.
// The search is capped far beyond the distribution's effective support
// so float rounding in the accumulated tail cannot walk to k = n.
func (r *RNG) binomialInv(n int64, p float64) int64 {
	q := 1 - p
	ratio := p / q
	f := math.Exp(float64(n) * math.Log1p(-p)) // (1−p)^n
	limit := int64(float64(n)*p + 60*math.Sqrt(float64(n)*p*q) + 100)
	if limit > n {
		limit = n
	}
	u := r.Float64()
	var k int64
	for u >= f && k < limit {
		u -= f
		f *= ratio * float64(n-k) / float64(k+1)
		k++
	}
	return k
}

// btrs draws Binomial(n, p) for p ≤ 1/2 and np ≥ 10 with the
// transformed-rejection algorithm BTRS of Hörmann (1993): proposals
// come from a transformed uniform whose inverse dominates the binomial
// shape; a squeeze accepts most of them with four flops, the rest are
// decided by one exact log-density comparison.
func (r *RNG) btrs(n int64, p float64) int64 {
	fn := float64(n)
	q := 1 - p
	spq := math.Sqrt(fn * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := fn*p + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor((fn + 1) * p)
	h := lgamma(m+1) + lgamma(fn-m+1)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || k > fn {
			continue
		}
		if math.Log(v*alpha/(a/(us*us)+b)) <= h-lgamma(k+1)-lgamma(fn-k+1)+(k-m)*lpq {
			return int64(k)
		}
	}
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Multinomial distributes n draws over the weights proportionally,
// writing per-category counts into out (len(out) must equal
// len(weights); non-positive weights draw zero). It factors the
// multinomial into conditional binomials — category i receives
// Binomial(remaining draws, wᵢ/Σ_{j≥i} wⱼ) — so one call costs
// O(len(weights)) binomial draws regardless of n. At least one weight
// must be positive when n > 0.
func (r *RNG) Multinomial(n int64, weights []float64, out []int64) {
	if len(out) != len(weights) {
		panic("sim: Multinomial out/weights length mismatch")
	}
	var wrem float64
	for _, w := range weights {
		if w > 0 {
			wrem += w
		}
	}
	for i := range out {
		out[i] = 0
	}
	if n <= 0 {
		return
	}
	if wrem <= 0 {
		panic("sim: Multinomial with no positive weight")
	}
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if w >= wrem {
			// Last positive weight (up to float rounding): everything
			// remaining lands here, also absorbing accumulated drift.
			out[i] = n
			return
		}
		k := r.Binomial(n, w/wrem)
		out[i] = k
		n -= k
		wrem -= w
		if n == 0 {
			return
		}
	}
	// Rounding in wrem exhausted the weights with draws left over; give
	// them to the final positive-weight category.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			out[i] += n
			return
		}
	}
}
