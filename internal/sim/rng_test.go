package sim

import "testing"

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	a.Seed(42)
	b = NewRNG(42)
	if a.Uint64() != b.Uint64() {
		t.Error("Seed did not reset the stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGInt63nBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int64{1, 2, 7, 1 << 40} {
		for i := 0; i < 5_000; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGInt63nRoughlyUniform(t *testing.T) {
	r := NewRNG(11)
	const buckets, draws = 8, 80_000
	var hist [buckets]int
	for i := 0; i < draws; i++ {
		hist[r.Int63n(buckets)]++
	}
	want := draws / buckets
	for b, n := range hist {
		if n < want*9/10 || n > want*11/10 {
			t.Errorf("bucket %d: %d draws, want ≈%d", b, n, want)
		}
	}
}

func TestDeriveSeedNoCollisions(t *testing.T) {
	// The old affine derivation (base + tr·1e6+3) made distinct
	// (base, trial) pairs collide trivially; the splitmix64 hash must
	// keep a dense grid collision-free.
	seen := make(map[int64][2]int64)
	for base := int64(0); base < 100; base++ {
		for tr := 0; tr < 100; tr++ {
			s := DeriveSeed(base, tr)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed(%d,%d) == DeriveSeed(%d,%d) == %d",
					base, tr, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(tr)}
		}
	}
	// Regression for the specific old failure mode: base+K and trial
	// offsets must no longer alias.
	if DeriveSeed(0, 1) == DeriveSeed(1_000_003, 0) {
		t.Error("affine aliasing survived the hash")
	}
}
