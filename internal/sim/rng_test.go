package sim

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	a.Seed(42)
	b = NewRNG(42)
	if a.Uint64() != b.Uint64() {
		t.Error("Seed did not reset the stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGInt63nBounds(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int64{1, 2, 7, 1 << 40} {
		for i := 0; i < 5_000; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGInt63nRoughlyUniform(t *testing.T) {
	r := NewRNG(11)
	const buckets, draws = 8, 80_000
	var hist [buckets]int
	for i := 0; i < draws; i++ {
		hist[r.Int63n(buckets)]++
	}
	want := draws / buckets
	for b, n := range hist {
		if n < want*9/10 || n > want*11/10 {
			t.Errorf("bucket %d: %d draws, want ≈%d", b, n, want)
		}
	}
}

// chiSquareCrit approximates the chi-square quantile at z standard
// normal deviates (Wilson–Hilferty); z = 3.09 gives the 99.9% point,
// so a correct sampler under a fixed seed fails with probability ~1e-3
// — and deterministically passes once the seed is chosen.
func chiSquareCrit(df int, z float64) float64 {
	f := float64(df)
	h := 2 / (9 * f)
	v := 1 - h + z*math.Sqrt(h)
	return f * v * v * v
}

// binomialGoF draws from Binomial(n, p) and chi-square-tests the
// sample against the exact pmf, with adjacent outcomes merged until
// every bucket expects at least 5 draws.
func binomialGoF(t *testing.T, seed, n int64, p float64, draws int) {
	t.Helper()
	logPmf := func(k int64) float64 {
		fn, fk := float64(n), float64(k)
		return lgamma(fn+1) - lgamma(fk+1) - lgamma(fn-fk+1) +
			fk*math.Log(p) + (fn-fk)*math.Log1p(-p)
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	lo := int64(mean - 6*sd)
	if lo < 0 {
		lo = 0
	}
	hi := int64(mean + 6*sd + 1)
	if hi > n {
		hi = n
	}
	// Build buckets [.., cut_i] left to right, each holding ≥ 5 expected
	// draws; the 6σ tails carry ~1e-9 mass and fold into the end buckets.
	var cuts []int64
	var probs []float64
	acc := 0.0
	for k := lo; k <= hi; k++ {
		acc += math.Exp(logPmf(k))
		if acc*float64(draws) >= 5 {
			cuts = append(cuts, k)
			probs = append(probs, acc)
			acc = 0
		}
	}
	if len(cuts) < 2 {
		t.Fatalf("degenerate bucketing for n=%d p=%v", n, p)
	}
	var total float64
	for _, q := range probs {
		total += q
	}
	probs[len(probs)-1] += 1 - total // residual tail mass
	obs := make([]int64, len(cuts))
	rng := NewRNG(seed)
	for i := 0; i < draws; i++ {
		v := rng.Binomial(n, p)
		b := 0
		for b < len(cuts)-1 && v > cuts[b] {
			b++
		}
		obs[b]++
	}
	var stat float64
	for i, q := range probs {
		exp := q * float64(draws)
		d := float64(obs[i]) - exp
		stat += d * d / exp
	}
	if crit := chiSquareCrit(len(cuts)-1, 3.09); stat > crit {
		t.Errorf("Binomial(%d, %v): chi-square %.1f exceeds crit %.1f (df %d)",
			n, p, stat, crit, len(cuts)-1)
	}
}

func TestBinomialGoFSmallMean(t *testing.T) {
	// np = 4 and np = 2 at huge n: the inverse-CDF branch.
	binomialGoF(t, 101, 200, 0.02, 30_000)
	binomialGoF(t, 102, 1_000_000_000, 2e-9, 30_000)
}

func TestBinomialGoFLargeMean(t *testing.T) {
	// np = 2000: the BTRS branch.
	binomialGoF(t, 103, 5_000, 0.4, 30_000)
}

func TestBinomialGoFReflected(t *testing.T) {
	// p > 1/2 reflects to n − Binomial(n, 1−p); n(1−p) = 15 lands the
	// reflected draw in the BTRS branch.
	binomialGoF(t, 104, 300, 0.95, 30_000)
}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNG(1)
	for _, tc := range []struct {
		n    int64
		p    float64
		want int64
	}{
		{0, 0.5, 0},
		{-3, 0.5, 0},
		{10, 0, 0},
		{10, -0.5, 0},
		{10, 1, 10},
		{10, 1.5, 10},
	} {
		if got := r.Binomial(tc.n, tc.p); got != tc.want {
			t.Errorf("Binomial(%d, %v) = %d, want %d", tc.n, tc.p, got, tc.want)
		}
	}
	for i := 0; i < 1000; i++ {
		if v := r.Binomial(7, 0.3); v < 0 || v > 7 {
			t.Fatalf("Binomial(7, 0.3) = %d out of range", v)
		}
	}
}

func TestMultinomialGoF(t *testing.T) {
	weights := []float64{3, 0, 1, 4, 1.5}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	rng := NewRNG(55)
	const n, rounds = 60_000, 10
	out := make([]int64, len(weights))
	var stat float64
	df := 0
	for round := 0; round < rounds; round++ {
		rng.Multinomial(n, weights, out)
		var sum int64
		for i, k := range out {
			sum += k
			if weights[i] <= 0 {
				if k != 0 {
					t.Fatalf("zero-weight category drew %d", k)
				}
				continue
			}
			exp := float64(n) * weights[i] / wsum
			d := float64(k) - exp
			stat += d * d / exp
			if round == 0 {
				df++
			}
		}
		if sum != n {
			t.Fatalf("multinomial counts sum to %d, want %d", sum, n)
		}
	}
	// Each round's Pearson statistic is chi-square with (categories−1)
	// degrees of freedom; the rounds sum to chi-square with rounds·df'.
	totalDF := rounds * (df - 1)
	if crit := chiSquareCrit(totalDF, 3.09); stat > crit {
		t.Errorf("multinomial chi-square %.1f exceeds crit %.1f (df %d)", stat, crit, totalDF)
	}
}

func TestDeriveSeedNoCollisions(t *testing.T) {
	// The old affine derivation (base + tr·1e6+3) made distinct
	// (base, trial) pairs collide trivially; the splitmix64 hash must
	// keep a dense grid collision-free.
	seen := make(map[int64][2]int64)
	for base := int64(0); base < 100; base++ {
		for tr := 0; tr < 100; tr++ {
			s := DeriveSeed(base, tr)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed(%d,%d) == DeriveSeed(%d,%d) == %d",
					base, tr, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(tr)}
		}
	}
	// Regression for the specific old failure mode: base+K and trial
	// offsets must no longer alias.
	if DeriveSeed(0, 1) == DeriveSeed(1_000_003, 0) {
		t.Error("affine aliasing survived the hash")
	}
}

func TestDeriveSeedKNoCollisions(t *testing.T) {
	// Sweep's per-size derivation must be collision-free on a dense
	// (base, size) grid — the old affine base + x·7919 scheme aliased
	// trivially (e.g. bases 7919 apart at adjacent sizes) — and must
	// not reproduce any DeriveSeed trial seed for the same bases.
	seen := make(map[int64][2]int64)
	trialSeeds := make(map[int64]bool)
	for base := int64(0); base < 100; base++ {
		for k := int64(0); k < 100; k++ {
			trialSeeds[DeriveSeed(base, int(k))] = true
			s := DeriveSeedK(base, k)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeedK(%d,%d) == DeriveSeedK(%d,%d) == %d",
					base, k, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, k}
		}
	}
	if DeriveSeedK(0, 7_919) == DeriveSeedK(7_919, 0) {
		t.Error("affine aliasing survived the hash")
	}
	for s := range seen {
		if trialSeeds[s] {
			t.Fatal("DeriveSeedK stream intersects DeriveSeed stream on the test grid")
		}
	}
}
