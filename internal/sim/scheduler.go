package sim

import "fmt"

// Scheduler is a pluggable interaction-selection policy over the
// incremental engine. Implementations must be stateless values: Attach
// binds a scheduler to one engine State and returns the Stepper that
// carries any per-run scratch, so one scheduler value can serve many
// concurrent workers.
type Scheduler interface {
	// Name identifies the scheduler in CLI flags and diagnostics.
	Name() string
	// Attach validates the protocol's shape for this policy and binds to
	// the state. The returned Stepper stays valid across State.Reset.
	Attach(st *State) (Stepper, error)
}

// Stepper advances a run on the state it was attached to.
type Stepper interface {
	// Step executes up to limit ≥ 1 interactions, returning the number
	// executed and ok=false when the configuration is deadlocked
	// (nothing can fire, now or ever).
	Step(rng *RNG, limit int) (fired int, ok bool)
}

// Weighted is the exact scheduler: each enabled transition fires with
// probability proportional to its instance weight (the number of ways
// of drawing its precondition multiset from the configuration), the
// natural generalization of the classical uniform-random-pair scheduler
// to arbitrary-width transitions. It is the default.
type Weighted struct{}

// Name implements Scheduler.
func (Weighted) Name() string { return "weighted" }

// Attach implements Scheduler. Every protocol shape is supported.
func (Weighted) Attach(st *State) (Stepper, error) {
	return &weightedStepper{st: st}, nil
}

type weightedStepper struct{ st *State }

func (s *weightedStepper) Step(rng *RNG, limit int) (int, bool) {
	ti, ok := s.st.Sample(rng)
	if !ok {
		return 0, false
	}
	if !s.st.Fire(ti) {
		// Sample only returns transitions with positive exact weight; a
		// refused fire means the weights invariant is broken.
		panic("sim: internal: sampled transition disabled")
	}
	return 1, true
}

// UniformPairs is the classical population-protocol scheduler: two
// distinct agents are drawn uniformly at random and interact if some
// transition consumes exactly that pair (a null step otherwise — the
// step counts, nothing changes). It requires a conservative 2→2
// protocol: every transition consumes and produces exactly two agents.
// Conditioned on a non-null step, its dynamics coincide with Weighted;
// it trades null steps for a cheaper per-step pick.
type UniformPairs struct{}

// Name implements Scheduler.
func (UniformPairs) Name() string { return "uniform" }

// Attach implements Scheduler, rejecting protocols that are not
// conservative 2→2.
func (UniformPairs) Attach(st *State) (Stepper, error) {
	net := st.net
	d := st.p.Space().Len()
	pairTrans := make([][]int, d*d)
	for ti := 0; ti < net.Len(); ti++ {
		t := net.At(ti)
		if t.Pre.Agents() != 2 || t.Post.Agents() != 2 {
			return nil, fmt.Errorf("sim: uniform scheduler needs a conservative 2→2 protocol; transition %q is %d→%d",
				t.Name, t.Pre.Agents(), t.Post.Agents())
		}
		// The precondition is either a + b (a < b) or 2·a.
		a, b := -1, -1
		for _, e := range st.idx.Pre(ti) {
			if e.N == 2 {
				a, b = e.State, e.State
			} else if a < 0 {
				a = e.State
			} else {
				b = e.State
			}
		}
		if b < a {
			a, b = b, a
		}
		key := a*d + b
		pairTrans[key] = append(pairTrans[key], ti)
	}
	return &uniformStepper{st: st, pairTrans: pairTrans, d: d}, nil
}

type uniformStepper struct {
	st        *State
	pairTrans [][]int
	d         int
}

func (s *uniformStepper) Step(rng *RNG, limit int) (int, bool) {
	st := s.st
	// Deadlock is decided from the engine's exact weights so the
	// scheduler does not spin on null steps forever once nothing can
	// ever fire again.
	if !st.ensureLive() {
		return 0, false
	}
	n := st.Agents()
	if n < 2 {
		return 0, false
	}
	// First agent uniformly among n, second among the remaining n−1.
	a := s.locate(rng.Int63n(n), -1)
	b := s.locate(rng.Int63n(n-1), a)
	if b < a {
		a, b = b, a
	}
	cands := s.pairTrans[a*s.d+b]
	var ti int
	switch len(cands) {
	case 0:
		return 1, true // null interaction
	case 1:
		ti = cands[0]
	default:
		ti = cands[rng.Intn(len(cands))]
	}
	if !st.Fire(ti) {
		// The sampled pair exists in the configuration, so a transition
		// consuming exactly that pair is enabled by construction.
		panic("sim: internal: pair-matched transition disabled")
	}
	return 1, true
}

// locate maps an agent ordinal r ∈ [0, n) to its state index, skipping
// one agent of state skip (or none when skip < 0).
func (s *uniformStepper) locate(r int64, skip int) int {
	for i := 0; i < s.d; i++ {
		c := s.st.Count(i)
		if i == skip {
			c--
		}
		if r < c {
			return i
		}
		r -= c
	}
	// Unreachable while counts sum to Agents().
	return s.d - 1
}

// Batched wraps another scheduler and fires K steps per Step call, so
// the run loop's convergence bookkeeping amortizes over the batch. With
// the incremental engine the output set is O(1) anyway; batching mainly
// amortizes the per-step loop overhead and coarsens LastChange to batch
// granularity, which is the standard throughput trade of batched
// population-protocol simulation.
type Batched struct {
	// K is the batch size; 0 means 64.
	K int
	// Of is the inner scheduler; nil means Weighted{}.
	Of Scheduler
}

// DefaultBatch is the batch size used when Batched.K is zero.
const DefaultBatch = 64

// Name implements Scheduler.
func (b Batched) Name() string { return "batched" }

// Attach implements Scheduler, delegating validation to the inner
// scheduler.
func (b Batched) Attach(st *State) (Stepper, error) {
	inner := b.Of
	if inner == nil {
		inner = Weighted{}
	}
	k := b.K
	if k <= 0 {
		k = DefaultBatch
	}
	is, err := inner.Attach(st)
	if err != nil {
		return nil, err
	}
	return &batchedStepper{inner: is, k: k}, nil
}

type batchedStepper struct {
	inner Stepper
	k     int
}

func (s *batchedStepper) Step(rng *RNG, limit int) (int, bool) {
	k := s.k
	if k > limit {
		k = limit
	}
	total := 0
	for total < k {
		n, ok := s.inner.Step(rng, k-total)
		if !ok {
			break
		}
		total += n
	}
	return total, total > 0
}

// SchedulerByName resolves a CLI scheduler name. batch applies to the
// batched scheduler's batch size and to countbatch/auto's aggregation
// threshold MinBatch (0 means the scheduler's default); eps applies to
// countbatch/auto's drift tolerance (0 means DefaultEpsilon); workers
// bounds countbatch/auto's span-parallel multinomial draw (0 means
// auto-detect GOMAXPROCS — results are byte-identical either way).
func SchedulerByName(name string, batch int, eps float64, workers int) (Scheduler, error) {
	switch name {
	case "", "weighted":
		return Weighted{}, nil
	case "uniform":
		return UniformPairs{}, nil
	case "batched":
		return Batched{K: batch}, nil
	case "countbatch":
		return CountBatched{Epsilon: eps, MinBatch: batch, Workers: workers}, nil
	case "auto":
		return Auto{Epsilon: eps, MinBatch: batch, Workers: workers}, nil
	default:
		return nil, fmt.Errorf("sim: unknown scheduler %q (have weighted, uniform, batched, countbatch, auto)", name)
	}
}
