package sim

import "fmt"

// CellSink receives one finished cell's aggregated statistics the
// moment that cell completes: size x, the absolute trial range
// [trialLo, trialHi) it covers, and the mergeable Stats over exactly
// those trials. It is the streaming seam of the anytime sweep
// pipeline — SweepRangeSink calls it once per finished point, the
// shard runner once per persisted cell, and ppserve forwards each
// call as one NDJSON delta line.
//
// Sinks may be called from multiple worker goroutines concurrently
// unless the caller documents otherwise; SweepRangeSink serializes
// its calls, so a sink passed there needs no locking of its own.
// The deltas arrive in completion order, which is scheduling-dependent
// — only the *set* of deltas is deterministic, and folding them
// through Stats.Merge (associative, commutative) erases the order.
type CellSink func(x int64, trialLo, trialHi int, stats Stats)

// DefaultMinTrials is the minimum-sample floor a StopRule falls back
// to when none is given: below it the normal-approximation confidence
// interval is too unstable to stop on.
const DefaultMinTrials = 8

// StopRule is the sequential-stopping policy of an anytime sweep: a
// point stops accruing trials once its 95% confidence half-width
// drops to TargetRelCI × the running mean, provided at least
// MinTrials trials were observed. The rule is evaluated only at cell
// boundaries, on the gap-free prefix of a point's cells folded in
// trial order — never on an arbitrary subset — so for a fixed seed
// and a fixed cell grid the stopping decision is a pure function of
// the sweep spec and the rule, independent of worker count, shard
// cut, or which process evaluates it. (Cut-independence additionally
// requires the plan's cell boundaries themselves to be cut-independent;
// shard.PlanCostBlock's fixed trial blocks provide that.)
//
// The zero rule is disabled: every planned trial runs.
type StopRule struct {
	// TargetRelCI is the relative CI target: stop once
	// HalfCI95Steps ≤ TargetRelCI × MeanSteps. 0 disables stopping.
	TargetRelCI float64 `json:"target_rel_ci,omitempty"`
	// MinTrials is the floor before the rule may fire (0 = DefaultMinTrials,
	// minimum 2 — a single trial has no variance estimate).
	MinTrials int `json:"min_trials,omitempty"`
}

// Enabled reports whether the rule can ever stop a point.
func (r StopRule) Enabled() bool { return r.TargetRelCI > 0 }

// Validate rejects rules that could never be evaluated coherently.
func (r StopRule) Validate() error {
	if r.TargetRelCI < 0 || r.TargetRelCI >= 1 {
		return fmt.Errorf("sim: stop rule target relative CI %g outside [0, 1)", r.TargetRelCI)
	}
	if r.MinTrials < 0 {
		return fmt.Errorf("sim: negative stop rule trial floor %d", r.MinTrials)
	}
	if !r.Enabled() && r.MinTrials != 0 {
		return fmt.Errorf("sim: stop rule trial floor %d without a CI target", r.MinTrials)
	}
	return nil
}

// WithDefaults fills the trial floor. Every layer that evaluates the
// rule must normalize through here first, so a defaulted floor and
// its spelled-out value make identical stopping decisions.
func (r StopRule) WithDefaults() StopRule {
	if !r.Enabled() {
		return StopRule{}
	}
	if r.MinTrials <= 0 {
		r.MinTrials = DefaultMinTrials
	}
	if r.MinTrials < 2 {
		r.MinTrials = 2
	}
	return r
}

// Satisfied reports whether the prefix aggregate st meets the rule:
// enough trials and a tight-enough relative confidence interval.
// Callers must pass a *prefix* — trials [0, n) folded in order — for
// the decision to be the canonical one.
func (r StopRule) Satisfied(st *Stats) bool {
	r = r.WithDefaults()
	if !r.Enabled() || st.Trials < r.MinTrials {
		return false
	}
	return st.HalfCI95Steps() <= r.TargetRelCI*st.MeanSteps()
}
