// Package sim executes protocols under pluggable randomized schedulers.
// The default is the exact weighted scheduler: the natural
// generalization of the classical uniform-random-pair scheduler to
// arbitrary-width (and non-conservative) transitions, where each
// enabled transition is selected with probability proportional to the
// number of ways of choosing its precondition multiset from the current
// configuration. See Scheduler for the alternatives.
//
// Runs execute on an incremental engine (State) that fires transitions
// in place and reweighs only the transitions affected by each step.
// All randomness is seed-driven; runs are reproducible.
//
// Two invariants make runs composable across processes and machines
// (they are the foundation of the internal/shard pipeline):
//
//   - The seed contract is positional. The seed of (size x, trial t)
//     in a sweep is DeriveSeed(DeriveSeedK(base, x), t) — a pure
//     function of the sweep's base seed and the trial's coordinates,
//     never of execution order, worker count, or which process runs
//     it. RunRange and SweepRange therefore execute any absolute
//     trial range [lo, hi) bit-identically to the same trials of a
//     full run.
//   - Stats are mergeable accumulators. Aggregates carry exact
//     integer counts, sums (128-bit for Σ steps²) and extrema, never
//     precomputed means, so Stats.Merge is associative and
//     commutative and folding any partition of a trial set — in any
//     order — equals direct aggregation bit for bit. Means, variance
//     and confidence intervals are methods computed at render time.
//
// On top of those two invariants sits the anytime layer: a CellSink
// threaded through SweepRangeSink streams each cell's Stats delta the
// moment it completes (deltas arrive in completion order, but merging
// them is order-erasing), and a StopRule adds sequential stopping —
// a point stops accruing trials once its relative confidence interval
// meets the target, evaluated only on the gap-free prefix of its
// cells folded in trial order, so the stopping decision is a pure
// function of (seed, cell grid, rule) and never of scheduling.
package sim

import (
	"context"
	"errors"
	"math"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/core"
)

// Options configures a run.
type Options struct {
	// Seed drives the PRNG. Two runs with equal seeds and inputs are
	// identical.
	Seed int64
	// MaxSteps caps the number of interactions. Zero means 1<<20.
	MaxSteps int
	// StablePatience: the run is declared converged when the output
	// consensus has not changed for this many consecutive steps (and at
	// least one step was taken or the initial configuration is already
	// a consensus). Zero means 4·MaxSteps/5 is NOT used; instead the
	// run executes MaxSteps and reports the last step at which the
	// consensus output changed.
	StablePatience int
	// Scheduler selects the interaction scheduler; nil means Weighted{}.
	Scheduler Scheduler
	// Workers bounds RunMany's trial-level worker pool; 0 means
	// GOMAXPROCS. Results are deterministic regardless of the value.
	Workers int
}

const defaultMaxSteps = 1 << 20

func (o Options) scheduler() Scheduler {
	if o.Scheduler == nil {
		return Weighted{}
	}
	return o.Scheduler
}

// Result reports a run's outcome.
type Result struct {
	// Steps is the number of interactions executed.
	Steps int
	// LastChange is the last step index at which the configuration's
	// output set changed; after it the output stayed constant to the
	// end of the run. Under a batched scheduler it is reported at batch
	// granularity.
	LastChange int
	// Converged reports that the run ended in (or patience-detected) a
	// lasting output consensus.
	Converged bool
	// Output is the final output set.
	Output core.OutputSet
	// Final is the final configuration.
	Final conf.Config
	// Deadlocked reports that no transition was enabled.
	Deadlocked bool
}

// ConsensusBool translates the final output set into a predicate value:
// {1} → true, ∅ or ⊆{0} → false. ok is false when the output is mixed
// or undetermined (★ present).
func (r *Result) ConsensusBool() (value, ok bool) {
	switch r.Output {
	case core.Set1:
		return true, true
	case core.Set0, 0:
		return false, true
	default:
		return false, false
	}
}

// Run executes the protocol from ρ_L + input under the scheduler
// selected by opts.
func Run(p *core.Protocol, input conf.Config, opts Options) (*Result, error) {
	st := NewState(p)
	stepper, err := opts.scheduler().Attach(st)
	if err != nil {
		return nil, err
	}
	if err := st.Reset(input); err != nil {
		return nil, err
	}
	return runLoop(nil, st, stepper, NewRNG(opts.Seed), opts), nil
}

// cancelCheckEvery is how many interactions a run executes between
// polls of the cancellation channel: rare enough that the poll is free
// on the per-interaction path, frequent enough that cancellation lands
// within microseconds.
const cancelCheckEvery = 8192

// runLoop drives one run on an already-reset state. It is the shared
// core of Run and RunRange's workers. A nil done channel disables
// cancellation; when done fires mid-run, runLoop returns nil and the
// partial trajectory is discarded.
func runLoop(done <-chan struct{}, st *State, stepper Stepper, rng *RNG, opts Options) *Result {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	res := &Result{Output: st.Output()}
	sinceChange := 0
	sinceCancel := 0
	steps := 0
	for steps < maxSteps {
		n, ok := stepper.Step(rng, maxSteps-steps)
		if !ok {
			res.Deadlocked = true
			break
		}
		steps += n
		res.Steps = steps
		if done != nil {
			sinceCancel += n
			if sinceCancel >= cancelCheckEvery {
				sinceCancel = 0
				select {
				case <-done:
					return nil
				default:
				}
			}
		}
		out := st.Output()
		if out != res.Output {
			res.Output = out
			res.LastChange = steps
			sinceChange = 0
		} else {
			sinceChange += n
			if opts.StablePatience > 0 && sinceChange >= opts.StablePatience && consensus(out) {
				res.Converged = true
				break
			}
		}
	}
	res.Final = st.Snapshot()
	if res.Deadlocked && consensus(res.Output) {
		res.Converged = true
	}
	if opts.StablePatience == 0 && consensus(res.Output) {
		// Whole-run mode: converged if the tail after LastChange is a
		// consensus.
		res.Converged = true
	}
	return res
}

func consensus(s core.OutputSet) bool {
	return s == core.Set1 || s == core.Set0 || s == 0
}

// instanceWeight counts the number of distinct ways to draw the
// multiset pre from cur: Π_p C(cur(p), pre(p)). A float64 is ample for
// the populations the simulator targets. The engine maintains the same
// quantity incrementally; this standalone form remains the reference
// implementation the engine is tested against.
func instanceWeight(pre, cur conf.Config) float64 {
	w := 1.0
	for i := 0; i < cur.Space().Len(); i++ {
		need := pre.Get(i)
		if need == 0 {
			continue
		}
		have := cur.Get(i)
		if have < need {
			return 0
		}
		w *= binom(have, need)
	}
	return w
}

func binom(n, k int64) float64 {
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := int64(0); i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}

// Stats aggregates repeated runs. All fields are mergeable
// accumulators — exact integer counts, sums, and extrema rather than
// precomputed means — so partial statistics from disjoint trial ranges
// (sharded sweeps, multiple hosts) fold into exactly the value a
// single-process run over the union would have produced: Merge is
// associative and commutative, bit for bit. Derived quantities (means,
// variance, confidence intervals) are methods computed on demand.
type Stats struct {
	Trials    int `json:"trials"`
	Converged int `json:"converged"`
	Correct   int `json:"correct"`
	// SumSteps is Σ Steps over all trials. int64 is exact for any
	// realistic sweep (2^31 steps × 2^32 trials stays in range).
	SumSteps int64 `json:"sum_steps"`
	// SumStepsSqHi/Lo form the 128-bit Σ Steps² (hi·2⁶⁴ + lo), kept
	// exact so merged variance is independent of shard boundaries; a
	// float64 accumulator would make merges order-sensitive past 2⁵³.
	SumStepsSqHi uint64 `json:"sum_steps_sq_hi"`
	SumStepsSqLo uint64 `json:"sum_steps_sq_lo"`
	// MinSteps/MaxSteps are extrema over all trials; MinSteps is
	// meaningful only when Trials > 0.
	MinSteps int `json:"min_steps"`
	MaxSteps int `json:"max_steps"`
	// SumLastChange is Σ LastChange over converged trials only: the
	// numerator of the empirical "time to stable consensus".
	SumLastChange int64 `json:"sum_last_change"`
}

// Observe folds one run into the accumulators. correct is whether the
// run's consensus matched the expected predicate value.
func (s *Stats) Observe(res *Result, expected bool) {
	steps := res.Steps
	if s.Trials == 0 || steps < s.MinSteps {
		s.MinSteps = steps
	}
	if steps > s.MaxSteps {
		s.MaxSteps = steps
	}
	s.Trials++
	s.SumSteps += int64(steps)
	hi, lo := bits.Mul64(uint64(steps), uint64(steps))
	var carry uint64
	s.SumStepsSqLo, carry = bits.Add64(s.SumStepsSqLo, lo, 0)
	s.SumStepsSqHi += hi + carry
	if res.Converged {
		s.Converged++
		s.SumLastChange += int64(res.LastChange)
		if v, ok := res.ConsensusBool(); ok && v == expected {
			s.Correct++
		}
	}
}

// Merge folds another partial aggregate into s. Merging the per-range
// aggregates of any partition of a trial set, in any order, yields the
// same Stats as observing every trial directly.
func (s *Stats) Merge(o Stats) {
	if o.Trials == 0 {
		return
	}
	if s.Trials == 0 || o.MinSteps < s.MinSteps {
		s.MinSteps = o.MinSteps
	}
	if o.MaxSteps > s.MaxSteps {
		s.MaxSteps = o.MaxSteps
	}
	s.Trials += o.Trials
	s.Converged += o.Converged
	s.Correct += o.Correct
	s.SumSteps += o.SumSteps
	var carry uint64
	s.SumStepsSqLo, carry = bits.Add64(s.SumStepsSqLo, o.SumStepsSqLo, 0)
	s.SumStepsSqHi += o.SumStepsSqHi + carry
	s.SumLastChange += o.SumLastChange
}

// MeanSteps is the mean interaction count per trial.
func (s *Stats) MeanSteps() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.SumSteps) / float64(s.Trials)
}

// MeanLastChange is the mean step of the last output change among
// converged runs: the empirical "time to stable consensus".
func (s *Stats) MeanLastChange() float64 {
	if s.Converged == 0 {
		return 0
	}
	return float64(s.SumLastChange) / float64(s.Converged)
}

// VarianceSteps is the sample variance of the per-trial step counts.
func (s *Stats) VarianceSteps() float64 {
	if s.Trials < 2 {
		return 0
	}
	n := float64(s.Trials)
	sumSq := float64(s.SumStepsSqHi)*0x1p64 + float64(s.SumStepsSqLo)
	mean := float64(s.SumSteps) / n
	v := (sumSq - n*mean*mean) / (n - 1)
	if v < 0 { // float cancellation on near-constant samples
		v = 0
	}
	return v
}

// HalfCI95Steps is the half-width of the normal-approximation 95%
// confidence interval for MeanSteps.
func (s *Stats) HalfCI95Steps() float64 {
	if s.Trials < 2 {
		return 0
	}
	return 1.96 * math.Sqrt(s.VarianceSteps()/float64(s.Trials))
}

// DeriveSeed hashes (base seed, trial index) through the splitmix64
// finalizer so per-trial streams are uncorrelated even across nearby
// base seeds and trial indices (an affine derivation like base+trial
// makes overlapping streams trivial to hit). RunMany uses it
// internally; CLI tools deriving their own per-run seeds should too.
func DeriveSeed(base int64, trial int) int64 {
	return int64(mix64(uint64(base) + splitmixGamma*uint64(trial+1)))
}

// DeriveSeedK is DeriveSeed for 64-bit indices on a separated
// substream: Sweep derives each population size's base seed with it
// before the per-trial DeriveSeed fan-out. The extra mix of the base
// keeps (base, k) streams disjoint from DeriveSeed's (base, trial)
// streams, so a sweep point's seed never aliases a trial seed of a
// nearby base. (The old affine base + x·7919 derivation had the same
// collision structure DeriveSeed replaced in RunMany.)
func DeriveSeedK(base, k int64) int64 {
	return int64(mix64(mix64(uint64(base)+splitmixGamma) + splitmixGamma*uint64(k)))
}

// RunMany executes trials runs with derived seeds and aggregates
// statistics, comparing each consensus with the expected predicate
// value. It is RunRange over the full trial range [0, trials).
func RunMany(ctx context.Context, p *core.Protocol, input conf.Config, expected bool, trials int, opts Options) (*Stats, error) {
	if trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}
	return RunRange(ctx, p, input, expected, 0, trials, opts)
}

// RunRange executes the trials with absolute indices [trialLo, trialHi)
// and aggregates statistics, comparing each consensus with the expected
// predicate value. Per-trial seeds are derived from (opts.Seed, trial
// index), so a range's trials are bit-identical to the same trials of a
// full [0, n) run with the same base seed: disjoint ranges can run in
// different processes and their Stats Merge into exactly the
// single-process aggregate. Trials run concurrently on a bounded worker
// pool; each worker reuses one engine State across its trials, and
// results are aggregated in trial order, so the statistics are
// deterministic in (Seed, range) regardless of scheduling. Cancelling
// ctx stops the workers promptly — mid-run, not merely between trials —
// and returns ctx.Err().
func RunRange(ctx context.Context, p *core.Protocol, input conf.Config, expected bool, trialLo, trialHi int, opts Options) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trialLo < 0 || trialHi <= trialLo {
		return nil, errors.New("sim: need 0 <= trialLo < trialHi")
	}
	if !input.Space().Equal(p.Space()) {
		return nil, errors.New("sim: input over wrong space")
	}
	trials := trialHi - trialLo
	sched := opts.scheduler()
	// Attach the first worker's engine up front: it both validates the
	// scheduler/protocol pairing (so every caller gets the same
	// deterministic error) and is reused as worker 0's state.
	st0 := NewState(p)
	stepper0, err := sched.Attach(st0)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	done := ctx.Done()
	initial := p.InitialConfig(input)
	results := make([]*Result, trials)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		st, stepper := st0, stepper0
		if w > 0 {
			st = NewState(p)
			var err error
			if stepper, err = sched.Attach(st); err != nil {
				// Unreachable: Attach succeeded above on an identical state.
				panic(err)
			}
		}
		wg.Add(1)
		go func(st *State, stepper Stepper) {
			defer wg.Done()
			rng := NewRNG(0)
			for tr := range jobs {
				st.resetFrom(initial)
				rng.Seed(DeriveSeed(opts.Seed, tr))
				res := runLoop(done, st, stepper, rng, opts)
				if res == nil { // cancelled mid-run
					return
				}
				results[tr-trialLo] = res
			}
		}(st, stepper)
	}
feed:
	for tr := trialLo; tr < trialHi; tr++ {
		select {
		case jobs <- tr:
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	stats := &Stats{}
	for _, res := range results {
		stats.Observe(res, expected)
	}
	return stats, nil
}
