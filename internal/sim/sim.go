// Package sim executes protocols under a randomized scheduler: the
// natural generalization of the classical uniform-random-pair scheduler
// to arbitrary-width (and non-conservative) transitions, where each
// enabled transition is selected with probability proportional to the
// number of ways of choosing its precondition multiset from the current
// configuration.
//
// All randomness is seed-driven; runs are reproducible.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/conf"
	"repro/internal/core"
)

// Options configures a run.
type Options struct {
	// Seed drives the PRNG. Two runs with equal seeds and inputs are
	// identical.
	Seed int64
	// MaxSteps caps the number of interactions. Zero means 1<<20.
	MaxSteps int
	// StablePatience: the run is declared converged when the output
	// consensus has not changed for this many consecutive steps (and at
	// least one step was taken or the initial configuration is already
	// a consensus). Zero means 4·MaxSteps/5 is NOT used; instead the
	// run executes MaxSteps and reports the last step at which the
	// consensus output changed.
	StablePatience int
}

const defaultMaxSteps = 1 << 20

// Result reports a run's outcome.
type Result struct {
	// Steps is the number of interactions executed.
	Steps int
	// LastChange is the last step index at which the configuration's
	// output set changed; after it the output stayed constant to the
	// end of the run.
	LastChange int
	// Converged reports that the run ended in (or patience-detected) a
	// lasting output consensus.
	Converged bool
	// Output is the final output set.
	Output core.OutputSet
	// Final is the final configuration.
	Final conf.Config
	// Deadlocked reports that no transition was enabled.
	Deadlocked bool
}

// ConsensusBool translates the final output set into a predicate value:
// {1} → true, ∅ or ⊆{0} → false. ok is false when the output is mixed
// or undetermined (★ present).
func (r *Result) ConsensusBool() (value, ok bool) {
	switch r.Output {
	case core.Set1:
		return true, true
	case core.Set0, 0:
		return false, true
	default:
		return false, false
	}
}

// Run executes the protocol from ρ_L + input under the weighted random
// scheduler.
func Run(p *core.Protocol, input conf.Config, opts Options) (*Result, error) {
	if !input.Space().Equal(p.Space()) {
		return nil, errors.New("sim: input over wrong space")
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	cur := p.InitialConfig(input)
	net := p.Net()

	res := &Result{Output: p.OutputOf(cur)}
	sinceChange := 0
	for step := 1; step <= maxSteps; step++ {
		// Weighted choice among enabled transitions.
		var totalW float64
		weights := make([]float64, net.Len())
		for ti := 0; ti < net.Len(); ti++ {
			w := instanceWeight(net.At(ti).Pre, cur)
			weights[ti] = w
			totalW += w
		}
		if totalW == 0 {
			res.Deadlocked = true
			break
		}
		pick := rng.Float64() * totalW
		ti := 0
		for ; ti < len(weights)-1; ti++ {
			pick -= weights[ti]
			if pick < 0 {
				break
			}
		}
		next, ok := net.At(ti).Fire(cur)
		if !ok {
			return nil, fmt.Errorf("sim: internal: weighted pick chose disabled transition %d", ti)
		}
		cur = next
		res.Steps = step
		out := p.OutputOf(cur)
		if out != res.Output {
			res.Output = out
			res.LastChange = step
			sinceChange = 0
		} else {
			sinceChange++
			if opts.StablePatience > 0 && sinceChange >= opts.StablePatience && consensus(out) {
				res.Converged = true
				break
			}
		}
	}
	res.Final = cur
	if res.Deadlocked && consensus(res.Output) {
		res.Converged = true
	}
	if opts.StablePatience == 0 && consensus(res.Output) {
		// Whole-run mode: converged if the tail after LastChange is a
		// consensus.
		res.Converged = true
	}
	return res, nil
}

func consensus(s core.OutputSet) bool {
	return s == core.Set1 || s == core.Set0 || s == 0
}

// instanceWeight counts the number of distinct ways to draw the
// multiset pre from cur: Π_p C(cur(p), pre(p)). A float64 is ample for
// the populations the simulator targets.
func instanceWeight(pre, cur conf.Config) float64 {
	w := 1.0
	for i := 0; i < cur.Space().Len(); i++ {
		need := pre.Get(i)
		if need == 0 {
			continue
		}
		have := cur.Get(i)
		if have < need {
			return 0
		}
		w *= binom(have, need)
	}
	return w
}

func binom(n, k int64) float64 {
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := int64(0); i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return out
}

// Stats aggregates repeated runs.
type Stats struct {
	Trials    int
	Converged int
	Correct   int
	MeanSteps float64
	MaxSteps  int
	// MeanLastChange is the mean step of the last output change among
	// converged runs: the empirical "time to stable consensus".
	MeanLastChange float64
}

// RunMany executes trials runs with derived seeds and aggregates
// statistics, comparing each consensus with the expected predicate
// value.
func RunMany(p *core.Protocol, input conf.Config, expected bool, trials int, opts Options) (*Stats, error) {
	if trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}
	stats := &Stats{Trials: trials}
	var sumSteps, sumChange float64
	for tr := 0; tr < trials; tr++ {
		o := opts
		o.Seed = opts.Seed + int64(tr)*1_000_003
		res, err := Run(p, input, o)
		if err != nil {
			return nil, err
		}
		sumSteps += float64(res.Steps)
		if res.Steps > stats.MaxSteps {
			stats.MaxSteps = res.Steps
		}
		if res.Converged {
			stats.Converged++
			sumChange += float64(res.LastChange)
			if v, ok := res.ConsensusBool(); ok && v == expected {
				stats.Correct++
			}
		}
	}
	stats.MeanSteps = sumSteps / float64(trials)
	if stats.Converged > 0 {
		stats.MeanLastChange = sumChange / float64(stats.Converged)
	}
	return stats, nil
}
