package sim

// Auto is the hybrid exact↔batch scheduler: count-based batching
// (CountBatched's Cao–Gillespie tau selection and aggregate applies)
// while batching pays, exact per-interaction stepping while it does
// not — with the switch decided per run phase from realized batch
// sizes and rejection rates instead of re-probing the O(|T|) tau
// selection every MinBatch interactions.
//
// CountBatched's static policy probes the tau selection again after
// every MinBatch exact steps. In collapse phases — endgames where some
// constrained count sits near zero for a long stretch — every one of
// those probes fails, so the run pays O(|T|) per MinBatch interactions
// for nothing. Auto instead enters an exact phase whose length backs
// off exponentially (autoMinExact up to autoMaxExact) while probes
// keep failing, and resets to the shortest phase the moment a batch
// lands, so expansion phases re-engage batching within one phase.
//
// The stepping itself is CountBatched's — same tau selection, same
// span-parallel multinomial draw, same negativity rejection — so runs
// remain deterministic in the seed for any worker count, and the
// convergence bookkeeping coarsens to batch (or exact-phase)
// granularity exactly as documented there.
type Auto struct {
	// Epsilon is CountBatched's relative per-batch drift tolerance; 0
	// means DefaultEpsilon. Must lie in (0, 1).
	Epsilon float64
	// MinBatch is the smallest batch worth aggregating (the probe
	// threshold); 0 means DefaultMinBatch.
	MinBatch int
	// Workers bounds the span-parallel multinomial draw; 0 means
	// auto-detect (GOMAXPROCS). See CountBatched.Workers.
	Workers int
}

// autoMinExact is the exact-phase length entered after the first
// failed batch probe (and re-entered after any successful batch).
const autoMinExact = 64

// autoMaxExact caps the exponential phase backoff: even a run stuck
// near a boundary re-probes the tau selection at least once every
// autoMaxExact interactions, so a late expansion phase is never missed
// by more than that.
const autoMaxExact = 4096

// Name implements Scheduler.
func (Auto) Name() string { return "auto" }

// Attach implements Scheduler. Every protocol shape is supported;
// parameter validation is CountBatched's.
func (a Auto) Attach(st *State) (Stepper, error) {
	cs, err := CountBatched{Epsilon: a.Epsilon, MinBatch: a.MinBatch, Workers: a.Workers}.Attach(st)
	if err != nil {
		return nil, err
	}
	return &autoStepper{cs: cs.(*countStepper), phase: autoMinExact}, nil
}

type autoStepper struct {
	cs        *countStepper
	exactLeft int // remaining interactions of the current exact phase
	phase     int // next exact-phase length (doubles on failed probes)
}

func (s *autoStepper) Step(rng *RNG, limit int) (int, bool) {
	st := s.cs.st
	if !st.ensureLive() {
		return 0, false
	}
	if s.exactLeft > 0 {
		return s.runExact(rng, limit)
	}
	b := s.cs.selectBatch()
	if b > int64(limit) {
		b = int64(limit)
	}
	for attempt := 0; b >= int64(s.cs.min) && attempt < maxRejects; attempt++ {
		s.cs.drawFires(rng, b)
		if st.ApplyAggregate(s.cs.fires, s.cs.disp) {
			// Batching pays in this phase: keep the next demotion short.
			s.phase = autoMinExact
			return int(b), true
		}
		b /= 2
	}
	// The probe collapsed (or every retry was rejected): demote to an
	// exact phase and lengthen the next one, so repeated failures cost
	// O(|T|) at most once per autoMaxExact interactions.
	s.exactLeft = s.phase
	if s.phase < autoMaxExact {
		s.phase *= 2
	}
	return s.runExact(rng, limit)
}

func (s *autoStepper) runExact(rng *RNG, limit int) (int, bool) {
	k := s.exactLeft
	if k > limit {
		k = limit
	}
	fired, ok := s.cs.exactN(rng, k)
	s.exactLeft -= fired
	return fired, ok
}
