package sim

import (
	"testing"

	"repro/internal/counting"
)

func TestSweep(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	xs := []int64{2, 4, 8, 16}
	points, err := Sweep(p, "i", xs, func(x int64) bool { return x >= 4 }, 5,
		Options{Seed: 1, MaxSteps: 200_000, StablePatience: 1_000})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(points) != len(xs) {
		t.Fatalf("points = %d, want %d", len(points), len(xs))
	}
	for i, pt := range points {
		if pt.X != xs[i] {
			t.Errorf("point %d: X = %d, want %d (order must be preserved)", i, pt.X, xs[i])
		}
		if pt.Stats.Converged != 5 || pt.Stats.Correct != 5 {
			t.Errorf("x=%d: %d/%d correct of %d converged",
				pt.X, pt.Stats.Correct, pt.Stats.Trials, pt.Stats.Converged)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	run := func() []SweepPoint {
		pts, err := Sweep(p, "i", []int64{3, 6}, func(x int64) bool { return x >= 3 }, 3,
			Options{Seed: 9, MaxSteps: 100_000, StablePatience: 500})
		if err != nil {
			t.Fatalf("Sweep: %v", err)
		}
		return pts
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Stats.MeanSteps != b[i].Stats.MeanSteps {
			t.Error("sweep not deterministic across runs")
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	if _, err := Sweep(p, "i", nil, func(int64) bool { return true }, 1, Options{}); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSweepBadInputState(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	if _, err := Sweep(p, "nope", []int64{1}, func(int64) bool { return true }, 1, Options{}); err == nil {
		t.Error("bad input state accepted")
	}
}
