package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/counting"
)

func TestSweep(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	xs := []int64{2, 4, 8, 16}
	points, err := Sweep(context.Background(), p, "i", xs, func(x int64) bool { return x >= 4 }, 5,
		Options{Seed: 1, MaxSteps: 200_000, StablePatience: 1_000})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(points) != len(xs) {
		t.Fatalf("points = %d, want %d", len(points), len(xs))
	}
	for i, pt := range points {
		if pt.X != xs[i] {
			t.Errorf("point %d: X = %d, want %d (order must be preserved)", i, pt.X, xs[i])
		}
		if pt.Stats.Converged != 5 || pt.Stats.Correct != 5 {
			t.Errorf("x=%d: %d/%d correct of %d converged",
				pt.X, pt.Stats.Correct, pt.Stats.Trials, pt.Stats.Converged)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	run := func() []SweepPoint {
		pts, err := Sweep(context.Background(), p, "i", []int64{3, 6}, func(x int64) bool { return x >= 3 }, 3,
			Options{Seed: 9, MaxSteps: 100_000, StablePatience: 500})
		if err != nil {
			t.Fatalf("Sweep: %v", err)
		}
		return pts
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("sweep not deterministic across runs")
	}
}

// SweepRange over trial blocks must emit partial points that merge —
// per size, in trial order — into exactly the full Sweep result, and
// the per-size seed derivation must not depend on which sizes a call
// covers.
func TestSweepRangeMergesToSweep(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	xs := []int64{3, 4, 9}
	expected := func(x int64) bool { return x >= 4 }
	opts := Options{Seed: 5, MaxSteps: 200_000, StablePatience: 1_000}
	const trials = 6
	whole, err := Sweep(context.Background(), p, "i", xs, expected, trials, opts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	// Split by trial block.
	lo, err := SweepRange(context.Background(), p, "i", xs, expected, 0, 2, opts)
	if err != nil {
		t.Fatalf("SweepRange[0,2): %v", err)
	}
	hi, err := SweepRange(context.Background(), p, "i", xs, expected, 2, trials, opts)
	if err != nil {
		t.Fatalf("SweepRange[2,6): %v", err)
	}
	for i := range xs {
		merged := lo[i].Stats
		merged.Merge(hi[i].Stats)
		if merged != whole[i].Stats {
			t.Errorf("x=%d: merged %+v != whole %+v", xs[i], merged, whole[i].Stats)
		}
	}
	// Split by size: a call covering one size must reproduce that size's
	// point exactly.
	for i, x := range xs {
		solo, err := SweepRange(context.Background(), p, "i", []int64{x}, expected, 0, trials, opts)
		if err != nil {
			t.Fatalf("SweepRange x=%d: %v", x, err)
		}
		if solo[0] != whole[i] {
			t.Errorf("x=%d: solo %+v != whole %+v", x, solo[0], whole[i])
		}
	}
}

func TestSweepCancelled(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, p, "i", []int64{3, 6}, func(int64) bool { return true }, 3, Options{}); err != context.Canceled {
		t.Errorf("pre-cancelled Sweep err = %v, want context.Canceled", err)
	}
}

func TestSweepEmpty(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	if _, err := Sweep(context.Background(), p, "i", nil, func(int64) bool { return true }, 1, Options{}); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSweepBadInputState(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	if _, err := Sweep(context.Background(), p, "nope", []int64{1}, func(int64) bool { return true }, 1, Options{}); err == nil {
		t.Error("bad input state accepted")
	}
}
