package sim

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/spec"
)

// The engine invariant everything rests on: after any sequence of
// fires, every incrementally maintained quantity matches its from-
// scratch reference computation.
func TestEngineMatchesReference(t *testing.T) {
	protos := []func() (*core.Protocol, error){
		func() (*core.Protocol, error) { return counting.Example42(3) },
		func() (*core.Protocol, error) { return counting.FlockOfBirds(6) },
		func() (*core.Protocol, error) { return counting.PowerOfTwo(3) },
		func() (*core.Protocol, error) { return spec.Majority("A", "B") },
	}
	for _, mk := range protos {
		p, err := mk()
		if err != nil {
			t.Fatalf("protocol: %v", err)
		}
		st := NewState(p)
		counts := map[string]int64{}
		for i, s := range p.InitialStates() {
			counts[s] = int64(7 + 3*i)
		}
		input, err := p.Input(counts)
		if err != nil {
			t.Fatalf("input: %v", err)
		}
		if err := st.Reset(input); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		rng := NewRNG(99)
		net := p.Net()
		for step := 0; step < 300; step++ {
			snap := st.Snapshot()
			for ti := 0; ti < net.Len(); ti++ {
				want := instanceWeight(net.At(ti).Pre, snap)
				if got := st.Weight(ti); got != want {
					t.Fatalf("%s step %d: weight(%d) = %v, want %v", p.Name(), step, ti, got, want)
				}
			}
			if got, want := st.Output(), p.OutputOf(snap); got != want {
				t.Fatalf("%s step %d: Output = %v, want %v", p.Name(), step, got, want)
			}
			if got, want := st.Agents(), snap.Agents(); got != want {
				t.Fatalf("%s step %d: Agents = %d, want %d", p.Name(), step, got, want)
			}
			ti, ok := st.Sample(rng)
			if !ok {
				break
			}
			if !st.Fire(ti) {
				t.Fatalf("%s step %d: sampled transition %d disabled", p.Name(), step, ti)
			}
		}
	}
}

func TestEngineFireDisabled(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	st := NewState(p)
	input, err := p.Input(map[string]int64{"i": 1})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	if err := st.Reset(input); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	// A single agent enables nothing; firing must refuse and leave the
	// configuration untouched.
	before := st.Snapshot()
	for ti := 0; ti < p.Net().Len(); ti++ {
		if st.Fire(ti) {
			t.Fatalf("disabled transition %d fired", ti)
		}
	}
	if !st.Snapshot().Equal(before) {
		t.Error("refused fire mutated the configuration")
	}
	if _, ok := st.Sample(NewRNG(1)); ok {
		t.Error("Sample found an enabled transition in a deadlocked configuration")
	}
}

func TestEngineResetReuse(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 4})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	st := NewState(p)
	run := func() conf.Config {
		if err := st.Reset(input); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		rng := NewRNG(5)
		for i := 0; i < 200; i++ {
			ti, ok := st.Sample(rng)
			if !ok {
				break
			}
			st.Fire(ti)
		}
		return st.Snapshot()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Errorf("reused state diverged: %v vs %v", a, b)
	}
}

func TestEngineRejectsWrongSpace(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	if err := NewState(p).Reset(conf.New(conf.MustSpace("zz"))); err == nil {
		t.Error("wrong-space input accepted")
	}
}

// ApplyAggregate must be extensionally equal to firing the same
// multiset of transitions one at a time: same counts, weights, agents,
// occupancy-derived output and total weight.
func TestEngineApplyAggregateMatchesSequentialFires(t *testing.T) {
	protos := []func() (*core.Protocol, error){
		func() (*core.Protocol, error) { return counting.FlockOfBirds(6) },
		func() (*core.Protocol, error) { return counting.PowerOfTwo(3) },
		func() (*core.Protocol, error) { return spec.Majority("A", "B") },
	}
	for _, mk := range protos {
		p, err := mk()
		if err != nil {
			t.Fatalf("protocol: %v", err)
		}
		counts := map[string]int64{}
		for i, s := range p.InitialStates() {
			counts[s] = int64(40 + 9*i)
		}
		input, err := p.Input(counts)
		if err != nil {
			t.Fatalf("input: %v", err)
		}
		seq, agg := NewState(p), NewState(p)
		if err := seq.Reset(input); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		if err := agg.Reset(input); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		// Generate a feasible batch by running the sequential engine,
		// recording how often each transition fired.
		rng := NewRNG(7)
		fires := make([]int64, p.Net().Len())
		for step := 0; step < 120; step++ {
			ti, ok := seq.Sample(rng)
			if !ok {
				break
			}
			seq.Fire(ti)
			fires[ti]++
		}
		disp := make([]int64, p.Space().Len())
		if !agg.ApplyAggregate(fires, disp) {
			t.Fatalf("%s: feasible aggregate rejected", p.Name())
		}
		if !agg.Snapshot().Equal(seq.Snapshot()) {
			t.Fatalf("%s: aggregate counts %v, sequential %v", p.Name(), agg.Snapshot(), seq.Snapshot())
		}
		if agg.Agents() != seq.Agents() {
			t.Errorf("%s: aggregate agents %d, sequential %d", p.Name(), agg.Agents(), seq.Agents())
		}
		if agg.Output() != seq.Output() {
			t.Errorf("%s: aggregate output %v, sequential %v", p.Name(), agg.Output(), seq.Output())
		}
		for ti := 0; ti < p.Net().Len(); ti++ {
			if agg.Weight(ti) != seq.Weight(ti) {
				t.Errorf("%s: weight(%d) aggregate %v, sequential %v", p.Name(), ti, agg.Weight(ti), seq.Weight(ti))
			}
		}
		if agg.TotalWeight() != seq.TotalWeight() {
			t.Errorf("%s: total weight aggregate %v, sequential %v", p.Name(), agg.TotalWeight(), seq.TotalWeight())
		}
	}
}

// An aggregate that would drive a count negative must be rejected
// wholesale, leaving every maintained structure untouched.
func TestEngineApplyAggregateRejectsNegative(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 5})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	st := NewState(p)
	if err := st.Reset(input); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	before := st.Snapshot()
	agentsBefore, outBefore, totalBefore := st.Agents(), st.Output(), st.TotalWeight()
	// Fire the first i-consuming merge far more often than 5 agents allow.
	fires := make([]int64, p.Net().Len())
	fires[0] = 100
	disp := make([]int64, p.Space().Len())
	if st.ApplyAggregate(fires, disp) {
		t.Fatal("infeasible aggregate accepted")
	}
	if !st.Snapshot().Equal(before) {
		t.Errorf("rejected aggregate mutated counts: %v -> %v", before, st.Snapshot())
	}
	if st.Agents() != agentsBefore || st.Output() != outBefore || st.TotalWeight() != totalBefore {
		t.Error("rejected aggregate mutated derived state")
	}
}

func TestEngineTotalWeight(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 3})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	st := NewState(p)
	if err := st.Reset(input); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var want float64
	snap := st.Snapshot()
	for ti := 0; ti < p.Net().Len(); ti++ {
		want += instanceWeight(p.Net().At(ti).Pre, snap)
	}
	if got := st.TotalWeight(); got != want {
		t.Errorf("TotalWeight = %v, want %v", got, want)
	}
}
