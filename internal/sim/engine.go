package sim

import (
	"errors"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/petri"
)

// State is a mutable simulation configuration with incrementally
// maintained transition weights: firing a transition updates the counts
// in place and reweighs only the transitions whose precondition touches
// a changed state (via the net's dependency index), instead of the
// O(|T|·|P|) full rescan of the naive scheduler. A Fenwick tree over the
// per-transition instance weights supports O(log |T|) weighted sampling,
// and per-output-class occupancy counters make the output set γ(ρ) an
// O(1) read.
//
// A State is not safe for concurrent use; RunMany gives each worker its
// own. Reset rebinds the same storage to a fresh initial configuration,
// so the steady-state step path performs no allocations.
type State struct {
	p   *core.Protocol
	net *petri.Net
	idx *petri.Index

	counts conf.Config // owned; mutated in place
	cv     []int64     // counts' backing slice (the hot-path view)
	agents int64       // Σ counts, maintained incrementally

	weights []float64 // exact instance weight per transition
	tree    []float64 // Fenwick tree (1-based) over weights
	total   float64   // running Σ weights; exact after rebuild
	mask    int       // largest power of two ≤ len(weights)
	fires   int       // fires since the last exact rebuild

	deltaAgents []int64 // per transition: Σ Post − Σ Pre
	pre         []preShape

	gamma []core.Output
	occ   [4]int // occupied-state count per output class, indexed by Output
}

// preShape is a transition precondition specialized for the dominant
// interaction shapes, so the per-step reweigh avoids the generic
// sparse-product loop: a·b pairs and 2·a twins cover every classical
// 2→2 protocol.
type preShape struct {
	kind preKind
	a, b int32 // state indices (kindPair: a≠b; kindTwin/kindSingle: a)
	k    int64 // kindSingle: the multiplicity on state a
}

type preKind uint8

const (
	kindEmpty   preKind = iota // empty precondition: weight is always 1
	kindPair                   // pre = a + b, a ≠ b
	kindTwin                   // pre = 2·a
	kindSingle                 // pre = k·a
	kindGeneric                // anything else: generic sparse product
)

func shapeOf(pre []petri.SparseEntry) preShape {
	switch len(pre) {
	case 0:
		return preShape{kind: kindEmpty}
	case 1:
		e := pre[0]
		if e.N == 2 {
			return preShape{kind: kindTwin, a: int32(e.State)}
		}
		return preShape{kind: kindSingle, a: int32(e.State), k: e.N}
	case 2:
		if pre[0].N == 1 && pre[1].N == 1 {
			return preShape{kind: kindPair, a: int32(pre[0].State), b: int32(pre[1].State)}
		}
	}
	return preShape{kind: kindGeneric}
}

// rebuildEvery bounds floating-point drift in the Fenwick tree: after
// this many fires the tree and total are recomputed exactly from the
// (always exact) per-transition weights.
const rebuildEvery = 1 << 15

// NewState allocates an engine state for a protocol. Call Reset before
// stepping.
func NewState(p *core.Protocol) *State {
	net := p.Net()
	n := net.Len()
	idx := net.Index()
	mask := 1
	for mask*2 <= n {
		mask *= 2
	}
	st := &State{
		p:           p,
		net:         net,
		idx:         idx,
		counts:      conf.New(p.Space()),
		weights:     make([]float64, n),
		tree:        make([]float64, n+1),
		mask:        mask,
		deltaAgents: make([]int64, n),
		gamma:       p.GammaTable(),
	}
	st.cv = st.counts.RawCounts()
	st.pre = make([]preShape, n)
	for ti := 0; ti < n; ti++ {
		var d int64
		for _, e := range idx.Delta(ti) {
			d += e.N
		}
		st.deltaAgents[ti] = d
		st.pre[ti] = shapeOf(idx.Pre(ti))
	}
	return st
}

// Protocol returns the protocol the state simulates.
func (st *State) Protocol() *core.Protocol { return st.p }

// Reset loads ρ_L + input as the current configuration and recomputes
// every derived structure. It reuses the state's storage.
func (st *State) Reset(input conf.Config) error {
	if !input.Space().Equal(st.p.Space()) {
		return errors.New("sim: input over wrong space")
	}
	st.resetFrom(st.p.InitialConfig(input))
	return nil
}

// resetFrom is Reset for a pre-built initial configuration over the
// protocol's space; RunMany builds the initial configuration once and
// resets each worker from it without per-trial validation.
func (st *State) resetFrom(initial conf.Config) {
	st.counts.CopyFrom(initial)
	st.agents = 0
	st.occ = [4]int{}
	for i, n := range st.cv {
		st.agents += n
		if n > 0 {
			st.occ[st.gamma[i]]++
		}
	}
	st.Resync()
}

// Resync recomputes every transition weight and the Fenwick tree
// exactly from the current counts: O(|T|·width) work that aggregate
// appliers pay once per batch instead of reweighing per interaction.
func (st *State) Resync() {
	for ti := range st.weights {
		st.weights[ti] = st.weight(ti)
	}
	st.rebuild()
}

// ApplyAggregate fires transition ti fires[ti] times for every ti, as
// one aggregate displacement: the summed delta is accumulated over the
// dependency index, applied to the counts in a single pass, and the
// weights are then resynced exactly — the engine half of the
// count-based batch regime. disp is caller-owned scratch with one slot
// per state. When some count would go negative the state is left
// unchanged and ok is false (the caller shrinks its batch and
// retries). ApplyAggregate checks only count non-negativity of the net
// displacement; the caller is responsible for the fires being a
// plausible interaction batch.
func (st *State) ApplyAggregate(fires []int64, disp []int64) bool {
	for i := range disp {
		disp[i] = 0
	}
	st.idx.AggregateDelta(fires, disp)
	if !st.counts.AddDeltaInPlace(disp) {
		return false
	}
	for ti, k := range fires {
		if k != 0 {
			st.agents += k * st.deltaAgents[ti]
		}
	}
	for i, d := range disp {
		if d == 0 {
			continue
		}
		// The state's old count was cv[i]−d: occupancy flips when a
		// count crosses zero in either direction.
		if now := st.cv[i]; now == d {
			st.occ[st.gamma[i]]++
		} else if now == 0 {
			st.occ[st.gamma[i]]--
		}
	}
	st.Resync()
	return true
}

// weight computes transition ti's exact instance weight from the
// current counts: Π C(counts(p), pre(p)) over the sparse precondition,
// through the shape-specialized fast paths.
func (st *State) weight(ti int) float64 {
	switch p := st.pre[ti]; p.kind {
	case kindPair:
		ca, cb := st.cv[p.a], st.cv[p.b]
		if ca <= 0 || cb <= 0 {
			return 0
		}
		return float64(ca) * float64(cb)
	case kindTwin:
		ca := st.cv[p.a]
		if ca < 2 {
			return 0
		}
		return float64(ca) * float64(ca-1) * 0.5
	case kindSingle:
		ca := st.cv[p.a]
		if ca < p.k {
			return 0
		}
		return binom(ca, p.k)
	case kindEmpty:
		return 1
	default:
		w := 1.0
		for _, e := range st.idx.Pre(ti) {
			have := st.cv[e.State]
			if have < e.N {
				return 0
			}
			w *= binom(have, e.N)
		}
		return w
	}
}

// Fire fires transition ti in place, reporting ok=false (and leaving
// the state unchanged) when it is disabled.
func (st *State) Fire(ti int) bool {
	// The weights invariant (every entry exact for the current counts)
	// makes enabledness an O(1) read.
	if st.weights[ti] <= 0 {
		return false
	}
	for _, e := range st.idx.Delta(ti) {
		old := st.cv[e.State]
		now := old + e.N
		st.cv[e.State] = now
		if old == 0 {
			st.occ[st.gamma[e.State]]++
		} else if now == 0 {
			st.occ[st.gamma[e.State]]--
		}
	}
	st.agents += st.deltaAgents[ti]
	for _, dt := range st.idx.Affected(ti) {
		if w := st.weight(dt); w != st.weights[dt] {
			d := w - st.weights[dt]
			st.weights[dt] = w
			st.total += d
			st.treeAdd(dt, d)
		}
	}
	if st.fires++; st.fires >= rebuildEvery {
		st.rebuild()
	}
	return true
}

// Sample draws a transition with probability proportional to its
// instance weight, reporting ok=false when no transition is enabled.
// It does not fire the transition.
func (st *State) Sample(rng *RNG) (ti int, ok bool) {
	if !st.ensureLive() {
		return 0, false
	}
	for attempt := 0; attempt < 2; attempt++ {
		ti := st.find(rng.Float64() * st.total)
		if ti < len(st.weights) && st.weights[ti] > 0 {
			return ti, true
		}
		// Drift artifact: the search landed on a zero-weight slot.
		st.rebuild()
		if st.total == 0 {
			return 0, false
		}
	}
	// Exact linear fallback (unreachable in practice).
	r := rng.Float64() * st.total
	last := -1
	for ti, w := range st.weights {
		if w > 0 {
			last = ti
			if r < w {
				return ti, true
			}
			r -= w
		}
	}
	if last >= 0 {
		return last, true
	}
	return 0, false
}

// ensureLive reports whether any transition is enabled. Enabled
// transitions have weight ≥ 1, so a running total below 1 is either a
// true deadlock or accumulated float drift: it decides with an exact
// rebuild. Both the weighted sampler and the uniform-pair scheduler
// gate their steps on it.
func (st *State) ensureLive() bool {
	if st.total < 1 {
		st.rebuild()
		if st.total == 0 {
			return false
		}
	}
	return true
}

// find returns the smallest index whose cumulative weight prefix
// exceeds r (the Fenwick-tree descent).
func (st *State) find(r float64) int {
	pos := 0
	for bit := st.mask; bit > 0; bit >>= 1 {
		if next := pos + bit; next <= len(st.weights) && st.tree[next] <= r {
			r -= st.tree[next]
			pos = next
		}
	}
	return pos
}

// treeAdd adds d to slot ti of the Fenwick tree.
func (st *State) treeAdd(ti int, d float64) {
	for i := ti + 1; i <= len(st.weights); i += i & (-i) {
		st.tree[i] += d
	}
}

// rebuild recomputes the Fenwick tree and running total exactly from
// the per-transition weights, clearing accumulated float drift.
func (st *State) rebuild() {
	n := len(st.weights)
	total := 0.0
	for i := 1; i <= n; i++ {
		st.tree[i] = st.weights[i-1]
		total += st.weights[i-1]
	}
	for i := 1; i <= n; i++ {
		if j := i + (i & -i); j <= n {
			st.tree[j] += st.tree[i]
		}
	}
	st.total = total
	st.fires = 0
}

// Output returns γ(ρ) for the current configuration in O(1).
func (st *State) Output() core.OutputSet {
	var s core.OutputSet
	if st.occ[core.Out0] > 0 {
		s |= core.Set0
	}
	if st.occ[core.OutStar] > 0 {
		s |= core.SetStar
	}
	if st.occ[core.Out1] > 0 {
		s |= core.Set1
	}
	return s
}

// Agents returns |ρ|, maintained incrementally.
func (st *State) Agents() int64 { return st.agents }

// Count returns the current count of the state with the given index.
func (st *State) Count(i int) int64 { return st.cv[i] }

// Weight returns transition ti's current instance weight (zero iff
// disabled).
func (st *State) Weight(ti int) float64 { return st.weights[ti] }

// TotalWeight returns the exact sum of all instance weights, rebuilding
// the running total first.
func (st *State) TotalWeight() float64 {
	st.rebuild()
	return st.total
}

// Snapshot returns an independent copy of the current configuration.
func (st *State) Snapshot() conf.Config { return st.counts.Clone() }
