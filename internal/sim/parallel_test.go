package sim

import (
	"context"
	"testing"

	"repro/internal/counting"
)

// The span-parallel multinomial draw must be byte-identical for every
// worker count: spans are fixed by the transition list and per-span
// streams are derived positionally, so workers only schedule work.
// flock(27) has 378 transitions (> spanSize), so the span path
// genuinely engages; x is large enough that batching dominates.
func TestCountBatchedDeterministicAcrossWorkers(t *testing.T) {
	p, err := counting.FlockOfBirds(27)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	if nt := p.Net().Len(); nt <= spanSize {
		t.Fatalf("flock(27) has %d transitions; test needs > %d to engage the span draw", nt, spanSize)
	}
	input, err := p.Input(map[string]int64{"i": 200_000})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	for _, mk := range []func(w int) Scheduler{
		func(w int) Scheduler { return CountBatched{Workers: w} },
		func(w int) Scheduler { return Auto{Workers: w} },
	} {
		var ref *Result
		for _, workers := range []int{1, 2, 4, 8} {
			sched := mk(workers)
			res, err := Run(p, input, Options{
				Seed: 99, MaxSteps: 1 << 22, Scheduler: sched,
			})
			if err != nil {
				t.Fatalf("%s w=%d: %v", sched.Name(), workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Steps != ref.Steps || res.LastChange != ref.LastChange ||
				res.Converged != ref.Converged || res.Deadlocked != ref.Deadlocked ||
				!res.Final.Equal(ref.Final) {
				t.Errorf("%s w=%d diverged from w=1: steps %d vs %d, lastChange %d vs %d, final %v vs %v",
					sched.Name(), workers, res.Steps, ref.Steps, res.LastChange, ref.LastChange, res.Final, ref.Final)
			}
		}
	}
}

// Aggregated sweep statistics must likewise be independent of both the
// trial-pool worker count and the scheduler's draw workers.
func TestCountBatchedSweepDeterministicAcrossWorkers(t *testing.T) {
	p, err := counting.FlockOfBirds(27)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 50_000})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	var ref *Stats
	for _, workers := range []int{1, 2, 4, 8} {
		stats, err := RunMany(context.Background(), p, input, true, 6, Options{
			Seed: 7, MaxSteps: 1 << 22, Workers: workers,
			Scheduler: CountBatched{Workers: workers},
		})
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if ref == nil {
			ref = stats
			continue
		}
		if *stats != *ref {
			t.Errorf("w=%d stats %+v, w=1 stats %+v", workers, *stats, *ref)
		}
	}
}

// The hybrid scheduler must agree with the exact weighted scheduler on
// what the protocols compute: the same cross-validation CountBatched
// passes, on a protocol mixing collapse phases (where Auto's exact
// backoff engages) with batchable expansion phases.
func TestAutoMatchesWeightedStats(t *testing.T) {
	p, err := counting.FlockOfBirds(8)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 5_000})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	runWith := func(sched Scheduler) *Stats {
		stats, err := RunMany(context.Background(), p, input, true, 5, Options{
			Seed: 5, MaxSteps: 1 << 22, Scheduler: sched,
		})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if stats.Converged != 5 || stats.Correct != 5 {
			t.Fatalf("%s: correct %d/5, converged %d/5", sched.Name(), stats.Correct, stats.Converged)
		}
		return stats
	}
	w, a := runWith(Weighted{}), runWith(Auto{})
	if ratio := a.MeanSteps() / w.MeanSteps(); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("MeanSteps auto %.0f vs weighted %.0f (ratio %.3f, want within 10%%)",
			a.MeanSteps(), w.MeanSteps(), ratio)
	}
}

// Auto must preserve the delicate boundary semantics: immediate
// deadlock detection and the MaxSteps cap.
func TestAutoBoundarySemantics(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	dead, err := p.Input(map[string]int64{"i": 1})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	res, err := Run(p, dead, Options{Seed: 1, MaxSteps: 100, Scheduler: Auto{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Deadlocked || res.Steps != 0 {
		t.Errorf("expected immediate deadlock, got %+v", res)
	}
	live, err := p.Input(map[string]int64{"i": 1 << 10})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	res, err = Run(p, live, Options{Seed: 2, MaxSteps: 100, Scheduler: Auto{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps > 100 {
		t.Errorf("auto run took %d steps, cap 100", res.Steps)
	}
}

func TestAutoAttachValidation(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	for _, a := range []Auto{{Epsilon: -0.1}, {Epsilon: 1}, {MinBatch: -1}} {
		if _, err := a.Attach(NewState(p)); err == nil {
			t.Errorf("Auto%+v accepted", a)
		}
	}
	if _, err := (Auto{Epsilon: 0.2, MinBatch: 128, Workers: 4}).Attach(NewState(p)); err != nil {
		t.Errorf("valid Auto rejected: %v", err)
	}
}
