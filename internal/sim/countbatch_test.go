package sim

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/counting"
)

// Cross-validation on the E10 protocols: the count-based batch
// scheduler must agree with the exact weighted scheduler on what the
// protocols compute and, within tolerance, on how long they take. At
// these population sizes the stepper mixes exact stepping and small
// aggregates, covering the fallback boundary.
func TestCountBatchedMatchesWeightedStats(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*core.Protocol, error)
		x    int64
		want bool
	}{
		{"example42(4)", func() (*core.Protocol, error) { return counting.Example42(4) }, 12, true},
		{"flock(8)", func() (*core.Protocol, error) { return counting.FlockOfBirds(8) }, 40, true},
		{"power2(4)", func() (*core.Protocol, error) { return counting.PowerOfTwo(4) }, 64, true},
	}
	for _, c := range cases {
		p, err := c.mk()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		input, err := p.Input(map[string]int64{"i": c.x})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		runWith := func(sched Scheduler) *Stats {
			stats, err := RunMany(context.Background(), p, input, c.want, 20, Options{
				Seed: 77, MaxSteps: 400_000, StablePatience: 2_000, Scheduler: sched,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, sched.Name(), err)
			}
			if stats.Converged != 20 || stats.Correct != 20 {
				t.Fatalf("%s/%s: correct %d/20, converged %d/20",
					c.name, sched.Name(), stats.Correct, stats.Converged)
			}
			return stats
		}
		w, cb := runWith(Weighted{}), runWith(CountBatched{})
		if ratio := cb.MeanLastChange() / w.MeanLastChange(); ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: MeanLastChange countbatch %.0f vs weighted %.0f (ratio %.2f)",
				c.name, cb.MeanLastChange(), w.MeanLastChange(), ratio)
		}
	}
}

// At a population where batching genuinely engages, the time to the
// absorbing all-⊤ deadlock must match the exact scheduler closely:
// both schedulers walk the same Markov chain up to the tolerated
// O(eps) per-batch drift.
func TestCountBatchedMatchesWeightedLargeFlock(t *testing.T) {
	p, err := counting.FlockOfBirds(8)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 5_000})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	runWith := func(sched Scheduler) *Stats {
		stats, err := RunMany(context.Background(), p, input, true, 5, Options{
			Seed: 5, MaxSteps: 1 << 22, Scheduler: sched,
		})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if stats.Converged != 5 || stats.Correct != 5 {
			t.Fatalf("%s: correct %d/5, converged %d/5", sched.Name(), stats.Correct, stats.Converged)
		}
		return stats
	}
	w, cb := runWith(Weighted{}), runWith(CountBatched{})
	if ratio := cb.MeanSteps() / w.MeanSteps(); math.Abs(ratio-1) > 0.1 {
		t.Errorf("MeanSteps countbatch %.0f vs weighted %.0f (ratio %.3f, want within 10%%)",
			cb.MeanSteps(), w.MeanSteps(), ratio)
	}
}

// The large-n regime the scheduler exists for: a power-of-two counting
// protocol at a million agents converges to the correct consensus on
// both sides of the threshold, ending in the absorbing deadlock.
func TestCountBatchedLargeNPower2(t *testing.T) {
	p, err := counting.PowerOfTwo(20)
	if err != nil {
		t.Fatalf("PowerOfTwo: %v", err)
	}
	for _, tc := range []struct {
		x    int64
		want bool
	}{
		{1 << 20, true},
		{1<<20 - 1, false},
	} {
		input, err := p.Input(map[string]int64{"i": tc.x})
		if err != nil {
			t.Fatalf("input: %v", err)
		}
		res, err := Run(p, input, Options{Seed: 3, MaxSteps: 1 << 24, Scheduler: CountBatched{}})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		v, ok := res.ConsensusBool()
		if !res.Converged || !ok || v != tc.want {
			t.Errorf("x=%d: converged=%v consensus=(%v,%v), want (%v,true); %d steps",
				tc.x, res.Converged, v, ok, tc.want, res.Steps)
		}
		if !res.Deadlocked {
			t.Errorf("x=%d: expected the absorbing deadlock, got %d steps without one", tc.x, res.Steps)
		}
	}
}

func TestCountBatchedRespectsMaxSteps(t *testing.T) {
	p, err := counting.PowerOfTwo(10)
	if err != nil {
		t.Fatalf("PowerOfTwo: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 1 << 10})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	res, err := Run(p, input, Options{Seed: 2, MaxSteps: 100, Scheduler: CountBatched{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps > 100 {
		t.Errorf("count-batched run took %d steps, cap 100", res.Steps)
	}
}

func TestCountBatchedDeadlockedStart(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 1})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	res, err := Run(p, input, Options{Seed: 1, MaxSteps: 100, Scheduler: CountBatched{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Deadlocked || res.Steps != 0 {
		t.Errorf("expected immediate deadlock, got %+v", res)
	}
}

func TestCountBatchedAttachValidation(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	for _, cb := range []CountBatched{
		{Epsilon: -0.1},
		{Epsilon: 1},
		{Epsilon: 2.5},
		{MinBatch: -1},
	} {
		if _, err := cb.Attach(NewState(p)); err == nil {
			t.Errorf("CountBatched%+v accepted", cb)
		}
	}
	if _, err := (CountBatched{Epsilon: 0.2, MinBatch: 128}).Attach(NewState(p)); err != nil {
		t.Errorf("valid CountBatched rejected: %v", err)
	}
}
