package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// SweepPoint is one population size's aggregated convergence result.
type SweepPoint struct {
	X     int64 `json:"x"`
	Stats Stats `json:"stats"`
}

// Sweep runs every trial of every population size in xs and reports
// per-size statistics: SweepRange over the full trial range.
func Sweep(ctx context.Context, p *core.Protocol, inputState string, xs []int64, expected func(x int64) bool, trials int, opts Options) ([]SweepPoint, error) {
	if trials <= 0 {
		return nil, errors.New("sim: trials must be positive")
	}
	return SweepRange(ctx, p, inputState, xs, expected, 0, trials, opts)
}

// SweepRange runs the trial range [trialLo, trialHi) of each population
// size in xs and reports per-size partial statistics. The expected
// predicate value for each x is computed by expected. Each size's base
// seed is derived from (opts.Seed, x) alone — independent of which
// sizes and trial ranges this call covers — so a sweep sharded across
// processes by size and/or trial block produces partial SweepPoints
// that merge into exactly the single-process Sweep result.
//
// Parallelism is two-level: points fan out to a bounded pool (so sweeps
// with few trials per point still use every core) and each point's
// RunRange fans its trials out to workers that reuse one engine State
// each. Results are ordered like xs and deterministic in opts.Seed
// regardless of scheduling. Cancelling ctx stops all workers promptly
// and returns ctx.Err().
func SweepRange(ctx context.Context, p *core.Protocol, inputState string, xs []int64, expected func(x int64) bool, trialLo, trialHi int, opts Options) ([]SweepPoint, error) {
	return SweepRangeSink(ctx, p, inputState, xs, expected, trialLo, trialHi, opts, nil)
}

// SweepRangeSink is SweepRange with a streaming seam: sink (may be
// nil) is called once per point the moment that point's trial range
// completes, with the same (x, trialLo, trialHi, Stats) the returned
// slice will carry. Calls are serialized by an internal mutex and
// arrive in completion order — scheduling-dependent, unlike the
// returned slice, which stays ordered like xs and bit-identical for
// any worker count. A caller that folds the sunk deltas with
// Stats.Merge gets the same aggregates either way.
func SweepRangeSink(ctx context.Context, p *core.Protocol, inputState string, xs []int64, expected func(x int64) bool, trialLo, trialHi int, opts Options, sink CellSink) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(xs) == 0 {
		return nil, errors.New("sim: empty sweep")
	}
	out := make([]SweepPoint, len(xs))
	errs := make([]error, len(xs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(xs) {
		workers = len(xs)
	}
	// Keep the two-level pool product at ~GOMAXPROCS unless the caller
	// pinned Options.Workers explicitly: the outer pool takes one
	// worker per point (capped at GOMAXPROCS above), and each
	// point-worker's RunRange gets the ceiling share of trial-workers,
	// so the product covers every core. Ceiling, not floor: the floor
	// division starved the inner pools to zero whenever the outer pool
	// took every core (g points on g cores → g/g…, but also 2g points
	// capped at g workers → g/g = 1 is correct while g+1 points capped
	// at g gave 0 before the old clamp kicked in — and any remainder
	// under-used the machine).
	inner := opts
	if inner.Workers <= 0 {
		g := runtime.GOMAXPROCS(0)
		inner.Workers = (g + workers - 1) / workers
	}
	done := ctx.Done()
	jobs := make(chan int)
	var wg sync.WaitGroup
	var sinkMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				x := xs[idx]
				input, err := p.Input(map[string]int64{inputState: x})
				if err != nil {
					errs[idx] = err
					continue
				}
				o := inner
				// Give each size its own hashed base seed: deterministic,
				// and uncorrelated across nearby seeds and sizes.
				o.Seed = DeriveSeedK(opts.Seed, x)
				stats, err := RunRange(ctx, p, input, expected(x), trialLo, trialHi, o)
				if err != nil {
					errs[idx] = err
					continue
				}
				out[idx] = SweepPoint{X: x, Stats: *stats}
				if sink != nil {
					sinkMu.Lock()
					sink(x, trialLo, trialHi, *stats)
					sinkMu.Unlock()
				}
			}
		}()
	}
feed:
	for idx := range xs {
		select {
		case jobs <- idx:
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep x=%d: %w", xs[idx], err)
		}
	}
	return out, nil
}
