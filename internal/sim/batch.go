package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// SweepPoint is one population size's aggregated convergence result.
type SweepPoint struct {
	X     int64
	Stats Stats
}

// Sweep runs RunMany for each population size in xs and reports
// per-size statistics. The expected predicate value for each x is
// computed by expected. Parallelism is two-level: points fan out to a
// bounded pool (so sweeps with few trials per point still use every
// core) and each point's RunMany fans its trials out to workers that
// reuse one engine State each. Results are ordered like xs and
// deterministic in opts.Seed regardless of scheduling.
func Sweep(p *core.Protocol, inputState string, xs []int64, expected func(x int64) bool, trials int, opts Options) ([]SweepPoint, error) {
	if len(xs) == 0 {
		return nil, errors.New("sim: empty sweep")
	}
	out := make([]SweepPoint, len(xs))
	errs := make([]error, len(xs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(xs) {
		workers = len(xs)
	}
	// Keep the two-level pool product at ~GOMAXPROCS: each point-worker
	// gets an equal share of trial-workers unless the caller pinned
	// Options.Workers explicitly.
	inner := opts
	if inner.Workers <= 0 {
		inner.Workers = runtime.GOMAXPROCS(0) / workers
		if inner.Workers < 1 {
			inner.Workers = 1
		}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				x := xs[idx]
				input, err := p.Input(map[string]int64{inputState: x})
				if err != nil {
					errs[idx] = err
					continue
				}
				o := inner
				// Give each size its own hashed base seed: deterministic,
				// and uncorrelated across nearby seeds and sizes.
				o.Seed = DeriveSeedK(opts.Seed, x)
				stats, err := RunMany(p, input, expected(x), trials, o)
				if err != nil {
					errs[idx] = err
					continue
				}
				out[idx] = SweepPoint{X: x, Stats: *stats}
			}
		}()
	}
	for idx := range xs {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep x=%d: %w", xs[idx], err)
		}
	}
	return out, nil
}
