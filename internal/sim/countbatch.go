package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// CountBatched is the count-based batch scheduler — tau-leaping for
// population protocols. Instead of sampling interactions one at a time
// (O(log |T|) each), every Step freezes the current instance weights,
// samples how many of the next B interactions fall on each enabled
// transition in one multinomial draw, and applies the aggregate
// displacement to the counts at once, so the amortized cost per
// interaction is O(|T|/B) — sub-constant once B ≫ |T|, which is what
// makes populations of 10⁸–10⁹ agents simulable in seconds.
//
// B is chosen adaptively in the style of Cao–Gillespie tau-selection:
// from the frozen weights the stepper computes each state's drift and
// variance per interaction and picks the largest B for which no
// constrained state's count is expected to move, in mean or standard
// deviation, by more than Epsilon of its current value. Constrained
// states are those in the precondition support of any transition (the
// standard reactant bounding) — every count some instance weight can
// read — so the tolerance bounds the relative weight drift within a
// batch for enabled transitions, and a disabled transition's reactants
// cannot run far past its enablement point before the freeze is
// refreshed: a count a weight reads grows from 0 by at most ~1
// expected unit per batch until real mass accumulates.
//
// Near deadlock and convergence boundaries (small counts, collapsing
// drift allowances) the selected B falls below MinBatch and the stepper
// reverts to exact per-interaction stepping on the incremental engine,
// so deadlock detection and Result/Stats semantics are preserved
// exactly where they are delicate. In batch mode LastChange and
// StablePatience coarsen to batch granularity, as with Batched. An
// aggregate whose sampled fires would drive a count negative — a tail
// event at the tolerated drift — is rejected wholesale and retried at
// half the batch size, degrading to exact stepping.
type CountBatched struct {
	// Epsilon is the relative per-batch drift tolerance on constrained
	// state counts; 0 means DefaultEpsilon. Must lie in (0, 1).
	Epsilon float64
	// MinBatch is the smallest batch worth aggregating: when the tau
	// selection yields less, the stepper steps exactly instead. 0 means
	// DefaultMinBatch.
	MinBatch int
	// Workers bounds the span-parallel multinomial draw on protocols
	// with more than spanSize transitions: the batch is first split
	// across fixed transition spans by a serial multinomial on the span
	// weight totals, then each span draws its conditional binomials on
	// a private RNG stream derived positionally from one fresh 64-bit
	// draw. The draw structure never depends on the worker count, so
	// the sampled fires — and hence whole runs — are byte-identical for
	// any value. 0 means auto-detect (GOMAXPROCS); 1 forces the serial
	// draw. Protocols with at most spanSize transitions always use the
	// plain serial multinomial.
	Workers int
}

// DefaultEpsilon is the drift tolerance used when CountBatched.Epsilon
// is zero: batches may move constrained counts by 5%.
const DefaultEpsilon = 0.05

// DefaultMinBatch is the aggregation threshold used when
// CountBatched.MinBatch is zero.
const DefaultMinBatch = 64

// maxBatch caps a single aggregate so the float tau never overflows
// the int64 conversion; runs are further capped by the caller's limit.
const maxBatch = int64(1) << 40

// maxRejects bounds the halve-and-retry loop on negativity rejections
// before a Step degrades to exact stepping.
const maxRejects = 4

// spanSize is the fixed transition-span width of the parallel
// multinomial draw. It is independent of the worker count — spans are
// a property of the protocol's transition list, workers only schedule
// them — which is what keeps sampled fires byte-identical across
// worker counts.
const spanSize = 256

// Name implements Scheduler.
func (CountBatched) Name() string { return "countbatch" }

// Attach implements Scheduler. Every protocol shape is supported.
func (cb CountBatched) Attach(st *State) (Stepper, error) {
	eps := cb.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	if eps < 0 || eps >= 1 {
		return nil, fmt.Errorf("sim: countbatch tolerance %v outside (0, 1)", cb.Epsilon)
	}
	min := cb.MinBatch
	if min < 0 {
		return nil, fmt.Errorf("sim: countbatch min batch %d is negative", min)
	}
	if min == 0 {
		min = DefaultMinBatch
	}
	d := st.p.Space().Len()
	// The constrained-state set is static: every state read by some
	// transition's precondition, whether or not it is enabled right now
	// — the reactant bounding that keeps mid-batch enablement honest.
	con := make([]bool, d)
	for ti := 0; ti < len(st.weights); ti++ {
		for _, e := range st.idx.Pre(ti) {
			con[e.State] = true
		}
	}
	workers := cb.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	s := &countStepper{
		st:      st,
		eps:     eps,
		min:     min,
		workers: workers,
		fires:   make([]int64, len(st.weights)),
		disp:    make([]int64, d),
		mu:      make([]float64, d),
		sig:     make([]float64, d),
		con:     con,
	}
	if nspans := (len(st.weights) + spanSize - 1) / spanSize; nspans > 1 {
		s.spanW = make([]float64, nspans)
		s.spanN = make([]int64, nspans)
	}
	return s, nil
}

type countStepper struct {
	st      *State
	eps     float64
	min     int
	workers int       // span-draw worker bound (resolved, ≥ 1)
	fires   []int64   // scratch: multinomial fire count per transition
	disp    []int64   // scratch: aggregate displacement per state
	mu      []float64 // scratch: per-state drift per interaction
	sig     []float64 // scratch: per-state variance per interaction
	con     []bool    // static: state is read by some precondition
	spanW   []float64 // scratch: per-span weight totals (nil: single span)
	spanN   []int64   // scratch: per-span batch shares
}

func (s *countStepper) Step(rng *RNG, limit int) (int, bool) {
	st := s.st
	if !st.ensureLive() {
		return 0, false
	}
	b := s.selectBatch()
	if b > int64(limit) {
		b = int64(limit)
	}
	for attempt := 0; b >= int64(s.min) && attempt < maxRejects; attempt++ {
		s.drawFires(rng, b)
		if st.ApplyAggregate(s.fires, s.disp) {
			return int(b), true
		}
		b /= 2
	}
	return s.exact(rng, limit)
}

// drawFires samples the batch's per-transition fire counts into
// s.fires. Protocols within one span use the plain serial multinomial;
// wider ones split the batch across fixed transition spans — a serial
// multinomial over the span weight totals from the run's main stream,
// then per-span conditional binomials on streams derived positionally
// from one fresh 64-bit draw. Workers only schedule spans, so the draw
// is byte-identical for every worker count.
func (s *countStepper) drawFires(rng *RNG, b int64) {
	w := s.st.weights
	if s.spanW == nil {
		rng.Multinomial(b, w, s.fires)
		return
	}
	nspans := len(s.spanW)
	for si := 0; si < nspans; si++ {
		lo, hi := si*spanSize, (si+1)*spanSize
		if hi > len(w) {
			hi = len(w)
		}
		var t float64
		for _, x := range w[lo:hi] {
			if x > 0 {
				t += x
			}
		}
		s.spanW[si] = t
	}
	rng.Multinomial(b, s.spanW, s.spanN)
	base := int64(rng.Uint64())
	workers := s.workers
	if workers > nspans {
		workers = nspans
	}
	if workers <= 1 {
		var sub RNG
		for si := 0; si < nspans; si++ {
			s.drawSpan(&sub, base, si)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sub RNG
			for {
				si := int(next.Add(1)) - 1
				if si >= nspans {
					return
				}
				s.drawSpan(&sub, base, si)
			}
		}()
	}
	wg.Wait()
}

// drawSpan draws span si's share of the batch into its (disjoint)
// slice of s.fires on the positional stream (base, si).
func (s *countStepper) drawSpan(sub *RNG, base int64, si int) {
	w := s.st.weights
	lo, hi := si*spanSize, (si+1)*spanSize
	if hi > len(w) {
		hi = len(w)
	}
	sub.Seed(DeriveSeed(base, si))
	sub.Multinomial(s.spanN[si], w[lo:hi], s.fires[lo:hi])
}

// exact advances up to MinBatch interactions one at a time on the
// incremental engine — the boundary regime where an aggregate is not
// worth its O(|T|) resync, or where the tau selection collapsed near a
// deadlock or convergence boundary.
func (s *countStepper) exact(rng *RNG, limit int) (int, bool) {
	k := s.min
	if k > limit {
		k = limit
	}
	return s.exactN(rng, k)
}

// exactN advances up to k interactions one at a time, reporting
// (fired, fired > 0) if the configuration deadlocks mid-way. The
// hybrid Auto stepper drives longer exact phases through it directly.
func (s *countStepper) exactN(rng *RNG, k int) (int, bool) {
	for fired := 0; fired < k; fired++ {
		ti, ok := s.st.Sample(rng)
		if !ok {
			return fired, fired > 0
		}
		s.st.Fire(ti)
	}
	return k, true
}

// selectBatch computes the tau-leap batch size: the largest number of
// interactions for which, under the frozen per-interaction transition
// distribution w/Σw, every constrained state's count moves by at most
// eps·count (but at least 1) in both expectation and standard
// deviation. States never read by any precondition do not constrain
// the batch — their counts influence no weight; constrained states
// with zero drift under the current weights (e.g. reactants of a
// transition that stays disabled) bind nothing either.
func (s *countStepper) selectBatch() int64 {
	st := s.st
	for i := range s.mu {
		s.mu[i], s.sig[i] = 0, 0
	}
	invW := 1 / st.total
	for ti, w := range st.weights {
		if w <= 0 {
			continue
		}
		pw := w * invW
		for _, e := range st.idx.Delta(ti) {
			d := float64(e.N)
			s.mu[e.State] += pw * d
			s.sig[e.State] += pw * d * d
		}
	}
	best := math.Inf(1)
	for i, constrained := range s.con {
		if !constrained {
			continue
		}
		lim := s.eps * float64(st.cv[i])
		if lim < 1 {
			lim = 1
		}
		if m := math.Abs(s.mu[i]); m > 0 {
			if b := lim / m; b < best {
				best = b
			}
		}
		if v := s.sig[i]; v > 0 {
			if b := lim * lim / v; b < best {
				best = b
			}
		}
	}
	if !(best < float64(maxBatch)) {
		return maxBatch
	}
	return int64(best)
}
