package sim

import (
	"context"
	"testing"

	"repro/internal/counting"
	"repro/internal/spec"
)

func schedulers() []Scheduler {
	return []Scheduler{Weighted{}, UniformPairs{}, Batched{K: 64}, CountBatched{}, Auto{}}
}

// All three schedulers must agree on what the protocols compute: this
// is the cross-scheduler consistency check of the acceptance criteria,
// on the flock counting protocol and the majority example.
func TestSchedulersConsistentFlock(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	for _, tc := range []struct {
		x    int64
		want bool
	}{
		{8, true},
		{2, false},
	} {
		input, err := p.Input(map[string]int64{"i": tc.x})
		if err != nil {
			t.Fatalf("input: %v", err)
		}
		for _, sched := range schedulers() {
			stats, err := RunMany(context.Background(), p, input, tc.want, 20, Options{
				Seed: 7, MaxSteps: 500_000, StablePatience: 2_000, Scheduler: sched,
			})
			if err != nil {
				t.Fatalf("%s x=%d: %v", sched.Name(), tc.x, err)
			}
			if stats.Converged != 20 || stats.Correct != 20 {
				t.Errorf("%s x=%d: correct %d/20, converged %d/20",
					sched.Name(), tc.x, stats.Correct, stats.Converged)
			}
		}
	}
}

func TestSchedulersConsistentMajority(t *testing.T) {
	p, err := spec.Majority("A", "B")
	if err != nil {
		t.Fatalf("Majority: %v", err)
	}
	for _, tc := range []struct {
		a, b int64
		want bool
	}{
		{14, 6, true},
		{5, 13, false},
	} {
		input, err := p.Input(map[string]int64{"A": tc.a, "B": tc.b})
		if err != nil {
			t.Fatalf("input: %v", err)
		}
		for _, sched := range schedulers() {
			stats, err := RunMany(context.Background(), p, input, tc.want, 20, Options{
				Seed: 31, MaxSteps: 500_000, StablePatience: 3_000, Scheduler: sched,
			})
			if err != nil {
				t.Fatalf("%s A=%d B=%d: %v", sched.Name(), tc.a, tc.b, err)
			}
			if stats.Converged != 20 || stats.Correct != 20 {
				t.Errorf("%s A=%d B=%d: correct %d/20, converged %d/20",
					sched.Name(), tc.a, tc.b, stats.Correct, stats.Converged)
			}
		}
	}
}

// The uniform scheduler is only defined for conservative 2→2 protocols;
// Example 4.1 at n = 3 has width-3 transitions and must be rejected at
// Attach time with a useful error.
func TestUniformRejectsWideProtocol(t *testing.T) {
	p, err := counting.Example41(3)
	if err != nil {
		t.Fatalf("Example41: %v", err)
	}
	if _, err := (UniformPairs{}).Attach(NewState(p)); err == nil {
		t.Fatal("uniform scheduler accepted a width-3 protocol")
	}
	input, err := p.Input(map[string]int64{"i": 5})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	if _, err := Run(p, input, Options{Scheduler: UniformPairs{}}); err == nil {
		t.Error("Run accepted uniform scheduler on a width-3 protocol")
	}
	if _, err := RunMany(context.Background(), p, input, true, 2, Options{Scheduler: UniformPairs{}}); err == nil {
		t.Error("RunMany accepted uniform scheduler on a width-3 protocol")
	}
	// Batched delegates validation to its inner scheduler.
	if _, err := (Batched{Of: UniformPairs{}}).Attach(NewState(p)); err == nil {
		t.Error("batched-uniform accepted a width-3 protocol")
	}
}

func TestUniformDeadlocksWithoutPairs(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 1})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	res, err := Run(p, input, Options{Seed: 1, MaxSteps: 100, Scheduler: UniformPairs{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Deadlocked || !res.Converged {
		t.Errorf("expected deadlock convergence, got %+v", res)
	}
}

// A batched run must overshoot neither MaxSteps nor correctness: the
// step count stays within the cap and the consensus matches.
func TestBatchedRespectsMaxSteps(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 6})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	res, err := Run(p, input, Options{Seed: 2, MaxSteps: 100, Scheduler: Batched{K: 64}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps > 100 {
		t.Errorf("batched run took %d steps, cap 100", res.Steps)
	}
}

func TestSchedulerByName(t *testing.T) {
	for name, want := range map[string]string{
		"":           "weighted",
		"weighted":   "weighted",
		"uniform":    "uniform",
		"batched":    "batched",
		"countbatch": "countbatch",
		"auto":       "auto",
	} {
		s, err := SchedulerByName(name, 0, 0, 0)
		if err != nil {
			t.Fatalf("SchedulerByName(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("SchedulerByName(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := SchedulerByName("nope", 0, 0, 0); err == nil {
		t.Error("unknown scheduler name accepted")
	}
}

// Seeded runs under the exact weighted scheduler stay reproducible —
// the determinism clause of the acceptance criteria, for every
// scheduler.
func TestSchedulersDeterministic(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 10})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	for _, sched := range schedulers() {
		run := func() *Result {
			res, err := Run(p, input, Options{Seed: 1234, MaxSteps: 50_000, StablePatience: 500, Scheduler: sched})
			if err != nil {
				t.Fatalf("%s: %v", sched.Name(), err)
			}
			return res
		}
		a, b := run(), run()
		if a.Steps != b.Steps || !a.Final.Equal(b.Final) || a.LastChange != b.LastChange {
			t.Errorf("%s: same seed produced different runs", sched.Name())
		}
	}
}

func TestUniformMatchesWeightedDistribution(t *testing.T) {
	// On a conservative 2→2 protocol the uniform scheduler, conditioned
	// on non-null steps, induces the same interaction distribution as
	// the weighted scheduler. Spot-check by comparing acceptance rates
	// over many short runs.
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	input, err := p.Input(map[string]int64{"i": 4})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	accept := func(sched Scheduler) int {
		n := 0
		for seed := int64(0); seed < 60; seed++ {
			res, err := Run(p, input, Options{Seed: seed, MaxSteps: 50_000, StablePatience: 500, Scheduler: sched})
			if err != nil {
				t.Fatalf("%s: %v", sched.Name(), err)
			}
			if v, ok := res.ConsensusBool(); ok && v {
				n++
			}
		}
		return n
	}
	w, u := accept(Weighted{}), accept(UniformPairs{})
	// x=4 ≥ n=3: every run should accept under both schedulers.
	if w != 60 || u != 60 {
		t.Errorf("acceptance weighted=%d/60 uniform=%d/60", w, u)
	}
}
