package sim

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
)

func input(t *testing.T, p *core.Protocol, x int64) conf.Config {
	t.Helper()
	in, err := p.Input(map[string]int64{"i": x})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	return in
}

func TestRunDeterministic(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	in := input(t, p, 3)
	r1, err := Run(p, in, Options{Seed: 42, MaxSteps: 2000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(p, in, Options{Seed: 42, MaxSteps: 2000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Steps != r2.Steps || !r1.Final.Equal(r2.Final) || r1.LastChange != r2.LastChange {
		t.Error("same seed produced different runs")
	}
}

func TestRunConvergesCorrectly(t *testing.T) {
	tests := []struct {
		name string
		n    int64
		x    int64
		want bool
	}{
		{"above", 2, 4, true},
		{"at", 2, 2, true},
		{"below", 2, 1, false},
		{"zero", 2, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := counting.Example42(tc.n)
			if err != nil {
				t.Fatalf("Example42: %v", err)
			}
			res, err := Run(p, input(t, p, tc.x), Options{Seed: 7, MaxSteps: 20_000})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Converged {
				t.Fatalf("did not converge: %+v", res)
			}
			got, ok := res.ConsensusBool()
			if !ok {
				t.Fatalf("no consensus: output %v", res.Output)
			}
			if got != tc.want {
				t.Errorf("consensus = %v, want %v (final %v)", got, tc.want, res.Final)
			}
		})
	}
}

func TestRunFlockDeadlocksBelowThreshold(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	// x=1: single agent, no pair: immediate deadlock at output {0}.
	res, err := Run(p, input(t, p, 1), Options{Seed: 1, MaxSteps: 100})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Deadlocked || !res.Converged {
		t.Errorf("expected deadlock convergence, got %+v", res)
	}
	if v, ok := res.ConsensusBool(); !ok || v {
		t.Errorf("consensus = %v,%v; want false,true", v, ok)
	}
}

func TestRunPatience(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	res, err := Run(p, input(t, p, 5), Options{Seed: 3, MaxSteps: 100_000, StablePatience: 200})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("patience did not trigger: %+v", res)
	}
	if v, _ := res.ConsensusBool(); !v {
		t.Errorf("flock(3) with x=5 should accept; final %v", res.Final)
	}
}

func TestRunWrongSpace(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	if _, err := Run(p, conf.New(conf.MustSpace("zz")), Options{}); err == nil {
		t.Error("wrong-space input accepted")
	}
}

func TestRunMany(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	stats, err := RunMany(p, input(t, p, 3), true, 20, Options{Seed: 11, MaxSteps: 20_000})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if stats.Converged != 20 {
		t.Errorf("converged = %d/20", stats.Converged)
	}
	if stats.Correct != 20 {
		t.Errorf("correct = %d/20", stats.Correct)
	}
	if stats.MeanSteps <= 0 || stats.MaxSteps <= 0 {
		t.Errorf("step stats empty: %+v", stats)
	}
	if _, err := RunMany(p, input(t, p, 3), true, 0, Options{}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestInstanceWeight(t *testing.T) {
	space := conf.MustSpace("a", "b")
	pre := conf.MustFromMap(space, map[string]int64{"a": 2})
	cur := conf.MustFromMap(space, map[string]int64{"a": 4, "b": 1})
	// C(4,2) = 6.
	if w := instanceWeight(pre, cur); w != 6 {
		t.Errorf("weight = %v, want 6", w)
	}
	// Disabled: zero weight.
	tooMuch := conf.MustFromMap(space, map[string]int64{"a": 5})
	if w := instanceWeight(tooMuch, cur); w != 0 {
		t.Errorf("weight = %v, want 0", w)
	}
	// Empty pre (creation-only transition): weight 1.
	if w := instanceWeight(conf.New(space), cur); w != 1 {
		t.Errorf("empty pre weight = %v, want 1", w)
	}
}

func TestBinom(t *testing.T) {
	tests := []struct {
		n, k int64
		want float64
	}{
		{5, 2, 10}, {6, 3, 20}, {4, 0, 1}, {3, 3, 1},
	}
	for _, tc := range tests {
		if got := binom(tc.n, tc.k); got != tc.want {
			t.Errorf("binom(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	// The trial pool must not leak scheduling order into the statistics:
	// any worker count yields identical aggregates for the same seed.
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	in := input(t, p, 9)
	run := func(workers int) Stats {
		stats, err := RunMany(p, in, true, 12, Options{
			Seed: 77, MaxSteps: 200_000, StablePatience: 1_000, Workers: workers,
		})
		if err != nil {
			t.Fatalf("RunMany(workers=%d): %v", workers, err)
		}
		return *stats
	}
	base := run(1)
	for _, w := range []int{2, 4, 0} {
		if got := run(w); got != base {
			t.Errorf("workers=%d: stats %+v differ from serial %+v", w, got, base)
		}
	}
}
