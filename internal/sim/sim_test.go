package sim

import (
	"context"
	"strconv"
	"testing"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/petri"
)

func input(t *testing.T, p *core.Protocol, x int64) conf.Config {
	t.Helper()
	in, err := p.Input(map[string]int64{"i": x})
	if err != nil {
		t.Fatalf("input: %v", err)
	}
	return in
}

// flipFlop builds the deadlock-free net 2a ⇄ 2b: both transitions stay
// recurrently enabled from any even population, so a run executes
// exactly MaxSteps interactions.
func flipFlop(t *testing.T, agents int64) (*core.Protocol, conf.Config) {
	t.Helper()
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	mk := func(name string, pre, post conf.Config) petri.Transition {
		tr, err := petri.NewTransition(name, pre, post)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	net, err := petri.New(space, []petri.Transition{
		mk("ab", u("a").Scale(2), u("b").Scale(2)),
		mk("ba", u("b").Scale(2), u("a").Scale(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProtocol("flipflop", net, conf.New(space), []string{"a"},
		map[string]core.Output{"a": core.Out0, "b": core.Out0})
	if err != nil {
		t.Fatal(err)
	}
	in, err := p.Input(map[string]int64{"a": agents})
	if err != nil {
		t.Fatal(err)
	}
	return p, in
}

func TestRunDeterministic(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	in := input(t, p, 3)
	r1, err := Run(p, in, Options{Seed: 42, MaxSteps: 2000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(p, in, Options{Seed: 42, MaxSteps: 2000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Steps != r2.Steps || !r1.Final.Equal(r2.Final) || r1.LastChange != r2.LastChange {
		t.Error("same seed produced different runs")
	}
}

func TestRunConvergesCorrectly(t *testing.T) {
	tests := []struct {
		name string
		n    int64
		x    int64
		want bool
	}{
		{"above", 2, 4, true},
		{"at", 2, 2, true},
		{"below", 2, 1, false},
		{"zero", 2, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := counting.Example42(tc.n)
			if err != nil {
				t.Fatalf("Example42: %v", err)
			}
			res, err := Run(p, input(t, p, tc.x), Options{Seed: 7, MaxSteps: 20_000})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Converged {
				t.Fatalf("did not converge: %+v", res)
			}
			got, ok := res.ConsensusBool()
			if !ok {
				t.Fatalf("no consensus: output %v", res.Output)
			}
			if got != tc.want {
				t.Errorf("consensus = %v, want %v (final %v)", got, tc.want, res.Final)
			}
		})
	}
}

func TestRunFlockDeadlocksBelowThreshold(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	// x=1: single agent, no pair: immediate deadlock at output {0}.
	res, err := Run(p, input(t, p, 1), Options{Seed: 1, MaxSteps: 100})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Deadlocked || !res.Converged {
		t.Errorf("expected deadlock convergence, got %+v", res)
	}
	if v, ok := res.ConsensusBool(); !ok || v {
		t.Errorf("consensus = %v,%v; want false,true", v, ok)
	}
}

func TestRunPatience(t *testing.T) {
	p, err := counting.FlockOfBirds(3)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	res, err := Run(p, input(t, p, 5), Options{Seed: 3, MaxSteps: 100_000, StablePatience: 200})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatalf("patience did not trigger: %+v", res)
	}
	if v, _ := res.ConsensusBool(); !v {
		t.Errorf("flock(3) with x=5 should accept; final %v", res.Final)
	}
}

func TestRunWrongSpace(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	if _, err := Run(p, conf.New(conf.MustSpace("zz")), Options{}); err == nil {
		t.Error("wrong-space input accepted")
	}
}

func TestRunMany(t *testing.T) {
	p, err := counting.Example42(2)
	if err != nil {
		t.Fatalf("Example42: %v", err)
	}
	stats, err := RunMany(context.Background(), p, input(t, p, 3), true, 20, Options{Seed: 11, MaxSteps: 20_000})
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if stats.Converged != 20 {
		t.Errorf("converged = %d/20", stats.Converged)
	}
	if stats.Correct != 20 {
		t.Errorf("correct = %d/20", stats.Correct)
	}
	if stats.MeanSteps() <= 0 || stats.MaxSteps <= 0 || stats.MinSteps <= 0 {
		t.Errorf("step stats empty: %+v", stats)
	}
	if stats.MinSteps > stats.MaxSteps {
		t.Errorf("MinSteps %d > MaxSteps %d", stats.MinSteps, stats.MaxSteps)
	}
	if _, err := RunMany(context.Background(), p, input(t, p, 3), true, 0, Options{}); err == nil {
		t.Error("zero trials accepted")
	}
}

// RunRange over subranges must reproduce, trial for trial, the
// corresponding slice of a full run: merging the partials of any
// partition is bit-identical to the whole.
func TestRunRangeMergesToRunMany(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	in := input(t, p, 9)
	opts := Options{Seed: 77, MaxSteps: 200_000, StablePatience: 1_000}
	const trials = 12
	whole, err := RunMany(context.Background(), p, in, true, trials, opts)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for _, cuts := range [][]int{
		{0, trials},
		{0, 5, trials},
		{0, 3, 6, 9, trials},
		{0, 1, trials - 1, trials},
	} {
		var merged Stats
		for i := 0; i+1 < len(cuts); i++ {
			part, err := RunRange(context.Background(), p, in, true, cuts[i], cuts[i+1], opts)
			if err != nil {
				t.Fatalf("RunRange[%d,%d): %v", cuts[i], cuts[i+1], err)
			}
			merged.Merge(*part)
		}
		if merged != *whole {
			t.Errorf("cuts %v: merged %+v != whole %+v", cuts, merged, *whole)
		}
	}
	if _, err := RunRange(context.Background(), p, in, true, 5, 5, opts); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := RunRange(context.Background(), p, in, true, -1, 2, opts); err == nil {
		t.Error("negative trialLo accepted")
	}
}

func TestStatsMerge(t *testing.T) {
	obs := func(s *Stats, steps, lastChange int, converged, correct bool) {
		out := core.Set0
		if correct {
			out = core.Set1
		}
		s.Observe(&Result{Steps: steps, LastChange: lastChange, Converged: converged, Output: out}, true)
	}
	var whole, a, b Stats
	type trial struct {
		steps, last        int
		converged, correct bool
	}
	trials := []trial{
		{100, 40, true, true},
		{7, 2, true, false},
		{500, 0, false, false},
		{250, 249, true, true},
	}
	for i, tr := range trials {
		obs(&whole, tr.steps, tr.last, tr.converged, tr.correct)
		if i < 2 {
			obs(&a, tr.steps, tr.last, tr.converged, tr.correct)
		} else {
			obs(&b, tr.steps, tr.last, tr.converged, tr.correct)
		}
	}
	var m Stats
	m.Merge(a)
	m.Merge(b)
	if m != whole {
		t.Fatalf("merged %+v != whole %+v", m, whole)
	}
	if m.Trials != 4 || m.Converged != 3 || m.Correct != 2 {
		t.Errorf("counts: %+v", m)
	}
	if m.MinSteps != 7 || m.MaxSteps != 500 {
		t.Errorf("extrema: min %d max %d", m.MinSteps, m.MaxSteps)
	}
	if got := m.MeanSteps(); got != (100+7+500+250)/4.0 {
		t.Errorf("MeanSteps = %v", got)
	}
	if got := m.MeanLastChange(); got != (40+2+249)/3.0 {
		t.Errorf("MeanLastChange = %v", got)
	}
	if m.VarianceSteps() <= 0 || m.HalfCI95Steps() <= 0 {
		t.Errorf("dispersion: var %v ci %v", m.VarianceSteps(), m.HalfCI95Steps())
	}
	// Empty merge partners are identities in both directions.
	var empty Stats
	m2 := whole
	m2.Merge(empty)
	if m2 != whole {
		t.Errorf("merge with empty changed stats")
	}
	empty.Merge(whole)
	if empty != whole {
		t.Errorf("merge into empty != whole")
	}
}

// The 128-bit Σ Steps² must be exact where a float64 (or an unchecked
// int64) accumulator would not be.
func TestStatsSumSquares128(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("steps of 2^31 are not representable in a 32-bit int")
	}
	var s Stats
	shift := 31       // via a variable so the 386 compiler sees no constant overflow
	big := 1 << shift // steps² = 2⁶², three of them overflow int64
	for i := 0; i < 3; i++ {
		s.Observe(&Result{Steps: big}, true)
	}
	// 3·2⁶² < 2⁶⁴: still in the low word.
	if s.SumStepsSqHi != 0 || s.SumStepsSqLo != 3<<62 {
		t.Fatalf("sumsq = (%d,%d), want (0,%d)", s.SumStepsSqHi, s.SumStepsSqLo, uint64(3)<<62)
	}
	s.Observe(&Result{Steps: big}, true)
	if s.SumStepsSqHi != 1 || s.SumStepsSqLo != 0 {
		t.Fatalf("sumsq = (%d,%d), want (1,0)", s.SumStepsSqHi, s.SumStepsSqLo)
	}
	// Variance of a constant sample is 0 even past 2⁵³.
	if v := s.VarianceSteps(); v != 0 {
		t.Errorf("variance of constant sample = %v", v)
	}
}

func TestRunManyCancelled(t *testing.T) {
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	in := input(t, p, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMany(ctx, p, in, true, 8, Options{Seed: 1, MaxSteps: 100_000}); err != context.Canceled {
		t.Errorf("pre-cancelled RunMany err = %v, want context.Canceled", err)
	}
	// Cancellation must also land mid-run, not only between trials: one
	// long trial on the deadlock-free flip-flop net 2a ⇄ 2b.
	p2, in2 := flipFlop(t, 64)
	ctx2, cancel2 := context.WithCancel(context.Background())
	donech := make(chan error, 1)
	go func() {
		_, err := RunMany(ctx2, p2, in2, true, 1, Options{Seed: 1, MaxSteps: 1 << 30, Workers: 1})
		donech <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	select {
	case err := <-donech:
		if err != context.Canceled {
			t.Errorf("mid-run cancel err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunMany did not return after cancellation")
	}
}

func TestInstanceWeight(t *testing.T) {
	space := conf.MustSpace("a", "b")
	pre := conf.MustFromMap(space, map[string]int64{"a": 2})
	cur := conf.MustFromMap(space, map[string]int64{"a": 4, "b": 1})
	// C(4,2) = 6.
	if w := instanceWeight(pre, cur); w != 6 {
		t.Errorf("weight = %v, want 6", w)
	}
	// Disabled: zero weight.
	tooMuch := conf.MustFromMap(space, map[string]int64{"a": 5})
	if w := instanceWeight(tooMuch, cur); w != 0 {
		t.Errorf("weight = %v, want 0", w)
	}
	// Empty pre (creation-only transition): weight 1.
	if w := instanceWeight(conf.New(space), cur); w != 1 {
		t.Errorf("empty pre weight = %v, want 1", w)
	}
}

func TestBinom(t *testing.T) {
	tests := []struct {
		n, k int64
		want float64
	}{
		{5, 2, 10}, {6, 3, 20}, {4, 0, 1}, {3, 3, 1},
	}
	for _, tc := range tests {
		if got := binom(tc.n, tc.k); got != tc.want {
			t.Errorf("binom(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	// The trial pool must not leak scheduling order into the statistics:
	// any worker count yields identical aggregates for the same seed.
	p, err := counting.FlockOfBirds(4)
	if err != nil {
		t.Fatalf("FlockOfBirds: %v", err)
	}
	in := input(t, p, 9)
	run := func(workers int) Stats {
		stats, err := RunMany(context.Background(), p, in, true, 12, Options{
			Seed: 77, MaxSteps: 200_000, StablePatience: 1_000, Workers: workers,
		})
		if err != nil {
			t.Fatalf("RunMany(workers=%d): %v", workers, err)
		}
		return *stats
	}
	base := run(1)
	for _, w := range []int{2, 4, 0} {
		if got := run(w); got != base {
			t.Errorf("workers=%d: stats %+v differ from serial %+v", w, got, base)
		}
	}
}
