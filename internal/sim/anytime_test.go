package sim

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/registry"
)

// sinkDelta records one CellSink call.
type sinkDelta struct {
	x      int64
	lo, hi int
	stats  Stats
}

// TestSweepRangeSinkDeltasMatchReturn: the streamed deltas are exactly
// the returned points — same set of (x, range, Stats) — and folding
// them reproduces the aggregate, for several worker counts.
func TestSweepRangeSinkDeltasMatchReturn(t *testing.T) {
	p, n, err := registry.Make("flock", 4)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int64{2, 4, 8, 16}
	expected := func(x int64) bool { return x >= n }
	opts := Options{Seed: 7, MaxSteps: 200_000, StablePatience: 1_000}
	for _, workers := range []int{1, 2, 7} {
		o := opts
		o.Workers = workers
		var deltas []sinkDelta
		points, err := SweepRangeSink(context.Background(), p, "i", xs, expected, 1, 5, o,
			func(x int64, lo, hi int, st Stats) {
				deltas = append(deltas, sinkDelta{x, lo, hi, st})
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(deltas) != len(points) {
			t.Fatalf("workers=%d: %d deltas for %d points", workers, len(deltas), len(points))
		}
		// Deltas arrive in completion order; sort by x to compare sets.
		sort.Slice(deltas, func(i, j int) bool { return deltas[i].x < deltas[j].x })
		for i, pt := range points {
			d := deltas[i]
			if d.x != pt.X || d.lo != 1 || d.hi != 5 || !reflect.DeepEqual(d.stats, pt.Stats) {
				t.Errorf("workers=%d: delta %d = %+v, want x=%d [1,5) %+v",
					workers, i, d, pt.X, pt.Stats)
			}
		}
	}
}

// SweepRange must be exactly SweepRangeSink with a nil sink.
func TestSweepRangeNilSinkEquivalent(t *testing.T) {
	p, n, err := registry.Make("flock", 4)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int64{3, 9}
	expected := func(x int64) bool { return x >= n }
	opts := Options{Seed: 3, MaxSteps: 200_000, StablePatience: 1_000}
	a, err := SweepRange(context.Background(), p, "i", xs, expected, 0, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepRangeSink(context.Background(), p, "i", xs, expected, 0, 4, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("SweepRange %+v != SweepRangeSink(nil) %+v", a, b)
	}
}

func TestStopRuleValidate(t *testing.T) {
	good := []StopRule{{}, {TargetRelCI: 0.1}, {TargetRelCI: 0.5, MinTrials: 4}}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", r, err)
		}
	}
	bad := []StopRule{
		{TargetRelCI: -0.1},
		{TargetRelCI: 1},
		{TargetRelCI: 1.5},
		{TargetRelCI: 0.1, MinTrials: -1},
		{MinTrials: 4}, // floor without a target could never fire
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", r)
		}
	}
}

func TestStopRuleSatisfied(t *testing.T) {
	// A disabled rule never fires, whatever the stats.
	tight := Stats{}
	for i := 0; i < 100; i++ {
		tight.Observe(&Result{Steps: 500, Converged: true, Deadlocked: true}, false)
	}
	if (StopRule{}).Satisfied(&tight) {
		t.Error("disabled rule fired")
	}
	// Identical samples: zero variance, so any positive target fires
	// once the floor is met.
	r := StopRule{TargetRelCI: 0.05, MinTrials: 4}
	if r.Satisfied(&Stats{Trials: 3}) {
		t.Error("rule fired below its trial floor")
	}
	if !r.Satisfied(&tight) {
		t.Error("rule did not fire on a zero-variance sample")
	}
	// High-variance sample: half-CI is far above 5% of the mean.
	var wild Stats
	for i := 0; i < 8; i++ {
		steps := 10
		if i%2 == 0 {
			steps = 10_000
		}
		wild.Observe(&Result{Steps: steps}, false)
	}
	if r.Satisfied(&wild) {
		t.Errorf("rule fired on a wild sample (mean %.0f, half-CI %.0f)",
			wild.MeanSteps(), wild.HalfCI95Steps())
	}
	// The defaulted floor is DefaultMinTrials.
	def := StopRule{TargetRelCI: 0.05}.WithDefaults()
	if def.MinTrials != DefaultMinTrials {
		t.Errorf("defaulted floor = %d, want %d", def.MinTrials, DefaultMinTrials)
	}
	if (StopRule{}).WithDefaults() != (StopRule{}) {
		t.Error("WithDefaults invented a floor for a disabled rule")
	}
}

// The stopping decision must be a pure function of the prefix Stats:
// folding the same cells in trial order on two hosts gives the same
// Satisfied answer because the accumulators are bit-identical. This
// pins the claim with a real sweep prefix rather than synthetic stats.
func TestStopRuleDeterministicOnPrefixes(t *testing.T) {
	p, n, err := registry.Make("flock", 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 11, MaxSteps: 200_000, StablePatience: 1_000}
	input, err := p.Input(map[string]int64{"i": 9})
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Seed = DeriveSeedK(opts.Seed, 9)
	rule := StopRule{TargetRelCI: 0.3, MinTrials: 4}
	// Fold block-by-block twice with different worker counts; the
	// per-boundary decisions must agree exactly.
	decide := func(workers int) []bool {
		var prefix Stats
		var out []bool
		oo := o
		oo.Workers = workers
		for lo := 0; lo < 16; lo += 4 {
			st, err := RunRange(context.Background(), p, input, 9 >= n, lo, lo+4, oo)
			if err != nil {
				t.Fatal(err)
			}
			prefix.Merge(*st)
			out = append(out, rule.Satisfied(&prefix))
		}
		return out
	}
	if a, b := decide(1), decide(4); !reflect.DeepEqual(a, b) {
		t.Errorf("stopping decisions depend on worker count: %v vs %v", a, b)
	}
}
