package hostmeta

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

func TestCollect(t *testing.T) {
	m := Collect()
	if m.OS != runtime.GOOS || m.Arch != runtime.GOARCH {
		t.Errorf("os/arch = %s/%s, want %s/%s", m.OS, m.Arch, runtime.GOOS, runtime.GOARCH)
	}
	if m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Errorf("cpu counts: %+v", m)
	}
	if m.GoVersion == "" {
		t.Error("missing Go version")
	}
}

// The JSON field names are part of the artifact schemas: a rename here
// silently breaks artifact mergers reading files from older hosts.
func TestJSONFieldNames(t *testing.T) {
	data, err := json.Marshal(Meta{Hostname: "h", Commit: "c"})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"hostname", "os", "arch", "num_cpu", "gomaxprocs", "go_version", "commit"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("missing field %q in %s", key, data)
		}
	}
}

// CollectProcess stamps a stable, plausible start time: the same for
// every call in one process (it identifies the incarnation, not the
// call), recent, and UTC.
func TestCollectProcessStartedAt(t *testing.T) {
	a, b := CollectProcess(), CollectProcess()
	if a.StartedAt.IsZero() {
		t.Fatal("zero StartedAt")
	}
	if !a.StartedAt.Equal(b.StartedAt) {
		t.Errorf("StartedAt differs between calls: %v vs %v", a.StartedAt, b.StartedAt)
	}
	if d := time.Since(a.StartedAt); d < 0 || d > time.Hour {
		t.Errorf("StartedAt %v away from now", d)
	}
	if a.PID != os.Getpid() {
		t.Errorf("PID = %d, want %d", a.PID, os.Getpid())
	}
}
