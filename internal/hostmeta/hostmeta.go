// Package hostmeta collects the host/commit metadata stamped into
// result artifacts — ppbench timing files and ppsweep shard artifacts —
// so results gathered from different machines (CI runners, sharded
// sweep hosts) stay attributable and comparable.
package hostmeta

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Meta identifies the producing host and build. The JSON field names
// are part of the artifact schemas that embed it.
type Meta struct {
	Hostname   string `json:"hostname,omitempty"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Commit     string `json:"commit,omitempty"`
}

// Collect gathers the current host's metadata.
func Collect() Meta {
	m := Meta{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if h, err := os.Hostname(); err == nil {
		m.Hostname = h
	}
	m.Commit = Commit()
	return m
}

// Process extends Meta with the identity of one running worker
// process — the granularity at which shard-dispatch leases are owned
// and heartbeats are stamped. Two workers on one host differ in PID;
// successive incarnations of a crashed worker usually do too, but
// lease protocols must not rely on PID uniqueness across reboots —
// pair it with a per-acquisition token.
type Process struct {
	Meta
	PID int `json:"pid"`
	// StartedAt is the process's start stamp (its own wall clock, UTC):
	// it disambiguates PID reuse across reboots for operators reading
	// lease files. Like every cross-host wall-clock stamp it is
	// telemetry, not protocol state — liveness decisions use the
	// lease's monotonic heartbeat sequence instead.
	StartedAt time.Time `json:"started_at"`
}

var processStart = time.Now().UTC()

// CollectProcess gathers the current process's identity.
func CollectProcess() Process {
	return Process{Meta: Collect(), PID: os.Getpid(), StartedAt: processStart}
}

// Instance renders the process identity as one "host/pid/startstamp"
// token — the serving-instance tag ppserve stamps into store
// artifacts and /metrics, so a cached result names the daemon
// incarnation that computed it. Like StartedAt it is telemetry:
// correctness never depends on its uniqueness.
func (p Process) Instance() string {
	host := p.Hostname
	if host == "" {
		host = "unknown-host"
	}
	return fmt.Sprintf("%s/%d/%s", host, p.PID, p.StartedAt.Format(time.RFC3339))
}

// Commit best-efforts the VCS revision: the build info stamp when the
// binary was built with VCS stamping, otherwise a direct git query
// (the `go run` path); empty when neither is available. A "-dirty"
// suffix marks uncommitted changes.
func Commit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	rev := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		rev += "-dirty"
	}
	return rev
}
