package petri

import (
	"errors"

	"repro/internal/conf"
)

// ErrBudget is reported (wrapped) when an exploration exceeds its budget.
var ErrBudget = errors.New("petri: exploration budget exhausted")

// Budget bounds an exploration. The zero value applies defaults.
type Budget struct {
	// MaxConfigs caps the number of distinct configurations visited.
	// Zero means DefaultMaxConfigs.
	MaxConfigs int
	// MaxAgents prunes configurations with more agents. Zero means
	// unlimited. Pruning makes the closure incomplete, which Reach
	// records rather than hiding.
	MaxAgents int64
	// MaxDepth caps the exploration depth (word length). Zero means
	// unlimited.
	MaxDepth int
}

// DefaultMaxConfigs is the visited-set cap used when Budget.MaxConfigs
// is zero.
const DefaultMaxConfigs = 1 << 20

func (b Budget) maxConfigs() int {
	if b.MaxConfigs <= 0 {
		return DefaultMaxConfigs
	}
	return b.MaxConfigs
}

// Edge is one explored firing: transition index and target node id.
type Edge struct {
	Trans int
	To    int
}

// ReachSet is the (possibly truncated) forward reachability closure of a
// configuration, with enough structure to reconstruct shortest firing
// words and to run SCC analyses.
type ReachSet struct {
	net     *Net
	configs []conf.Config
	index   map[string]int
	edges   [][]Edge
	parent  []int // BFS tree parent node, −1 at the root
	via     []int // transition fired from parent, −1 at the root
	depth   []int

	// Complete reports that the closure is exact: no budget or depth
	// truncation occurred. Analyses that require exactness must check it.
	Complete bool
}

// Reach computes the forward closure of from under the net, breadth
// first, within the budget. A truncated closure is still returned (with
// Complete=false) together with a wrapped ErrBudget, so callers can
// inspect partial results while being unable to mistake them for exact
// ones.
func (n *Net) Reach(from conf.Config, budget Budget) (*ReachSet, error) {
	if !from.Space().Equal(n.space) {
		return nil, errors.New("petri: initial configuration over wrong space")
	}
	rs := &ReachSet{
		net:      n,
		index:    make(map[string]int),
		Complete: true,
	}
	rs.add(from, -1, -1, 0)
	maxConfigs := budget.maxConfigs()

	for head := 0; head < len(rs.configs); head++ {
		if budget.MaxDepth > 0 && rs.depth[head] >= budget.MaxDepth {
			// Unexpanded frontier node: the closure may be missing
			// deeper configurations.
			rs.Complete = false
			continue
		}
		cur := rs.configs[head]
		for ti, t := range n.trans {
			next, ok := t.Fire(cur)
			if !ok {
				continue
			}
			if budget.MaxAgents > 0 && next.Agents() > budget.MaxAgents {
				rs.Complete = false
				continue
			}
			id, exists := rs.lookup(next)
			if !exists {
				if len(rs.configs) >= maxConfigs {
					rs.Complete = false
					return rs, errBudget("reach", len(rs.configs))
				}
				id = rs.add(next, head, ti, rs.depth[head]+1)
			}
			rs.edges[head] = append(rs.edges[head], Edge{Trans: ti, To: id})
		}
	}
	if !rs.Complete {
		return rs, errBudget("reach", len(rs.configs))
	}
	return rs, nil
}

func errBudget(op string, visited int) error {
	return &BudgetError{Op: op, Visited: visited}
}

// BudgetError reports a truncated exploration. It wraps ErrBudget.
type BudgetError struct {
	Op      string
	Visited int
}

func (e *BudgetError) Error() string {
	return "petri: " + e.Op + ": exploration budget exhausted"
}

// Unwrap makes errors.Is(err, ErrBudget) succeed.
func (e *BudgetError) Unwrap() error { return ErrBudget }

func (rs *ReachSet) add(c conf.Config, parent, via, depth int) int {
	id := len(rs.configs)
	rs.configs = append(rs.configs, c)
	rs.index[c.Key()] = id
	rs.edges = append(rs.edges, nil)
	rs.parent = append(rs.parent, parent)
	rs.via = append(rs.via, via)
	rs.depth = append(rs.depth, depth)
	return id
}

func (rs *ReachSet) lookup(c conf.Config) (int, bool) {
	id, ok := rs.index[c.Key()]
	return id, ok
}

// Len returns the number of configurations in the closure.
func (rs *ReachSet) Len() int { return len(rs.configs) }

// Config returns the configuration with the given node id.
func (rs *ReachSet) Config(id int) conf.Config { return rs.configs[id] }

// ID returns the node id of a configuration, if present.
func (rs *ReachSet) ID(c conf.Config) (int, bool) { return rs.lookup(c) }

// Contains reports whether the configuration is in the closure.
func (rs *ReachSet) Contains(c conf.Config) bool {
	_, ok := rs.lookup(c)
	return ok
}

// Edges returns the outgoing explored edges of a node.
func (rs *ReachSet) Edges(id int) []Edge { return rs.edges[id] }

// Depth returns the BFS depth of a node (shortest word length from the
// root).
func (rs *ReachSet) Depth(id int) int { return rs.depth[id] }

// PathTo returns a shortest firing word (as transition indices) from the
// root to the given node.
func (rs *ReachSet) PathTo(id int) []int {
	var rev []int
	for cur := id; rs.parent[cur] >= 0; cur = rs.parent[cur] {
		rev = append(rev, rs.via[cur])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ForEach calls fn for every node id in BFS order, stopping early if fn
// returns false.
func (rs *ReachSet) ForEach(fn func(id int, c conf.Config) bool) {
	for id, c := range rs.configs {
		if !fn(id, c) {
			return
		}
	}
}

// AdjacencyLists returns the closure's edge structure as plain adjacency
// lists for graph algorithms (SCC, condensation).
func (rs *ReachSet) AdjacencyLists() [][]int {
	adj := make([][]int, len(rs.configs))
	for id, es := range rs.edges {
		if len(es) == 0 {
			continue
		}
		adj[id] = make([]int, 0, len(es))
		for _, e := range es {
			adj[id] = append(adj[id], e.To)
		}
	}
	return adj
}
